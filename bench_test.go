package taxiqueue

// One benchmark per paper table/figure plus stage and ablation benches.
// The experiment benches share a tenth-scale suite: the first benchmark to
// touch a weekday pays for its simulation; subsequent iterations measure
// the table/figure regeneration itself.

import (
	"sync"
	"testing"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/experiments"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
	"taxiqueue/internal/spatial"
)

var (
	suiteOnce  sync.Once
	benchSuite *experiments.Suite
)

func getSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.Config{Seed: 99, CityScale: 0.1})
	})
	return benchSuite
}

func benchExperiment(b *testing.B, fn func() error) {
	b.Helper()
	getSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- experiment benches: one per table/figure -----------------------------

func BenchmarkExperimentCleaning(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Cleaning(); return err })
}

func BenchmarkExperimentFig6DBSCANSweep(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Fig6(); return err })
}

func BenchmarkExperimentFig7SpotMap(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Fig7(); return err })
}

func BenchmarkExperimentTable4Landmarks(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Table4(); return err })
}

func BenchmarkExperimentFig8SpotsByZoneDay(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Fig8(); return err })
}

func BenchmarkExperimentTable5Hausdorff(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Table5(); return err })
}

func BenchmarkExperimentTable6PickupCounts(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Table6(); return err })
}

func BenchmarkExperimentTable7QueueTypes(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Table7(); return err })
}

func BenchmarkExperimentFig9QueueTypesByDay(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Fig9(); return err })
}

func BenchmarkExperimentTable8Validation(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Table8(); return err })
}

func BenchmarkExperimentTable9LuckyPlaza(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Table9(); return err })
}

func BenchmarkExperimentDriverBehavior(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().DriverBehavior(); return err })
}

func BenchmarkExperimentTransitions(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().Transitions(); return err })
}

func BenchmarkExperimentAblationAmplify(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().AblationAmplification(); return err })
}

func BenchmarkExperimentAblationZoning(b *testing.B) {
	benchExperiment(b, func() error { _, _, err := getSuite().AblationZoning(); return err })
}

// --- stage benches: the pipeline's heavy phases ----------------------------

var (
	dayOnce    sync.Once
	dayRecords []mdt.Record
	dayPickups []core.Pickup
)

func getDay(b *testing.B) ([]mdt.Record, []core.Pickup) {
	b.Helper()
	dayOnce.Do(func() {
		out := sim.Run(sim.Config{Seed: 5, City: citymap.Generate(50, 0.1), InjectFaults: true})
		dayRecords, _ = clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
		dayPickups = core.ExtractAll(mdt.SplitByTaxi(dayRecords), core.DefaultSpeedThresholdKmh)
	})
	return dayRecords, dayPickups
}

func BenchmarkStageSimulateDay(b *testing.B) {
	city := citymap.Generate(51, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(sim.Config{Seed: int64(i), City: city})
	}
}

func BenchmarkStageClean(b *testing.B) {
	out := sim.Run(sim.Config{Seed: 6, City: citymap.Generate(52, 0.05), InjectFaults: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	}
}

func BenchmarkStagePEA(b *testing.B) {
	recs, _ := getDay(b)
	byTaxi := mdt.SplitByTaxi(recs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ExtractAll(byTaxi, core.DefaultSpeedThresholdKmh)
	}
}

func BenchmarkStagePEAParallel(b *testing.B) {
	recs, _ := getDay(b)
	byTaxi := mdt.SplitByTaxi(recs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ExtractAllParallel(byTaxi, core.DefaultSpeedThresholdKmh, 0)
	}
}

func BenchmarkStageDetectSpots(b *testing.B) {
	_, pickups := getDay(b)
	cfg := core.DefaultDetectorConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DetectSpots(pickups, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageSweep is the Fig. 6 (eps, minPts) cross product over the
// day's pickup centroids: one grid index per eps row, cells fanned over the
// worker pool.
func BenchmarkStageSweep(b *testing.B) {
	_, pickups := getDay(b)
	pts := make([]geo.Point, len(pickups))
	for i, p := range pickups {
		pts[i] = p.Centroid
	}
	eps := []float64{5, 10, 15, 20}
	minPts := []int{25, 50, 100, 150}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.SweepParallel(pts, eps, minPts, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStageSplitByTaxi(b *testing.B) {
	recs, _ := getDay(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mdt.SplitByTaxi(recs)
	}
}

func BenchmarkStageFullAnalyze(b *testing.B) {
	recs, _ := getDay(b)
	engine, err := core.NewEngine(core.DefaultEngineConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Analyze(recs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches: the DESIGN.md design choices ------------------------

// Zoned vs island-wide clustering (§6.1.2's O(n²) mitigation).
func BenchmarkAblationClusterByZone(b *testing.B) {
	_, pickups := getDay(b)
	cfg := core.DefaultDetectorConfig()
	cfg.ByZone = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DetectSpots(pickups, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClusterIslandWide(b *testing.B) {
	_, pickups := getDay(b)
	cfg := core.DefaultDetectorConfig()
	cfg.ByZone = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DetectSpots(pickups, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// DBSCAN neighbour-search backends over the day's real pickup centroids.
func benchDBSCANBackend(b *testing.B, build func(pts []geo.Point) spatial.Index) {
	b.Helper()
	_, pickups := getDay(b)
	pts := make([]geo.Point, len(pickups))
	for i, p := range pickups {
		pts[i] = p.Centroid
	}
	params := cluster.Params{EpsMeters: 15, MinPoints: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.DBSCANWithIndex(pts, params, build(pts)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDBSCANGrid(b *testing.B) {
	benchDBSCANBackend(b, func(pts []geo.Point) spatial.Index { return spatial.NewGrid(pts, 15) })
}

func BenchmarkAblationDBSCANRTree(b *testing.B) {
	benchDBSCANBackend(b, func(pts []geo.Point) spatial.Index { return spatial.NewRTree(pts, 0) })
}

func BenchmarkAblationDBSCANNaive(b *testing.B) {
	benchDBSCANBackend(b, func(pts []geo.Point) spatial.Index { return spatial.NewLinear(pts) })
}

// Partitioned DBSCAN with union-find merge at fixed worker counts, against
// the sequential grid run above.
func BenchmarkAblationDBSCANParallel1(b *testing.B) { benchDBSCANParallel(b, 1) }
func BenchmarkAblationDBSCANParallel4(b *testing.B) { benchDBSCANParallel(b, 4) }
func BenchmarkAblationDBSCANParallel8(b *testing.B) { benchDBSCANParallel(b, 8) }

func benchDBSCANParallel(b *testing.B, workers int) {
	b.Helper()
	_, pickups := getDay(b)
	pts := make([]geo.Point, len(pickups))
	for i, p := range pickups {
		pts[i] = p.Centroid
	}
	params := cluster.Params{EpsMeters: 15, MinPoints: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.DBSCANParallel(pts, params, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// PEA speed-threshold sensitivity (the paper fixes η_sp = 10 km/h).
func BenchmarkAblationPEAThreshold5(b *testing.B)  { benchPEAThreshold(b, 5) }
func BenchmarkAblationPEAThreshold10(b *testing.B) { benchPEAThreshold(b, 10) }
func BenchmarkAblationPEAThreshold20(b *testing.B) { benchPEAThreshold(b, 20) }

func benchPEAThreshold(b *testing.B, kmh float64) {
	b.Helper()
	recs, _ := getDay(b)
	byTaxi := mdt.SplitByTaxi(recs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ExtractAll(byTaxi, kmh)
	}
}
