package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	cases := []struct {
		name    string
		mix     string
		entries int    // expected len(mix) when wantErr is empty
		wantErr string // substring the error must contain; "" = success
	}{
		{"full default", "spots=4,context=2,recommend=1,estimate=1", 4, ""},
		{"bare names default to weight 1", "spots,estimate", 2, ""},
		{"range-scan vocabulary", "history=4,heatmap=2,transitions=1", 3, ""},
		{"forecast vocabulary", "forecast=3,recommend=1", 2, ""},
		{"wide analytics vocabulary", "wide=2,spots=1", 2, ""},
		{"zero-weight entry dropped", "spots=4,context=0", 1, ""},
		{"unknown endpoint", "spots=4,teapots=1", 0, "unknown endpoint"},
		{"unparsable weight", "spots=x", 0, "bad weight"},
		{"negative weight", "spots=-3", 0, "negative weight"},
		{"negative among valid", "spots=4,context=-1", 0, "negative weight"},
		{"all weights zero", "spots=0,context=0", 0, "zero total weight"},
		{"empty string", "", 0, "empty mix"},
		{"only commas", " , ,", 0, "empty mix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mix, err := parseMix(tc.mix)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseMix(%q) err = %v, want %q", tc.mix, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseMix(%q): %v", tc.mix, err)
			}
			if len(mix) != tc.entries {
				t.Fatalf("parseMix(%q) = %+v, want %d entries", tc.mix, mix, tc.entries)
			}
		})
	}

	// Spot-check weights survive into the entries.
	mix, err := parseMix("spots=4,context=2")
	if err != nil || mix[0].name != "spots" || mix[0].weight != 4 || mix[1].weight != 2 {
		t.Fatalf("mix = %+v, %v", mix, err)
	}
}

// TestRunForecastMix drives a forecast-heavy mix against a stub: spot
// indexes must come from the probed /spots count and `at`, when sent,
// must parse as RFC3339.
func TestRunForecastMix(t *testing.T) {
	var hits, badReq atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/forecast", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		q := r.URL.Query()
		if s := q.Get("spot"); s != "0" && s != "1" {
			badReq.Add(1)
			http.Error(w, "bad spot", http.StatusBadRequest)
			return
		}
		if at := q.Get("at"); at != "" {
			if _, err := time.Parse(time.RFC3339, at); err != nil {
				badReq.Add(1)
				http.Error(w, "bad at", http.StatusBadRequest)
				return
			}
		}
		w.Write([]byte("{}\n"))
	})
	mux.HandleFunc("/spots", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`[{},{}]`))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { w.Write([]byte("ok")) })
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := defaultConfig()
	cfg.URL = ts.URL
	cfg.Duration = 200 * time.Millisecond
	cfg.Clients = 2
	cfg.Mix = "forecast"
	cfg.Start = "2026-01-05T00:00:00Z"
	sum, err := run(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range sum.Endpoints {
		if ep.Errors != 0 {
			t.Fatalf("%s: %d errors", ep.Name, ep.Errors)
		}
	}
	if hits.Load() == 0 {
		t.Fatalf("/forecast never hit: %+v", sum.Endpoints)
	}
	if badReq.Load() != 0 {
		t.Fatalf("%d malformed forecast requests", badReq.Load())
	}
}

// TestRunHistoryMix drives the range-scan mix against a stub exposing the
// history endpoints: spot indexes must come from the probed /spots count
// and every request must land.
func TestRunHistoryMix(t *testing.T) {
	var hits [3]atomic.Int64 // history, heatmap, transitions
	var badSpot atomic.Int64
	mux := http.NewServeMux()
	spotted := func(i int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			if s := r.URL.Query().Get("spot"); s != "2" && s != "1" && s != "0" {
				badSpot.Add(1)
				http.Error(w, "bad spot", http.StatusBadRequest)
				return
			}
			w.Write([]byte("{}\n"))
		}
	}
	mux.HandleFunc("/history", spotted(0))
	mux.HandleFunc("/transitions", spotted(2))
	mux.HandleFunc("/heatmap", func(w http.ResponseWriter, _ *http.Request) {
		hits[1].Add(1)
		w.Write([]byte("{}\n"))
	})
	// The spot-count probe reads this: three spots.
	mux.HandleFunc("/spots", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`[{},{},{}]`))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { w.Write([]byte("ok")) })
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := defaultConfig()
	cfg.URL = ts.URL
	cfg.Duration = 200 * time.Millisecond
	cfg.Clients = 2
	cfg.Mix = "history=4,heatmap=2,transitions=1"
	cfg.Start = "2026-01-05T00:00:00Z"
	sum, err := run(cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range sum.Endpoints {
		if ep.Errors != 0 {
			t.Fatalf("%s: %d errors", ep.Name, ep.Errors)
		}
	}
	for i := range hits {
		if hits[i].Load() == 0 {
			t.Fatalf("endpoint %d never hit: %+v", i, sum.Endpoints)
		}
	}
	if badSpot.Load() != 0 {
		t.Fatalf("%d requests drew a spot outside the probed count", badSpot.Load())
	}
}

// TestRunWideMix drives the wide-analytics mix against a stub: every
// request must be either a multi-day /history span or a range-form
// /heatmap (from/to present, to after from, at least one day wide), and
// the summary must report wide latency percentiles.
func TestRunWideMix(t *testing.T) {
	var history, heatmap, malformed atomic.Int64
	checkRange := func(r *http.Request) bool {
		q := r.URL.Query()
		from, errF := time.Parse(time.RFC3339, q.Get("from"))
		to, errT := time.Parse(time.RFC3339, q.Get("to"))
		return errF == nil && errT == nil && to.Sub(from) >= 24*time.Hour
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		history.Add(1)
		if s := r.URL.Query().Get("spot"); s != "0" && s != "1" {
			malformed.Add(1)
			http.Error(w, "bad spot", http.StatusBadRequest)
			return
		}
		if !checkRange(r) {
			malformed.Add(1)
			http.Error(w, "not a wide span", http.StatusBadRequest)
			return
		}
		w.Write([]byte("{}\n"))
	})
	mux.HandleFunc("/heatmap", func(w http.ResponseWriter, r *http.Request) {
		heatmap.Add(1)
		if !checkRange(r) {
			malformed.Add(1)
			http.Error(w, "not a range aggregate", http.StatusBadRequest)
			return
		}
		w.Write([]byte("{}\n"))
	})
	mux.HandleFunc("/spots", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`[{},{}]`))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { w.Write([]byte("ok")) })
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := defaultConfig()
	cfg.URL = ts.URL
	cfg.Duration = 200 * time.Millisecond
	cfg.Clients = 2
	cfg.Mix = "wide"
	cfg.Start = "2026-01-05T00:00:00Z"
	sum, err := run(cfg, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	if history.Load() == 0 || heatmap.Load() == 0 {
		t.Fatalf("wide mix skewed: %d history, %d heatmap", history.Load(), heatmap.Load())
	}
	if malformed.Load() != 0 {
		t.Fatalf("%d malformed wide requests", malformed.Load())
	}
	var wide *endpointStat
	for i := range sum.Endpoints {
		if sum.Endpoints[i].Name == "wide" {
			wide = &sum.Endpoints[i]
		}
	}
	if wide == nil || wide.Errors != 0 || wide.Requests == 0 {
		t.Fatalf("wide endpoint stat missing or errored: %+v", sum.Endpoints)
	}
	if wide.P50ms > wide.P90ms || wide.P90ms > wide.P99ms || wide.P99ms > wide.MaxMs {
		t.Fatalf("wide percentiles out of order: %+v", *wide)
	}
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(lats, 0.5); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if p := percentile(lats, 1.0); p != 10 {
		t.Fatalf("max = %d", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %d", p)
	}
}

// TestRunClosedLoop drives the whole harness against a stub queued: every
// endpoint of the mix must be hit, latencies recorded, and the summary
// consistent.
func TestRunClosedLoop(t *testing.T) {
	var hits [4]atomic.Int64 // spots, context, recommend, estimate
	mux := http.NewServeMux()
	stub := func(i int) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			hits[i].Add(1)
			w.Write([]byte("[]\n"))
		}
	}
	mux.HandleFunc("/spots", stub(0))
	mux.HandleFunc("/context", stub(1))
	mux.HandleFunc("/recommend", stub(2))
	mux.HandleFunc("/estimate", stub(3))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { w.Write([]byte("ok")) })
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := defaultConfig()
	cfg.URL = ts.URL
	cfg.Duration = 300 * time.Millisecond
	cfg.Clients = 3
	cfg.Start = "2026-01-05T00:00:00Z"
	sum, err := run(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mode != "closed" || sum.Clients != 3 {
		t.Fatalf("summary header = %+v", sum)
	}
	total := 0
	for _, ep := range sum.Endpoints {
		if ep.Errors != 0 {
			t.Fatalf("%s: %d errors", ep.Name, ep.Errors)
		}
		if ep.Requests > 0 && ep.MaxMs < ep.P50ms {
			t.Fatalf("%s: max %.3fms < p50 %.3fms", ep.Name, ep.MaxMs, ep.P50ms)
		}
		total += ep.Requests
	}
	var served int64
	for i := range hits {
		if hits[i].Load() == 0 {
			t.Fatalf("endpoint %d never hit: %+v", i, sum.Endpoints)
		}
		served += hits[i].Load()
	}
	// run() probes /spots once for the spot count before the load starts.
	if int64(total)+1 != served {
		t.Fatalf("summary counts %d requests, server saw %d (want summary+1 probe)", total, served)
	}
	if sum.TotalRPS <= 0 {
		t.Fatalf("total rps %f", sum.TotalRPS)
	}
}

// TestRunOpenLoop checks the rate-paced mode stays near its target on a
// fast stub.
func TestRunOpenLoop(t *testing.T) {
	mux := http.NewServeMux()
	ok := func(w http.ResponseWriter, _ *http.Request) { w.Write([]byte("[]\n")) }
	for _, p := range []string{"/spots", "/context", "/recommend", "/estimate", "/healthz"} {
		mux.HandleFunc(p, ok)
	}
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := defaultConfig()
	cfg.URL = ts.URL
	cfg.Duration = 500 * time.Millisecond
	cfg.Rate = 200
	sum, err := run(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mode != "open" || sum.RateTarget != 200 {
		t.Fatalf("summary header = %+v", sum)
	}
	total := 0
	for _, ep := range sum.Endpoints {
		total += ep.Requests
	}
	// ~100 arrivals scheduled; allow generous slack for a loaded CI box.
	if total < 30 || total > 150 {
		t.Fatalf("open loop sent %d requests at rate 200 over 0.5s", total)
	}
}

func TestRunBadTarget(t *testing.T) {
	cfg := defaultConfig()
	cfg.URL = "http://127.0.0.1:1" // nothing listens here
	cfg.Duration = 50 * time.Millisecond
	if _, err := run(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unreachable target did not error")
	}
}
