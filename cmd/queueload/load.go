package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
)

// Config is everything one load run needs; main fills it from flags and
// tests construct it directly.
type Config struct {
	URL      string
	Duration time.Duration
	Clients  int
	Rate     float64 // requests/sec; 0 = closed loop with Clients workers
	Mix      string
	Start    string // optional RFC3339 grid start for 'at' sweeps

	Feed      bool
	FeedScale float64
	FeedSeed  int64
	FeedBatch int

	Seed int64
}

func defaultConfig() Config {
	return Config{
		URL:       "http://localhost:8080",
		Duration:  10 * time.Second,
		Clients:   4,
		Mix:       "spots=4,context=2,recommend=1,estimate=1",
		FeedScale: 0.1,
		FeedSeed:  42,
		FeedBatch: 500,
		Seed:      1,
	}
}

// endpointStat is the reported result for one endpoint of the mix.
type endpointStat struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	RPS      float64 `json:"rps"`
	P50ms    float64 `json:"p50_ms"`
	P90ms    float64 `json:"p90_ms"`
	P99ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// Summary is queueload's JSON report.
type Summary struct {
	URL        string         `json:"url"`
	Mode       string         `json:"mode"` // "closed" or "open"
	Clients    int            `json:"clients,omitempty"`
	RateTarget float64        `json:"rate_target,omitempty"`
	DurationS  float64        `json:"duration_s"`
	TotalRPS   float64        `json:"total_rps"`
	Endpoints  []endpointStat `json:"endpoints"`
	FedRecords int            `json:"fed_records,omitempty"`
	FeedErrors int            `json:"feed_errors,omitempty"`
}

// mixEntry is one weighted endpoint of the workload.
type mixEntry struct {
	name   string
	weight int
}

// parseMix reads "spots=4,context=2,..." into weighted entries. A
// negative weight and an all-zero mix each get their own error — both
// used to collapse into messages that named the wrong mistake ("bad
// weight" for a perfectly parsed -3, "empty mix" for a mix with
// entries), which is exactly what a typo'd flag needs spelled out.
func parseMix(s string) ([]mixEntry, error) {
	known := map[string]bool{
		"spots": true, "context": true, "recommend": true, "estimate": true,
		"history": true, "heatmap": true, "transitions": true, "forecast": true,
		"wide": true,
	}
	var mix []mixEntry
	entries := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, found := strings.Cut(part, "=")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(ws); err != nil {
				return nil, fmt.Errorf("bad weight in %q", part)
			}
			if w < 0 {
				return nil, fmt.Errorf("negative weight in %q", part)
			}
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown endpoint %q (want spots|context|recommend|estimate|history|heatmap|transitions|forecast|wide)", name)
		}
		entries++
		if w > 0 {
			mix = append(mix, mixEntry{name, w})
		}
	}
	if len(mix) == 0 {
		if entries > 0 {
			// Every entry parsed but every weight was zero: pick() would
			// divide the workload over nothing.
			return nil, fmt.Errorf("mix %q has zero total weight", s)
		}
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return mix, nil
}

// pick returns the endpoint for one request: weighted selection over the
// mix.
func pick(mix []mixEntry, rng *rand.Rand) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := rng.Intn(total)
	for _, m := range mix {
		if n -= m.weight; n < 0 {
			return m.name
		}
	}
	return mix[len(mix)-1].name
}

// recorder accumulates latencies per endpoint.
type recorder struct {
	mu     sync.Mutex
	lat    map[string][]time.Duration
	errors map[string]int
}

func newRecorder() *recorder {
	return &recorder{lat: make(map[string][]time.Duration), errors: make(map[string]int)}
}

func (r *recorder) observe(name string, d time.Duration, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lat[name] = append(r.lat[name], d)
	if !ok {
		r.errors[name]++
	}
}

// percentile returns the p-quantile (0..1) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// summarize folds the recorder into the report.
func (r *recorder) summarize(elapsed time.Duration) []endpointStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.lat))
	for name := range r.lat {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]endpointStat, 0, len(names))
	for _, name := range names {
		lats := r.lat[name]
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		out = append(out, endpointStat{
			Name:     name,
			Requests: len(lats),
			Errors:   r.errors[name],
			RPS:      float64(len(lats)) / elapsed.Seconds(),
			P50ms:    ms(percentile(lats, 0.50)),
			P90ms:    ms(percentile(lats, 0.90)),
			P99ms:    ms(percentile(lats, 0.99)),
			MaxMs:    ms(percentile(lats, 1.0)),
		})
	}
	return out
}

// reqURL builds the query URL for one request of the mix. spots is the
// target's spot count (for endpoints taking a spot index).
func reqURL(cfg Config, name string, rng *rand.Rand, start time.Time, spots int) string {
	at := ""
	if !start.IsZero() {
		slot := rng.Intn(48)
		t := start.Add(time.Duration(slot)*30*time.Minute + 15*time.Minute)
		at = "at=" + t.UTC().Format(time.RFC3339)
	}
	spot := 0
	if spots > 0 {
		spot = rng.Intn(spots)
	}
	switch name {
	case "spots", "context":
		u := cfg.URL + "/" + name
		if at != "" {
			u += "?" + at
		}
		return u
	case "estimate":
		return cfg.URL + "/estimate"
	case "history":
		// Range scan: a random window of slots within the day (the whole
		// recorded range when no -start is given).
		u := fmt.Sprintf("%s/history?spot=%d", cfg.URL, spot)
		if !start.IsZero() {
			a := rng.Intn(48)
			span := 1 + rng.Intn(48-a)
			from := start.Add(time.Duration(a) * 30 * time.Minute)
			to := from.Add(time.Duration(span) * 30 * time.Minute)
			u += "&from=" + from.UTC().Format(time.RFC3339) + "&to=" + to.UTC().Format(time.RFC3339)
		}
		return u
	case "heatmap":
		u := cfg.URL + "/heatmap"
		if !start.IsZero() {
			slot := rng.Intn(48)
			t := start.Add(time.Duration(slot)*30*time.Minute + 15*time.Minute)
			u += "?t=" + t.UTC().Format(time.RFC3339)
		}
		return u
	case "transitions":
		return fmt.Sprintf("%s/transitions?spot=%d", cfg.URL, spot)
	case "wide":
		// Dashboard-shaped analytics: a multi-day /history span for one
		// spot, or a city-wide /heatmap range aggregate — the queries the
		// summary fast path serves from stored block summaries. Without
		// -start the "everything recorded" forms are used (epoch from clamps
		// to the grid start server-side).
		if start.IsZero() {
			if rng.Intn(2) == 0 {
				return fmt.Sprintf("%s/history?spot=%d", cfg.URL, spot)
			}
			return cfg.URL + "/heatmap?from=1970-01-01T00:00:00Z"
		}
		from := start.Add(time.Duration(rng.Intn(48)) * 30 * time.Minute)
		to := from.Add(time.Duration(1+rng.Intn(3)) * 24 * time.Hour)
		span := "from=" + from.UTC().Format(time.RFC3339) + "&to=" + to.UTC().Format(time.RFC3339)
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%s/history?spot=%d&%s", cfg.URL, spot, span)
		}
		return cfg.URL + "/heatmap?" + span
	case "forecast":
		// A future instant: the profile table answers for any day, so sweep
		// a few days ahead of the grid start (wall-clock "now" when no
		// -start is given — the server clamps it into the grid itself).
		u := fmt.Sprintf("%s/forecast?spot=%d", cfg.URL, spot)
		if !start.IsZero() {
			day := rng.Intn(4)
			slot := rng.Intn(48)
			t := start.Add(time.Duration(day)*24*time.Hour + time.Duration(slot)*30*time.Minute + 15*time.Minute)
			u += "&at=" + t.UTC().Format(time.RFC3339)
		}
		return u
	default: // recommend
		aud := "driver"
		if rng.Intn(2) == 1 {
			aud = "commuter"
		}
		lat := 1.23 + rng.Float64()*0.22
		lon := 103.6 + rng.Float64()*0.39
		u := fmt.Sprintf("%s/recommend?for=%s&lat=%.5f&lon=%.5f", cfg.URL, aud, lat, lon)
		if at != "" {
			u += "&" + at
		}
		return u
	}
}

// run executes the workload and returns the report.
func run(cfg Config, rng *rand.Rand) (Summary, error) {
	mix, err := parseMix(cfg.Mix)
	if err != nil {
		return Summary{}, err
	}
	var start time.Time
	if cfg.Start != "" {
		if start, err = time.Parse(time.RFC3339, cfg.Start); err != nil {
			return Summary{}, fmt.Errorf("bad -start: %w", err)
		}
	}
	client := &http.Client{Timeout: 10 * time.Second}
	// One readiness probe so a dead target fails fast instead of filling
	// the report with connection errors.
	resp, err := client.Get(cfg.URL + "/healthz")
	if err != nil {
		return Summary{}, fmt.Errorf("target not reachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// Probe the spot count once so the per-spot endpoints (history,
	// transitions) draw valid indexes.
	spots := 0
	if resp, err := client.Get(cfg.URL + "/spots"); err == nil {
		var arr []json.RawMessage
		if json.NewDecoder(resp.Body).Decode(&arr) == nil {
			spots = len(arr)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	rec := newRecorder()
	runStart := time.Now()
	deadline := runStart.Add(cfg.Duration)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	fetch := func(name, url string) {
		t0 := time.Now()
		resp, err := client.Get(url)
		ok := err == nil && resp.StatusCode == 200
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		rec.observe(name, time.Since(t0), ok)
	}

	var fed, feedErrs int
	if cfg.Feed {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fed, feedErrs = feedLoop(cfg, client, stop)
		}()
	}

	mode := "closed"
	if cfg.Rate > 0 {
		mode = "open"
		// Open loop: arrivals on a fixed schedule, each served by its own
		// goroutine so a slow response never delays the next arrival.
		wg.Add(1)
		go func() {
			defer wg.Done()
			interval := time.Duration(float64(time.Second) / cfg.Rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			seq := rand.New(rand.NewSource(rng.Int63()))
			var reqWG sync.WaitGroup
			defer reqWG.Wait()
			for time.Now().Before(deadline) {
				<-tick.C
				name := pick(mix, seq)
				url := reqURL(cfg, name, seq, start, spots)
				reqWG.Add(1)
				go func() { defer reqWG.Done(); fetch(name, url) }()
			}
		}()
	} else {
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				seq := rand.New(rand.NewSource(seed))
				for time.Now().Before(deadline) {
					name := pick(mix, seq)
					fetch(name, reqURL(cfg, name, seq, start, spots))
				}
			}(rng.Int63())
		}
	}

	wgWaitReaders(&wg, stop, deadline)
	elapsed := time.Since(runStart)

	sum := Summary{
		URL:        cfg.URL,
		Mode:       mode,
		DurationS:  cfg.Duration.Seconds(),
		Endpoints:  rec.summarize(elapsed),
		FedRecords: fed,
		FeedErrors: feedErrs,
	}
	if mode == "closed" {
		sum.Clients = cfg.Clients
	} else {
		sum.RateTarget = cfg.Rate
	}
	for _, ep := range sum.Endpoints {
		sum.TotalRPS += ep.RPS
	}
	return sum, nil
}

// wgWaitReaders stops the feeder once the read deadline passes, then waits
// for everything.
func wgWaitReaders(wg *sync.WaitGroup, stop chan struct{}, deadline time.Time) {
	if d := time.Until(deadline); d > 0 {
		time.Sleep(d)
	}
	close(stop)
	wg.Wait()
}

// feedLoop replays a simulated, cleaned MDT day into /ingest in
// JSON-lines batches, shifting each lap by +24h to preserve per-taxi time
// order. Returns how many records were posted and how many batches
// failed.
func feedLoop(cfg Config, client *http.Client, stop chan struct{}) (fed, errs int) {
	out := sim.Run(sim.Config{Seed: cfg.FeedSeed, City: citymap.Generate(cfg.FeedSeed, cfg.FeedScale)})
	day, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	if len(day) == 0 {
		return 0, 0
	}
	batch := make([]mdt.Record, cfg.FeedBatch)
	var body bytes.Buffer
	for shift := time.Duration(0); ; shift += 24 * time.Hour {
		for i := 0; i < len(day); i += cfg.FeedBatch {
			select {
			case <-stop:
				return fed, errs
			default:
			}
			n := len(day) - i
			if n > cfg.FeedBatch {
				n = cfg.FeedBatch
			}
			b := batch[:n]
			copy(b, day[i:i+n])
			if shift != 0 {
				for j := range b {
					b[j].Time = b[j].Time.Add(shift)
				}
			}
			body.Reset()
			if err := ingest.EncodeJSONLines(&body, b); err != nil {
				errs++
				continue
			}
			resp, err := client.Post(cfg.URL+"/ingest", ingest.ContentTypeJSONLines, &body)
			if err != nil {
				errs++
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs++
				continue
			}
			fed += n
		}
	}
}
