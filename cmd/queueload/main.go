// Command queueload is the load-generation harness for the queued read
// path: it drives a mixed GET workload (spots / context / recommend /
// estimate / history / heatmap / transitions / forecast / wide, where
// "wide" issues multi-day /history spans and range-form /heatmap
// aggregates) against a running queued instance — closed-loop (a fixed
// number of always-busy clients) or open-loop (a fixed arrival rate) —
// and reports per-endpoint throughput and latency percentiles as JSON.
// With -feed it simultaneously replays a simulated MDT day into /ingest,
// so the measured read latencies include live snapshot churn.
//
// Usage:
//
//	queued -addr :8080 -live &
//	queueload -url http://localhost:8080 -clients 8 -duration 30s \
//	    -mix spots=4,context=2,recommend=1,estimate=1 -feed
//
// Open-loop mode replaces -clients with a target arrival rate:
//
//	queueload -url http://localhost:8080 -rate 500 -duration 30s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
)

func main() {
	cfg := defaultConfig()
	flag.StringVar(&cfg.URL, "url", cfg.URL, "base URL of the queued instance")
	flag.DurationVar(&cfg.Duration, "duration", cfg.Duration, "how long to run the workload")
	flag.IntVar(&cfg.Clients, "clients", cfg.Clients, "closed-loop concurrent clients (ignored when -rate > 0)")
	flag.Float64Var(&cfg.Rate, "rate", cfg.Rate, "open-loop arrival rate in requests/sec (0 = closed loop)")
	flag.StringVar(&cfg.Mix, "mix", cfg.Mix, "endpoint weights, e.g. spots=4,context=2,recommend=1,estimate=1")
	flag.StringVar(&cfg.Start, "start", cfg.Start, "grid start (RFC3339): sweep 'at' over the day's slots instead of the default time")
	flag.BoolVar(&cfg.Feed, "feed", cfg.Feed, "replay a simulated MDT day into /ingest during the run")
	flag.Float64Var(&cfg.FeedScale, "feed-scale", cfg.FeedScale, "city scale of the simulated feed day")
	flag.Int64Var(&cfg.FeedSeed, "feed-seed", cfg.FeedSeed, "seed of the simulated feed day")
	flag.IntVar(&cfg.FeedBatch, "feed-batch", cfg.FeedBatch, "records per /ingest POST")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "workload randomness seed")
	flag.Parse()

	sum, err := run(cfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		log.Fatalf("queueload: %v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		log.Fatal(err)
	}
	for _, ep := range sum.Endpoints {
		if ep.Errors > 0 {
			fmt.Fprintf(os.Stderr, "queueload: %s: %d errors\n", ep.Name, ep.Errors)
			os.Exit(1)
		}
	}
}
