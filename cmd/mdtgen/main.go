// Command mdtgen generates a synthetic MDT log dataset: a full simulated
// day (or any duration) of event-driven taxi telemetry in the Table 2 text
// format or the binary store format — or replays it in timestamp order
// against a live queued /ingest endpoint.
//
// Usage:
//
//	mdtgen -o day.log                        # text format
//	mdtgen -o day.tqs -format store          # binary store
//	mdtgen -scale 0.25 -taxis 1000 -faults=false -duration 6h
//	mdtgen -stream http://localhost:8080/ingest -rate 5000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/feedclient"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
	"taxiqueue/internal/store"
)

// streamFeed replays recs (already in timestamp order) to a live /ingest
// endpoint through the resilient feed client: per-request timeouts, capped
// exponential backoff across transport errors and 5xx, and 429
// backpressure resumed at the server's processed cursor.
func streamFeed(url string, recs []mdt.Record, rate float64, batchSize int, encoding string) (*feedclient.Client, error) {
	cl, err := feedclient.New(feedclient.Config{
		URL: url, BatchSize: batchSize, Encoding: encoding, Rate: rate,
		Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := cl.Stream(context.Background(), recs)
	if err != nil {
		return nil, fmt.Errorf("after %d records: %w", rep.Sent, err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "mdtgen: streamed %d records in %v (%.0f rec/s, %d retries, %d backpressure rounds)\n",
		rep.Sent, elapsed.Round(time.Millisecond), float64(rep.Sent)/elapsed.Seconds(), rep.Retries, rep.Backpressure)
	return cl, nil
}

// popupSite picks a deterministic location inside the island frame at
// least 200 m from every landmark — somewhere no batch pass grows a queue
// spot, so pickups there exercise the live-discovery path.
func popupSite(city *citymap.Map) geo.Point {
	base := citymap.IslandClamp(geo.Point{Lat: citymap.Island.MinLat, Lon: citymap.Island.MinLon})
	if len(city.Landmarks) > 0 {
		base = city.Landmarks[0].Pos
	}
	for east := 250.0; east < 20000; east += 97 {
		for north := -800.0; north <= 800; north += 83 {
			p := geo.Offset(base, east, north)
			if !citymap.Island.Contains(p) {
				continue
			}
			clear := true
			for _, lm := range city.Landmarks {
				if geo.Equirect(lm.Pos, p) < 200 {
					clear = false
					break
				}
			}
			if clear {
				return p
			}
		}
	}
	return base
}

// popupRecords fabricates n fresh taxis each making one street pickup
// scattered a few meters around site, one per minute starting at t0:
// slow-rolling FREE, a crawl, then occupied and gone — the §4 pickup
// signature, from IDs the organic fleet never uses.
func popupRecords(site geo.Point, n int, t0 time.Time) []mdt.Record {
	rng := rand.New(rand.NewSource(5))
	recs := make([]mdt.Record, 0, 4*n)
	for i := 0; i < n; i++ {
		base := t0.Add(time.Duration(i) * time.Minute)
		id := fmt.Sprintf("POPUP%03d", i)
		pos := geo.Offset(site, rng.NormFloat64()*4, rng.NormFloat64()*4)
		recs = append(recs,
			mdt.Record{Time: base, TaxiID: id, Pos: pos, Speed: 30, State: mdt.Free},
			mdt.Record{Time: base.Add(20 * time.Second), TaxiID: id, Pos: pos, Speed: 3, State: mdt.Free},
			mdt.Record{Time: base.Add(40 * time.Second), TaxiID: id, Pos: pos, Speed: 2, State: mdt.POB},
			mdt.Record{Time: base.Add(60 * time.Second), TaxiID: id, Pos: pos, Speed: 35, State: mdt.POB},
		)
	}
	return recs
}

func main() {
	out := flag.String("o", "-", "output file ('-' for stdout)")
	format := flag.String("format", "text", "output format: text or store")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "city scale (1.0 = ~190 landmarks)")
	taxis := flag.Int("taxis", 0, "fleet size (0 = sized to the city)")
	surge := flag.Int("surge", 1, "fleet multiplier: replay a demand-shock day (10 = the 10x airport-surge scenario)")
	popup := flag.Int("popup", 0, "inject N fabricated pickups at a pop-up site (away from every landmark) starting mid-duration — exercises live spot discovery")
	duration := flag.Duration("duration", 24*time.Hour, "simulated duration")
	date := flag.String("date", "2026-01-05", "start date (YYYY-MM-DD, midnight)")
	faults := flag.Bool("faults", true, "inject the §6.1.1 error modes")
	cityIn := flag.String("city", "", "load the landmark registry from this JSON file instead of generating one")
	cityOut := flag.String("savecity", "", "write the landmark registry used to this JSON file")
	streamURL := flag.String("stream", "", "replay the feed to this /ingest URL instead of writing a file")
	rate := flag.Float64("rate", 0, "records per second when streaming (0 = as fast as possible)")
	batch := flag.Int("batch", 500, "records per POST when streaming")
	encoding := flag.String("encoding", "binary", "wire encoding when streaming: binary or json")
	flush := flag.Bool("flush", true, "POST <stream>/flush after the feed so every slot is finalized")
	stats := flag.Bool("stats", false, "print <stream>/stats after streaming (server-side accept/reject/drop view)")
	flag.Parse()

	start, err := time.Parse("2006-01-02", *date)
	if err != nil {
		log.Fatalf("bad -date: %v", err)
	}
	var city *citymap.Map
	if *cityIn != "" {
		f, err := os.Open(*cityIn)
		if err != nil {
			log.Fatal(err)
		}
		city, err = citymap.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		city = citymap.Generate(*seed, *scale)
	}
	if *cityOut != "" {
		f, err := os.Create(*cityOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := city.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *surge < 1 {
		log.Fatalf("bad -surge %d: the multiplier must be >= 1", *surge)
	}
	fleet := *taxis
	if *surge > 1 {
		// The surge scenario multiplies whatever fleet would have run: the
		// explicit -taxis value, or the city-sized default — same seed, same
		// city, just N times the taxis, so a surge day is exactly
		// reproducible and directly comparable to its 1x baseline.
		if fleet == 0 {
			fleet = sim.DefaultFleet(city)
		}
		fleet *= *surge
		fmt.Fprintf(os.Stderr, "mdtgen: surge x%d: %d taxis\n", *surge, fleet)
	}
	res := sim.Run(sim.Config{
		Seed:         *seed,
		Start:        start.UTC(),
		Duration:     *duration,
		NumTaxis:     fleet,
		City:         city,
		InjectFaults: *faults,
	})

	if *popup > 0 {
		site := popupSite(city)
		t0 := start.UTC().Add(*duration / 2)
		res.Records = append(res.Records, popupRecords(site, *popup, t0)...)
		// Restore global timestamp order; a stable sort keeps every taxi's
		// own records in sequence.
		sort.SliceStable(res.Records, func(i, j int) bool {
			return res.Records[i].Time.Before(res.Records[j].Time)
		})
		fmt.Fprintf(os.Stderr, "mdtgen: popup: %d pickups at (%.5f, %.5f) from %s\n",
			*popup, site.Lat, site.Lon, t0.Format(time.RFC3339))
	}

	if *streamURL != "" {
		cl, err := streamFeed(*streamURL, res.Records, *rate, *batch, *encoding)
		if err != nil {
			log.Fatal(err)
		}
		if *flush {
			if err := cl.Flush(context.Background()); err != nil {
				log.Fatal(err)
			}
		}
		if *stats {
			raw, err := cl.Stats(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "mdtgen: server stats: %s\n", raw)
		}
		return
	}

	switch *format {
	case "text":
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}()
			w = f
		}
		if err := mdt.WriteText(w, res.Records); err != nil {
			log.Fatal(err)
		}
	case "store":
		st := store.New()
		if err := st.AppendAll(res.Records); err != nil {
			log.Fatal(err)
		}
		if *out == "-" {
			if err := st.Save(os.Stdout); err != nil {
				log.Fatal(err)
			}
		} else if err := st.SaveFile(*out); err != nil {
			// Atomic temp-file + rename: a crash never leaves a torn file.
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -format %q (want text or store)", *format)
	}
	fmt.Fprintf(os.Stderr, "mdtgen: %d records from %d taxis over %v (faults: %d)\n",
		len(res.Records), res.Config.NumTaxis, *duration, res.Stats.InjectedFaults)
}
