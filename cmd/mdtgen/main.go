// Command mdtgen generates a synthetic MDT log dataset: a full simulated
// day (or any duration) of event-driven taxi telemetry in the Table 2 text
// format or the binary store format — or replays it in timestamp order
// against a live queued /ingest endpoint.
//
// Usage:
//
//	mdtgen -o day.log                        # text format
//	mdtgen -o day.tqs -format store          # binary store
//	mdtgen -scale 0.25 -taxis 1000 -faults=false -duration 6h
//	mdtgen -stream http://localhost:8080/ingest -rate 5000
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
	"taxiqueue/internal/store"
)

// postBatch sends one record batch and returns how many the server
// accepted along with the HTTP status.
func postBatch(client *http.Client, url string, recs []mdt.Record, encoding string) (int, int, error) {
	var body bytes.Buffer
	ct := ingest.ContentTypeJSONLines
	if encoding == "binary" {
		ct = ingest.ContentTypeBinary
		body.Write(ingest.EncodeBinary(nil, recs))
	} else if err := ingest.EncodeJSONLines(&body, recs); err != nil {
		return 0, 0, err
	}
	resp, err := client.Post(url, ct, &body)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var ir struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, resp.StatusCode, err
	}
	if err := json.Unmarshal(raw, &ir); err != nil {
		return 0, resp.StatusCode, fmt.Errorf("bad /ingest reply (%d): %s", resp.StatusCode, raw)
	}
	if ir.Error != "" && resp.StatusCode != http.StatusTooManyRequests {
		return ir.Accepted, resp.StatusCode, fmt.Errorf("/ingest: %s", ir.Error)
	}
	return ir.Accepted, resp.StatusCode, nil
}

// streamFeed replays recs (already in timestamp order) to a live /ingest
// endpoint, pacing to rate records/sec when rate > 0 and retrying the
// unaccepted remainder on 429 backpressure.
func streamFeed(url string, recs []mdt.Record, rate float64, batchSize int, encoding string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	sent, retries := 0, 0
	for sent < len(recs) {
		if rate > 0 {
			due := start.Add(time.Duration(float64(sent) / rate * float64(time.Second)))
			time.Sleep(time.Until(due))
		}
		n := batchSize
		if n > len(recs)-sent {
			n = len(recs) - sent
		}
		accepted, status, err := postBatch(client, url, recs[sent:sent+n], encoding)
		if err != nil {
			return err
		}
		switch status {
		case http.StatusOK:
			sent += n
		case http.StatusTooManyRequests:
			// The server took a prefix; advance past it and retry the rest.
			sent += accepted
			retries++
			time.Sleep(100 * time.Millisecond)
		default:
			return fmt.Errorf("/ingest: unexpected status %d", status)
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "mdtgen: streamed %d records in %v (%.0f rec/s, %d backpressure retries)\n",
		len(recs), elapsed.Round(time.Millisecond), float64(len(recs))/elapsed.Seconds(), retries)
	return nil
}

func main() {
	out := flag.String("o", "-", "output file ('-' for stdout)")
	format := flag.String("format", "text", "output format: text or store")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "city scale (1.0 = ~190 landmarks)")
	taxis := flag.Int("taxis", 0, "fleet size (0 = sized to the city)")
	duration := flag.Duration("duration", 24*time.Hour, "simulated duration")
	date := flag.String("date", "2026-01-05", "start date (YYYY-MM-DD, midnight)")
	faults := flag.Bool("faults", true, "inject the §6.1.1 error modes")
	cityIn := flag.String("city", "", "load the landmark registry from this JSON file instead of generating one")
	cityOut := flag.String("savecity", "", "write the landmark registry used to this JSON file")
	streamURL := flag.String("stream", "", "replay the feed to this /ingest URL instead of writing a file")
	rate := flag.Float64("rate", 0, "records per second when streaming (0 = as fast as possible)")
	batch := flag.Int("batch", 500, "records per POST when streaming")
	encoding := flag.String("encoding", "binary", "wire encoding when streaming: binary or json")
	flush := flag.Bool("flush", true, "POST <stream>/flush after the feed so every slot is finalized")
	stats := flag.Bool("stats", false, "print <stream>/stats after streaming (server-side accept/reject/drop view)")
	flag.Parse()

	start, err := time.Parse("2006-01-02", *date)
	if err != nil {
		log.Fatalf("bad -date: %v", err)
	}
	var city *citymap.Map
	if *cityIn != "" {
		f, err := os.Open(*cityIn)
		if err != nil {
			log.Fatal(err)
		}
		city, err = citymap.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		city = citymap.Generate(*seed, *scale)
	}
	if *cityOut != "" {
		f, err := os.Create(*cityOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := city.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	res := sim.Run(sim.Config{
		Seed:         *seed,
		Start:        start.UTC(),
		Duration:     *duration,
		NumTaxis:     *taxis,
		City:         city,
		InjectFaults: *faults,
	})

	if *streamURL != "" {
		if *encoding != "binary" && *encoding != "json" {
			log.Fatalf("unknown -encoding %q (want binary or json)", *encoding)
		}
		if err := streamFeed(*streamURL, res.Records, *rate, *batch, *encoding); err != nil {
			log.Fatal(err)
		}
		if *flush {
			resp, err := http.Post(*streamURL+"/flush", "", nil)
			if err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("flush: status %d", resp.StatusCode)
			}
		}
		if *stats {
			resp, err := http.Get(*streamURL + "/stats")
			if err != nil {
				log.Fatal(err)
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				log.Fatalf("stats: status %d: %v", resp.StatusCode, err)
			}
			fmt.Fprintf(os.Stderr, "mdtgen: server stats: %s\n", raw)
		}
		return
	}

	switch *format {
	case "text":
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}()
			w = f
		}
		if err := mdt.WriteText(w, res.Records); err != nil {
			log.Fatal(err)
		}
	case "store":
		st := store.New()
		if err := st.AppendAll(res.Records); err != nil {
			log.Fatal(err)
		}
		if *out == "-" {
			if err := st.Save(os.Stdout); err != nil {
				log.Fatal(err)
			}
		} else if err := st.SaveFile(*out); err != nil {
			// Atomic temp-file + rename: a crash never leaves a torn file.
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -format %q (want text or store)", *format)
	}
	fmt.Fprintf(os.Stderr, "mdtgen: %d records from %d taxis over %v (faults: %d)\n",
		len(res.Records), res.Config.NumTaxis, *duration, res.Stats.InjectedFaults)
}
