// Command mdtgen generates a synthetic MDT log dataset: a full simulated
// day (or any duration) of event-driven taxi telemetry in the Table 2 text
// format or the binary store format.
//
// Usage:
//
//	mdtgen -o day.log                        # text format
//	mdtgen -o day.tqs -format store          # binary store
//	mdtgen -scale 0.25 -taxis 1000 -faults=false -duration 6h
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
	"taxiqueue/internal/store"
)

func main() {
	out := flag.String("o", "-", "output file ('-' for stdout)")
	format := flag.String("format", "text", "output format: text or store")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "city scale (1.0 = ~190 landmarks)")
	taxis := flag.Int("taxis", 0, "fleet size (0 = sized to the city)")
	duration := flag.Duration("duration", 24*time.Hour, "simulated duration")
	date := flag.String("date", "2026-01-05", "start date (YYYY-MM-DD, midnight)")
	faults := flag.Bool("faults", true, "inject the §6.1.1 error modes")
	cityIn := flag.String("city", "", "load the landmark registry from this JSON file instead of generating one")
	cityOut := flag.String("savecity", "", "write the landmark registry used to this JSON file")
	flag.Parse()

	start, err := time.Parse("2006-01-02", *date)
	if err != nil {
		log.Fatalf("bad -date: %v", err)
	}
	var city *citymap.Map
	if *cityIn != "" {
		f, err := os.Open(*cityIn)
		if err != nil {
			log.Fatal(err)
		}
		city, err = citymap.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		city = citymap.Generate(*seed, *scale)
	}
	if *cityOut != "" {
		f, err := os.Create(*cityOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := city.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	res := sim.Run(sim.Config{
		Seed:         *seed,
		Start:        start.UTC(),
		Duration:     *duration,
		NumTaxis:     *taxis,
		City:         city,
		InjectFaults: *faults,
	})

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "text":
		if err := mdt.WriteText(w, res.Records); err != nil {
			log.Fatal(err)
		}
	case "store":
		st := store.New()
		if err := st.AppendAll(res.Records); err != nil {
			log.Fatal(err)
		}
		if err := st.Save(w); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -format %q (want text or store)", *format)
	}
	fmt.Fprintf(os.Stderr, "mdtgen: %d records from %d taxis over %v (faults: %d)\n",
		len(res.Records), res.Config.NumTaxis, *duration, res.Stats.InjectedFaults)
}
