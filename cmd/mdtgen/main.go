// Command mdtgen generates a synthetic MDT log dataset: a full simulated
// day (or any duration) of event-driven taxi telemetry in the Table 2 text
// format or the binary store format — or replays it in timestamp order
// against a live queued /ingest endpoint.
//
// Usage:
//
//	mdtgen -o day.log                        # text format
//	mdtgen -o day.tqs -format store          # binary store
//	mdtgen -scale 0.25 -taxis 1000 -faults=false -duration 6h
//	mdtgen -stream http://localhost:8080/ingest -rate 5000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/feedclient"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
	"taxiqueue/internal/store"
)

// streamFeed replays recs (already in timestamp order) to a live /ingest
// endpoint through the resilient feed client: per-request timeouts, capped
// exponential backoff across transport errors and 5xx, and 429
// backpressure resumed at the server's processed cursor.
func streamFeed(url string, recs []mdt.Record, rate float64, batchSize int, encoding string) (*feedclient.Client, error) {
	cl, err := feedclient.New(feedclient.Config{
		URL: url, BatchSize: batchSize, Encoding: encoding, Rate: rate,
		Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := cl.Stream(context.Background(), recs)
	if err != nil {
		return nil, fmt.Errorf("after %d records: %w", rep.Sent, err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "mdtgen: streamed %d records in %v (%.0f rec/s, %d retries, %d backpressure rounds)\n",
		rep.Sent, elapsed.Round(time.Millisecond), float64(rep.Sent)/elapsed.Seconds(), rep.Retries, rep.Backpressure)
	return cl, nil
}

func main() {
	out := flag.String("o", "-", "output file ('-' for stdout)")
	format := flag.String("format", "text", "output format: text or store")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "city scale (1.0 = ~190 landmarks)")
	taxis := flag.Int("taxis", 0, "fleet size (0 = sized to the city)")
	surge := flag.Int("surge", 1, "fleet multiplier: replay a demand-shock day (10 = the 10x airport-surge scenario)")
	duration := flag.Duration("duration", 24*time.Hour, "simulated duration")
	date := flag.String("date", "2026-01-05", "start date (YYYY-MM-DD, midnight)")
	faults := flag.Bool("faults", true, "inject the §6.1.1 error modes")
	cityIn := flag.String("city", "", "load the landmark registry from this JSON file instead of generating one")
	cityOut := flag.String("savecity", "", "write the landmark registry used to this JSON file")
	streamURL := flag.String("stream", "", "replay the feed to this /ingest URL instead of writing a file")
	rate := flag.Float64("rate", 0, "records per second when streaming (0 = as fast as possible)")
	batch := flag.Int("batch", 500, "records per POST when streaming")
	encoding := flag.String("encoding", "binary", "wire encoding when streaming: binary or json")
	flush := flag.Bool("flush", true, "POST <stream>/flush after the feed so every slot is finalized")
	stats := flag.Bool("stats", false, "print <stream>/stats after streaming (server-side accept/reject/drop view)")
	flag.Parse()

	start, err := time.Parse("2006-01-02", *date)
	if err != nil {
		log.Fatalf("bad -date: %v", err)
	}
	var city *citymap.Map
	if *cityIn != "" {
		f, err := os.Open(*cityIn)
		if err != nil {
			log.Fatal(err)
		}
		city, err = citymap.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		city = citymap.Generate(*seed, *scale)
	}
	if *cityOut != "" {
		f, err := os.Create(*cityOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := city.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *surge < 1 {
		log.Fatalf("bad -surge %d: the multiplier must be >= 1", *surge)
	}
	fleet := *taxis
	if *surge > 1 {
		// The surge scenario multiplies whatever fleet would have run: the
		// explicit -taxis value, or the city-sized default — same seed, same
		// city, just N times the taxis, so a surge day is exactly
		// reproducible and directly comparable to its 1x baseline.
		if fleet == 0 {
			fleet = sim.DefaultFleet(city)
		}
		fleet *= *surge
		fmt.Fprintf(os.Stderr, "mdtgen: surge x%d: %d taxis\n", *surge, fleet)
	}
	res := sim.Run(sim.Config{
		Seed:         *seed,
		Start:        start.UTC(),
		Duration:     *duration,
		NumTaxis:     fleet,
		City:         city,
		InjectFaults: *faults,
	})

	if *streamURL != "" {
		cl, err := streamFeed(*streamURL, res.Records, *rate, *batch, *encoding)
		if err != nil {
			log.Fatal(err)
		}
		if *flush {
			if err := cl.Flush(context.Background()); err != nil {
				log.Fatal(err)
			}
		}
		if *stats {
			raw, err := cl.Stats(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "mdtgen: server stats: %s\n", raw)
		}
		return
	}

	switch *format {
	case "text":
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}()
			w = f
		}
		if err := mdt.WriteText(w, res.Records); err != nil {
			log.Fatal(err)
		}
	case "store":
		st := store.New()
		if err := st.AppendAll(res.Records); err != nil {
			log.Fatal(err)
		}
		if *out == "-" {
			if err := st.Save(os.Stdout); err != nil {
				log.Fatal(err)
			}
		} else if err := st.SaveFile(*out); err != nil {
			// Atomic temp-file + rename: a crash never leaves a torn file.
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -format %q (want text or store)", *format)
	}
	fmt.Fprintf(os.Stderr, "mdtgen: %d records from %d taxis over %v (faults: %d)\n",
		len(res.Records), res.Config.NumTaxis, *duration, res.Stats.InjectedFaults)
}
