// Command experiments regenerates every table and figure from the paper's
// evaluation section (§6) against the simulated substrate and prints them
// with the paper's reference values alongside.
//
// Usage:
//
//	experiments [-scale 1.0] [-seed 2015] [-spots 25] [-run all]
//
// -run selects a comma-separated subset of:
// cleaning,fig6,fig7,table4,fig8,table5,table6,table7,fig9,table8,table9,
// driver,transitions
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"taxiqueue/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "city scale (1.0 = paper-scale ~190 landmarks)")
	seed := flag.Int64("seed", 2015, "random seed for the city and all days")
	spots := flag.Int("spots", 25, "context-experiment spot count (paper: 25)")
	run := flag.String("run", "all", "comma-separated experiment subset, or 'all'")
	flag.Parse()

	suite := experiments.NewSuite(experiments.Config{
		Seed:         *seed,
		CityScale:    *scale,
		ContextSpots: *spots,
	})

	type exp struct {
		name string
		fn   func() (string, error)
	}
	all := []exp{
		{"cleaning", func() (string, error) { _, s, err := suite.Cleaning(); return s, err }},
		{"fig6", func() (string, error) { _, s, err := suite.Fig6(); return s, err }},
		{"fig7", func() (string, error) { _, s, err := suite.Fig7(); return s, err }},
		{"table4", func() (string, error) { _, s, err := suite.Table4(); return s, err }},
		{"fig8", func() (string, error) { _, s, err := suite.Fig8(); return s, err }},
		{"table5", func() (string, error) { _, s, err := suite.Table5(); return s, err }},
		{"table6", func() (string, error) { _, s, err := suite.Table6(); return s, err }},
		{"table7", func() (string, error) { _, s, err := suite.Table7(); return s, err }},
		{"fig9", func() (string, error) { _, s, err := suite.Fig9(); return s, err }},
		{"table8", func() (string, error) { _, s, err := suite.Table8(); return s, err }},
		{"table9", func() (string, error) { _, s, err := suite.Table9(); return s, err }},
		{"driver", func() (string, error) { _, s, err := suite.DriverBehavior(); return s, err }},
		{"transitions", func() (string, error) { _, s, err := suite.Transitions(); return s, err }},
		{"ablation-speed", func() (string, error) { _, s, err := suite.AblationSpeedThreshold(); return s, err }},
		{"ablation-amplify", func() (string, error) { _, s, err := suite.AblationAmplification(); return s, err }},
		{"ablation-zoning", func() (string, error) { _, s, err := suite.AblationZoning(); return s, err }},
		{"registry", func() (string, error) { _, s, err := suite.Registry(); return s, err }},
		{"accuracy", func() (string, error) { _, s, err := suite.Accuracy(); return s, err }},
	}

	selected := map[string]bool{}
	if *run != "all" {
		for _, name := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(name)] = true
		}
		known := map[string]bool{}
		for _, e := range all {
			known[e.name] = true
		}
		for name := range selected {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				os.Exit(2)
			}
		}
	}

	start := time.Now()
	for _, e := range all {
		if *run != "all" && !selected[e.name] {
			continue
		}
		t0 := time.Now()
		out, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.name, time.Since(t0).Seconds(), out)
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
}
