package main

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/forecast"
	"taxiqueue/internal/obs"
)

// forecastServer serves the ROADMAP-item-3 question — "what will the
// queue be at 18:30?" — off the learner's published profile table:
//
//	GET /forecast?spot=N[&at=RFC3339]   expected label, queue length, wait
//
// The handler is lock-free: one atomic table load, then a pure evaluation
// over immutable memory. There is no response cache — `at` is an
// arbitrary future instant, so the parameter space doesn't bucket the way
// the point-lookup endpoints do, and an evaluation is a few hundred
// nanoseconds anyway.
type forecastServer struct {
	fc *forecast.Learner
}

// newForecastLearner opens (or recovers) the forecast learner for the
// analyzed day's grid and spot set.
func newForecastLearner(dir string, res *core.Result, reg *obs.Registry) (*forecast.Learner, error) {
	ths := make([]core.Thresholds, len(res.Spots))
	for i := range res.Spots {
		ths[i] = res.Spots[i].Thresholds
	}
	return forecast.Open(forecast.Config{
		Grid:       res.Config.Grid,
		Spots:      len(res.Spots),
		Thresholds: ths,
		Dir:        dir,
		Metrics:    reg,
	})
}

// forecastJSON is the /forecast payload.
type forecastJSON struct {
	Spot    int       `json:"spot"`
	T       time.Time `json:"t"`
	Day     int       `json:"day"`
	Slot    int       `json:"slot"`
	Context string    `json:"context"`
	QLen    float64   `json:"q_len"`
	WaitS   float64   `json:"wait_s"`
	Source  string    `json:"source"`
	Weight  float64   `json:"weight"` // effective observed days behind the answer
}

// handleForecast evaluates one spot's expected queue state at a (usually
// future) instant. `at` defaults to now, clamped to the grid start so a
// wall clock behind the simulated grid still answers.
func (f *forecastServer) handleForecast(w http.ResponseWriter, r *http.Request) {
	t := f.fc.Table()
	if t.Spots() == 0 {
		// A batch run that detected no spots leaves nothing to forecast;
		// the old path answered "need spot=0..-1", a hint no request could
		// ever satisfy.
		http.Error(w, "no spots detected", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	spot, err := strconv.Atoi(q.Get("spot"))
	if err != nil || spot < 0 || spot >= t.Spots() {
		http.Error(w, "need spot=0.."+strconv.Itoa(t.Spots()-1), http.StatusBadRequest)
		return
	}
	var at time.Time
	if s := q.Get("at"); s != "" {
		at, err = time.Parse(time.RFC3339, s)
		if err != nil {
			http.Error(w, "bad 'at'", http.StatusBadRequest)
			return
		}
	} else {
		at = time.Now()
		if start := f.fc.Grid().Start; at.Before(start) {
			at = start
		}
	}
	fc, ok := t.Forecast(spot, at)
	if !ok {
		http.Error(w, "'at' precedes the grid", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	err = json.NewEncoder(w).Encode(forecastJSON{
		Spot: spot, T: fc.Time, Day: fc.Day, Slot: fc.Slot,
		Context: fc.Label.String(), QLen: fc.QLen, WaitS: fc.Wait.Seconds(),
		Source: fc.Source.String(), Weight: fc.Weight,
	})
	if err != nil {
		log.Printf("encode: %v", err)
	}
}

// registerForecast mounts the forecast endpoint.
func registerForecast(mux *http.ServeMux, f *forecastServer) {
	mux.HandleFunc("/forecast", f.handleForecast)
}
