// Command queued is the deployment-style backend of §7.1: it periodically
// recomputes queue spots and contexts from fresh (simulated) MDT data and
// serves them over a JSON API, alongside the vehicle-monitor endpoints.
//
//	GET /                       web frontend (canvas map of spots + contexts)
//	GET /spots                  all detected queue spots with current context
//	GET /spots?at=RFC3339       contexts at a specific time
//	GET /spots?live=1           live mode with -live-spots: also the spots
//	                            discovered online (lifecycle "state" field)
//	GET /context[?at=..]        per-spot context + §5.2 features for one slot
//	GET /recommend?for=driver&lat=..&lon=..[&at=..]  ranked queue spots (§9),
//	                            ETA-aware: scored by expected state at arrival
//	GET /forecast?spot=N[&at=RFC3339]  expected label/queue length/wait at a
//	                            (future) instant, from learned slot profiles
//	GET /monitors ...           the vehicle monitor service (see internal/monitor)
//	GET /metrics                Prometheus text metrics (ingest + serve caches)
//	GET /healthz                readiness: batch loaded, shards alive, WAL writable
//	GET /debug/pprof/*          runtime profiling, when started with -pprof
//
// With -history DIR the columnar slot-context store (internal/history)
// records every finalized cell — appended live on each watermark advance,
// or backfilled from the batch pass — and three analytics endpoints serve
// its lock-free index:
//
//	GET /history?spot=N[&from=..&to=..]  decoded per-slot context series
//	GET /heatmap[?t=RFC3339]             tiled city intensity at one recorded slot
//	GET /heatmap?from=..&to=..           city-wide aggregate over a range, served
//	                                     from block summaries without decoding
//	GET /transitions?spot=N              day-over-day label transition matrix
//
// The read path is lock-free: the batch analysis and the live ingest
// aggregator each publish an immutable view behind an atomic pointer, and
// the hot endpoints serve pre-encoded bodies from a per-epoch cache (see
// cache.go) — a request costs one pointer load and one cache lookup, and
// invalidation is pointer identity, never a timer. In live mode a
// pre-warmer (prewarm.go) re-renders the hot bodies on every watermark
// advance and just before each slot rollover, so the first request after
// an epoch change is already a cache hit.
//
// With -live the batch run only bootstraps the spot positions and
// thresholds; contexts are then served from records POSTed to /ingest
// (see internal/ingest):
//
//	POST /ingest                JSON-lines or binary MDT record batches
//	POST /ingest/flush          finalize every slot (end of feed)
//	GET  /ingest/stats          per-shard accepted/rejected/dropped/lag
//	GET  /estimate              provisional contexts for the still-open slot
//
// Usage:
//
//	queued -addr :8080 -scale 0.25 -refresh 0   # refresh 0 = analyze once
//	queued -addr :8080 -live -shards 4 -wal /tmp/tq-wal
package main

import (
	"encoding/json"
	"flag"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/core"
	"taxiqueue/internal/forecast"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/history"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/monitor"
	"taxiqueue/internal/obs"
	"taxiqueue/internal/recommend"
)

// spotJSON is the wire format for one detected spot. The last two fields
// only appear on live-discovered spots (/spots?live=1): batch spots omit
// them, so the plain /spots body is byte-identical with or without live
// discovery running.
type spotJSON struct {
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	Zone     string  `json:"zone"`
	Pickups  int     `json:"pickups"` // live spots: current window support
	Context  string  `json:"context"`
	Landmark string  `json:"landmark,omitempty"`
	State    string  `json:"state,omitempty"` // lifecycle: emerging|confirmed|decaying
	Live     bool    `json:"live,omitempty"`  // true for online-discovered spots
}

// handleSpots serves the batch-mode /spots from the per-epoch cache: the
// body for each slot is encoded once per published view and then served as
// immutable bytes.
func (s *server) handleSpots(w http.ResponseWriter, r *http.Request) {
	v, bucket, ok := s.loadView(w, r)
	if !ok {
		return
	}
	body := s.spotsCache.get(v, bucket, v.buckets(), func() []byte {
		return v.renderSpots(bucket, func(spot, slot int) core.QueueType {
			if labels := v.result.Spots[spot].Labels; slot < len(labels) {
				return labels[slot]
			}
			return core.Unidentified
		})
	})
	writeJSON(w, body)
}

// handleContext serves the per-spot contexts and features of one slot,
// cached per (view, slot).
func (s *server) handleContext(w http.ResponseWriter, r *http.Request) {
	v, bucket, ok := s.loadView(w, r)
	if !ok {
		return
	}
	body := s.contextCache.get(v, bucket, v.buckets(), func() []byte {
		return v.renderContext(bucket)
	})
	writeJSON(w, body)
}

// parseCoord parses one coordinate query parameter, rejecting anything a
// distance can't be computed from: strconv syntax errors, NaN/Inf (which
// fmt.Sscan used to accept — NaN > MaxDistance is false, so the radius
// filter passed every spot and NaN scores made the sort comparator
// non-transitive) and out-of-range degrees.
func parseCoord(s string, limit float64) (float64, bool) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < -limit || v > limit {
		return 0, false
	}
	return v, true
}

// recommendAt resolves the default evaluation instant: the live feed's
// newest final slot when one is wired in (defaultAt), else the historical
// noon-of-batch-day fallback.
func (s *server) recommendAt(v *batchView) time.Time {
	if s.defaultAt != nil {
		if t, ok := s.defaultAt(); ok {
			return t
		}
	}
	return v.grid.Start.Add(12 * time.Hour)
}

// handleRecommend serves the §9 recommendation feed for drivers (passenger
// queues) and commuters (taxi queues), ranked by the expected state at
// arrival: travel-time ETA from distance, forecast evaluated at at+ETA.
// The ranking depends on the caller's position, so the body is not
// cacheable — but the handler is still lock-free: it reads one published
// view and one published profile table.
func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	v := s.view.Load()
	if v == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	var aud recommend.Audience
	switch q.Get("for") {
	case "driver":
		aud = recommend.ForDriver
	case "commuter":
		aud = recommend.ForCommuter
	default:
		http.Error(w, "need for=driver|commuter", http.StatusBadRequest)
		return
	}
	lat, ok := parseCoord(q.Get("lat"), 90)
	if !ok {
		http.Error(w, "bad lat", http.StatusBadRequest)
		return
	}
	lon, ok := parseCoord(q.Get("lon"), 180)
	if !ok {
		http.Error(w, "bad lon", http.StatusBadRequest)
		return
	}
	at := s.recommendAt(v)
	if qs := q.Get("at"); qs != "" {
		t, err := time.Parse(time.RFC3339, qs)
		if err != nil {
			http.Error(w, "bad 'at'", http.StatusBadRequest)
			return
		}
		at = t
	}
	var opts recommend.Options
	if s.fc != nil {
		tbl := s.fc.Table() // one load: every spot ranks against the same table
		opts.Forecast = func(spot int, when time.Time) (core.QueueType, float64, time.Duration, bool) {
			f, ok := tbl.Forecast(spot, when)
			if !ok || f.Source == forecast.SourceNone {
				return core.Unidentified, 0, 0, false
			}
			return f.Label, f.QLen, f.Wait, true
		}
	}
	recs := recommend.Recommend(v.result, aud, geo.Point{Lat: lat, Lon: lon}, at, opts)
	type recJSON struct {
		Lat        float64 `json:"lat"`
		Lon        float64 `json:"lon"`
		Context    string  `json:"context"`
		Distance   float64 `json:"distance_m"`
		Score      float64 `json:"score"`
		ETAS       float64 `json:"eta_s"`
		ExpWaitS   float64 `json:"expected_wait_s"`
		Forecasted bool    `json:"forecasted"`
	}
	out := make([]recJSON, 0, len(recs))
	for _, rec := range recs {
		out = append(out, recJSON{
			Lat: rec.Spot.Pos.Lat, Lon: rec.Spot.Pos.Lon,
			Context: rec.Context.String(), Distance: rec.Distance, Score: rec.Score,
			ETAS: rec.ETA.Seconds(), ExpWaitS: rec.ExpectedWait.Seconds(),
			Forecasted: rec.Forecasted,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("encode: %v", err)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 0.25, "city scale")
	minPts := flag.Int("minpts", 50, "DBSCAN min-points")
	refresh := flag.Duration("refresh", 0, "recompute interval (0 = once at startup)")
	live := flag.Bool("live", false, "serve contexts from the live /ingest feed (batch run only bootstraps spots)")
	shards := flag.Int("shards", 4, "live mode: ingest shard count")
	queueDepth := flag.Int("queue", 1024, "live mode: per-shard queue depth")
	bp := flag.String("bp", "block", "live mode: backpressure policy, block|drop-oldest")
	liveSpots := flag.Bool("live-spots", false, "live mode: discover new queue spots online from pickups outside the batch list (serves /spots?live=1)")
	liveSpotWindow := flag.Duration("live-spot-window", 3*time.Hour, "live spot discovery: sliding pickup window")
	liveSpotMinPts := flag.Int("live-spot-minpts", 0, "live spot discovery: DBSCAN min-points over the window (0 = paper default 50)")
	walDir := flag.String("wal", "", "live mode: WAL directory (empty = durability off)")
	checkpoint := flag.Int("checkpoint", 4096, "live mode: records between WAL checkpoints (segment seals)")
	syncEvery := flag.Int("sync-every", 0, "live mode: WAL group-commit batch in records, the crash-loss window (0 = default)")
	segmentBytes := flag.Int64("segment-bytes", 0, "live mode: WAL segment rotation size in bytes (0 = default 4MiB)")
	histDir := flag.String("history", "", "directory for the columnar slot-context history store (enables /history, /heatmap, /transitions)")
	fcDir := flag.String("forecast", "", "directory for forecast profile snapshots (empty = profiles learned in memory only)")
	withPprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof")
	flag.Parse()

	srv := newServer(obs.Default)
	log.Printf("queued: analyzing initial day (scale %.2f)...", *scale)
	if err := srv.recompute(*seed, *scale, *minPts); err != nil {
		log.Fatal(err)
	}
	log.Printf("queued: %d queue spots ready", len(srv.result().Spots))

	var hist *history.Store
	if *histDir != "" {
		var err error
		hist, err = newHistoryStore(*histDir, srv.result(), obs.Default)
		if err != nil {
			log.Fatal(err)
		}
		st := hist.Stats()
		log.Printf("queued: history store at %s (%d blocks, %d records recovered)",
			*histDir, st.Blocks, st.Records)
	}

	// The forecast learner always runs (memory-only without -forecast):
	// /forecast and the ETA-aware /recommend ranking work in every mode.
	fc, err := newForecastLearner(*fcDir, srv.result(), obs.Default)
	if err != nil {
		log.Fatal(err)
	}
	srv.fc = fc
	if hist != nil {
		// Seed the profiles from every recorded day; the per-cell day
		// watermarks make this idempotent over a recovered snapshot.
		if err := fc.BackfillHistory(hist); err != nil {
			log.Printf("queued: forecast backfill: %v", err)
		}
	}
	if st := fc.Stats(); st.WeightFloor > 0 {
		log.Printf("queued: forecast profiles ready (total weight ~%d)", st.WeightFloor)
	}

	var liveSrv *liveServer
	if *live {
		policy := ingest.Block
		switch *bp {
		case "block":
		case "drop-oldest":
			policy = ingest.DropOldest
		default:
			log.Fatalf("queued: unknown -bp %q (want block or drop-oldest)", *bp)
		}
		if *refresh > 0 {
			log.Printf("queued: -refresh is ignored in live mode (spots are fixed at startup)")
			*refresh = 0
		}
		cfg := ingest.Config{
			Stream:          liveStreamConfig(srv.result()),
			Clean:           clean.Config{ValidFrame: citymap.Island},
			Shards:          *shards,
			QueueDepth:      *queueDepth,
			Policy:          policy,
			WALDir:          *walDir,
			CheckpointEvery: *checkpoint,
			SyncEvery:       *syncEvery,
			SegmentBytes:    *segmentBytes,
			Metrics:         obs.Default, // one process-wide /metrics scrape
		}
		if *liveSpots {
			det := core.DefaultLiveDetectorConfig()
			det.Window = *liveSpotWindow
			if *liveSpotMinPts > 0 {
				det.Cluster.MinPoints = *liveSpotMinPts
			}
			cfg.LiveSpots = ingest.LiveSpotsConfig{Enabled: true, Detector: det}
			log.Printf("queued: live spot discovery on (window %s, minpts %d)",
				det.Window, det.Cluster.MinPoints)
		}
		// Every watermark advance records the newly-final contexts into
		// the history store (when enabled) AND folds them into the
		// forecast profiles; the live feed replays one day, recorded as
		// day 0. The pre-warmer rides the same tee — last, so the
		// profiles and history it renders against are already updated —
		// and re-renders the hot cache bodies before the first reader
		// asks (see prewarm.go).
		pw := newPrewarmer(fc, obs.Default)
		sinks := []ingest.HistoryAppender{fc}
		if hist != nil {
			sinks = append(sinks, hist)
		}
		sinks = append(sinks, pw)
		cfg.History = ingest.TeeHistory(sinks...)
		svc, err := ingest.NewService(cfg)
		if err != nil {
			log.Fatal(err)
		}
		liveSrv = newLiveServer(srv, svc, obs.Default)
		pw.attach(liveSrv)
		// Live /recommend defaults `at` to the newest final slot — what
		// the feed says now — never the batch day's noon.
		grid := srv.result().Config.Grid
		srv.defaultAt = func() (time.Time, bool) {
			if hist != nil {
				if day, slot, ok := hist.Latest(); ok {
					return hist.TimeOf(day, slot), true
				}
			}
			if snap := svc.Snapshot(); snap != nil && snap.FinalBelow > 0 {
				return grid.Start.Add(time.Duration(snap.FinalBelow-1) * grid.SlotLen), true
			}
			return time.Time{}, false
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			log.Printf("queued: draining ingest shards...")
			if err := svc.Close(); err != nil {
				log.Printf("queued: close: %v", err)
			}
			if hist != nil {
				if err := hist.Close(); err != nil {
					log.Printf("queued: history close: %v", err)
				}
			}
			if err := fc.Close(); err != nil {
				log.Printf("queued: forecast close: %v", err)
			}
			os.Exit(0)
		}()
		go pw.run()
		log.Printf("queued: live ingest on /ingest (%d shards, %s)", *shards, policy)
	}

	if liveSrv == nil {
		// Batch mode: the analysis pass is the history and profile source.
		// Day 0 is the initial run; each -refresh lap backfills the next
		// day index.
		if hist != nil {
			if err := hist.BackfillResult(0, srv.result()); err != nil {
				log.Printf("queued: history backfill: %v", err)
			}
		}
		if err := fc.ObserveResult(0, srv.result()); err != nil {
			log.Printf("queued: forecast observe: %v", err)
		}
	}

	if *refresh > 0 {
		go func() {
			for i := int64(1); ; i++ {
				time.Sleep(*refresh)
				if err := srv.recompute(*seed+i, *scale, *minPts); err != nil {
					log.Printf("recompute: %v", err)
					continue
				}
				log.Printf("queued: refreshed (%d spots)", len(srv.result().Spots))
				if hist != nil {
					// Only a run that found the same spot set can extend the
					// store; a different detection outcome is logged and
					// skipped (the store's grid/spot identity is fixed).
					if err := hist.BackfillResult(int(i), srv.result()); err != nil {
						log.Printf("queued: history backfill day %d: %v", i, err)
					}
				}
				if err := fc.ObserveResult(int(i), srv.result()); err != nil {
					log.Printf("queued: forecast observe day %d: %v", i, err)
				}
			}
		}()
	}

	// Vehicle monitor endpoints over the busiest spots.
	monSvc := monitor.NewService()
	for i, sa := range srv.result().Spots {
		if i >= 5 {
			break
		}
		sp := sa.Spot
		name := sp.Zone.String() + "-" + sp.Pos.String()
		monSvc.Add(monitor.NewAreaCounter(name, geo.CirclePolygon(sp.Pos, 40, 12)))
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", handleIndex)
	if liveSrv != nil {
		registerLive(mux, liveSrv)
	} else {
		mux.HandleFunc("/spots", srv.handleSpots)
		mux.HandleFunc("/context", srv.handleContext)
	}
	if hist != nil {
		registerHistory(mux, &historyServer{hist: hist})
	}
	registerForecast(mux, &forecastServer{fc: fc})
	mux.HandleFunc("/recommend", srv.handleRecommend)
	mux.Handle("/monitors", monSvc)
	mux.Handle("/monitors/", monSvc)
	var liveSvc *ingest.Service
	if liveSrv != nil {
		liveSvc = liveSrv.svc
	}
	registerOps(mux, srv, liveSvc, obs.Default, *withPprof)
	log.Printf("queued: listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
