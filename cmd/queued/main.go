// Command queued is the deployment-style backend of §7.1: it periodically
// recomputes queue spots and contexts from fresh (simulated) MDT data and
// serves them over a JSON API, alongside the vehicle-monitor endpoints.
//
//	GET /                       web frontend (canvas map of spots + contexts)
//	GET /spots                  all detected queue spots with current context
//	GET /spots?at=RFC3339       contexts at a specific time
//	GET /recommend?for=driver&lat=..&lon=..[&at=..]  ranked queue spots (§9)
//	GET /monitors ...           the vehicle monitor service (see internal/monitor)
//	GET /metrics                Prometheus text metrics (ingest + batch pipeline)
//	GET /healthz                readiness: batch loaded, shards alive, WAL writable
//	GET /debug/pprof/*          runtime profiling, when started with -pprof
//
// With -live the batch run only bootstraps the spot positions and
// thresholds; contexts are then served from records POSTed to /ingest
// (see internal/ingest):
//
//	POST /ingest                JSON-lines or binary MDT record batches
//	POST /ingest/flush          finalize every slot (end of feed)
//	GET  /ingest/stats          per-shard accepted/rejected/dropped/lag
//
// Usage:
//
//	queued -addr :8080 -scale 0.25 -refresh 0   # refresh 0 = analyze once
//	queued -addr :8080 -live -shards 4 -wal /tmp/tq-wal
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/monitor"
	"taxiqueue/internal/obs"
	"taxiqueue/internal/recommend"
	"taxiqueue/internal/sim"
)

// spotJSON is the wire format for one detected spot.
type spotJSON struct {
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	Zone     string  `json:"zone"`
	Pickups  int     `json:"pickups"`
	Context  string  `json:"context"`
	Landmark string  `json:"landmark,omitempty"`
}

type server struct {
	mu      sync.RWMutex
	city    *citymap.Map
	result  *core.Result
	grid    core.SlotGrid
	refresh time.Time
}

func (s *server) recompute(seed int64, scale float64, minPts int) error {
	city := s.city
	if city == nil {
		city = citymap.Generate(seed, scale)
	}
	out := sim.Run(sim.Config{Seed: seed, City: city, InjectFaults: true})
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: minPts}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		return err
	}
	res, err := engine.Analyze(cleaned)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.city = city
	s.result = res
	s.grid = res.Config.Grid
	s.refresh = time.Now()
	s.mu.Unlock()
	return nil
}

func (s *server) handleSpots(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	res := s.result
	grid := s.grid
	city := s.city
	s.mu.RUnlock()
	if res == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	at := grid.Start.Add(12 * time.Hour)
	if v := r.URL.Query().Get("at"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			http.Error(w, "bad 'at' timestamp", http.StatusBadRequest)
			return
		}
		at = t
	}
	out := make([]spotJSON, 0, len(res.Spots))
	for i := range res.Spots {
		sa := &res.Spots[i]
		sj := spotJSON{
			Lat: sa.Spot.Pos.Lat, Lon: sa.Spot.Pos.Lon,
			Zone: sa.Spot.Zone.String(), Pickups: sa.Spot.PickupCount,
			Context: sa.LabelAt(grid, at).String(),
		}
		if lm, d, ok := city.NearestLandmark(sa.Spot.Pos); ok && d < 50 {
			sj.Landmark = lm.Name
		}
		out = append(out, sj)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("encode: %v", err)
	}
}

// handleRecommend serves the §9 recommendation feed for drivers (passenger
// queues) and commuters (taxi queues).
func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	res := s.result
	grid := s.grid
	s.mu.RUnlock()
	if res == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	var aud recommend.Audience
	switch q.Get("for") {
	case "driver":
		aud = recommend.ForDriver
	case "commuter":
		aud = recommend.ForCommuter
	default:
		http.Error(w, "need for=driver|commuter", http.StatusBadRequest)
		return
	}
	var lat, lon float64
	if _, err := fmt.Sscan(q.Get("lat"), &lat); err != nil {
		http.Error(w, "bad lat", http.StatusBadRequest)
		return
	}
	if _, err := fmt.Sscan(q.Get("lon"), &lon); err != nil {
		http.Error(w, "bad lon", http.StatusBadRequest)
		return
	}
	at := grid.Start.Add(12 * time.Hour)
	if v := q.Get("at"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			http.Error(w, "bad 'at'", http.StatusBadRequest)
			return
		}
		at = t
	}
	recs := recommend.Recommend(res, aud, geo.Point{Lat: lat, Lon: lon}, at, recommend.Options{})
	type recJSON struct {
		Lat      float64 `json:"lat"`
		Lon      float64 `json:"lon"`
		Context  string  `json:"context"`
		Distance float64 `json:"distance_m"`
		Score    float64 `json:"score"`
	}
	out := make([]recJSON, 0, len(recs))
	for _, rec := range recs {
		out = append(out, recJSON{
			Lat: rec.Spot.Pos.Lat, Lon: rec.Spot.Pos.Lon,
			Context: rec.Context.String(), Distance: rec.Distance, Score: rec.Score,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("encode: %v", err)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 0.25, "city scale")
	minPts := flag.Int("minpts", 50, "DBSCAN min-points")
	refresh := flag.Duration("refresh", 0, "recompute interval (0 = once at startup)")
	live := flag.Bool("live", false, "serve contexts from the live /ingest feed (batch run only bootstraps spots)")
	shards := flag.Int("shards", 4, "live mode: ingest shard count")
	queueDepth := flag.Int("queue", 1024, "live mode: per-shard queue depth")
	bp := flag.String("bp", "block", "live mode: backpressure policy, block|drop-oldest")
	walDir := flag.String("wal", "", "live mode: WAL directory (empty = durability off)")
	checkpoint := flag.Int("checkpoint", 4096, "live mode: records between WAL checkpoints")
	withPprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof")
	flag.Parse()

	srv := &server{}
	log.Printf("queued: analyzing initial day (scale %.2f)...", *scale)
	if err := srv.recompute(*seed, *scale, *minPts); err != nil {
		log.Fatal(err)
	}
	log.Printf("queued: %d queue spots ready", len(srv.result.Spots))

	var liveSrv *liveServer
	if *live {
		policy := ingest.Block
		switch *bp {
		case "block":
		case "drop-oldest":
			policy = ingest.DropOldest
		default:
			log.Fatalf("queued: unknown -bp %q (want block or drop-oldest)", *bp)
		}
		if *refresh > 0 {
			log.Printf("queued: -refresh is ignored in live mode (spots are fixed at startup)")
			*refresh = 0
		}
		svc, err := ingest.NewService(ingest.Config{
			Stream:          liveStreamConfig(srv.result),
			Clean:           clean.Config{ValidFrame: citymap.Island},
			Shards:          *shards,
			QueueDepth:      *queueDepth,
			Policy:          policy,
			WALDir:          *walDir,
			CheckpointEvery: *checkpoint,
			Metrics:         obs.Default, // one process-wide /metrics scrape
		})
		if err != nil {
			log.Fatal(err)
		}
		liveSrv = &liveServer{srv: srv, svc: svc}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			log.Printf("queued: draining ingest shards...")
			if err := svc.Close(); err != nil {
				log.Printf("queued: close: %v", err)
			}
			os.Exit(0)
		}()
		log.Printf("queued: live ingest on /ingest (%d shards, %s)", *shards, policy)
	}

	if *refresh > 0 {
		go func() {
			for i := int64(1); ; i++ {
				time.Sleep(*refresh)
				if err := srv.recompute(*seed+i, *scale, *minPts); err != nil {
					log.Printf("recompute: %v", err)
				} else {
					log.Printf("queued: refreshed (%d spots)", len(srv.result.Spots))
				}
			}
		}()
	}

	// Vehicle monitor endpoints over the busiest spots.
	monSvc := monitor.NewService()
	srv.mu.RLock()
	for i := range srv.result.Spots {
		if i >= 5 {
			break
		}
		sp := srv.result.Spots[i].Spot
		name := sp.Zone.String() + "-" + sp.Pos.String()
		monSvc.Add(monitor.NewAreaCounter(name, geo.CirclePolygon(sp.Pos, 40, 12)))
	}
	srv.mu.RUnlock()

	mux := http.NewServeMux()
	mux.HandleFunc("/", handleIndex)
	if liveSrv != nil {
		registerLive(mux, liveSrv)
	} else {
		mux.HandleFunc("/spots", srv.handleSpots)
	}
	mux.HandleFunc("/recommend", srv.handleRecommend)
	mux.Handle("/monitors", monSvc)
	mux.Handle("/monitors/", monSvc)
	var liveSvc *ingest.Service
	if liveSrv != nil {
		liveSvc = liveSrv.svc
	}
	registerOps(mux, srv, liveSvc, obs.Default, *withPprof)
	log.Printf("queued: listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
