package main

import "net/http"

// indexHTML is the §7.1 web frontend, self-contained (no external map
// tiles): it fetches /spots, draws the island frame and every queue spot
// as a context-colored dot on a canvas, and shows spot details on hover —
// the same interaction Fig. 10 shows over Google Maps.
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>taxiqueue — queue spots</title>
<style>
  body { font-family: sans-serif; margin: 1.5em; background: #fafafa; }
  canvas { border: 1px solid #bbb; background: #eef3f7; }
  .legend span { display: inline-block; margin-right: 1.2em; }
  .dot { display: inline-block; width: 10px; height: 10px; border-radius: 5px;
         margin-right: 4px; vertical-align: middle; }
  #info { margin-top: .6em; min-height: 1.4em; color: #333; }
</style>
</head>
<body>
<h2>Queue spots — <span id="count">…</span> detected</h2>
<div class="legend">
  <span><i class="dot" style="background:#d62728"></i>C1 taxi+passenger queue</span>
  <span><i class="dot" style="background:#ff7f0e"></i>C2 passenger queue</span>
  <span><i class="dot" style="background:#1f77b4"></i>C3 taxi queue</span>
  <span><i class="dot" style="background:#2ca02c"></i>C4 no queue</span>
  <span><i class="dot" style="background:#999"></i>unidentified</span>
</div>
<canvas id="map" width="1000" height="560"></canvas>
<div id="info">hover a spot for details</div>
<script>
const FRAME = {minLat: 1.220, maxLat: 1.460, minLon: 103.600, maxLon: 104.045};
const COLORS = {C1: "#d62728", C2: "#ff7f0e", C3: "#1f77b4", C4: "#2ca02c",
                Unidentified: "#999"};
const cv = document.getElementById("map"), ctx = cv.getContext("2d");
function xy(s) {
  return [ (s.lon - FRAME.minLon) / (FRAME.maxLon - FRAME.minLon) * cv.width,
           (1 - (s.lat - FRAME.minLat) / (FRAME.maxLat - FRAME.minLat)) * cv.height ];
}
let spots = [];
fetch("/spots").then(r => r.json()).then(data => {
  spots = data;
  document.getElementById("count").textContent = spots.length;
  ctx.clearRect(0, 0, cv.width, cv.height);
  for (const s of spots) {
    const [x, y] = xy(s);
    ctx.beginPath();
    ctx.arc(x, y, 5, 0, 2 * Math.PI);
    ctx.fillStyle = COLORS[s.context] || "#999";
    ctx.fill();
  }
});
cv.addEventListener("mousemove", ev => {
  const r = cv.getBoundingClientRect();
  const mx = ev.clientX - r.left, my = ev.clientY - r.top;
  let best = null, bestD = 12;
  for (const s of spots) {
    const [x, y] = xy(s);
    const d = Math.hypot(x - mx, y - my);
    if (d < bestD) { best = s; bestD = d; }
  }
  document.getElementById("info").textContent = best
    ? (best.landmark || "unnamed") + " — " + best.zone + " zone, " +
      best.context + ", " + best.pickups + " pickups"
    : "hover a spot for details";
});
</script>
</body>
</html>
`

// handleIndex serves the frontend page.
func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if _, err := w.Write([]byte(indexHTML)); err != nil {
		return
	}
}
