package main

import (
	"encoding/json"
	"log"
	"net/http"
	"net/http/pprof"

	"taxiqueue/internal/ingest"
	"taxiqueue/internal/obs"
)

// healthJSON is the /healthz readiness payload.
type healthJSON struct {
	Status string `json:"status"` // "ok" or "unready"
	Reason string `json:"reason,omitempty"`
}

// registerOps mounts the operational endpoints shared by batch and live
// mode:
//
//	GET /metrics        Prometheus text exposition of reg
//	GET /healthz        readiness: batch result loaded, live shards alive,
//	                    WAL writable — 200 ok / 503 unready with a reason
//	GET /debug/pprof/*  runtime profiling (opt-in via -pprof)
//
// svc is nil outside live mode; withPprof gates the profiler because it
// exposes goroutine dumps and CPU profiles — cheap to serve but not
// something an open dashboard port should offer by default.
func registerOps(mux *http.ServeMux, srv *server, svc *ingest.Service, reg *obs.Registry, withPprof bool) {
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		out := healthJSON{Status: "ok"}
		code := http.StatusOK
		ready := srv.view.Load() != nil
		switch {
		case !ready:
			out = healthJSON{Status: "unready", Reason: "batch analysis not loaded"}
			code = http.StatusServiceUnavailable
		case svc != nil:
			if err := svc.Health(); err != nil {
				out = healthJSON{Status: "unready", Reason: err.Error()}
				code = http.StatusServiceUnavailable
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		if err := json.NewEncoder(w).Encode(out); err != nil {
			log.Printf("healthz: %v", err)
		}
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
