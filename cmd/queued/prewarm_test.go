package main

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"taxiqueue/internal/obs"
)

// TestPrewarmFillsNextEpoch drives one day through the live service, runs
// one synchronous pre-warm pass, and asserts the first reader of every
// warmed endpoint is a pure cache hit serving bytes identical to an
// uncached render — the property the pre-warmer exists for.
func TestPrewarmFillsNextEpoch(t *testing.T) {
	env := newServeEnv(t, false)
	fcSrv := env.withForecast(t)
	reg := env.svc.Registry()
	pw := newPrewarmer(fcSrv.fc, reg)
	pw.attach(env.live)

	env.feedDay(t)
	snap := env.svc.Snapshot()
	if snap == nil || snap.FinalBelow == 0 {
		t.Fatal("feeding a full day produced no final slots")
	}

	warmed := pw.prewarmOnce()
	if warmed == 0 {
		t.Fatal("prewarm pass rendered nothing on cold caches")
	}
	if pw.spots.Value() == 0 || pw.contexts.Value() == 0 || pw.estimates.Value() == 0 {
		t.Fatalf("prewarm counters after one pass: spots=%d contexts=%d estimates=%d",
			pw.spots.Value(), pw.contexts.Value(), pw.estimates.Value())
	}

	// First /spots, /context and /estimate after the pre-warm: hit, no miss.
	for _, tc := range []struct {
		endpoint string
		path     string
		handler  func(*httptest.ResponseRecorder)
	}{
		{"live_spots", "/spots", func(w *httptest.ResponseRecorder) {
			env.live.handleSpots(w, httptest.NewRequest("GET", "/spots", nil))
		}},
		{"live_context", "/context", func(w *httptest.ResponseRecorder) {
			env.live.handleContext(w, httptest.NewRequest("GET", "/context", nil))
		}},
		{"estimate", "/estimate", func(w *httptest.ResponseRecorder) {
			env.live.handleEstimate(w, httptest.NewRequest("GET", "/estimate", nil))
		}},
	} {
		hits := reg.Counter("queued_cache_hits_total", "", obs.Label{Name: "endpoint", Value: tc.endpoint})
		misses := reg.Counter("queued_cache_misses_total", "", obs.Label{Name: "endpoint", Value: tc.endpoint})
		h0, m0 := hits.Value(), misses.Value()
		w := httptest.NewRecorder()
		tc.handler(w)
		if w.Code != 200 {
			t.Fatalf("%s after prewarm: status %d", tc.path, w.Code)
		}
		if hits.Value() != h0+1 || misses.Value() != m0 {
			t.Fatalf("first %s after prewarm was not a pure hit: hits %d→%d, misses %d→%d",
				tc.path, h0, hits.Value(), m0, misses.Value())
		}
	}

	// The served body must be byte-identical to a direct uncached render of
	// the same published state.
	v := env.srv.view.Load()
	w := httptest.NewRecorder()
	env.live.handleSpots(w, httptest.NewRequest("GET", "/spots", nil))
	want := env.live.renderSpotsBody(v, env.svc.Snapshot(), v.slotBucket(env.srv.recommendAt(v)))
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatal("prewarmed /spots body differs from a direct render")
	}

	// Nothing changed: a second pass must render nothing (the counters
	// measure work done ahead of readers, not loop iterations).
	if again := pw.prewarmOnce(); again != 0 {
		t.Fatalf("second prewarm over unchanged state re-rendered %d bodies", again)
	}

	// untilNext: wake `lead` before the next slot boundary, with a 1s floor
	// inside the lead window.
	g := fcSrv.fc.Grid()
	if d := pw.untilNext(g.Start.Add(g.SlotLen / 2)); d != g.SlotLen/2-pw.lead {
		t.Fatalf("untilNext mid-slot = %v, want %v", d, g.SlotLen/2-pw.lead)
	}
	if d := pw.untilNext(g.Start.Add(g.SlotLen - time.Second)); d != time.Second {
		t.Fatalf("untilNext inside the lead window = %v, want 1s", d)
	}
	if d := pw.untilNext(g.Start); d != g.SlotLen-pw.lead {
		t.Fatalf("untilNext on a boundary = %v, want %v", d, g.SlotLen-pw.lead)
	}
}

// TestPrewarmRunLoopNudge exercises the background loop end to end: a
// watermark-style AppendSlots nudge (what the ingest history tee delivers)
// must wake the loop and fill the cold caches without any reader.
func TestPrewarmRunLoopNudge(t *testing.T) {
	env := newServeEnv(t, false)
	fcSrv := env.withForecast(t)
	pw := newPrewarmer(fcSrv.fc, env.svc.Registry())
	pw.attach(env.live)
	env.feedDay(t)

	go pw.run()
	defer pw.halt()
	if err := pw.AppendSlots(0, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for pw.spots.Value() == 0 || pw.estimates.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("run loop never prewarmed after a nudge: spots=%d estimates=%d",
				pw.spots.Value(), pw.estimates.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
