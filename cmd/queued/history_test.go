package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/history"
	"taxiqueue/internal/obs"
	"taxiqueue/internal/sim"
)

// historyFixture batch-analyzes one simulated day, backfills it into a
// history store, and mounts the analytics endpoints — the way
// `queued -history DIR` serves a nightly batch run.
func historyFixture(t *testing.T, backfill bool) (*httptest.Server, *history.Store, *core.Result) {
	t.Helper()
	out := sim.Run(sim.Config{Seed: 777, City: citymap.Generate(777, 0.1), InjectFaults: true})
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 25}
	cfg.Grid = core.DaySlots(out.Config.Start)
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	res, err := engine.Analyze(cleaned)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := newHistoryStore(t.TempDir(), res, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if backfill {
		if err := hist.BackfillResult(0, res); err != nil {
			t.Fatal(err)
		}
	}
	mux := http.NewServeMux()
	registerHistory(mux, &historyServer{hist: hist})
	ts := httptest.NewServer(mux)
	t.Cleanup(func() { ts.Close(); hist.Close() })
	return ts, hist, res
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHistoryEndpoint(t *testing.T) {
	ts, hist, res := historyFixture(t, true)
	grid := hist.Grid()

	var out struct {
		Spot   int                `json:"spot"`
		Points []historyPointJSON `json:"points"`
	}
	if code := getJSON(t, ts.URL+"/history?spot=0", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Spot != 0 || len(out.Points) != grid.Slots {
		t.Fatalf("spot %d with %d points, want 0 with %d", out.Spot, len(out.Points), grid.Slots)
	}
	for j, p := range out.Points {
		f, l := res.Cell(0, j)
		if p.Context != l.String() || p.QLen != f.QLen || p.TWaitS != f.TWait.Seconds() {
			t.Fatalf("slot %d: served (%s, qlen %.4f, twait %.1fs), batch (%s, %.4f, %.1fs)",
				j, p.Context, p.QLen, p.TWaitS, l.String(), f.QLen, f.TWait.Seconds())
		}
	}

	// A from/to window narrows the series.
	from := grid.Start.Add(5 * grid.SlotLen).UTC().Format(time.RFC3339)
	to := grid.Start.Add(9 * grid.SlotLen).UTC().Format(time.RFC3339)
	if code := getJSON(t, ts.URL+"/history?spot=1&from="+from+"&to="+to, &out); code != 200 {
		t.Fatalf("windowed status %d", code)
	}
	if len(out.Points) != 4 || out.Points[0].Slot != 5 {
		t.Fatalf("window served %d points starting at slot %d, want 4 from slot 5",
			len(out.Points), out.Points[0].Slot)
	}

	// Parameter validation.
	for _, bad := range []string{"/history", "/history?spot=-1", "/history?spot=9999", "/history?spot=x", "/history?spot=0&from=yesterday"} {
		var ignore json.RawMessage
		if code := getJSON(t, ts.URL+bad, &ignore); code != 400 {
			t.Errorf("%s: status %d, want 400", bad, code)
		}
	}
}

func TestHeatmapEndpoint(t *testing.T) {
	ts, hist, res := historyFixture(t, true)
	grid := hist.Grid()

	var hm history.Heatmap
	if code := getJSON(t, ts.URL+"/heatmap", &hm); code != 200 {
		t.Fatalf("latest heatmap status %d", code)
	}
	if hm.Slot != grid.Slots-1 || len(hm.Tiles) == 0 {
		t.Fatalf("latest heatmap at slot %d with %d tiles", hm.Slot, len(hm.Tiles))
	}
	at := grid.Start.Add(17*grid.SlotLen + grid.SlotLen/2).UTC().Format(time.RFC3339)
	if code := getJSON(t, ts.URL+"/heatmap?t="+at, &hm); code != 200 {
		t.Fatalf("heatmap status %d", code)
	}
	if hm.Day != 0 || hm.Slot != 17 {
		t.Fatalf("heatmap at (day %d, slot %d), want (0, 17)", hm.Day, hm.Slot)
	}
	total := 0
	for _, tile := range hm.Tiles {
		total += tile.Spots
	}
	if total != len(res.Spots) {
		t.Fatalf("tiles cover %d spots, want %d", total, len(res.Spots))
	}

	var ignore json.RawMessage
	if code := getJSON(t, ts.URL+"/heatmap?t=later", &ignore); code != 400 {
		t.Errorf("bad t: status %d, want 400", code)
	}
	// An out-of-grid t answers an empty-but-valid heatmap, not an error:
	// same schema, zero tiles, Tiles an array rather than null.
	before := grid.Start.Add(-time.Hour).UTC().Format(time.RFC3339)
	var raw struct {
		Day   int               `json:"day"`
		Slot  int               `json:"slot"`
		TileM float64           `json:"tile_m"`
		Tiles []json.RawMessage `json:"tiles"`
	}
	if code := getJSON(t, ts.URL+"/heatmap?t="+before, &raw); code != 200 {
		t.Fatalf("pre-grid t: status %d, want 200", code)
	}
	if raw.Day != -1 || raw.Slot != -1 || len(raw.Tiles) != 0 || raw.Tiles == nil || raw.TileM == 0 {
		t.Errorf("pre-grid heatmap not empty-but-valid: %+v", raw)
	}
}

func TestTransitionsEndpoint(t *testing.T) {
	ts, hist, _ := historyFixture(t, true)

	var out struct {
		Spot       int      `json:"spot"`
		Pairs      int      `json:"pairs"`
		Counts     [][]int  `json:"counts"`
		LabelNames []string `json:"label_names"`
	}
	if code := getJSON(t, ts.URL+"/transitions?spot=2", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Spot != 2 || len(out.Counts) != 5 || len(out.LabelNames) != 5 {
		t.Fatalf("transitions shape: %+v", out)
	}
	// One recorded day: no consecutive-day pairs yet.
	if out.Pairs != 0 {
		t.Fatalf("%d pairs from a single day", out.Pairs)
	}
	_ = hist
}

// TestHistoryEndpointsEmptyStore: before anything is recorded /history
// serves an empty series, /heatmap has nothing to show.
func TestHistoryEndpointsEmptyStore(t *testing.T) {
	ts, _, _ := historyFixture(t, false)
	var out struct {
		Points []historyPointJSON `json:"points"`
	}
	if code := getJSON(t, ts.URL+"/history?spot=0", &out); code != 200 || len(out.Points) != 0 {
		t.Fatalf("empty store /history: status %d, %d points", code, len(out.Points))
	}
	var ignore json.RawMessage
	if code := getJSON(t, ts.URL+"/heatmap", &ignore); code != 503 {
		t.Fatalf("empty store /heatmap: status %d, want 503", code)
	}
}
