package main

import (
	"net/http"
	"sync/atomic"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/forecast"
	"taxiqueue/internal/obs"
	"taxiqueue/internal/sim"
)

// batchView is one immutable publication of the nightly batch analysis:
// everything the read path needs, computed once at (re)analysis time. The
// server swaps the current view in with a single atomic pointer store
// (RCU style) and handlers load it once per request — no handler takes a
// lock, and a recompute can never tear a response in half because a
// request that loaded the old pointer keeps reading the old, unchanged
// view to completion.
type batchView struct {
	city    *citymap.Map
	result  *core.Result
	grid    core.SlotGrid
	refresh time.Time

	// spotMeta is the slot-invariant part of the /spots payload (position,
	// zone, pickup count, nearest landmark), resolved once per publication
	// instead of once per request. Context is filled per slot at render
	// time.
	spotMeta []spotJSON
}

// newBatchView derives the immutable read view from one analysis result.
func newBatchView(city *citymap.Map, res *core.Result) *batchView {
	v := &batchView{
		city:     city,
		result:   res,
		grid:     res.Config.Grid,
		refresh:  time.Now(),
		spotMeta: make([]spotJSON, len(res.Spots)),
	}
	for i := range res.Spots {
		sa := &res.Spots[i]
		sj := spotJSON{
			Lat: sa.Spot.Pos.Lat, Lon: sa.Spot.Pos.Lon,
			Zone: sa.Spot.Zone.String(), Pickups: sa.Spot.PickupCount,
		}
		if lm, d, ok := city.NearestLandmark(sa.Spot.Pos); ok && d < 50 {
			sj.Landmark = lm.Name
		}
		v.spotMeta[i] = sj
	}
	return v
}

// slotBucket maps a query time onto a cache index: slot j for in-grid
// times, and one shared out-of-grid bucket (== grid.Slots) for everything
// else, since every out-of-grid time serves the identical all-Unidentified
// body.
func (v *batchView) slotBucket(at time.Time) int {
	j := v.grid.Index(at)
	if j < 0 || j >= v.grid.Slots {
		return v.grid.Slots
	}
	return j
}

// buckets is the cache width for slot-keyed endpoints.
func (v *batchView) buckets() int { return v.grid.Slots + 1 }

// spotsPayload builds the /spots entries for one slot bucket, with labels
// supplied by the mode (batch result or live snapshot). The live mode
// appends its discovered spots to this slice before encoding.
func (v *batchView) spotsPayload(bucket int, label func(spot, slot int) core.QueueType) []spotJSON {
	out := make([]spotJSON, len(v.spotMeta))
	copy(out, v.spotMeta)
	for i := range out {
		if bucket >= v.grid.Slots {
			out[i].Context = core.Unidentified.String()
		} else {
			out[i].Context = label(i, bucket).String()
		}
	}
	return out
}

// renderSpots encodes the /spots body for one slot bucket.
func (v *batchView) renderSpots(bucket int, label func(spot, slot int) core.QueueType) []byte {
	return encodeJSON(v.spotsPayload(bucket, label))
}

// contextJSON is the wire format of one (spot, slot) cell on /context: the
// classified context plus the §5.2 features behind it. Final reports
// whether the cell can still change (always true in batch mode; in live
// mode false until every shard's watermark passes the slot).
type contextJSON struct {
	Spot    int     `json:"spot"`
	Context string  `json:"context"`
	Final   bool    `json:"final"`
	TWaitS  float64 `json:"t_wait_s"`
	NArr    float64 `json:"n_arr"`
	QLen    float64 `json:"q_len"`
	TDepS   float64 `json:"t_dep_s"`
	NDep    float64 `json:"n_dep"`
}

// cellJSON fills one contextJSON from a label + feature pair.
func cellJSON(spot int, label core.QueueType, f core.SlotFeatures, final bool) contextJSON {
	return contextJSON{
		Spot: spot, Context: label.String(), Final: final,
		TWaitS: f.TWait.Seconds(), NArr: f.NArr, QLen: f.QLen,
		TDepS: f.TDep.Seconds(), NDep: f.NDep,
	}
}

// renderContext encodes the batch-mode /context body for one slot bucket.
func (v *batchView) renderContext(bucket int) []byte {
	out := make([]contextJSON, len(v.result.Spots))
	for i := range v.result.Spots {
		sa := &v.result.Spots[i]
		label, feats := core.Unidentified, core.SlotFeatures{}
		if bucket < len(sa.Labels) {
			label = sa.Labels[bucket]
		}
		if bucket < len(sa.Features) {
			feats = sa.Features[bucket]
		}
		out[i] = cellJSON(i, label, feats, bucket < v.grid.Slots)
	}
	return encodeJSON(out)
}

// server owns the published batch view and the per-endpoint response
// caches. There is no mutex anywhere on the read path: recompute publishes
// a fresh *batchView, handlers load it once, and the caches invalidate on
// pointer identity.
type server struct {
	view atomic.Pointer[batchView]

	spotsCache   *renderCache
	contextCache *renderCache

	// fc, when set (before serving), upgrades /recommend to rank by the
	// expected state at arrival and backs /forecast. Reads load its
	// published table atomically — still no lock on the read path.
	fc *forecast.Learner
	// defaultAt, when set, supplies the default /recommend evaluation
	// instant (live mode: the newest final slot); nil falls back to
	// noon of the batch day.
	defaultAt func() (time.Time, bool)
}

// newServer wires the response caches to reg (obs.Default in the binary,
// private registries in tests).
func newServer(reg *obs.Registry) *server {
	return &server{
		spotsCache:   newRenderCache(reg, "spots"),
		contextCache: newRenderCache(reg, "context"),
	}
}

// recompute runs the nightly batch analysis and publishes the result as a
// fresh immutable view.
func (s *server) recompute(seed int64, scale float64, minPts int) error {
	city := s.city()
	if city == nil {
		city = citymap.Generate(seed, scale)
	}
	out := sim.Run(sim.Config{Seed: seed, City: city, InjectFaults: true})
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: minPts}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		return err
	}
	res, err := engine.Analyze(cleaned)
	if err != nil {
		return err
	}
	s.view.Store(newBatchView(city, res))
	return nil
}

// city returns the current view's map (nil before the first recompute).
func (s *server) city() *citymap.Map {
	if v := s.view.Load(); v != nil {
		return v.city
	}
	return nil
}

// result returns the current view's analysis (nil before the first
// recompute).
func (s *server) result() *core.Result {
	if v := s.view.Load(); v != nil {
		return v.result
	}
	return nil
}

// loadView resolves the request's view and slot bucket, answering 503 /
// 400 itself when the server is not ready or the timestamp is bad.
func (s *server) loadView(w http.ResponseWriter, r *http.Request) (*batchView, int, bool) {
	v := s.view.Load()
	if v == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return nil, 0, false
	}
	at := v.grid.Start.Add(12 * time.Hour)
	if q := r.URL.Query().Get("at"); q != "" {
		t, err := time.Parse(time.RFC3339, q)
		if err != nil {
			http.Error(w, "bad 'at' timestamp", http.StatusBadRequest)
			return nil, 0, false
		}
		at = t
	}
	return v, v.slotBucket(at), true
}
