package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/obs"
)

// testForecastServer wires a forecast learner onto the batch test server
// and folds one observed day so the profiles answer.
func testForecastServer(t *testing.T) (*server, *forecastServer) {
	t.Helper()
	srv := testServer()
	res := srv.result()
	// Give the fixture spot real per-slot features so the learned profile
	// carries a non-zero wait (a saturated taxi queue all day).
	feats := make([]core.SlotFeatures, 48)
	for i := range feats {
		feats[i] = core.SlotFeatures{
			TWait: 10 * time.Minute, NArr: 9, QLen: 3,
			TDep: 4 * time.Minute, NDep: 6,
		}
	}
	res.Spots[0].Features = feats
	fc, err := newForecastLearner("", res, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close() })
	if err := fc.ObserveResult(0, res); err != nil {
		t.Fatal(err)
	}
	srv.fc = fc
	return srv, &forecastServer{fc: fc}
}

func TestHandleForecast(t *testing.T) {
	_, fs := testForecastServer(t)
	at := time.Date(2026, 1, 7, 18, 30, 0, 0, time.UTC) // two days past the observed one
	req := httptest.NewRequest("GET", "/forecast?spot=0&at="+at.Format(time.RFC3339), nil)
	w := httptest.NewRecorder()
	fs.handleForecast(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var got forecastJSON
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Spot != 0 || got.Day != 2 || got.Slot != 37 {
		t.Fatalf("located (spot %d, day %d, slot %d), want (0, 2, 37)", got.Spot, got.Day, got.Slot)
	}
	// The test fixture labels every slot C3; one observed day's profile
	// must answer (not "none") and carry that label.
	if got.Source == "none" || got.Context != "C3" {
		t.Fatalf("source %q context %q, want an observed C3 answer", got.Source, got.Context)
	}
	if got.Weight <= 0 {
		t.Fatalf("weight %v, want > 0", got.Weight)
	}
	if !got.T.Equal(at) {
		t.Fatalf("slot time %v, want %v (30-min-aligned query)", got.T, at)
	}
}

func TestHandleForecastDefaultsToNow(t *testing.T) {
	_, fs := testForecastServer(t)
	// No at=: the handler uses the wall clock clamped to the grid start.
	// Either way the evaluation must succeed.
	w := httptest.NewRecorder()
	fs.handleForecast(w, httptest.NewRequest("GET", "/forecast?spot=0", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var got forecastJSON
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Day < 0 || got.Slot < 0 || got.Slot >= 48 {
		t.Fatalf("default-at located (day %d, slot %d)", got.Day, got.Slot)
	}
}

func TestHandleForecastValidation(t *testing.T) {
	_, fs := testForecastServer(t)
	for _, url := range []string{
		"/forecast",                                // missing spot
		"/forecast?spot=x",                         // unparsable spot
		"/forecast?spot=-1",                        // negative spot
		"/forecast?spot=1",                         // out of range (1 spot)
		"/forecast?spot=0&at=teatime",              // bad at
		"/forecast?spot=0&at=2025-12-31T00:00:00Z", // at precedes the grid
	} {
		w := httptest.NewRecorder()
		fs.handleForecast(w, httptest.NewRequest("GET", url, nil))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", url, w.Code)
		}
	}
}

// TestHandleRecommendForecasted: with the learner wired into the server,
// /recommend responses carry eta_s/expected_wait_s/forecasted, and the
// commuter ranking still surfaces the C3 spot.
func TestHandleRecommendForecasted(t *testing.T) {
	srv, _ := testForecastServer(t)
	req := httptest.NewRequest("GET", "/recommend?for=commuter&lat=1.30&lon=103.82", nil)
	w := httptest.NewRecorder()
	srv.handleRecommend(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var recs []struct {
		Context    string  `json:"context"`
		ETAS       float64 `json:"eta_s"`
		ExpWaitS   float64 `json:"expected_wait_s"`
		Forecasted bool    `json:"forecasted"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Context != "C3" {
		t.Fatalf("recs = %+v", recs)
	}
	if !recs[0].Forecasted {
		t.Fatal("learner wired in but response not forecasted")
	}
	if recs[0].ETAS <= 0 {
		t.Fatalf("eta_s %v, want > 0 (walking ~1.1 km)", recs[0].ETAS)
	}
	if recs[0].ExpWaitS <= 0 {
		t.Fatalf("expected_wait_s %v, want the profile's C3 wait", recs[0].ExpWaitS)
	}
}

// TestRecommendAtDefault: without a live feed the default instant is noon
// of the batch day; with defaultAt wired (live mode) it is the feed's
// newest final slot.
func TestRecommendAtDefault(t *testing.T) {
	srv := testServer()
	v := srv.view.Load()
	noon := v.grid.Start.Add(12 * time.Hour)
	if got := srv.recommendAt(v); !got.Equal(noon) {
		t.Fatalf("batch default %v, want noon %v", got, noon)
	}

	latest := v.grid.Start.Add(17*time.Hour + 30*time.Minute)
	srv.defaultAt = func() (time.Time, bool) { return latest, true }
	if got := srv.recommendAt(v); !got.Equal(latest) {
		t.Fatalf("live default %v, want newest final slot %v", got, latest)
	}

	// A feed that has finalized nothing yet falls back to noon.
	srv.defaultAt = func() (time.Time, bool) { return time.Time{}, false }
	if got := srv.recommendAt(v); !got.Equal(noon) {
		t.Fatalf("empty-feed default %v, want noon %v", got, noon)
	}
}

// TestRecommendDefaultAtServed: the default instant actually drives the
// ranking — a spot that is only attractive in the evening appears for
// the live default (evening) but not the batch default (noon).
func TestRecommendDefaultAtServed(t *testing.T) {
	srv := testServer()
	v := srv.view.Load()
	sa := &v.result.Spots[0]
	for i := range sa.Labels {
		sa.Labels[i] = core.C2 // passengers piling up...
	}
	for i := 0; i < 30; i++ {
		sa.Labels[i] = core.C3 // ...but only after 15:00
	}

	get := func() int {
		w := httptest.NewRecorder()
		srv.handleRecommend(w, httptest.NewRequest("GET", "/recommend?for=driver&lat=1.30&lon=103.82", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		var recs []json.RawMessage
		if err := json.Unmarshal(w.Body.Bytes(), &recs); err != nil {
			t.Fatal(err)
		}
		return len(recs)
	}

	if n := get(); n != 0 {
		t.Fatalf("noon default served %d driver recs for a C3-at-noon spot", n)
	}
	srv.defaultAt = func() (time.Time, bool) { return v.grid.Start.Add(18 * time.Hour), true }
	if n := get(); n != 1 {
		t.Fatalf("evening default served %d driver recs, want 1", n)
	}
}
