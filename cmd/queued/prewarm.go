package main

import (
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/forecast"
	"taxiqueue/internal/obs"
)

// prewarmer renders the hot live-mode bodies into the render caches before
// the first reader asks for them. Two triggers:
//
//   - Every watermark advance: the ingest service publishes a fresh
//     snapshot and then calls the history sinks, so by the time the
//     pre-warmer's AppendSlots nudge fires, rendering against the current
//     published (view, snapshot) pair fills exactly the epoch the next
//     request will be keyed on. Without this, the first /spots, /context
//     and /estimate after every advance pay the encode on the request path.
//
//   - Just before each slot rollover (the forecast grid's slot boundary
//     minus a small lead): the slot about to finalize is rendered ahead of
//     time, using the learned profile table to decide the instant is
//     on-grid and worth having hot.
//
// Everything renders through the exact methods the handlers use
// (renderSpotsBody, renderContextBody, renderEstimateBody), so a
// pre-warmed body is byte-identical to what the first request would have
// produced — the cache cannot tell the difference, and neither can a
// client.
type prewarmer struct {
	fc   *forecast.Learner
	live *liveServer // set by attach before run starts

	lead time.Duration // how far before a slot boundary to render
	kick chan struct{} // watermark-advance nudge (non-blocking)
	stop chan struct{}

	spots, contexts, estimates *obs.Counter
}

// newPrewarmer wires the pre-warm counters into reg. The endpoint label
// values match the render-cache names, so one /metrics scrape correlates
// pre-warmed renders with the hit/miss series they feed.
func newPrewarmer(fc *forecast.Learner, reg *obs.Registry) *prewarmer {
	c := func(endpoint string) *obs.Counter {
		return reg.Counter("queued_cache_prewarm_total",
			"Cache bodies rendered ahead of the first reader by the pre-warmer.",
			obs.Label{Name: "endpoint", Value: endpoint})
	}
	return &prewarmer{
		fc:        fc,
		lead:      2 * time.Second,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		spots:     c("live_spots"),
		contexts:  c("live_context"),
		estimates: c("estimate"),
	}
}

// attach hands the pre-warmer the live server whose caches it fills. Must
// happen before run starts; AppendSlots is safe earlier (it only nudges).
func (p *prewarmer) attach(l *liveServer) { p.live = l }

// AppendSlots implements ingest.HistoryAppender: the pre-warmer joins the
// history tee not to store anything but to learn, without polling, that a
// watermark advanced. The ingest service publishes the new snapshot before
// it calls the sinks, so the nudged render sees fresh state.
func (p *prewarmer) AppendSlots(day, lo, hi int, at func(spot, slot int) (core.SlotFeatures, core.QueueType)) error {
	p.nudge()
	return nil
}

// Flush implements ingest.HistoryAppender.
func (p *prewarmer) Flush() error {
	p.nudge()
	return nil
}

// nudge wakes the run loop if it is not already pending a wake. Never
// blocks: it is called from the ingest flush path.
func (p *prewarmer) nudge() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// prewarmOnce renders the bodies worth having hot against the currently
// published (view, snapshot) pair: the default-instant bucket every
// at-less request resolves to, the newest final slot, and — when the
// profile table places it on the grid — the slot about to roll over. It
// returns how many bodies it actually rendered (a body already cached
// costs one cache probe and counts nothing).
func (p *prewarmer) prewarmOnce() int {
	l := p.live
	if l == nil {
		return 0
	}
	v := l.srv.view.Load()
	if v == nil {
		return 0
	}
	snap := l.svc.Snapshot()
	if snap == nil {
		return 0
	}
	grid := p.fc.Grid()
	ats := []time.Time{l.srv.recommendAt(v)}
	if snap.FinalBelow > 0 {
		ats = append(ats, grid.Start.Add(time.Duration(snap.FinalBelow-1)*grid.SlotLen))
	}
	if tbl := p.fc.Table(); tbl != nil {
		next := grid.Start.Add(time.Duration(snap.FinalBelow) * grid.SlotLen)
		if _, _, ok := tbl.Locate(next); ok {
			ats = append(ats, next)
		}
	}
	buckets := make(map[int]bool, len(ats))
	for _, at := range ats {
		buckets[v.slotBucket(at)] = true
	}

	warmed := 0
	key := liveKey{v, snap}
	for bucket := range buckets {
		bucket := bucket
		if p.warm(l.spotsCache, p.spots, key, bucket, v.buckets(), func() []byte {
			return l.renderSpotsBody(v, snap, bucket)
		}) {
			warmed++
		}
		if p.warm(l.contextCache, p.contexts, key, bucket, v.buckets(), func() []byte {
			return l.renderContextBody(v, snap, bucket)
		}) {
			warmed++
		}
	}
	if p.warm(l.estCache, p.estimates, l.svc.EstimateVersion(), 0, 1, l.renderEstimateBody) {
		warmed++
	}
	return warmed
}

// warm fills one cache slot through the cache's own get path and counts
// the render only when it actually ran — an already-cached body increments
// nothing, so the prewarm counters measure work done ahead of readers, not
// loop iterations.
func (p *prewarmer) warm(c *renderCache, n *obs.Counter, key any, idx, buckets int, render func() []byte) bool {
	rendered := false
	c.get(key, idx, buckets, func() []byte {
		rendered = true
		return render()
	})
	if rendered {
		n.Inc()
	}
	return rendered
}

// untilNext returns the wall-clock wait to `lead` before the next slot
// boundary of the forecast grid — the moment the slot about to finalize is
// worth rendering.
func (p *prewarmer) untilNext(now time.Time) time.Duration {
	g := p.fc.Grid()
	if g.SlotLen <= 0 {
		return time.Minute
	}
	rem := g.SlotLen - now.Sub(g.Start)%g.SlotLen
	if rem <= 0 || rem > g.SlotLen {
		rem = g.SlotLen // before the grid start, or exactly on a boundary
	}
	if rem > p.lead {
		rem -= p.lead
	}
	if rem < time.Second {
		rem = time.Second
	}
	return rem
}

// run is the pre-warm loop: wake on a watermark nudge or just before the
// next slot boundary, render, repeat. Stop by closing p.stop.
func (p *prewarmer) run() {
	t := time.NewTimer(p.untilNext(time.Now()))
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
		case <-t.C:
		}
		p.prewarmOnce()
		t.Reset(p.untilNext(time.Now()))
	}
}

// halt stops the run loop.
func (p *prewarmer) halt() { close(p.stop) }
