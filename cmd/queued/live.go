package main

import (
	"encoding/json"
	"log"
	"net/http"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/stream"
)

// liveServer serves /spots from the live ingestion service instead of the
// batch analysis: the nightly batch run still supplies the spot positions
// and per-spot thresholds, but every context comes from the records POSTed
// to /ingest, and a slot is only served once no shard can still change it.
type liveServer struct {
	srv *server
	svc *ingest.Service
}

// liveStreamConfig derives the per-shard engine configuration from the
// batch result, exactly like the deployed system hands the nightly spots
// and thresholds to the online tier.
func liveStreamConfig(res *core.Result) stream.Config {
	spots := make([]core.QueueSpot, len(res.Spots))
	ths := make([]core.Thresholds, len(res.Spots))
	for i := range res.Spots {
		spots[i] = res.Spots[i].Spot
		ths[i] = res.Spots[i].Thresholds
	}
	return stream.Config{
		Spots: spots, Thresholds: ths,
		Grid: res.Config.Grid, Amplify: res.Config.Amplify,
	}
}

// handleSpots is the live-mode /spots: labels come from the ingest
// aggregator; a slot still open (or never fed) serves as Unidentified.
func (l *liveServer) handleSpots(w http.ResponseWriter, r *http.Request) {
	l.srv.mu.RLock()
	res := l.srv.result
	grid := l.srv.grid
	city := l.srv.city
	l.srv.mu.RUnlock()
	at := grid.Start.Add(12 * time.Hour)
	if v := r.URL.Query().Get("at"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			http.Error(w, "bad 'at' timestamp", http.StatusBadRequest)
			return
		}
		at = t
	}
	slot := grid.Index(at)
	out := make([]spotJSON, 0, len(res.Spots))
	for i := range res.Spots {
		sa := &res.Spots[i]
		label := core.Unidentified
		if lv, ok := l.svc.Label(i, slot); ok {
			label = lv
		}
		sj := spotJSON{
			Lat: sa.Spot.Pos.Lat, Lon: sa.Spot.Pos.Lon,
			Zone: sa.Spot.Zone.String(), Pickups: sa.Spot.PickupCount,
			Context: label.String(),
		}
		if lm, d, ok := city.NearestLandmark(sa.Spot.Pos); ok && d < 50 {
			sj.Landmark = lm.Name
		}
		out = append(out, sj)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("encode: %v", err)
	}
}

// registerLive mounts the ingestion endpoints and swaps /spots to the live
// view. Call after the initial batch analysis.
func registerLive(mux *http.ServeMux, l *liveServer) {
	mux.HandleFunc("/spots", l.handleSpots)
	mux.HandleFunc("/ingest", l.svc.HandleIngest)
	mux.HandleFunc("/ingest/stats", l.svc.HandleStats)
	mux.HandleFunc("/ingest/flush", l.svc.HandleFlush)
}
