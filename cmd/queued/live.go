package main

import (
	"net/http"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/obs"
	"taxiqueue/internal/stream"
)

// liveServer serves /spots, /context and /estimate from the live ingestion
// service instead of the batch analysis: the nightly batch run still
// supplies the spot positions and per-spot thresholds, but every context
// comes from the records POSTed to /ingest, and a final cell is only
// served once no shard can still change it.
//
// The read path is lock-free end to end: each request loads the published
// *batchView and the aggregator's published *ingest.Snapshot, and the
// response cache is keyed on that pointer pair — a new snapshot (one per
// watermark advance) invalidates exactly the bodies it changed.
type liveServer struct {
	srv *server
	svc *ingest.Service

	spotsCache   *renderCache
	liveCache    *renderCache // /spots?live=1: batch payload + discovered spots
	contextCache *renderCache
	estCache     *renderCache
}

// liveKey is the cache epoch for snapshot-backed endpoints: the pair of
// published pointers a response was rendered from, compared by identity.
type liveKey struct {
	view *batchView
	snap *ingest.Snapshot
}

// newLiveServer wires the live read path and its caches to reg.
func newLiveServer(srv *server, svc *ingest.Service, reg *obs.Registry) *liveServer {
	return &liveServer{
		srv:          srv,
		svc:          svc,
		spotsCache:   newRenderCache(reg, "live_spots"),
		liveCache:    newRenderCache(reg, "live_spots_discovered"),
		contextCache: newRenderCache(reg, "live_context"),
		estCache:     newRenderCache(reg, "estimate"),
	}
}

// liveStreamConfig derives the per-shard engine configuration from the
// batch result, exactly like the deployed system hands the nightly spots
// and thresholds to the online tier.
func liveStreamConfig(res *core.Result) stream.Config {
	spots := make([]core.QueueSpot, len(res.Spots))
	ths := make([]core.Thresholds, len(res.Spots))
	for i := range res.Spots {
		spots[i] = res.Spots[i].Spot
		ths[i] = res.Spots[i].Thresholds
	}
	return stream.Config{
		Spots: spots, Thresholds: ths,
		Grid: res.Config.Grid, Amplify: res.Config.Amplify,
	}
}

// snapLabel adapts a published snapshot to the view's label callback: a
// slot still open (or never fed) reads as Unidentified.
func snapLabel(snap *ingest.Snapshot) func(spot, slot int) core.QueueType {
	return func(spot, slot int) core.QueueType {
		if lb, ok := snap.Label(spot, slot); ok {
			return lb
		}
		return core.Unidentified
	}
}

// renderSpotsBody encodes one (view, snapshot, slot) /spots body. The
// handler and the pre-warmer both render through this method, so a
// pre-warmed cache entry is byte-identical to what the first request would
// have produced.
func (l *liveServer) renderSpotsBody(v *batchView, snap *ingest.Snapshot, bucket int) []byte {
	return v.renderSpots(bucket, snapLabel(snap))
}

// renderLiveSpotsBody is renderSpotsBody plus the online-discovered spots
// (the /spots?live=1 variant).
func (l *liveServer) renderLiveSpotsBody(v *batchView, snap *ingest.Snapshot, bucket int) []byte {
	out := v.spotsPayload(bucket, snapLabel(snap))
	for _, ls := range snap.Live() {
		sj := spotJSON{
			Lat: ls.Spot.Pos.Lat, Lon: ls.Spot.Pos.Lon,
			Zone: ls.Spot.Zone.String(), Pickups: ls.Spot.PickupCount,
			// No batch thresholds exist for a spot discovered
			// minutes ago, so no context is claimed for it yet.
			Context: core.Unidentified.String(),
			State:   ls.State.String(), Live: true,
		}
		if lm, d, ok := v.city.NearestLandmark(ls.Spot.Pos); ok && d < 50 {
			sj.Landmark = lm.Name
		}
		out = append(out, sj)
	}
	return encodeJSON(out)
}

// handleSpots is the live-mode /spots: labels come from the published
// ingest snapshot; a slot still open (or never fed) serves as
// Unidentified. Bodies are cached per (view, snapshot, slot).
//
// With ?live=1 the body additionally carries the online-discovered queue
// spots (Snapshot.Live) after the batch list, each flagged "live": true
// with its lifecycle "state" — the view that sees a pop-up queue hours
// before the next batch pass. Without the flag the body is byte-identical
// to the plain live-mode /spots, discovered spots or not.
func (l *liveServer) handleSpots(w http.ResponseWriter, r *http.Request) {
	v, bucket, ok := l.srv.loadView(w, r)
	if !ok {
		return
	}
	snap := l.svc.Snapshot()
	if r.URL.Query().Get("live") == "1" {
		body := l.liveCache.get(liveKey{v, snap}, bucket, v.buckets(), func() []byte {
			return l.renderLiveSpotsBody(v, snap, bucket)
		})
		writeJSON(w, body)
		return
	}
	body := l.spotsCache.get(liveKey{v, snap}, bucket, v.buckets(), func() []byte {
		return l.renderSpotsBody(v, snap, bucket)
	})
	writeJSON(w, body)
}

// handleContext is the live-mode /context: the snapshot's merged features
// and labels for one slot, final only below the cross-shard watermark.
func (l *liveServer) handleContext(w http.ResponseWriter, r *http.Request) {
	v, bucket, ok := l.srv.loadView(w, r)
	if !ok {
		return
	}
	snap := l.svc.Snapshot()
	body := l.contextCache.get(liveKey{v, snap}, bucket, v.buckets(), func() []byte {
		return l.renderContextBody(v, snap, bucket)
	})
	writeJSON(w, body)
}

// renderContextBody encodes one (view, snapshot, slot) /context body —
// shared by the handler and the pre-warmer (see renderSpotsBody).
func (l *liveServer) renderContextBody(v *batchView, snap *ingest.Snapshot, bucket int) []byte {
	out := make([]contextJSON, len(v.result.Spots))
	for i := range out {
		if bucket >= v.grid.Slots {
			// Out-of-grid times never resolve to a cell, even when the
			// live engine's grid extends past the batch day.
			out[i] = cellJSON(i, core.Unidentified, core.SlotFeatures{}, false)
			continue
		}
		feats, label, final := snap.Context(i, bucket)
		out[i] = cellJSON(i, label, feats, final)
	}
	return encodeJSON(out)
}

// estimateJSON is the /estimate payload: best-effort contexts for the slot
// the feed is currently inside, merged from every shard's provisional
// accumulators (§8's early-estimate idea applied across shards). Live[i]
// reports whether spot i had enough of the slot observed to classify.
type estimateJSON struct {
	Version  uint64    `json:"version"`
	AsOf     time.Time `json:"as_of"`
	Slot     int       `json:"slot"`
	Contexts []string  `json:"contexts"`
	Live     []bool    `json:"live"`
}

// handleEstimate serves the provisional estimate, cached by the estimate
// version the shards bump as they export fresh accumulators. The version
// is read before the merge, so a cached body is never newer than its key.
func (l *liveServer) handleEstimate(w http.ResponseWriter, _ *http.Request) {
	ver := l.svc.EstimateVersion()
	body := l.estCache.get(ver, 0, 1, l.renderEstimateBody)
	writeJSON(w, body)
}

// renderEstimateBody merges and encodes the current provisional estimate —
// shared by the handler and the pre-warmer.
func (l *liveServer) renderEstimateBody() []byte {
	est := l.svc.Estimate()
	out := estimateJSON{
		Version: est.Version, AsOf: est.AsOf, Slot: est.Slot,
		Contexts: make([]string, len(est.Labels)),
		Live:     est.OK,
	}
	for i, lb := range est.Labels {
		out.Contexts[i] = lb.String()
	}
	return encodeJSON(out)
}

// registerLive mounts the ingestion endpoints and swaps the read endpoints
// to the live view. Call after the initial batch analysis.
func registerLive(mux *http.ServeMux, l *liveServer) {
	mux.HandleFunc("/spots", l.handleSpots)
	mux.HandleFunc("/context", l.handleContext)
	mux.HandleFunc("/estimate", l.handleEstimate)
	mux.HandleFunc("/ingest", l.svc.HandleIngest)
	mux.HandleFunc("/ingest/stats", l.svc.HandleStats)
	mux.HandleFunc("/ingest/flush", l.svc.HandleFlush)
}
