package main

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"sync/atomic"

	"taxiqueue/internal/obs"
)

// renderCache is the pre-encoded response cache behind one hot endpoint.
// Responses are rendered once per (epoch, slot) and then served as the same
// cached []byte until the epoch key changes. The key is compared by value —
// handlers pass the published pointers themselves (the *batchView, or a
// struct of it and the *ingest.Snapshot) — so invalidation is pointer
// identity, never a timer: the instant a new view or snapshot is published,
// every request renders against it; until then every request is a cache hit
// that serves immutable bytes with zero encoding work.
//
// The cache itself is lock-free. Concurrent requests that race on a fresh
// epoch may each render once (the last Store wins), which is benign:
// correctness never depends on cache state because every render closure
// reads only the epoch-keyed immutable data the handler already loaded.
type renderCache struct {
	p            atomic.Pointer[renderEpoch]
	hits, misses *obs.Counter
}

// renderEpoch is one epoch's body set; bodies[i] is the encoded response
// for slot bucket i, filled lazily on first request.
type renderEpoch struct {
	key    any
	bodies []atomic.Pointer[[]byte]
}

// newRenderCache registers the hit/miss series for one endpoint in reg.
func newRenderCache(reg *obs.Registry, endpoint string) *renderCache {
	l := obs.Label{Name: "endpoint", Value: endpoint}
	return &renderCache{
		hits:   reg.Counter("queued_cache_hits_total", "Responses served as pre-encoded bytes from the per-epoch cache.", l),
		misses: reg.Counter("queued_cache_misses_total", "Responses rendered because the epoch or slot was not cached yet.", l),
	}
}

// get returns the cached body for (key, idx), rendering and installing it
// on first need. key must be comparable; idx must be < n, the number of
// slot buckets this endpoint distinguishes within one epoch.
func (c *renderCache) get(key any, idx, n int, render func() []byte) []byte {
	e := c.p.Load()
	if e == nil || e.key != key {
		e = &renderEpoch{key: key, bodies: make([]atomic.Pointer[[]byte], n)}
		c.p.Store(e)
	}
	if b := e.bodies[idx].Load(); b != nil {
		c.hits.Inc()
		return *b
	}
	c.misses.Inc()
	body := render()
	e.bodies[idx].Store(&body)
	return body
}

// encodeJSON renders v exactly like json.NewEncoder(w).Encode(v) does on
// the uncached path — including the trailing newline — so cached and
// baseline responses are byte-identical.
func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		log.Printf("encode: %v", err)
		return []byte("null\n")
	}
	return buf.Bytes()
}

// writeJSON serves one pre-encoded body.
func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(body); err != nil {
		log.Printf("write: %v", err)
	}
}
