package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/obs"
)

// emptyBatchResult is a batch analysis that detected no queue spots at all
// — a thin feed, an over-tight MinPoints, or a first boot on bad data. The
// query surface has to answer something sane for it.
func emptyBatchResult() *core.Result {
	cfg := core.DefaultEngineConfig()
	cfg.Grid = core.DaySlots(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
	return &core.Result{Config: cfg}
}

// TestForecastNoSpotsDetected: against an empty spot set the pre-PR
// handler answered 400 "need spot=0..-1" — a hint no request can satisfy.
// It must answer 503 "no spots detected" for every spot parameter.
func TestForecastNoSpotsDetected(t *testing.T) {
	fc, err := newForecastLearner("", emptyBatchResult(), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close() })
	fs := &forecastServer{fc: fc}
	for _, url := range []string{"/forecast", "/forecast?spot=0", "/forecast?spot=-1"} {
		w := httptest.NewRecorder()
		fs.handleForecast(w, httptest.NewRequest("GET", url, nil))
		if w.Code != http.StatusServiceUnavailable {
			t.Errorf("%s -> %d, want 503", url, w.Code)
		}
		if body := w.Body.String(); !strings.Contains(body, "no spots detected") || strings.Contains(body, "-1") {
			t.Errorf("%s body %q, want a 'no spots detected' answer without the 0..-1 range", url, body)
		}
	}
}

// TestHistoryNoSpotsDetected: the same degenerate input through the
// history analytics endpoints (spotParam is shared by /history and
// /transitions).
func TestHistoryNoSpotsDetected(t *testing.T) {
	hist, err := newHistoryStore(t.TempDir(), emptyBatchResult(), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hist.Close() })
	mux := http.NewServeMux()
	registerHistory(mux, &historyServer{hist: hist})
	for _, url := range []string{"/history?spot=0", "/history", "/transitions?spot=0"} {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		if w.Code != http.StatusServiceUnavailable {
			t.Errorf("%s -> %d, want 503", url, w.Code)
		}
		if body := w.Body.String(); !strings.Contains(body, "no spots detected") || strings.Contains(body, "-1") {
			t.Errorf("%s body %q, want a 'no spots detected' answer without the 0..-1 range", url, body)
		}
	}
}

// TestHistoryInvertedRange: from > to is a client mistake (swapped
// parameters, wrong day) and answers 400 — not the empty 200 that used to
// hide the typo. An empty-but-ordered range still answers 200.
func TestHistoryInvertedRange(t *testing.T) {
	ts, hist, _ := historyFixture(t, true)
	grid := hist.Grid()
	at := func(slots int) string {
		return grid.Start.Add(time.Duration(slots) * grid.SlotLen).UTC().Format(time.RFC3339)
	}

	for _, url := range []string{
		"/history?spot=0&from=" + at(9) + "&to=" + at(5), // swapped window
		"/history?spot=0&from=" + at(9999),               // from past everything recorded
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", url, resp.StatusCode)
		}
	}
	// from == to: a legal, empty window.
	var out struct {
		Points []historyPointJSON `json:"points"`
	}
	if code := getJSON(t, ts.URL+"/history?spot=0&from="+at(5)+"&to="+at(5), &out); code != 200 || len(out.Points) != 0 {
		t.Fatalf("from==to: status %d with %d points, want empty 200", code, len(out.Points))
	}
}
