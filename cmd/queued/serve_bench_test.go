package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/obs"
	"taxiqueue/internal/sim"
)

// lockedServer reproduces the pre-snapshot read path — an RWMutex around
// the batch state, per-request landmark lookups, per-request JSON
// encoding, and labels pulled through the aggregator's mutex
// (Service.ContextLocked) — so the benchmarks measure the cached RCU path
// against the exact behavior it replaced, and the equivalence tests can
// assert the two paths emit byte-identical bodies.
type lockedServer struct {
	mu   sync.RWMutex
	city *citymap.Map
	res  *core.Result
	grid core.SlotGrid
	svc  *ingest.Service // nil = batch labels from res
}

func (s *lockedServer) at(r *http.Request) (time.Time, bool) {
	at := s.grid.Start.Add(12 * time.Hour)
	if v := r.URL.Query().Get("at"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return at, false
		}
		at = t
	}
	return at, true
}

func (s *lockedServer) handleSpots(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	res, grid, city, svc := s.res, s.grid, s.city, s.svc
	s.mu.RUnlock()
	at, ok := s.at(r)
	if !ok {
		http.Error(w, "bad 'at' timestamp", http.StatusBadRequest)
		return
	}
	slot := grid.Index(at)
	out := make([]spotJSON, 0, len(res.Spots))
	for i := range res.Spots {
		sa := &res.Spots[i]
		label := core.Unidentified
		if svc != nil {
			if _, lv, ok := svc.ContextLocked(i, slot); ok {
				label = lv
			}
		} else {
			label = sa.LabelAt(grid, at)
		}
		sj := spotJSON{
			Lat: sa.Spot.Pos.Lat, Lon: sa.Spot.Pos.Lon,
			Zone: sa.Spot.Zone.String(), Pickups: sa.Spot.PickupCount,
			Context: label.String(),
		}
		if lm, d, ok := city.NearestLandmark(sa.Spot.Pos); ok && d < 50 {
			sj.Landmark = lm.Name
		}
		out = append(out, sj)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("encode: %v", err)
	}
}

func (s *lockedServer) handleContext(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	res, grid, svc := s.res, s.grid, s.svc
	s.mu.RUnlock()
	at, ok := s.at(r)
	if !ok {
		http.Error(w, "bad 'at' timestamp", http.StatusBadRequest)
		return
	}
	slot := grid.Index(at)
	out := make([]contextJSON, len(res.Spots))
	for i := range res.Spots {
		label, feats, final := core.Unidentified, core.SlotFeatures{}, false
		if svc != nil {
			if f, lv, ok := svc.ContextLocked(i, slot); ok {
				feats, label, final = f, lv, true
			}
		} else if slot >= 0 && slot < grid.Slots {
			sa := &res.Spots[i]
			if slot < len(sa.Labels) {
				label = sa.Labels[slot]
			}
			if slot < len(sa.Features) {
				feats = sa.Features[slot]
			}
			final = true
		}
		out[i] = cellJSON(i, label, feats, final)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("encode: %v", err)
	}
}

// benchDays widens the live grid past the simulated day so the feeder's
// time-shifted laps keep closing fresh slots — every lap advances the
// watermark, so snapshots (and cache epochs) keep churning while the
// benchmark reads.
const benchDays = 4

// serveEnv is the shared read-path fixture: one simulated day analyzed in
// batch, a live ingest service bootstrapped from it, the cached RCU server
// and the locked baseline over the same state, and an optional background
// feeder that replays the day with a +24h shift per lap.
type serveEnv struct {
	srv    *server
	live   *liveServer
	locked *lockedServer
	svc    *ingest.Service
	day    []mdt.Record
	grid   core.SlotGrid // batch (single-day) grid
	stop   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
}

func newServeEnv(tb testing.TB, feed bool) *serveEnv {
	tb.Helper()
	out := sim.Run(sim.Config{Seed: 42, City: citymap.Generate(42, 0.05)})
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 25}
	cfg.Grid = core.DaySlots(out.Config.Start)
	engine, err := core.NewEngine(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := engine.Analyze(cleaned)
	if err != nil {
		tb.Fatal(err)
	}
	scfg := liveStreamConfig(res)
	scfg.Grid.Slots *= benchDays
	svc, err := ingest.NewService(ingest.Config{
		Stream: scfg,
		Clean:  clean.Config{ValidFrame: citymap.Island},
		Shards: 2,
	})
	if err != nil {
		tb.Fatal(err)
	}
	srv := newServer(svc.Registry())
	srv.view.Store(newBatchView(out.Config.City, res))
	env := &serveEnv{
		srv:    srv,
		live:   newLiveServer(srv, svc, svc.Registry()),
		locked: &lockedServer{city: out.Config.City, res: res, grid: cfg.Grid, svc: svc},
		svc:    svc,
		day:    cleaned,
		grid:   cfg.Grid,
		stop:   make(chan struct{}),
	}
	if feed {
		env.startFeeder()
	}
	tb.Cleanup(env.close)
	return env
}

// startFeeder replays the cleaned day through Accept in wire-sized
// batches, shifting every lap by +24h so per-taxi time order is preserved
// and the stream engine keeps closing new slots.
func (e *serveEnv) startFeeder() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		const batchSize = 500
		batch := make([]mdt.Record, batchSize)
		for shift := time.Duration(0); ; shift += 24 * time.Hour {
			for i := 0; i < len(e.day); i += batchSize {
				select {
				case <-e.stop:
					return
				default:
				}
				n := len(e.day) - i
				if n > batchSize {
					n = batchSize
				}
				b := batch[:n]
				copy(b, e.day[i:i+n])
				if shift != 0 {
					for j := range b {
						b[j].Time = b[j].Time.Add(shift)
					}
				}
				if _, err := e.svc.Accept(b); err != nil {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
}

func (e *serveEnv) close() {
	e.once.Do(func() {
		close(e.stop)
		e.wg.Wait()
		_ = e.svc.Close()
	})
}

// feedDay pushes the whole day synchronously and flushes, making every
// slot final.
func (e *serveEnv) feedDay(tb testing.TB) {
	tb.Helper()
	for i := 0; i < len(e.day); i += 500 {
		n := len(e.day) - i
		if n > 500 {
			n = 500
		}
		if _, err := e.svc.Accept(e.day[i : i+n]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := e.svc.Flush(); err != nil {
		tb.Fatal(err)
	}
}

// slotURLs returns one query URL per day-grid slot midpoint plus one
// out-of-grid time, so benchmarks and identity checks sweep every cache
// bucket.
func (e *serveEnv) slotURLs(path string) []string {
	urls := make([]string, 0, e.grid.Slots+1)
	for j := 0; j < e.grid.Slots; j++ {
		at := e.grid.Start.Add(time.Duration(j)*e.grid.SlotLen + e.grid.SlotLen/2)
		urls = append(urls, path+"?at="+at.UTC().Format(time.RFC3339))
	}
	urls = append(urls, path+"?at="+e.grid.Start.Add(-time.Hour).UTC().Format(time.RFC3339))
	return urls
}

// TestCachedMatchesLockedBaseline: after a full final feed, the cached
// snapshot handlers and the locked per-request baseline must produce
// byte-identical bodies for every slot — twice, so both the render (miss)
// and the cached (hit) path are compared.
func TestCachedMatchesLockedBaseline(t *testing.T) {
	env := newServeEnv(t, false)
	env.feedDay(t)
	cases := []struct {
		name           string
		cached, locked http.HandlerFunc
	}{
		{"spots", env.live.handleSpots, env.locked.handleSpots},
		{"context", env.live.handleContext, env.locked.handleContext},
	}
	for _, tc := range cases {
		for pass := 0; pass < 2; pass++ {
			for _, url := range env.slotURLs("/" + tc.name) {
				wc := httptest.NewRecorder()
				tc.cached(wc, httptest.NewRequest("GET", url, nil))
				wl := httptest.NewRecorder()
				tc.locked(wl, httptest.NewRequest("GET", url, nil))
				if wc.Code != 200 || wl.Code != 200 {
					t.Fatalf("%s pass %d %s: status cached=%d locked=%d", tc.name, pass, url, wc.Code, wl.Code)
				}
				if !bytes.Equal(wc.Body.Bytes(), wl.Body.Bytes()) {
					t.Fatalf("%s pass %d %s: cached body differs from locked baseline\ncached: %s\nlocked: %s",
						tc.name, pass, url, wc.Body.String(), wl.Body.String())
				}
			}
		}
	}
}

// TestSnapshotMatchesLocked: every (spot, slot) cell of the published
// snapshot must agree with the mutex-guarded reference path.
func TestSnapshotMatchesLocked(t *testing.T) {
	env := newServeEnv(t, false)
	env.feedDay(t)
	snap := env.svc.Snapshot()
	res := env.srv.result()
	for i := range res.Spots {
		for j := 0; j < env.grid.Slots; j++ {
			sf, sl, sok := snap.Context(i, j)
			lf, ll, lok := env.svc.ContextLocked(i, j)
			if sok != lok || sl != ll || sf != lf {
				t.Fatalf("cell (%d,%d): snapshot (%v,%v,%v) != locked (%v,%v,%v)",
					i, j, sf, sl, sok, lf, ll, lok)
			}
		}
	}
}

// discardWriter is a minimal ResponseWriter so the benchmarks measure the
// handler, not httptest.NewRecorder's buffer management.
type discardWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *discardWriter) WriteHeader(code int)        { w.code = code }

// benchGet drives one handler with a rotating URL set; requests are
// prebuilt so the measurement is the handler, not request construction.
func benchGet(b *testing.B, h http.HandlerFunc, urls []string) {
	reqs := make([]*http.Request, len(urls))
	for i, u := range urls {
		reqs[i] = httptest.NewRequest("GET", u, nil)
	}
	w := &discardWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.code, w.n = 200, 0
		h(w, reqs[i%len(reqs)])
		if w.code != 200 || w.n == 0 {
			b.Fatalf("status %d, %d body bytes", w.code, w.n)
		}
	}
}

// The ServeSpots / ServeContext pairs measure the tentpole: the cached
// RCU read path against the locked per-request baseline, both racing the
// same live feeder that keeps closing slots and churning snapshot epochs.

func BenchmarkServeSpotsCached(b *testing.B) {
	env := newServeEnv(b, true)
	benchGet(b, env.live.handleSpots, env.slotURLs("/spots"))
}

func BenchmarkServeSpotsLocked(b *testing.B) {
	env := newServeEnv(b, true)
	benchGet(b, env.locked.handleSpots, env.slotURLs("/spots"))
}

func BenchmarkServeContextCached(b *testing.B) {
	env := newServeEnv(b, true)
	benchGet(b, env.live.handleContext, env.slotURLs("/context"))
}

func BenchmarkServeContextLocked(b *testing.B) {
	env := newServeEnv(b, true)
	benchGet(b, env.locked.handleContext, env.slotURLs("/context"))
}

// withForecast wires a seeded forecast learner onto the env's server so
// /recommend ranks ETA-aware and /forecast answers from real profiles.
func (e *serveEnv) withForecast(tb testing.TB) *forecastServer {
	tb.Helper()
	fc, err := newForecastLearner("", e.srv.result(), obs.NewRegistry())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { fc.Close() })
	if err := fc.ObserveResult(0, e.srv.result()); err != nil {
		tb.Fatal(err)
	}
	e.srv.fc = fc
	return &forecastServer{fc: fc}
}

// BenchmarkServeRecommend measures the ETA-aware ranking end to end —
// parse, one view + one table load, per-spot forecast at arrival, sort,
// encode — racing the live feeder like the other serve benchmarks.
func BenchmarkServeRecommend(b *testing.B) {
	env := newServeEnv(b, true)
	env.withForecast(b)
	benchGet(b, env.srv.handleRecommend, []string{
		"/recommend?for=driver&lat=1.30&lon=103.83",
		"/recommend?for=commuter&lat=1.29&lon=103.82",
		"/recommend?for=driver&lat=1.28&lon=103.85",
	})
}

// BenchmarkServeForecast measures one profile evaluation through the
// HTTP handler (parse + table load + evaluate + encode).
func BenchmarkServeForecast(b *testing.B) {
	env := newServeEnv(b, true)
	fs := env.withForecast(b)
	nspots := len(env.srv.result().Spots)
	urls := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		at := env.grid.Start.Add(time.Duration(i*3) * time.Hour)
		urls = append(urls, fmt.Sprintf("/forecast?spot=%d&at=%s", i%nspots, at.UTC().Format(time.RFC3339)))
	}
	benchGet(b, fs.handleForecast, urls)
}

// BenchmarkServeEstimate* compare the version-cached /estimate body with
// re-merging every shard's provisional accumulators per request.

func BenchmarkServeEstimateCached(b *testing.B) {
	env := newServeEnv(b, true)
	benchGet(b, env.live.handleEstimate, []string{"/estimate"})
}

func BenchmarkServeEstimateDirect(b *testing.B) {
	env := newServeEnv(b, true)
	direct := func(w http.ResponseWriter, _ *http.Request) {
		est := env.svc.Estimate()
		out := estimateJSON{
			Version: est.Version, AsOf: est.AsOf, Slot: est.Slot,
			Contexts: make([]string, len(est.Labels)),
			Live:     est.OK,
		}
		for i, lb := range est.Labels {
			out.Contexts[i] = lb.String()
		}
		writeJSON(w, encodeJSON(out))
	}
	benchGet(b, direct, []string{"/estimate"})
}
