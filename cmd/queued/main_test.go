package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/obs"
)

// testServer builds a server with a hand-made result (no simulation).
func testServer() *server {
	grid := core.DaySlots(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
	labels := make([]core.QueueType, 48)
	for i := range labels {
		labels[i] = core.C3
	}
	city := citymap.Generate(1, 0.1)
	res := &core.Result{
		Config: core.EngineConfig{Grid: grid},
		Spots: []core.SpotAnalysis{{
			Spot: core.QueueSpot{
				Pos:         geo.Point{Lat: 1.3, Lon: 103.83},
				Zone:        citymap.Central,
				PickupCount: 120,
			},
			Labels: labels,
		}},
	}
	srv := newServer(obs.NewRegistry())
	srv.view.Store(newBatchView(city, res))
	return srv
}

func TestHandleSpots(t *testing.T) {
	srv := testServer()
	req := httptest.NewRequest("GET", "/spots", nil)
	w := httptest.NewRecorder()
	srv.handleSpots(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var spots []spotJSON
	if err := json.Unmarshal(w.Body.Bytes(), &spots); err != nil {
		t.Fatal(err)
	}
	if len(spots) != 1 || spots[0].Context != "C3" || spots[0].Zone != "Central" {
		t.Fatalf("spots = %+v", spots)
	}
}

func TestHandleSpotsBadTime(t *testing.T) {
	srv := testServer()
	req := httptest.NewRequest("GET", "/spots?at=yesterday", nil)
	w := httptest.NewRecorder()
	srv.handleSpots(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
}

func TestHandleSpotsNotReady(t *testing.T) {
	srv := newServer(obs.NewRegistry())
	w := httptest.NewRecorder()
	srv.handleSpots(w, httptest.NewRequest("GET", "/spots", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
}

func TestHandleRecommend(t *testing.T) {
	srv := testServer()
	// The only spot is C3 all day: great for a commuter, useless for a
	// driver.
	req := httptest.NewRequest("GET", "/recommend?for=commuter&lat=1.30&lon=103.82", nil)
	w := httptest.NewRecorder()
	srv.handleRecommend(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var recs []struct {
		Context  string  `json:"context"`
		Distance float64 `json:"distance_m"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Context != "C3" {
		t.Fatalf("commuter recs = %+v", recs)
	}
	if recs[0].Distance < 500 || recs[0].Distance > 2500 {
		t.Fatalf("distance %f implausible", recs[0].Distance)
	}

	w = httptest.NewRecorder()
	srv.handleRecommend(w, httptest.NewRequest("GET", "/recommend?for=driver&lat=1.30&lon=103.82", nil))
	var driverRecs []json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &driverRecs); err != nil {
		t.Fatal(err)
	}
	if len(driverRecs) != 0 {
		t.Fatalf("driver got %d recs for a C3-only city", len(driverRecs))
	}
}

func TestHandleIndex(t *testing.T) {
	w := httptest.NewRecorder()
	handleIndex(w, httptest.NewRequest("GET", "/", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{"<canvas", "/spots", "C1", "Unidentified"} {
		if !strings.Contains(body, want) {
			t.Errorf("frontend page missing %q", want)
		}
	}
	// Any other path is a 404, not the page.
	w = httptest.NewRecorder()
	handleIndex(w, httptest.NewRequest("GET", "/nope", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown path -> %d, want 404", w.Code)
	}
}

func TestHandleRecommendValidation(t *testing.T) {
	srv := testServer()
	for _, url := range []string{
		"/recommend",                                     // missing audience
		"/recommend?for=alien&lat=1&lon=103",             // bad audience
		"/recommend?for=driver&lat=x&lon=103",            // bad lat
		"/recommend?for=driver&lat=1.3&lon=x",            // bad lon
		"/recommend?for=driver&lat=1.3&lon=103.8&at=bad", // bad time
		// Regression: fmt.Sscan used to accept non-finite coordinates;
		// NaN > MaxDistance is false, so the radius filter passed every
		// spot and the NaN scores broke the sort comparator.
		"/recommend?for=driver&lat=NaN&lon=103.8",
		"/recommend?for=driver&lat=1.3&lon=NaN",
		"/recommend?for=driver&lat=%2BInf&lon=103.8",
		"/recommend?for=driver&lat=1.3&lon=-Inf",
		// Out-of-range degrees are rejected too.
		"/recommend?for=driver&lat=91&lon=103.8",
		"/recommend?for=driver&lat=1.3&lon=-200",
	} {
		w := httptest.NewRecorder()
		srv.handleRecommend(w, httptest.NewRequest("GET", url, nil))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", url, w.Code)
		}
	}
}
