package main

import (
	"testing"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/history"
)

// rangeURL builds a /heatmap range query against the fixture server.
func rangeURL(base string, from, to time.Time) string {
	return base + "/heatmap?from=" + from.Format(time.RFC3339) + "&to=" + to.Format(time.RFC3339)
}

// TestHeatmapRangeEndpoint checks the range form of /heatmap serves
// exactly what the store's RangeSummary computes, with the label axis
// named the way /transitions names its matrix.
func TestHeatmapRangeEndpoint(t *testing.T) {
	ts, hist, res := historyFixture(t, true)
	grid := hist.Grid()
	from := grid.Start
	to := grid.Start.Add(24 * time.Hour)

	var out struct {
		history.RangeSummary
		LabelNames []string `json:"label_names"`
	}
	if code := getJSON(t, rangeURL(ts.URL, from, to), &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	want, ok := hist.RangeSummary(from, to)
	if !ok {
		t.Fatal("store rejected the fixture's own day range")
	}
	if out.Stored == 0 || out.Stored != want.Stored || out.Cells != want.Cells ||
		out.Slots != want.Slots || out.Days != want.Days || out.Empty != want.Empty ||
		out.Labels != want.Labels {
		t.Fatalf("range body %+v, store says %+v", out.RangeSummary, want)
	}
	// JSON float64 round-trips exactly, so the sums must match bit for bit.
	if out.WaitSum != want.WaitSum || out.ArrSum != want.ArrSum ||
		out.QLenSum != want.QLenSum || out.DepSum != want.DepSum {
		t.Fatalf("range sums %+v, store says %+v", out.RangeSummary, want)
	}
	if out.Cells != grid.Slots*len(res.Spots) {
		t.Fatalf("full-day range covers %d cells, want %d", out.Cells, grid.Slots*len(res.Spots))
	}
	if len(out.LabelNames) != len(out.Labels) || out.LabelNames[0] != core.QueueType(0).String() {
		t.Fatalf("label names %v", out.LabelNames)
	}

	// from-only: to defaults to the end of the newest recorded slot, same
	// answer as naming it explicitly.
	var def struct{ history.RangeSummary }
	if code := getJSON(t, ts.URL+"/heatmap?from="+from.Format(time.RFC3339), &def); code != 200 {
		t.Fatalf("from-only status %d", code)
	}
	if def.Stored != want.Stored {
		t.Fatalf("from-only stored %d, want %d", def.Stored, want.Stored)
	}

	// Client mistakes stay client errors.
	var ignore any
	if code := getJSON(t, rangeURL(ts.URL, to, from), &ignore); code != 400 {
		t.Fatalf("inverted range: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/heatmap?from=yesterday", &ignore); code != 400 {
		t.Fatalf("unparseable from: status %d, want 400", code)
	}
	// A range entirely before the grid can cover nothing: 400, not a
	// zero-filled 200 a dashboard would plot as an empty city.
	if code := getJSON(t, rangeURL(ts.URL, grid.Start.Add(-48*time.Hour), grid.Start), &ignore); code != 400 {
		t.Fatalf("pre-grid range: status %d, want 400", code)
	}
}

// TestHeatmapRangeEmptyStore pins the empty-store behavior: a valid range
// answers 200 with a zeroed summary (nothing recorded is a boring answer,
// not an error), while the from-only default collapses to an empty range
// and stays a 400.
func TestHeatmapRangeEmptyStore(t *testing.T) {
	ts, hist, _ := historyFixture(t, false)
	grid := hist.Grid()

	var out struct{ history.RangeSummary }
	if code := getJSON(t, rangeURL(ts.URL, grid.Start, grid.Start.Add(24*time.Hour)), &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Days != 0 || out.Stored != 0 || out.Cells != 0 {
		t.Fatalf("empty store served %+v", out.RangeSummary)
	}
	var ignore any
	if code := getJSON(t, ts.URL+"/heatmap?from="+grid.Start.Format(time.RFC3339), &ignore); code != 400 {
		t.Fatalf("from-only on empty store: status %d, want 400", code)
	}
}
