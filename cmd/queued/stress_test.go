package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"taxiqueue/internal/obs"
)

// TestServeRaceStress hammers every read endpoint while a writer feeds the
// live service and closes slots, asserting the RCU contract end to end:
// every response parses, epochs and the finality watermark only move
// forward, and two reads that observe the same snapshot pointer get
// byte-identical bodies (no torn or half-published state). Run under
// -race via scripts/check.sh, this is the memory-ordering proof for the
// lock-free read path.
func TestServeRaceStress(t *testing.T) {
	env := newServeEnv(t, false)
	fc, err := newForecastLearner("", env.srv.result(), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if err := fc.ObserveResult(0, env.srv.result()); err != nil {
		t.Fatal(err)
	}
	env.srv.fc = fc
	mux := http.NewServeMux()
	registerLive(mux, env.live)
	registerForecast(mux, &forecastServer{fc: fc})
	mux.HandleFunc("/recommend", env.srv.handleRecommend)
	registerOps(mux, env.srv, env.svc, env.svc.Registry(), false)

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Profile writer: keep folding fresh days into the learner while the
	// forecast/recommend readers race it — the RCU table republish must be
	// safe against concurrent lock-free loads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for day := 1; ; day++ {
			select {
			case <-done:
				return
			default:
			}
			if err := fc.ObserveResult(day, env.srv.result()); err != nil {
				t.Errorf("observe day %d: %v", day, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Writer: replay the day in batches, nudging the watermark forward with
	// periodic partial flushes, then a full flush at the end of the feed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < len(env.day); i += 250 {
			n := len(env.day) - i
			if n > 250 {
				n = 250
			}
			if _, err := env.svc.Accept(env.day[i : i+n]); err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			if i%2000 == 0 {
				if err := env.svc.FlushUntil(env.day[i].Time); err != nil {
					t.Errorf("flush until: %v", err)
					return
				}
			}
		}
		if err := env.svc.Flush(); err != nil {
			t.Errorf("flush: %v", err)
		}
	}()

	get := func(url string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		return w
	}

	// Readers: sweep every endpoint until the writer finishes, checking
	// same-snapshot reads for byte identity as they go.
	spotURLs := env.slotURLs("/spots")
	ctxURLs := env.slotURLs("/context")
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				su, cu := spotURLs[(i*7+r)%len(spotURLs)], ctxURLs[(i*5+r)%len(ctxURLs)]
				snap := env.svc.Snapshot()
				w1, w2 := get(su), get(su)
				if w1.Code != 200 || w2.Code != 200 {
					t.Errorf("spots status %d/%d", w1.Code, w2.Code)
					return
				}
				if env.svc.Snapshot() == snap && !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
					t.Errorf("same snapshot, different /spots bodies:\n%s\n%s", w1.Body.String(), w2.Body.String())
					return
				}
				var spots []spotJSON
				if err := json.Unmarshal(w1.Body.Bytes(), &spots); err != nil {
					t.Errorf("spots: %v", err)
					return
				}
				if len(spots) != len(env.srv.result().Spots) {
					t.Errorf("spots len %d", len(spots))
					return
				}
				if w := get(cu); w.Code != 200 {
					t.Errorf("context status %d", w.Code)
					return
				}
				if w := get("/estimate"); w.Code != 200 {
					t.Errorf("estimate status %d", w.Code)
					return
				}
				// The forecast + ETA-aware recommend read path rides the
				// same lock-free contract: one table load per request,
				// racing the profile writer's republishes.
				spot := (i + r) % len(env.srv.result().Spots)
				at := env.grid.Start.Add(time.Duration(i%96) * 30 * time.Minute)
				fu := fmt.Sprintf("/forecast?spot=%d&at=%s", spot, at.UTC().Format(time.RFC3339))
				if w := get(fu); w.Code != 200 {
					t.Errorf("forecast status %d: %s", w.Code, w.Body.String())
					return
				}
				var fj forecastJSON
				if err := json.Unmarshal(get(fu).Body.Bytes(), &fj); err != nil {
					t.Errorf("forecast: %v", err)
					return
				}
				if w := get("/recommend?for=commuter&lat=1.30&lon=103.83"); w.Code != 200 {
					t.Errorf("recommend status %d: %s", w.Code, w.Body.String())
					return
				}
				if i%16 == r {
					if w := get("/healthz"); w.Code != 200 {
						t.Errorf("healthz status %d", w.Code)
						return
					}
				}
			}
		}(r)
	}

	// Monitor: the published snapshot must only ever move forward.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastEpoch uint64
		lastFinal := -1
		for {
			snap := env.svc.Snapshot()
			if snap.Epoch < lastEpoch || snap.FinalBelow < lastFinal {
				t.Errorf("snapshot went backwards: epoch %d -> %d, final %d -> %d",
					lastEpoch, snap.Epoch, lastFinal, snap.FinalBelow)
				return
			}
			lastEpoch, lastFinal = snap.Epoch, snap.FinalBelow
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	wg.Wait()

	// After the final flush the whole grid is final.
	if got := env.svc.Snapshot().FinalBelow; got != env.grid.Slots*benchDays {
		t.Fatalf("final watermark %d, want %d", got, env.grid.Slots*benchDays)
	}
}
