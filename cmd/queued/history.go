package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/history"
	"taxiqueue/internal/obs"
)

// historyServer serves the analytics endpoints off the history store's
// lock-free published index:
//
//	GET /history?spot=N[&from=RFC3339][&to=RFC3339]   decoded per-slot series
//	GET /heatmap[?t=RFC3339]                          tiled city intensity at one slot
//	GET /heatmap?from=RFC3339&to=RFC3339              city-wide range aggregate, served
//	                                                  from block summaries (no decode)
//	GET /transitions?spot=N                           day-over-day label transition matrix
//
// Every request costs one atomic index load plus the scan itself; there
// is no response cache here — the parameter space (arbitrary ranges and
// instants) doesn't bucket the way the point-lookup endpoints do, and the
// block summaries already keep a scan proportional to the data it
// returns.
type historyServer struct {
	hist *history.Store
}

// newHistoryStore opens (or recovers) the history store for the analyzed
// day's grid and spot set.
func newHistoryStore(dir string, res *core.Result, reg *obs.Registry) (*history.Store, error) {
	spots := make([]core.QueueSpot, len(res.Spots))
	ths := make([]core.Thresholds, len(res.Spots))
	for i := range res.Spots {
		spots[i] = res.Spots[i].Spot
		ths[i] = res.Spots[i].Thresholds
	}
	return history.Open(history.Config{
		Grid:       res.Config.Grid,
		Spots:      spots,
		Thresholds: ths,
		Amplify:    res.Config.Amplify,
		Dir:        dir,
		Metrics:    reg,
	})
}

// historyPointJSON is one slot of the /history series.
type historyPointJSON struct {
	T       time.Time `json:"t"`
	Day     int       `json:"day"`
	Slot    int       `json:"slot"`
	Context string    `json:"context"`
	Empty   bool      `json:"empty,omitempty"`
	TWaitS  float64   `json:"t_wait_s"`
	NArr    float64   `json:"n_arr"`
	QLen    float64   `json:"q_len"`
	TDepS   float64   `json:"t_dep_s"`
	NDep    float64   `json:"n_dep"`
}

// spotParam parses a required non-negative spot index. A store built from
// a batch run that detected no spots at all answers 503 for every index —
// there is nothing to query yet, and the old "need spot=0..-1" hint was
// nonsense.
func (h *historyServer) spotParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	if h.hist.Spots() == 0 {
		http.Error(w, "no spots detected", http.StatusServiceUnavailable)
		return 0, false
	}
	spot, err := strconv.Atoi(r.URL.Query().Get("spot"))
	if err != nil || spot < 0 || spot >= h.hist.Spots() {
		http.Error(w, fmt.Sprintf("need spot=0..%d", h.hist.Spots()-1), http.StatusBadRequest)
		return 0, false
	}
	return spot, true
}

// rangeParams parses the optional from/to pair shared by /history and the
// range form of /heatmap: from defaults to the grid start, to defaults to
// just past the newest final slot (or from, when nothing is recorded yet).
// A parse failure or an inverted range answers the request itself and
// returns ok=false — answering an inverted range with an empty 200 hid
// typos (swapped from/to, wrong day) from callers.
func (h *historyServer) rangeParams(w http.ResponseWriter, r *http.Request) (from, to time.Time, ok bool) {
	q := r.URL.Query()
	grid := h.hist.Grid()
	from = grid.Start
	if s := q.Get("from"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			http.Error(w, "bad 'from'", http.StatusBadRequest)
			return from, to, false
		}
		from = t
	}
	if s := q.Get("to"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			http.Error(w, "bad 'to'", http.StatusBadRequest)
			return from, to, false
		}
		to = t
	} else if day, slot, ok := h.hist.Latest(); ok {
		to = h.hist.TimeOf(day, slot).Add(grid.SlotLen)
	} else {
		to = from // nothing recorded: empty range
	}
	if to.Before(from) {
		http.Error(w, "'from' after 'to'", http.StatusBadRequest)
		return from, to, false
	}
	return from, to, true
}

// handleHistory decodes one spot's series. Without from/to the range
// defaults to everything recorded (grid start through the newest final
// slot).
func (h *historyServer) handleHistory(w http.ResponseWriter, r *http.Request) {
	spot, ok := h.spotParam(w, r)
	if !ok {
		return
	}
	from, to, ok := h.rangeParams(w, r)
	if !ok {
		return
	}

	pts := h.hist.Series(spot, from, to)
	out := struct {
		Spot   int                `json:"spot"`
		From   time.Time          `json:"from"`
		To     time.Time          `json:"to"`
		Points []historyPointJSON `json:"points"`
	}{Spot: spot, From: from, To: to, Points: make([]historyPointJSON, len(pts))}
	for i, p := range pts {
		out.Points[i] = historyPointJSON{
			T: p.Time, Day: p.Day, Slot: p.Slot,
			Context: p.Label.String(), Empty: p.Empty,
			TWaitS: p.Feats.TWait.Seconds(), NArr: p.Feats.NArr, QLen: p.Feats.QLen,
			TDepS: p.Feats.TDep.Seconds(), NDep: p.Feats.NDep,
		}
	}
	writeHistoryJSON(w, out)
}

// handleHeatmap serves the tiled intensity grid for the slot containing
// t (default: the newest final slot). With from/to it instead serves the
// city-wide aggregate over the range — the summary fast path: blocks the
// range fully covers fold straight from their stored summaries, nothing
// decodes.
func (h *historyServer) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	if q := r.URL.Query(); q.Get("from") != "" || q.Get("to") != "" {
		h.handleHeatmapRange(w, r)
		return
	}
	at := time.Time{}
	if s := r.URL.Query().Get("t"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			http.Error(w, "bad 't'", http.StatusBadRequest)
			return
		}
		at = t
	} else if day, slot, ok := h.hist.Latest(); ok {
		at = h.hist.TimeOf(day, slot)
	} else {
		http.Error(w, "no history yet", http.StatusServiceUnavailable)
		return
	}
	hm, ok := h.hist.Heatmap(at)
	if !ok {
		// A t outside the recorded grid (or at a slot no final data has
		// reached) is a legitimate question with a boring answer: serve an
		// empty-but-valid heatmap — same schema, zero tiles — instead of an
		// error a dashboard would have to special-case.
		hm = h.hist.EmptyHeatmap(at)
	}
	writeHistoryJSON(w, hm)
}

// handleHeatmapRange serves /heatmap?from=..&to=..: the summary-served
// aggregate over the range, with the label distribution keyed by name the
// same way /transitions reports its matrix axes. A range entirely before
// the grid (or empty after clamping) is a client mistake, not a boring
// answer: 400.
func (h *historyServer) handleHeatmapRange(w http.ResponseWriter, r *http.Request) {
	from, to, ok := h.rangeParams(w, r)
	if !ok {
		return
	}
	sum, ok := h.hist.RangeSummary(from, to)
	if !ok {
		http.Error(w, "empty range", http.StatusBadRequest)
		return
	}
	labels := make([]string, len(sum.Labels))
	for i := range labels {
		labels[i] = core.QueueType(i).String()
	}
	writeHistoryJSON(w, struct {
		history.RangeSummary
		LabelNames []string `json:"label_names"`
	}{sum, labels})
}

// handleTransitions serves one spot's day-over-day label transition
// matrix.
func (h *historyServer) handleTransitions(w http.ResponseWriter, r *http.Request) {
	spot, ok := h.spotParam(w, r)
	if !ok {
		return
	}
	m := h.hist.Transitions(spot)
	labels := make([]string, len(m.Counts))
	for i := range labels {
		labels[i] = core.QueueType(i).String()
	}
	writeHistoryJSON(w, struct {
		history.TransitionMatrix
		LabelNames []string `json:"label_names"`
	}{m, labels})
}

func writeHistoryJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

// registerHistory mounts the analytics endpoints.
func registerHistory(mux *http.ServeMux, h *historyServer) {
	mux.HandleFunc("/history", h.handleHistory)
	mux.HandleFunc("/heatmap", h.handleHeatmap)
	mux.HandleFunc("/transitions", h.handleTransitions)
}
