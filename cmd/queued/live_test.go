package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/sim"
)

// liveFixture runs one simulated day through the batch engine and stands up
// the full live HTTP surface (mux + ingest service) around it, exactly the
// way `queued -live` does.
func liveFixture(t *testing.T) (*httptest.Server, *server, *ingest.Service, sim.Output, []func()) {
	return liveFixtureCfg(t, nil)
}

// liveFixtureCfg is liveFixture with a hook to adjust the ingest service
// configuration (e.g. enable live spot discovery) before it starts.
func liveFixtureCfg(t *testing.T, mod func(*ingest.Config)) (*httptest.Server, *server, *ingest.Service, sim.Output, []func()) {
	t.Helper()
	out := sim.Run(sim.Config{Seed: 777, City: citymap.Generate(777, 0.1), InjectFaults: true})
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 25}
	cfg.Grid = core.DaySlots(out.Config.Start)
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	res, err := engine.Analyze(cleaned)
	if err != nil {
		t.Fatal(err)
	}
	icfg := ingest.Config{
		Stream: liveStreamConfig(res),
		Clean:  clean.Config{ValidFrame: citymap.Island},
		Shards: 4,
	}
	if mod != nil {
		mod(&icfg)
	}
	svc, err := ingest.NewService(icfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(svc.Registry())
	srv.view.Store(newBatchView(out.Config.City, res))
	mux := http.NewServeMux()
	registerLive(mux, newLiveServer(srv, svc, svc.Registry()))
	registerOps(mux, srv, svc, svc.Registry(), true)
	ts := httptest.NewServer(mux)
	return ts, srv, svc, out, []func(){ts.Close, func() { _ = svc.Close() }}
}

// TestLiveEndToEnd drives the whole live path over HTTP: POST the day's
// cleaned records to /ingest, flush, and check that /spots agrees with the
// batch labels (same ≤10% tolerance the stream engine is held to) with
// nothing rejected or dropped along the way.
func TestLiveEndToEnd(t *testing.T) {
	ts, srv, _, out, cleanup := liveFixture(t)
	for _, f := range cleanup {
		defer f()
	}
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})

	// Feed in mdtgen-sized batches, alternating both wire encodings.
	for i := 0; len(cleaned) > 0; i++ {
		n := 500
		if n > len(cleaned) {
			n = len(cleaned)
		}
		batch := cleaned[:n]
		cleaned = cleaned[n:]
		var body bytes.Buffer
		ct := ingest.ContentTypeJSONLines
		if i%2 == 1 {
			ct = ingest.ContentTypeBinary
			body.Write(ingest.EncodeBinary(nil, batch))
		} else if err := ingest.EncodeJSONLines(&body, batch); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/ingest", ct, &body)
		if err != nil {
			t.Fatal(err)
		}
		var ir struct {
			Accepted int `json:"accepted"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || ir.Accepted != n {
			t.Fatalf("batch %d: status %d accepted %d of %d", i, resp.StatusCode, ir.Accepted, n)
		}
	}

	// Flush: end of feed, every slot becomes final.
	resp, err := http.Post(ts.URL+"/ingest/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("flush status %d", resp.StatusCode)
	}

	// A clean feed must sail through untouched.
	resp, err = http.Get(ts.URL + "/ingest/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ingest.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Rejected != 0 || st.Dropped != 0 || st.BadRecords != 0 {
		t.Fatalf("clean feed: rejected=%d dropped=%d bad=%d", st.Rejected, st.Dropped, st.BadRecords)
	}

	// /spots at every slot midpoint must track the batch labels.
	checked, mismatches := 0, 0
	grid := srv.view.Load().grid
	for j := 0; j < grid.Slots; j++ {
		at := grid.Start.Add(time.Duration(j)*grid.SlotLen + grid.SlotLen/2)
		resp, err := http.Get(ts.URL + "/spots?at=" + at.UTC().Format(time.RFC3339))
		if err != nil {
			t.Fatal(err)
		}
		var spots []spotJSON
		if err := json.NewDecoder(resp.Body).Decode(&spots); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(spots) != len(srv.result().Spots) {
			t.Fatalf("slot %d: %d spots, want %d", j, len(spots), len(srv.result().Spots))
		}
		for i := range spots {
			batchLabel := srv.result().Spots[i].Labels[j].String()
			if batchLabel == "Unidentified" && spots[i].Context == "Unidentified" {
				continue
			}
			checked++
			if spots[i].Context != batchLabel {
				mismatches++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d active (spot, slot) pairs compared", checked)
	}
	if rate := float64(mismatches) / float64(checked); rate > 0.10 {
		t.Fatalf("live/batch mismatch rate %.3f over %d pairs", rate, checked)
	}
}

// TestOpsEndpoints drives the operational surface end to end: an /ingest
// POST must advance the counters a /metrics scrape reports, /ingest/stats
// must agree with the scrape, /healthz must flip from ok to unready when
// the ingest service closes, and the opt-in pprof index must be mounted.
func TestOpsEndpoints(t *testing.T) {
	ts, _, svc, out, cleanup := liveFixture(t)
	for _, f := range cleanup {
		defer f()
	}
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz before close: %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("pprof index: status %d", code)
	}

	var body bytes.Buffer
	if err := ingest.EncodeJSONLines(&body, cleaned[:500]); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ingest", ingest.ContentTypeJSONLines, &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if resp, err = http.Post(ts.URL+"/ingest/flush", "", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	code, scrape := get("/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	resp, err = http.Get(ts.URL + "/ingest/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ingest.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	// Every per-shard accepted counter in the scrape must match the JSON.
	for _, sh := range st.Shards {
		want := fmt.Sprintf("ingest_accepted_total{shard=%q} %d", fmt.Sprint(sh.Shard), sh.Accepted)
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	for _, want := range []string{
		`ingest_http_requests_total{code="200"}`,
		"ingest_queue_wait_seconds_count",
		"ingest_aggregator_cells",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, `"status":"unready"`) {
		t.Fatalf("healthz after close: %d %q", code, body)
	}
}

// TestLiveSpotsBeforeFeed: with nothing ingested yet every context serves
// as Unidentified rather than erroring.
func TestLiveSpotsBeforeFeed(t *testing.T) {
	ts, srv, _, _, cleanup := liveFixture(t)
	for _, f := range cleanup {
		defer f()
	}
	resp, err := http.Get(ts.URL + "/spots")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spots []spotJSON
	if err := json.NewDecoder(resp.Body).Decode(&spots); err != nil {
		t.Fatal(err)
	}
	if len(spots) != len(srv.result().Spots) {
		t.Fatalf("%d spots, want %d", len(spots), len(srv.result().Spots))
	}
	for _, sp := range spots {
		if sp.Context != "Unidentified" {
			t.Fatalf("context %q before any feed", sp.Context)
		}
	}
}
