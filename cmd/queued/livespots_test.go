package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/mdt"
)

// popupSite finds a valid-frame location at least 200 m from every batch
// spot — a queue the nightly run knows nothing about.
func popupSite(t *testing.T, spots []core.SpotAnalysis) geo.Point {
	t.Helper()
	base := spots[0].Spot.Pos
	for east := 250.0; east < 5000; east += 97 {
		for north := -400.0; north <= 400; north += 83 {
			p := geo.Offset(base, north, east)
			if !citymap.Island.Contains(p) {
				continue
			}
			clear := true
			for i := range spots {
				if geo.Equirect(spots[i].Spot.Pos, p) < 200 {
					clear = false
					break
				}
			}
			if clear {
				return p
			}
		}
	}
	t.Fatal("no popup site clear of every batch spot")
	return geo.Point{}
}

// popupRecords fabricates n one-pickup taxi trajectories scattered a few
// meters around site, one per minute starting at t0.
func popupRecords(site geo.Point, n int, t0 time.Time) []mdt.Record {
	rng := rand.New(rand.NewSource(5))
	var recs []mdt.Record
	for i := 0; i < n; i++ {
		base := t0.Add(time.Duration(i) * time.Minute)
		id := fmt.Sprintf("POPUP%03d", i)
		pos := geo.Offset(site, rng.NormFloat64()*4, rng.NormFloat64()*4)
		recs = append(recs,
			mdt.Record{Time: base, TaxiID: id, Pos: pos, Speed: 30, State: mdt.Free},
			mdt.Record{Time: base.Add(20 * time.Second), TaxiID: id, Pos: pos, Speed: 3, State: mdt.Free},
			mdt.Record{Time: base.Add(40 * time.Second), TaxiID: id, Pos: pos, Speed: 2, State: mdt.POB},
			mdt.Record{Time: base.Add(60 * time.Second), TaxiID: id, Pos: pos, Speed: 35, State: mdt.POB},
		)
	}
	return recs
}

// TestSpotsLiveSurfacesPopup is the serving-side acceptance test: a pop-up
// queue fed mid-day must appear on /spots?live=1 as a confirmed live spot
// (with its lifecycle state on the wire), while the same request without
// live=1 keeps serving exactly the batch spot list.
func TestSpotsLiveSurfacesPopup(t *testing.T) {
	ts, srv, svc, _, cleanup := liveFixtureCfg(t, func(cfg *ingest.Config) {
		cfg.LiveSpots = ingest.LiveSpotsConfig{
			Enabled: true,
			Detector: core.LiveDetectorConfig{
				Cluster: cluster.Params{EpsMeters: 15, MinPoints: 10},
				Window:  3 * time.Hour,
				ByZone:  true,
			},
		}
	})
	for _, f := range cleanup {
		defer f()
	}

	site := popupSite(t, srv.result().Spots)
	noon := srv.view.Load().grid.Start.Add(12 * time.Hour)

	var body bytes.Buffer
	if err := ingest.EncodeJSONLines(&body, popupRecords(site, 30, noon)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/ingest", ingest.ContentTypeJSONLines, &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	// A timer flush (not end-of-feed): the feed clock reaches 12:45, the
	// discovery window still holds every popup pickup.
	if err := svc.FlushUntil(noon.Add(45 * time.Minute)); err != nil {
		t.Fatal(err)
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Without live=1 the body is the batch list, untouched by discovery:
	// same length, and the live-only fields never appear on the wire.
	plain := get("/spots")
	var batchSpots []spotJSON
	if err := json.Unmarshal(plain, &batchSpots); err != nil {
		t.Fatal(err)
	}
	if len(batchSpots) != len(srv.result().Spots) {
		t.Fatalf("/spots has %d entries, batch %d", len(batchSpots), len(srv.result().Spots))
	}
	if s := string(plain); strings.Contains(s, `"live"`) || strings.Contains(s, `"state"`) {
		t.Fatalf("/spots without live=1 leaks live-discovery fields: %s", s)
	}

	live := get("/spots?live=1")
	var liveSpots []spotJSON
	if err := json.Unmarshal(live, &liveSpots); err != nil {
		t.Fatal(err)
	}
	if len(liveSpots) <= len(batchSpots) {
		t.Fatalf("/spots?live=1 has %d entries, no more than the %d batch spots", len(liveSpots), len(batchSpots))
	}
	// The batch prefix is identical to the plain body's entries.
	for i := range batchSpots {
		if liveSpots[i] != batchSpots[i] {
			t.Fatalf("live=1 entry %d differs from batch entry: %+v vs %+v", i, liveSpots[i], batchSpots[i])
		}
	}
	var popup *spotJSON
	for i := len(batchSpots); i < len(liveSpots); i++ {
		sp := &liveSpots[i]
		if !sp.Live || sp.State == "" {
			t.Fatalf("discovered entry missing live/state markers: %+v", sp)
		}
		if geo.Equirect(geo.Point{Lat: sp.Lat, Lon: sp.Lon}, site) < 60 {
			popup = sp
		}
	}
	if popup == nil {
		t.Fatalf("popup site absent from /spots?live=1: %s", live)
	}
	if popup.State != "confirmed" {
		t.Fatalf("popup spot state %q, want confirmed", popup.State)
	}
	if popup.Pickups < 20 {
		t.Fatalf("popup window support %d, want ≥ 20", popup.Pickups)
	}

	// The lifecycle counters reached the process scrape.
	scrape := string(get("/metrics"))
	for _, series := range []string{"spot_live_emerging_total", "spot_live_confirmed_total", "spot_live_tracked"} {
		if !strings.Contains(scrape, series) {
			t.Fatalf("scrape missing %s", series)
		}
	}
}

// TestSpotsLiveWithoutDiscovery: live=1 against a service without
// discovery enabled degrades to exactly the batch body — no error, no
// phantom entries.
func TestSpotsLiveWithoutDiscovery(t *testing.T) {
	ts, _, _, _, cleanup := liveFixture(t)
	for _, f := range cleanup {
		defer f()
	}
	for _, path := range []string{"/spots", "/spots?live=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if strings.Contains(string(b), `"live"`) {
			t.Fatalf("%s: live entries without discovery enabled", path)
		}
	}
}
