package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/store"
)

func rec(day, hour int, id string) mdt.Record {
	return mdt.Record{
		Time:   time.Date(2026, 1, 5+day, hour, 0, 0, 0, time.UTC),
		TaxiID: id, Pos: geo.Point{Lat: 1.3, Lon: 103.8}, Speed: 10, State: mdt.Free,
	}
}

func TestSplitByDay(t *testing.T) {
	recs := []mdt.Record{
		rec(0, 8, "A"), rec(0, 23, "B"),
		rec(1, 0, "A"), rec(1, 12, "B"),
		rec(2, 1, "A"),
	}
	days := splitByDay(recs)
	if len(days) != 3 {
		t.Fatalf("split into %d days, want 3", len(days))
	}
	if len(days[0]) != 2 || len(days[1]) != 2 || len(days[2]) != 1 {
		t.Fatalf("day sizes %d/%d/%d", len(days[0]), len(days[1]), len(days[2]))
	}
	if got := splitByDay(nil); len(got) != 0 {
		t.Fatal("empty input split into days")
	}
}

func TestReadRecordsTextAndStore(t *testing.T) {
	dir := t.TempDir()
	recs := []mdt.Record{rec(0, 8, "A"), rec(0, 9, "A"), rec(0, 10, "B")}

	textPath := filepath.Join(dir, "day.log")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mdt.WriteText(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := readRecords(textPath, "text")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("text read %d records", len(got))
	}

	storePath := filepath.Join(dir, "day.tqs")
	st := store.New()
	if err := st.AppendAll(recs); err != nil {
		t.Fatal(err)
	}
	f, err = os.Create(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = readRecords(storePath, "store")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("store read %d records", len(got))
	}

	if _, err := readRecords(textPath, "parquet"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := readRecords(filepath.Join(dir, "missing"), "text"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteGeoJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spots.geojson")
	res := &core.Result{
		Config: core.EngineConfig{Grid: core.DaySlots(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))},
		Spots: []core.SpotAnalysis{{
			Spot:   core.QueueSpot{Pos: geo.Point{Lat: 1.3044, Lon: 103.8335}, PickupCount: 42},
			Labels: []core.QueueType{core.C1, core.C2},
		}},
	}
	if err := writeGeoJSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Type     string `json:"type"`
		Features []struct {
			Geometry struct {
				Coordinates [2]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Type != "FeatureCollection" || len(doc.Features) != 1 {
		t.Fatalf("document shape wrong: %+v", doc)
	}
	ft := doc.Features[0]
	if ft.Geometry.Coordinates[0] != 103.8335 || ft.Geometry.Coordinates[1] != 1.3044 {
		t.Fatalf("coordinates not [lon, lat]: %v", ft.Geometry.Coordinates)
	}
	if ft.Properties["pickups"].(float64) != 42 || ft.Properties["c1"].(float64) != 1 {
		t.Fatalf("properties wrong: %v", ft.Properties)
	}
}
