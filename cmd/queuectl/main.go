// Command queuectl runs the two-tier queue analytic engine over an MDT log
// dataset (text or store format) and prints the detected queue spots with
// their per-slot queue contexts. Datasets spanning several days are
// analyzed day by day; the multi-day spot registry (§7.1) and queue-type
// transition report are printed in addition.
//
// Usage:
//
//	mdtgen -o day.log && queuectl -i day.log
//	queuectl -i day.tqs -format store -eps 15 -minpts 50 -top 10
//	mdtgen -duration 72h -o week.log && queuectl -i week.log
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/report"
	"taxiqueue/internal/store"
	"taxiqueue/internal/transition"
)

func main() {
	in := flag.String("i", "-", "input file ('-' for stdin)")
	format := flag.String("format", "text", "input format: text or store")
	eps := flag.Float64("eps", 15, "DBSCAN eps in meters")
	minPts := flag.Int("minpts", 50, "DBSCAN min-points")
	speedTh := flag.Float64("speed", 10, "PEA speed threshold (km/h)")
	coverage := flag.Float64("coverage", 0.6, "fleet coverage of the dataset (sets the §6.2.1 amplification)")
	top := flag.Int("top", 20, "print the N busiest spots (0 = all)")
	geojsonOut := flag.String("geojson", "", "also write the detected spots as GeoJSON to this file")
	flag.Parse()

	recs, err := readRecords(*in, *format)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "queuectl: %d records read\n", len(recs))

	cleaned, stats := clean.Clean(recs, clean.Config{ValidFrame: citymap.Island})
	fmt.Fprintf(os.Stderr, "queuectl: %s\n", stats)

	days := splitByDay(cleaned)
	fmt.Fprintf(os.Stderr, "queuectl: dataset spans %d day(s)\n", len(days))

	cfg := core.DefaultEngineConfig()
	cfg.SpeedThresholdKmh = *speedTh
	cfg.Detector.Cluster = cluster.Params{EpsMeters: *eps, MinPoints: *minPts}
	if *coverage > 0 && *coverage < 1 {
		cfg.Amplify = core.Amplification{Factor: 1 / *coverage, IntervalFactor: *coverage}
	} else {
		cfg.Amplify = core.NoAmplification
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Analyze each day; the last day's result drives the spot table, the
	// full set feeds the registry and transition report.
	var results []*core.Result
	for _, dayRecs := range days {
		r, err := engine.Analyze(dayRecs)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
	}
	res := results[len(results)-1]
	fmt.Fprintf(os.Stderr, "queuectl: %d pickup events, %d queue spots (last day)\n",
		len(res.Pickups), len(res.Spots))

	if *geojsonOut != "" {
		if err := writeGeoJSON(*geojsonOut, res); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "queuectl: GeoJSON written to %s\n", *geojsonOut)
	}

	n := len(res.Spots)
	if *top > 0 && *top < n {
		n = *top
	}
	t := report.NewTable(fmt.Sprintf("Detected queue spots (top %d by pickups)", n),
		"#", "Location", "Zone", "Pickups", "C1", "C2", "C3", "C4", "Unid")
	for i := 0; i < n; i++ {
		sa := res.Spots[i]
		counts := map[core.QueueType]int{}
		for _, l := range sa.Labels {
			counts[l]++
		}
		t.AddRow(fmt.Sprint(i+1), sa.Spot.Pos.String(), sa.Spot.Zone.String(),
			fmt.Sprint(sa.Spot.PickupCount),
			fmt.Sprint(counts[core.C1]), fmt.Sprint(counts[core.C2]),
			fmt.Sprint(counts[core.C3]), fmt.Sprint(counts[core.C4]),
			fmt.Sprint(counts[core.Unidentified]))
	}
	fmt.Print(t)

	if n > 0 {
		sa := res.Spots[0]
		fmt.Printf("\nBusiest spot timeline (%v, %v):\n", sa.Spot.Pos, sa.Spot.Zone)
		grid := res.Config.Grid
		for j, lbl := range sa.Labels {
			if lbl == core.Unidentified {
				continue
			}
			from, to := grid.Bounds(j)
			f := sa.Features[j]
			fmt.Printf("  %s-%s %-3v wait=%-8v arrivals=%-5.1f L=%-5.1f departures=%.1f\n",
				from.Format("15:04"), to.Format("15:04"), lbl,
				f.TWait.Round(time.Second), f.NArr, f.QLen, f.NDep)
		}
	}

	if len(results) > 1 {
		printMultiDay(results)
	}
}

// splitByDay partitions time-ordered records by calendar day.
func splitByDay(recs []mdt.Record) [][]mdt.Record {
	var out [][]mdt.Record
	var curDay time.Time
	for _, r := range recs {
		day := time.Date(r.Time.Year(), r.Time.Month(), r.Time.Day(), 0, 0, 0, 0, time.UTC)
		if len(out) == 0 || !day.Equal(curDay) {
			out = append(out, nil)
			curDay = day
		}
		out[len(out)-1] = append(out[len(out)-1], r)
	}
	return out
}

// printMultiDay renders the §7.1 multi-day registry and transition report.
func printMultiDay(results []*core.Result) {
	daily := make([][]core.QueueSpot, len(results))
	for i, r := range results {
		spots := make([]core.QueueSpot, len(r.Spots))
		for j := range r.Spots {
			spots[j] = r.Spots[j].Spot
		}
		daily[i] = spots
	}
	registry := core.MergeSpots(daily, 20, len(results)/2+1)
	stable := core.Stable(registry)
	sporadic := core.Sporadics(registry)
	fmt.Printf("\nMulti-day spot registry over %d days: %d stable, %d sporadic\n",
		len(results), len(stable), len(sporadic))

	// Transition report pooled over the busiest stable spots.
	rep := transition.NewReport(results[0].Config.Grid.Slots)
	for _, r := range results {
		for i := range r.Spots {
			if i >= 10 {
				break
			}
			rep.AddDay(r.Spots[i].Labels)
		}
	}
	fmt.Println("\nQueue-type transition probabilities (top-10 spots, all days):")
	fmt.Print(rep.Transitions.Normalize())
}

// writeGeoJSON exports the detected spots with their per-slot context mix
// for the map frontend.
func writeGeoJSON(path string, res *core.Result) error {
	fc := report.NewFeatureCollection()
	for _, sa := range res.Spots {
		counts := map[core.QueueType]int{}
		for _, l := range sa.Labels {
			counts[l]++
		}
		fc.AddPoint(sa.Spot.Pos.Lat, sa.Spot.Pos.Lon, map[string]any{
			"zone":    sa.Spot.Zone.String(),
			"pickups": sa.Spot.PickupCount,
			"c1":      counts[core.C1],
			"c2":      counts[core.C2],
			"c3":      counts[core.C3],
			"c4":      counts[core.C4],
			"unid":    counts[core.Unidentified],
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fc.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readRecords(path, format string) ([]mdt.Record, error) {
	f := os.Stdin
	if path != "-" {
		var err error
		f, err = os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
	}
	switch format {
	case "text":
		return mdt.ReadText(f)
	case "store":
		st, err := store.Load(f)
		if err != nil {
			return nil, err
		}
		var recs []mdt.Record
		st.Scan(time.Time{}, time.Unix(1<<40, 0), func(r mdt.Record) bool {
			recs = append(recs, r)
			return true
		})
		return recs, nil
	default:
		return nil, fmt.Errorf("unknown format %q (want text or store)", format)
	}
}
