module taxiqueue

go 1.22
