// Package taxiqueue reproduces "Taxi Queue, Passenger Queue or No Queue? —
// A Queue Detection and Analysis System using Taxi State Transition"
// (Lu, Xiang, Wu; EDBT 2015).
//
// The paper's contribution lives in internal/core (the PEA, WTE and QCD
// algorithms and the two-tier analytic engine); every substrate it needs —
// the MDT state machine, a city-scale fleet simulator, spatial indexes,
// DBSCAN, the booking dispatcher, the vehicle monitor, an embedded log
// store — is implemented from scratch in the sibling internal packages.
// See DESIGN.md for the inventory and EXPERIMENTS.md for the paper-vs-
// measured record of every table and figure.
//
// The root-level benchmarks in bench_test.go regenerate each experiment;
// run them with:
//
//	go test -bench=. -benchmem
package taxiqueue
