package taxiqueue

// Cross-module integration tests: the full production data path including
// the embedded store's persistence layer, exactly as cmd/mdtgen +
// cmd/queuectl compose it.

import (
	"bytes"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/monitor"
	"taxiqueue/internal/sim"
	"taxiqueue/internal/store"
)

func TestPipelineThroughStore(t *testing.T) {
	// Simulate -> persist to the binary store -> reload -> scan -> clean
	// -> analyze. The result must be identical to analyzing the in-memory
	// records directly.
	city := citymap.Generate(900, 0.1)
	out := sim.Run(sim.Config{Seed: 900, City: city, InjectFaults: true,
		Duration: 12 * time.Hour})

	st := store.New()
	if err := st.AppendAll(out.Records); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != len(out.Records) {
		t.Fatalf("store round trip lost records: %d vs %d", loaded.Len(), len(out.Records))
	}
	var scanned []mdt.Record
	loaded.Scan(out.Config.Start, out.Config.Start.Add(out.Config.Duration).Add(time.Second),
		func(r mdt.Record) bool {
			scanned = append(scanned, r)
			return true
		})
	if len(scanned) != len(out.Records) {
		t.Fatalf("scan returned %d of %d records", len(scanned), len(out.Records))
	}

	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 25}
	cfg.Grid = core.DaySlots(out.Config.Start)
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	analyze := func(recs []mdt.Record) *core.Result {
		cleaned, _ := clean.Clean(recs, clean.Config{ValidFrame: citymap.Island})
		res, err := engine.Analyze(cleaned)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	direct := analyze(out.Records)
	viaStore := analyze(scanned)
	if len(direct.Spots) != len(viaStore.Spots) {
		t.Fatalf("spot counts differ: direct %d, via store %d",
			len(direct.Spots), len(viaStore.Spots))
	}
	for i := range direct.Spots {
		if direct.Spots[i].Spot != viaStore.Spots[i].Spot {
			t.Fatalf("spot %d differs after store round trip", i)
		}
		for j := range direct.Spots[i].Labels {
			if direct.Spots[i].Labels[j] != viaStore.Spots[i].Labels[j] {
				t.Fatalf("spot %d slot %d label differs after store round trip", i, j)
			}
		}
	}
}

func TestPipelineTextCodecRoundTrip(t *testing.T) {
	// The text format (Table 2) must survive a full day of simulated
	// records without loss that affects analysis.
	out := sim.Run(sim.Config{Seed: 901, City: citymap.Generate(901, 0.05),
		Duration: 6 * time.Hour})
	var buf bytes.Buffer
	if err := mdt.WriteText(&buf, out.Records); err != nil {
		t.Fatal(err)
	}
	parsed, err := mdt.ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(out.Records) {
		t.Fatalf("text round trip: %d of %d records", len(parsed), len(out.Records))
	}
	for i := range parsed {
		a, b := parsed[i], out.Records[i]
		if a.TaxiID != b.TaxiID || a.State != b.State ||
			a.Time.Unix() != b.Time.Unix() {
			t.Fatalf("record %d differs after text round trip", i)
		}
		// Positions survive at 1e-5 degree (~1 m) resolution.
		if geo.Equirect(a.Pos, b.Pos) > 2 {
			t.Fatalf("record %d moved %.1f m in text round trip", i, geo.Equirect(a.Pos, b.Pos))
		}
	}
}

func TestPipelineMonitorAgreesWithTruth(t *testing.T) {
	// Replaying ground-truth queue logs into the monitor and averaging per
	// slot must agree with SpotTruth's own time-weighted average.
	out := sim.Run(sim.Config{Seed: 902, City: citymap.Generate(902, 0.05)})
	var busiest int
	for i, st := range out.Truth.Spots {
		if st.Pickups > out.Truth.Spots[busiest].Pickups {
			busiest = i
		}
	}
	truth := out.Truth.Spots[busiest]
	counter := monitor.NewAreaCounter("x", geo.CirclePolygon(truth.Landmark.Pos, 40, 12))
	for _, s := range truth.TaxiQueueLog {
		if err := counter.Observe(s.Time, s.Len); err != nil {
			t.Fatal(err)
		}
	}
	start := out.Config.Start
	for h := 0; h < 24; h++ {
		from := start.Add(time.Duration(h) * time.Hour)
		to := from.Add(time.Hour)
		a := counter.Average(from, to)
		b := truth.AvgTaxiQueueLen(from, to)
		if diff := a - b; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("hour %d: monitor %.4f vs truth %.4f", h, a, b)
		}
	}
}
