#!/usr/bin/env bash
# The resilience gate: run the fault-injection suites under the race
# detector — the chaos package's own unit tests (seeded fault wrappers,
# torn-tail recovery), the feed client's retry/resume tests, and the
# end-to-end scenario (a simulated day through a flaky transport, a
# mid-day crash with a torn WAL, a blind full re-send) that must converge
# to labels byte-identical to a fault-free run.
#
# Usage:
#   scripts/chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo ">> chaos harness unit tests (-race)"
go test -race -count=1 ./internal/chaos ./internal/feedclient

echo ">> end-to-end chaos day (-race)"
go test -race -count=1 -run TestChaosDayConvergesToFaultFreeLabels \
	-v ./internal/chaos

echo ">> chaos gate clean"
