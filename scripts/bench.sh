#!/usr/bin/env bash
# Runs the stage and ablation benchmark suites with -benchmem, records the
# perf trajectory as JSON (ns/op, B/op, allocs/op per benchmark), and
# race-tests the concurrent packages.
#
# Usage:
#   scripts/bench.sh                 # default: BENCH_OUT=BENCH_PR10.json
#   BENCHTIME=3x scripts/bench.sh    # more iterations per benchmark
#   BENCH_COUNT=4 scripts/bench.sh   # -count=4, record the per-bench minimum
#   BENCH_OUT=after.json scripts/bench.sh
#
# The CI box is a 1-CPU VM with noisy neighbours: wall-clock numbers swing
# 2-4x minute to minute (fsync latency especially). BENCH_COUNT > 1 runs
# every suite N times and records each benchmark's *minimum* ns/op — the
# least-interference estimate, which is the comparable number across PRs.
#
# Compare two recorded runs with benchstat (golang.org/x/perf) over the raw
# text files the script leaves in /tmp, or diff the JSON directly.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-BENCH_PR10.json}"
benchtime="${BENCHTIME:-1x}"
count="${BENCH_COUNT:-1}"
raw="$(mktemp /tmp/bench_raw.XXXXXX.txt)"

echo ">> go vet ./..."
go vet ./...

echo ">> go test -bench 'Benchmark(Stage|Ablation)' -benchmem -benchtime $benchtime -count $count ."
go test -run '^$' -bench 'Benchmark(Stage|Ablation)' -benchmem \
	-benchtime "$benchtime" -count "$count" -timeout 45m . | tee "$raw"

# Ingest throughput: records/sec vs shard count, with and without the WAL.
# The BenchmarkIngest pattern also picks up BenchmarkIngestDurable (group
# commit at the default SyncEvery) and BenchmarkIngestDurableSync, the
# SyncEvery sweep over the durability/throughput trade-off.
ingest_benchtime="${INGEST_BENCHTIME:-200000x}"
echo ">> go test -bench BenchmarkIngest -benchmem -benchtime $ingest_benchtime -count $count ./internal/ingest"
go test -run '^$' -bench 'BenchmarkIngest' -benchmem \
	-benchtime "$ingest_benchtime" -count "$count" -timeout 45m ./internal/ingest | tee -a "$raw"

# Incremental spot discovery: the per-pickup hot cost on the live path
# (one sliding-window insert + expiry) and one full cluster extraction
# over a populated window. Separate benchtimes — an insert is ~10µs, an
# extraction rebuilds cluster numbering over thousands of points.
incr_insert_benchtime="${INCR_INSERT_BENCHTIME:-20000x}"
echo ">> go test -bench BenchmarkIncrementalInsert -benchmem -benchtime $incr_insert_benchtime -count $count ./internal/cluster"
go test -run '^$' -bench 'BenchmarkIncrementalInsert' -benchmem \
	-benchtime "$incr_insert_benchtime" -count "$count" -timeout 45m ./internal/cluster | tee -a "$raw"
incr_extract_benchtime="${INCR_EXTRACT_BENCHTIME:-5x}"
echo ">> go test -bench BenchmarkIncrementalExtract -benchmem -benchtime $incr_extract_benchtime -count $count ./internal/cluster"
go test -run '^$' -bench 'BenchmarkIncrementalExtract' -benchmem \
	-benchtime "$incr_extract_benchtime" -count "$count" -timeout 45m ./internal/cluster | tee -a "$raw"

# History store: watermark-advance append (encode + seal), one range scan
# and one heatmap aggregation over a week of 50 spots; the pattern also
# picks up the analytics fast-path suite (BenchmarkHistoryHeatmapRange and
# its decode-everything baseline, BenchmarkHistorySeriesWide, and the
# lazy/eager cold-open pair).
history_benchtime="${HISTORY_BENCHTIME:-200x}"
echo ">> go test -bench BenchmarkHistory -benchmem -benchtime $history_benchtime -count $count ./internal/history"
go test -run '^$' -bench 'BenchmarkHistory' -benchmem \
	-benchtime "$history_benchtime" -count "$count" -timeout 45m ./internal/history | tee -a "$raw"

# Forecast profiles: one table evaluation (the /forecast unit of work)
# and a full-day fold across 64 spots.
forecast_benchtime="${FORECAST_BENCHTIME:-100000x}"
echo ">> go test -bench 'BenchmarkForecast|BenchmarkAppendDay' -benchmem -benchtime $forecast_benchtime -count $count ./internal/forecast"
go test -run '^$' -bench 'BenchmarkForecast|BenchmarkAppendDay' -benchmem \
	-benchtime "$forecast_benchtime" -count "$count" -timeout 45m ./internal/forecast | tee -a "$raw"

# Snapshot serving: cached read path vs the locked baseline, served
# concurrently with a live feed (the PR 5 ≥5x criterion); the pattern also
# picks up BenchmarkServeRecommend (ETA-aware ranking) and
# BenchmarkServeForecast.
serve_benchtime="${SERVE_BENCHTIME:-5000x}"
echo ">> go test -bench BenchmarkServe -benchmem -benchtime $serve_benchtime -count $count ./cmd/queued"
go test -run '^$' -bench 'BenchmarkServe' -benchmem \
	-benchtime "$serve_benchtime" -count "$count" -timeout 45m ./cmd/queued | tee -a "$raw"

# Fold -count repetitions to the per-benchmark minimum ns/op (keeping the
# B/op and allocs/op from that same run), preserving first-seen order.
awk '
BEGIN { n = 0 }
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns     = $(i - 1)
		if ($i == "B/op")      bytes  = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (!(name in best)) order[n++] = name
	if (!(name in best) || ns + 0 < best[name] + 0) {
		best[name] = ns; bb[name] = bytes; ba[name] = allocs
	}
}
END {
	for (i = 0; i < n; i++) {
		name = order[i]
		if (i) printf(",\n")
		printf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, best[name])
		if (bb[name] != "") printf(", \"b_per_op\": %s", bb[name])
		if (ba[name] != "") printf(", \"allocs_per_op\": %s", ba[name])
		printf("}")
	}
	print ""
}
' "$raw" > /tmp/bench_body.$$

{
	echo "{"
	echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
	echo "  \"go\": \"$(go env GOVERSION)\","
	echo "  \"cpus\": $(nproc),"
	echo "  \"benchmarks\": ["
	cat /tmp/bench_body.$$
	echo "  ]"
	echo "}"
} > "$out"
rm -f /tmp/bench_body.$$
echo ">> wrote $out"

# Ingest summary: each BenchmarkIngest* op accepts exactly one record, so
# records/sec is just 1e9 / ns_per_op. Printed for the PR log — the JSON
# above stays the canonical record.
echo ">> ingest throughput (records/sec, from min ns/op)"
awk '
/^BenchmarkIngest/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""
	for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
	if (ns == "") next
	if (!(name in best)) order[n++] = name
	if (!(name in best) || ns + 0 < best[name] + 0) best[name] = ns
}
END {
	for (i = 0; i < n; i++)
		printf("   %-55s %12.0f rec/s\n", order[i], 1e9 / best[order[i]])
}
' "$raw"

# queueload smoke: boot a live queued instance and drive a short mixed
# read+ingest load through it; fails if any endpoint returns errors.
smoke_addr="${QUEUELOAD_ADDR:-127.0.0.1:18131}"
smoke_dur="${QUEUELOAD_DURATION:-3s}"
echo ">> queueload smoke ($smoke_dur against $smoke_addr)"
bin="$(mktemp -d /tmp/bench_bin.XXXXXX)"
go build -o "$bin/queued" ./cmd/queued
go build -o "$bin/queueload" ./cmd/queueload
hist_dir="$(mktemp -d /tmp/bench_hist.XXXXXX)"
"$bin/queued" -addr "$smoke_addr" -scale 0.05 -minpts 25 -live -shards 2 \
	-history "$hist_dir" &
queued_pid=$!
trap 'kill "$queued_pid" 2>/dev/null || true; rm -rf "$bin" "$hist_dir"' EXIT
for i in $(seq 1 100); do
	if curl -fsS "http://$smoke_addr/healthz" >/dev/null 2>&1; then break; fi
	sleep 0.2
done
"$bin/queueload" -url "http://$smoke_addr" -duration "$smoke_dur" \
	-clients 4 -feed -feed-scale 0.05

# Range-scan smoke: finalize the fed slots, then drive the history mix
# (series scans, heatmaps, transition matrices, plus the wide mix's
# multi-day /history spans and range-form /heatmap aggregates) against the
# same instance while a second full-rate feed replays concurrently (its
# records dedup / close-out harmlessly — the scans must not care);
# queueload exits non-zero if any request errors.
curl -fsS -X POST "http://$smoke_addr/ingest/flush" >/dev/null
"$bin/queueload" -url "http://$smoke_addr" -duration "$smoke_dur" \
	-clients 4 -feed -feed-scale 0.05 \
	-mix "history=4,heatmap=2,transitions=1,spots=1,forecast=2,recommend=1,wide=2"

# The watermark advances during the feeds must have driven the cache
# pre-warmer: /metrics must show rendered-ahead bodies, or the prewarm
# path silently died.
prewarm_total="$(curl -fsS "http://$smoke_addr/metrics" \
	| awk '/^queued_cache_prewarm_total\{/ { sum += $NF } END { print sum + 0 }')"
echo ">> queued_cache_prewarm_total = $prewarm_total"
if [ "$prewarm_total" -le 0 ]; then
	echo "!! pre-warmer rendered nothing during the smoke run" >&2
	exit 1
fi
kill "$queued_pid" 2>/dev/null || true
wait "$queued_pid" 2>/dev/null || true
trap 'rm -rf "$bin" "$hist_dir"' EXIT
echo ">> queueload smoke clean"

echo ">> go test -race ./internal/chaos ./internal/cluster ./internal/core ./internal/forecast ./internal/history ./internal/ingest ./internal/obs ./internal/store ./internal/stream"
go test -race -count=1 ./internal/chaos ./internal/cluster ./internal/core ./internal/forecast ./internal/history ./internal/ingest ./internal/obs ./internal/store ./internal/stream
echo ">> race check clean"
