#!/usr/bin/env bash
# End-to-end observability demo: start `queued -live` with pprof enabled,
# replay a simulated day into /ingest with mdtgen, then show what the
# operational surface reports — the Prometheus scrape, the /ingest/stats
# JSON (same collectors, so they always agree) and the /healthz readiness
# probe.
#
# Usage:
#   scripts/metrics-demo.sh                 # defaults below
#   SCALE=0.25 RATE=20000 scripts/metrics-demo.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:8080}"
SCALE="${SCALE:-0.1}"
SEED="${SEED:-777}"
MINPTS="${MINPTS:-25}"
RATE="${RATE:-0}" # records/sec; 0 = as fast as possible
WAL="$(mktemp -d /tmp/tq-wal.XXXXXX)"

bin="$(mktemp -d /tmp/tq-bin.XXXXXX)"
echo ">> building queued and mdtgen"
go build -o "$bin/queued" ./cmd/queued
go build -o "$bin/mdtgen" ./cmd/mdtgen

"$bin/queued" -addr "$ADDR" -live -seed "$SEED" -scale "$SCALE" \
	-minpts "$MINPTS" -wal "$WAL" -pprof &
qpid=$!
# Let queued finish its shutdown checkpoint before removing the WAL dir.
trap 'kill $qpid 2>/dev/null || true; wait $qpid 2>/dev/null || true; rm -rf "$WAL" "$bin"' EXIT

echo ">> waiting for /healthz"
for i in $(seq 1 120); do
	if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 $qpid 2>/dev/null; then
		echo "queued exited before becoming ready" >&2
		exit 1
	fi
	sleep 0.5
done
curl -fsS "http://$ADDR/healthz"; echo

echo ">> replaying one simulated day into /ingest"
"$bin/mdtgen" -seed "$SEED" -scale "$SCALE" -rate "$RATE" \
	-stream "http://$ADDR/ingest" -stats

echo ">> /metrics scrape (ingest + batch pipeline series)"
curl -fsS "http://$ADDR/metrics" | grep -E '^(ingest|pipeline)_' | head -60

echo ">> pprof is live too: go tool pprof http://$ADDR/debug/pprof/profile"
echo ">> done"
