#!/usr/bin/env bash
# The pre-PR gate: build everything, vet, run the full test suite, then
# re-run the concurrent packages under the race detector. Green here is the
# bar every change must clear (ROADMAP tier-1 plus the race gate).
#
# Usage:
#   scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> go test ./..."
go test ./...

echo ">> go test -race (concurrent packages)"
go test -race -count=1 \
	./internal/chaos ./internal/cluster ./internal/core \
	./internal/feedclient ./internal/forecast ./internal/history \
	./internal/ingest ./internal/obs ./internal/store ./internal/stream \
	./cmd/queued ./cmd/queueload

echo ">> all checks clean"
