#!/usr/bin/env bash
# Named end-to-end scenarios replayed against a real queued binary over
# HTTP — heavier than a unit test, lighter than a deployment. Each
# scenario boots queued, drives a deterministic feed through mdtgen, and
# asserts the server-side invariants (healthz, accepted counts, WAL
# durability metrics).
#
# Usage:
#   scripts/scenario.sh surge            # the 10x airport-surge day
#   SURGE=20 scripts/scenario.sh surge   # a harsher multiplier
#
# Scenarios:
#   surge  Replay the same seeded day twice — 1x fleet, then SURGE x the
#          fleet — through a durable (WAL-on) live instance, with group
#          commit at the default SyncEvery. Everything is seeded, so a
#          surge run is exactly reproducible and directly comparable to
#          its 1x baseline. Fails if any feed batch errors, if the server
#          drops out of /healthz, or if the WAL has pending (unsynced)
#          records after the flush barrier.
set -euo pipefail
cd "$(dirname "$0")/.."

scenario="${1:-surge}"

addr="${SCENARIO_ADDR:-127.0.0.1:18141}"
surge="${SURGE:-10}"
scale="${SCENARIO_SCALE:-0.05}"
seed="${SCENARIO_SEED:-1}"

bin="$(mktemp -d /tmp/scenario_bin.XXXXXX)"
wal="$(mktemp -d /tmp/scenario_wal.XXXXXX)"
cleanup() {
	[ -n "${queued_pid:-}" ] && kill "$queued_pid" 2>/dev/null || true
	[ -n "${queued_pid:-}" ] && wait "$queued_pid" 2>/dev/null || true
	rm -rf "$bin" "$wal"
}
trap cleanup EXIT

wait_healthy() {
	for _ in $(seq 1 150); do
		if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
		sleep 0.2
	done
	echo "scenario: queued never became healthy on $addr" >&2
	return 1
}

# metric NAME — read one counter/gauge off /metrics, summed across its
# per-shard label series.
metric() {
	curl -fsS "http://$addr/metrics" | awk -v m="$1" '
		index($1, m) == 1 && (length($1) == length(m) || substr($1, length(m) + 1, 1) == "{") { sum += $2 }
		END { printf "%d\n", sum }'
}

run_surge() {
	echo ">> building queued + mdtgen"
	go build -o "$bin/queued" ./cmd/queued
	go build -o "$bin/mdtgen" ./cmd/mdtgen

	echo ">> booting durable live queued on $addr (WAL in $wal, group commit on)"
	"$bin/queued" -addr "$addr" -seed "$seed" -scale "$scale" -minpts 25 \
		-live -shards 4 -wal "$wal" &
	queued_pid=$!
	wait_healthy

	echo ">> 1x baseline day (seed $seed, scale $scale)"
	"$bin/mdtgen" -seed "$seed" -scale "$scale" -duration 2h \
		-stream "http://$addr/ingest" -stats
	base_accepted="$(metric ingest_accepted_total)"

	echo ">> surge day: same seed, same city, ${surge}x the fleet"
	"$bin/mdtgen" -seed "$seed" -scale "$scale" -duration 2h -surge "$surge" \
		-stream "http://$addr/ingest" -stats
	total_accepted="$(metric ingest_accepted_total)"

	echo ">> post-surge invariants"
	curl -fsS "http://$addr/healthz" >/dev/null || {
		echo "scenario: queued unhealthy after the surge" >&2
		return 1
	}
	surge_accepted=$((total_accepted - base_accepted))
	echo "   accepted: baseline=$base_accepted surge=$surge_accepted"
	if [ "$surge_accepted" -le "$base_accepted" ]; then
		echo "scenario: surge day accepted no more records than the baseline" >&2
		return 1
	fi
	pending="$(metric ingest_wal_pending)"
	if [ "$pending" != 0 ]; then
		echo "scenario: wal_pending=$pending after the flush barrier (group commit leak)" >&2
		return 1
	fi
	syncs="$(metric ingest_wal_syncs_total)"
	segs="$(metric ingest_wal_segments)"
	echo "   wal: pending=$pending syncs=$syncs sealed_segments=$segs"
	echo ">> surge scenario clean (${surge}x survived, WAL drained)"
}

case "$scenario" in
surge) run_surge ;;
*)
	echo "scenario.sh: unknown scenario '$scenario' (have: surge)" >&2
	exit 1
	;;
esac
