#!/usr/bin/env bash
# Named end-to-end scenarios replayed against a real queued binary over
# HTTP — heavier than a unit test, lighter than a deployment. Each
# scenario boots queued, drives a deterministic feed through mdtgen, and
# asserts the server-side invariants (healthz, accepted counts, WAL
# durability metrics).
#
# Usage:
#   scripts/scenario.sh surge            # the 10x airport-surge day
#   SURGE=20 scripts/scenario.sh surge   # a harsher multiplier
#   scripts/scenario.sh popup            # mid-day pop-up queue discovery
#
# Scenarios:
#   surge  Replay the same seeded day twice — 1x fleet, then SURGE x the
#          fleet — through a durable (WAL-on) live instance, with group
#          commit at the default SyncEvery. Everything is seeded, so a
#          surge run is exactly reproducible and directly comparable to
#          its 1x baseline. Fails if any feed batch errors, if the server
#          drops out of /healthz, or if the WAL has pending (unsynced)
#          records after the flush barrier.
#   popup  Boot a live instance with online spot discovery on, then feed a
#          seeded morning with a fabricated mid-feed pop-up queue at a
#          site no batch pass knows (mdtgen -popup), WITHOUT the final
#          flush (a full flush drains the discovery window by design).
#          Fails unless /spots?live=1 surfaces a confirmed live spot the
#          plain /spots view lacks, with the lifecycle counters agreeing —
#          i.e. the pop-up is visible online before any nightly batch
#          pass would see it.
set -euo pipefail
cd "$(dirname "$0")/.."

scenario="${1:-surge}"

addr="${SCENARIO_ADDR:-127.0.0.1:18141}"
surge="${SURGE:-10}"
scale="${SCENARIO_SCALE:-0.05}"
seed="${SCENARIO_SEED:-1}"

bin="$(mktemp -d /tmp/scenario_bin.XXXXXX)"
wal="$(mktemp -d /tmp/scenario_wal.XXXXXX)"
cleanup() {
	[ -n "${queued_pid:-}" ] && kill "$queued_pid" 2>/dev/null || true
	[ -n "${queued_pid:-}" ] && wait "$queued_pid" 2>/dev/null || true
	rm -rf "$bin" "$wal"
}
trap cleanup EXIT

wait_healthy() {
	for _ in $(seq 1 150); do
		if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
		sleep 0.2
	done
	echo "scenario: queued never became healthy on $addr" >&2
	return 1
}

# metric NAME — read one counter/gauge off /metrics, summed across its
# per-shard label series.
metric() {
	curl -fsS "http://$addr/metrics" | awk -v m="$1" '
		index($1, m) == 1 && (length($1) == length(m) || substr($1, length(m) + 1, 1) == "{") { sum += $2 }
		END { printf "%d\n", sum }'
}

run_surge() {
	echo ">> building queued + mdtgen"
	go build -o "$bin/queued" ./cmd/queued
	go build -o "$bin/mdtgen" ./cmd/mdtgen

	echo ">> booting durable live queued on $addr (WAL in $wal, group commit on)"
	"$bin/queued" -addr "$addr" -seed "$seed" -scale "$scale" -minpts 25 \
		-live -shards 4 -wal "$wal" &
	queued_pid=$!
	wait_healthy

	echo ">> 1x baseline day (seed $seed, scale $scale)"
	"$bin/mdtgen" -seed "$seed" -scale "$scale" -duration 2h \
		-stream "http://$addr/ingest" -stats
	base_accepted="$(metric ingest_accepted_total)"

	echo ">> surge day: same seed, same city, ${surge}x the fleet"
	"$bin/mdtgen" -seed "$seed" -scale "$scale" -duration 2h -surge "$surge" \
		-stream "http://$addr/ingest" -stats
	total_accepted="$(metric ingest_accepted_total)"

	echo ">> post-surge invariants"
	curl -fsS "http://$addr/healthz" >/dev/null || {
		echo "scenario: queued unhealthy after the surge" >&2
		return 1
	}
	surge_accepted=$((total_accepted - base_accepted))
	echo "   accepted: baseline=$base_accepted surge=$surge_accepted"
	if [ "$surge_accepted" -le "$base_accepted" ]; then
		echo "scenario: surge day accepted no more records than the baseline" >&2
		return 1
	fi
	pending="$(metric ingest_wal_pending)"
	if [ "$pending" != 0 ]; then
		echo "scenario: wal_pending=$pending after the flush barrier (group commit leak)" >&2
		return 1
	fi
	syncs="$(metric ingest_wal_syncs_total)"
	segs="$(metric ingest_wal_segments)"
	echo "   wal: pending=$pending syncs=$syncs sealed_segments=$segs"
	echo ">> surge scenario clean (${surge}x survived, WAL drained)"
}

run_popup() {
	echo ">> building queued + mdtgen"
	go build -o "$bin/queued" ./cmd/queued
	go build -o "$bin/mdtgen" ./cmd/mdtgen

	echo ">> booting live queued with online spot discovery on $addr"
	"$bin/queued" -addr "$addr" -seed "$seed" -scale "$scale" -minpts 25 \
		-live -shards 4 -live-spots -live-spot-minpts 10 &
	queued_pid=$!
	wait_healthy

	# 4h feed with 30 fabricated pickups at a pop-up site starting at
	# +2h. No final flush: flushing runs the discovery clock to the grid
	# end, which (correctly) expires the whole sliding window — the point
	# of this scenario is the state *mid-feed*, before any batch pass.
	echo ">> feeding a seeded 4h morning with a pop-up queue at +2h (no flush)"
	"$bin/mdtgen" -seed "$seed" -scale "$scale" -duration 4h -popup 30 \
		-stream "http://$addr/ingest" -flush=false

	echo ">> post-feed invariants"
	plain="$(curl -fsS "http://$addr/spots")"
	if printf '%s' "$plain" | grep -q '"live"'; then
		echo "scenario: plain /spots leaked live-discovery fields" >&2
		return 1
	fi
	live="$(curl -fsS "http://$addr/spots?live=1")"
	if ! printf '%s' "$live" | grep -q '"live":true'; then
		echo "scenario: /spots?live=1 has no live-discovered spot" >&2
		return 1
	fi
	if ! printf '%s' "$live" | grep -q '"state":"confirmed"'; then
		echo "scenario: the pop-up never reached the confirmed state" >&2
		return 1
	fi
	confirmed="$(metric spot_live_confirmed_total)"
	tracked="$(metric spot_live_tracked)"
	if [ "$confirmed" -lt 1 ]; then
		echo "scenario: spot_live_confirmed_total=$confirmed, want >= 1" >&2
		return 1
	fi
	echo "   live spots: tracked=$tracked confirmed_total=$confirmed"
	echo ">> popup scenario clean (pop-up confirmed online, invisible to the batch view)"
}

case "$scenario" in
surge) run_surge ;;
popup) run_popup ;;
*)
	echo "scenario.sh: unknown scenario '$scenario' (have: surge, popup)" >&2
	exit 1
	;;
esac
