package forecast

import "taxiqueue/internal/obs"

// metrics are the learner's registry collectors. Stats() reads these same
// collectors, so /metrics and the JSON stats view cannot disagree.
type metrics struct {
	appends     *obs.Counter
	observes    *obs.Counter
	persists    *obs.Counter
	persistErrs *obs.Counter
	truncations *obs.Counter
	bytes       *obs.Gauge
	weight      *obs.Gauge

	qForecast *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		appends: reg.Counter("forecast_appends_total",
			"Append batches folded into the forecast profiles."),
		observes: reg.Counter("forecast_observes_total",
			"(spot, slot, day) observations folded into forecast profiles."),
		persists: reg.Counter("forecast_persists_total",
			"Profile snapshot generations written durably."),
		persistErrs: reg.Counter("forecast_persist_errors_total",
			"Failed profile snapshot writes (previous generation kept)."),
		truncations: reg.Counter("forecast_truncations_total",
			"Recoveries that discarded a damaged profile generation."),
		bytes: reg.Gauge("forecast_bytes",
			"Bytes of the current durable profile snapshot."),
		weight: reg.Gauge("forecast_weight",
			"Total effective observed-day weight across all profiles (floored)."),
		qForecast: reg.Histogram("forecast_query_seconds",
			"Forecast evaluation latency.", obs.DefBuckets),
	}
}
