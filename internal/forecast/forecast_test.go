package forecast

import (
	"math"
	"testing"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/queueing"
)

func testGrid() core.SlotGrid {
	return core.DaySlots(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
}

func testThresholds() core.Thresholds {
	return core.Thresholds{
		EtaWait: 5 * time.Minute, EtaDep: time.Minute,
		TauArr: 6, TauDep: 30, EtaDur: 27 * time.Minute, TauRatio: 0.5,
	}
}

func testConfig(nspots int) Config {
	ths := make([]core.Thresholds, nspots)
	for i := range ths {
		ths[i] = testThresholds()
	}
	return Config{Grid: testGrid(), Spots: nspots, Thresholds: ths}
}

// c3Feats is a saturated taxi-queue cell: L̄ ≥ 1 with slow, sparse
// departures — classifies C3 and is far outside M/M/c stability.
func c3Feats() core.SlotFeatures {
	return core.SlotFeatures{
		TWait: 10 * time.Minute, NArr: 9, QLen: 3,
		TDep: 4 * time.Minute, NDep: 6,
	}
}

// c2Feats is a passenger-consuming cell: L̄ < 1, many arrivals, short
// waits — classifies C2 — in a light, stable rate regime.
func c2Feats() core.SlotFeatures {
	return core.SlotFeatures{
		TWait: 30 * time.Second, NArr: 18, QLen: 0.3,
		TDep: 20 * time.Second, NDep: 80,
	}
}

// appendUniform folds one day where every slot of every spot observes f.
func appendUniform(t *testing.T, l *Learner, day int, f core.SlotFeatures, label core.QueueType) {
	t.Helper()
	err := l.AppendSlots(day, 0, l.Grid().Slots, func(_, _ int) (core.SlotFeatures, core.QueueType) {
		return f, label
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForecastUnobserved(t *testing.T) {
	l, err := Open(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	f, ok := l.Table().Forecast(0, testGrid().Start.Add(3*time.Hour))
	if !ok {
		t.Fatal("in-grid instant not ok")
	}
	if f.Source != SourceNone || f.Weight != 0 {
		t.Fatalf("unobserved slot: source %v weight %v", f.Source, f.Weight)
	}
	// The label must be the synthesized empty context, exactly what the
	// engine would classify for a zero feature tuple.
	want := core.Classify([]core.SlotFeatures{{}}, testThresholds())[0]
	if f.Label != want {
		t.Fatalf("unobserved label %v, want empty context %v", f.Label, want)
	}
	if f.QLen != 0 || f.Wait != 0 {
		t.Fatalf("unobserved slot forecast numbers %v %v", f.QLen, f.Wait)
	}

	if _, ok := l.Table().Forecast(0, testGrid().Start.Add(-time.Second)); ok {
		t.Fatal("pre-grid instant answered ok")
	}
	if _, ok := l.Table().Forecast(2, testGrid().Start); ok {
		t.Fatal("out-of-range spot answered ok")
	}
	if _, ok := l.Table().Forecast(-1, testGrid().Start); ok {
		t.Fatal("negative spot answered ok")
	}
}

func TestForecastEmpiricalUnstableRegime(t *testing.T) {
	l, err := Open(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	f3 := c3Feats()
	for day := 0; day < 3; day++ {
		appendUniform(t, l, day, f3, core.C3)
	}
	// Evaluate ten days out: slot-of-day profiles answer any future day.
	fc, ok := l.Table().Forecast(0, testGrid().Start.Add(10*24*time.Hour+5*time.Hour))
	if !ok {
		t.Fatal("future instant not ok")
	}
	if fc.Day != 10 || fc.Slot != 10 {
		t.Fatalf("located (day %d, slot %d), want (10, 10)", fc.Day, fc.Slot)
	}
	if fc.Source != SourceEmpirical {
		t.Fatalf("saturated regime source %v, want empirical", fc.Source)
	}
	if fc.Label != core.C3 {
		t.Fatalf("label %v, want C3", fc.Label)
	}
	// All observations identical → the EW means are exact.
	if math.Abs(fc.QLen-f3.QLen) > 1e-9 {
		t.Fatalf("QLen %v, want %v", fc.QLen, f3.QLen)
	}
	if d := fc.Wait - f3.TWait; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("Wait %v, want %v", fc.Wait, f3.TWait)
	}
	if fc.Weight < 1.5 {
		t.Fatalf("weight %v after 3 folded days", fc.Weight)
	}
}

func TestForecastModelStableRegime(t *testing.T) {
	cfg := testConfig(1)
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	f2 := c2Feats()
	for day := 0; day < 3; day++ {
		appendUniform(t, l, day, f2, core.C2)
	}
	fc, ok := l.Table().Forecast(0, testGrid().Start.Add(26*time.Hour))
	if !ok {
		t.Fatal("not ok")
	}
	if fc.Source != SourceModel {
		t.Fatalf("stable light regime source %v, want model", fc.Source)
	}
	if fc.Label != core.C2 {
		t.Fatalf("label %v, want C2", fc.Label)
	}
	// The wait must be exactly the Erlang-C answer for the learned rates;
	// the queue length stays the EW empirical mean.
	slotSec := testGrid().SlotLen.Seconds()
	servers := cfg.withDefaults().Servers
	q := queueing.MMc{
		Lambda:  f2.NArr / slotSec,
		Mu:      1 / (f2.TDep.Seconds() * float64(servers)),
		Servers: servers,
	}
	if !q.Stable() {
		t.Fatal("fixture regime is not stable — test is miswired")
	}
	wq, err := q.Wq()
	if err != nil {
		t.Fatal(err)
	}
	if fc.Wait != wq {
		t.Fatalf("Wait %v, want Erlang-C %v", fc.Wait, wq)
	}
	if math.Abs(fc.QLen-f2.QLen) > 1e-9 {
		t.Fatalf("QLen %v, want empirical mean %v", fc.QLen, f2.QLen)
	}
}

// TestModelNeedsWeight: one observed day is not enough confidence for the
// model path, even in a stable regime.
func TestModelNeedsWeight(t *testing.T) {
	l, err := Open(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendUniform(t, l, 0, c2Feats(), core.C2)
	fc, _ := l.Table().Forecast(0, testGrid().Start.Add(time.Hour))
	if fc.Source != SourceModel && fc.Source != SourceEmpirical {
		t.Fatalf("source %v", fc.Source)
	}
	if fc.Source == SourceModel {
		t.Fatalf("model answered at weight %v < MinModelWeight", fc.Weight)
	}
}

// TestAppendIdempotent: re-appending an already-folded day must not move
// the profile — the learner sits on a replayable WAL-backed seam.
func TestAppendIdempotent(t *testing.T) {
	l, err := Open(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendUniform(t, l, 0, c3Feats(), core.C3)
	before := l.Table().Profile(1, 7)
	for i := 0; i < 4; i++ {
		appendUniform(t, l, 0, c3Feats(), core.C3)
	}
	after := l.Table().Profile(1, 7)
	if before != after {
		t.Fatalf("replay moved the profile:\n  %+v\n  %+v", before, after)
	}
	if w := after.Weight; w != 1 {
		t.Fatalf("weight %v after replays of one day, want 1", w)
	}
	// Out-of-order older days are ignored too.
	appendUniform(t, l, 2, c3Feats(), core.C3)
	mid := l.Table().Profile(1, 7)
	appendUniform(t, l, 1, c2Feats(), core.C2)
	if got := l.Table().Profile(1, 7); got != mid {
		t.Fatalf("stale day 1 after day 2 moved the profile")
	}
}

// TestEWDecayAndLabelHistogram checks the fold math directly: weights,
// EW means and the decayed label histogram after two distinct days.
func TestEWDecayAndLabelHistogram(t *testing.T) {
	cfg := testConfig(1)
	cfg.Beta = 0.5
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	f3, f2 := c3Feats(), c2Feats()
	appendUniform(t, l, 0, f3, core.C3)
	appendUniform(t, l, 1, f2, core.C2)
	p := l.Table().Profile(0, 0)
	if math.Abs(p.Weight-1.5) > 1e-12 {
		t.Fatalf("weight %v, want 1.5", p.Weight)
	}
	wantNArr := f3.NArr + (f2.NArr-f3.NArr)/1.5
	if math.Abs(p.NArr-wantNArr) > 1e-9 {
		t.Fatalf("NArr %v, want %v", p.NArr, wantNArr)
	}
	if math.Abs(p.LabelW[core.C3]-0.5) > 1e-12 || math.Abs(p.LabelW[core.C2]-1) > 1e-12 {
		t.Fatalf("label histogram %v", p.LabelW)
	}
	// The newer day outweighs the decayed older one.
	fc, _ := l.Table().Forecast(0, testGrid().Start)
	if fc.Label != core.C2 {
		t.Fatalf("label %v, want C2 (newer day wins)", fc.Label)
	}

	// A day gap decays twice: append day 3 (gap 2 from day 1).
	appendUniform(t, l, 3, f2, core.C2)
	p = l.Table().Profile(0, 0)
	want := 1.5*0.25 + 1
	if math.Abs(p.Weight-want) > 1e-12 {
		t.Fatalf("weight %v after gap-2 fold, want %v", p.Weight, want)
	}
}

func TestObserveResultSpotMismatch(t *testing.T) {
	l, err := Open(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	res := &core.Result{Spots: make([]core.SpotAnalysis, 2)}
	if err := l.ObserveResult(0, res); err == nil {
		t.Fatal("spot-count mismatch accepted")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("zero grid accepted")
	}
	cfg := testConfig(2)
	cfg.Thresholds = cfg.Thresholds[:1]
	if _, err := Open(cfg); err == nil {
		t.Fatal("threshold/spot mismatch accepted")
	}
}

func TestClosedLearner(t *testing.T) {
	l, err := Open(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	appendUniform(t, l, 0, c3Feats(), core.C3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
	err = l.AppendSlots(1, 0, 1, func(_, _ int) (core.SlotFeatures, core.QueueType) {
		return core.SlotFeatures{}, core.Unidentified
	})
	if err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	// Reads keep serving the final table.
	if fc, ok := l.Table().Forecast(0, testGrid().Start); !ok || fc.Label != core.C3 {
		t.Fatalf("closed learner read: ok=%v label=%v", ok, fc.Label)
	}
}
