package forecast

import (
	"fmt"

	"taxiqueue/internal/core"
	"taxiqueue/internal/history"
)

// BackfillHistory folds every recorded day of the history store into the
// profiles, ascending, then flushes. Per-cell day watermarks make the
// fold idempotent, so seeding an already-partially-learned table (the
// restart path: recover a profile snapshot, then backfill whatever
// history recorded since) only applies the missing days — the profile
// table converges to the same state as learning online the whole time.
func (l *Learner) BackfillHistory(h *history.Store) error {
	if h.Spots() != l.cfg.Spots {
		return fmt.Errorf("forecast: backfill: history has %d spots, learner has %d",
			h.Spots(), l.cfg.Spots)
	}
	slots := l.cfg.Grid.Slots
	for _, day := range h.Days() {
		wm := h.Watermark(day)
		if wm <= 0 {
			continue
		}
		// One Series call per spot covers the day's final prefix; unstored
		// slots come back synthesized-empty, exactly what the live path
		// would have appended.
		bySpot := make([][]history.Point, l.cfg.Spots)
		for spot := 0; spot < l.cfg.Spots; spot++ {
			pts := h.Series(spot, h.TimeOf(day, 0), h.TimeOf(day, wm))
			if len(pts) != wm {
				return fmt.Errorf("forecast: backfill day %d spot %d: %d points below watermark %d",
					day, spot, len(pts), wm)
			}
			bySpot[spot] = pts
		}
		err := l.AppendSlots(day, 0, min(wm, slots), func(spot, slot int) (core.SlotFeatures, core.QueueType) {
			p := bySpot[spot][slot]
			return p.Feats, p.Label
		})
		if err != nil {
			return err
		}
	}
	return l.Flush()
}
