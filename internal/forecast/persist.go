package forecast

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout. Profiles live in generation files fc-<gen>.fp:
//
//	magic   "TQFCST1\n" (8 bytes)
//	stamp   uvarint slots, uvarint slotLen ns, uvarint nspots,
//	        grid start UnixNano (8 bytes LE), Beta (float64 LE) — a
//	        learner may only recover files written under its exact
//	        configuration
//	frame   4-byte LE payload length, 4-byte LE CRC32 (IEEE), payload
//
// The payload is the whole cell matrix in (spot, slot) order: per cell a
// uvarint lastDay+1 (0 = never observed), and for observed cells the ten
// profile float64s (Weight, NArr, NDep, WaitSec, TDepSec, QLen,
// LabelW[0..4]) little-endian.
//
// Unlike the history store's append-only block log, a profile table is
// small (spots × slots × ~85 bytes) and every fold rewrites means in
// place, so durability is snapshot-shaped: each Flush writes the complete
// table as ONE frame into a FRESH generation and removes the superseded
// generations on success. A write/sync fault abandons the new generation
// (counted, removed best-effort) and keeps the previous one — the learner
// stays dirty and the next Flush retries. Recovery walks generations
// newest-first and keeps the first clean one; damaged files are removed
// and counted. A recovered table may therefore lag the in-memory state it
// was snapshotted from — that is fine, because profiles are a pure
// idempotent fold over the history store's closed slots, so a
// BackfillHistory after Open converges to the fault-free state.
const (
	fcMagic      = "TQFCST1\n"
	maxFrameSize = 1 << 30
)

var errTorn = errors.New("forecast: torn file")

func genFileName(gen int) string { return fmt.Sprintf("fc-%d.fp", gen) }

// genOf parses fc-<gen>.fp; ok is false for anything else.
func genOf(name string) (int, bool) {
	if !strings.HasPrefix(name, "fc-") || !strings.HasSuffix(name, ".fp") {
		return 0, false
	}
	n, err := strconv.Atoi(name[len("fc-") : len(name)-len(".fp")])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// headerBytes renders magic + config stamp.
func (l *Learner) headerBytes() []byte {
	buf := make([]byte, 0, 48)
	buf = append(buf, fcMagic...)
	buf = binary.AppendUvarint(buf, uint64(l.cfg.Grid.Slots))
	buf = binary.AppendUvarint(buf, uint64(l.cfg.Grid.SlotLen))
	buf = binary.AppendUvarint(buf, uint64(l.cfg.Spots))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.cfg.Grid.Start.UnixNano()))
	buf = appendF64(buf, l.cfg.Beta)
	return buf
}

// payloadBytes encodes the whole cell matrix.
func (l *Learner) payloadBytes() []byte {
	buf := make([]byte, 0, len(l.cells)*l.cfg.Grid.Slots*88)
	for spot := range l.cells {
		for j := range l.cells[spot] {
			c := &l.cells[spot][j]
			if c.lastDay < 0 {
				buf = binary.AppendUvarint(buf, 0)
				continue
			}
			buf = binary.AppendUvarint(buf, uint64(c.lastDay)+1)
			p := &c.p
			buf = appendF64(buf, p.Weight)
			buf = appendF64(buf, p.NArr)
			buf = appendF64(buf, p.NDep)
			buf = appendF64(buf, p.WaitSec)
			buf = appendF64(buf, p.TDepSec)
			buf = appendF64(buf, p.QLen)
			for i := range p.LabelW {
				buf = appendF64(buf, p.LabelW[i])
			}
		}
	}
	return buf
}

func frameBytes(payload []byte) []byte {
	buf := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// persistLocked snapshots the table into a fresh generation when dirty.
// Failure keeps the previous generation and the dirty bit — the next
// Flush retries; reads never care.
func (l *Learner) persistLocked() {
	if l.cfg.Dir == "" || !l.dirty {
		return
	}
	gen := l.gen
	l.gen++
	name := filepath.Join(l.cfg.Dir, genFileName(gen))
	if !l.writeGen(name) {
		l.met.persistErrs.Inc()
		_ = os.Remove(name) // best effort; recovery skips damaged files anyway
		return
	}
	l.dirty = false
	l.met.persists.Inc()
	// Superseded generations go away; a survivor is harmless (older gen,
	// recovery prefers the newest clean one).
	ents, err := os.ReadDir(l.cfg.Dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if g, ok := genOf(e.Name()); ok && g != gen {
			_ = l.cfg.FS.Remove(filepath.Join(l.cfg.Dir, e.Name()))
		}
	}
}

// writeGen writes one complete generation file through the FS seam.
func (l *Learner) writeGen(name string) bool {
	f, err := l.cfg.FS.Create(name)
	if err != nil {
		return false
	}
	hdr := l.headerBytes()
	frame := frameBytes(l.payloadBytes())
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		return false
	}
	if _, err := f.Write(frame); err != nil {
		_ = f.Close()
		return false
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return false
	}
	if err := f.Close(); err != nil {
		return false
	}
	l.met.bytes.Set(int64(len(hdr) + len(frame)))
	return true
}

// recover loads the newest clean generation under cfg.Dir. Damaged
// generations (torn header, bad frame length/CRC, short payload) are
// removed and counted, and the next-older one is tried; an empty table is
// the final fallback. A complete header stamped with a different
// configuration is a hard error. Reads and repairs use the real
// filesystem — only the write path goes through the fault-injectable
// cfg.FS, mirroring the WAL and the history store.
func (l *Learner) recover() error {
	ents, err := os.ReadDir(l.cfg.Dir)
	if err != nil {
		return fmt.Errorf("forecast: recover: %w", err)
	}
	gens := make([]int, 0, len(ents))
	for _, e := range ents {
		if g, ok := genOf(e.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gens)))
	if len(gens) > 0 {
		l.gen = gens[0] + 1
	}
	for _, g := range gens {
		name := filepath.Join(l.cfg.Dir, genFileName(g))
		data, err := os.ReadFile(name)
		if err != nil {
			return fmt.Errorf("forecast: recover %s: %w", name, err)
		}
		err = l.recoverFile(name, data)
		if err == nil {
			l.met.bytes.Set(int64(len(data)))
			return nil
		}
		if !errors.Is(err, errTorn) {
			return err
		}
		_ = os.Remove(name)
		l.met.truncations.Inc()
	}
	return nil
}

// recoverFile parses one generation file into the cells. Returns errTorn
// for any damage, a hard error for a config mismatch.
func (l *Learner) recoverFile(name string, data []byte) error {
	if len(data) < len(fcMagic) {
		return errTorn // torn creation
	}
	if string(data[:len(fcMagic)]) != fcMagic {
		return fmt.Errorf("forecast: %s: not a forecast profile file", name)
	}
	r := &byteReader{buf: data, off: len(fcMagic)}
	slots := r.uvarint()
	slotLen := r.uvarint()
	nspots := r.uvarint()
	start := r.u64()
	beta := r.f64()
	if r.err != nil {
		return errTorn // torn header
	}
	if int(slots) != l.cfg.Grid.Slots ||
		int64(slotLen) != int64(l.cfg.Grid.SlotLen) ||
		int(nspots) != l.cfg.Spots ||
		int64(start) != l.cfg.Grid.Start.UnixNano() ||
		math.Float64bits(beta) != math.Float64bits(l.cfg.Beta) {
		return fmt.Errorf("forecast: %s: config mismatch (written under a different grid/spots/beta)", name)
	}
	if r.off+8 > len(data) {
		return errTorn
	}
	plen := binary.LittleEndian.Uint32(data[r.off:])
	crc := binary.LittleEndian.Uint32(data[r.off+4:])
	if plen > maxFrameSize || r.off+8+int(plen) != len(data) {
		return errTorn
	}
	payload := data[r.off+8:]
	if crc32.ChecksumIEEE(payload) != crc {
		return errTorn
	}
	pr := &byteReader{buf: payload}
	cells := make([][]cell, l.cfg.Spots)
	for spot := range cells {
		row := make([]cell, l.cfg.Grid.Slots)
		for j := range row {
			day := pr.uvarint()
			if day == 0 {
				row[j].lastDay = -1
				continue
			}
			row[j].lastDay = int(day) - 1
			p := &row[j].p
			p.Weight = pr.f64()
			p.NArr = pr.f64()
			p.NDep = pr.f64()
			p.WaitSec = pr.f64()
			p.TDepSec = pr.f64()
			p.QLen = pr.f64()
			for i := range p.LabelW {
				p.LabelW[i] = pr.f64()
			}
		}
		cells[spot] = row
	}
	if pr.err != nil || pr.off != len(payload) {
		return errTorn // CRC passed but shape is wrong — treat as damage
	}
	l.cells = cells
	return nil
}

// byteReader is a cursor over an encoded buffer; the first failure sticks.
type byteReader struct {
	buf []byte
	off int
	err error
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = errTorn
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.err = errTorn
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *byteReader) f64() float64 { return math.Float64frombits(r.u64()) }
