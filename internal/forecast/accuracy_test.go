package forecast

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"taxiqueue/internal/core"
)

// dayMatrix is one simulated day's ground truth: per (spot, slot) the
// closed features and the engine label.
type dayMatrix struct {
	feats  [][]core.SlotFeatures // [spot][slot]
	labels [][]core.QueueType
}

// simDays generates a multi-day replay with a per-spot daily shape plus
// seeded day-to-day noise — the regime the empirical forecaster must
// handle: standing taxi queues in the evening (λ·t̄dep ≥ 1, where M/M/c
// has no stationary answer), a busy stable midday, and quiet nights.
// Labels come from core.Classify, so ground truth is exactly what the
// engine would have recorded for those features.
func simDays(nspots, slots, ndays int, seed int64, th core.Thresholds) []dayMatrix {
	rng := rand.New(rand.NewSource(seed))
	noise := func(scale float64) float64 { return 1 + scale*(2*rng.Float64()-1) }
	days := make([]dayMatrix, ndays)
	for d := range days {
		m := dayMatrix{
			feats:  make([][]core.SlotFeatures, nspots),
			labels: make([][]core.QueueType, nspots),
		}
		for spot := 0; spot < nspots; spot++ {
			fs := make([]core.SlotFeatures, slots)
			for j := range fs {
				// Phase shift per spot so profiles differ across spots.
				h := (float64(j)/2 + float64(spot)) // hour of day, roughly
				switch {
				case h >= 17 && h < 22: // evening: saturated taxi queue (C3-ish)
					fs[j] = core.SlotFeatures{
						TWait: time.Duration(12 * noise(0.25) * float64(time.Minute)),
						NArr:  10 * noise(0.3),
						QLen:  3.5 * noise(0.3),
						TDep:  time.Duration(3 * noise(0.25) * float64(time.Minute)),
						NDep:  8 * noise(0.3),
					}
				case h >= 9 && h < 15: // midday: passengers consuming taxis (C2-ish)
					fs[j] = core.SlotFeatures{
						TWait: time.Duration(40 * noise(0.3) * float64(time.Second)),
						NArr:  20 * noise(0.3),
						QLen:  0.4 * noise(0.4),
						TDep:  time.Duration(25 * noise(0.3) * float64(time.Second)),
						NDep:  60 * noise(0.3),
					}
				case h >= 2 && h < 6: // dead of night: nothing
					fs[j] = core.SlotFeatures{}
				default: // shoulder: sparse long waits (C4-ish)...
					fs[j] = core.SlotFeatures{
						TWait: time.Duration(9 * noise(0.3) * float64(time.Minute)),
						NArr:  2 * noise(0.5),
						QLen:  0.5 * noise(0.4),
						TDep:  time.Duration(5 * noise(0.4) * float64(time.Minute)),
						NDep:  2 * noise(0.5),
					}
					// ...except some days the slot is simply dead. This is
					// the day-to-day label volatility: persistence copies
					// yesterday's flip, the profile learns the modal label.
					if rng.Float64() < 0.2 {
						fs[j] = core.SlotFeatures{}
					}
				}
			}
			m.feats[spot] = fs
			m.labels[spot] = core.Classify(fs, th)
		}
		days[d] = m
	}
	return days
}

// TestForecastBeatsPersistenceBaseline is the accuracy property test: on
// a replayed simulated multi-day feed, each day d is forecast from ONLY
// days < d (fold-after-evaluate), and the profile forecaster must beat
// the persistence baseline "tomorrow = today" on both label error rate
// and queue-length MAE, with the label error bounded.
func TestForecastBeatsPersistenceBaseline(t *testing.T) {
	const (
		nspots = 4
		ndays  = 9
		warmup = 2 // days before scoring starts (baseline needs day d-1 anyway)
	)
	cfg := testConfig(nspots)
	th := testThresholds()
	grid := cfg.Grid
	days := simDays(nspots, grid.Slots, ndays, 11, th)

	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var (
		fcLabelErr, baseLabelErr int
		fcAbsQ, baseAbsQ         float64
		cells                    int
	)
	dayLen := time.Duration(grid.Slots) * grid.SlotLen
	for d := 0; d < ndays; d++ {
		if d >= warmup {
			tbl := l.Table()
			for spot := 0; spot < nspots; spot++ {
				for j := 0; j < grid.Slots; j++ {
					at := grid.Start.Add(time.Duration(d)*dayLen + time.Duration(j)*grid.SlotLen)
					fc, ok := tbl.Forecast(spot, at)
					if !ok {
						t.Fatalf("day %d spot %d slot %d: forecast not ok", d, spot, j)
					}
					if fc.Source == SourceNone {
						t.Fatalf("day %d spot %d slot %d: unobserved after %d folded days", d, spot, j, d)
					}
					truth := days[d]
					yesterday := days[d-1]
					if fc.Label != truth.labels[spot][j] {
						fcLabelErr++
					}
					if yesterday.labels[spot][j] != truth.labels[spot][j] {
						baseLabelErr++
					}
					fcAbsQ += math.Abs(fc.QLen - truth.feats[spot][j].QLen)
					baseAbsQ += math.Abs(yesterday.feats[spot][j].QLen - truth.feats[spot][j].QLen)
					cells++
				}
			}
		}
		// Fold the day only AFTER forecasting it: day d was predicted from
		// strictly prior days' profiles.
		truth := days[d]
		err := l.AppendSlots(d, 0, grid.Slots, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
			return truth.feats[spot][slot], truth.labels[spot][slot]
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	fcRate := float64(fcLabelErr) / float64(cells)
	baseRate := float64(baseLabelErr) / float64(cells)
	fcMAE := fcAbsQ / float64(cells)
	baseMAE := baseAbsQ / float64(cells)
	t.Logf("cells=%d  label error: forecast %.3f vs persistence %.3f  |  QLen MAE: forecast %.3f vs persistence %.3f",
		cells, fcRate, baseRate, fcMAE, baseMAE)

	if fcRate >= baseRate {
		t.Errorf("forecast label error %.3f not better than persistence baseline %.3f", fcRate, baseRate)
	}
	if fcMAE >= baseMAE {
		t.Errorf("forecast QLen MAE %.3f not better than persistence baseline %.3f", fcMAE, baseMAE)
	}
	// Bounded error, not just relative: the EW profile of a ±30%-noise
	// daily shape must stay close to the truth.
	if fcRate > 0.15 {
		t.Errorf("forecast label error %.3f above the 15%% bound", fcRate)
	}
	if fcMAE > 1.0 {
		t.Errorf("forecast QLen MAE %.3f above the 1.0 bound", fcMAE)
	}
}
