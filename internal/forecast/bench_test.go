package forecast

import (
	"testing"
	"time"

	"taxiqueue/internal/core"
)

// benchLearner seeds a learner shaped like the real deployment: the
// simulated spot count, a week of folded days, mixed regimes.
func benchLearner(b *testing.B, nspots int) *Learner {
	b.Helper()
	cfg := testConfig(nspots)
	l, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f3, f2 := c3Feats(), c2Feats()
	for day := 0; day < 7; day++ {
		err := l.AppendSlots(day, 0, cfg.Grid.Slots, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
			if (spot+slot)%2 == 0 {
				return f3, core.C3
			}
			return f2, core.C2
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return l
}

// BenchmarkForecast is one profile-table evaluation — the unit of work
// behind /forecast and each spot ranked by the ETA-aware /recommend.
func BenchmarkForecast(b *testing.B) {
	l := benchLearner(b, 64)
	defer l.Close()
	tbl := l.Table()
	at := testGrid().Start.Add(10*24*time.Hour + 9*time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc, ok := tbl.Forecast(i%64, at.Add(time.Duration(i%48)*30*time.Minute))
		if !ok || fc.Source == SourceNone {
			b.Fatal("benchmark forecast missed")
		}
	}
}

// BenchmarkAppendDay folds one full day across every spot — the write
// amplification each watermark-advance batch pays.
func BenchmarkAppendDay(b *testing.B) {
	l := benchLearner(b, 64)
	defer l.Close()
	f3 := c3Feats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := l.AppendSlots(7+i, 0, l.Grid().Slots, func(_, _ int) (core.SlotFeatures, core.QueueType) {
			return f3, core.C3
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
