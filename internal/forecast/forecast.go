// Package forecast answers "what will the queue be at 18:30?" — ROADMAP
// item 3. The paper's engine labels only the *current* slot; this package
// learns per-(spot, slot-of-day) arrival/departure-rate profiles from
// closed slots and evaluates them at any future instant, following the
// related queueing work (He's airport M/M/c decision models, Luo et al.'s
// probabilistic queue-length estimation from periodic snapshots).
//
// A profile is an exponentially-weighted (over days) summary of every
// final observation of one slot-of-day at one spot: mean arrival count,
// departure count, wait, departure interval, Little's-Law queue length,
// and a weighted label histogram. Day d's closed slot j folds into
// profile (spot, j) exactly once (a per-cell day watermark makes replays
// and racing appenders idempotent, mirroring internal/history), so the
// learner can sit directly on the ingest snapshot-publish seam via the
// same AppendSlots contract the history store implements.
//
// Forecasting is a pure function of an immutable profile Table: when the
// learned rate regime is stable (λ below the service capacity implied by
// the departure interval, with enough observed days behind it) the wait
// and queue length come from the M/M/c Erlang-C model in
// internal/queueing; otherwise — a saturated taxi stand is exactly the
// regime where M/M/c has no stationary answer — the empirical per-slot
// history answers directly. Tables are published behind an atomic pointer
// (RCU style, like every read path in this repo), so queries take no lock
// and never see a half-applied day.
//
// Durability rides the internal/store FS seam: each Flush snapshots the
// whole profile table into a fresh CRC-framed generation file, so the
// chaos harness's short writes, fsync errors and silently torn tails
// apply unchanged. Recovery keeps the newest clean generation and counts
// the damage; because profiles are a pure fold over the history store's
// closed slots, a recovered (possibly older or empty) table plus a
// BackfillHistory converges to the fault-free state.
package forecast

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/obs"
	"taxiqueue/internal/queueing"
	"taxiqueue/internal/store"
)

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("forecast: learner closed")

// numLabels is the label-histogram width (Unidentified..C4).
const numLabels = int(core.C4) + 1

// Config parameterizes a Learner.
type Config struct {
	// Grid is the slot partition profiles are laid out over; day d, slot j
	// of the learned feed covers Grid.Start + d·(Slots·SlotLen) + j·SlotLen,
	// and every day folds into the same Slots slot-of-day profiles.
	// Required.
	Grid core.SlotGrid
	// Spots is how many queue spots the learner tracks. Required (>0 to be
	// useful, 0 allowed for a spotless bootstrap).
	Spots int
	// Thresholds are the per-spot QCD thresholds, indexed like the spot
	// set; needed to synthesize the label of a never-observed cell exactly
	// like the batch engine and the history store do. Required, len ==
	// Spots.
	Thresholds []core.Thresholds
	// Beta is the per-day exponential decay: folding a new day multiplies
	// every older day's weight by Beta^gap. 0.7 when 0 — a week of history
	// carries ~92% of the total weight.
	Beta float64
	// MinModelWeight is the effective observed-day weight below which the
	// M/M/c model is not trusted and forecasts stay empirical; 2 when 0.
	MinModelWeight float64
	// MaxModelRho is the utilization ceiling for the model path: the
	// stationary Erlang-C answer diverges as ρ→1, and the learned rates
	// are noisy means, so a near-saturated regime answers empirically
	// even when nominally stable; 0.85 when 0.
	MaxModelRho float64
	// Servers is the M/M/c server count — the loading bays of He's airport
	// model; 2 when 0.
	Servers int
	// Dir enables durability: profile snapshots persist as generation
	// files under it. Empty keeps the learner memory-only.
	Dir string
	// FS is the filesystem writes go through; store.OS when nil. The chaos
	// harness injects disk faults here. Reads and repairs use the real
	// filesystem, like the WAL and the history store.
	FS store.FS
	// Metrics is the registry the learner's collectors live in; a private
	// registry when nil.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Beta == 0 {
		c.Beta = 0.7
	}
	if c.MinModelWeight == 0 {
		c.MinModelWeight = 2
	}
	if c.MaxModelRho == 0 {
		c.MaxModelRho = 0.85
	}
	if c.Servers == 0 {
		c.Servers = 2
	}
	if c.FS == nil {
		c.FS = store.OS
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// SlotProfile is one (spot, slot-of-day) learned profile: exponentially-
// weighted means over every day whose slot closed, plus the weighted label
// histogram. The zero value means "never observed".
type SlotProfile struct {
	// Weight is the effective number of observed days (Σ Beta^age); it is
	// both the normalizer of the means and the forecast's confidence.
	Weight float64
	// NArr/NDep are the EW mean per-slot arrival and departure counts
	// (amplified, like the features they fold).
	NArr, NDep float64
	// WaitSec/TDepSec are the EW mean t̄wait and t̄dep in seconds.
	WaitSec, TDepSec float64
	// QLen is the EW mean Little's-Law queue length L̄.
	QLen float64
	// LabelW is the EW label histogram; the forecast label is its argmax.
	LabelW [numLabels]float64
}

// fold merges one day's observation into the profile; gap is the number
// of days since the last fold (≥ 1).
func (p *SlotProfile) fold(f core.SlotFeatures, label core.QueueType, gap int, beta float64) {
	decay := math.Pow(beta, float64(gap))
	p.Weight = p.Weight*decay + 1
	w := 1 / p.Weight
	p.NArr += (f.NArr - p.NArr) * w
	p.NDep += (f.NDep - p.NDep) * w
	p.WaitSec += (f.TWait.Seconds() - p.WaitSec) * w
	p.TDepSec += (f.TDep.Seconds() - p.TDepSec) * w
	p.QLen += (f.QLen - p.QLen) * w
	for i := range p.LabelW {
		p.LabelW[i] *= decay
	}
	if int(label) < numLabels {
		p.LabelW[label]++
	}
}

// label returns the histogram argmax (ties break toward the lower label
// index, deterministically).
func (p *SlotProfile) label() core.QueueType {
	best, bestW := 0, p.LabelW[0]
	for i := 1; i < numLabels; i++ {
		if p.LabelW[i] > bestW {
			best, bestW = i, p.LabelW[i]
		}
	}
	return core.QueueType(best)
}

// cell is one (spot, slot) learner cell: the profile plus the day
// watermark that makes folds idempotent.
type cell struct {
	lastDay int // newest day folded in; -1 when never observed
	p       SlotProfile
}

// Source says which estimator produced a forecast.
type Source uint8

const (
	// SourceNone: the slot has never been observed; the label is the
	// spot's synthesized empty context and the numbers are zero.
	SourceNone Source = iota
	// SourceEmpirical: the EW per-slot history answered directly (the rate
	// regime was unstable, under-observed, or rate-free).
	SourceEmpirical
	// SourceModel: the M/M/c Erlang-C model answered from the learned
	// rates.
	SourceModel
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceModel:
		return "model"
	case SourceEmpirical:
		return "empirical"
	default:
		return "none"
	}
}

// Forecast is the expected queue state of one spot at one future instant.
type Forecast struct {
	// Time is the start of the slot the instant falls in; Day/Slot its
	// grid coordinates (Slot is the slot-of-day the profile keys on).
	Time time.Time
	Day  int
	Slot int
	// Label is the expected queue context (EW-histogram mode).
	Label core.QueueType
	// QLen is the expected FREE-taxi queue length: the EW empirical mean
	// of the per-slot Little's-Law L̄.
	QLen float64
	// Wait is the expected wait time — Erlang-C when Source is Model,
	// the EW empirical mean wait otherwise.
	Wait time.Duration
	// Source says which estimator produced Wait.
	Source Source
	// Weight is the effective number of observed days behind the answer.
	Weight float64
}

// Table is one immutable published profile table. Forecasts are pure
// functions of it, so they inherit the repo's lock-free read path: load
// the table once, read plain memory.
type Table struct {
	grid     core.SlotGrid
	dayLen   time.Duration
	slotSec  float64
	servers  int
	minModel float64
	maxRho   float64
	profiles [][]SlotProfile // [spot][slot-of-day]
	empty    []core.QueueType
	met      *metrics // nil-safe; query latency only
}

// Spots returns how many queue spots the table profiles.
func (t *Table) Spots() int { return len(t.profiles) }

// Slots returns the slot-of-day count.
func (t *Table) Slots() int { return t.grid.Slots }

// Profile returns the (spot, slot-of-day) profile; the zero profile for
// out-of-range indexes.
func (t *Table) Profile(spot, slot int) SlotProfile {
	if spot < 0 || spot >= len(t.profiles) || slot < 0 || slot >= t.grid.Slots {
		return SlotProfile{}
	}
	return t.profiles[spot][slot]
}

// Locate maps an instant onto (day, slot-of-day); ok is false before the
// grid start. Future days are fine — that is the point.
func (t *Table) Locate(at time.Time) (day, slot int, ok bool) {
	d := at.Sub(t.grid.Start)
	if d < 0 {
		return 0, 0, false
	}
	return int(d / t.dayLen), int((d % t.dayLen) / t.grid.SlotLen), true
}

// Forecast evaluates spot's expected queue state at the instant at; ok is
// false for an out-of-range spot or an instant before the grid start.
//
// A never-observed slot answers SourceNone with the spot's synthesized
// empty context. Otherwise the empirical EW means are the baseline, and
// when the learned rate regime is stable — λ = NArr/slotLen comfortably
// below the service capacity 1/t̄dep, with at least MinModelWeight
// observed days — the M/M/c Erlang-C queueing delay replaces the
// empirical wait.
func (t *Table) Forecast(spot int, at time.Time) (Forecast, bool) {
	if t.met != nil {
		t0 := time.Now()
		defer t.met.qForecast.Since(t0)
	}
	if spot < 0 || spot >= len(t.profiles) {
		return Forecast{}, false
	}
	day, slot, ok := t.Locate(at)
	if !ok {
		return Forecast{}, false
	}
	f := Forecast{
		Time: t.grid.Start.Add(time.Duration(day)*t.dayLen + time.Duration(slot)*t.grid.SlotLen),
		Day:  day, Slot: slot,
	}
	p := t.profiles[spot][slot]
	if p.Weight == 0 {
		f.Label = t.empty[spot]
		return f, true
	}
	f.Label = p.label()
	f.Weight = p.Weight
	f.QLen = p.QLen
	f.Wait = time.Duration(p.WaitSec * float64(time.Second))
	f.Source = SourceEmpirical

	lambda := p.NArr / t.slotSec
	if p.TDepSec <= 0 || lambda <= 0 || p.Weight < t.minModel {
		return f, true
	}
	// t̄dep is the mean interval between consecutive departures, so the
	// stand's total service capacity is 1/t̄dep, split across the servers.
	q := queueing.MMc{Lambda: lambda, Mu: 1 / (p.TDepSec * float64(t.servers)), Servers: t.servers}
	// Beyond maxRho the stationary answer diverges (Lq ~ 1/(1-ρ)) while
	// the learned rates carry day-to-day noise — the empirical history is
	// the better estimator near saturation, not a blown-up Erlang-C tail.
	if !q.Stable() || q.Rho() > t.maxRho {
		return f, true
	}
	wq, err := q.Wq()
	if err != nil {
		return f, true
	}
	// The model refines the WAIT (Erlang-C queueing delay); the queue
	// length stays the EW empirical mean — the paper's L̄ is itself a
	// per-slot Little's-Law estimate, and the learned mean of that is the
	// best estimator of tomorrow's value.
	f.Wait, f.Source = wq, SourceModel
	return f, true
}

// Learner folds closed slots into per-(spot, slot-of-day) profiles and
// publishes immutable Tables. Appends are safe for concurrent use
// (serialized internally); Table loads are lock-free.
type Learner struct {
	cfg     Config
	slotSec float64
	dayLen  time.Duration
	met     *metrics

	pub atomic.Pointer[Table]

	mu     sync.Mutex
	cells  [][]cell // [spot][slot-of-day]
	dirty  bool     // profile state newer than the last durable snapshot
	gen    int      // next generation number to create
	closed bool
}

// Open builds a learner from cfg, recovering the newest clean profile
// snapshot under cfg.Dir (tolerantly: a torn or corrupt generation is
// removed and counted, older generations are tried, and an empty table is
// the final fallback — BackfillHistory re-seeds it).
func Open(cfg Config) (*Learner, error) {
	cfg = cfg.withDefaults()
	if cfg.Grid.Slots == 0 {
		return nil, errors.New("forecast: Grid must be set")
	}
	if len(cfg.Thresholds) != cfg.Spots {
		return nil, fmt.Errorf("forecast: %d spots but %d thresholds", cfg.Spots, len(cfg.Thresholds))
	}
	l := &Learner{
		cfg:     cfg,
		slotSec: cfg.Grid.SlotLen.Seconds(),
		dayLen:  time.Duration(cfg.Grid.Slots) * cfg.Grid.SlotLen,
		met:     newMetrics(cfg.Metrics),
		cells:   make([][]cell, cfg.Spots),
	}
	for spot := range l.cells {
		row := make([]cell, cfg.Grid.Slots)
		for j := range row {
			row[j].lastDay = -1
		}
		l.cells[spot] = row
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("forecast: dir: %w", err)
		}
		if err := l.recover(); err != nil {
			return nil, err
		}
	}
	l.publishLocked()
	return l, nil
}

// Grid returns the learner's slot grid.
func (l *Learner) Grid() core.SlotGrid { return l.cfg.Grid }

// Spots returns how many queue spots the learner tracks.
func (l *Learner) Spots() int { return l.cfg.Spots }

// Table returns the current published profile table: one atomic load,
// never nil after Open.
func (l *Learner) Table() *Table { return l.pub.Load() }

// publishLocked swaps in a fresh immutable table built from the cells.
func (l *Learner) publishLocked() {
	t := &Table{
		grid:     l.cfg.Grid,
		dayLen:   l.dayLen,
		slotSec:  l.slotSec,
		servers:  l.cfg.Servers,
		minModel: l.cfg.MinModelWeight,
		maxRho:   l.cfg.MaxModelRho,
		profiles: make([][]SlotProfile, len(l.cells)),
		empty:    make([]core.QueueType, len(l.cells)),
		met:      l.met,
	}
	for spot, row := range l.cells {
		ps := make([]SlotProfile, len(row))
		for j := range row {
			ps[j] = row[j].p
		}
		t.profiles[spot] = ps
		t.empty[spot] = core.Classify([]core.SlotFeatures{{}}, l.cfg.Thresholds[spot])[0]
	}
	l.pub.Store(t)
	l.met.weight.Set(int64(totalWeight(t)))
}

// totalWeight sums the effective observed-day weight across the table
// (the /metrics confidence gauge).
func totalWeight(t *Table) float64 {
	var w float64
	for _, row := range t.profiles {
		for j := range row {
			w += row[j].Weight
		}
	}
	return w
}

// AppendSlots folds slots [lo, hi) of one day into the profiles, reading
// each (spot, slot) closed context from at — the same contract
// internal/history implements, so a Learner plugs into the ingest
// service's History seam directly (or teed with the history store). A
// (spot, slot) cell folds each day at most once: re-appends of an
// already-folded day are no-ops, so WAL replays and racing appenders are
// exactly idempotent.
func (l *Learner) AppendSlots(day, lo, hi int, at func(spot, slot int) (core.SlotFeatures, core.QueueType)) error {
	if hi > l.cfg.Grid.Slots {
		hi = l.cfg.Grid.Slots
	}
	if lo < 0 {
		lo = 0
	}
	if day < 0 || lo >= hi {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	folded := 0
	for slot := lo; slot < hi; slot++ {
		for spot := range l.cells {
			c := &l.cells[spot][slot]
			if day <= c.lastDay {
				continue
			}
			f, label := at(spot, slot)
			gap := day - c.lastDay
			if c.lastDay < 0 {
				gap = 1
			}
			c.p.fold(f, label, gap, l.cfg.Beta)
			c.lastDay = day
			folded++
		}
	}
	l.met.appends.Inc()
	if folded > 0 {
		l.met.observes.Add(int64(folded))
		l.dirty = true
		l.publishLocked()
	}
	return nil
}

// ObserveResult folds every slot of one batch analysis pass as day's
// observation — the daily batch path into the learner, complementing the
// live AppendSlots hook. Flushes so the fold is durable.
func (l *Learner) ObserveResult(day int, res *core.Result) error {
	if len(res.Spots) != l.cfg.Spots {
		return fmt.Errorf("forecast: observe day %d: result has %d spots, learner has %d",
			day, len(res.Spots), l.cfg.Spots)
	}
	if err := l.AppendSlots(day, 0, l.cfg.Grid.Slots, res.Cell); err != nil {
		return err
	}
	return l.Flush()
}

// Flush persists the current profiles as a fresh generation snapshot and
// removes the superseded ones — the durability barrier the ingest service
// invokes at end of feed (via the History seam). Memory-only learners get
// a no-op.
func (l *Learner) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.persistLocked()
	return nil
}

// Close flushes and shuts the learner. Further appends return ErrClosed;
// reads keep serving the final published table.
func (l *Learner) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.persistLocked()
	l.closed = true
	return nil
}

// Stats is the learner's counter snapshot; every field reads the same
// registry collector /metrics renders.
type Stats struct {
	Appends     int64 `json:"appends"`      // AppendSlots batches applied
	Observes    int64 `json:"observes"`     // (spot, slot, day) cells folded
	Persists    int64 `json:"persists"`     // snapshot generations written
	PersistErrs int64 `json:"persist_errs"` // failed snapshot writes (old generation kept)
	Truncations int64 `json:"truncations"`  // recoveries that discarded a damaged generation
	Bytes       int64 `json:"bytes"`        // bytes of the current durable snapshot
	WeightFloor int64 `json:"weight"`       // Σ profile weight, floored (confidence gauge)
}

// Stats snapshots the collectors.
func (l *Learner) Stats() Stats {
	return Stats{
		Appends:     l.met.appends.Value(),
		Observes:    l.met.observes.Value(),
		Persists:    l.met.persists.Value(),
		PersistErrs: l.met.persistErrs.Value(),
		Truncations: l.met.truncations.Value(),
		Bytes:       l.met.bytes.Value(),
		WeightFloor: l.met.weight.Value(),
	}
}
