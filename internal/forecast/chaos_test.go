package forecast

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"taxiqueue/internal/chaos"
	"taxiqueue/internal/citymap"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/history"
)

// durableConfig is testConfig plus a tmpdir.
func durableConfig(t *testing.T, nspots int) Config {
	cfg := testConfig(nspots)
	cfg.Dir = t.TempDir()
	return cfg
}

// fillDays folds seeded pseudo-random days and returns the learner still
// open; the same (seed, days) always produces the same profile state.
func fillDays(t *testing.T, l *Learner, days int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for day := 0; day < days; day++ {
		feats := make([][]core.SlotFeatures, l.Spots())
		labels := make([][]core.QueueType, l.Spots())
		for spot := range feats {
			fs := make([]core.SlotFeatures, l.Grid().Slots)
			for j := range fs {
				if rng.Float64() < 0.5 {
					fs[j] = core.SlotFeatures{
						TWait: time.Duration(rng.Int63n(int64(15 * time.Minute))),
						NArr:  rng.Float64() * 40,
						QLen:  rng.Float64() * 5,
						TDep:  time.Duration(rng.Int63n(int64(5 * time.Minute))),
						NDep:  rng.Float64() * 50,
					}
				}
			}
			feats[spot] = fs
			labels[spot] = core.Classify(fs, testThresholds())
		}
		err := l.AppendSlots(day, 0, l.Grid().Slots, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
			return feats[spot][slot], labels[spot][slot]
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
}

// sameTables compares every profile cell of two learners exactly.
func sameTables(t *testing.T, a, b *Learner) {
	t.Helper()
	ta, tb := a.Table(), b.Table()
	if ta.Spots() != tb.Spots() || ta.Slots() != tb.Slots() {
		t.Fatalf("table shapes differ: %dx%d vs %dx%d", ta.Spots(), ta.Slots(), tb.Spots(), tb.Slots())
	}
	for spot := 0; spot < ta.Spots(); spot++ {
		for j := 0; j < ta.Slots(); j++ {
			if pa, pb := ta.Profile(spot, j), tb.Profile(spot, j); pa != pb {
				t.Fatalf("profile (%d, %d) differs:\n  %+v\n  %+v", spot, j, pa, pb)
			}
		}
	}
}

// TestKillRestartRecover: flush, drop the learner without Close (a kill),
// reopen — the recovered table must be bit-identical, and learning must
// continue from the per-cell day watermarks (a replay of an old day is
// still a no-op).
func TestKillRestartRecover(t *testing.T) {
	cfg := durableConfig(t, 5)
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillDays(t, l, 4, 42)
	// No Close: the last Flush is the durable image.

	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Truncations != 0 {
		t.Fatalf("clean image reopened with %d truncations", st.Truncations)
	}
	sameTables(t, l, r)

	// Replaying recorded days into the recovered learner must not move it.
	before := r.Table().Profile(2, 9)
	fillDays(t, r, 4, 42)
	if after := r.Table().Profile(2, 9); after != before {
		t.Fatalf("replay moved a recovered profile:\n  %+v\n  %+v", before, after)
	}
	// And a genuinely new day must still fold: day 9 after day 3 decays
	// the old weight by β^6 and adds 1.
	appendUniform(t, r, 9, c3Feats(), core.C3)
	want := before.Weight*math.Pow(0.7, 6) + 1
	if w := r.Table().Profile(2, 9).Weight; math.Abs(w-want) > 1e-9 {
		t.Fatalf("new day fold weight %v, want %v", w, want)
	}
	_ = l.Close()
}

// TestChaosWriteFaultsHeal hammers the snapshot path with short writes
// and fsync errors: failures must be counted, the previous generation
// must keep the state recoverable, and once the disk heals one Flush
// leaves a clean image that reopens bit-identical.
func TestChaosWriteFaultsHeal(t *testing.T) {
	faults := chaos.New(chaos.Config{Seed: 42, ShortWriteProb: 0.4, SyncErrProb: 0.3})
	cfg := durableConfig(t, 5)
	cfg.FS = faults.FS(nil)
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillDays(t, l, 5, 7) // flushes under fire; some will fail
	if l.Stats().PersistErrs == 0 {
		t.Fatal("no persist errors counted under 40% short-write probability")
	}

	faults.SetEnabled(false)
	if err := l.Flush(); err != nil { // heals: the owed snapshot lands
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Truncations != 0 {
		t.Fatalf("healed image reopened with %d truncations", st.Truncations)
	}
	sameTables(t, l, r)
}

// TestChaosSilentTornTail lets the disk lie (short write reported as
// success), kills, and reopens. A torn generation that stayed newest on
// disk must be discarded and counted; one superseded by a later clean
// flush is already gone — either way the reopen must succeed and an
// idempotent replay of the feed must converge to the fault-free state.
func TestChaosSilentTornTail(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	tornSeen := false
	for seed := int64(1); seed <= 8; seed++ {
		faults := chaos.New(chaos.Config{Seed: seed, SilentTornProb: 0.5})
		cfg := durableConfig(t, 4)
		cfg.FS = faults.FS(nil)
		l, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fillDays(t, l, 4, 13) // believes everything landed
		faults.SetEnabled(false)

		r, err := Open(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Stats().Truncations > 0 {
			tornSeen = true
		}
		// Whatever survived, an idempotent replay of the full feed
		// converges to the fault-free state.
		fillDays(t, r, 4, 13)
		clean, err := Open(durableConfig(t, 4))
		if err != nil {
			t.Fatal(err)
		}
		fillDays(t, clean, 4, 13)
		sameTables(t, r, clean)
		_ = l.Close()
		_ = r.Close()
		_ = clean.Close()
	}
	if !tornSeen {
		t.Fatal("no seed left a torn newest generation — the scenario never exercised recovery")
	}
}

// TestTearTailSweep plants deterministic torn tails of many sizes in the
// newest generation — mid-payload, inside the frame header, inside the
// file header — and reopens each: the damaged generation must be
// discarded and counted, and a BackfillHistory from the history store
// must restore the exact fault-free table.
func TestTearTailSweep(t *testing.T) {
	// Reference: a history store and a learner fed from it.
	hcfg := historyConfig(t, 4)
	h, err := history.Open(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	fillHistoryDays(t, h, 3, 99)

	cfg := durableConfig(t, 4)
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.BackfillHistory(h); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The durable image is one generation file; find it.
	ents, err := os.ReadDir(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	var genName string
	for _, e := range ents {
		if _, ok := genOf(e.Name()); ok {
			genName = e.Name()
		}
	}
	if genName == "" {
		t.Fatal("no generation file on disk after Close")
	}
	image, err := os.ReadFile(filepath.Join(cfg.Dir, genName))
	if err != nil {
		t.Fatal(err)
	}
	size := len(image)

	cuts := []int{1, 3, 17, 100, size / 3, size / 2, size - len(fcMagic) - 2, size - 3}
	for _, n := range cuts {
		if n <= 0 || n > size {
			continue
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, genName), image, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := chaos.TearTail(filepath.Join(dir, genName), n); err != nil {
			t.Fatal(err)
		}
		torn := cfg
		torn.Dir = dir
		r, err := Open(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", n, err)
		}
		if st := r.Stats(); st.Truncations != 1 {
			t.Fatalf("cut %d: %d truncations, want 1", n, st.Truncations)
		}
		// A profile table is a cache over history: re-seed and compare.
		if err := r.BackfillHistory(h); err != nil {
			t.Fatalf("cut %d: backfill: %v", n, err)
		}
		sameTables(t, r, l)

		// The repaired image must reopen clean and identical.
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := Open(torn)
		if err != nil {
			t.Fatalf("cut %d reopen: %v", n, err)
		}
		if st := r2.Stats(); st.Truncations != 0 {
			t.Fatalf("cut %d: repaired image reopened with %d truncations", n, st.Truncations)
		}
		sameTables(t, r2, l)
		r2.Close()
	}
}

// TestConfigMismatch: a complete snapshot written under a different
// configuration must be a hard error, not a silent truncation.
func TestConfigMismatch(t *testing.T) {
	cfg := durableConfig(t, 4)
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillDays(t, l, 2, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Spots = 3
	other.Thresholds = cfg.Thresholds[:3]
	if _, err := Open(other); err == nil {
		t.Fatal("spot-count mismatch opened without error")
	}
	beta := cfg
	beta.Beta = 0.9
	if _, err := Open(beta); err == nil {
		t.Fatal("beta mismatch opened without error")
	}
}

// historyConfig builds a history store config matching testConfig's grid
// and spot count.
func historyConfig(t *testing.T, nspots int) history.Config {
	spots := make([]core.QueueSpot, nspots)
	ths := make([]core.Thresholds, nspots)
	for i := range spots {
		spots[i] = core.QueueSpot{
			Pos:  geo.Point{Lat: 1.28 + 0.01*float64(i), Lon: 103.8},
			Zone: citymap.Central,
		}
		ths[i] = testThresholds()
	}
	return history.Config{
		Grid:       testGrid(),
		Spots:      spots,
		Thresholds: ths,
		Amplify:    core.PaperAmplification,
		Dir:        t.TempDir(),
	}
}

// fillHistoryDays records seeded days into the history store. Features
// must round-trip the store's bit-exact encoding, so they are drawn from
// the count-derivable shapes the encoder preserves exactly... simplest:
// whole-second durations and integral counts.
func fillHistoryDays(t *testing.T, h *history.Store, days int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	slotSec := h.Grid().SlotLen.Seconds()
	for day := 0; day < days; day++ {
		type rec struct {
			f core.SlotFeatures
			l core.QueueType
		}
		cells := make(map[[2]int]rec)
		for spot := 0; spot < h.Spots(); spot++ {
			for j := 0; j < h.Grid().Slots; j++ {
				if rng.Float64() < 0.5 {
					continue
				}
				f := core.SlotFeatures{
					TWait: time.Duration(1+rng.Int63n(900)) * time.Second,
					NArr:  float64(1 + rng.Intn(40)),
					TDep:  time.Duration(1+rng.Int63n(300)) * time.Second,
					NDep:  float64(1 + rng.Intn(50)),
				}
				f.QLen = f.TWait.Seconds() * (f.NArr / slotSec)
				l := core.Classify([]core.SlotFeatures{f}, testThresholds())[0]
				cells[[2]int{spot, j}] = rec{f, l}
			}
		}
		err := h.AppendSlots(day, 0, h.Grid().Slots, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
			if r, ok := cells[[2]int{spot, slot}]; ok {
				return r.f, r.l
			}
			return core.SlotFeatures{}, core.Unidentified
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestBackfillMatchesOnline: seeding a fresh learner from the history
// store must produce exactly the table an online learner built from the
// same feed — backfill and live are the same fold.
func TestBackfillMatchesOnline(t *testing.T) {
	h, err := history.Open(historyConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	fillHistoryDays(t, h, 3, 21)

	online, err := Open(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer online.Close()
	for _, day := range h.Days() {
		wm := h.Watermark(day)
		bySpot := make([][]history.Point, 4)
		for spot := 0; spot < 4; spot++ {
			bySpot[spot] = h.Series(spot, h.TimeOf(day, 0), h.TimeOf(day, wm))
		}
		err := online.AppendSlots(day, 0, wm, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
			return bySpot[spot][slot].Feats, bySpot[spot][slot].Label
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	seeded, err := Open(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer seeded.Close()
	if err := seeded.BackfillHistory(h); err != nil {
		t.Fatal(err)
	}
	sameTables(t, seeded, online)
}
