package citymap

import (
	"math"
	"testing"

	"taxiqueue/internal/geo"
)

func TestZoneOfPartition(t *testing.T) {
	// Every point in the island rectangle must resolve to exactly one zone
	// and that zone's rectangle (or the Central fallback strip) must make
	// geographic sense.
	for lat := Island.MinLat; lat <= Island.MaxLat; lat += 0.01 {
		for lon := Island.MinLon; lon <= Island.MaxLon; lon += 0.01 {
			p := geo.Point{Lat: lat, Lon: lon}
			z := ZoneOf(p)
			if int(z) >= NumZones {
				t.Fatalf("ZoneOf(%v) = %v out of range", p, z)
			}
		}
	}
}

func TestZoneOfKnownPoints(t *testing.T) {
	cases := []struct {
		p    geo.Point
		want Zone
	}{
		{geo.Point{Lat: 1.284, Lon: 103.851}, Central}, // Raffles Place
		{geo.Point{Lat: 1.304, Lon: 103.833}, Central}, // Orchard
		{geo.Point{Lat: 1.357, Lon: 103.988}, East},    // Changi
		{geo.Point{Lat: 1.350, Lon: 103.700}, West},    // Jurong-ish
		{geo.Point{Lat: 1.430, Lon: 103.840}, North},   // Yishun-ish
	}
	for _, c := range cases {
		if got := ZoneOf(c.p); got != c.want {
			t.Errorf("ZoneOf(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestZoneRectsInsideIsland(t *testing.T) {
	for z := Zone(0); int(z) < NumZones; z++ {
		r := ZoneRect(z)
		if !Island.Contains(geo.Point{Lat: r.MinLat, Lon: r.MinLon}) ||
			!Island.Contains(geo.Point{Lat: r.MaxLat, Lon: r.MaxLon}) {
			t.Errorf("zone %v rect %+v leaves the island", z, r)
		}
	}
}

func TestCentralZoneSmall(t *testing.T) {
	// §6.1.3: the central zone occupies ~6% of the total area.
	area := func(r geo.Rect) float64 {
		return (r.MaxLat - r.MinLat) * (r.MaxLon - r.MinLon)
	}
	frac := area(ZoneRect(Central)) / area(Island)
	if frac < 0.03 || frac > 0.12 {
		t.Errorf("central zone is %.1f%% of the island, want ~6%%", frac*100)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 1)
	b := Generate(42, 1)
	if len(a.Landmarks) != len(b.Landmarks) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Landmarks), len(b.Landmarks))
	}
	for i := range a.Landmarks {
		if a.Landmarks[i] != b.Landmarks[i] {
			t.Fatalf("landmark %d differs between equal-seed generations", i)
		}
	}
	c := Generate(43, 1)
	same := 0
	for i := range a.Landmarks {
		if i < len(c.Landmarks) && a.Landmarks[i].Pos == c.Landmarks[i].Pos {
			same++
		}
	}
	if same == len(a.Landmarks) {
		t.Fatal("different seeds produced identical cities")
	}
}

func TestGenerateCategoryMix(t *testing.T) {
	m := Generate(1, 1)
	if len(m.Landmarks) < 150 || len(m.Landmarks) > 210 {
		t.Fatalf("generated %d landmarks, want ~180", len(m.Landmarks))
	}
	counts := map[Category]int{}
	for _, lm := range m.Landmarks {
		counts[lm.Category]++
	}
	total := float64(len(m.Landmarks))
	// MRT & Bus should dominate at roughly half (Table 4: 48.3%).
	if frac := float64(counts[MRTBus]) / total; frac < 0.35 || frac > 0.60 {
		t.Errorf("MRT&Bus fraction = %.2f, want ~0.48", frac)
	}
	for c := Category(0); int(c) < NumCategories; c++ {
		if counts[c] == 0 {
			t.Errorf("category %v has no landmarks", c)
		}
	}
}

func TestGenerateZonePlacement(t *testing.T) {
	m := Generate(2, 1)
	for _, lm := range m.Landmarks {
		if ZoneOf(lm.Pos) != lm.Zone {
			t.Errorf("landmark %q recorded zone %v but located in %v", lm.Name, lm.Zone, ZoneOf(lm.Pos))
		}
		if !Island.Contains(lm.Pos) {
			t.Errorf("landmark %q outside the island", lm.Name)
		}
	}
	central := len(m.InZone(Central))
	if central < len(m.Landmarks)/5 {
		t.Errorf("central zone has %d of %d landmarks; expected the largest share", central, len(m.Landmarks))
	}
}

func TestTaxiStandsHaveLots(t *testing.T) {
	m := Generate(3, 1)
	stands := m.TaxiStands()
	if len(stands) < 20 {
		t.Fatalf("only %d taxi stands generated", len(stands))
	}
	for _, s := range stands {
		if s.Lots < 3 {
			t.Errorf("stand %q has %d lots, want >= 3", s.Name, s.Lots)
		}
	}
}

func TestSpecialLandmarksPresent(t *testing.T) {
	m := Generate(4, 1)
	lp, ok := m.Find("Lucky Plaza")
	if !ok {
		t.Fatal("Lucky Plaza missing")
	}
	if lp.Zone != Central || lp.Category != MallHotel {
		t.Errorf("Lucky Plaza misconfigured: %+v", lp)
	}
	park, ok := m.Find("West Leisure Park")
	if !ok {
		t.Fatal("West Leisure Park missing")
	}
	if !park.WeekendOnly || park.Zone != West {
		t.Errorf("leisure park misconfigured: %+v", park)
	}
}

func TestRatesAtShape(t *testing.T) {
	m := Generate(5, 1)
	lp, _ := m.Find("Lucky Plaza")
	// Shopping profile: 3 AM demand must be far below 6 PM demand.
	night := RatesAt(lp, 3, Weekday)
	evening := RatesAt(lp, 18, Weekday)
	if night.PassengersPerHour >= evening.PassengersPerHour/3 {
		t.Errorf("mall demand at 3AM (%.1f) not far below 6PM (%.1f)",
			night.PassengersPerHour, evening.PassengersPerHour)
	}
	// Weekend demand at a mall exceeds weekday demand.
	wd := RatesAt(lp, 14, Weekday)
	we := RatesAt(lp, 14, Weekend)
	if we.PassengersPerHour <= wd.PassengersPerHour {
		t.Errorf("mall weekend demand %.1f not above weekday %.1f",
			we.PassengersPerHour, wd.PassengersPerHour)
	}
}

func TestRatesAtCommuterWeekendCollapse(t *testing.T) {
	lm := Landmark{Category: Office, Profile: ProfileCommuter, Lots: 2}
	wd := RatesAt(lm, 8, Weekday)
	we := RatesAt(lm, 8, Weekend)
	if we.PassengersPerHour > wd.PassengersPerHour*0.6 {
		t.Errorf("office weekend demand %.1f not well below weekday %.1f",
			we.PassengersPerHour, wd.PassengersPerHour)
	}
}

func TestRatesAtWeekendOnly(t *testing.T) {
	lm := Landmark{Category: Attraction, Profile: ProfileShopping, Lots: 2, WeekendOnly: true}
	if r := RatesAt(lm, 14, Weekday); r.PassengersPerHour != 0 || r.TaxisPerHour != 0 {
		t.Errorf("weekend-only landmark active on a weekday: %+v", r)
	}
	if r := RatesAt(lm, 14, Weekend); r.PassengersPerHour <= 0 {
		t.Error("weekend-only landmark inactive on a weekend")
	}
}

func TestRatesAtAirportTaxiRich(t *testing.T) {
	lm := Landmark{Category: AirportFerry, Profile: ProfileAirport, Lots: 4}
	r := RatesAt(lm, 17, Weekday)
	if r.TaxisPerHour <= r.PassengersPerHour {
		t.Errorf("airport should be taxi-rich: taxis %.1f vs passengers %.1f",
			r.TaxisPerHour, r.PassengersPerHour)
	}
}

func TestRatesAtInvalidHour(t *testing.T) {
	lm := Landmark{Category: MRTBus, Profile: ProfileCommuter, Lots: 1}
	if r := RatesAt(lm, -1, Weekday); r.PassengersPerHour != 0 {
		t.Error("negative hour returned rates")
	}
	if r := RatesAt(lm, 24, Weekday); r.PassengersPerHour != 0 {
		t.Error("hour 24 returned rates")
	}
}

func TestDayKindOf(t *testing.T) {
	want := map[int]DayKind{0: Weekend, 1: Weekday, 5: Weekday, 6: Weekend}
	for wd, k := range want {
		if got := DayKindOf(wd); got != k {
			t.Errorf("DayKindOf(%d) = %v, want %v", wd, got, k)
		}
	}
}

func TestNearestLandmark(t *testing.T) {
	m := Generate(6, 1)
	lp, _ := m.Find("Lucky Plaza")
	probe := geo.Offset(lp.Pos, 5, 5)
	got, d, ok := m.NearestLandmark(probe)
	if !ok {
		t.Fatal("NearestLandmark failed")
	}
	if got.Name != "Lucky Plaza" {
		t.Fatalf("nearest to Lucky Plaza + 7m = %q (%.1f m away)", got.Name, d)
	}
	if math.Abs(d-7.07) > 0.5 {
		t.Errorf("distance = %.2f, want ~7.07", d)
	}
	var empty Map
	if _, _, ok := empty.NearestLandmark(probe); ok {
		t.Error("NearestLandmark on empty map returned ok")
	}
}

func TestGenerateScale(t *testing.T) {
	small := Generate(7, 0.25)
	full := Generate(7, 1)
	if len(small.Landmarks) >= len(full.Landmarks) {
		t.Fatalf("scale 0.25 produced %d landmarks vs %d at scale 1",
			len(small.Landmarks), len(full.Landmarks))
	}
	if len(small.Landmarks) < NumCategories {
		t.Fatalf("scaled-down map lost categories: %d landmarks", len(small.Landmarks))
	}
	zero := Generate(7, 0) // treated as scale 1
	if len(zero.Landmarks) != len(full.Landmarks) {
		t.Fatal("scale 0 did not default to 1")
	}
}
