package citymap

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := Generate(55, 0.3)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Landmarks) != len(m.Landmarks) {
		t.Fatalf("loaded %d landmarks, want %d", len(loaded.Landmarks), len(m.Landmarks))
	}
	for i := range m.Landmarks {
		if loaded.Landmarks[i] != m.Landmarks[i] {
			t.Fatalf("landmark %d differs after round trip:\n%+v\n%+v",
				i, m.Landmarks[i], loaded.Landmarks[i])
		}
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"bad version":  `{"version": 2, "landmarks": []}`,
		"bad category": `{"version": 1, "landmarks": [{"name":"x","category":99,"lat":1.3,"lon":103.8,"zone":0,"lots":1}]}`,
		"bad zone":     `{"version": 1, "landmarks": [{"name":"x","category":0,"lat":1.3,"lon":103.8,"zone":9,"lots":1}]}`,
		"bad lots":     `{"version": 1, "landmarks": [{"name":"x","category":0,"lat":1.3,"lon":103.8,"zone":0,"lots":0}]}`,
		"bad position": `{"version": 1, "landmarks": [{"name":"x","category":0,"lat":123,"lon":103.8,"zone":0,"lots":1}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Load accepted invalid document", name)
		}
	}
}

func TestLoadHandAuthored(t *testing.T) {
	// A minimal hand-written registry, as a real-city adopter would write.
	doc := `{
	  "version": 1,
	  "landmarks": [
	    {"name": "Main Stand", "category": 0, "lat": 1.30, "lon": 103.85,
	     "zone": 0, "taxi_stand": true, "lots": 4, "profile": 0}
	  ]
	}`
	m, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.TaxiStands()) != 1 {
		t.Fatal("hand-authored stand not loaded")
	}
	lm := m.Landmarks[0]
	if lm.Name != "Main Stand" || lm.Category != MRTBus || lm.Lots != 4 {
		t.Fatalf("landmark mis-parsed: %+v", lm)
	}
	// The loaded city drives rate lookups like a generated one.
	r := RatesAt(lm, 8, Weekday)
	if r.PassengersPerHour <= 0 || r.TaxisPerHour <= 0 {
		t.Fatalf("loaded landmark yields no rates: %+v", r)
	}
}
