// Package citymap provides a deterministic synthetic Singapore: the four
// rectangular analysis zones of Fig. 5, a landmark registry with the
// category mix of Table 4, the LTA-style taxi-stand registry of §6.1.3, and
// per-category hourly demand/supply profiles that drive the simulator.
//
// The real system used Singapore's actual geography, the LTA taxi-stand
// list and Google-Maps landmark labelling; none of those are available
// offline, so this package is the substitution documented in DESIGN.md.
package citymap

import (
	"fmt"
	"math/rand"

	"taxiqueue/internal/geo"
)

// Zone identifies one of the four rectangular zones of Fig. 5.
type Zone uint8

const (
	// Central covers the CBD, Orchard Road and most tourist attractions;
	// it is ~6% of the island's area but has the most queue spots.
	Central Zone = iota
	// North is the northern residential/industrial belt.
	North
	// West is the western residential/industrial belt.
	West
	// East is the eastern belt including Changi airport.
	East

	// NumZones is the number of analysis zones.
	NumZones = 4
)

var zoneNames = [NumZones]string{"Central", "North", "West", "East"}

// String implements fmt.Stringer.
func (z Zone) String() string {
	if int(z) < NumZones {
		return zoneNames[z]
	}
	return fmt.Sprintf("Zone(%d)", uint8(z))
}

// Island is the bounding box of synthetic Singapore: roughly 50 km wide and
// 26 km tall, matching the dimensions quoted in §6.1.3.
var Island = geo.Rect{MinLat: 1.220, MinLon: 103.600, MaxLat: 1.460, MaxLon: 104.045}

// zoneRects partitions the island into the four zones. Central is the small
// CBD rectangle; West/East flank it; North sits above it.
var zoneRects = [NumZones]geo.Rect{
	Central: {MinLat: 1.250, MinLon: 103.790, MaxLat: 1.320, MaxLon: 103.880},
	North:   {MinLat: 1.320, MinLon: 103.790, MaxLat: 1.460, MaxLon: 103.880},
	West:    {MinLat: 1.220, MinLon: 103.600, MaxLat: 1.460, MaxLon: 103.790},
	East:    {MinLat: 1.220, MinLon: 103.880, MaxLat: 1.460, MaxLon: 104.045},
}

// ZoneRect returns the bounding rectangle of z.
func ZoneRect(z Zone) geo.Rect { return zoneRects[z] }

// innerMargin insets the drivable frame from the island boundary so that
// GPS jitter on legitimate records never crosses it: only injected
// urban-canyon outliers land outside the Island frame.
const innerMargin = 0.004 // degrees, ~440 m

// IslandClamp clamps p into the drivable inner frame (taxis cannot drive
// into the sea; the simulator's random walk uses this).
func IslandClamp(p geo.Point) geo.Point {
	if p.Lat < Island.MinLat+innerMargin {
		p.Lat = Island.MinLat + innerMargin
	}
	if p.Lat > Island.MaxLat-innerMargin {
		p.Lat = Island.MaxLat - innerMargin
	}
	if p.Lon < Island.MinLon+innerMargin {
		p.Lon = Island.MinLon + innerMargin
	}
	if p.Lon > Island.MaxLon-innerMargin {
		p.Lon = Island.MaxLon - innerMargin
	}
	return p
}

// ZoneOf classifies p into a zone. Points inside the Central rectangle are
// Central; remaining points go to West/East by longitude and otherwise
// North. Points south of Central between its longitudes (sea, mostly) also
// resolve to Central so every island point has a zone.
func ZoneOf(p geo.Point) Zone {
	if zoneRects[Central].Contains(p) {
		return Central
	}
	if p.Lon < zoneRects[Central].MinLon {
		return West
	}
	if p.Lon > zoneRects[Central].MaxLon {
		return East
	}
	if p.Lat >= zoneRects[Central].MaxLat {
		return North
	}
	return Central
}

// Category labels a landmark with the Table 4 taxonomy.
type Category uint8

const (
	// MRTBus is a Mass Rapid Transit or bus station.
	MRTBus Category = iota
	// MallHotel is a shopping mall or hotel.
	MallHotel
	// Office is an office building.
	Office
	// HospitalSchool is a hospital or school.
	HospitalSchool
	// Attraction is a tourist attraction.
	Attraction
	// AirportFerry is an airport or ferry terminal.
	AirportFerry
	// IndustrialResidential is an industrial or residential area.
	IndustrialResidential

	// NumCategories is the number of landmark categories.
	NumCategories = 7
)

var categoryNames = [NumCategories]string{
	"MRT & BUS station",
	"Shopping Mall & Hotel",
	"Office Building",
	"Hospital & School",
	"Tourist Attraction",
	"Airport & Ferry Terminal",
	"Industrial and Residential Area",
}

// String implements fmt.Stringer with the Table 4 spelling.
func (c Category) String() string {
	if int(c) < NumCategories {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Landmark is a public facility that anchors a potential queue spot.
type Landmark struct {
	Name     string
	Category Category
	Pos      geo.Point
	Zone     Zone
	// TaxiStand marks official LTA taxi stands (§6.1.3: 31 CBD stands
	// with >= 3 parking lots).
	TaxiStand bool
	// RegisteredPos is the stand's surveyed coordinate in the official
	// registry, a few meters off the actual queue area (the paper
	// attributes its 7.6 m mean location error to exactly this kind of
	// GPS/survey mismatch). Zero for non-stands.
	RegisteredPos geo.Point
	// Lots is the number of taxi parking lots (boarding bays).
	Lots int
	// Profile indexes the demand/supply profile family for this landmark.
	Profile ProfileKind
	// WeekendOnly landmarks (the §7.2 "sporadic" leisure park) generate
	// demand only on Saturday/Sunday.
	WeekendOnly bool
}

// ProfileKind selects an hourly demand/supply shape.
type ProfileKind uint8

const (
	// ProfileCommuter peaks at weekday rush hours (MRT/bus, office).
	ProfileCommuter ProfileKind = iota
	// ProfileShopping peaks middays/evenings and on weekends (malls).
	ProfileShopping
	// ProfileAirport is flat and heavy around flight banks (airport).
	ProfileAirport
	// ProfileHospital peaks in the morning, weekday-only.
	ProfileHospital
	// ProfileNightlife peaks near midnight (attraction/club districts).
	ProfileNightlife
	// ProfileResidential has small morning-out/evening-in bumps.
	ProfileResidential
)

// Rates gives the expected passenger and FREE-taxi arrivals per hour at a
// landmark for one hour-of-day, already scaled by the landmark's size.
type Rates struct {
	PassengersPerHour float64
	TaxisPerHour      float64
	// BookingFraction is the share of passengers who book instead of
	// queueing (Singapore booking fee keeps this low, §5.3).
	BookingFraction float64
}

// hourShape curves are unit-less multipliers per hour of day, normalized so
// peak = 1.
var hourShapes = map[ProfileKind][24]float64{
	ProfileCommuter: {
		0.18, 0.16, 0.15, 0.15, 0.17, 0.27, 0.55, 0.95, 1.00, 0.65,
		0.45, 0.50, 0.55, 0.50, 0.45, 0.50, 0.60, 0.85, 1.00, 0.85,
		0.60, 0.45, 0.30, 0.20,
	},
	ProfileShopping: {
		0.22, 0.17, 0.15, 0.15, 0.15, 0.17, 0.20, 0.24, 0.30, 0.45,
		0.60, 0.80, 0.90, 0.95, 0.95, 0.95, 0.95, 1.00, 1.00, 0.95,
		0.80, 0.60, 0.45, 0.32,
	},
	ProfileAirport: {
		0.55, 0.45, 0.35, 0.30, 0.40, 0.60, 0.80, 0.90, 0.90, 0.85,
		0.80, 0.80, 0.85, 0.90, 0.90, 0.90, 0.95, 1.00, 1.00, 0.95,
		0.90, 0.85, 0.75, 0.65,
	},
	ProfileHospital: {
		0.11, 0.10, 0.10, 0.10, 0.11, 0.18, 0.45, 0.85, 1.00, 0.95,
		0.85, 0.75, 0.70, 0.70, 0.65, 0.60, 0.55, 0.50, 0.40, 0.25,
		0.16, 0.12, 0.10, 0.08,
	},
	ProfileNightlife: {
		1.00, 0.90, 0.60, 0.30, 0.12, 0.05, 0.04, 0.05, 0.08, 0.10,
		0.12, 0.18, 0.22, 0.25, 0.25, 0.28, 0.32, 0.40, 0.50, 0.60,
		0.70, 0.80, 0.90, 1.00,
	},
	ProfileResidential: {
		0.15, 0.13, 0.12, 0.12, 0.14, 0.22, 0.50, 0.80, 0.70, 0.45,
		0.35, 0.35, 0.35, 0.32, 0.32, 0.35, 0.45, 0.60, 0.70, 0.60,
		0.45, 0.35, 0.25, 0.15,
	},
}

// profileFor maps a landmark category to its default profile kind.
func profileFor(c Category) ProfileKind {
	switch c {
	case MRTBus, Office:
		return ProfileCommuter
	case MallHotel:
		return ProfileShopping
	case AirportFerry:
		return ProfileAirport
	case HospitalSchool:
		return ProfileHospital
	case Attraction:
		return ProfileNightlife
	default:
		return ProfileResidential
	}
}

// baseRates gives peak-hour passenger/taxi arrival magnitudes per category.
// Taxi supply relative to passenger demand controls the C1/C2/C3 balance:
//   - taxi-rich spots (airport, CBD stands) produce taxi queues (C1/C3)
//   - demand-rich spots (malls at peak) produce passenger queues (C1/C2)
var baseRates = [NumCategories]Rates{
	MRTBus:                {PassengersPerHour: 44, TaxisPerHour: 46, BookingFraction: 0.12},
	MallHotel:             {PassengersPerHour: 50, TaxisPerHour: 32, BookingFraction: 0.20},
	Office:                {PassengersPerHour: 38, TaxisPerHour: 30, BookingFraction: 0.24},
	HospitalSchool:        {PassengersPerHour: 30, TaxisPerHour: 28, BookingFraction: 0.20},
	Attraction:            {PassengersPerHour: 36, TaxisPerHour: 34, BookingFraction: 0.12},
	AirportFerry:          {PassengersPerHour: 68, TaxisPerHour: 80, BookingFraction: 0.06},
	IndustrialResidential: {PassengersPerHour: 14, TaxisPerHour: 13, BookingFraction: 0.14},
}

// DayKind distinguishes the weekday/weekend regimes (§7.1 runs the two
// separately).
type DayKind uint8

const (
	// Weekday is Monday-Friday.
	Weekday DayKind = iota
	// Weekend is Saturday-Sunday.
	Weekend
)

// DayKindOf maps a Go weekday (0=Sunday) to a DayKind.
func DayKindOf(weekday int) DayKind {
	if weekday == 0 || weekday == 6 {
		return Weekend
	}
	return Weekday
}

// weekendDemandFactor scales passenger demand on weekends per profile:
// commuter traffic collapses, shopping rises (§6.1.3, Table 6).
var weekendDemandFactor = map[ProfileKind]float64{
	ProfileCommuter:    0.35,
	ProfileShopping:    1.25,
	ProfileAirport:     1.10,
	ProfileHospital:    0.30,
	ProfileNightlife:   1.30,
	ProfileResidential: 0.90,
}

// RatesAt returns the expected arrival rates at landmark lm during the
// given hour of day (0-23) and day kind. Size scales with Lots.
func RatesAt(lm Landmark, hour int, day DayKind) Rates {
	if hour < 0 || hour > 23 {
		return Rates{}
	}
	if lm.WeekendOnly && day != Weekend {
		return Rates{BookingFraction: baseRates[lm.Category].BookingFraction}
	}
	base := baseRates[lm.Category]
	shape := hourShapes[lm.Profile][hour]
	size := 0.6 + 0.2*float64(lm.Lots)
	demand := base.PassengersPerHour * shape * size
	supply := base.TaxisPerHour * shape * size
	if day == Weekend {
		f := weekendDemandFactor[lm.Profile]
		demand *= f
		// Taxi supply redistributes more slowly than demand: drivers keep
		// cruising their weekday haunts, so weekend supply shrinks less
		// than demand but still substantially. Quiet commuter spots with a
		// thin trickle of long-waiting taxis are what push the Sunday C4
		// share up in Fig. 9.
		supply *= 0.7*f + 0.3
	}
	return Rates{
		PassengersPerHour: demand,
		TaxisPerHour:      supply,
		BookingFraction:   base.BookingFraction,
	}
}

// Map is the full synthetic city: landmarks with positions and profiles.
type Map struct {
	Landmarks []Landmark
}

// categoryPlan drives Generate: target counts per category for a ~180-spot
// city matching the Table 4 mix, and how many land in each zone.
type categoryPlan struct {
	cat       Category
	count     int
	zoneDist  [NumZones]float64 // probability of each zone
	standFrac float64           // fraction that are official taxi stands
}

var defaultPlan = []categoryPlan{
	{MRTBus, 87, [NumZones]float64{0.34, 0.22, 0.22, 0.22}, 0.30},
	{MallHotel, 21, [NumZones]float64{0.62, 0.13, 0.12, 0.13}, 0.45},
	{Office, 17, [NumZones]float64{0.70, 0.10, 0.10, 0.10}, 0.40},
	{HospitalSchool, 15, [NumZones]float64{0.30, 0.24, 0.23, 0.23}, 0.30},
	{Attraction, 11, [NumZones]float64{0.60, 0.10, 0.15, 0.15}, 0.25},
	{AirportFerry, 10, [NumZones]float64{0.10, 0.10, 0.10, 0.70}, 0.60},
	{IndustrialResidential, 8, [NumZones]float64{0.10, 0.30, 0.35, 0.25}, 0.10},
}

// Generate builds a deterministic synthetic city with roughly
// 180*scale landmarks in the Table 4 category mix. scale=1 matches the
// paper's spot count; smaller scales keep tests fast. The same seed always
// yields the same city.
func Generate(seed int64, scale float64) *Map {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Map{}
	serial := 0
	for _, plan := range defaultPlan {
		n := int(float64(plan.count)*scale + 0.5)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			z := sampleZone(rng, plan.zoneDist)
			pos := randomPointInZone(rng, z)
			serial++
			lots := 1 + rng.Intn(3)
			stand := rng.Float64() < plan.standFrac
			var regPos geo.Point
			if stand {
				lots = 3 + rng.Intn(3) // stands have >= 3 lots (§6.1.3)
				regPos = geo.Offset(pos, rng.NormFloat64()*6, rng.NormFloat64()*6)
			}
			m.Landmarks = append(m.Landmarks, Landmark{
				Name:          fmt.Sprintf("%s #%d", shortName(plan.cat), serial),
				Category:      plan.cat,
				Pos:           pos,
				Zone:          z,
				TaxiStand:     stand,
				RegisteredPos: regPos,
				Lots:          lots,
				Profile:       profileFor(plan.cat),
			})
		}
	}
	// The §7.2 sporadic weekend-only leisure park in the West zone.
	serial++
	m.Landmarks = append(m.Landmarks, Landmark{
		Name:        "West Leisure Park",
		Category:    Attraction,
		Pos:         randomPointInZone(rng, West),
		Zone:        West,
		Lots:        2,
		Profile:     ProfileShopping,
		WeekendOnly: true,
	})
	// A named Lucky Plaza analogue for the Table 9 case study: a Central
	// mall with nightlife spillover.
	serial++
	lpPos := geo.Point{Lat: 1.3044, Lon: 103.8335}
	m.Landmarks = append(m.Landmarks, Landmark{
		Name:     "Lucky Plaza",
		Category: MallHotel,
		Pos:      lpPos,
		Zone:     Central,
		Lots:     3, TaxiStand: true,
		RegisteredPos: geo.Offset(lpPos, rng.NormFloat64()*6, rng.NormFloat64()*6),
		Profile:       ProfileShopping,
	})
	return m
}

func shortName(c Category) string {
	switch c {
	case MRTBus:
		return "MRT"
	case MallHotel:
		return "Mall"
	case Office:
		return "Office"
	case HospitalSchool:
		return "Hospital"
	case Attraction:
		return "Attraction"
	case AirportFerry:
		return "Airport"
	default:
		return "Residential"
	}
}

func sampleZone(rng *rand.Rand, dist [NumZones]float64) Zone {
	u := rng.Float64()
	acc := 0.0
	for z := 0; z < NumZones; z++ {
		acc += dist[z]
		if u < acc {
			return Zone(z)
		}
	}
	return East
}

func randomPointInZone(rng *rand.Rand, z Zone) geo.Point {
	r := zoneRects[z]
	// Inset 5% from the edges so landmark polygons stay inside the zone.
	dLat := (r.MaxLat - r.MinLat) * 0.05
	dLon := (r.MaxLon - r.MinLon) * 0.05
	return geo.Point{
		Lat: r.MinLat + dLat + rng.Float64()*(r.MaxLat-r.MinLat-2*dLat),
		Lon: r.MinLon + dLon + rng.Float64()*(r.MaxLon-r.MinLon-2*dLon),
	}
}

// TaxiStands returns the landmarks flagged as official taxi stands.
func (m *Map) TaxiStands() []Landmark {
	var out []Landmark
	for _, lm := range m.Landmarks {
		if lm.TaxiStand {
			out = append(out, lm)
		}
	}
	return out
}

// InZone returns the landmarks located in z.
func (m *Map) InZone(z Zone) []Landmark {
	var out []Landmark
	for _, lm := range m.Landmarks {
		if lm.Zone == z {
			out = append(out, lm)
		}
	}
	return out
}

// Find returns the landmark with the given name.
func (m *Map) Find(name string) (Landmark, bool) {
	for _, lm := range m.Landmarks {
		if lm.Name == name {
			return lm, true
		}
	}
	return Landmark{}, false
}

// NearestLandmark returns the landmark closest to p and its distance in
// meters. ok is false when the map is empty.
func (m *Map) NearestLandmark(p geo.Point) (lm Landmark, meters float64, ok bool) {
	best := -1
	bestD := 0.0
	for i, cand := range m.Landmarks {
		d := geo.Equirect(p, cand.Pos)
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	if best == -1 {
		return Landmark{}, 0, false
	}
	return m.Landmarks[best], bestD, true
}
