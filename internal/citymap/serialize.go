package citymap

import (
	"encoding/json"
	"fmt"
	"io"

	"taxiqueue/internal/geo"
)

// landmarkJSON is the on-disk form of a Landmark. Category and Profile use
// their numeric codes plus a redundant name for human readability.
type landmarkJSON struct {
	Name          string  `json:"name"`
	Category      uint8   `json:"category"`
	CategoryName  string  `json:"category_name,omitempty"`
	Lat           float64 `json:"lat"`
	Lon           float64 `json:"lon"`
	Zone          uint8   `json:"zone"`
	TaxiStand     bool    `json:"taxi_stand,omitempty"`
	RegisteredLat float64 `json:"registered_lat,omitempty"`
	RegisteredLon float64 `json:"registered_lon,omitempty"`
	Lots          int     `json:"lots"`
	Profile       uint8   `json:"profile"`
	WeekendOnly   bool    `json:"weekend_only,omitempty"`
}

type mapJSON struct {
	Version   int            `json:"version"`
	Landmarks []landmarkJSON `json:"landmarks"`
}

// Save writes the city as JSON. Users adopting the system on a real city
// replace Generate with a hand-curated registry loaded through Load.
func (m *Map) Save(w io.Writer) error {
	doc := mapJSON{Version: 1, Landmarks: make([]landmarkJSON, len(m.Landmarks))}
	for i, lm := range m.Landmarks {
		doc.Landmarks[i] = landmarkJSON{
			Name:         lm.Name,
			Category:     uint8(lm.Category),
			CategoryName: lm.Category.String(),
			Lat:          lm.Pos.Lat, Lon: lm.Pos.Lon,
			Zone:          uint8(lm.Zone),
			TaxiStand:     lm.TaxiStand,
			RegisteredLat: lm.RegisteredPos.Lat, RegisteredLon: lm.RegisteredPos.Lon,
			Lots:        lm.Lots,
			Profile:     uint8(lm.Profile),
			WeekendOnly: lm.WeekendOnly,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Load reads a city previously written by Save (or hand-authored).
func Load(r io.Reader) (*Map, error) {
	var doc mapJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("citymap: %w", err)
	}
	if doc.Version != 1 {
		return nil, fmt.Errorf("citymap: unsupported version %d", doc.Version)
	}
	m := &Map{Landmarks: make([]Landmark, len(doc.Landmarks))}
	for i, lj := range doc.Landmarks {
		if lj.Category >= NumCategories {
			return nil, fmt.Errorf("citymap: landmark %d: bad category %d", i, lj.Category)
		}
		if lj.Zone >= NumZones {
			return nil, fmt.Errorf("citymap: landmark %d: bad zone %d", i, lj.Zone)
		}
		if lj.Lots < 1 {
			return nil, fmt.Errorf("citymap: landmark %d: lots must be >= 1", i)
		}
		pos := geo.Point{Lat: lj.Lat, Lon: lj.Lon}
		if !pos.Valid() {
			return nil, fmt.Errorf("citymap: landmark %d: invalid position", i)
		}
		m.Landmarks[i] = Landmark{
			Name:          lj.Name,
			Category:      Category(lj.Category),
			Pos:           pos,
			Zone:          Zone(lj.Zone),
			TaxiStand:     lj.TaxiStand,
			RegisteredPos: geo.Point{Lat: lj.RegisteredLat, Lon: lj.RegisteredLon},
			Lots:          lj.Lots,
			Profile:       ProfileKind(lj.Profile),
			WeekendOnly:   lj.WeekendOnly,
		}
	}
	return m, nil
}
