package store

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"taxiqueue/internal/mdt"
)

// walRecs builds n deterministic records cycling over a few taxis.
func walRecs(n int) []mdt.Record {
	ids := []string{"SH0001A", "SH0002B", "SH0003C"}
	states := []mdt.State{mdt.Free, mdt.POB, mdt.Payment}
	out := make([]mdt.Record, n)
	for i := range out {
		out[i] = rec(ids[i%len(ids)], i, states[i%len(states)])
	}
	return out
}

// replayAll opens dir and collects every recovered record.
func replayAll(t *testing.T, dir string, cfg WALConfig) ([]mdt.Record, *WAL, Recovery) {
	t.Helper()
	var got []mdt.Record
	w, rec, err := OpenWAL(dir, cfg, func(r mdt.Record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return got, w, rec
}

func sameRecords(t *testing.T, got, want []mdt.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// segFiles lists the sealed segment file names in dir, sorted.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), walSegPrefix) && strings.HasSuffix(e.Name(), walSegSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := walRecs(100)
	w, rcv, err := OpenWAL(dir, WALConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rcv.Records != 0 {
		t.Fatalf("fresh dir replayed %d records", rcv.Records)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if p := w.Pending(); p != 100 {
		t.Fatalf("Pending = %d before commit, want 100", p)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if p := w.Pending(); p != 0 {
		t.Fatalf("Pending = %d after commit, want 0", p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, w2, rcv := replayAll(t, dir, WALConfig{})
	defer w2.Close()
	if rcv.Truncated() {
		t.Fatalf("clean log reported damage: %v", rcv.Err)
	}
	sameRecords(t, got, recs)
}

func TestWALSealRotatesAndReplaysInOrder(t *testing.T) {
	dir := t.TempDir()
	recs := walRecs(90)
	w, _, err := OpenWAL(dir, WALConfig{CompactAfter: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		if (i+1)%30 == 0 {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(segFiles(t, dir)); n != 3 {
		t.Fatalf("sealed %d segments, want 3 (%v)", n, segFiles(t, dir))
	}
	if _, err := os.Stat(filepath.Join(dir, walActiveName)); !os.IsNotExist(err) {
		t.Fatalf("active segment should be absent after sealing everything: %v", err)
	}
	got, w2, _ := replayAll(t, dir, WALConfig{CompactAfter: -1})
	defer w2.Close()
	sameRecords(t, got, recs)
}

func TestWALSealIsIdempotentAndCheap(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALConfig{CompactAfter: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sealing with nothing buffered must be a no-op, not an empty segment.
	for i := 0; i < 5; i++ {
		if err := w.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(segFiles(t, dir)); n != 0 {
		t.Fatalf("empty seals produced %d segment files", n)
	}
	if err := w.Append(walRecs(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil { // nothing new: no second segment
		t.Fatal(err)
	}
	if n := len(segFiles(t, dir)); n != 1 {
		t.Fatalf("got %d segments, want 1", n)
	}
	w.Close()
}

// TestWALCrashCutReplaysLongestCleanPrefix is the crash-cut property: for
// every possible torn tail of the active segment, recovery replays exactly
// the records whose frames survived intact — never fails, never invents.
func TestWALCrashCutReplaysLongestCleanPrefix(t *testing.T) {
	recs := walRecs(40)
	// Build a reference log once to learn the byte offsets of each frame.
	ref := t.TempDir()
	w, _, err := OpenWAL(ref, WALConfig{CompactAfter: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int64{int64(len(walMagic))}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, w.activeSize)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(ref, walActiveName))
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(data)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walActiveName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, w2, rcv := replayAll(t, dir, WALConfig{CompactAfter: -1})
		w2.Close()
		// The survivors are the records whose whole frame fits below cut.
		n := sort.Search(len(recs), func(i int) bool { return offsets[i+1] > cut })
		sameRecords(t, got, recs[:n])
		// A cut exactly on a frame boundary (header included) is clean;
		// anything else must be reported as a truncation.
		clean := cut >= int64(len(walMagic)) && offsets[n] == cut
		if clean == rcv.Truncated() {
			t.Fatalf("cut %d: Truncated = %v, clean frames %d", cut, rcv.Truncated(), n)
		}
	}
}

func TestWALDamagedSealedSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	recs := walRecs(60)
	w, _, err := OpenWAL(dir, WALConfig{CompactAfter: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		if (i+1)%20 == 0 {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	if len(segs) != 3 {
		t.Fatalf("want 3 segments, got %v", segs)
	}
	// Tearing the tail of a NON-last sealed segment is real corruption: a
	// sealed file was fsynced before its rename, so recovery must refuse to
	// silently drop acknowledged records.
	victim := filepath.Join(dir, segs[0])
	st, _ := os.Stat(victim)
	if err := os.Truncate(victim, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir, WALConfig{CompactAfter: -1}, nil); err == nil {
		t.Fatal("OpenWAL accepted a damaged non-last sealed segment")
	}
}

func TestWALTornLastSealedSegmentTolerated(t *testing.T) {
	dir := t.TempDir()
	recs := walRecs(40)
	w, _, err := OpenWAL(dir, WALConfig{CompactAfter: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		if (i+1)%20 == 0 {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// No active file: the newest sealed segment is the last segment on
	// disk, and a torn byte there gets the clean-prefix tolerance.
	segs := segFiles(t, dir)
	victim := filepath.Join(dir, segs[len(segs)-1])
	st, _ := os.Stat(victim)
	if err := os.Truncate(victim, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	got, w2, rcv := replayAll(t, dir, WALConfig{CompactAfter: -1})
	w2.Close()
	if !rcv.Truncated() {
		t.Fatal("torn last segment not reported")
	}
	if len(got) <= 20 || len(got) >= 40 {
		t.Fatalf("replayed %d records, want a strict prefix above the first segment", len(got))
	}
	sameRecords(t, got, recs[:len(got)])
	// The truncation is persisted: a second open is clean and identical.
	got2, w3, rcv2 := replayAll(t, dir, WALConfig{CompactAfter: -1})
	w3.Close()
	if rcv2.Truncated() {
		t.Fatalf("second open still damaged: %v", rcv2.Err)
	}
	sameRecords(t, got2, got)
}

func TestWALWrongMagicFailsOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walActiveName), []byte("not a wal segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir, WALConfig{}, nil); err == nil {
		t.Fatal("OpenWAL accepted a wrong-magic active segment")
	}
	// A header shorter than the magic is a torn creation, not corruption.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, walActiveName), []byte("no"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, w, rcv := replayAll(t, dir2, WALConfig{})
	defer w.Close()
	if len(got) != 0 || !rcv.Truncated() {
		t.Fatalf("torn header: replayed %d, truncated %v", len(got), rcv.Truncated())
	}
}

func TestWALCompactionFoldsSegmentsAndPreservesReplay(t *testing.T) {
	dir := t.TempDir()
	recs := walRecs(400)
	done := make(chan struct{}, 64)
	w, _, err := OpenWAL(dir, WALConfig{
		CompactAfter: 4,
		OnCompact:    func(folded int, err error) { done <- struct{}{} },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		if (i+1)%25 == 0 {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil { // waits out the compactor
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction ran over 16 small segments")
	}
	if st.Segments >= 16 {
		t.Fatalf("compaction left %d segments, want fewer than 16", st.Segments)
	}
	got, w2, rcv := replayAll(t, dir, WALConfig{CompactAfter: -1})
	defer w2.Close()
	if rcv.Truncated() {
		t.Fatalf("compacted log reported damage: %v", rcv.Err)
	}
	sameRecords(t, got, recs)
}

func TestWALOpenSweepsCompactionLeftovers(t *testing.T) {
	dir := t.TempDir()
	recs := walRecs(80)
	w, _, err := OpenWAL(dir, WALConfig{CompactAfter: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		if (i+1)%20 == 0 {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a compaction that crashed after its rename: the merged file
	// covering segments 1-3 exists alongside its redundant sources.
	segs := segFiles(t, dir)
	if len(segs) != 4 {
		t.Fatalf("want 4 segments, got %v", segs)
	}
	var merged []byte
	merged = append(merged, walMagic[:]...)
	for _, name := range segs[:3] {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, data[len(walMagic):]...)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(1, 3)), merged, 0o644); err != nil {
		t.Fatal(err)
	}
	got, w2, rcv := replayAll(t, dir, WALConfig{CompactAfter: -1})
	defer w2.Close()
	if rcv.Truncated() {
		t.Fatalf("sweep reported damage: %v", rcv.Err)
	}
	sameRecords(t, got, recs)
	after := segFiles(t, dir)
	if len(after) != 2 {
		t.Fatalf("contained sources not swept: %v", after)
	}
}

func TestWALAppendContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	recs := walRecs(75)
	var logged []mdt.Record
	for start := 0; start < len(recs); start += 25 {
		got, w, _ := replayAll(t, dir, WALConfig{CompactAfter: -1})
		sameRecords(t, got, logged)
		for _, r := range recs[start : start+25] {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		logged = append(logged, recs[start:start+25]...)
	}
	got, w, _ := replayAll(t, dir, WALConfig{CompactAfter: -1})
	w.Close()
	sameRecords(t, got, recs)
}

func TestWALStatsTrackWriteVolume(t *testing.T) {
	dir := t.TempDir()
	recs := walRecs(200)
	w, _, err := OpenWAL(dir, WALConfig{CompactAfter: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := 0
	for i, r := range recs {
		payload = len(r.AppendBinary(nil)) * (i + 1)
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		if (i+1)%10 == 0 {
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Segments != 20 {
		t.Fatalf("Segments = %d, want 20", st.Segments)
	}
	// Append-only with compaction off: total bytes written is the payload
	// plus one 8-byte header per segment — independent of how many seals
	// (checkpoints) happened, the O(1)-amortized-checkpoint property.
	want := int64(payload) + 20*int64(len(walMagic))
	if st.BytesWritten != want {
		t.Fatalf("BytesWritten = %d, want %d", st.BytesWritten, want)
	}
}

func TestWALSegNameRoundTrip(t *testing.T) {
	for _, tc := range []struct{ lo, hi uint64 }{{1, 1}, {7, 42}, {123456789, 987654321}} {
		lo, hi, ok := parseSegName(segName(tc.lo, tc.hi))
		if !ok || lo != tc.lo || hi != tc.hi {
			t.Fatalf("round trip %v -> %s -> (%d,%d,%v)", tc, segName(tc.lo, tc.hi), lo, hi, ok)
		}
	}
	for _, bad := range []string{"active.seg", "seg-1.seg", "seg-0-1.seg", "seg-2-1.seg", "seg-a-b.seg", "seg-1-2.tmp"} {
		if _, _, ok := parseSegName(bad); ok {
			t.Fatalf("parseSegName accepted %q", bad)
		}
	}
}
