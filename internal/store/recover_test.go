package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// recoverFixture builds a store with several taxis and enough records to
// span sealed blocks, and returns it with its serialized bytes.
func recoverFixture(t *testing.T, taxis, perTaxi int) (*Store, []byte) {
	t.Helper()
	s := New()
	start := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	for i := 0; i < perTaxi; i++ {
		for tx := 0; tx < taxis; tx++ {
			r := mdt.Record{
				Time:   start.Add(time.Duration(i) * 7 * time.Second),
				TaxiID: fmt.Sprintf("SH%04d", tx),
				Pos:    geo.Point{Lat: 1.30 + float64(tx)*1e-4, Lon: 103.8 + float64(i)*1e-5},
				Speed:  float64(i % 60),
				State:  mdt.Free,
			}
			if err := s.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return s, buf.Bytes()
}

// TestRecoverCleanFile: on an undamaged file Recover equals Load exactly.
func TestRecoverCleanFile(t *testing.T) {
	s, raw := recoverFixture(t, 4, 600)
	got, rec, err := Recover(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated() {
		t.Fatalf("clean file reported truncated: %v", rec.Err)
	}
	if got.Len() != s.Len() || rec.Records != s.Len() {
		t.Fatalf("recovered %d records (Recovery says %d), want %d", got.Len(), rec.Records, s.Len())
	}
}

// TestRecoverTornTail: for every cut length, Recover keeps a loadable
// prefix of complete frames (never failing), while Load rejects the file.
func TestRecoverTornTail(t *testing.T) {
	s, raw := recoverFixture(t, 3, 700)
	full := s.Len()
	prev := -1
	// The smallest prefixes still keep the 8-byte magic header; anything
	// shorter is the unrecoverable case TestRecoverHopelessFile covers.
	for _, cut := range []int{1, 7, 64, 1023, len(raw) / 3, len(raw) / 2, len(raw) - 16, len(raw) - 9} {
		torn := raw[:len(raw)-cut]
		if _, err := Load(bytes.NewReader(torn)); err == nil {
			t.Fatalf("cut %d: strict Load accepted a torn file", cut)
		}
		got, rec, err := Recover(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("cut %d: Recover failed outright: %v", cut, err)
		}
		if !rec.Truncated() {
			t.Fatalf("cut %d: damage not reported", cut)
		}
		if got.Len() >= full {
			t.Fatalf("cut %d: recovered %d records from a torn file of %d", cut, got.Len(), full)
		}
		// A larger cut can never recover more than a smaller one.
		if prev >= 0 && got.Len() > prev {
			t.Fatalf("cut %d: recovered %d > %d from the longer file", cut, got.Len(), prev)
		}
		prev = got.Len()
		// The recovered prefix must round-trip cleanly: re-save, strict load.
		var buf bytes.Buffer
		if err := got.Save(&buf); err != nil {
			t.Fatalf("cut %d: re-save: %v", cut, err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("cut %d: recovered prefix does not round-trip: %v", cut, err)
		}
	}
}

// TestRecoverKeepsPerTaxiPrefix: whatever the cut, each recovered partition
// is an exact prefix of that taxi's original records — replaying it can
// never violate the per-taxi time-order invariant.
func TestRecoverKeepsPerTaxiPrefix(t *testing.T) {
	s, raw := recoverFixture(t, 3, 700)
	for cut := 1; cut < len(raw); cut += len(raw) / 97 {
		got, _, err := Recover(bytes.NewReader(raw[:len(raw)-cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for _, id := range got.Taxis() {
			want := s.FullTrajectory(id)
			have := got.FullTrajectory(id)
			if len(have) > len(want) {
				t.Fatalf("cut %d: taxi %s recovered %d > original %d", cut, id, len(have), len(want))
			}
			for i := range have {
				if !have[i].Equal(want[i]) {
					t.Fatalf("cut %d: taxi %s record %d differs after recovery", cut, id, i)
				}
			}
		}
	}
}

// TestRecoverCorruptMidFile: flipped bytes inside a block payload stop the
// scan at the damage and keep everything before it.
func TestRecoverCorruptMidFile(t *testing.T) {
	s, raw := recoverFixture(t, 3, 700)
	bad := append([]byte(nil), raw...)
	for i := len(bad) / 2; i < len(bad)/2+32 && i < len(bad); i++ {
		bad[i] ^= 0xFF
	}
	got, rec, err := Recover(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated() {
		t.Fatal("mid-file corruption not reported")
	}
	if got.Len() == 0 || got.Len() >= s.Len() {
		t.Fatalf("recovered %d of %d", got.Len(), s.Len())
	}
}

// TestRecoverHopelessFile: a bad magic header is the one unrecoverable
// case — Recover must error rather than return an empty store silently.
func TestRecoverHopelessFile(t *testing.T) {
	if _, _, err := Recover(bytes.NewReader([]byte("not a store file at all"))); err == nil {
		t.Fatal("Recover accepted garbage")
	}
	if _, _, err := Recover(bytes.NewReader(nil)); err == nil {
		t.Fatal("Recover accepted an empty file")
	}
}

// TestRemoveTemps: stale SaveFileFS temp files (a crash between temp-write
// and rename) are swept; committed files survive.
func TestRemoveTemps(t *testing.T) {
	dir := t.TempDir()
	s, _ := recoverFixture(t, 2, 100)
	path := filepath.Join(dir, "shard-000.tqs")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "shard-000.tqs.tmp-1234")
	if err := os.WriteFile(stale, []byte("half-written checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := RemoveTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != stale {
		t.Fatalf("removed %v, want just the stale temp", removed)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp still present")
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("committed file damaged by sweep: %v", err)
	}
}
