// Package store is an embedded append-only store for MDT log records: the
// repository's stand-in for the PostgreSQL system the deployed engine reads
// from (§7.1). Records are partitioned per taxi and packed into
// time-indexed binary blocks, so the two access patterns the analytics
// engine needs are both cheap:
//
//   - per-taxi time-ordered scans (PEA runs per trajectory), and
//   - global time-window scans (slot feature extraction), served by a
//     k-way merge across partitions with block-level time pruning.
//
// A Store serializes to a single file (Save/Load) with a magic header and
// per-block time index.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"taxiqueue/internal/mdt"
)

// blockTarget is the record count at which an open block is sealed.
const blockTarget = 512

var (
	// ErrOutOfOrder is returned when an append violates per-taxi time order.
	ErrOutOfOrder = errors.New("store: append out of time order for taxi")
	errBadFile    = errors.New("store: bad file format")
)

// block is a sealed run of consecutive records for one taxi.
type block struct {
	minT, maxT int64 // unix seconds
	recs       []mdt.Record
}

// partition holds one taxi's blocks plus the currently open block.
type partition struct {
	taxiID string
	blocks []block
	open   []mdt.Record
	lastT  int64
	count  int
}

func (p *partition) seal() {
	if len(p.open) == 0 {
		return
	}
	b := block{
		minT: p.open[0].Time.Unix(),
		maxT: p.open[len(p.open)-1].Time.Unix(),
		recs: p.open,
	}
	p.blocks = append(p.blocks, b)
	p.open = nil
}

// Store is the embedded MDT log store. It is not safe for concurrent
// mutation; concurrent reads after loading are fine.
type Store struct {
	parts map[string]*partition
	order []string // taxi IDs in first-seen order, for deterministic scans
	count int
}

// New returns an empty store.
func New() *Store {
	return &Store{parts: make(map[string]*partition)}
}

// Append adds one record. Records must arrive in non-decreasing time order
// per taxi (a globally time-ordered feed satisfies this).
func (s *Store) Append(r mdt.Record) error {
	p := s.parts[r.TaxiID]
	if p == nil {
		p = &partition{taxiID: r.TaxiID}
		s.parts[r.TaxiID] = p
		s.order = append(s.order, r.TaxiID)
	}
	t := r.Time.Unix()
	if p.count > 0 && t < p.lastT {
		return fmt.Errorf("%w %s: %v after %v", ErrOutOfOrder, r.TaxiID, r.Time, time.Unix(p.lastT, 0).UTC())
	}
	p.open = append(p.open, r)
	p.lastT = t
	p.count++
	s.count++
	if len(p.open) >= blockTarget {
		p.seal()
	}
	return nil
}

// AppendAll appends a batch, stopping at the first error.
func (s *Store) AppendAll(recs []mdt.Record) error {
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the total number of stored records.
func (s *Store) Len() int { return s.count }

// Taxis returns the stored taxi IDs in first-seen order.
func (s *Store) Taxis() []string {
	return append([]string(nil), s.order...)
}

// Trajectory returns taxi id's records with time in [from, to), in time
// order. Blocks wholly outside the window are skipped without scanning.
func (s *Store) Trajectory(id string, from, to time.Time) mdt.Trajectory {
	p := s.parts[id]
	if p == nil {
		return nil
	}
	fromS, toS := from.Unix(), to.Unix()
	var out mdt.Trajectory
	emit := func(recs []mdt.Record) {
		for _, r := range recs {
			if t := r.Time.Unix(); t >= fromS && t < toS {
				out = append(out, r)
			}
		}
	}
	for _, b := range p.blocks {
		if b.maxT < fromS || b.minT >= toS {
			continue
		}
		emit(b.recs)
	}
	if len(p.open) > 0 && p.lastT >= fromS && p.open[0].Time.Unix() < toS {
		emit(p.open)
	}
	return out
}

// FullTrajectory returns all of taxi id's records.
func (s *Store) FullTrajectory(id string) mdt.Trajectory {
	p := s.parts[id]
	if p == nil {
		return nil
	}
	out := make(mdt.Trajectory, 0, p.count)
	for _, b := range p.blocks {
		out = append(out, b.recs...)
	}
	out = append(out, p.open...)
	return out
}

// Scan streams every record with time in [from, to) in global time order
// (ties broken by taxi first-seen order) to fn; fn returning false stops
// the scan early.
func (s *Store) Scan(from, to time.Time, fn func(mdt.Record) bool) {
	// k-way merge over per-taxi cursors.
	var cursors []*scanCursor
	for ord, id := range s.order {
		tr := s.Trajectory(id, from, to)
		if len(tr) > 0 {
			cursors = append(cursors, &scanCursor{recs: tr, ord: ord})
		}
	}
	h := cursorHeap(cursors)
	h.init()
	for h.Len() > 0 {
		c := h.min()
		if !fn(c.recs[c.pos]) {
			return
		}
		c.pos++
		if c.pos >= len(c.recs) {
			h.popMin()
		} else {
			h.fix()
		}
	}
}

// scanCursor walks one taxi's windowed trajectory during a merge scan.
type scanCursor struct {
	recs mdt.Trajectory
	pos  int
	ord  int
}

// cursorHeap is a tiny binary heap keyed by (time, ord) of each cursor's
// current record.
type cursorHeap []*scanCursor

func (h cursorHeap) less(i, j int) bool {
	a, b := h[i].recs[h[i].pos], h[j].recs[h[j].pos]
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	return h[i].ord < h[j].ord
}

func (h cursorHeap) Len() int { return len(h) }

func (h cursorHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h cursorHeap) min() *scanCursor { return h[0] }

func (h *cursorHeap) popMin() {
	old := *h
	n := len(old)
	old[0] = old[n-1]
	*h = old[:n-1]
	if len(*h) > 0 {
		h.down(0)
	}
}

func (h cursorHeap) fix() { h.down(0) }

func (h cursorHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// persistence ----------------------------------------------------------------

// Version 2 embeds nanosecond-precision record frames (mdt binMagic 0x4D45).
var fileMagic = [8]byte{'T', 'Q', 'S', 'T', '2', 0, 0, 0}

// SaveFile atomically writes the store to path: the bytes go to a fresh
// temp file in path's directory which is synced and renamed over path, so a
// crash mid-save can never corrupt or truncate an existing on-disk copy —
// readers see either the old store or the new one, never a torn write.
// Errors are wrapped with the destination path.
func (s *Store) SaveFile(path string) error { return s.SaveFileFS(OS, path) }

// SaveFileFS is SaveFile over an explicit filesystem — the seam the chaos
// harness uses to inject short writes, fsync errors and crash-before-rename
// into the durability path. A failed save always removes its temp file and
// never touches the existing on-disk copy.
func (s *Store) SaveFileFS(fsys FS, path string) error {
	fail := func(err error) error { return fmt.Errorf("store: save %s: %w", path, err) }
	f, err := fsys.CreateTemp(filepath.Dir(path), filepath.Base(path)+tempSuffix+"-*")
	if err != nil {
		return fail(err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return fail(err)
	}
	// CreateTemp defaults to 0600; match what os.Create would have given.
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := s.Save(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fail(err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fail(err)
	}
	return nil
}

// tempSuffix marks SaveFileFS temp files; RemoveTemps matches on it.
const tempSuffix = ".tmp"

// RemoveTemps deletes stale SaveFileFS temp files left in dir by a crash
// between temp-write and rename. The committed files are untouched — the
// rename either happened (new copy) or did not (old copy); either way the
// temp is garbage. Returns the removed paths.
func RemoveTemps(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*"+tempSuffix+"-*"))
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			return removed, err
		}
		removed = append(removed, m)
	}
	return removed, nil
}

// LoadFile reads a store previously written by SaveFile (or Save to a
// file). Errors are wrapped with the source path.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: load %s: %w", path, err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("store: load %s: %w", path, err)
	}
	return s, nil
}

// Save writes the store to w in the single-file format. Open blocks are
// sealed first. When w is the store's only on-disk copy, prefer SaveFile:
// writing in place can corrupt that copy if the process dies mid-write.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	// Deterministic on-disk order.
	ids := append([]string(nil), s.order...)
	sort.Strings(ids)
	if err := writeUvarint(bw, uint64(len(ids))); err != nil {
		return err
	}
	var buf []byte
	for _, id := range ids {
		p := s.parts[id]
		p.seal()
		if err := writeString(bw, id); err != nil {
			return err
		}
		if err := writeUvarint(bw, uint64(len(p.blocks))); err != nil {
			return err
		}
		for _, b := range p.blocks {
			buf = buf[:0]
			for _, r := range b.recs {
				buf = r.AppendBinary(buf)
			}
			if err := writeUvarint(bw, uint64(len(b.recs))); err != nil {
				return err
			}
			if err := writeUvarint(bw, uint64(b.minT)); err != nil {
				return err
			}
			if err := writeUvarint(bw, uint64(b.maxT)); err != nil {
				return err
			}
			if err := writeUvarint(bw, uint64(len(buf))); err != nil {
				return err
			}
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a store previously written by Save. Any structural damage —
// a torn tail included — is an error; use Recover when a truncated prefix
// is better than no store at all (WAL replay after a crash).
func Load(r io.Reader) (*Store, error) {
	s, rec, err := load(r)
	if err != nil {
		return nil, err
	}
	if rec.Err != nil {
		return nil, rec.Err
	}
	return s, nil
}

// Recovery reports what a tolerant load salvaged.
type Recovery struct {
	// Records is the number of records recovered.
	Records int
	// Err is the corruption the loader stopped at; nil for a clean file.
	Err error
	// TruncatedAt is the partition the corruption was found in (its taxi
	// ID), when known. Empty for a clean file or header-level damage.
	TruncatedAt string
}

// Truncated reports whether the file was damaged and only a prefix loaded.
func (r Recovery) Truncated() bool { return r.Err != nil }

// Recover reads a store like Load but truncates at corruption instead of
// failing: every complete record frame before the first damaged byte is
// kept, the rest of the file is discarded, and the damage is described in
// the returned Recovery. The error return is reserved for files so damaged
// that nothing is recoverable (bad or missing magic header) — a torn tail
// from a crash mid-write never fails.
//
// The on-disk layout is sequential (partitions sorted by taxi ID, blocks in
// time order), so the kept prefix preserves the per-taxi time-order
// invariant: recovered partitions hold a time-prefix of their records.
func Recover(r io.Reader) (*Store, Recovery, error) {
	return load(r)
}

// RecoverFile is Recover over a file path; errors are wrapped with it.
func RecoverFile(path string) (*Store, Recovery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("store: recover %s: %w", path, err)
	}
	defer f.Close()
	s, rec, err := Recover(f)
	if err != nil {
		return nil, rec, fmt.Errorf("store: recover %s: %w", path, err)
	}
	return s, rec, nil
}

// load is the shared reader behind Load and Recover: a structural error
// after the magic header stops the scan and lands in Recovery.Err with the
// store built so far (complete frames of a torn block included) intact;
// Load surfaces that error, Recover keeps the prefix. Only header-level
// damage — nothing recoverable — uses the error return.
func load(r io.Reader) (*Store, Recovery, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, Recovery{}, fmt.Errorf("store: missing header: %w", errBadFile)
	}
	if magic != fileMagic {
		return nil, Recovery{}, errBadFile
	}
	s := New()
	rec, err := loadBody(br, s)
	rec.Err = err
	rec.Records = s.count
	return s, rec, nil
}

// loadBody reads partitions into s until EOF or the first structural error,
// which it returns (nil on a clean read). Everything decoded before the
// error is already in s.
func loadBody(br *bufio.Reader, s *Store) (Recovery, error) {
	var rec Recovery
	nParts, err := binary.ReadUvarint(br)
	if err != nil {
		return rec, fmt.Errorf("store: partition count: %w", err)
	}
	for pi := uint64(0); pi < nParts; pi++ {
		id, err := readString(br)
		if err != nil {
			return rec, fmt.Errorf("store: partition %d name: %w", pi, err)
		}
		rec.TruncatedAt = id
		nBlocks, err := binary.ReadUvarint(br)
		if err != nil {
			return rec, fmt.Errorf("store: %s block count: %w", id, err)
		}
		p := &partition{taxiID: id}
		s.parts[id] = p
		s.order = append(s.order, id)
		for bi := uint64(0); bi < nBlocks; bi++ {
			nRecs, err := binary.ReadUvarint(br)
			if err != nil {
				return rec, fmt.Errorf("store: %s block header: %w", id, err)
			}
			minT, err := binary.ReadUvarint(br)
			if err != nil {
				return rec, fmt.Errorf("store: %s block header: %w", id, err)
			}
			maxT, err := binary.ReadUvarint(br)
			if err != nil {
				return rec, fmt.Errorf("store: %s block header: %w", id, err)
			}
			size, err := binary.ReadUvarint(br)
			if err != nil {
				return rec, fmt.Errorf("store: %s block header: %w", id, err)
			}
			payload := make([]byte, size)
			read, err := io.ReadFull(br, payload)
			payload = payload[:read]
			b := block{minT: int64(minT), maxT: int64(maxT), recs: make([]mdt.Record, 0, nRecs)}
			var frameErr error
			for len(payload) > 0 {
				r, n, err := mdt.DecodeBinary(payload)
				if err != nil {
					frameErr = fmt.Errorf("store: corrupt block for %s: %w", id, err)
					break
				}
				b.recs = append(b.recs, r)
				payload = payload[n:]
			}
			// Keep the complete frames of a torn block: they precede the
			// damage, so per-taxi time order still holds.
			if len(b.recs) > 0 {
				b.maxT = b.recs[len(b.recs)-1].Time.Unix()
				p.blocks = append(p.blocks, b)
				p.count += len(b.recs)
				s.count += len(b.recs)
				p.lastT = b.maxT
			}
			if frameErr != nil {
				return rec, frameErr
			}
			if err != nil {
				return rec, fmt.Errorf("store: %s torn block payload: %w", id, err)
			}
			if uint64(len(b.recs)) != nRecs {
				return rec, fmt.Errorf("store: %s block holds %d of %d records: %w",
					id, len(b.recs), nRecs, errBadFile)
			}
		}
	}
	rec.TruncatedAt = ""
	return rec, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	_, err := w.Write(tmp[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", errBadFile
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
