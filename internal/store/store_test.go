package store

import (
	"bytes"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

var t0 = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

func rec(id string, sec int, state mdt.State) mdt.Record {
	return mdt.Record{
		Time: t0.Add(time.Duration(sec) * time.Second), TaxiID: id,
		Pos: geo.Point{Lat: 1.3, Lon: 103.8}, Speed: float64(sec % 60), State: state,
	}
}

func TestAppendAndLen(t *testing.T) {
	s := New()
	if err := s.AppendAll([]mdt.Record{rec("A", 0, mdt.Free), rec("A", 10, mdt.POB), rec("B", 5, mdt.Free)}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.Taxis(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Taxis = %v", got)
	}
}

func TestAppendOutOfOrderRejected(t *testing.T) {
	s := New()
	if err := s.Append(rec("A", 100, mdt.Free)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("A", 50, mdt.Free)); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	// A different taxi at an earlier time is fine.
	if err := s.Append(rec("B", 50, mdt.Free)); err != nil {
		t.Fatalf("cross-taxi earlier append rejected: %v", err)
	}
	// Equal timestamps are fine.
	if err := s.Append(rec("A", 100, mdt.POB)); err != nil {
		t.Fatalf("same-time append rejected: %v", err)
	}
}

func TestTrajectoryWindow(t *testing.T) {
	s := New()
	for i := 0; i < 2000; i++ { // spans multiple sealed blocks
		if err := s.Append(rec("A", i*10, mdt.Free)); err != nil {
			t.Fatal(err)
		}
	}
	from, to := t0.Add(5000*time.Second), t0.Add(10000*time.Second)
	tr := s.Trajectory("A", from, to)
	if len(tr) != 500 {
		t.Fatalf("window returned %d records, want 500", len(tr))
	}
	for _, r := range tr {
		if r.Time.Before(from) || !r.Time.Before(to) {
			t.Fatalf("record at %v outside window", r.Time)
		}
	}
	if !tr.Sorted() {
		t.Fatal("windowed trajectory not sorted")
	}
	if s.Trajectory("NOPE", from, to) != nil {
		t.Fatal("unknown taxi returned records")
	}
}

func TestFullTrajectory(t *testing.T) {
	s := New()
	n := blockTarget*2 + 37 // blocks plus an open tail
	for i := 0; i < n; i++ {
		if err := s.Append(rec("A", i, mdt.Free)); err != nil {
			t.Fatal(err)
		}
	}
	tr := s.FullTrajectory("A")
	if len(tr) != n {
		t.Fatalf("FullTrajectory returned %d, want %d", len(tr), n)
	}
	if !tr.Sorted() {
		t.Fatal("full trajectory not sorted")
	}
}

func TestScanGlobalOrder(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	// Interleave 20 taxis with random increments, appended per taxi in
	// order, then verify the global scan is time-sorted and complete.
	clock := make([]int, 20)
	var total int
	for i := 0; i < 5000; i++ {
		taxi := rng.Intn(20)
		clock[taxi] += 1 + rng.Intn(50)
		id := string(rune('A' + taxi))
		if err := s.Append(rec(id, clock[taxi], mdt.Free)); err != nil {
			t.Fatal(err)
		}
		total++
	}
	var seen []mdt.Record
	s.Scan(t0, t0.Add(time.Hour*100), func(r mdt.Record) bool {
		seen = append(seen, r)
		return true
	})
	if len(seen) != total {
		t.Fatalf("scan returned %d records, want %d", len(seen), total)
	}
	if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i].Time.Before(seen[j].Time) }) {
		t.Fatal("global scan not time-sorted")
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		if err := s.Append(rec("A", i, mdt.Free)); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	s.Scan(t0, t0.Add(time.Hour), func(mdt.Record) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("scan visited %d records after early stop, want 10", n)
	}
}

func TestScanWindowPruning(t *testing.T) {
	s := New()
	for i := 0; i < 3000; i++ {
		if err := s.Append(rec("A", i*10, mdt.Free)); err != nil {
			t.Fatal(err)
		}
	}
	from, to := t0.Add(100*time.Second), t0.Add(200*time.Second)
	var cnt int
	s.Scan(from, to, func(r mdt.Record) bool {
		if r.Time.Before(from) || !r.Time.Before(to) {
			t.Fatalf("scan leaked %v outside window", r.Time)
		}
		cnt++
		return true
	})
	if cnt != 10 {
		t.Fatalf("windowed scan returned %d, want 10", cnt)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	states := []mdt.State{mdt.Free, mdt.POB, mdt.STC, mdt.Payment}
	for i := 0; i < 1500; i++ {
		r := rec("SH0001A", i*7, states[i%4])
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 700; i++ {
		if err := s.Append(rec("SH0002B", i*11, mdt.Free)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("loaded %d records, want %d", loaded.Len(), s.Len())
	}
	a := s.FullTrajectory("SH0001A")
	b := loaded.FullTrajectory("SH0001A")
	if len(a) != len(b) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
}

func TestSaveIsAppendableAfter(t *testing.T) {
	// Save seals open blocks; the store must still accept appends after.
	s := New()
	if err := s.Append(rec("A", 0, mdt.Free)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("A", 10, mdt.POB)); err != nil {
		t.Fatalf("append after save failed: %v", err)
	}
	if got := s.FullTrajectory("A"); len(got) != 2 {
		t.Fatalf("trajectory after save+append = %d records", len(got))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a store file"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("Load accepted empty input")
	}
	// Truncated valid file.
	s := New()
	for i := 0; i < 100; i++ {
		if err := s.Append(rec("A", i, mdt.Free)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("Load accepted truncated file")
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	// Byte-level corruption anywhere in the file must either load the
	// exact same data or fail cleanly — never panic or silently return
	// garbage counts.
	s := New()
	for i := 0; i < 600; i++ {
		if err := s.Append(rec("SH0001A", i*3, mdt.State(i%4))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), orig...)
		pos := rng.Intn(len(corrupt))
		corrupt[pos] ^= 1 << uint(rng.Intn(8))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked on bit flip at %d: %v", pos, r)
				}
			}()
			loaded, err := Load(bytes.NewReader(corrupt))
			if err != nil {
				return // clean rejection
			}
			// Accepted: the flip must not have corrupted record counts
			// beyond what the payload length implies.
			if loaded.Len() < 0 || loaded.Len() > 2*s.Len() {
				t.Fatalf("bit flip at %d produced absurd store of %d records", pos, loaded.Len())
			}
		}()
	}
}

func TestEmptyStore(t *testing.T) {
	s := New()
	if s.Len() != 0 || len(s.Taxis()) != 0 {
		t.Fatal("empty store not empty")
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Fatal("loaded empty store not empty")
	}
	loaded.Scan(t0, t0.Add(time.Hour), func(mdt.Record) bool {
		t.Fatal("scan of empty store yielded a record")
		return false
	})
}

func BenchmarkAppend(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		if err := s.Append(rec("A", i, mdt.Free)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan100k(b *testing.B) {
	s := New()
	for taxi := 0; taxi < 50; taxi++ {
		id := "T" + string(rune('A'+taxi%26)) + string(rune('A'+taxi/26))
		for i := 0; i < 2000; i++ {
			if err := s.Append(rec(id, i*5+taxi, mdt.Free)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Scan(t0, t0.Add(100*time.Hour), func(mdt.Record) bool { n++; return true })
		if n != 100000 {
			b.Fatalf("scan saw %d", n)
		}
	}
}

func BenchmarkSaveLoad(b *testing.B) {
	s := New()
	for i := 0; i < 50000; i++ {
		if err := s.Append(rec("A", i, mdt.Free)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 1500; i++ {
		if err := s.Append(rec("A", i, mdt.Free)); err != nil {
			t.Fatal(err)
		}
	}
	path := t.TempDir() + "/day.tqs"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("loaded %d records, want %d", got.Len(), s.Len())
	}
}

// TestSaveFileAtomic: a failed save must leave the previous on-disk copy
// intact and no temp litter behind.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/day.tqs"
	s := New()
	if err := s.Append(rec("A", 0, mdt.Free)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// A save into a directory that vanished must fail, name the path, and
	// not disturb anything else.
	if err := s.SaveFile(dir + "/gone/day.tqs"); err == nil {
		t.Fatal("save into missing directory succeeded")
	} else if !strings.Contains(err.Error(), "gone/day.tqs") {
		t.Fatalf("error does not name the path: %v", err)
	}
	// Overwrite with a bigger store; the old copy must stay loadable at
	// every instant (we can only spot-check the end state here, plus that
	// no temp files leak).
	for i := 1; i < 3000; i++ {
		if err := s.Append(rec("A", i, mdt.Free)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "day.tqs" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after saves: %v", names)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3000 {
		t.Fatalf("loaded %d records, want 3000", got.Len())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(t.TempDir() + "/nope.tqs"); err == nil {
		t.Fatal("loading a missing file succeeded")
	} else if !strings.Contains(err.Error(), "nope.tqs") {
		t.Fatalf("error does not name the path: %v", err)
	}
}
