package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"taxiqueue/internal/mdt"
)

// The segmented write-ahead log (format TQST3). Where the single-file TQST2
// checkpoint rewrites the whole store on every save — total checkpoint I/O
// quadratic in the records of a day — the WAL only ever appends: records
// buffer into the active segment and become durable in batches (group
// commit: one write + one fsync covers every record since the last commit),
// the active segment is sealed by an O(1) rename when it fills or a
// checkpoint asks, and a background compactor folds runs of small sealed
// segments so replay cost at restart stays proportional to the data, not to
// the checkpoint count.
//
// On-disk layout, one directory per log:
//
//	active.seg              the segment being appended to (may be absent)
//	seg-<lo>-<hi>.seg       sealed, immutable segments; <lo>-<hi> is the
//	                        contiguous range of seal sequence numbers the
//	                        file covers (compaction merges ranges)
//
// Every file is an 8-byte TQST3 magic header followed by raw mdt binary
// frames in append order. Recovery replays sealed segments in range order,
// strictly — a sealed segment was fsynced before its rename, so damage
// there is real corruption and fails loudly. Only the *last* segment (the
// active one, or the newest sealed when no active file exists) gets the
// longest-clean-prefix tolerance: a torn tail is what a crash mid-commit
// legitimately leaves, so the file is truncated to its clean prefix, the
// damage is reported, and the log continues from there.
//
// Compaction is crash-safe by naming: a merged file covers the exact range
// of its sources and is written temp-then-rename, so a crash at any point
// leaves either the sources, or the merged file plus redundant sources
// whose ranges it contains — OpenWAL deletes contained files. A merge is
// only picked when it at least doubles the largest source, so a byte is
// rewritten O(log) times however long the log runs.

// walMagic is the TQST3 segment-file header.
var walMagic = [8]byte{'T', 'Q', 'S', 'T', '3', 0, 0, 0}

const (
	walActiveName = "active.seg"
	walSegPrefix  = "seg-"
	walSegSuffix  = ".seg"
)

var errBadSegment = errors.New("store: bad segment file")

// WALConfig parameterizes a segmented log.
type WALConfig struct {
	// FS is the filesystem writes go through; OS when nil. Reads use the
	// real filesystem (fault injection targets the write path).
	FS FS
	// SegmentBytes rotates the active segment when it reaches this size;
	// 4 MiB when 0. Also bounds how much data one compaction merge may
	// rewrite into a single file.
	SegmentBytes int64
	// CompactAfter triggers background compaction when at least this many
	// sealed segments exist; 8 when 0, negative disables compaction.
	CompactAfter int
	// OnCompact, when set, is called from the compactor goroutine after
	// each merge attempt with the number of segments folded (0 on error).
	OnCompact func(folded int, err error)
	// OnSync, when set, is called from the background syncer after each
	// pipelined fsync (CommitAsync) with its duration and outcome.
	OnSync func(took time.Duration, err error)
}

func (c WALConfig) withDefaults() WALConfig {
	if c.FS == nil {
		c.FS = OS
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.CompactAfter == 0 {
		c.CompactAfter = 8
	}
	return c
}

// walSeg is one sealed, immutable segment file.
type walSeg struct {
	lo, hi uint64 // inclusive seal-sequence range
	path   string
	bytes  int64
}

// WAL is a segmented append-only record log. Append/Commit/CommitAsync/
// Seal/Close are single-goroutine (the owning shard worker); Stats, the
// internal compactor and the group-commit syncer synchronize on mu and
// syncMu respectively.
type WAL struct {
	dir string
	cfg WALConfig

	active     File   // nil until the first commit after open/seal
	activeSize int64  // bytes written to the active file so far
	buf        []byte // encoded records (plus header) awaiting write
	pending    int    // records appended since the last successful write-out
	sealDefer  int64  // don't retry a failed rotation until this size

	mu      sync.Mutex
	sealed  []walSeg
	nextSeq uint64
	busy    bool // a compactor goroutine is running

	// The pipelined group commit: CommitAsync writes the buffer inline and
	// hands the fsync to a lazily started syncer goroutine, so the writer
	// never waits on disk latency. Everything below syncMu is shared with
	// the syncer; syncCond signals fsync completion to synchronous commits.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	syncing  bool  // the syncer is inside an fsync right now
	unsynced int    // records written to the active file but not yet fsynced
	syncErr  error  // sticky async fsync failure, surfaced on the next commit
	syncReq  chan struct{} // cap-1 coalescing wakeup; nil until first CommitAsync
	syncWG   sync.WaitGroup

	wg      sync.WaitGroup
	aborted atomic.Bool

	bytesWritten atomic.Int64
	compactions  atomic.Int64
}

// WALStats is a point-in-time view of the log's shape and write volume.
type WALStats struct {
	Segments     int   // sealed segment files on disk
	SealedBytes  int64 // bytes across sealed segments
	ActiveBytes  int64 // bytes written to the active segment
	Pending      int   // records appended but not yet fsynced
	BytesWritten int64 // total bytes written since open, compaction included
	Compactions  int64 // completed compaction merges
}

// segName builds the file name for a sealed range.
func segName(lo, hi uint64) string {
	return fmt.Sprintf("%s%09d-%09d%s", walSegPrefix, lo, hi, walSegSuffix)
}

// parseSegName extracts the range from a sealed-segment file name.
func parseSegName(name string) (lo, hi uint64, ok bool) {
	body, found := strings.CutPrefix(name, walSegPrefix)
	if !found {
		return 0, 0, false
	}
	body, found = strings.CutSuffix(body, walSegSuffix)
	if !found {
		return 0, 0, false
	}
	a, b, found := strings.Cut(body, "-")
	if !found {
		return 0, 0, false
	}
	lo, err1 := strconv.ParseUint(a, 10, 64)
	hi, err2 := strconv.ParseUint(b, 10, 64)
	if err1 != nil || err2 != nil || lo == 0 || hi < lo {
		return 0, 0, false
	}
	return lo, hi, true
}

// OpenWAL opens (creating if needed) the segmented log in dir, replays every
// recovered record through replay (which may be nil), and reports what was
// salvaged. Sealed segments must be intact; the last segment tolerates a
// torn tail, which is truncated away and surfaced in Recovery. The error
// return is reserved for real corruption — a wrong-magic file, a damaged
// non-last segment, a gap in the seal sequence — where continuing would
// silently drop acknowledged data.
func OpenWAL(dir string, cfg WALConfig, replay func(mdt.Record)) (*WAL, Recovery, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("store: wal dir: %w", err)
	}
	// A crash mid-compaction leaves a temp file; committed segments are
	// unaffected, so just sweep it.
	if _, err := RemoveTemps(dir); err != nil {
		return nil, Recovery{}, fmt.Errorf("store: wal temp sweep: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("store: wal dir: %w", err)
	}
	var segs []walSeg
	activePath := ""
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if e.Name() == walActiveName {
			activePath = filepath.Join(dir, e.Name())
			continue
		}
		if lo, hi, ok := parseSegName(e.Name()); ok {
			info, err := e.Info()
			if err != nil {
				return nil, Recovery{}, fmt.Errorf("store: wal segment %s: %w", e.Name(), err)
			}
			segs = append(segs, walSeg{lo: lo, hi: hi, path: filepath.Join(dir, e.Name()), bytes: info.Size()})
		}
	}
	// Drop segments whose range another segment contains: the redundant
	// sources of a compaction that crashed after its rename.
	segs, err = dropContained(cfg.FS, segs)
	if err != nil {
		return nil, Recovery{}, err
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].lo < segs[j].lo })
	next := uint64(1)
	for _, sg := range segs {
		if sg.lo != next {
			return nil, Recovery{}, fmt.Errorf("store: wal segment sequence broken at %s (want seq %d): %w",
				filepath.Base(sg.path), next, errBadSegment)
		}
		next = sg.hi + 1
	}

	w := &WAL{dir: dir, cfg: cfg, nextSeq: next}
	w.syncCond = sync.NewCond(&w.syncMu)
	var rec Recovery
	// Replay sealed segments strictly; only the very last file on disk may
	// be tolerantly truncated.
	for i, sg := range segs {
		last := activePath == "" && i == len(segs)-1
		n, clean, damage, err := readSegment(sg.path, replay)
		rec.Records += n
		if err != nil {
			return nil, rec, err
		}
		if damage != nil {
			if !last {
				return nil, rec, fmt.Errorf("store: sealed wal segment %s damaged: %w",
					filepath.Base(sg.path), damage)
			}
			rec.Err = fmt.Errorf("store: wal segment %s: %w", filepath.Base(sg.path), damage)
			rec.TruncatedAt = filepath.Base(sg.path)
			if clean <= int64(len(walMagic)) || n == 0 {
				if err := cfg.FS.Remove(sg.path); err != nil {
					return nil, rec, fmt.Errorf("store: wal drop empty segment: %w", err)
				}
				w.nextSeq = sg.lo
				continue
			}
			if err := os.Truncate(sg.path, clean); err != nil {
				return nil, rec, fmt.Errorf("store: wal truncate %s: %w", filepath.Base(sg.path), err)
			}
			sg.bytes = clean
		}
		w.sealed = append(w.sealed, sg)
	}
	// The recovered active segment: truncate any torn tail, then seal it
	// (or drop it when empty) so the new process always starts a fresh
	// active file and never appends to bytes it did not write.
	if activePath != "" {
		n, clean, damage, err := readSegment(activePath, replay)
		rec.Records += n
		if err != nil {
			return nil, rec, err
		}
		if damage != nil {
			rec.Err = fmt.Errorf("store: wal active segment: %w", damage)
			rec.TruncatedAt = walActiveName
		}
		if n == 0 {
			if err := cfg.FS.Remove(activePath); err != nil {
				return nil, rec, fmt.Errorf("store: wal drop empty active: %w", err)
			}
		} else {
			if damage != nil {
				if err := os.Truncate(activePath, clean); err != nil {
					return nil, rec, fmt.Errorf("store: wal truncate active: %w", err)
				}
			}
			seq := w.nextSeq
			sealedPath := filepath.Join(dir, segName(seq, seq))
			if err := cfg.FS.Rename(activePath, sealedPath); err != nil {
				return nil, rec, fmt.Errorf("store: wal seal recovered active: %w", err)
			}
			w.sealed = append(w.sealed, walSeg{lo: seq, hi: seq, path: sealedPath, bytes: clean})
			w.nextSeq = seq + 1
		}
	}
	return w, rec, nil
}

// dropContained removes segments whose seal range is contained in another
// segment's range and returns the survivors.
func dropContained(fsys FS, segs []walSeg) ([]walSeg, error) {
	keep := segs[:0]
	for i, sg := range segs {
		contained := false
		for j, other := range segs {
			if i == j {
				continue
			}
			if sg.lo >= other.lo && sg.hi <= other.hi &&
				(other.hi-other.lo > sg.hi-sg.lo || j < i) {
				contained = true
				break
			}
		}
		if contained {
			if err := fsys.Remove(sg.path); err != nil {
				return nil, fmt.Errorf("store: wal drop redundant segment: %w", err)
			}
			continue
		}
		keep = append(keep, sg)
	}
	return keep, nil
}

// readSegment replays one segment file. The hard error return is for files
// that were never a segment (wrong magic); structural damage past a valid
// header — a torn tail — comes back in damage with clean naming the byte
// length of the longest valid prefix, every record of which was replayed.
func readSegment(path string, replay func(mdt.Record)) (n int, clean int64, damage, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("store: wal read %s: %w", filepath.Base(path), err)
	}
	if len(data) < len(walMagic) {
		// Shorter than a header: a creation the crash tore. Nothing in it
		// was ever acknowledged, so it is damage, not corruption.
		return 0, 0, fmt.Errorf("store: torn segment header: %w", io.ErrUnexpectedEOF), nil
	}
	if [8]byte(data[:len(walMagic)]) != walMagic {
		return 0, 0, nil, fmt.Errorf("store: wal %s: %w", filepath.Base(path), errBadSegment)
	}
	off := int64(len(walMagic))
	body := data[off:]
	for len(body) > 0 {
		r, sz, err := mdt.DecodeBinary(body)
		if err != nil {
			return n, off, fmt.Errorf("store: frame %d: %w", n, err), nil
		}
		if replay != nil {
			replay(r)
		}
		n++
		off += int64(sz)
		body = body[sz:]
	}
	return n, off, nil, nil
}

// Append buffers one record. The record is always retained; a non-nil error
// reports a failed size-triggered rotation (the log keeps appending to the
// oversized active segment and retries the rotation later).
func (w *WAL) Append(r mdt.Record) error {
	if w.active == nil && len(w.buf) == 0 {
		w.buf = append(w.buf, walMagic[:]...)
	}
	w.buf = r.AppendBinary(w.buf)
	w.pending++
	if size := w.activeSize + int64(len(w.buf)); size >= w.cfg.SegmentBytes && size >= w.sealDefer {
		if err := w.Seal(); err != nil {
			// Retrying a sick disk on every subsequent append would hammer
			// it; let the segment grow another quarter-threshold first.
			w.sealDefer = size + w.cfg.SegmentBytes/4
			return err
		}
		w.sealDefer = 0
	}
	return nil
}

// Pending reports how many appended records a crash right now would lose:
// records still buffered plus records written to the file but not fsynced.
func (w *WAL) Pending() int {
	w.syncMu.Lock()
	n := w.unsynced
	w.syncMu.Unlock()
	return w.pending + n
}

// flushBuf writes every buffered record to the active file (creating it on
// first use), moving them from pending to unsynced — on disk, not yet
// durable. On a partial write the unwritten suffix stays buffered; the
// write was sequential, so the file still ends exactly where the retry
// resumes.
func (w *WAL) flushBuf() error {
	if len(w.buf) == 0 {
		return nil
	}
	if w.active == nil {
		f, err := w.cfg.FS.Create(filepath.Join(w.dir, walActiveName))
		if err != nil {
			return fmt.Errorf("store: wal active: %w", err)
		}
		w.syncMu.Lock()
		w.active = f
		w.syncMu.Unlock()
	}
	n, err := w.active.Write(w.buf)
	w.activeSize += int64(n)
	w.bytesWritten.Add(int64(n))
	if err != nil {
		w.buf = w.buf[:copy(w.buf, w.buf[n:])]
		return fmt.Errorf("store: wal write: %w", err)
	}
	w.buf = w.buf[:0]
	w.syncMu.Lock()
	w.unsynced += w.pending
	w.syncMu.Unlock()
	w.pending = 0
	return nil
}

// Commit makes every appended record durable: one buffered write plus one
// fsync covers all of them (group commit). It joins any fsync the syncer
// has in flight, so on return everything ever appended is on stable
// storage. On error nothing is marked durable; buffered bytes stay
// buffered and written bytes stay counted as unsynced for the next attempt.
func (w *WAL) Commit() error {
	if err := w.flushBuf(); err != nil {
		return err
	}
	w.syncMu.Lock()
	for w.syncing {
		w.syncCond.Wait()
	}
	err := w.syncErr
	w.syncErr = nil
	n := w.unsynced
	f := w.active
	if err != nil || n == 0 || f == nil {
		w.syncMu.Unlock()
		if err != nil {
			return err
		}
		return nil
	}
	w.syncing = true // excludes the syncer until this fsync resolves
	w.syncMu.Unlock()
	serr := f.Sync()
	w.syncMu.Lock()
	w.syncing = false
	if serr == nil {
		w.unsynced -= n
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	if serr != nil {
		return fmt.Errorf("store: wal sync: %w", serr)
	}
	return nil
}

// CommitAsync is the hot-path group commit: it writes the buffer to the
// active file inline (one write syscall per batch) and hands the fsync to
// the background syncer, so the caller never waits on disk latency.
// Records count as Pending until the fsync completes. The returned error
// surfaces a write failure or a previous async fsync failure; the records
// involved stay pending and are retried by the next commit of either kind.
func (w *WAL) CommitAsync() error {
	if err := w.flushBuf(); err != nil {
		return err
	}
	w.syncMu.Lock()
	err := w.syncErr
	w.syncErr = nil
	n := w.unsynced
	w.syncMu.Unlock()
	if n == 0 {
		return err
	}
	if w.syncReq == nil {
		w.syncReq = make(chan struct{}, 1)
		w.syncWG.Add(1)
		go w.syncer()
	}
	select {
	case w.syncReq <- struct{}{}:
	default: // a wakeup is already queued; its fsync will cover these bytes
	}
	return err
}

// syncer is the group-commit fsync goroutine: each wakeup makes every byte
// written so far durable. Wakeups coalesce — one fsync can cover many
// CommitAsync calls — which is exactly the batching that keeps durable
// throughput close to non-durable.
func (w *WAL) syncer() {
	defer w.syncWG.Done()
	for range w.syncReq {
		w.syncMu.Lock()
		for w.syncing {
			w.syncCond.Wait()
		}
		n := w.unsynced
		f := w.active
		if n == 0 || f == nil {
			w.syncMu.Unlock()
			continue
		}
		w.syncing = true
		w.syncMu.Unlock()
		t0 := time.Now()
		err := f.Sync()
		w.syncMu.Lock()
		w.syncing = false
		if err == nil {
			w.unsynced -= n
		} else {
			w.syncErr = err
		}
		w.syncCond.Broadcast()
		w.syncMu.Unlock()
		if w.cfg.OnSync != nil {
			w.cfg.OnSync(time.Since(t0), err)
		}
	}
}

// stopSyncer shuts the background syncer down and waits for it; after this
// no goroutine but the caller touches the active file.
func (w *WAL) stopSyncer() {
	if w.syncReq != nil {
		close(w.syncReq)
		w.syncWG.Wait()
		w.syncReq = nil
	}
}

// Seal commits, then rotates the active segment into a sealed immutable
// file with an atomic rename — the O(1) checkpoint. A header-only (or
// absent) active segment is a successful no-op, so sealing is idempotent
// and its cost never depends on how many records the log already holds.
func (w *WAL) Seal() error {
	if err := w.Commit(); err != nil {
		return err
	}
	if w.active == nil || w.activeSize <= int64(len(walMagic)) {
		return nil
	}
	w.mu.Lock()
	seq := w.nextSeq
	w.mu.Unlock()
	sealedPath := filepath.Join(w.dir, segName(seq, seq))
	if err := w.cfg.FS.Rename(filepath.Join(w.dir, walActiveName), sealedPath); err != nil {
		return fmt.Errorf("store: wal seal: %w", err)
	}
	// The Commit above left nothing unsynced, so a stale syncer wakeup
	// skips without touching the file; swap the pointer under syncMu so
	// the skip check never reads a closed handle.
	w.syncMu.Lock()
	w.active.Close()
	w.active = nil
	w.syncMu.Unlock()
	sg := walSeg{lo: seq, hi: seq, path: sealedPath, bytes: w.activeSize}
	w.activeSize = 0
	w.mu.Lock()
	w.sealed = append(w.sealed, sg)
	w.nextSeq = seq + 1
	trigger := w.cfg.CompactAfter > 0 && len(w.sealed) >= w.cfg.CompactAfter && !w.busy
	if trigger {
		w.busy = true
		w.wg.Add(1)
	}
	w.mu.Unlock()
	if trigger {
		go w.compact()
	}
	return nil
}

// Close commits any buffered records and releases the active file, after
// waiting out a running compaction and stopping the group-commit syncer.
// The directory remains a valid log.
func (w *WAL) Close() error {
	w.wg.Wait()
	w.stopSyncer()
	err := w.Commit()
	if w.active != nil {
		if cerr := w.active.Close(); err == nil {
			err = cerr
		}
		w.active = nil
	}
	return err
}

// Abort releases the log without committing buffered records — the
// crash-test switch: on-disk state stays exactly at the last commit. It
// still waits out a running compaction so a successor process opening the
// same directory never races the compactor's renames.
func (w *WAL) Abort() {
	w.aborted.Store(true)
	w.wg.Wait()
	w.stopSyncer()
	if w.active != nil {
		w.active.Close()
		w.active = nil
	}
	w.buf = nil
	w.pending = 0
}

// Stats snapshots the log's shape.
func (w *WAL) Stats() WALStats {
	st := WALStats{
		ActiveBytes:  w.activeSize,
		Pending:      w.Pending(),
		BytesWritten: w.bytesWritten.Load(),
		Compactions:  w.compactions.Load(),
	}
	w.mu.Lock()
	st.Segments = len(w.sealed)
	for _, sg := range w.sealed {
		st.SealedBytes += sg.bytes
	}
	w.mu.Unlock()
	return st
}

// compact folds adjacent runs of small sealed segments until no eligible
// run remains. A run is eligible when it merges at least two segments, fits
// in SegmentBytes, and at least doubles its largest member — the rule that
// bounds write amplification at O(log) rewrites per byte.
func (w *WAL) compact() {
	defer func() {
		w.mu.Lock()
		w.busy = false
		w.mu.Unlock()
		w.wg.Done()
	}()
	for !w.aborted.Load() {
		run := w.pickRun()
		if len(run) < 2 {
			return
		}
		folded, err := w.mergeRun(run)
		if w.cfg.OnCompact != nil {
			w.cfg.OnCompact(folded, err)
		}
		if err != nil {
			return
		}
		w.compactions.Add(1)
	}
}

// pickRun returns a copy of the oldest eligible run of sealed segments.
func (w *WAL) pickRun() []walSeg {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := 0; i < len(w.sealed)-1; i++ {
		sum, largest := int64(0), int64(0)
		for j := i; j < len(w.sealed); j++ {
			b := w.sealed[j].bytes
			if sum+b > w.cfg.SegmentBytes && j > i {
				break
			}
			sum += b
			if b > largest {
				largest = b
			}
			if j > i && sum <= w.cfg.SegmentBytes && sum >= 2*largest {
				return append([]walSeg(nil), w.sealed[i:j+1]...)
			}
		}
	}
	return nil
}

// mergeRun rewrites run into one segment covering its combined range:
// temp-write, fsync, rename, then splice the in-memory list and delete the
// sources. A crash anywhere leaves a recoverable directory (see OpenWAL's
// contained-range sweep).
func (w *WAL) mergeRun(run []walSeg) (int, error) {
	lo, hi := run[0].lo, run[len(run)-1].hi
	f, err := w.cfg.FS.CreateTemp(w.dir, walSegPrefix+tempSuffix+"-*")
	if err != nil {
		return 0, fmt.Errorf("store: compact temp: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { f.Close(); w.cfg.FS.Remove(tmp) }
	written := int64(0)
	if n, err := f.Write(walMagic[:]); err != nil {
		cleanup()
		return 0, fmt.Errorf("store: compact write: %w", err)
	} else {
		written += int64(n)
	}
	for _, sg := range run {
		data, err := os.ReadFile(sg.path)
		if err != nil {
			cleanup()
			return 0, fmt.Errorf("store: compact read: %w", err)
		}
		if len(data) < len(walMagic) || [8]byte(data[:len(walMagic)]) != walMagic {
			cleanup()
			return 0, fmt.Errorf("store: compact source %s: %w", filepath.Base(sg.path), errBadSegment)
		}
		n, err := f.Write(data[len(walMagic):])
		written += int64(n)
		if err != nil {
			cleanup()
			return 0, fmt.Errorf("store: compact write: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return 0, fmt.Errorf("store: compact sync: %w", err)
	}
	if err := f.Chmod(0o644); err != nil {
		cleanup()
		return 0, fmt.Errorf("store: compact chmod: %w", err)
	}
	if err := f.Close(); err != nil {
		w.cfg.FS.Remove(tmp)
		return 0, fmt.Errorf("store: compact close: %w", err)
	}
	merged := walSeg{lo: lo, hi: hi, path: filepath.Join(w.dir, segName(lo, hi)), bytes: written}
	if err := w.cfg.FS.Rename(tmp, merged.path); err != nil {
		w.cfg.FS.Remove(tmp)
		return 0, fmt.Errorf("store: compact rename: %w", err)
	}
	w.bytesWritten.Add(written)
	w.mu.Lock()
	for i := range w.sealed {
		if w.sealed[i].lo == lo {
			tail := append([]walSeg{merged}, w.sealed[i+len(run):]...)
			w.sealed = append(w.sealed[:i], tail...)
			break
		}
	}
	w.mu.Unlock()
	for _, sg := range run {
		// Best-effort: a leftover source is contained in the merged range
		// and swept at the next open.
		w.cfg.FS.Remove(sg.path)
	}
	return len(run), nil
}
