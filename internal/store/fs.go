package store

import (
	"io"
	"os"
)

// FS abstracts the handful of filesystem operations the store's durability
// path uses (SaveFileFS / RemoveTemps). Production code uses OS; the chaos
// harness substitutes a fault-injecting implementation to simulate short
// writes, fsync failures and crashes between temp-write and rename without
// touching the real syscall layer.
type FS interface {
	// Create creates (or truncates) the named file for writing — the WAL's
	// active segment goes through this, so injected write/sync faults land
	// on the group-commit path too.
	Create(name string) (File, error)
	// CreateTemp creates a new temporary file in dir (see os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
}

// File is the open-file surface SaveFileFS needs.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Chmod(mode os.FileMode) error
	Name() string
}

// osFS is the passthrough FS.
type osFS struct{}

func (osFS) Create(name string) (File, error)             { return os.Create(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }

// OS is the real filesystem.
var OS FS = osFS{}
