package feedclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"taxiqueue/internal/chaos"
	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/ingest"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/stream"
)

// testFeed builds n in-order records across a few taxis.
func testFeed(n int) []mdt.Record {
	base := time.Date(2026, 1, 5, 6, 0, 0, 0, time.UTC)
	ids := []string{"SH0001A", "SH0002B", "SH0003C", "SH0004D"}
	recs := make([]mdt.Record, n)
	for i := range recs {
		recs[i] = mdt.Record{
			Time: base.Add(time.Duration(i) * time.Second), TaxiID: ids[i%len(ids)],
			Pos: geo.Point{Lat: 1.3, Lon: 103.8}, Speed: 30, State: mdt.Free,
		}
	}
	return recs
}

// newIngest starts a real ingest service behind an HTTP mux.
func newIngest(t *testing.T) (*ingest.Service, *httptest.Server) {
	t.Helper()
	grid := core.DaySlots(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
	svc, err := ingest.NewService(ingest.Config{
		Stream: stream.Config{
			Spots:      []core.QueueSpot{{Pos: geo.Point{Lat: 1.3, Lon: 103.8}}},
			Thresholds: []core.Thresholds{{}},
			Grid:       grid,
		},
		Clean:  clean.Config{ValidFrame: citymap.Island},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", svc.HandleIngest)
	mux.HandleFunc("/ingest/flush", svc.HandleFlush)
	mux.HandleFunc("/ingest/stats", svc.HandleStats)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

// TestStreamBothEncodings: a clean round trip consumes every record.
func TestStreamBothEncodings(t *testing.T) {
	for _, enc := range []string{"binary", "json"} {
		t.Run(enc, func(t *testing.T) {
			svc, srv := newIngest(t)
			recs := testFeed(2500)
			cl, err := New(Config{URL: srv.URL + "/ingest", Encoding: enc, BatchSize: 300})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := cl.Stream(context.Background(), recs)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Sent != len(recs) || rep.Retries != 0 {
				t.Fatalf("report %+v, want %d sent, 0 retries", rep, len(recs))
			}
			if err := cl.Flush(context.Background()); err != nil {
				t.Fatal(err)
			}
			st := svc.Stats()
			if st.Accepted+st.Rejected != int64(len(recs)) {
				t.Fatalf("server accounted %d of %d records", st.Accepted+st.Rejected, len(recs))
			}
			if raw, err := cl.Stats(context.Background()); err != nil || !strings.Contains(string(raw), `"accepted"`) {
				t.Fatalf("stats: %v, %.80s", err, raw)
			}
		})
	}
}

// TestResumeAcrossDroppedConnections is the resilience core: a chaos
// transport refuses connections and cuts response bodies (so the client
// cannot know whether those batches were applied), yet the stream
// completes and the server ends with exactly the clean-run record set —
// re-sent overlap absorbed by the server's dedup window, nothing lost.
func TestResumeAcrossDroppedConnections(t *testing.T) {
	recs := testFeed(4000)

	clean1, srv1 := newIngest(t)
	cl, err := New(Config{URL: srv1.URL + "/ingest", BatchSize: 250})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stream(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := clean1.Stats()

	svc, srv := newIngest(t)
	f := chaos.New(chaos.Config{Seed: 99, RefuseProb: 0.15, CutBodyProb: 0.15})
	cl2, err := New(Config{
		URL: srv.URL + "/ingest", BatchSize: 250,
		BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		MaxAttempts: 50, Seed: 7,
		HTTPClient: &http.Client{Transport: f.RoundTripper(nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl2.Stream(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != len(recs) {
		t.Fatalf("sent %d of %d", rep.Sent, len(recs))
	}
	if rep.Retries == 0 || f.Total() == 0 {
		t.Fatalf("chaos run saw no faults (retries %d, injected %d)", rep.Retries, f.Total())
	}
	f.SetEnabled(false)
	if err := cl2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Accepted != want.Accepted {
		t.Fatalf("chaos run accepted %d records, clean run %d", st.Accepted, want.Accepted)
	}
	var deduped int64
	for _, sh := range st.Shards {
		deduped += sh.Deduped
	}
	if deduped == 0 {
		t.Fatal("no re-sent batch was ever absorbed — the cut-body path was not exercised")
	}
}

// TestRetriesThroughServerErrors: a server that 503s for a while (e.g.
// restarting) is retried with backoff until it recovers.
func TestRetriesThroughServerErrors(t *testing.T) {
	var calls atomic.Int64
	svc, srv := newIngest(t)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"restarting"}`))
			return
		}
		svc.HandleIngest(w, r)
	}))
	defer flaky.Close()
	_ = srv

	cl, err := New(Config{
		URL: flaky.URL, BatchSize: 100,
		BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Stream(context.Background(), testFeed(300))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 300 || rep.Retries != 3 {
		t.Fatalf("report %+v, want 300 sent after 3 retries", rep)
	}
}

// TestFatal4xxStopsImmediately: a 4xx means the request itself is wrong;
// retrying cannot help and must not happen.
func TestFatal4xxStopsImmediately(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusRequestEntityTooLarge)
		w.Write([]byte(`{"error":"body too large"}`))
	}))
	defer srv.Close()
	cl, err := New(Config{URL: srv.URL, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Stream(context.Background(), testFeed(100))
	if err == nil || !strings.Contains(err.Error(), "413") {
		t.Fatalf("err %v, want fatal 413", err)
	}
	if calls.Load() != 1 || rep.Retries != 0 {
		t.Fatalf("%d calls, %d retries — a fatal status was retried", calls.Load(), rep.Retries)
	}
}

// TestBackpressureAdvancesByProcessed is the cursor regression at the
// client: on 429 the resume point is the server's processed cursor, not
// the decoded-record count. The fake server consumes a prefix and reports
// processed; the next batch must start exactly one past it.
func TestBackpressureAdvancesByProcessed(t *testing.T) {
	recs := testFeed(200)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		call := calls.Add(1)
		if call == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{"accepted": 37, "processed": 37, "error": "backpressure"})
			return
		}
		// Decode what the client re-sent and check the resume point.
		recsGot, _, _, _, err := ingestDecodeForTest(r)
		if err != nil {
			t.Errorf("decode retry body: %v", err)
		}
		if call == 2 && (len(recsGot) == 0 || !recsGot[0].Equal(recs[37])) {
			t.Errorf("retry resumed at wrong record (got %d records, first %+v)", len(recsGot), recsGot[0])
		}
		json.NewEncoder(w).Encode(map[string]any{"accepted": len(recsGot), "processed": len(recsGot)})
	}))
	defer srv.Close()
	cl, err := New(Config{URL: srv.URL, BatchSize: 100, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Stream(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backpressure != 1 || rep.Sent != 200 {
		t.Fatalf("report %+v, want 1 backpressure round, 200 sent", rep)
	}
}

// ingestDecodeForTest decodes a binary /ingest body like the server does.
func ingestDecodeForTest(r *http.Request) ([]mdt.Record, int, int, int, error) {
	var recs []mdt.Record
	buf := make([]byte, 0, 1<<16)
	tmp := make([]byte, 4096)
	for {
		n, err := r.Body.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	for len(buf) > 0 {
		rec, n, err := mdt.DecodeBinary(buf)
		if err != nil {
			return recs, 0, 0, 0, err
		}
		recs = append(recs, rec)
		buf = buf[n:]
	}
	return recs, 0, 0, 0, nil
}

// TestBackoffCappedAndSeeded: the delay grows exponentially, never
// exceeds MaxBackoff, never goes below half the nominal delay, and is
// reproducible for a fixed seed.
func TestBackoffCappedAndSeeded(t *testing.T) {
	mk := func() *Client {
		c, err := New(Config{URL: "http://x/ingest", Seed: 5,
			BaseBackoff: 100 * time.Millisecond, MaxBackoff: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	for attempt := 1; attempt <= 12; attempt++ {
		da, db := a.backoff(attempt), b.backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, da, db)
		}
		nominal := 100 * time.Millisecond << (attempt - 1)
		if nominal > 2*time.Second || nominal <= 0 {
			nominal = 2 * time.Second
		}
		if da > nominal || da < nominal/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, da, nominal/2, nominal)
		}
	}
}
