// Package feedclient is the resilient replay client for a live queued
// /ingest endpoint — the piece that makes the paper's GPRS reality
// survivable end to end. A mobile data terminal feed drops connections,
// times out and meets a restarting server; the client's contract is that
// none of that loses or duplicates a record: every request carries a
// per-request timeout, failures retry with capped exponential backoff and
// seeded jitter, 429 backpressure advances by the server's processed
// cursor, and a request whose fate is unknown (transport error after the
// body may have been applied) is simply re-sent — the ingest service's
// ordering rule and dedup window make re-sends idempotent.
package feedclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"taxiqueue/internal/ingest"
	"taxiqueue/internal/mdt"
)

// Config parameterizes a Client.
type Config struct {
	// URL is the /ingest endpoint. Required.
	URL string
	// BatchSize is the records per POST; 500 when 0.
	BatchSize int
	// Encoding is the wire encoding: "binary" (default) or "json".
	Encoding string
	// Rate paces the stream to this many records/sec; 0 streams unpaced.
	Rate float64
	// RequestTimeout bounds one POST (dial to full response); 10s when 0.
	// Without it a half-dead connection stalls the whole feed.
	RequestTimeout time.Duration
	// BaseBackoff is the first retry delay; 100ms when 0.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 5s when 0.
	MaxBackoff time.Duration
	// MaxAttempts is the consecutive failed attempts on one batch before
	// Stream gives up; 8 when 0.
	MaxAttempts int
	// Seed fixes the backoff jitter sequence (reproducible tests).
	Seed int64
	// HTTPClient overrides the HTTP client (its Timeout is ignored in
	// favor of RequestTimeout). Tests plug a chaos.RoundTripper in here.
	HTTPClient *http.Client
	// Logf, when set, receives retry/backpressure progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.BatchSize == 0 {
		c.BatchSize = 500
	}
	if c.Encoding == "" {
		c.Encoding = "binary"
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

// Report summarizes one Stream call.
type Report struct {
	Sent         int // records the server consumed
	Retries      int // re-sends after transport errors or 5xx
	Backpressure int // 429 rounds (server took a prefix)
}

// Client replays record feeds against one /ingest endpoint. A Client is
// not safe for concurrent Stream calls.
type Client struct {
	cfg Config
	rng *rand.Rand
}

// New validates cfg and returns a client.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" {
		return nil, errors.New("feedclient: URL required")
	}
	if cfg.Encoding != "binary" && cfg.Encoding != "json" {
		return nil, fmt.Errorf("feedclient: unknown encoding %q (want binary or json)", cfg.Encoding)
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// reply is the subset of the /ingest response the client steers by.
type reply struct {
	Accepted  int    `json:"accepted"`
	Processed int    `json:"processed"`
	Error     string `json:"error"`
}

// Stream replays recs (already in timestamp order) until every record is
// consumed, the context is canceled, a batch exhausts MaxAttempts, or the
// server answers a fatal 4xx. The returned Report counts what happened
// either way; on error, Report.Sent is the safe resume cursor.
func (c *Client) Stream(ctx context.Context, recs []mdt.Record) (Report, error) {
	var rep Report
	start := time.Now()
	attempts := 0
	for rep.Sent < len(recs) {
		if c.cfg.Rate > 0 {
			due := start.Add(time.Duration(float64(rep.Sent) / c.cfg.Rate * float64(time.Second)))
			if err := sleepCtx(ctx, time.Until(due)); err != nil {
				return rep, err
			}
		}
		n := c.cfg.BatchSize
		if n > len(recs)-rep.Sent {
			n = len(recs) - rep.Sent
		}
		status, r, err := c.post(ctx, recs[rep.Sent:rep.Sent+n])
		switch {
		case err != nil && ctx.Err() != nil:
			return rep, ctx.Err()
		case err != nil || status >= 500:
			// Transport failure, timeout, or a restarting server. The
			// batch's fate is unknown — it may have been applied — so
			// re-send the same cursor after backoff; the server's dedup
			// window absorbs the overlap.
			attempts++
			if attempts >= c.cfg.MaxAttempts {
				if err == nil {
					err = fmt.Errorf("feedclient: status %d: %s", status, r.Error)
				}
				return rep, fmt.Errorf("feedclient: batch at %d failed %d attempts: %w", rep.Sent, attempts, err)
			}
			d := c.backoff(attempts)
			c.logf("feedclient: batch at %d: %v (status %d); retry %d in %v",
				rep.Sent, err, status, attempts, d)
			rep.Retries++
			if err := sleepCtx(ctx, d); err != nil {
				return rep, err
			}
		case status == http.StatusOK:
			rep.Sent += c.advance(r, n)
			attempts = 0
		case status == http.StatusTooManyRequests:
			// Backpressure: the server consumed a prefix. Advance past it
			// and retry the remainder after a short pause.
			rep.Sent += c.advance(r, n)
			rep.Backpressure++
			attempts = 0
			if err := sleepCtx(ctx, c.cfg.BaseBackoff); err != nil {
				return rep, err
			}
		default:
			// 4xx: the request itself is wrong (bad encoding, oversized
			// batch). Retrying cannot help.
			return rep, fmt.Errorf("feedclient: fatal status %d at record %d: %s", status, rep.Sent, r.Error)
		}
	}
	return rep, nil
}

// advance converts a server reply into a cursor delta. Processed counts
// the units the server consumed — lines for JSON (1:1 with the records we
// sent), records for binary — clamped to the batch size as a guard against
// a misbehaving server ever pushing the cursor past the batch.
func (c *Client) advance(r reply, batch int) int {
	n := r.Processed
	if n > batch {
		n = batch
	}
	if n < 0 {
		n = 0
	}
	return n
}

// post sends one batch with the per-request timeout and decodes the reply.
func (c *Client) post(ctx context.Context, recs []mdt.Record) (int, reply, error) {
	var body bytes.Buffer
	ct := ingest.ContentTypeJSONLines
	if c.cfg.Encoding == "binary" {
		ct = ingest.ContentTypeBinary
		body.Write(ingest.EncodeBinary(nil, recs))
	} else if err := ingest.EncodeJSONLines(&body, recs); err != nil {
		return 0, reply{}, err
	}
	rctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, c.cfg.URL, &body)
	if err != nil {
		return 0, reply{}, err
	}
	req.Header.Set("Content-Type", ct)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, reply{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		// The response was cut mid-body: we cannot trust a partial
		// cursor, so treat it as a transport error and re-send.
		return 0, reply{}, err
	}
	var r reply
	if err := json.Unmarshal(raw, &r); err != nil {
		return 0, reply{}, fmt.Errorf("feedclient: bad /ingest reply (%d): %.200s", resp.StatusCode, raw)
	}
	return resp.StatusCode, r, nil
}

// backoff returns the delay before retry number attempt (1-based):
// exponential from BaseBackoff, capped at MaxBackoff, with ±50% seeded
// jitter so restarting clients don't stampede a recovering server.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	half := int64(d / 2)
	return time.Duration(half + c.rng.Int63n(half+1))
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Flush POSTs the end-of-feed switch (URL + "/flush") so every slot is
// finalized; it shares the retry policy, since the flush barrier matters
// exactly when the server just came back.
func (c *Client) Flush(ctx context.Context) error {
	for attempt := 1; ; attempt++ {
		rctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
		req, err := http.NewRequestWithContext(rctx, http.MethodPost, c.cfg.URL+"/flush", nil)
		if err != nil {
			cancel()
			return err
		}
		resp, err := c.cfg.HTTPClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				cancel()
				return nil
			}
			err = fmt.Errorf("feedclient: flush status %d", resp.StatusCode)
		}
		cancel()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= c.cfg.MaxAttempts {
			return err
		}
		if serr := sleepCtx(ctx, c.backoff(attempt)); serr != nil {
			return serr
		}
	}
}

// Stats GETs the server's /ingest/stats JSON (URL + "/stats"), raw.
func (c *Client) Stats(ctx context.Context) ([]byte, error) {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, c.cfg.URL+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("feedclient: stats status %d", resp.StatusCode)
	}
	return raw, nil
}
