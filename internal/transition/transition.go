// Package transition builds the long-term queue-type transition reports the
// deployed system generates (§7.1: "the queue context disambiguation module
// currently mainly runs on the short-term historical dataset to generate
// the queue type transition reports"): per-spot slot-to-slot transition
// counts, a Markov transition matrix, its stationary distribution, and
// typical-day profiles aggregated over multiple days.
package transition

import (
	"fmt"
	"math"
	"strings"

	"taxiqueue/internal/core"
)

// numTypes covers C1..C4 plus Unidentified (index by core.QueueType).
const numTypes = 5

// Matrix is a queue-type transition matrix: Matrix[a][b] is the count (or
// probability, after Normalize) of a slot labeled a being followed by one
// labeled b.
type Matrix [numTypes][numTypes]float64

// Count accumulates slot-to-slot transitions from one day's label sequence.
func (m *Matrix) Count(labels []core.QueueType) {
	for i := 1; i < len(labels); i++ {
		m[labels[i-1]][labels[i]]++
	}
}

// Normalize converts counts to row-stochastic probabilities. Rows with no
// observations become self-absorbing (identity), keeping the matrix
// stochastic.
func (m Matrix) Normalize() Matrix {
	var out Matrix
	for a := 0; a < numTypes; a++ {
		row := 0.0
		for b := 0; b < numTypes; b++ {
			row += m[a][b]
		}
		if row == 0 {
			out[a][a] = 1
			continue
		}
		for b := 0; b < numTypes; b++ {
			out[a][b] = m[a][b] / row
		}
	}
	return out
}

// Stationary returns the stationary distribution of the normalized matrix
// by power iteration. It returns an error when iteration fails to converge
// (e.g. a periodic chain).
func (m Matrix) Stationary() ([numTypes]float64, error) {
	p := m.Normalize()
	var v [numTypes]float64
	for i := range v {
		v[i] = 1.0 / numTypes
	}
	for iter := 0; iter < 10000; iter++ {
		var next [numTypes]float64
		for b := 0; b < numTypes; b++ {
			for a := 0; a < numTypes; a++ {
				next[b] += v[a] * p[a][b]
			}
		}
		diff := 0.0
		for i := range next {
			diff += math.Abs(next[i] - v[i])
		}
		v = next
		if diff < 1e-12 {
			return v, nil
		}
	}
	return v, fmt.Errorf("transition: power iteration did not converge")
}

// String renders the matrix with row/column labels.
func (m Matrix) String() string {
	names := []string{"Unid", "C1", "C2", "C3", "C4"}
	order := []core.QueueType{core.C1, core.C2, core.C3, core.C4, core.Unidentified}
	var b strings.Builder
	b.WriteString("      ")
	for _, q := range order {
		fmt.Fprintf(&b, "%8s", names[q])
	}
	b.WriteByte('\n')
	for _, a := range order {
		fmt.Fprintf(&b, "%-6s", names[a])
		for _, c := range order {
			fmt.Fprintf(&b, "%8.3f", m[a][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Report aggregates context behaviour for one spot across days.
type Report struct {
	// Transitions are the raw slot-to-slot counts.
	Transitions Matrix
	// SlotMode[j] is the most frequent label of slot j across days.
	SlotMode []core.QueueType
	// Days is the number of label sequences aggregated.
	Days int
	slot [][numTypes]int
}

// NewReport creates a report for a day grid with the given slot count.
func NewReport(slots int) *Report {
	return &Report{SlotMode: make([]core.QueueType, slots), slot: make([][numTypes]int, slots)}
}

// AddDay folds one day's label sequence into the report. Sequences shorter
// or longer than the grid are clipped.
func (r *Report) AddDay(labels []core.QueueType) {
	r.Transitions.Count(labels)
	for j := 0; j < len(labels) && j < len(r.slot); j++ {
		r.slot[j][labels[j]]++
	}
	r.Days++
	for j := range r.slot {
		best, bestN := core.Unidentified, -1
		for q := 0; q < numTypes; q++ {
			if r.slot[j][q] > bestN {
				best, bestN = core.QueueType(q), r.slot[j][q]
			}
		}
		r.SlotMode[j] = best
	}
}

// TypicalDay renders the modal context per slot as merged time ranges,
// using slot length minutes (e.g. 30 for the paper's grid).
func (r *Report) TypicalDay(slotMinutes int) string {
	var b strings.Builder
	for j := 0; j < len(r.SlotMode); {
		k := j
		for k < len(r.SlotMode) && r.SlotMode[k] == r.SlotMode[j] {
			k++
		}
		fromMin := j * slotMinutes
		toMin := k * slotMinutes
		fmt.Fprintf(&b, "%02d:%02d-%02d:%02d %v\n",
			fromMin/60, fromMin%60, (toMin/60)%24, toMin%60, r.SlotMode[j])
		j = k
	}
	return b.String()
}

// Persistence returns, per queue type, the probability that the next slot
// keeps the same type (the diagonal of the normalized matrix) — a direct
// measure of how sticky each context is.
func (r *Report) Persistence() [numTypes]float64 {
	p := r.Transitions.Normalize()
	var out [numTypes]float64
	for q := 0; q < numTypes; q++ {
		out[q] = p[q][q]
	}
	return out
}
