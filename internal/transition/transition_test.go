package transition

import (
	"math"
	"strings"
	"testing"

	"taxiqueue/internal/core"
)

func TestCountAndNormalize(t *testing.T) {
	var m Matrix
	m.Count([]core.QueueType{core.C4, core.C4, core.C1, core.C1, core.C4})
	// Transitions: C4->C4, C4->C1, C1->C1, C1->C4.
	if m[core.C4][core.C4] != 1 || m[core.C4][core.C1] != 1 ||
		m[core.C1][core.C1] != 1 || m[core.C1][core.C4] != 1 {
		t.Fatalf("counts wrong: %v", m)
	}
	p := m.Normalize()
	if p[core.C4][core.C4] != 0.5 || p[core.C4][core.C1] != 0.5 {
		t.Fatalf("normalized row wrong: %v", p[core.C4])
	}
	// Unobserved rows are self-absorbing.
	if p[core.C2][core.C2] != 1 {
		t.Fatalf("empty row not identity: %v", p[core.C2])
	}
	// Every row sums to 1.
	for a := 0; a < numTypes; a++ {
		sum := 0.0
		for b := 0; b < numTypes; b++ {
			sum += p[a][b]
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", a, sum)
		}
	}
}

func TestStationaryTwoState(t *testing.T) {
	// C1 -> C2 with p=0.25, C2 -> C1 with p=0.5: stationary pi(C1) = 2/3.
	var m Matrix
	m[core.C1][core.C1] = 3
	m[core.C1][core.C2] = 1
	m[core.C2][core.C1] = 1
	m[core.C2][core.C2] = 1
	pi, err := m.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	total := pi[core.C1] + pi[core.C2]
	if math.Abs(pi[core.C1]/total-2.0/3) > 1e-6 {
		t.Fatalf("pi(C1) = %g of observed mass, want 2/3", pi[core.C1]/total)
	}
	sum := 0.0
	for _, v := range pi {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stationary sums to %g", sum)
	}
}

func TestCountEmptyAndSingle(t *testing.T) {
	var m Matrix
	m.Count(nil)
	m.Count([]core.QueueType{core.C1})
	for a := 0; a < numTypes; a++ {
		for b := 0; b < numTypes; b++ {
			if m[a][b] != 0 {
				t.Fatal("transitions counted from empty/single sequences")
			}
		}
	}
}

func TestReportSlotMode(t *testing.T) {
	r := NewReport(4)
	r.AddDay([]core.QueueType{core.C4, core.C1, core.C1, core.C4})
	r.AddDay([]core.QueueType{core.C4, core.C1, core.C2, core.C4})
	r.AddDay([]core.QueueType{core.C3, core.C1, core.C2, core.C4})
	want := []core.QueueType{core.C4, core.C1, core.C2, core.C4}
	for j, w := range want {
		if r.SlotMode[j] != w {
			t.Errorf("slot %d mode = %v, want %v", j, r.SlotMode[j], w)
		}
	}
	if r.Days != 3 {
		t.Fatalf("Days = %d", r.Days)
	}
}

func TestTypicalDayMergesRanges(t *testing.T) {
	r := NewReport(6)
	r.AddDay([]core.QueueType{core.C4, core.C4, core.C1, core.C1, core.C1, core.C4})
	out := r.TypicalDay(30)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("typical day has %d ranges, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "00:00-01:00 C4") {
		t.Errorf("first range = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "01:00-02:30 C1") {
		t.Errorf("second range = %q", lines[1])
	}
}

func TestPersistence(t *testing.T) {
	r := NewReport(5)
	r.AddDay([]core.QueueType{core.C1, core.C1, core.C1, core.C2, core.C2})
	p := r.Persistence()
	// C1: 2 self-transitions of 3 exits... transitions from C1: C1->C1 x2,
	// C1->C2 x1 => persistence 2/3. C2: 1 of 1 => 1.
	if math.Abs(p[core.C1]-2.0/3) > 1e-9 {
		t.Errorf("C1 persistence = %g, want 2/3", p[core.C1])
	}
	if p[core.C2] != 1 {
		t.Errorf("C2 persistence = %g, want 1", p[core.C2])
	}
}

func TestMatrixString(t *testing.T) {
	var m Matrix
	m.Count([]core.QueueType{core.C1, core.C2})
	s := m.Normalize().String()
	if !strings.Contains(s, "C1") || !strings.Contains(s, "Unid") {
		t.Fatalf("matrix rendering incomplete:\n%s", s)
	}
}
