package transition

import (
	"math"
	"math/rand"
	"testing"

	"taxiqueue/internal/core"
)

// TestStationaryAbsorbing: a chain with an absorbing state concentrates all
// stationary mass there.
func TestStationaryAbsorbing(t *testing.T) {
	var m Matrix
	m[core.C1][core.C4] = 1 // C1 always decays to C4
	m[core.C4][core.C4] = 1 // C4 is absorbing
	pi, err := m.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	// Unobserved states are self-absorbing too, so the mass that started
	// on them stays; C1's mass must all flow to C4.
	if pi[core.C1] > 1e-9 {
		t.Fatalf("transient state retains mass %g", pi[core.C1])
	}
	if pi[core.C4] < 0.39 { // its own 1/5 plus C1's 1/5
		t.Fatalf("absorbing state has mass %g, want ~0.4", pi[core.C4])
	}
}

// TestStationaryIsFixedPoint: pi * P = pi for random chains.
func TestStationaryIsFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		var m Matrix
		for a := 0; a < numTypes; a++ {
			for b := 0; b < numTypes; b++ {
				m[a][b] = float64(rng.Intn(10))
			}
		}
		pi, err := m.Stationary()
		if err != nil {
			continue // periodic chains may legitimately fail to converge
		}
		p := m.Normalize()
		for b := 0; b < numTypes; b++ {
			next := 0.0
			for a := 0; a < numTypes; a++ {
				next += pi[a] * p[a][b]
			}
			if math.Abs(next-pi[b]) > 1e-6 {
				t.Fatalf("trial %d: pi not a fixed point at %d: %g vs %g", trial, b, next, pi[b])
			}
		}
	}
}

// TestStationaryMatchesEmpiricalShares: for a chain built from a long label
// sequence, the stationary distribution approximates the sequence's label
// shares.
func TestStationaryMatchesEmpiricalShares(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Build a sticky two-state sequence: C1 70%, C4 30%.
	var labels []core.QueueType
	cur := core.C1
	for i := 0; i < 200000; i++ {
		labels = append(labels, cur)
		switch cur {
		case core.C1:
			if rng.Float64() < 0.03 {
				cur = core.C4
			}
		default:
			if rng.Float64() < 0.07 {
				cur = core.C1
			}
		}
	}
	var m Matrix
	m.Count(labels)
	pi, err := m.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[core.QueueType]int{}
	for _, l := range labels {
		counts[l]++
	}
	total := float64(len(labels))
	observedMass := pi[core.C1] + pi[core.C4]
	if math.Abs(pi[core.C1]/observedMass-float64(counts[core.C1])/total) > 0.02 {
		t.Fatalf("stationary C1 share %.3f vs empirical %.3f",
			pi[core.C1]/observedMass, float64(counts[core.C1])/total)
	}
}
