package mdt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"taxiqueue/internal/geo"
)

// Record is one event-driven MDT log entry with the six fields selected in
// Table 2: timestamp, taxi ID, longitude, latitude, instantaneous speed and
// taxi state.
type Record struct {
	Time   time.Time // event timestamp (second resolution in the log format)
	TaxiID string    // vehicle registration, e.g. "SH0001A"
	Pos    geo.Point // GPS location
	Speed  float64   // instantaneous speed, km/h
	State  State     // taxi state at the event
}

// timeLayout matches the sample record of Table 2: "01/08/2008 19:04:51".
const timeLayout = "02/01/2006 15:04:05"

// FormatText renders r as one line of the text log format of Table 2:
//
//	01/08/2008 19:04:51,SH0001A,103.7999,1.33795,54,POB
//
// Fields are comma-separated; longitude precedes latitude as in the paper.
func (r Record) FormatText() string {
	return fmt.Sprintf("%s,%s,%.5f,%.5f,%g,%s",
		r.Time.UTC().Format(timeLayout), r.TaxiID, r.Pos.Lon, r.Pos.Lat, r.Speed, r.State)
}

// ParseText parses one text-format log line produced by FormatText.
func ParseText(line string) (Record, error) {
	parts := strings.Split(strings.TrimSpace(line), ",")
	if len(parts) != 6 {
		return Record{}, fmt.Errorf("mdt: record has %d fields, want 6: %q", len(parts), line)
	}
	ts, err := time.Parse(timeLayout, parts[0])
	if err != nil {
		return Record{}, fmt.Errorf("mdt: bad timestamp: %w", err)
	}
	lon, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return Record{}, fmt.Errorf("mdt: bad longitude: %w", err)
	}
	lat, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return Record{}, fmt.Errorf("mdt: bad latitude: %w", err)
	}
	speed, err := strconv.ParseFloat(parts[4], 64)
	if err != nil {
		return Record{}, fmt.Errorf("mdt: bad speed: %w", err)
	}
	state, err := ParseState(parts[5])
	if err != nil {
		return Record{}, err
	}
	return Record{
		Time:   ts.UTC(),
		TaxiID: parts[1],
		Pos:    geo.Point{Lat: lat, Lon: lon},
		Speed:  speed,
		State:  state,
	}, nil
}

// Equal reports whether r and o carry identical field values (timestamps
// compared at second resolution, matching the log format).
func (r Record) Equal(o Record) bool {
	return r.Time.Unix() == o.Time.Unix() && r.TaxiID == o.TaxiID &&
		r.Pos == o.Pos && r.Speed == o.Speed && r.State == o.State
}

// binary codec -------------------------------------------------------------

// binMagic guards against decoding garbage; bumped on layout changes
// (0x4D44 stored whole seconds; 0x4D45 stores nanoseconds).
const binMagic = 0x4D45 // "ME"

var errBadMagic = errors.New("mdt: bad binary record magic")

// AppendBinary appends the fixed-prefix binary encoding of r to dst and
// returns the extended slice. Layout: magic(2) idLen(1) id(idLen)
// unixNano(8) lat(8) lon(8) speed(4 as float32 centi-km/h would lose
// precision, so float64) state(1). Times keep full nanosecond precision so
// a WAL replay reproduces wait durations exactly.
func (r Record) AppendBinary(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, binMagic)
	if len(r.TaxiID) > 255 {
		panic("mdt: taxi ID longer than 255 bytes")
	}
	dst = append(dst, byte(len(r.TaxiID)))
	dst = append(dst, r.TaxiID...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Time.UnixNano()))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Pos.Lat))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Pos.Lon))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Speed))
	dst = append(dst, byte(r.State))
	return dst
}

// DecodeBinary decodes one binary record from b and returns it along with
// the number of bytes consumed.
func DecodeBinary(b []byte) (Record, int, error) {
	if len(b) < 3 {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	if binary.BigEndian.Uint16(b) != binMagic {
		return Record{}, 0, errBadMagic
	}
	idLen := int(b[2])
	n := 3 + idLen + 8 + 8 + 8 + 8 + 1
	if len(b) < n {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	id := string(b[3 : 3+idLen])
	off := 3 + idLen
	nano := int64(binary.BigEndian.Uint64(b[off:]))
	lat := math.Float64frombits(binary.BigEndian.Uint64(b[off+8:]))
	lon := math.Float64frombits(binary.BigEndian.Uint64(b[off+16:]))
	speed := math.Float64frombits(binary.BigEndian.Uint64(b[off+24:]))
	state := State(b[off+32])
	if !state.Valid() {
		return Record{}, 0, fmt.Errorf("mdt: invalid state byte %d", b[off+32])
	}
	return Record{
		Time:   time.Unix(0, nano).UTC(),
		TaxiID: id,
		Pos:    geo.Point{Lat: lat, Lon: lon},
		Speed:  speed,
		State:  state,
	}, n, nil
}

// stream helpers ------------------------------------------------------------

// WriteText writes recs to w in text format, one record per line.
func WriteText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := bw.WriteString(r.FormatText()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText reads all text-format records from r. Blank lines and lines
// starting with '#' are skipped. It stops at the first malformed line and
// returns the records read so far together with the error.
func ReadText(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseText(line)
		if err != nil {
			return out, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// Trajectory is a temporally ordered sequence of one taxi's records
// (Definition 1). The analytics code treats it as read-only.
type Trajectory []Record

// Sorted reports whether the trajectory is non-decreasing in time.
func (tr Trajectory) Sorted() bool {
	for i := 1; i < len(tr); i++ {
		if tr[i].Time.Before(tr[i-1].Time) {
			return false
		}
	}
	return true
}

// SplitByTaxi groups records by taxi ID into per-taxi trajectories,
// preserving the relative order of each taxi's records. The input must be
// time-ordered per taxi (globally time-ordered input satisfies this).
//
// The grouping is a counting sort into one backing array: a first pass
// tallies per-taxi record counts, a second places each record at its
// taxi's cursor, and each trajectory is a capacity-clamped sub-slice of the
// backing array — no per-taxi append growth, and the whole dataset stays
// contiguous for the PEA scans that follow.
func SplitByTaxi(recs []Record) map[string]Trajectory {
	type group struct {
		id     string
		cursor int // fill position during placement; ends at the group's limit
		count  int
	}
	idx := make(map[string]int32, 64)
	var groups []group
	for i := range recs {
		id := recs[i].TaxiID
		if g, ok := idx[id]; ok {
			groups[g].count++
		} else {
			idx[id] = int32(len(groups))
			groups = append(groups, group{id: id, count: 1})
		}
	}
	off := 0
	for i := range groups {
		groups[i].cursor = off
		off += groups[i].count
	}
	backing := make([]Record, len(recs))
	for i := range recs {
		g := &groups[idx[recs[i].TaxiID]]
		backing[g.cursor] = recs[i]
		g.cursor++
	}
	out := make(map[string]Trajectory, len(groups))
	for i := range groups {
		g := groups[i]
		out[g.id] = Trajectory(backing[g.cursor-g.count : g.cursor : g.cursor])
	}
	return out
}
