package mdt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"taxiqueue/internal/geo"
)

func sampleRecord() Record {
	return Record{
		Time:   time.Date(2008, 8, 1, 19, 4, 51, 0, time.UTC),
		TaxiID: "SH0001A",
		Pos:    geo.Point{Lat: 1.33795, Lon: 103.7999},
		Speed:  54,
		State:  POB,
	}
}

func TestFormatTextMatchesPaperSample(t *testing.T) {
	// Table 2 sample: 01/08/2008 19:04:51 SH0001A 103.7999 1.33795 54 POB
	got := sampleRecord().FormatText()
	want := "01/08/2008 19:04:51,SH0001A,103.79990,1.33795,54,POB"
	if got != want {
		t.Fatalf("FormatText = %q, want %q", got, want)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := sampleRecord()
	got, err := ParseText(r.FormatText())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Fatalf("round trip %+v != %+v", got, r)
	}
}

func TestParseTextErrors(t *testing.T) {
	bad := []string{
		"",
		"01/08/2008 19:04:51,SH0001A,103.8,1.3,54",            // 5 fields
		"01/08/2008 19:04:51,SH0001A,103.8,1.3,54,POB,extra",  // 7 fields
		"2008-08-01 19:04:51,SH0001A,103.8,1.3,54,POB",        // wrong time layout
		"01/08/2008 19:04:51,SH0001A,abc,1.3,54,POB",          // bad lon
		"01/08/2008 19:04:51,SH0001A,103.8,abc,54,POB",        // bad lat
		"01/08/2008 19:04:51,SH0001A,103.8,1.3,fast,POB",      // bad speed
		"01/08/2008 19:04:51,SH0001A,103.8,1.3,54,TELEPORTED", // bad state
	}
	for _, line := range bad {
		if _, err := ParseText(line); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", line)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := sampleRecord()
	buf := r.AppendBinary(nil)
	got, n, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	if !got.Equal(r) {
		t.Fatalf("binary round trip %+v != %+v", got, r)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(lat, lon, speed float64, stateByte uint8, idLen uint8) bool {
		r := Record{
			Time:   time.Unix(rng.Int63n(2_000_000_000), 0).UTC(),
			TaxiID: strings.Repeat("X", int(idLen%32)),
			Pos:    geo.Point{Lat: lat, Lon: lon},
			Speed:  speed,
			State:  State(stateByte % uint8(NumStates)),
		}
		buf := r.AppendBinary(nil)
		got, n, err := DecodeBinary(buf)
		return err == nil && n == len(buf) && got.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Error("DecodeBinary(nil) succeeded")
	}
	if _, _, err := DecodeBinary([]byte{0, 0, 0}); err == nil {
		t.Error("DecodeBinary with bad magic succeeded")
	}
	buf := sampleRecord().AppendBinary(nil)
	if _, _, err := DecodeBinary(buf[:len(buf)-2]); err == nil {
		t.Error("DecodeBinary of truncated buffer succeeded")
	}
	// Corrupt the state byte.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] = 77
	if _, _, err := DecodeBinary(bad); err == nil {
		t.Error("DecodeBinary accepted invalid state byte")
	}
}

func TestBinaryConcatenation(t *testing.T) {
	recs := []Record{sampleRecord(), sampleRecord(), sampleRecord()}
	recs[1].TaxiID = "SH0002B"
	recs[2].State = Free
	var buf []byte
	for _, r := range recs {
		buf = r.AppendBinary(buf)
	}
	var got []Record
	for len(buf) > 0 {
		r, n, err := DecodeBinary(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
		buf = buf[n:]
	}
	if len(got) != 3 || !got[1].Equal(recs[1]) || !got[2].Equal(recs[2]) {
		t.Fatalf("decoded stream mismatch: %+v", got)
	}
}

func TestWriteReadText(t *testing.T) {
	recs := []Record{sampleRecord()}
	r2 := sampleRecord()
	r2.Time = r2.Time.Add(10 * time.Second)
	r2.State = Payment
	recs = append(recs, r2)
	var buf bytes.Buffer
	if err := WriteText(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(recs[0]) || !got[1].Equal(recs[1]) {
		t.Fatalf("text stream mismatch: %+v", got)
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n" + sampleRecord().FormatText() + "\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1", len(got))
	}
}

func TestReadTextReportsLineNumber(t *testing.T) {
	in := sampleRecord().FormatText() + "\ngarbage line\n"
	_, err := ReadText(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v does not name line 2", err)
	}
}

func TestSplitByTaxi(t *testing.T) {
	base := sampleRecord()
	var recs []Record
	for i := 0; i < 6; i++ {
		r := base
		r.Time = base.Time.Add(time.Duration(i) * time.Minute)
		if i%2 == 1 {
			r.TaxiID = "SH0002B"
		}
		recs = append(recs, r)
	}
	byTaxi := SplitByTaxi(recs)
	if len(byTaxi) != 2 {
		t.Fatalf("got %d taxis, want 2", len(byTaxi))
	}
	for id, tr := range byTaxi {
		if len(tr) != 3 {
			t.Errorf("taxi %s has %d records, want 3", id, len(tr))
		}
		if !tr.Sorted() {
			t.Errorf("taxi %s trajectory not sorted", id)
		}
	}
}

// TestSplitByTaxiPreservesOrderAndIsolation checks the counting-sort
// grouping: interleaved input keeps each taxi's relative record order, and
// the capacity-clamped sub-slices cannot bleed into a neighbouring taxi's
// region of the shared backing array when appended to.
func TestSplitByTaxiPreservesOrderAndIsolation(t *testing.T) {
	base := sampleRecord()
	ids := []string{"SH0003C", "SH0001A", "SH0002B", "SH0001A", "SH0003C", "SH0002B", "SH0001A"}
	recs := make([]Record, len(ids))
	for i, id := range ids {
		recs[i] = base
		recs[i].TaxiID = id
		recs[i].Speed = float64(i) // per-record fingerprint
	}
	byTaxi := SplitByTaxi(recs)
	if len(byTaxi) != 3 {
		t.Fatalf("got %d taxis, want 3", len(byTaxi))
	}
	wantSpeeds := map[string][]float64{
		"SH0001A": {1, 3, 6},
		"SH0002B": {2, 5},
		"SH0003C": {0, 4},
	}
	for id, speeds := range wantSpeeds {
		tr := byTaxi[id]
		if len(tr) != len(speeds) {
			t.Fatalf("taxi %s has %d records, want %d", id, len(tr), len(speeds))
		}
		for i, want := range speeds {
			if tr[i].Speed != want {
				t.Errorf("taxi %s record %d has speed %g, want %g", id, i, tr[i].Speed, want)
			}
		}
	}
	// Appending to one trajectory must reallocate, not overwrite another's
	// records in the shared backing array.
	extra := base
	extra.TaxiID = "SH0003C"
	_ = append(byTaxi["SH0003C"], extra)
	if byTaxi["SH0001A"][0].Speed != 1 || byTaxi["SH0002B"][0].Speed != 2 {
		t.Error("append to one trajectory corrupted a neighbouring one")
	}
}

func TestSplitByTaxiEmpty(t *testing.T) {
	if got := SplitByTaxi(nil); len(got) != 0 {
		t.Fatalf("SplitByTaxi(nil) returned %d groups", len(got))
	}
}

func TestTrajectorySorted(t *testing.T) {
	base := sampleRecord()
	later := base
	later.Time = base.Time.Add(time.Minute)
	if !(Trajectory{base, later}).Sorted() {
		t.Error("ordered trajectory reported unsorted")
	}
	if (Trajectory{later, base}).Sorted() {
		t.Error("disordered trajectory reported sorted")
	}
	if !(Trajectory{}).Sorted() || !(Trajectory{base}).Sorted() {
		t.Error("trivial trajectories reported unsorted")
	}
}

func TestRecordEqualIgnoresSubsecond(t *testing.T) {
	a := sampleRecord()
	b := a
	b.Time = a.Time.Add(300 * time.Millisecond)
	if !a.Equal(b) {
		t.Error("records differing only in sub-second time compare unequal")
	}
}

func BenchmarkFormatText(b *testing.B) {
	r := sampleRecord()
	for i := 0; i < b.N; i++ {
		_ = r.FormatText()
	}
}

func BenchmarkParseText(b *testing.B) {
	line := sampleRecord().FormatText()
	for i := 0; i < b.N; i++ {
		if _, err := ParseText(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendBinary(b *testing.B) {
	r := sampleRecord()
	buf := make([]byte, 0, 64)
	for i := 0; i < b.N; i++ {
		buf = r.AppendBinary(buf[:0])
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	buf := sampleRecord().AppendBinary(nil)
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}
