// Package mdt models the Mobile Data Terminal telemetry described in §2 of
// the paper: the 11 taxi states (Table 1), the state-transition diagram
// (Fig. 3), and the event-driven MDT log record (Table 2) with text and
// binary codecs.
package mdt

import "fmt"

// State is one of the 11 taxi states an MDT reports (Table 1).
type State uint8

const (
	// Free: taxi unoccupied and ready for taking new passengers or bookings.
	Free State = iota
	// POB: passenger on board and taximeter running.
	POB
	// STC: taxi soon to clear the current job and ready for new bookings.
	STC
	// Payment: passenger making payment and taximeter paused.
	Payment
	// OnCall: taxi unoccupied, but accepted a new booking job.
	OnCall
	// Arrived: taxi arrived at the booking pickup location, waiting for
	// the passenger.
	Arrived
	// NoShow: no passenger showing up; the booking is canceled soon.
	NoShow
	// Busy: taxi driver temporarily unavailable due to a personal reason.
	Busy
	// Break: taxi on a break and driver logged on MDT.
	Break
	// Offline: taxi on a break and driver logged off from MDT.
	Offline
	// PowerOff: MDT shut down and not working.
	PowerOff

	numStates = iota
)

// NumStates is the number of distinct taxi states (11, per Table 1).
const NumStates = int(numStates)

var stateNames = [numStates]string{
	Free:     "FREE",
	POB:      "POB",
	STC:      "STC",
	Payment:  "PAYMENT",
	OnCall:   "ONCALL",
	Arrived:  "ARRIVED",
	NoShow:   "NOSHOW",
	Busy:     "BUSY",
	Break:    "BREAK",
	Offline:  "OFFLINE",
	PowerOff: "POWEROFF",
}

// String returns the canonical log-file spelling of the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("STATE(%d)", uint8(s))
}

// Valid reports whether s is one of the 11 defined states.
func (s State) Valid() bool { return int(s) < NumStates }

// ParseState parses the canonical spelling (e.g. "FREE", "POB").
func ParseState(text string) (State, error) {
	for i, name := range stateNames {
		if name == text {
			return State(i), nil
		}
	}
	return 0, fmt.Errorf("mdt: unknown taxi state %q", text)
}

// The paper's three state sets (Definitions 5.1-5.3). BUSY belongs to none
// of them and is handled separately (§4.1, §7.2).

// Occupied reports whether s is in the taxi occupied state set
// Θ = {POB, STC, PAYMENT}.
func (s State) Occupied() bool { return s == POB || s == STC || s == Payment }

// Unoccupied reports whether s is in the taxi unoccupied state set
// Ψ = {FREE, ONCALL, ARRIVED, NOSHOW}.
func (s State) Unoccupied() bool {
	return s == Free || s == OnCall || s == Arrived || s == NoShow
}

// NonOperational reports whether s is in the non-operational state set
// Λ = {BREAK, OFFLINE, POWEROFF}.
func (s State) NonOperational() bool {
	return s == Break || s == Offline || s == PowerOff
}

// legalNext encodes the state-transition diagram of Fig. 3. A transition
// s -> t is legal iff legalNext[s] has bit t set. Self-transitions are
// always legal (the MDT re-logs the current state on GPS updates).
var legalNext = func() [numStates]uint16 {
	bit := func(states ...State) (m uint16) {
		for _, s := range states {
			m |= 1 << s
		}
		return m
	}
	var t [numStates]uint16
	// Street job: FREE -> POB -> STC -> PAYMENT -> FREE. STC may be
	// skipped (driver omits the button press): POB -> PAYMENT is legal.
	// Booking job: FREE/STC -> ONCALL -> ARRIVED -> {POB | NOSHOW};
	// NOSHOW -> FREE within 10 seconds.
	// Driver availability: FREE <-> BUSY, FREE <-> BREAK,
	// BREAK <-> OFFLINE, OFFLINE/BREAK -> POWEROFF, POWEROFF -> OFFLINE
	// (MDT boots logged-off). BUSY -> POB models the §7.2 driver-behavior
	// finding (picking favorite passengers straight out of BUSY).
	t[Free] = bit(POB, OnCall, Busy, Break)
	t[POB] = bit(STC, Payment)
	t[STC] = bit(Payment, OnCall)
	t[Payment] = bit(Free)
	t[OnCall] = bit(Arrived, POB, Free) // Free: booking canceled en route
	t[Arrived] = bit(POB, NoShow)
	t[NoShow] = bit(Free)
	t[Busy] = bit(Free, POB, Break)
	t[Break] = bit(Free, Offline, PowerOff)
	t[Offline] = bit(Break, PowerOff)
	t[PowerOff] = bit(Offline)
	for s := State(0); s < numStates; s++ {
		t[s] |= 1 << s // self-transition
	}
	return t
}()

// LegalTransition reports whether the transition from -> to is permitted by
// the Fig. 3 state-transition diagram (self-transitions included, since the
// event-driven log re-emits the current state on GPS updates).
func LegalTransition(from, to State) bool {
	if !from.Valid() || !to.Valid() {
		return false
	}
	return legalNext[from]&(1<<to) != 0
}

// Successors returns the set of states reachable from s in one legal
// transition, excluding the self-transition.
func Successors(s State) []State {
	if !s.Valid() {
		return nil
	}
	var out []State
	for t := State(0); t < numStates; t++ {
		if t != s && legalNext[s]&(1<<t) != 0 {
			out = append(out, t)
		}
	}
	return out
}

// JobKind distinguishes the two taxi-job categories of §2.2.
type JobKind uint8

const (
	// StreetJob is a street-hail pickup (FREE -> POB directly).
	StreetJob JobKind = iota
	// BookingJob is a phone/SMS/app booking (ONCALL -> ARRIVED -> POB).
	BookingJob
)

// String implements fmt.Stringer.
func (k JobKind) String() string {
	if k == StreetJob {
		return "street"
	}
	return "booking"
}
