package mdt

import "testing"

func TestStateStringRoundTrip(t *testing.T) {
	for s := State(0); int(s) < NumStates; s++ {
		got, err := ParseState(s.String())
		if err != nil {
			t.Fatalf("ParseState(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %v", s, got)
		}
	}
}

func TestParseStateUnknown(t *testing.T) {
	if _, err := ParseState("ZOOMING"); err == nil {
		t.Fatal("ParseState accepted unknown state")
	}
	if _, err := ParseState("free"); err == nil {
		t.Fatal("ParseState is case-sensitive by design; lowercase accepted")
	}
}

func TestStateSetsPartition(t *testing.T) {
	// Θ, Ψ, Λ and {BUSY} partition the 11 states (§4.1).
	for s := State(0); int(s) < NumStates; s++ {
		n := 0
		if s.Occupied() {
			n++
		}
		if s.Unoccupied() {
			n++
		}
		if s.NonOperational() {
			n++
		}
		if s == Busy {
			n++
		}
		if n != 1 {
			t.Errorf("state %v belongs to %d sets, want exactly 1", s, n)
		}
	}
}

func TestStateSetMembership(t *testing.T) {
	occupied := []State{POB, STC, Payment}
	for _, s := range occupied {
		if !s.Occupied() {
			t.Errorf("%v not in occupied set", s)
		}
	}
	unoccupied := []State{Free, OnCall, Arrived, NoShow}
	for _, s := range unoccupied {
		if !s.Unoccupied() {
			t.Errorf("%v not in unoccupied set", s)
		}
	}
	nonOp := []State{Break, Offline, PowerOff}
	for _, s := range nonOp {
		if !s.NonOperational() {
			t.Errorf("%v not in non-operational set", s)
		}
	}
}

func TestLegalTransitionStreetJob(t *testing.T) {
	// The full §2.2 street-job cycle must be legal.
	cycle := []State{Free, POB, STC, Payment, Free}
	for i := 1; i < len(cycle); i++ {
		if !LegalTransition(cycle[i-1], cycle[i]) {
			t.Errorf("street job step %v -> %v illegal", cycle[i-1], cycle[i])
		}
	}
	// STC is sometimes skipped (§6.1.1 missing intermediate states).
	if !LegalTransition(POB, Payment) {
		t.Error("POB -> PAYMENT (STC skipped) illegal")
	}
}

func TestLegalTransitionBookingJob(t *testing.T) {
	cases := [][2]State{
		{Free, OnCall}, {STC, OnCall}, {OnCall, Arrived},
		{Arrived, POB}, {Arrived, NoShow}, {NoShow, Free}, {OnCall, POB},
	}
	for _, c := range cases {
		if !LegalTransition(c[0], c[1]) {
			t.Errorf("booking job transition %v -> %v illegal", c[0], c[1])
		}
	}
}

func TestIllegalTransitions(t *testing.T) {
	cases := [][2]State{
		{POB, Free},      // must pass through PAYMENT
		{Payment, POB},   // payment cannot restart a trip
		{Free, Arrived},  // ARRIVED requires ONCALL first
		{PowerOff, Free}, // booting lands in OFFLINE
		{POB, OnCall},    // occupied taxi cannot bid
		{NoShow, POB},    // NOSHOW resolves to FREE first
	}
	for _, c := range cases {
		if LegalTransition(c[0], c[1]) {
			t.Errorf("transition %v -> %v should be illegal", c[0], c[1])
		}
	}
}

func TestSelfTransitionsLegal(t *testing.T) {
	for s := State(0); int(s) < NumStates; s++ {
		if !LegalTransition(s, s) {
			t.Errorf("self transition %v illegal", s)
		}
	}
}

func TestLegalTransitionInvalidStates(t *testing.T) {
	if LegalTransition(State(200), Free) || LegalTransition(Free, State(200)) {
		t.Error("transition involving invalid state reported legal")
	}
}

func TestSuccessorsExcludeSelf(t *testing.T) {
	for s := State(0); int(s) < NumStates; s++ {
		for _, n := range Successors(s) {
			if n == s {
				t.Errorf("Successors(%v) contains self", s)
			}
			if !LegalTransition(s, n) {
				t.Errorf("Successors(%v) contains illegal %v", s, n)
			}
		}
	}
	if Successors(State(99)) != nil {
		t.Error("Successors of invalid state non-nil")
	}
}

func TestEveryStateReachableFromFree(t *testing.T) {
	// BFS over the diagram: all 11 states must be reachable from FREE,
	// otherwise the simulator could never exercise them.
	seen := map[State]bool{Free: true}
	frontier := []State{Free}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, n := range Successors(s) {
			if !seen[n] {
				seen[n] = true
				frontier = append(frontier, n)
			}
		}
	}
	for s := State(0); int(s) < NumStates; s++ {
		if !seen[s] {
			t.Errorf("state %v unreachable from FREE", s)
		}
	}
}

func TestJobKindString(t *testing.T) {
	if StreetJob.String() != "street" || BookingJob.String() != "booking" {
		t.Error("JobKind String mismatch")
	}
}
