package clean

import (
	"sort"

	"taxiqueue/internal/mdt"
)

// Streamer is the record-at-a-time form of Clean for live ingestion: it
// applies exactly the same three §6.1.1 rules (GPS frame, duplicates,
// PAYMENT-FREE-PAYMENT improper states) but over an endless feed. Push
// returns the records whose fate is now decided; FREE records that follow a
// PAYMENT are held until a later record proves them legitimate (they are
// then released in arrival order) or proves them the clock-sync bug (they
// are silently dropped). Feeding every record of a dataset through Push and
// then Flush yields exactly the batch Clean's statistics and, per taxi,
// exactly its survivor sequence; globally a released record may trail other
// taxis' later records by the length of its hold (a few records).
//
// A Streamer is not safe for concurrent use; shard the feed by taxi ID (all
// state is per taxi, so any taxi-preserving partition cleans identically).
type Streamer struct {
	cfg   Config
	stats Stats
	tails map[string]*streamTail
	seq   int // arrival index of the next record, for ordered Flush
	out   []pendRec
	buf   []mdt.Record // Push/Flush return buffer, valid until the next call
}

// pendRec is a held record plus its arrival index.
type pendRec struct {
	rec mdt.Record
	seq int
}

// streamTail is one taxi's trailing context, mirroring Clean's tail.
type streamTail struct {
	last     mdt.Record // previous surviving record
	hasLast  bool
	pend     []pendRec // FREEs held while we look for PAYMENT-FREE-PAYMENT
	afterPay bool      // last surviving record (with pend empty) is a PAYMENT
}

// NewStreamer returns a streaming cleaner with cfg's rules.
func NewStreamer(cfg Config) *Streamer {
	return &Streamer{cfg: cfg, tails: make(map[string]*streamTail)}
}

// Stats returns the running removal statistics. Records still held pending
// are counted in neither Output nor the removal classes yet.
func (s *Streamer) Stats() Stats { return s.stats }

// PendingFor returns how many of taxi id's records are currently held
// undecided. Live ingestion consults it before deduplicating a re-sent
// record: an exact duplicate is a state signal to the cleaner (it resolves
// a held PAYMENT-FREE tail) whenever records are pending, so only
// pending-free taxis may be deduplicated upstream.
func (s *Streamer) PendingFor(id string) int {
	if t := s.tails[id]; t != nil {
		return len(t.pend)
	}
	return 0
}

// Pending returns the number of records currently held undecided.
func (s *Streamer) Pending() int {
	n := 0
	for _, t := range s.tails {
		n += len(t.pend)
	}
	return n
}

// Push feeds one record (time-ordered per taxi) and returns the records now
// known to survive, in arrival order. The returned slice is reused by the
// next Push/Flush call.
func (s *Streamer) Push(r mdt.Record) []mdt.Record {
	s.buf = s.buf[:0]
	s.stats.Input++
	seq := s.seq
	s.seq++
	if !s.cfg.ValidFrame.Contains(r.Pos) || !r.Pos.Valid() {
		s.stats.GPSOutliers++
		return s.buf
	}
	t := s.tails[r.TaxiID]
	if t == nil {
		t = &streamTail{}
		s.tails[r.TaxiID] = t
	}
	if len(t.pend) > 0 || t.afterPay {
		if r.State == mdt.Free {
			if n := len(t.pend); n > 0 && r.Equal(t.pend[n-1].rec) {
				s.stats.Duplicates++
				return s.buf
			}
			t.pend = append(t.pend, pendRec{rec: r, seq: seq})
			return s.buf
		}
		if r.State == mdt.Payment && len(t.pend) > 0 {
			s.stats.ImproperStates += len(t.pend)
			t.pend = t.pend[:0]
		} else if len(t.pend) > 0 {
			// The held FREEs were a legitimate dropoff: release them and
			// make the newest the duplicate reference.
			for _, p := range t.pend {
				s.buf = append(s.buf, p.rec)
			}
			s.stats.Output += len(t.pend)
			t.last = t.pend[len(t.pend)-1].rec
			t.hasLast = true
			t.pend = t.pend[:0]
		}
	}
	if t.hasLast && r.Equal(t.last) {
		s.stats.Duplicates++
		return s.buf
	}
	t.last = r
	t.hasLast = true
	t.afterPay = r.State == mdt.Payment
	s.stats.Output++
	return append(s.buf, r)
}

// Flush releases every record still held pending, in arrival order: an
// unresolved PAYMENT-FREE tail at end of feed is kept, exactly as the batch
// Clean keeps it. The Streamer remains usable afterwards.
func (s *Streamer) Flush() []mdt.Record {
	s.out = s.out[:0]
	for _, t := range s.tails {
		if len(t.pend) > 0 {
			s.out = append(s.out, t.pend...)
			t.last = t.pend[len(t.pend)-1].rec
			t.hasLast = true
			t.afterPay = false
			t.pend = t.pend[:0]
		}
	}
	// Arrival order across taxis (the map iteration above is random).
	sort.Slice(s.out, func(a, b int) bool { return s.out[a].seq < s.out[b].seq })
	s.buf = s.buf[:0]
	for _, p := range s.out {
		s.buf = append(s.buf, p.rec)
	}
	s.stats.Output += len(s.buf)
	return s.buf
}
