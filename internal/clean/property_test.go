package clean

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// randomFeed builds a messy multi-taxi feed: random states, some
// duplicates, some out-of-island fixes, PAYMENT/FREE interleavings.
func randomFeed(rng *rand.Rand, n int) []mdt.Record {
	base := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	var out []mdt.Record
	clock := 0
	for i := 0; i < n; i++ {
		clock += rng.Intn(30)
		r := mdt.Record{
			Time:   base.Add(time.Duration(clock) * time.Second),
			TaxiID: string(rune('A' + rng.Intn(4))),
			Pos:    geo.Point{Lat: 1.25 + rng.Float64()*0.15, Lon: 103.7 + rng.Float64()*0.2},
			Speed:  rng.Float64() * 60,
			State:  mdt.State(rng.Intn(mdt.NumStates)),
		}
		if rng.Float64() < 0.05 {
			r.Pos = geo.Point{Lat: 0.2, Lon: 100} // far outside
		}
		out = append(out, r)
		if rng.Float64() < 0.08 {
			out = append(out, r) // duplicate
		}
	}
	return out
}

// TestCleanIdempotent: cleaning an already-clean feed removes nothing.
func TestCleanIdempotent(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		feed := randomFeed(rng, int(size))
		once, _ := Clean(feed, islandCfg())
		twice, st := Clean(once, islandCfg())
		if st.Removed() != 0 {
			return false
		}
		if len(twice) != len(once) {
			return false
		}
		for i := range once {
			if !once[i].Equal(twice[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCleanAccounting: input = output + removed, always.
func TestCleanAccounting(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		feed := randomFeed(rng, int(size))
		out, st := Clean(feed, islandCfg())
		return st.Input == len(feed) && st.Output == len(out) &&
			st.Input == st.Output+st.Removed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCleanNeverInvents: every output record appears in the input.
func TestCleanNeverInvents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	feed := randomFeed(rng, 400)
	out, _ := Clean(feed, islandCfg())
	inSet := map[string]int{}
	for _, r := range feed {
		inSet[r.FormatText()]++
	}
	for _, r := range out {
		if inSet[r.FormatText()] == 0 {
			t.Fatalf("cleaned output contains invented record %v", r)
		}
		inSet[r.FormatText()]--
	}
	_ = citymap.Island
}
