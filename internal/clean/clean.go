// Package clean implements the §6.1.1 data-preprocessing pipeline for raw
// MDT logs. The paper identifies three main error classes in the operator
// feed and removes them (~2.8% of all records):
//
//  1. improper/missing taxi states — notably a spurious FREE sandwiched
//     between two PAYMENT records (an old-MDT clock-sync bug);
//  2. record duplication — GPRS retransmissions between the MDT and the
//     backend;
//  3. GPS coordinates outside Singapore or in inaccessible zones — the
//     urban-canyon effect.
//
// Clean operates per taxi on time-ordered records and reports per-class
// removal statistics.
package clean

import (
	"fmt"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// Stats reports what the cleaning pass removed.
type Stats struct {
	Input          int // records in
	Duplicates     int // exact re-transmissions removed
	ImproperStates int // clock-sync FREE-between-PAYMENT records removed
	GPSOutliers    int // fixes outside the valid frame removed
	Output         int // records out
}

// Removed returns the total number of removed records.
func (s Stats) Removed() int { return s.Duplicates + s.ImproperStates + s.GPSOutliers }

// Rate returns the removed fraction of the input (the paper reports ~2.8%).
func (s Stats) Rate() float64 {
	if s.Input == 0 {
		return 0
	}
	return float64(s.Removed()) / float64(s.Input)
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("clean: in=%d out=%d removed=%d (%.2f%%) [dup=%d improper=%d gps=%d]",
		s.Input, s.Output, s.Removed(), s.Rate()*100, s.Duplicates, s.ImproperStates, s.GPSOutliers)
}

// Config parameterizes the pipeline.
type Config struct {
	// ValidFrame is the acceptable GPS bounding box; records outside it are
	// dropped. Required (there is no sensible global default).
	ValidFrame geo.Rect
}

// Clean runs the full pipeline over time-ordered records (any taxi mix) and
// returns the surviving records, preserving order exactly. The input slice
// is not modified.
//
// Implementation: a marking pass decides each record's fate in place —
// records are never moved, so global time order is preserved by
// construction. "Pending" FREE records that follow a PAYMENT are marked
// retroactively when a second PAYMENT proves them to be the clock-sync bug.
func Clean(recs []mdt.Record, cfg Config) ([]mdt.Record, Stats) {
	stats := Stats{Input: len(recs)}
	drop := make([]uint8, len(recs)) // 0 keep, else the drop class
	const (
		dropGPS = iota + 1
		dropDup
		dropImproper
	)

	// Per-taxi trailing context for duplicate and improper-state checks.
	type tail struct {
		lastIdx  int // index of this taxi's previous surviving record
		hasLast  bool
		pendFree []int // indexes of FREEs held while we look for PAYMENT-FREE-PAYMENT
		afterPay bool  // lastIdx record (with pendFree empty) is a PAYMENT
	}
	tails := make(map[string]*tail)

	for i := range recs {
		r := &recs[i]
		// GPS bounds filter first: an out-of-frame fix is garbage whatever
		// its state says.
		if !cfg.ValidFrame.Contains(r.Pos) || !r.Pos.Valid() {
			drop[i] = dropGPS
			stats.GPSOutliers++
			continue
		}
		t := tails[r.TaxiID]
		if t == nil {
			t = &tail{}
			tails[r.TaxiID] = t
		}
		// Improper state: FREE record(s) sandwiched between two PAYMENTs.
		// Track FREEs that directly follow a PAYMENT; if the next
		// non-FREE record is PAYMENT again, they were the clock-sync bug.
		if len(t.pendFree) > 0 || t.afterPay {
			if r.State == mdt.Free {
				// Duplicate of the held tail?
				if n := len(t.pendFree); n > 0 && r.Equal(recs[t.pendFree[n-1]]) {
					drop[i] = dropDup
					stats.Duplicates++
					continue
				}
				t.pendFree = append(t.pendFree, i)
				continue
			}
			if r.State == mdt.Payment && len(t.pendFree) > 0 {
				for _, j := range t.pendFree {
					drop[j] = dropImproper
				}
				stats.ImproperStates += len(t.pendFree)
				t.pendFree = t.pendFree[:0]
			} else if len(t.pendFree) > 0 {
				// The held FREEs were a legitimate dropoff; they stay
				// (already in place) and the newest becomes the duplicate
				// reference.
				t.lastIdx = t.pendFree[len(t.pendFree)-1]
				t.hasLast = true
				t.pendFree = t.pendFree[:0]
			}
		}
		// Duplicate: identical to this taxi's previous surviving record.
		if t.hasLast && r.Equal(recs[t.lastIdx]) {
			drop[i] = dropDup
			stats.Duplicates++
			continue
		}
		t.lastIdx = i
		t.hasLast = true
		t.afterPay = r.State == mdt.Payment
	}

	out := make([]mdt.Record, 0, len(recs)-stats.Removed())
	for i := range recs {
		if drop[i] == 0 {
			out = append(out, recs[i])
		}
	}
	stats.Output = len(out)
	return out, stats
}
