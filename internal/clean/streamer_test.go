package clean

import (
	"math/rand"
	"testing"
	"testing/quick"

	"taxiqueue/internal/mdt"
)

// runStreamer pushes feed through a Streamer and flushes, collecting every
// released survivor.
func runStreamer(feed []mdt.Record) ([]mdt.Record, Stats, *Streamer) {
	s := NewStreamer(islandCfg())
	var out []mdt.Record
	for _, r := range feed {
		out = append(out, s.Push(r)...)
	}
	out = append(out, s.Flush()...)
	return out, s.Stats(), s
}

// byTaxi groups records into per-taxi sequences preserving order.
func byTaxi(recs []mdt.Record) map[string][]mdt.Record {
	out := map[string][]mdt.Record{}
	for _, r := range recs {
		out[r.TaxiID] = append(out[r.TaxiID], r)
	}
	return out
}

// TestStreamerMatchesBatch: Push+Flush over any feed must yield exactly the
// statistics of the batch Clean and, per taxi, exactly its survivor
// sequence (global order may differ for records held pending).
func TestStreamerMatchesBatch(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		feed := randomFeed(rng, int(size)%700)
		want, wantStats := Clean(feed, islandCfg())
		got, gotStats, s := runStreamer(feed)
		if gotStats != wantStats {
			t.Logf("stats: got %+v want %+v", gotStats, wantStats)
			return false
		}
		wantSeq, gotSeq := byTaxi(want), byTaxi(got)
		if len(gotSeq) != len(wantSeq) {
			t.Logf("taxis: got %d want %d", len(gotSeq), len(wantSeq))
			return false
		}
		for id, ws := range wantSeq {
			gs := gotSeq[id]
			if len(gs) != len(ws) {
				t.Logf("taxi %s: got %d survivors want %d", id, len(gs), len(ws))
				return false
			}
			for i := range ws {
				if !gs[i].Equal(ws[i]) {
					t.Logf("taxi %s record %d differs: got %v want %v", id, i, gs[i], ws[i])
					return false
				}
			}
		}
		return s.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamerSurvivorsOrdered: releases preserve per-taxi arrival order
// (the contract the ingest WAL append relies on).
func TestStreamerSurvivorsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	feed := randomFeed(rng, 500)
	got, _, _ := runStreamer(feed)
	last := map[string]int{}
	for i, r := range got {
		if j, ok := last[r.TaxiID]; ok && got[j].Time.After(r.Time) {
			t.Fatalf("taxi %s: record %d at %v before record %d at %v",
				r.TaxiID, i, r.Time, j, got[j].Time)
		}
		last[r.TaxiID] = i
	}
}

// TestStreamerPendingVisibility: a FREE after a PAYMENT is held, and the
// hold is observable via Pending (the ingest crash-recovery tests pick
// their kill points at Pending()==0 boundaries).
func TestStreamerPendingVisibility(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	feed := randomFeed(rng, 300)
	s := NewStreamer(islandCfg())
	sawPending := false
	for _, r := range feed {
		s.Push(r)
		if s.Pending() > 0 {
			sawPending = true
		}
	}
	s.Flush()
	if s.Pending() != 0 {
		t.Fatalf("pending %d after flush", s.Pending())
	}
	if !sawPending {
		t.Skip("feed never held a record; widen the generator")
	}
}
