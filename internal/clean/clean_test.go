package clean

import (
	"sort"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
)

var t0 = time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)

func rec(id string, sec int, state mdt.State, pos geo.Point) mdt.Record {
	return mdt.Record{
		Time: t0.Add(time.Duration(sec) * time.Second), TaxiID: id,
		Pos: pos, Speed: 10, State: state,
	}
}

var inTown = geo.Point{Lat: 1.30, Lon: 103.85}

func islandCfg() Config { return Config{ValidFrame: citymap.Island} }

func TestCleanPassesGoodRecords(t *testing.T) {
	recs := []mdt.Record{
		rec("A", 0, mdt.Free, inTown),
		rec("A", 10, mdt.POB, inTown),
		rec("A", 600, mdt.Payment, inTown),
		rec("A", 640, mdt.Free, inTown),
	}
	out, stats := Clean(recs, islandCfg())
	if len(out) != 4 || stats.Removed() != 0 {
		t.Fatalf("clean removed good records: %v", stats)
	}
}

func TestCleanRemovesDuplicates(t *testing.T) {
	r := rec("A", 0, mdt.Free, inTown)
	recs := []mdt.Record{r, r, rec("A", 10, mdt.POB, inTown)}
	out, stats := Clean(recs, islandCfg())
	if stats.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", stats.Duplicates)
	}
	if len(out) != 2 {
		t.Fatalf("output = %d records, want 2", len(out))
	}
}

func TestCleanDuplicatesArePerTaxi(t *testing.T) {
	// Identical records from DIFFERENT taxis are not duplicates.
	a := rec("A", 0, mdt.Free, inTown)
	b := a
	b.TaxiID = "B"
	out, stats := Clean([]mdt.Record{a, b}, islandCfg())
	if stats.Duplicates != 0 || len(out) != 2 {
		t.Fatalf("cross-taxi records treated as duplicates: %v", stats)
	}
}

func TestCleanRemovesGPSOutliers(t *testing.T) {
	sea := geo.Point{Lat: 0.5, Lon: 103.85}
	recs := []mdt.Record{
		rec("A", 0, mdt.Free, inTown),
		rec("A", 10, mdt.Free, sea),
		rec("A", 20, mdt.POB, inTown),
	}
	out, stats := Clean(recs, islandCfg())
	if stats.GPSOutliers != 1 || len(out) != 2 {
		t.Fatalf("gps outliers = %d, out = %d", stats.GPSOutliers, len(out))
	}
}

func TestCleanRemovesFreeBetweenPayments(t *testing.T) {
	recs := []mdt.Record{
		rec("A", 0, mdt.POB, inTown),
		rec("A", 100, mdt.Payment, inTown),
		rec("A", 101, mdt.Free, inTown), // clock-sync bug
		rec("A", 102, mdt.Payment, inTown),
		rec("A", 150, mdt.Free, inTown), // legitimate
	}
	out, stats := Clean(recs, islandCfg())
	if stats.ImproperStates != 1 {
		t.Fatalf("improper states = %d, want 1", stats.ImproperStates)
	}
	var states []mdt.State
	for _, r := range out {
		states = append(states, r.State)
	}
	want := []mdt.State{mdt.POB, mdt.Payment, mdt.Payment, mdt.Free}
	if len(states) != len(want) {
		t.Fatalf("states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}
}

func TestCleanKeepsLegitimateFreeAfterPayment(t *testing.T) {
	// PAYMENT -> FREE -> POB is the normal dropoff-then-new-job sequence;
	// the held FREE must be restored.
	recs := []mdt.Record{
		rec("A", 0, mdt.Payment, inTown),
		rec("A", 40, mdt.Free, inTown),
		rec("A", 200, mdt.POB, inTown),
	}
	out, stats := Clean(recs, islandCfg())
	if stats.ImproperStates != 0 {
		t.Fatalf("legitimate FREE removed: %v", stats)
	}
	if len(out) != 3 || out[1].State != mdt.Free {
		t.Fatalf("output sequence wrong: %v", out)
	}
}

func TestCleanKeepsTrailingFree(t *testing.T) {
	// Dataset ends with PAYMENT -> FREE: the held FREE must be flushed.
	recs := []mdt.Record{
		rec("A", 0, mdt.Payment, inTown),
		rec("A", 40, mdt.Free, inTown),
	}
	out, stats := Clean(recs, islandCfg())
	if len(out) != 2 || stats.Removed() != 0 {
		t.Fatalf("trailing FREE lost: out=%d stats=%v", len(out), stats)
	}
}

func TestCleanPreservesGlobalTimeOrder(t *testing.T) {
	// Interleave taxis so a held FREE from taxi A straddles records from
	// taxi B; output must still be time-sorted.
	recs := []mdt.Record{
		rec("A", 0, mdt.Payment, inTown),
		rec("A", 10, mdt.Free, inTown), // held
		rec("B", 12, mdt.Free, inTown),
		rec("B", 14, mdt.POB, inTown),
		rec("A", 20, mdt.POB, inTown), // triggers flush of the held FREE
	}
	out, _ := Clean(recs, islandCfg())
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) }) {
		t.Fatalf("output not time-sorted: %v", out)
	}
	if len(out) != 5 {
		t.Fatalf("output = %d records, want 5", len(out))
	}
}

func TestCleanEmptyInput(t *testing.T) {
	out, stats := Clean(nil, islandCfg())
	if len(out) != 0 || stats.Input != 0 || stats.Rate() != 0 {
		t.Fatalf("empty input mishandled: %v", stats)
	}
}

func TestCleanOnSimulatedFaults(t *testing.T) {
	// End-to-end: the cleaner must remove close to the injected error rate
	// from a simulated day (the paper's 2.8%).
	cfg := sim.Config{Seed: 99, City: citymap.Generate(300, 0.15), InjectFaults: true}
	out := sim.Run(cfg)
	cleaned, stats := Clean(out.Records, islandCfg())
	if stats.Rate() < 0.01 || stats.Rate() > 0.05 {
		t.Fatalf("cleaning rate = %.3f, want ~0.028 (%v)", stats.Rate(), stats)
	}
	if stats.GPSOutliers == 0 || stats.Duplicates == 0 || stats.ImproperStates == 0 {
		t.Fatalf("some error class never removed: %v", stats)
	}
	// All survivors are in-frame and time-ordered.
	for _, r := range cleaned {
		if !citymap.Island.Contains(r.Pos) {
			t.Fatal("out-of-frame record survived cleaning")
		}
	}
	if !sort.SliceIsSorted(cleaned, func(i, j int) bool {
		return cleaned[i].Time.Before(cleaned[j].Time)
	}) {
		t.Fatal("cleaned output not time-sorted")
	}
	// No exact adjacent duplicates survive per taxi.
	last := map[string]mdt.Record{}
	for _, r := range cleaned {
		if prev, ok := last[r.TaxiID]; ok && r.Equal(prev) {
			t.Fatal("adjacent duplicate survived cleaning")
		}
		last[r.TaxiID] = r
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Input: 100, Output: 97, Duplicates: 1, ImproperStates: 1, GPSOutliers: 1}
	if s.Removed() != 3 {
		t.Fatalf("Removed = %d", s.Removed())
	}
	if s.Rate() != 0.03 {
		t.Fatalf("Rate = %g", s.Rate())
	}
	if str := s.String(); str == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkClean(b *testing.B) {
	cfg := sim.Config{Seed: 100, City: citymap.Generate(301, 0.1), InjectFaults: true,
		Duration: 6 * time.Hour}
	out := sim.Run(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Clean(out.Records, islandCfg())
	}
}
