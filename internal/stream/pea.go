package stream

import (
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// peaState is the incremental form of Algorithm 1 for one taxi: it carries
// the σ1/σ2 flags and the open low-speed run between Ingest calls, and must
// produce exactly the pickups the batch core.ExtractPickups would.
type peaState struct {
	run      mdt.Trajectory
	sigma1   bool
	sigma2   bool
	prev     mdt.Record
	havePrev bool
}

func (st *peaState) reset() {
	st.run = st.run[:0]
	st.sigma1, st.sigma2 = false, false
}

// step feeds one record through the PEA state machine and returns a
// committed pickup when a qualifying low-speed run terminates.
func (st *peaState) step(p mdt.Record, eta float64) (core.Pickup, bool) {
	if p.State.NonOperational() {
		st.reset()
		st.havePrev = false
		return core.Pickup{}, false
	}
	var out core.Pickup
	committed := false
	low := p.Speed <= eta
	switch {
	case low && !st.sigma1:
		st.sigma1 = true
	case low && st.sigma1 && !st.sigma2:
		if st.havePrev {
			st.run = append(st.run, st.prev)
		}
		st.run = append(st.run, p)
		st.sigma2 = true
	case low && st.sigma2:
		st.run = append(st.run, p)
	case !low && st.sigma1 && !st.sigma2:
		st.sigma1 = false
	case !low && st.sigma2:
		if pk, ok := commitRun(st.run); ok {
			out = pk
			committed = true
		}
		st.reset()
	}
	st.prev = p
	st.havePrev = true
	return out, committed
}

// commitRun applies Algorithm 1's three constraints, mirroring the batch
// implementation exactly.
func commitRun(run mdt.Trajectory) (core.Pickup, bool) {
	if len(run) < 2 {
		return core.Pickup{}, false
	}
	start, end := run[0].State, run[len(run)-1].State
	if start.Occupied() && end.Unoccupied() {
		return core.Pickup{}, false
	}
	if start == mdt.Free && end == mdt.OnCall {
		return core.Pickup{}, false
	}
	changed := false
	for i := 1; i < len(run); i++ {
		if run[i].State != run[i-1].State {
			changed = true
			break
		}
	}
	if !changed {
		return core.Pickup{}, false
	}
	sub := make(mdt.Trajectory, len(run))
	copy(sub, run)
	pts := make([]geo.Point, len(sub))
	for i, r := range sub {
		pts[i] = r.Pos
	}
	return core.Pickup{Sub: sub, Centroid: geo.Centroid(pts)}, true
}
