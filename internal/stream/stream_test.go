package stream

import (
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
)

// batchDay simulates and batch-analyzes one small day, shared by the
// equivalence tests.
type batchDay struct {
	records []mdt.Record
	result  *core.Result
	grid    core.SlotGrid
}

var cachedDay *batchDay

func getBatchDay(t testing.TB) *batchDay {
	t.Helper()
	if cachedDay != nil {
		return cachedDay
	}
	out := sim.Run(sim.Config{Seed: 777, City: citymap.Generate(777, 0.1)})
	records, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 25}
	cfg.Grid = core.DaySlots(out.Config.Start)
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Analyze(records)
	if err != nil {
		t.Fatal(err)
	}
	cachedDay = &batchDay{records: records, result: res, grid: cfg.Grid}
	return cachedDay
}

func liveFromBatch(d *batchDay) *Live {
	spots := make([]core.QueueSpot, len(d.result.Spots))
	ths := make([]core.Thresholds, len(d.result.Spots))
	for i := range d.result.Spots {
		spots[i] = d.result.Spots[i].Spot
		ths[i] = d.result.Spots[i].Thresholds
	}
	return NewLive(Config{
		Spots:      spots,
		Thresholds: ths,
		Grid:       d.grid,
		Amplify:    core.PaperAmplification,
	})
}

// TestIncrementalPEAMatchesBatch: feeding each taxi's records one by one
// must produce exactly the pickups of the batch algorithm.
func TestIncrementalPEAMatchesBatch(t *testing.T) {
	d := getBatchDay(t)
	byTaxi := mdt.SplitByTaxi(d.records)
	for id, tr := range byTaxi {
		batch := core.ExtractPickups(tr, core.DefaultSpeedThresholdKmh)
		var st peaState
		var streamed []core.Pickup
		for _, rec := range tr {
			if pk, ok := st.step(rec, core.DefaultSpeedThresholdKmh); ok {
				streamed = append(streamed, pk)
			}
		}
		if len(streamed) != len(batch) {
			t.Fatalf("taxi %s: streamed %d pickups, batch %d", id, len(streamed), len(batch))
		}
		for i := range batch {
			if len(streamed[i].Sub) != len(batch[i].Sub) {
				t.Fatalf("taxi %s pickup %d: lengths differ", id, i)
			}
			for j := range batch[i].Sub {
				if !streamed[i].Sub[j].Equal(batch[i].Sub[j]) {
					t.Fatalf("taxi %s pickup %d record %d differs", id, i, j)
				}
			}
			if geo.Equirect(streamed[i].Centroid, batch[i].Centroid) > 0.001 {
				t.Fatalf("taxi %s pickup %d centroid differs", id, i)
			}
		}
	}
}

// TestLiveSlotLabelsMatchBatch: streaming the whole day through Live and
// collecting SlotClosed events must reproduce the batch labels for slots
// with activity (the batch sees identical waits and uses the same
// thresholds).
func TestLiveSlotLabelsMatchBatch(t *testing.T) {
	d := getBatchDay(t)
	live := liveFromBatch(d)

	type key struct{ spot, slot int }
	got := map[key]core.QueueType{}
	collect := func(events []Event) {
		for _, ev := range events {
			if ev.Kind == SlotClosed {
				got[key{ev.Spot, ev.Slot}] = ev.Label
			}
		}
	}
	for _, rec := range d.records {
		collect(live.Ingest(rec))
	}
	collect(live.Flush())

	if len(got) == 0 {
		t.Fatal("no slots closed")
	}
	checked, mismatches := 0, 0
	for i := range d.result.Spots {
		sa := &d.result.Spots[i]
		for j, batchLabel := range sa.Labels {
			liveLabel, ok := got[key{i, j}]
			if !ok {
				continue // slot with no live activity: batch may still label via cross-slot waits
			}
			checked++
			if liveLabel != batchLabel {
				mismatches++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d slots compared", checked)
	}
	// The live engine attributes cross-slot waits slightly differently
	// (it only sees a wait when the pickup completes), so a small
	// disagreement rate is expected — but the two views must agree on the
	// vast majority of slots.
	if rate := float64(mismatches) / float64(checked); rate > 0.10 {
		t.Fatalf("live/batch label mismatch rate %.3f over %d slots", rate, checked)
	}
}

// TestLivePickupEventsMatchBatchAssignment: every streamed PickupDetected
// lands at the same spot the batch assignment chose.
func TestLivePickupEventsMatchBatchAssignment(t *testing.T) {
	d := getBatchDay(t)
	live := liveFromBatch(d)
	spots := make([]core.QueueSpot, len(d.result.Spots))
	for i := range d.result.Spots {
		spots[i] = d.result.Spots[i].Spot
	}
	batchAssigned := core.AssignPickups(d.result.Pickups, spots, 30)
	batchCounts := make([]int, len(spots))
	for i := range batchAssigned {
		batchCounts[i] = len(batchAssigned[i])
	}
	liveCounts := make([]int, len(spots))
	unmatched := 0
	for _, rec := range d.records {
		for _, ev := range live.Ingest(rec) {
			if ev.Kind == PickupDetected {
				if ev.Spot < 0 {
					unmatched++
					continue
				}
				liveCounts[ev.Spot]++
			}
		}
	}
	for i := range spots {
		if liveCounts[i] != batchCounts[i] {
			t.Fatalf("spot %d: live %d pickups, batch %d", i, liveCounts[i], batchCounts[i])
		}
	}
	// Pickups the batch assignment drops as scatter noise must still
	// surface as Spot=-1 events — they are live spot discovery's feed.
	wantUnmatched := len(d.result.Pickups)
	for _, c := range batchCounts {
		wantUnmatched -= c
	}
	if unmatched != wantUnmatched {
		t.Fatalf("live reported %d unmatched pickups, batch dropped %d", unmatched, wantUnmatched)
	}
}

func TestCurrentEstimate(t *testing.T) {
	grid := core.DaySlots(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
	spot := core.QueueSpot{Pos: geo.Point{Lat: 1.3, Lon: 103.83}}
	th := core.Thresholds{
		EtaWait: time.Minute, EtaDep: time.Minute,
		TauArr: 20, TauDep: 20, EtaDur: 27 * time.Minute, TauRatio: 0.84,
	}
	live := NewLive(Config{Spots: []core.QueueSpot{spot}, Thresholds: []core.Thresholds{th}, Grid: grid})

	noon := grid.Start.Add(12 * time.Hour)
	// No activity yet.
	if _, ok := live.CurrentEstimate(0, noon); ok {
		t.Fatal("estimate with no activity")
	}
	// Stream a burst of quick street pickups in the noon slot: C2-ish
	// (many arrivals, short waits). Build ~12 pickups in 15 minutes.
	taxi := 0
	for m := 0; m < 15; m++ {
		base := noon.Add(time.Duration(m) * time.Minute)
		taxi++
		id := string(rune('A' + taxi%26))
		recs := []mdt.Record{
			{Time: base, TaxiID: id, Pos: spot.Pos, Speed: 30, State: mdt.Free},
			{Time: base.Add(20 * time.Second), TaxiID: id, Pos: spot.Pos, Speed: 3, State: mdt.Free},
			{Time: base.Add(40 * time.Second), TaxiID: id, Pos: spot.Pos, Speed: 2, State: mdt.POB},
			{Time: base.Add(60 * time.Second), TaxiID: id, Pos: spot.Pos, Speed: 35, State: mdt.POB},
		}
		for _, r := range recs {
			live.Ingest(r)
		}
	}
	at := noon.Add(15 * time.Minute)
	q, ok := live.CurrentEstimate(0, at)
	if !ok {
		t.Fatal("no estimate with activity")
	}
	// Extrapolated: ~30 arrivals/slot with 20s waits -> NArr >= TauArr
	// and TWait < EtaWait -> C2.
	if q != core.C2 {
		t.Fatalf("provisional context = %v, want C2", q)
	}
	// Too-early estimates (under 20% of the slot) are refused.
	if _, ok := live.CurrentEstimate(0, noon.Add(time.Minute)); ok {
		t.Fatal("estimate extrapolated from <20% of a slot")
	}
	// Out-of-range spots (stale client, wrong config) answer "no estimate"
	// instead of panicking.
	for _, spot := range []int{-1, 1, 99} {
		if q, ok := live.CurrentEstimate(spot, at); ok || q != core.Unidentified {
			t.Fatalf("spot %d: estimate %v, ok=%v for an unknown spot", spot, q, ok)
		}
	}
}

func TestFlushIdempotent(t *testing.T) {
	d := getBatchDay(t)
	live := liveFromBatch(d)
	for _, rec := range d.records[:len(d.records)/10] {
		live.Ingest(rec)
	}
	first := live.Flush()
	second := live.Flush()
	if len(second) != 0 {
		t.Fatalf("second flush produced %d events", len(second))
	}
	_ = first
}

func BenchmarkLiveIngest(b *testing.B) {
	d := getBatchDay(b)
	live := liveFromBatch(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		live.Ingest(d.records[i%len(d.records)])
	}
}
