// Package stream is the online counterpart of the batch engine: the
// deployed system (§7.1) needs *real-time* queueing information, so this
// package ingests MDT records one at a time, runs the Pickup Extraction
// Algorithm incrementally per taxi, assigns completed pickup events to the
// (batch-detected) queue spots, accumulates the §5.2 slot features live,
// and emits a queue-context label once each time slot is complete.
//
// A slot is not final the moment the clock leaves it: a taxi that started
// waiting inside slot j may only complete its pickup (making the wait
// observable) one slot later. Slots therefore close with a one-slot lag —
// slot j is emitted when the clock enters slot j+2 — which bounds the
// publishing delay at one slot length while capturing almost every
// cross-slot wait. CurrentEstimate gives a zero-delay provisional answer.
//
// Spot locations and QCD thresholds change slowly, so — exactly like the
// deployed system — they come from the most recent batch run; only the
// per-slot context is computed online.
package stream

import (
	"sort"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/spatial"
)

// EventKind tags what an Ingest call produced.
type EventKind uint8

const (
	// PickupDetected fires when a taxi's low-speed run commits as a slow
	// pickup event — at a known queue spot (Spot >= 0) or in open street
	// (Spot = -1), where it feeds live spot discovery.
	PickupDetected EventKind = iota
	// SlotClosed fires when a slot becomes final at a spot with activity:
	// the slot's features and label.
	SlotClosed
)

// Event is one analytics output of the online engine.
type Event struct {
	Kind EventKind
	Spot int // index into the Live engine's spot list; -1 on a pickup outside every spot's radius
	// PickupDetected:
	Pickup  core.Pickup
	Wait    core.Wait
	HasWait bool
	// SlotClosed:
	Slot     int
	Features core.SlotFeatures
	Label    core.QueueType
	// Stats carries the raw accumulator behind Features so a sharded
	// deployment can merge closings from engines that each saw only part
	// of the fleet (see SlotStats). The engine hands over ownership.
	Stats SlotStats
}

// Config parameterizes the online engine.
type Config struct {
	// Spots are the batch-detected queue spots being watched.
	Spots []core.QueueSpot
	// Thresholds are the per-spot QCD thresholds from the batch run,
	// indexed like Spots.
	Thresholds []core.Thresholds
	// Grid is the slot partition for the streaming day.
	Grid core.SlotGrid
	// SpeedThresholdKmh is PEA's η_sp; 10 km/h when zero.
	SpeedThresholdKmh float64
	// AssignRadiusMeters bounds pickup-to-spot matching; 30 m when zero.
	AssignRadiusMeters float64
	// Amplify is the §6.2.1 coverage correction for the live feed.
	Amplify core.Amplification
}

// SlotStats is the raw accumulator behind one (spot, slot) cell. It is
// exported so sharded ingestion can merge per-shard slot closings exactly:
// every field is a sum or a concatenation, so folding the SlotStats of N
// engines that partitioned the fleet by taxi and then calling Features
// yields byte-identical results to one engine that saw every record.
type SlotStats struct {
	// WaitSum/WaitN accumulate street waits that started in this slot.
	WaitSum time.Duration
	WaitN   int
	// Street/Booking count departures (wait ends) in this slot by job kind.
	Street  int
	Booking int
	// DepEnds are the departure instants in this slot, in fold order.
	DepEnds []time.Time
}

// Empty reports whether the cell saw no activity.
func (s *SlotStats) Empty() bool { return s.WaitN == 0 && len(s.DepEnds) == 0 }

// Merge folds o into s. Merging is commutative up to DepEnds order, which
// Features re-sorts, so shard merge order never changes the outcome.
func (s *SlotStats) Merge(o *SlotStats) {
	s.WaitSum += o.WaitSum
	s.WaitN += o.WaitN
	s.Street += o.Street
	s.Booking += o.Booking
	s.DepEnds = append(s.DepEnds, o.DepEnds...)
}

// Features converts the raw statistics into the §5.2 5-tuple exactly as the
// batch ComputeFeatures does. DepEnds is sorted in place.
func (s *SlotStats) Features(slotLen time.Duration, amp core.Amplification) core.SlotFeatures {
	if amp.Factor == 0 {
		amp = core.NoAmplification
	}
	var f core.SlotFeatures
	if s.WaitN > 0 {
		f.TWait = s.WaitSum / time.Duration(s.WaitN)
	}
	f.NArr = float64(s.WaitN) * amp.Factor
	f.QLen = f.TWait.Seconds() * f.NArr / slotLen.Seconds()
	deps := s.DepEnds
	sort.Slice(deps, func(a, b int) bool { return deps[a].Before(deps[b]) })
	if len(deps) > 1 {
		total := deps[len(deps)-1].Sub(deps[0])
		mean := total / time.Duration(len(deps)-1)
		f.TDep = time.Duration(float64(mean) * amp.IntervalFactor)
	}
	f.NDep = float64(len(deps)) * amp.Factor
	f.StreetDepartures = s.Street
	f.BookingDepartures = s.Booking
	return f
}

// Live is the online engine. It is not safe for concurrent use; shard by
// taxi and merge events if parallel ingest is needed.
type Live struct {
	cfg     Config
	spotPts []geo.Point
	spotIdx *spatial.Grid
	taxis   map[string]*peaState
	accs    []map[int]*SlotStats // per spot: open slots
	closed  int                  // all slots below this are final everywhere
	clock   time.Time            // newest record time seen (the feed's clock)
	buf     []int
}

// NewLive validates cfg and builds the engine.
func NewLive(cfg Config) *Live {
	if cfg.SpeedThresholdKmh == 0 {
		cfg.SpeedThresholdKmh = core.DefaultSpeedThresholdKmh
	}
	if cfg.AssignRadiusMeters == 0 {
		cfg.AssignRadiusMeters = 30
	}
	if cfg.Amplify.Factor == 0 {
		cfg.Amplify = core.NoAmplification
	}
	l := &Live{
		cfg:   cfg,
		taxis: make(map[string]*peaState),
		accs:  make([]map[int]*SlotStats, len(cfg.Spots)),
	}
	l.spotPts = make([]geo.Point, len(cfg.Spots))
	for i, s := range cfg.Spots {
		l.spotPts[i] = s.Pos
		l.accs[i] = make(map[int]*SlotStats)
	}
	l.spotIdx = spatial.NewGrid(l.spotPts, cfg.AssignRadiusMeters)
	return l
}

// Ingest processes one record (records must be time-ordered per taxi and
// roughly time-ordered globally) and returns any analytics events it
// triggered.
func (l *Live) Ingest(rec mdt.Record) []Event {
	var events []Event
	if rec.Time.After(l.clock) {
		l.clock = rec.Time
	}
	// Finalize slots the clock has moved safely past (one-slot lag). A
	// record beyond the grid's end finalizes everything: without this the
	// day's last slots stayed provisional forever once the feed's clock
	// left the grid.
	if cur := l.cfg.Grid.Index(rec.Time); cur >= 0 {
		events = l.closeBelow(cur-1, events)
	} else if !rec.Time.Before(l.gridEnd()) {
		events = l.closeBelow(l.cfg.Grid.Slots, events)
	}
	// Incremental PEA for this taxi.
	st := l.taxis[rec.TaxiID]
	if st == nil {
		st = &peaState{}
		l.taxis[rec.TaxiID] = st
	}
	if pk, ok := st.step(rec, l.cfg.SpeedThresholdKmh); ok {
		events = append(events, l.acceptPickup(pk))
	}
	return events
}

// closeBelow finalizes every open slot with index < limit, appending
// SlotClosed events in (slot, spot) order for determinism.
func (l *Live) closeBelow(limit int, events []Event) []Event {
	if limit <= l.closed {
		return events
	}
	for slot := l.closed; slot < limit; slot++ {
		for spot := range l.accs {
			if acc, ok := l.accs[spot][slot]; ok {
				events = append(events, l.finalize(spot, slot, acc))
				delete(l.accs[spot], slot)
			}
		}
	}
	l.closed = limit
	return events
}

// acceptPickup assigns a committed pickup to its nearest spot and folds its
// wait into the spot's slot accumulators. A pickup outside every spot's
// assignment radius is still reported (Spot = -1, nothing folded): the
// live spot-discovery window feeds on exactly those street pickups the
// batch spot list cannot account for.
func (l *Live) acceptPickup(pk core.Pickup) Event {
	l.buf = l.spotIdx.Within(pk.Centroid, l.cfg.AssignRadiusMeters, l.buf[:0])
	best := -1
	bestD := l.cfg.AssignRadiusMeters + 1
	for _, id := range l.buf {
		if d := geo.Equirect(pk.Centroid, l.spotPts[id]); d < bestD {
			best, bestD = id, d
		}
	}
	ev := Event{Kind: PickupDetected, Spot: best, Pickup: pk}
	if w, ok := core.ExtractWait(pk.Sub); ok {
		ev.Wait = w
		ev.HasWait = true
		if best >= 0 {
			l.foldWait(best, w)
		}
	}
	return ev
}

// gridEnd returns the first instant after the last slot.
func (l *Live) gridEnd() time.Time {
	return l.cfg.Grid.Start.Add(time.Duration(l.cfg.Grid.Slots) * l.cfg.Grid.SlotLen)
}

// acc returns (creating if needed) the accumulator for (spot, slot); nil
// when the slot is already final or outside the grid.
func (l *Live) acc(spot, slot int) *SlotStats {
	if slot < l.closed || slot < 0 {
		return nil
	}
	a := l.accs[spot][slot]
	if a == nil {
		a = &SlotStats{}
		l.accs[spot][slot] = a
	}
	return a
}

// foldWait mirrors the batch feature attribution: arrival statistics go to
// the slot of the wait's start, departure statistics to the slot of its
// end.
func (l *Live) foldWait(spot int, w core.Wait) {
	if w.Street() {
		if a := l.acc(spot, l.cfg.Grid.Index(w.Start)); a != nil {
			a.WaitSum += w.Duration()
			a.WaitN++
		}
	}
	if a := l.acc(spot, l.cfg.Grid.Index(w.End)); a != nil {
		if w.Street() {
			a.Street++
		} else {
			a.Booking++
		}
		a.DepEnds = append(a.DepEnds, w.End)
	}
}

// finalize converts an accumulator into a SlotClosed event.
func (l *Live) finalize(spot, slot int, acc *SlotStats) Event {
	f := acc.Features(l.cfg.Grid.SlotLen, l.cfg.Amplify)
	label := core.Classify([]core.SlotFeatures{f}, l.cfg.Thresholds[spot])[0]
	return Event{Kind: SlotClosed, Spot: spot, Slot: slot, Features: f, Label: label, Stats: *acc}
}

// Closed returns the finality watermark: every slot with index < Closed()
// is final in this engine and can never accumulate again.
func (l *Live) Closed() int { return l.closed }

// OpenSlots returns how many (spot, slot) accumulator cells are currently
// open — provisional state the engine still holds in memory. Same
// single-goroutine discipline as Ingest; callers publishing it to a
// concurrent reader (a metrics gauge) must copy it into an atomic.
func (l *Live) OpenSlots() int {
	n := 0
	for i := range l.accs {
		n += len(l.accs[i])
	}
	return n
}

// TrackedTaxis returns how many distinct taxis have per-taxi PEA state.
func (l *Live) TrackedTaxis() int { return len(l.taxis) }

// Flush closes every open slot (end of stream) and returns the final
// events in (slot, spot) order. After Flush the whole grid is final:
// further records still feed PEA but can no longer change any slot.
func (l *Live) Flush() []Event {
	return l.closeBelow(l.cfg.Grid.Slots, nil)
}

// FlushUntil finalizes every slot the feed's clock can no longer touch
// given that it has (at least) reached now, without needing another record.
// Drive it from a timer so slots do not linger provisional when the feed
// pauses mid-slot; it applies the same one-slot safety lag as Ingest.
func (l *Live) FlushUntil(now time.Time) []Event {
	if !now.Before(l.gridEnd()) {
		return l.Flush()
	}
	if cur := l.cfg.Grid.Index(now); cur >= 0 {
		return l.closeBelow(cur-1, nil)
	}
	return nil
}

// CurrentEstimate returns a provisional context for the spot's slot at
// `now` by extrapolating the partial counts to a full slot. ok is false
// when the spot has no activity in that slot or the elapsed share is too
// small to extrapolate (< 20% of the slot).
func (l *Live) CurrentEstimate(spot int, now time.Time) (core.QueueType, bool) {
	if spot < 0 || spot >= len(l.accs) {
		// An unknown spot (stale client, wrong config) has no estimate; it
		// used to panic the caller.
		return core.Unidentified, false
	}
	j := l.cfg.Grid.Index(now)
	if j < 0 {
		return core.Unidentified, false
	}
	acc := l.accs[spot][j]
	if acc == nil {
		return core.Unidentified, false
	}
	return EstimateFromStats(acc, l.cfg.Grid, j, now, l.cfg.Amplify, l.cfg.Thresholds[spot])
}

// EstimateFromStats extrapolates a partial slot accumulator to a full-slot
// provisional context: partial counts are scaled by the slot share elapsed
// at `now`. ok is false for an empty accumulator or when less than 20% of
// the slot has elapsed (too little signal to extrapolate). Shared by
// Live.CurrentEstimate and the sharded ingest service, whose per-shard
// accumulators merge exactly before estimation.
func EstimateFromStats(acc *SlotStats, grid core.SlotGrid, slot int, now time.Time, amp core.Amplification, th core.Thresholds) (core.QueueType, bool) {
	if acc == nil || acc.Empty() {
		return core.Unidentified, false
	}
	from, _ := grid.Bounds(slot)
	elapsed := now.Sub(from).Seconds()
	slotSec := grid.SlotLen.Seconds()
	if elapsed < 0.2*slotSec {
		return core.Unidentified, false
	}
	f := acc.Features(grid.SlotLen, amp)
	scale := slotSec / elapsed
	f.NArr *= scale
	f.NDep *= scale
	f.QLen *= scale
	return core.Classify([]core.SlotFeatures{f}, th)[0], true
}

// Provisional is an immutable export of the engine's still-open state for
// the slot its feed clock is currently inside: one cloned accumulator per
// spot (nil when the spot has no activity yet) plus the clock itself.
// Sharded ingestion publishes one Provisional per shard on a cadence and
// merges them — SlotStats merging is exact — to serve zero-delay estimates
// without touching any engine's goroutine state.
type Provisional struct {
	// Clock is the newest record time this engine has seen.
	Clock time.Time
	// Slot is the grid slot containing Clock; -1 outside the grid.
	Slot int
	// Stats holds one cloned accumulator per spot (indexed like
	// Config.Spots); nil entries saw no activity in Slot.
	Stats []*SlotStats
}

// ExportProvisional snapshots the current slot's accumulators. Same
// single-goroutine discipline as Ingest: only the owning goroutine may
// call it, but the returned value is a deep clone safe to publish to
// concurrent readers.
func (l *Live) ExportProvisional() *Provisional {
	p := &Provisional{Clock: l.clock, Slot: -1}
	if l.clock.IsZero() {
		return p
	}
	j := l.cfg.Grid.Index(l.clock)
	if j < 0 {
		return p
	}
	p.Slot = j
	p.Stats = make([]*SlotStats, len(l.accs))
	for spot := range l.accs {
		if acc := l.accs[spot][j]; acc != nil && !acc.Empty() {
			cl := *acc
			cl.DepEnds = append([]time.Time(nil), acc.DepEnds...)
			p.Stats[spot] = &cl
		}
	}
	return p
}
