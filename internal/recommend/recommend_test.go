package recommend

import (
	"math"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
)

var (
	origin = geo.Point{Lat: 1.30, Lon: 103.83}
	noon   = time.Date(2026, 1, 5, 12, 0, 0, 0, time.UTC)
)

// fakeResult builds a Result with hand-placed spots and labels.
func fakeResult(spots ...core.SpotAnalysis) *core.Result {
	cfg := core.DefaultEngineConfig()
	cfg.Grid = core.DaySlots(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
	return &core.Result{Config: cfg, Spots: spots}
}

// spotAt creates a spot at distance meters east of origin whose every slot
// is labeled q.
func spotAt(meters float64, pickups int, q core.QueueType) core.SpotAnalysis {
	labels := make([]core.QueueType, 48)
	for i := range labels {
		labels[i] = q
	}
	return core.SpotAnalysis{
		Spot: core.QueueSpot{
			Pos:         geo.Destination(origin, 90, meters),
			Zone:        citymap.Central,
			PickupCount: pickups,
		},
		Labels: labels,
	}
}

func TestDriverPrefersPassengerQueues(t *testing.T) {
	res := fakeResult(
		spotAt(1000, 300, core.C2),
		spotAt(900, 300, core.C3), // closer but a taxi line: useless for a driver
		spotAt(1100, 300, core.C4),
	)
	recs := Recommend(res, ForDriver, origin, noon, Options{})
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	if recs[0].Context != core.C2 {
		t.Fatalf("top driver recommendation is %v, want C2", recs[0].Context)
	}
	for _, r := range recs {
		if r.Context == core.C3 {
			t.Fatal("driver recommended a taxi-queue-only spot")
		}
	}
}

func TestCommuterPrefersTaxiQueues(t *testing.T) {
	res := fakeResult(
		spotAt(1000, 300, core.C3),
		spotAt(900, 300, core.C2),
		spotAt(800, 300, core.C1),
	)
	recs := Recommend(res, ForCommuter, origin, noon, Options{})
	if len(recs) < 2 {
		t.Fatalf("got %d recommendations", len(recs))
	}
	// C1 at 800 m (weight 0.7, distFactor ~0.65) vs C3 at 1000 m (1.0,
	// 0.6): C3's context weight should win.
	if recs[0].Context != core.C3 && recs[0].Context != core.C1 {
		t.Fatalf("top commuter recommendation is %v", recs[0].Context)
	}
	// C2 must rank below both queue-bearing spots.
	if recs[0].Context == core.C2 || (len(recs) > 1 && recs[1].Context == core.C2) {
		t.Fatal("commuter recommended a passenger-queue spot too highly")
	}
}

func TestDistanceCutoff(t *testing.T) {
	res := fakeResult(spotAt(8000, 300, core.C2))
	if recs := Recommend(res, ForDriver, origin, noon, Options{}); len(recs) != 0 {
		t.Fatal("spot beyond the 5 km default radius recommended")
	}
	recs := Recommend(res, ForDriver, origin, noon, Options{MaxDistanceMeters: 10000})
	if len(recs) != 1 {
		t.Fatal("widened radius did not include the spot")
	}
}

func TestMaxResults(t *testing.T) {
	var spots []core.SpotAnalysis
	for i := 0; i < 10; i++ {
		spots = append(spots, spotAt(500+float64(i)*100, 300, core.C2))
	}
	res := fakeResult(spots...)
	recs := Recommend(res, ForDriver, origin, noon, Options{MaxResults: 3})
	if len(recs) != 3 {
		t.Fatalf("got %d recommendations, want 3", len(recs))
	}
	// Identical contexts and pickups: nearer spots score higher.
	for i := 1; i < len(recs); i++ {
		if recs[i].Distance < recs[i-1].Distance {
			t.Fatal("recommendations not ordered by distance for equal contexts")
		}
	}
}

func TestActivityBreaksTies(t *testing.T) {
	busy := spotAt(1000, 500, core.C2)
	quiet := spotAt(1000, 50, core.C2)
	quiet.Spot.Pos = geo.Destination(origin, 270, 1000) // same distance, west
	res := fakeResult(quiet, busy)
	recs := Recommend(res, ForDriver, origin, noon, Options{})
	if recs[0].Spot.PickupCount != 500 {
		t.Fatal("busier spot did not outrank quieter one")
	}
}

func TestEmergingPassengerQueues(t *testing.T) {
	sa := spotAt(1000, 300, core.C4)
	// Flip to C2 at slot 24 (noon).
	for j := 24; j < 48; j++ {
		sa.Labels[j] = core.C2
	}
	steady := spotAt(2000, 300, core.C2) // C2 all day: not "emerging" at noon
	res := fakeResult(sa, steady)
	got := EmergingPassengerQueues(res, noon)
	if len(got) != 1 {
		t.Fatalf("emerging spots = %d, want 1", len(got))
	}
	if got[0].PickupCount != 300 || got[0].Pos != sa.Spot.Pos {
		t.Fatal("wrong emerging spot")
	}
	// Slot 0 has no predecessor.
	if EmergingPassengerQueues(res, res.Config.Grid.Start) != nil {
		t.Fatal("slot 0 reported emerging queues")
	}
}

// TestNonFinitePositionRejected is the regression test for the NaN/Inf
// query bug: NaN distances pass the radius filter (NaN > max is false)
// and poison the sort comparator, so a non-finite position used to
// return every spot in arbitrary order. It must return nothing.
func TestNonFinitePositionRejected(t *testing.T) {
	res := fakeResult(
		spotAt(1000, 300, core.C2),
		spotAt(2000, 300, core.C1),
	)
	bad := []geo.Point{
		{Lat: math.NaN(), Lon: 103.83},
		{Lat: 1.30, Lon: math.NaN()},
		{Lat: math.Inf(1), Lon: 103.83},
		{Lat: 1.30, Lon: math.Inf(-1)},
		{Lat: math.NaN(), Lon: math.NaN()},
	}
	for _, p := range bad {
		if recs := Recommend(res, ForDriver, p, noon, Options{}); recs != nil {
			t.Fatalf("position %+v produced %d recommendations, want nil", p, len(recs))
		}
	}
	// Sanity: a finite position still works.
	if recs := Recommend(res, ForDriver, origin, noon, Options{}); len(recs) == 0 {
		t.Fatal("finite position returned nothing")
	}
}

// TestForecastRanksByExpectedWait: with a forecast wired in, a nearer
// spot with a long expected wait must lose to a farther spot with a
// short one, and the recommendation carries ETA/ExpectedWait/Forecasted.
func TestForecastRanksByExpectedWait(t *testing.T) {
	near := spotAt(900, 300, core.C2)
	far := spotAt(1100, 300, core.C2)
	res := fakeResult(near, far)
	fc := func(spot int, at time.Time) (core.QueueType, float64, time.Duration, bool) {
		if spot == 0 {
			return core.C2, 5, 40 * time.Minute, true
		}
		return core.C2, 0.5, 30 * time.Second, true
	}
	recs := Recommend(res, ForDriver, origin, noon, Options{Forecast: fc})
	if len(recs) != 2 {
		t.Fatalf("got %d recommendations, want 2", len(recs))
	}
	if recs[0].Spot.Pos != far.Spot.Pos {
		t.Fatal("short-wait far spot did not outrank long-wait near spot")
	}
	for _, r := range recs {
		if !r.Forecasted {
			t.Fatal("forecast answered but Forecasted is false")
		}
		if r.ETA <= 0 {
			t.Fatalf("ETA %v not positive", r.ETA)
		}
	}
	if recs[0].ExpectedWait != 30*time.Second || recs[1].ExpectedWait != 40*time.Minute {
		t.Fatalf("expected waits %v / %v", recs[0].ExpectedWait, recs[1].ExpectedWait)
	}
	// ETA follows the audience travel speed: same query as a commuter
	// (walking) must see a longer ETA for the same spot.
	walk := Recommend(res, ForCommuter, origin, noon, Options{Forecast: func(int, time.Time) (core.QueueType, float64, time.Duration, bool) {
		return core.C3, 1, time.Minute, true
	}})
	if len(walk) == 0 || walk[0].ETA <= recs[0].ETA {
		t.Fatal("walking ETA not longer than driving ETA")
	}
}

// TestForecastEvaluatesAtArrival: the context is read at at+ETA, not at
// the query instant — a spot whose label flips to C2 only after the
// travel time must be ranked by the arrival-slot label.
func TestForecastEvaluatesAtArrival(t *testing.T) {
	sa := spotAt(2000, 300, core.C3) // C3 now: worthless for a driver...
	for j := 25; j < 48; j++ {       // ...but C2 from 12:30 on
		sa.Labels[j] = core.C2
	}
	res := fakeResult(sa)
	// Walking 2 km at 1.4 m/s ≈ 24 min: a commuter queries at 12:10, lands
	// past 12:30. Use a driver with an artificially slow speed instead so
	// the arrival crosses the slot boundary.
	at := time.Date(2026, 1, 5, 12, 10, 0, 0, time.UTC)
	recs := Recommend(res, ForDriver, origin, at, Options{TravelSpeedMps: 1.0})
	if len(recs) != 1 {
		t.Fatalf("got %d recommendations, want 1 (arrival-time C2)", len(recs))
	}
	if recs[0].Context != core.C2 {
		t.Fatalf("context %v, want C2 at arrival", recs[0].Context)
	}
	// At driving speed the arrival stays inside the C3 slot: filtered out.
	if recs := Recommend(res, ForDriver, origin, at, Options{}); len(recs) != 0 {
		t.Fatalf("driving-speed arrival still C3, got %d recommendations", len(recs))
	}
}

// TestForecastFallback: when the forecast declines (ok false), the batch
// label grid still drives the ranking and Forecasted stays false.
func TestForecastFallback(t *testing.T) {
	res := fakeResult(spotAt(1000, 300, core.C2))
	fc := func(int, time.Time) (core.QueueType, float64, time.Duration, bool) {
		return core.Unidentified, 0, 0, false
	}
	recs := Recommend(res, ForDriver, origin, noon, Options{Forecast: fc})
	if len(recs) != 1 {
		t.Fatalf("got %d recommendations, want 1", len(recs))
	}
	if recs[0].Forecasted || recs[0].ExpectedWait != 0 {
		t.Fatalf("declined forecast leaked into the result: %+v", recs[0])
	}
	if recs[0].Context != core.C2 {
		t.Fatalf("context %v, want batch label C2", recs[0].Context)
	}
}

func TestAudienceString(t *testing.T) {
	if ForDriver.String() != "driver" || ForCommuter.String() != "commuter" {
		t.Fatal("audience names wrong")
	}
}
