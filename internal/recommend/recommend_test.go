package recommend

import (
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
)

var (
	origin = geo.Point{Lat: 1.30, Lon: 103.83}
	noon   = time.Date(2026, 1, 5, 12, 0, 0, 0, time.UTC)
)

// fakeResult builds a Result with hand-placed spots and labels.
func fakeResult(spots ...core.SpotAnalysis) *core.Result {
	cfg := core.DefaultEngineConfig()
	cfg.Grid = core.DaySlots(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
	return &core.Result{Config: cfg, Spots: spots}
}

// spotAt creates a spot at distance meters east of origin whose every slot
// is labeled q.
func spotAt(meters float64, pickups int, q core.QueueType) core.SpotAnalysis {
	labels := make([]core.QueueType, 48)
	for i := range labels {
		labels[i] = q
	}
	return core.SpotAnalysis{
		Spot: core.QueueSpot{
			Pos:         geo.Destination(origin, 90, meters),
			Zone:        citymap.Central,
			PickupCount: pickups,
		},
		Labels: labels,
	}
}

func TestDriverPrefersPassengerQueues(t *testing.T) {
	res := fakeResult(
		spotAt(1000, 300, core.C2),
		spotAt(900, 300, core.C3), // closer but a taxi line: useless for a driver
		spotAt(1100, 300, core.C4),
	)
	recs := Recommend(res, ForDriver, origin, noon, Options{})
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	if recs[0].Context != core.C2 {
		t.Fatalf("top driver recommendation is %v, want C2", recs[0].Context)
	}
	for _, r := range recs {
		if r.Context == core.C3 {
			t.Fatal("driver recommended a taxi-queue-only spot")
		}
	}
}

func TestCommuterPrefersTaxiQueues(t *testing.T) {
	res := fakeResult(
		spotAt(1000, 300, core.C3),
		spotAt(900, 300, core.C2),
		spotAt(800, 300, core.C1),
	)
	recs := Recommend(res, ForCommuter, origin, noon, Options{})
	if len(recs) < 2 {
		t.Fatalf("got %d recommendations", len(recs))
	}
	// C1 at 800 m (weight 0.7, distFactor ~0.65) vs C3 at 1000 m (1.0,
	// 0.6): C3's context weight should win.
	if recs[0].Context != core.C3 && recs[0].Context != core.C1 {
		t.Fatalf("top commuter recommendation is %v", recs[0].Context)
	}
	// C2 must rank below both queue-bearing spots.
	if recs[0].Context == core.C2 || (len(recs) > 1 && recs[1].Context == core.C2) {
		t.Fatal("commuter recommended a passenger-queue spot too highly")
	}
}

func TestDistanceCutoff(t *testing.T) {
	res := fakeResult(spotAt(8000, 300, core.C2))
	if recs := Recommend(res, ForDriver, origin, noon, Options{}); len(recs) != 0 {
		t.Fatal("spot beyond the 5 km default radius recommended")
	}
	recs := Recommend(res, ForDriver, origin, noon, Options{MaxDistanceMeters: 10000})
	if len(recs) != 1 {
		t.Fatal("widened radius did not include the spot")
	}
}

func TestMaxResults(t *testing.T) {
	var spots []core.SpotAnalysis
	for i := 0; i < 10; i++ {
		spots = append(spots, spotAt(500+float64(i)*100, 300, core.C2))
	}
	res := fakeResult(spots...)
	recs := Recommend(res, ForDriver, origin, noon, Options{MaxResults: 3})
	if len(recs) != 3 {
		t.Fatalf("got %d recommendations, want 3", len(recs))
	}
	// Identical contexts and pickups: nearer spots score higher.
	for i := 1; i < len(recs); i++ {
		if recs[i].Distance < recs[i-1].Distance {
			t.Fatal("recommendations not ordered by distance for equal contexts")
		}
	}
}

func TestActivityBreaksTies(t *testing.T) {
	busy := spotAt(1000, 500, core.C2)
	quiet := spotAt(1000, 50, core.C2)
	quiet.Spot.Pos = geo.Destination(origin, 270, 1000) // same distance, west
	res := fakeResult(quiet, busy)
	recs := Recommend(res, ForDriver, origin, noon, Options{})
	if recs[0].Spot.PickupCount != 500 {
		t.Fatal("busier spot did not outrank quieter one")
	}
}

func TestEmergingPassengerQueues(t *testing.T) {
	sa := spotAt(1000, 300, core.C4)
	// Flip to C2 at slot 24 (noon).
	for j := 24; j < 48; j++ {
		sa.Labels[j] = core.C2
	}
	steady := spotAt(2000, 300, core.C2) // C2 all day: not "emerging" at noon
	res := fakeResult(sa, steady)
	got := EmergingPassengerQueues(res, noon)
	if len(got) != 1 {
		t.Fatalf("emerging spots = %d, want 1", len(got))
	}
	if got[0].PickupCount != 300 || got[0].Pos != sa.Spot.Pos {
		t.Fatal("wrong emerging spot")
	}
	// Slot 0 has no predecessor.
	if EmergingPassengerQueues(res, res.Config.Grid.Start) != nil {
		t.Fatal("slot 0 reported emerging queues")
	}
}

func TestAudienceString(t *testing.T) {
	if ForDriver.String() != "driver" || ForCommuter.String() != "commuter" {
		t.Fatal("audience names wrong")
	}
}
