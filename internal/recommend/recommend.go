// Package recommend implements the paper's motivating applications (§1 and
// the §9 future work): recommending queue spots to taxi drivers (where are
// passengers queuing?) and to commuters (where are taxis queuing?), ranked
// by a combination of context, activity and travel distance.
package recommend

import (
	"sort"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
)

// Audience selects who the recommendation is for.
type Audience uint8

const (
	// ForDriver recommends spots with waiting passengers (C1/C2).
	ForDriver Audience = iota
	// ForCommuter recommends spots with waiting taxis (C1/C3).
	ForCommuter
)

// String implements fmt.Stringer.
func (a Audience) String() string {
	if a == ForDriver {
		return "driver"
	}
	return "commuter"
}

// Recommendation is one ranked queue spot.
type Recommendation struct {
	Spot     core.QueueSpot
	Context  core.QueueType
	Distance float64 // meters from the query position
	Score    float64 // higher is better
}

// Options tunes the ranking.
type Options struct {
	// MaxDistanceMeters bounds the search radius; 5 km when zero.
	MaxDistanceMeters float64
	// MaxResults caps the returned list; 5 when zero.
	MaxResults int
	// HalfDistanceMeters is the distance at which the distance factor
	// halves; 1.5 km when zero.
	HalfDistanceMeters float64
}

func (o Options) withDefaults() Options {
	if o.MaxDistanceMeters == 0 {
		o.MaxDistanceMeters = 5000
	}
	if o.MaxResults == 0 {
		o.MaxResults = 5
	}
	if o.HalfDistanceMeters == 0 {
		o.HalfDistanceMeters = 1500
	}
	return o
}

// contextWeight scores how attractive a context is for the audience. A
// driver wants passenger queues; C2 (passengers only) beats C1 (they would
// join a taxi line). A commuter wants taxi queues; C3 beats C1 (no
// passenger line to stand in).
func contextWeight(aud Audience, q core.QueueType) float64 {
	switch aud {
	case ForDriver:
		switch q {
		case core.C2:
			return 1.0
		case core.C1:
			return 0.6
		case core.C4, core.Unidentified:
			return 0.1
		default: // C3: a taxi line with no passengers
			return 0
		}
	default:
		switch q {
		case core.C3:
			return 1.0
		case core.C1:
			return 0.7
		case core.C4, core.Unidentified:
			return 0.1
		default: // C2: joining an existing passenger queue
			return 0.05
		}
	}
}

// Recommend ranks the analyzed spots for the audience at the given position
// and time. The score combines the context weight, the spot's activity
// (pickup volume, saturating) and an inverse-distance factor.
func Recommend(res *core.Result, aud Audience, from geo.Point, at time.Time, opts Options) []Recommendation {
	opts = opts.withDefaults()
	grid := res.Config.Grid
	var out []Recommendation
	for i := range res.Spots {
		sa := &res.Spots[i]
		d := geo.Equirect(from, sa.Spot.Pos)
		if d > opts.MaxDistanceMeters {
			continue
		}
		ctx := sa.LabelAt(grid, at)
		w := contextWeight(aud, ctx)
		if w == 0 {
			continue
		}
		activity := float64(sa.Spot.PickupCount)
		activityFactor := activity / (activity + 100) // saturates toward 1
		distFactor := opts.HalfDistanceMeters / (opts.HalfDistanceMeters + d)
		out = append(out, Recommendation{
			Spot:     sa.Spot,
			Context:  ctx,
			Distance: d,
			Score:    w * activityFactor * distFactor,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Distance < out[j].Distance
	})
	if len(out) > opts.MaxResults {
		out = out[:opts.MaxResults]
	}
	return out
}

// EmergingPassengerQueues returns the spots whose context switched into a
// passenger-queue state (C1/C2) at the slot containing `at`, having been in
// a non-passenger-queue state in the previous slot — the "recent emerging
// passenger queue spots" feed the §9 driver recommendation describes.
func EmergingPassengerQueues(res *core.Result, at time.Time) []core.QueueSpot {
	grid := res.Config.Grid
	j := grid.Index(at)
	if j <= 0 {
		return nil
	}
	paxQueue := func(q core.QueueType) bool { return q == core.C1 || q == core.C2 }
	var out []core.QueueSpot
	for i := range res.Spots {
		sa := &res.Spots[i]
		if j >= len(sa.Labels) {
			continue
		}
		if paxQueue(sa.Labels[j]) && !paxQueue(sa.Labels[j-1]) {
			out = append(out, sa.Spot)
		}
	}
	return out
}
