// Package recommend implements the paper's motivating applications (§1 and
// the §9 future work): recommending queue spots to taxi drivers (where are
// passengers queuing?) and to commuters (where are taxis queuing?), ranked
// by a combination of context, activity and travel distance.
package recommend

import (
	"math"
	"sort"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
)

// Audience selects who the recommendation is for.
type Audience uint8

const (
	// ForDriver recommends spots with waiting passengers (C1/C2).
	ForDriver Audience = iota
	// ForCommuter recommends spots with waiting taxis (C1/C3).
	ForCommuter
)

// String implements fmt.Stringer.
func (a Audience) String() string {
	if a == ForDriver {
		return "driver"
	}
	return "commuter"
}

// Recommendation is one ranked queue spot.
type Recommendation struct {
	Spot     core.QueueSpot
	Context  core.QueueType
	Distance float64 // meters from the query position
	Score    float64 // higher is better
	// ETA is the estimated travel time to the spot at the audience's
	// travel speed; the context and wait are evaluated at at+ETA, not at
	// the query instant — the queue that matters is the one you arrive to.
	ETA time.Duration
	// ExpectedWait is the forecast wait at arrival; zero when no forecast
	// answered (Forecasted false).
	ExpectedWait time.Duration
	// Forecasted says a profile-table forecast (not just the batch label
	// grid) produced Context/ExpectedWait.
	Forecasted bool
}

// ForecastFunc evaluates a spot's expected queue state at an instant —
// the seam internal/forecast plugs in through (a func type, so this
// package needs no forecast dependency). spot is the index into the
// ranked Result's Spots. ok false means "no learned answer"; the ranking
// then falls back to the batch label grid.
type ForecastFunc func(spot int, at time.Time) (label core.QueueType, qlen float64, wait time.Duration, ok bool)

// Options tunes the ranking.
type Options struct {
	// MaxDistanceMeters bounds the search radius; 5 km when zero.
	MaxDistanceMeters float64
	// MaxResults caps the returned list; 5 when zero.
	MaxResults int
	// HalfDistanceMeters is the distance at which the distance factor
	// halves; 1.5 km when zero.
	HalfDistanceMeters float64
	// TravelSpeedMps converts distance to ETA; 0 picks the audience
	// default (≈30 km/h driving for drivers, ≈5 km/h walking for
	// commuters).
	TravelSpeedMps float64
	// HalfWait is the expected wait at which the wait factor halves;
	// 10 min when zero.
	HalfWait time.Duration
	// Forecast, when set, upgrades the ranking from "label at the query
	// instant" to "expected state at arrival": context, queue length and
	// wait come from the forecast evaluated per spot at at+ETA.
	Forecast ForecastFunc
}

func (o Options) withDefaults(aud Audience) Options {
	if o.MaxDistanceMeters == 0 {
		o.MaxDistanceMeters = 5000
	}
	if o.MaxResults == 0 {
		o.MaxResults = 5
	}
	if o.HalfDistanceMeters == 0 {
		o.HalfDistanceMeters = 1500
	}
	if o.TravelSpeedMps == 0 {
		if aud == ForDriver {
			o.TravelSpeedMps = 8.3 // ~30 km/h urban driving
		} else {
			o.TravelSpeedMps = 1.4 // walking
		}
	}
	if o.HalfWait == 0 {
		o.HalfWait = 10 * time.Minute
	}
	return o
}

// contextWeight scores how attractive a context is for the audience. A
// driver wants passenger queues; C2 (passengers only) beats C1 (they would
// join a taxi line). A commuter wants taxi queues; C3 beats C1 (no
// passenger line to stand in).
func contextWeight(aud Audience, q core.QueueType) float64 {
	switch aud {
	case ForDriver:
		switch q {
		case core.C2:
			return 1.0
		case core.C1:
			return 0.6
		case core.C4, core.Unidentified:
			return 0.1
		default: // C3: a taxi line with no passengers
			return 0
		}
	default:
		switch q {
		case core.C3:
			return 1.0
		case core.C1:
			return 0.7
		case core.C4, core.Unidentified:
			return 0.1
		default: // C2: joining an existing passenger queue
			return 0.05
		}
	}
}

// Recommend ranks the analyzed spots for the audience at the given position
// and time. The score combines the context weight, the spot's activity
// (pickup volume, saturating), an inverse-distance factor and — when a
// forecast is wired in — an inverse-expected-wait factor, all evaluated at
// the arrival instant at+ETA rather than at itself.
//
// A non-finite position returns nil: NaN distances would defeat the radius
// filter (NaN > max is false) and make the sort comparator non-transitive.
func Recommend(res *core.Result, aud Audience, from geo.Point, at time.Time, opts Options) []Recommendation {
	if math.IsNaN(from.Lat) || math.IsInf(from.Lat, 0) ||
		math.IsNaN(from.Lon) || math.IsInf(from.Lon, 0) {
		return nil
	}
	opts = opts.withDefaults(aud)
	grid := res.Config.Grid
	var out []Recommendation
	for i := range res.Spots {
		sa := &res.Spots[i]
		d := geo.Equirect(from, sa.Spot.Pos)
		if d > opts.MaxDistanceMeters {
			continue
		}
		eta := time.Duration(d / opts.TravelSpeedMps * float64(time.Second))
		arrival := at.Add(eta)
		ctx := sa.LabelAt(grid, arrival)
		var wait time.Duration
		forecasted := false
		if opts.Forecast != nil {
			if label, _, w, ok := opts.Forecast(i, arrival); ok {
				ctx, wait, forecasted = label, w, true
			}
		}
		w := contextWeight(aud, ctx)
		if w == 0 {
			continue
		}
		activity := float64(sa.Spot.PickupCount)
		activityFactor := activity / (activity + 100) // saturates toward 1
		distFactor := opts.HalfDistanceMeters / (opts.HalfDistanceMeters + d)
		waitFactor := 1.0
		if forecasted {
			waitFactor = float64(opts.HalfWait) / float64(opts.HalfWait+wait)
		}
		out = append(out, Recommendation{
			Spot:         sa.Spot,
			Context:      ctx,
			Distance:     d,
			Score:        w * activityFactor * distFactor * waitFactor,
			ETA:          eta,
			ExpectedWait: wait,
			Forecasted:   forecasted,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Distance < out[j].Distance
	})
	if len(out) > opts.MaxResults {
		out = out[:opts.MaxResults]
	}
	return out
}

// EmergingPassengerQueues returns the spots whose context switched into a
// passenger-queue state (C1/C2) at the slot containing `at`, having been in
// a non-passenger-queue state in the previous slot — the "recent emerging
// passenger queue spots" feed the §9 driver recommendation describes.
func EmergingPassengerQueues(res *core.Result, at time.Time) []core.QueueSpot {
	grid := res.Config.Grid
	j := grid.Index(at)
	if j <= 0 {
		return nil
	}
	paxQueue := func(q core.QueueType) bool { return q == core.C1 || q == core.C2 }
	var out []core.QueueSpot
	for i := range res.Spots {
		sa := &res.Spots[i]
		if j >= len(sa.Labels) {
			continue
		}
		if paxQueue(sa.Labels[j]) && !paxQueue(sa.Labels[j-1]) {
			out = append(out, sa.Spot)
		}
	}
	return out
}
