package cluster

import (
	"math"
	"time"

	"taxiqueue/internal/geo"
)

// Incremental maintains DBSCAN clusters over a sliding time window of
// points, updated on insert and expiry without re-clustering (ROADMAP
// item 2: live queue-spot discovery).
//
// It reuses the PR 1 partition/merge formulation, which is declarative and
// therefore order-independent:
//
//   - a point is core when its ε-neighbourhood (self included) holds at
//     least MinPoints alive members;
//   - every core-core pair within ε lies in one cluster (union-find over
//     core edges, min-id roots);
//   - components are numbered by ascending first-core-index, and each
//     non-core point takes the smallest cluster number among its core
//     neighbours, or Noise.
//
// Because that specification names no visit order, maintaining it
// incrementally reproduces the batch result exactly: Result() over the
// alive window is byte-identical to DBSCAN over the same points in the
// same order. An insert is a neighbourhood query plus find/union calls; a
// core merge is a union, never a re-cluster. Expiry can split clusters,
// which union-find cannot undo edge-by-edge, so expiring a core point
// marks the structure dirty and the next extraction rebuilds connectivity
// with one pass over the window's core edges (inserts stay pure
// find/union; neighbour counts and coreness are always maintained
// eagerly).
//
// The spatial index is a dynamic eps-sized cell map with the same
// geometry and the same inclusive Equirect predicate as spatial.Grid, so
// candidate generation matches the batch index. Points must be inserted
// in (approximately) non-decreasing time order; ExpireBefore removes the
// longest prefix older than the cutoff, so an out-of-order straggler only
// delays its own expiry, never anyone else's.
//
// Incremental is not safe for concurrent use; callers serialize access.
type Incremental struct {
	p Params

	// Cell geometry, fixed at the first insert (the predicate below is
	// exact, cells only pre-filter candidates, so the origin choice does
	// not affect results — it only centers the int32 cell coordinates).
	origin    geo.Point
	originSet bool
	cellDeg   float64 // cell size in degrees latitude
	cellDegX  float64 // cell size in degrees longitude at the origin

	pts  []winPoint         // insertion order; pts[head:] are alive
	head int                // first alive index
	cell map[uint64][]int32 // cell key → alive point indexes

	uf    []int32 // parent per index; valid connectivity iff !dirty
	dirty bool    // a core point expired or was demoted since last build

	buf []int32 // neighbour scratch
}

type winPoint struct {
	pos  geo.Point
	t    int64 // UnixNano
	nbr  int32 // |ε-neighbourhood| including self, over alive points
	core bool
}

// NewIncremental returns an empty window clusterer for the given DBSCAN
// parameters.
func NewIncremental(p Params) (*Incremental, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Incremental{p: p, cell: make(map[uint64][]int32)}, nil
}

// Len returns the number of alive (unexpired) points in the window.
func (inc *Incremental) Len() int { return len(inc.pts) - inc.head }

// Insert adds one point observed at time t and updates neighbour counts,
// coreness and cluster connectivity. Points with non-finite coordinates
// are rejected (reported false) — the same family of degenerate input the
// ingest path drops before clustering.
func (inc *Incremental) Insert(pt geo.Point, t time.Time) bool {
	if math.IsNaN(pt.Lat) || math.IsNaN(pt.Lon) || math.IsInf(pt.Lat, 0) || math.IsInf(pt.Lon, 0) {
		return false
	}
	if !inc.originSet {
		inc.origin = pt
		inc.originSet = true
		metersPerDegLat := 2 * math.Pi * geo.EarthRadiusMeters / 360
		inc.cellDeg = inc.p.EpsMeters / metersPerDegLat
		inc.cellDegX = inc.p.EpsMeters / (metersPerDegLat * math.Cos(inc.origin.Lat*math.Pi/180))
	}

	inc.buf = inc.within(pt, inc.buf[:0])
	nbrs := inc.buf

	id := int32(len(inc.pts))
	p := winPoint{pos: pt, t: t.UnixNano(), nbr: int32(len(nbrs)) + 1}
	p.core = p.nbr >= int32(inc.p.MinPoints)
	inc.pts = append(inc.pts, p)
	inc.uf = append(inc.uf, id)
	key := inc.cellKey(pt)
	inc.cell[key] = append(inc.cell[key], id)

	// Bump every neighbour; a neighbour crossing the density threshold is
	// promoted to core and owes union edges for its whole neighbourhood.
	var promoted []int32
	for _, q := range nbrs {
		qp := &inc.pts[q]
		qp.nbr++
		if !qp.core && qp.nbr >= int32(inc.p.MinPoints) {
			qp.core = true
			promoted = append(promoted, q)
		}
	}

	// When dirty, connectivity is rebuilt wholesale at the next
	// extraction; spending unions here would be wasted work.
	if inc.dirty {
		return true
	}
	if inc.pts[id].core {
		for _, q := range nbrs {
			if inc.pts[q].core {
				inc.union(id, q)
			}
		}
	}
	for _, q := range promoted {
		qn := inc.within(inc.pts[q].pos, nil)
		for _, j := range qn {
			if j != q && inc.pts[j].core {
				inc.union(q, j)
			}
		}
	}
	return true
}

// ExpireBefore removes the longest window prefix strictly older than
// cutoff and returns how many points were dropped. Neighbour counts and
// coreness are maintained eagerly; if any core point expired or was
// demoted, connectivity is marked dirty and rebuilt lazily at the next
// extraction.
func (inc *Incremental) ExpireBefore(cutoff time.Time) int {
	c := cutoff.UnixNano()
	removed := 0
	for inc.head < len(inc.pts) && inc.pts[inc.head].t < c {
		id := int32(inc.head)
		p := &inc.pts[inc.head]
		inc.removeFromCell(id, p.pos)
		if p.core {
			inc.dirty = true
		}
		inc.buf = inc.within(p.pos, inc.buf[:0])
		for _, q := range inc.buf {
			qp := &inc.pts[q]
			qp.nbr--
			if qp.core && qp.nbr < int32(inc.p.MinPoints) {
				qp.core = false
				inc.dirty = true
			}
		}
		inc.head++
		removed++
	}
	inc.maybeCompact()
	return removed
}

// compactMinDead bounds how often compaction runs: the dead prefix must
// be at least this long and at least half the backing array.
const compactMinDead = 4096

func (inc *Incremental) maybeCompact() {
	if inc.head < compactMinDead || inc.head*2 < len(inc.pts) {
		return
	}
	alive := len(inc.pts) - inc.head
	pts := make([]winPoint, alive)
	copy(pts, inc.pts[inc.head:])
	uf := make([]int32, alive)
	if inc.dirty {
		for i := range uf {
			uf[i] = int32(i)
		}
	} else {
		// Union edges only ever join core points, so every parent chain
		// visits core ids only; with no core expired since the last
		// rebuild (!dirty), all of those are alive and the forest remaps
		// by a plain shift.
		for i := range uf {
			uf[i] = inc.uf[inc.head+i] - int32(inc.head)
		}
	}
	cell := make(map[uint64][]int32, len(inc.cell))
	for i := range pts {
		key := inc.cellKey(pts[i].pos)
		cell[key] = append(cell[key], int32(i))
	}
	inc.pts, inc.uf, inc.cell, inc.head = pts, uf, cell, 0
}

// Points appends the alive window points, in insertion order, and returns
// the extended slice.
func (inc *Incremental) Points(dst []geo.Point) []geo.Point {
	for i := inc.head; i < len(inc.pts); i++ {
		dst = append(dst, inc.pts[i].pos)
	}
	return dst
}

// OldestTime returns the timestamp of the oldest alive point; ok is false
// when the window is empty.
func (inc *Incremental) OldestTime() (time.Time, bool) {
	if inc.Len() == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, inc.pts[inc.head].t), true
}

// Result extracts the current clustering of the alive window: labels are
// indexed by alive insertion order and are identical to what batch DBSCAN
// returns over Points() — components numbered by ascending first core
// index, borders claimed by their lowest-numbered adjacent cluster.
func (inc *Incremental) Result() Result {
	inc.rebuild()
	n := inc.Len()
	labels := make([]int, n)
	rootLabel := make(map[int32]int, 8)
	next := 0
	for i := inc.head; i < len(inc.pts); i++ {
		if !inc.pts[i].core {
			continue
		}
		// Roots are component minima, so scanning ascending ids numbers
		// components in first-core order, as the sequential scan does.
		r := inc.find(int32(i))
		l, ok := rootLabel[r]
		if !ok {
			l = next
			rootLabel[r] = l
			next++
		}
		labels[i-inc.head] = l
	}
	for i := inc.head; i < len(inc.pts); i++ {
		if inc.pts[i].core {
			continue
		}
		inc.buf = inc.within(inc.pts[i].pos, inc.buf[:0])
		best := -1
		for _, j := range inc.buf {
			if !inc.pts[j].core {
				continue
			}
			if l := rootLabel[inc.find(j)]; best < 0 || l < best {
				best = l
			}
		}
		if best < 0 {
			best = Noise
		}
		labels[i-inc.head] = best
	}
	return Result{Labels: labels, NumClusters: next}
}

// rebuild reconstructs union-find connectivity from the alive core points
// after expiry invalidated it: one neighbourhood query per core point,
// each undirected core edge unioned once from its lower endpoint.
func (inc *Incremental) rebuild() {
	if !inc.dirty {
		return
	}
	for i := range inc.uf {
		inc.uf[i] = int32(i)
	}
	for i := inc.head; i < len(inc.pts); i++ {
		if !inc.pts[i].core {
			continue
		}
		inc.buf = inc.within(inc.pts[i].pos, inc.buf[:0])
		for _, j := range inc.buf {
			if j > int32(i) && inc.pts[j].core {
				inc.union(int32(i), j)
			}
		}
	}
	inc.dirty = false
}

// find is the PR 1 union-find lookup (path halving, min roots) in its
// single-writer form — the tracker above this type already serializes
// access, so the CAS loop would buy nothing.
func (inc *Incremental) find(x int32) int32 {
	for inc.uf[x] != x {
		inc.uf[x] = inc.uf[inc.uf[x]]
		x = inc.uf[x]
	}
	return x
}

// union attaches the larger root beneath the smaller, keeping each
// component's root its minimum member — the property Result() relies on
// for deterministic cluster numbering.
func (inc *Incremental) union(a, b int32) {
	ra, rb := inc.find(a), inc.find(b)
	if ra == rb {
		return
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	inc.uf[rb] = ra
}

// within appends the alive point ids within EpsMeters of center
// (inclusive) — the same RectAround cell scan and Equirect predicate as
// spatial.Grid.Within, over the dynamic cell map.
func (inc *Incremental) within(center geo.Point, dst []int32) []int32 {
	rect := geo.RectAround(center, inc.p.EpsMeters)
	loX, loY := inc.cellCoords(geo.Point{Lat: rect.MinLat, Lon: rect.MinLon})
	hiX, hiY := inc.cellCoords(geo.Point{Lat: rect.MaxLat, Lon: rect.MaxLon})
	for cx := loX; cx <= hiX; cx++ {
		for cy := loY; cy <= hiY; cy++ {
			key := uint64(uint32(cx))<<32 | uint64(uint32(cy))
			for _, id := range inc.cell[key] {
				if geo.Equirect(center, inc.pts[id].pos) <= inc.p.EpsMeters {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

func (inc *Incremental) cellCoords(p geo.Point) (int32, int32) {
	cy := int32(math.Floor((p.Lat - inc.origin.Lat) / inc.cellDeg))
	cx := int32(math.Floor((p.Lon - inc.origin.Lon) / inc.cellDegX))
	return cx, cy
}

func (inc *Incremental) cellKey(p geo.Point) uint64 {
	cx, cy := inc.cellCoords(p)
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// removeFromCell swap-deletes id from its cell's bucket. Bucket order is
// irrelevant: neighbourhoods are only counted, unioned (order-free by the
// min-root invariant) and min-reduced.
func (inc *Incremental) removeFromCell(id int32, pos geo.Point) {
	key := inc.cellKey(pos)
	ids := inc.cell[key]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(inc.cell, key)
	} else {
		inc.cell[key] = ids
	}
}
