// Package cluster implements the density-based clustering used for queue
// spot detection (§4.3): DBSCAN (Ester et al., KDD 1996) over GPS points,
// with a naive O(n²) neighbour search and an index-accelerated variant, plus
// the parameter-sweep helper behind Fig. 6.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/spatial"
)

// Noise is the cluster label DBSCAN assigns to points that belong to no
// cluster.
const Noise = -1

// Result is the outcome of a DBSCAN run.
type Result struct {
	// Labels[i] is the cluster number of input point i (0-based), or Noise.
	Labels []int
	// NumClusters is the number of clusters found.
	NumClusters int
}

// Centroids returns one centroid per cluster, indexed by cluster number.
func (r Result) Centroids(pts []geo.Point) []geo.Point {
	if r.NumClusters == 0 {
		return nil
	}
	sums := make([]geo.Point, r.NumClusters)
	counts := make([]int, r.NumClusters)
	for i, lbl := range r.Labels {
		if lbl == Noise {
			continue
		}
		sums[lbl].Lat += pts[i].Lat
		sums[lbl].Lon += pts[i].Lon
		counts[lbl]++
	}
	out := make([]geo.Point, r.NumClusters)
	for c := range out {
		if counts[c] > 0 {
			out[c] = geo.Point{Lat: sums[c].Lat / float64(counts[c]), Lon: sums[c].Lon / float64(counts[c])}
		}
	}
	return out
}

// ClusterSizes returns the member count of each cluster.
func (r Result) ClusterSizes() []int {
	sizes := make([]int, r.NumClusters)
	for _, lbl := range r.Labels {
		if lbl != Noise {
			sizes[lbl]++
		}
	}
	return sizes
}

// NoiseCount returns the number of noise points.
func (r Result) NoiseCount() int {
	n := 0
	for _, lbl := range r.Labels {
		if lbl == Noise {
			n++
		}
	}
	return n
}

// Params are the two DBSCAN parameters discussed in §6.1.2: eps (meters)
// and min-points.
type Params struct {
	EpsMeters float64 // neighbourhood radius ε_d
	MinPoints int     // density threshold p_d (neighbourhood includes the point itself)
}

// Validate returns an error when the parameters are unusable.
func (p Params) Validate() error {
	if p.EpsMeters <= 0 {
		return fmt.Errorf("cluster: eps must be positive, got %g", p.EpsMeters)
	}
	if p.MinPoints < 1 {
		return fmt.Errorf("cluster: min-points must be >= 1, got %d", p.MinPoints)
	}
	return nil
}

// DBSCAN clusters pts with an index-accelerated neighbour search (grid index
// with eps-sized cells). This is the production entry point.
func DBSCAN(pts []geo.Point, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	return run(pts, p, spatial.NewGrid(pts, p.EpsMeters)), nil
}

// DBSCANWithIndex clusters pts using the supplied neighbour index. The index
// must have been built over exactly pts. Used by the ablation benches to
// compare grid, R-tree and brute-force neighbour search.
func DBSCANWithIndex(pts []geo.Point, p Params, idx spatial.Index) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if idx.Len() != len(pts) {
		return Result{}, errIndexMismatch(idx.Len(), len(pts))
	}
	return run(pts, p, idx), nil
}

func errIndexMismatch(indexed, input int) error {
	return fmt.Errorf("cluster: index holds %d points, input has %d", indexed, input)
}

// DBSCANNaive is the textbook O(n²) variant, kept as the correctness
// reference and benchmark baseline.
func DBSCANNaive(pts []geo.Point, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	return run(pts, p, spatial.NewLinear(pts)), nil
}

const unvisited = -2

// sweepScratch is the per-worker reusable state of the DBSCAN control
// loop: the label array and the two grow-only work queues. One scratch
// serves an arbitrary sequence of runs over point sets of any size, so a
// parameter sweep allocates the loop state once per worker instead of once
// per (eps, minPts) cell.
type sweepScratch struct {
	labels     []int
	neighbours []int
	seeds      []int
}

// run is the classic DBSCAN control loop with an explicit seed queue.
// Cluster numbers are assigned in order of the first core point scanned,
// which makes results deterministic for a fixed input order.
func run(pts []geo.Point, p Params, idx spatial.Index) Result {
	return runScratch(pts, p, idx, new(sweepScratch))
}

// runScratch is run with caller-owned scratch. The returned Result aliases
// sc.labels: callers that reuse sc (the sweep) must summarize the Result
// before the next call; run hands each caller a fresh scratch, so the
// public entry points keep their owned-slice contract.
func runScratch(pts []geo.Point, p Params, idx spatial.Index, sc *sweepScratch) Result {
	if cap(sc.labels) < len(pts) {
		sc.labels = make([]int, len(pts))
	}
	labels := sc.labels[:len(pts)]
	for i := range labels {
		labels[i] = unvisited
	}
	next := 0
	neighbours, seedBuf := sc.neighbours, sc.seeds
	for i := range pts {
		if labels[i] != unvisited {
			continue
		}
		neighbours = idx.Within(pts[i], p.EpsMeters, neighbours[:0])
		if len(neighbours) < p.MinPoints {
			labels[i] = Noise
			continue
		}
		c := next
		next++
		labels[i] = c
		seeds := append(seedBuf[:0], neighbours...)
		for len(seeds) > 0 {
			j := seeds[len(seeds)-1]
			seeds = seeds[:len(seeds)-1]
			switch labels[j] {
			case Noise:
				labels[j] = c // border point
				continue
			case unvisited:
				labels[j] = c
			default:
				continue // already claimed by this or another cluster
			}
			neighbours = idx.Within(pts[j], p.EpsMeters, neighbours[:0])
			if len(neighbours) >= p.MinPoints {
				for _, k := range neighbours {
					if labels[k] == unvisited || labels[k] == Noise {
						seeds = append(seeds, k)
					}
				}
			}
		}
		seedBuf = seeds
	}
	sc.neighbours, sc.seeds = neighbours, seedBuf
	return Result{Labels: labels, NumClusters: next}
}

// SweepCell is one (eps, minPts) entry of a parameter sweep.
type SweepCell struct {
	Params      Params
	NumClusters int
	NoisePoints int
}

// Sweep runs DBSCAN for the cross product of eps and minPts values and
// returns one cell per pair, in row-major (eps-major) order. This is the
// computation behind Fig. 6. The grid index depends only on eps, so one
// index per eps value is built and reused across the whole minPts axis.
func Sweep(pts []geo.Point, epsMeters []float64, minPts []int) ([]SweepCell, error) {
	return SweepParallel(pts, epsMeters, minPts, 1)
}

// SweepParallel is Sweep with the (eps, minPts) cells fanned out over a
// worker pool. Cell order and contents are identical to Sweep for any
// worker count; workers <= 0 uses GOMAXPROCS.
func SweepParallel(pts []geo.Point, epsMeters []float64, minPts []int, workers int) ([]SweepCell, error) {
	for _, eps := range epsMeters {
		for _, mp := range minPts {
			if err := (Params{EpsMeters: eps, MinPoints: mp}).Validate(); err != nil {
				return nil, err
			}
		}
	}
	workers = capWorkers(workers)
	out := make([]SweepCell, len(epsMeters)*len(minPts))
	// Each cell summarizes its run before the scratch is reused, so one
	// label array and one pair of work queues serve a whole worker's share
	// of the sweep — the per-cell make([]int, len(pts)) churn this loop
	// used to pay is gone.
	cell := func(row, col int, idx spatial.Index, sc *sweepScratch) {
		p := Params{EpsMeters: epsMeters[row], MinPoints: minPts[col]}
		res := runScratch(pts, p, idx, sc)
		out[row*len(minPts)+col] = SweepCell{Params: p, NumClusters: res.NumClusters, NoisePoints: res.NoiseCount()}
	}
	if workers == 1 || len(out) < 2 {
		// One grid rebuilt in place per eps row, one scratch for the whole
		// sweep.
		var sc sweepScratch
		idx := new(spatial.Grid)
		for row := range epsMeters {
			idx.Reset(pts, epsMeters[row])
			for col := range minPts {
				cell(row, col, idx, &sc)
			}
		}
		return out, nil
	}
	// Stage 1: one index per eps value, built concurrently. Stage 2: fan the
	// full cell grid over the pool; the indexes are read-only by then, and
	// every cell lands at a fixed output position, so results are
	// deterministic for any worker count.
	grids := make([]spatial.Index, len(epsMeters))
	scratch := make([]sweepScratch, workers)
	fanOut := func(n int, task func(worker, i int)) {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < min(workers, n); w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= n {
						return
					}
					task(w, i)
				}
			}(w)
		}
		wg.Wait()
	}
	fanOut(len(epsMeters), func(_, row int) { grids[row] = spatial.NewGrid(pts, epsMeters[row]) })
	fanOut(len(out), func(w, i int) { cell(i/len(minPts), i%len(minPts), grids[i/len(minPts)], &scratch[w]) })
	return out, nil
}
