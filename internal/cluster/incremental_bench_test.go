package cluster

import (
	"math/rand"
	"testing"
	"time"

	"taxiqueue/internal/geo"
)

// benchPool fabricates a pickup-like point stream: a few persistent dense
// ranks plus street-hail scatter, the mix the live window sees.
func benchPool(n int) []geo.Point {
	rng := rand.New(rand.NewSource(99))
	centers := make([]geo.Point, 12)
	base := geo.Point{Lat: 1.30, Lon: 103.80}
	for i := range centers {
		centers[i] = geo.Offset(base, float64(i/4)*900, float64(i%4)*900)
	}
	pts := make([]geo.Point, n)
	for i := range pts {
		if rng.Intn(3) == 0 {
			pts[i] = uniformNoise(rng, 1)[0]
		} else {
			pts[i] = blob(rng, centers[rng.Intn(len(centers))], 1, 8)[0]
		}
	}
	return pts
}

// BenchmarkIncrementalInsert measures the steady-state insert+expire hot
// path: a ~3 h window at one pickup per two seconds (~5.4k alive points),
// every insert paying its neighbourhood query, count bumps and unions.
func BenchmarkIncrementalInsert(b *testing.B) {
	pool := benchPool(1 << 15)
	inc, err := NewIncremental(Params{EpsMeters: 15, MinPoints: 10})
	if err != nil {
		b.Fatal(err)
	}
	window := 3 * time.Hour
	clock := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	// Pre-fill to steady state so b.N measures the sliding regime, not
	// the warm-up ramp.
	for i := 0; i < int(window/(2*time.Second))+1; i++ {
		clock = clock.Add(2 * time.Second)
		inc.Insert(pool[i%len(pool)], clock)
		inc.ExpireBefore(clock.Add(-window))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock = clock.Add(2 * time.Second)
		inc.Insert(pool[i%len(pool)], clock)
		inc.ExpireBefore(clock.Add(-window))
	}
}

// BenchmarkIncrementalExtract measures one full window extraction
// (rebuild forced every round via an expiry) — the cost each live
// snapshot refresh pays.
func BenchmarkIncrementalExtract(b *testing.B) {
	pool := benchPool(1 << 13)
	inc, err := NewIncremental(Params{EpsMeters: 15, MinPoints: 10})
	if err != nil {
		b.Fatal(err)
	}
	clock := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	for i, p := range pool {
		inc.Insert(p, clock.Add(time.Duration(i)*time.Second))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.dirty = true // force the connectivity rebuild each extraction
		if res := inc.Result(); res.NumClusters == 0 {
			b.Fatal("fixture produced no clusters")
		}
	}
}
