package cluster

import (
	"math/rand"
	"testing"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/spatial"
)

// blob generates n points normally distributed (sigma meters) around c.
func blob(rng *rand.Rand, c geo.Point, n int, sigma float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Offset(c, rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return pts
}

func uniformNoise(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{Lat: 1.22 + rng.Float64()*0.25, Lon: 103.6 + rng.Float64()*0.42}
	}
	return pts
}

func TestDBSCANFindsSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c1 := geo.Point{Lat: 1.30, Lon: 103.80}
	c2 := geo.Offset(c1, 5000, 0)
	c3 := geo.Offset(c1, 0, 5000)
	var pts []geo.Point
	pts = append(pts, blob(rng, c1, 100, 5)...)
	pts = append(pts, blob(rng, c2, 100, 5)...)
	pts = append(pts, blob(rng, c3, 100, 5)...)
	res, err := DBSCAN(pts, Params{EpsMeters: 15, MinPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 3 {
		t.Fatalf("found %d clusters, want 3", res.NumClusters)
	}
	// Centroids must each land within a few meters of a blob center.
	cents := res.Centroids(pts)
	for _, want := range []geo.Point{c1, c2, c3} {
		best := 1e18
		for _, c := range cents {
			if d := geo.Haversine(c, want); d < best {
				best = d
			}
		}
		if best > 10 {
			t.Errorf("no centroid within 10 m of %v (best %.1f m)", want, best)
		}
	}
}

func TestDBSCANNoiseOnlyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := uniformNoise(rng, 300) // island-wide scatter: far below density
	res, err := DBSCAN(pts, Params{EpsMeters: 15, MinPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Fatalf("found %d clusters in pure noise, want 0", res.NumClusters)
	}
	if res.NoiseCount() != len(pts) {
		t.Fatalf("noise count %d, want %d", res.NoiseCount(), len(pts))
	}
}

func TestDBSCANBlobsPlusNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c1 := geo.Point{Lat: 1.28, Lon: 103.85}
	var pts []geo.Point
	pts = append(pts, blob(rng, c1, 80, 5)...)
	pts = append(pts, uniformNoise(rng, 200)...)
	res, err := DBSCAN(pts, Params{EpsMeters: 15, MinPoints: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("found %d clusters, want 1", res.NumClusters)
	}
	sizes := res.ClusterSizes()
	if sizes[0] < 75 {
		t.Fatalf("cluster size %d, want >= 75 of the 80 blob points", sizes[0])
	}
}

func TestDBSCANMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pts []geo.Point
	for i := 0; i < 8; i++ {
		c := geo.Point{Lat: 1.23 + rng.Float64()*0.2, Lon: 103.65 + rng.Float64()*0.3}
		pts = append(pts, blob(rng, c, 30+rng.Intn(40), 8)...)
	}
	pts = append(pts, uniformNoise(rng, 150)...)
	p := Params{EpsMeters: 20, MinPoints: 12}

	fast, err := DBSCAN(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := DBSCANNaive(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	rtree, err := DBSCANWithIndex(pts, p, spatial.NewRTree(pts, 0))
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]Result{"naive": naive, "rtree": rtree} {
		if !equivalentLabelings(fast.Labels, other.Labels) {
			t.Errorf("grid DBSCAN and %s disagree", name)
		}
	}
}

// equivalentLabelings reports whether two labelings agree up to cluster
// renumbering. Border points adjacent to two clusters may legally differ
// between visit orders, but our implementations share visit order, so we
// require an exact bijection.
func equivalentLabelings(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if (a[i] == Noise) != (b[i] == Noise) {
			return false
		}
		if a[i] == Noise {
			continue
		}
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := rev[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

func TestDBSCANCorePointProperty(t *testing.T) {
	// Every non-noise cluster must contain at least one core point, and
	// every core point's eps-neighbourhood size must be >= MinPoints.
	rng := rand.New(rand.NewSource(5))
	var pts []geo.Point
	pts = append(pts, blob(rng, geo.Point{Lat: 1.3, Lon: 103.8}, 60, 6)...)
	pts = append(pts, uniformNoise(rng, 100)...)
	p := Params{EpsMeters: 18, MinPoints: 10}
	res, err := DBSCAN(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	idx := spatial.NewLinear(pts)
	coreInCluster := make([]bool, res.NumClusters)
	for i := range pts {
		n := len(idx.Within(pts[i], p.EpsMeters, nil))
		if n >= p.MinPoints {
			if res.Labels[i] == Noise {
				t.Fatalf("core point %d labeled noise", i)
			}
			coreInCluster[res.Labels[i]] = true
		}
	}
	for c, ok := range coreInCluster {
		if !ok {
			t.Errorf("cluster %d has no core point", c)
		}
	}
}

func TestDBSCANParamValidation(t *testing.T) {
	if _, err := DBSCAN(nil, Params{EpsMeters: 0, MinPoints: 5}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := DBSCAN(nil, Params{EpsMeters: 15, MinPoints: 0}); err == nil {
		t.Error("minPts=0 accepted")
	}
	if _, err := DBSCANWithIndex(make([]geo.Point, 3), Params{EpsMeters: 15, MinPoints: 2}, spatial.NewLinear(nil)); err == nil {
		t.Error("index/point length mismatch accepted")
	}
}

func TestDBSCANEmptyAndTinyInputs(t *testing.T) {
	res, err := DBSCAN(nil, Params{EpsMeters: 15, MinPoints: 5})
	if err != nil || res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Fatalf("empty input: %v %+v", err, res)
	}
	one := []geo.Point{{Lat: 1.3, Lon: 103.8}}
	res, err = DBSCAN(one, Params{EpsMeters: 15, MinPoints: 1})
	if err != nil || res.NumClusters != 1 {
		t.Fatalf("single point with minPts=1 should form a cluster: %+v", res)
	}
	res, err = DBSCAN(one, Params{EpsMeters: 15, MinPoints: 2})
	if err != nil || res.NumClusters != 0 || res.Labels[0] != Noise {
		t.Fatalf("single point with minPts=2 should be noise: %+v", res)
	}
}

func TestDBSCANDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := append(blob(rng, geo.Point{Lat: 1.3, Lon: 103.8}, 120, 10), uniformNoise(rng, 120)...)
	p := Params{EpsMeters: 20, MinPoints: 15}
	a, _ := DBSCAN(pts, p)
	b, _ := DBSCAN(pts, p)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("DBSCAN is not deterministic for identical input")
		}
	}
}

func TestSweepMonotonicity(t *testing.T) {
	// Fig. 6 behaviour: small eps or large minPts find few spots. For a
	// fixed eps, raising minPts can never raise the cluster count above
	// what a single merged run can split... strict monotonicity does not
	// hold for cluster *count* in general, but noise count is monotone
	// non-decreasing in minPts for fixed eps.
	rng := rand.New(rand.NewSource(7))
	var pts []geo.Point
	for i := 0; i < 12; i++ {
		c := geo.Point{Lat: 1.24 + rng.Float64()*0.2, Lon: 103.65 + rng.Float64()*0.3}
		pts = append(pts, blob(rng, c, 40+rng.Intn(80), 7)...)
	}
	pts = append(pts, uniformNoise(rng, 400)...)
	cells, err := Sweep(pts, []float64{5, 10, 15, 20}, []int{25, 50, 100, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 16 {
		t.Fatalf("sweep returned %d cells, want 16", len(cells))
	}
	// Row-major order: cells[i*4+j] is eps[i], minPts[j].
	for i := 0; i < 4; i++ {
		for j := 1; j < 4; j++ {
			prev, cur := cells[i*4+j-1], cells[i*4+j]
			if cur.NoisePoints < prev.NoisePoints {
				t.Errorf("eps=%.0f: noise decreased when minPts rose %d->%d",
					cur.Params.EpsMeters, prev.Params.MinPoints, cur.Params.MinPoints)
			}
		}
	}
}

func TestCentroidsAndSizesEmptyResult(t *testing.T) {
	var r Result
	if r.Centroids(nil) != nil {
		t.Error("Centroids of empty result non-nil")
	}
	if len(r.ClusterSizes()) != 0 {
		t.Error("ClusterSizes of empty result non-empty")
	}
}

func BenchmarkDBSCANGrid5k(b *testing.B)  { benchDBSCAN(b, "grid") }
func BenchmarkDBSCANNaive5k(b *testing.B) { benchDBSCAN(b, "naive") }
func BenchmarkDBSCANRTree5k(b *testing.B) { benchDBSCAN(b, "rtree") }

func benchDBSCAN(b *testing.B, kind string) {
	rng := rand.New(rand.NewSource(8))
	var pts []geo.Point
	for i := 0; i < 25; i++ {
		c := geo.Point{Lat: 1.23 + rng.Float64()*0.22, Lon: 103.62 + rng.Float64()*0.36}
		pts = append(pts, blob(rng, c, 150, 8)...)
	}
	pts = append(pts, uniformNoise(rng, 1250)...)
	p := Params{EpsMeters: 15, MinPoints: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		switch kind {
		case "grid":
			_, err = DBSCAN(pts, p)
		case "naive":
			_, err = DBSCANNaive(pts, p)
		case "rtree":
			_, err = DBSCANWithIndex(pts, p, spatial.NewRTree(pts, 0))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
