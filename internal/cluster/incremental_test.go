package cluster

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"taxiqueue/internal/geo"
)

// incInsertAll feeds pts into inc one second apart starting at t0.
func incInsertAll(t *testing.T, inc *Incremental, pts []geo.Point, t0 time.Time) {
	t.Helper()
	for i, p := range pts {
		if !inc.Insert(p, t0.Add(time.Duration(i)*time.Second)) {
			t.Fatalf("insert %d rejected", i)
		}
	}
}

// requireBatchEqual asserts inc's extraction is identical — labels and
// cluster count — to batch DBSCAN over the same alive points in the same
// order. This is the incremental/batch equivalence contract.
func requireBatchEqual(t *testing.T, inc *Incremental) Result {
	t.Helper()
	pts := inc.Points(nil)
	if len(pts) != inc.Len() {
		t.Fatalf("Points returned %d, Len says %d", len(pts), inc.Len())
	}
	got := inc.Result()
	want, err := DBSCAN(pts, inc.p)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != want.NumClusters {
		t.Fatalf("incremental found %d clusters, batch %d", got.NumClusters, want.NumClusters)
	}
	if len(got.Labels) != len(want.Labels) {
		t.Fatalf("incremental has %d labels, batch %d", len(got.Labels), len(want.Labels))
	}
	for i := range got.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label[%d] = %d, batch says %d", i, got.Labels[i], want.Labels[i])
		}
	}
	return got
}

func TestIncrementalMatchesBatchInsertOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c1 := geo.Point{Lat: 1.30, Lon: 103.80}
	var pts []geo.Point
	pts = append(pts, blob(rng, c1, 120, 6)...)
	pts = append(pts, blob(rng, geo.Offset(c1, 400, 120), 90, 6)...)
	pts = append(pts, uniformNoise(rng, 150)...)
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })

	inc, err := NewIncremental(Params{EpsMeters: 15, MinPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	incInsertAll(t, inc, pts, t0)
	res := requireBatchEqual(t, inc)
	if res.NumClusters < 2 {
		t.Fatalf("degenerate fixture: only %d clusters", res.NumClusters)
	}
}

// TestIncrementalMatchesBatchUnderChurn is the core property test: a
// sliding window over a random day of points, expired and extracted at
// random checkpoints, must match batch DBSCAN over the alive set at every
// checkpoint — including checkpoints right after expiry (dirty rebuild)
// and interleaved inserts.
func TestIncrementalMatchesBatchUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	centers := []geo.Point{
		{Lat: 1.30, Lon: 103.80},
		geo.Offset(geo.Point{Lat: 1.30, Lon: 103.80}, 300, 0),
		geo.Offset(geo.Point{Lat: 1.30, Lon: 103.80}, 0, 250),
	}
	inc, err := NewIncremental(Params{EpsMeters: 15, MinPoints: 8})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	window := 40 * time.Minute
	clock := t0
	for step := 0; step < 1500; step++ {
		clock = clock.Add(time.Duration(rng.Intn(5)) * time.Second)
		var p geo.Point
		if rng.Intn(4) == 0 {
			p = uniformNoise(rng, 1)[0]
		} else {
			p = blob(rng, centers[rng.Intn(len(centers))], 1, 8)[0]
		}
		if !inc.Insert(p, clock) {
			t.Fatalf("insert rejected at step %d", step)
		}
		inc.ExpireBefore(clock.Add(-window))
		if step%97 == 0 {
			requireBatchEqual(t, inc)
		}
	}
	requireBatchEqual(t, inc)
	if inc.Len() == 0 {
		t.Fatal("window drained unexpectedly")
	}
}

// TestIncrementalExpireSplitsCluster builds a dumbbell — two dense blobs
// joined by an older bridge of core points — and expires just the bridge:
// one cluster must split into two, matching batch over the survivors.
func TestIncrementalExpireSplitsCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	left := geo.Point{Lat: 1.30, Lon: 103.80}
	right := geo.Offset(left, 0, 120)
	inc, err := NewIncremental(Params{EpsMeters: 15, MinPoints: 6})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)

	// The bridge goes in first (oldest): clumps of 6 every 10 m so every
	// bridge point is core.
	var bridge []geo.Point
	for d := 10.0; d < 120; d += 10 {
		bridge = append(bridge, blob(rng, geo.Offset(left, 0, d), 6, 1)...)
	}
	incInsertAll(t, inc, bridge, t0)
	newer := append(blob(rng, left, 40, 4), blob(rng, right, 40, 4)...)
	for i, p := range newer {
		if !inc.Insert(p, t0.Add(time.Hour).Add(time.Duration(i)*time.Second)) {
			t.Fatalf("insert %d rejected", i)
		}
	}
	if res := requireBatchEqual(t, inc); res.NumClusters != 1 {
		t.Fatalf("dumbbell clustered into %d, want 1", res.NumClusters)
	}

	if n := inc.ExpireBefore(t0.Add(30 * time.Minute)); n != len(bridge) {
		t.Fatalf("expired %d points, want the %d bridge points", n, len(bridge))
	}
	if res := requireBatchEqual(t, inc); res.NumClusters != 2 {
		t.Fatalf("after the bridge expired: %d clusters, want 2", res.NumClusters)
	}
}

// TestIncrementalMergeAcrossCells verifies a cell-cluster merge is a
// find/union, not a re-cluster: two blobs far enough apart to occupy
// different grid cells (and different clusters) fuse into one when bridge
// points land between them — with no expiry in between, so the structure
// is never dirty and the merge must happen on the insert path itself.
func TestIncrementalMergeAcrossCells(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	left := geo.Point{Lat: 1.30, Lon: 103.80}
	right := geo.Offset(left, 0, 60) // 4 eps-cells away: distinct cell columns
	inc, err := NewIncremental(Params{EpsMeters: 15, MinPoints: 6})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)
	incInsertAll(t, inc, append(blob(rng, left, 30, 3), blob(rng, right, 30, 3)...), t0)
	if res := requireBatchEqual(t, inc); res.NumClusters != 2 {
		t.Fatalf("separated blobs clustered into %d, want 2", res.NumClusters)
	}

	var bridge []geo.Point
	for d := 10.0; d < 60; d += 10 {
		bridge = append(bridge, blob(rng, geo.Offset(left, 0, d), 6, 1)...)
	}
	for i, p := range bridge {
		if !inc.Insert(p, t0.Add(time.Minute).Add(time.Duration(i)*time.Second)) {
			t.Fatalf("bridge insert %d rejected", i)
		}
	}
	if res := requireBatchEqual(t, inc); res.NumClusters != 1 {
		t.Fatalf("bridged blobs clustered into %d, want 1", res.NumClusters)
	}
}

// TestIncrementalWindowEmpties drains the window completely and checks
// the structure stays usable: empty extraction, then a fresh blob
// clusters again.
func TestIncrementalWindowEmpties(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c := geo.Point{Lat: 1.28, Lon: 103.85}
	inc, err := NewIncremental(Params{EpsMeters: 15, MinPoints: 8})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)
	incInsertAll(t, inc, blob(rng, c, 50, 4), t0)
	if res := requireBatchEqual(t, inc); res.NumClusters != 1 {
		t.Fatalf("blob clustered into %d, want 1", res.NumClusters)
	}

	if n := inc.ExpireBefore(t0.Add(time.Hour)); n != 50 {
		t.Fatalf("expired %d, want 50", n)
	}
	if inc.Len() != 0 {
		t.Fatalf("window still holds %d points", inc.Len())
	}
	if res := inc.Result(); res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Fatalf("empty window extracted %d clusters / %d labels", res.NumClusters, len(res.Labels))
	}
	if _, ok := inc.OldestTime(); ok {
		t.Fatal("OldestTime reported ok on an empty window")
	}

	incInsertAll(t, inc, blob(rng, c, 40, 4), t0.Add(2*time.Hour))
	if res := requireBatchEqual(t, inc); res.NumClusters != 1 {
		t.Fatalf("post-drain blob clustered into %d, want 1", res.NumClusters)
	}
}

// TestIncrementalCompaction pushes enough churn through the window to
// trigger the dead-prefix compaction (both the dirty and clean remap
// paths) and checks equivalence survives it.
func TestIncrementalCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	c := geo.Point{Lat: 1.30, Lon: 103.80}
	inc, err := NewIncremental(Params{EpsMeters: 15, MinPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	clock := t0
	// Island-wide scatter keeps neighbourhoods tiny so 3× compactMinDead
	// inserts stay fast; sprinkle one dense blob so clusters exist.
	for i := 0; i < 3*compactMinDead; i++ {
		clock = clock.Add(200 * time.Millisecond)
		var p geo.Point
		if i%8 == 0 {
			p = blob(rng, c, 1, 5)[0]
		} else {
			p = uniformNoise(rng, 1)[0]
		}
		inc.Insert(p, clock)
		inc.ExpireBefore(clock.Add(-8 * time.Minute))
	}
	if len(inc.pts) > 2*inc.Len()+compactMinDead {
		t.Fatalf("compaction never ran: %d backing entries for %d alive", len(inc.pts), inc.Len())
	}
	requireBatchEqual(t, inc)
}

func TestIncrementalRejectsDegenerateInput(t *testing.T) {
	inc, err := NewIncremental(Params{EpsMeters: 15, MinPoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	bad := []geo.Point{
		{Lat: math.NaN(), Lon: 103.8},
		{Lat: 1.3, Lon: math.NaN()},
		{Lat: math.Inf(1), Lon: 103.8},
		{Lat: 1.3, Lon: math.Inf(-1)},
	}
	for _, p := range bad {
		if inc.Insert(p, t0) {
			t.Fatalf("non-finite point %v accepted", p)
		}
	}
	if inc.Len() != 0 {
		t.Fatalf("window holds %d points after rejects", inc.Len())
	}
	if _, err := NewIncremental(Params{EpsMeters: 0, MinPoints: 2}); err == nil {
		t.Fatal("zero eps accepted")
	}
	if _, err := NewIncremental(Params{EpsMeters: 15, MinPoints: 0}); err == nil {
		t.Fatal("zero min-points accepted")
	}
}
