package cluster

import (
	"math/rand"
	"testing"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/spatial"
)

var testWorkerCounts = []int{1, 2, 3, 4, 8, 16}

// assertLabelsEqual requires byte-identical labelings, not merely a cluster
// bijection: DBSCANParallel promises the exact sequential output.
func assertLabelsEqual(t *testing.T, name string, want, got Result) {
	t.Helper()
	if got.NumClusters != want.NumClusters {
		t.Fatalf("%s: %d clusters, want %d", name, got.NumClusters, want.NumClusters)
	}
	if len(got.Labels) != len(want.Labels) {
		t.Fatalf("%s: %d labels, want %d", name, len(got.Labels), len(want.Labels))
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", name, i, got.Labels[i], want.Labels[i])
		}
	}
}

// checkAllVariants runs the sequential reference, the naive O(n²) reference
// and the parallel variant at every worker count, demanding identical labels
// throughout. The parallel machinery is exercised directly (runParallel) so
// the small-input fallback in DBSCANParallel cannot mask a merge bug.
func checkAllVariants(t *testing.T, name string, pts []geo.Point, p Params) {
	t.Helper()
	want, err := DBSCAN(pts, p)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	naive, err := DBSCANNaive(pts, p)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	assertLabelsEqual(t, name+"/naive", want, naive)
	for _, workers := range testWorkerCounts {
		res, err := DBSCANParallel(pts, p, workers)
		if err != nil {
			t.Fatalf("%s/workers=%d: %v", name, workers, err)
		}
		assertLabelsEqual(t, name+"/parallel", want, res)
		if workers > 1 {
			direct := runParallel(pts, p, spatial.NewGrid(pts, p.EpsMeters), workers)
			assertLabelsEqual(t, name+"/runParallel", want, direct)
		}
	}
}

// TestDBSCANParallelMatchesSequentialRandom is the ISSUE's property test:
// randomized blob/noise/duplicate mixtures across parameter settings must
// label identically under every variant and worker count.
func TestDBSCANParallelMatchesSequentialRandom(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		var pts []geo.Point
		nBlobs := 3 + rng.Intn(8)
		for b := 0; b < nBlobs; b++ {
			c := geo.Point{Lat: 1.23 + rng.Float64()*0.2, Lon: 103.65 + rng.Float64()*0.3}
			pts = append(pts, blob(rng, c, 20+rng.Intn(120), 4+rng.Float64()*10)...)
		}
		pts = append(pts, uniformNoise(rng, 50+rng.Intn(300))...)
		// Sprinkle exact duplicates: DBSCAN must treat them consistently.
		for d := 0; d < 30; d++ {
			pts = append(pts, pts[rng.Intn(len(pts))])
		}
		// Shuffle so spatially adjacent points land in different partitions.
		rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		p := Params{
			EpsMeters: []float64{8, 15, 25}[rng.Intn(3)],
			MinPoints: []int{3, 10, 30}[rng.Intn(3)],
		}
		checkAllVariants(t, "random", pts, p)
	}
}

func TestDBSCANParallelDegenerateInputs(t *testing.T) {
	// Empty input.
	checkAllVariants(t, "empty", nil, Params{EpsMeters: 15, MinPoints: 5})

	// All points identical: one cluster when the count clears MinPoints...
	dup := make([]geo.Point, 700)
	for i := range dup {
		dup[i] = geo.Point{Lat: 1.3, Lon: 103.8}
	}
	checkAllVariants(t, "duplicates", dup, Params{EpsMeters: 15, MinPoints: 50})
	// ...and pure noise when it does not.
	checkAllVariants(t, "duplicates-noise", dup, Params{EpsMeters: 15, MinPoints: len(dup) + 1})

	// Tiny inputs still go through runParallel in checkAllVariants.
	one := []geo.Point{{Lat: 1.3, Lon: 103.8}}
	checkAllVariants(t, "single-core", one, Params{EpsMeters: 15, MinPoints: 1})
	checkAllVariants(t, "single-noise", one, Params{EpsMeters: 15, MinPoints: 2})
}

// TestDBSCANParallelChainSpansPartitions builds one long thin cluster whose
// points are shuffled across the index range, so nearly every ε-edge crosses
// a partition boundary and the union-find merge carries the whole cluster.
func TestDBSCANParallelChainSpansPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	start := geo.Point{Lat: 1.25, Lon: 103.7}
	pts := make([]geo.Point, 3000)
	for i := range pts {
		// 5 m steps heading east; eps 12 m links each point to its chain
		// neighbours only.
		pts[i] = geo.Offset(start, 0, float64(i)*5)
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	p := Params{EpsMeters: 12, MinPoints: 3}
	checkAllVariants(t, "chain", pts, p)
	res, err := DBSCANParallel(pts, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("chain split into %d clusters, want 1", res.NumClusters)
	}
	if res.NoiseCount() != 0 {
		t.Fatalf("chain produced %d noise points, want 0", res.NoiseCount())
	}
}

// TestDBSCANParallelBorderTieBreak pins the subtle case: a border point
// within ε of core points from two different clusters must join the
// lower-numbered cluster, exactly as the sequential expansion order decides.
func TestDBSCANParallelBorderTieBreak(t *testing.T) {
	origin := geo.Point{Lat: 1.3, Lon: 103.8}
	at := func(east float64) geo.Point { return geo.Offset(origin, east, 0) }
	// eps 10, minPts 4. Two mirrored arms around a contested point at x=0:
	// the cores at ±9 each lean on two anchors at ±18 (beyond the contested
	// point's reach), so the x=0 point sees only {core, self, core} = 3
	// neighbours — a border of BOTH clusters, never core, while the cores
	// sit 18 m apart and stay unlinked.
	pts := []geo.Point{
		at(-18), at(-18), // left anchors (borders of cluster 0)
		at(-9),         // left core
		at(18), at(18), // right anchors (borders of cluster 1)
		at(9), // right core
		at(0), // contested border point
	}
	p := Params{EpsMeters: 10, MinPoints: 4}
	checkAllVariants(t, "border-tie", pts, p)
	res, err := DBSCANParallel(pts, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("%d clusters, want 2", res.NumClusters)
	}
	if got := res.Labels[len(pts)-1]; got != 0 {
		t.Fatalf("contested border point joined cluster %d, want 0 (first-expanded)", got)
	}
}

func TestDBSCANParallelValidation(t *testing.T) {
	if _, err := DBSCANParallel(nil, Params{EpsMeters: 0, MinPoints: 5}, 4); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := DBSCANParallelWithIndex(make([]geo.Point, 3), Params{EpsMeters: 15, MinPoints: 2}, spatial.NewLinear(nil), 4); err == nil {
		t.Error("index/point length mismatch accepted")
	}
}

func TestSweepParallelMatchesSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var pts []geo.Point
	for i := 0; i < 10; i++ {
		c := geo.Point{Lat: 1.24 + rng.Float64()*0.2, Lon: 103.65 + rng.Float64()*0.3}
		pts = append(pts, blob(rng, c, 40+rng.Intn(60), 7)...)
	}
	pts = append(pts, uniformNoise(rng, 250)...)
	eps := []float64{5, 10, 15, 20}
	minPts := []int{25, 50, 100, 150}
	want, err := Sweep(pts, eps, minPts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range testWorkerCounts {
		got, err := SweepParallel(pts, eps, minPts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: cell %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}
