package cluster

import (
	"runtime"
	"sync"
	"sync/atomic"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/spatial"
)

// parallelMinPoints is the input size below which DBSCANParallel falls back
// to the sequential control loop: the fan-out overhead (goroutines, atomic
// block cursor) exceeds the clustering cost itself for tiny zones.
const parallelMinPoints = 512

// capWorkers clamps a worker request to the scheduler's parallelism:
// workers beyond GOMAXPROCS cannot run simultaneously, so the extra
// goroutines only add cursor contention and scheduling churn (on a
// single-core box an 8-worker request measured ~2× slower than
// sequential before this clamp — see EXPERIMENTS.md). workers <= 0 asks
// for full parallelism.
func capWorkers(workers int) int {
	if p := runtime.GOMAXPROCS(0); workers <= 0 || workers > p {
		return p
	}
	return workers
}

// DBSCANParallel clusters pts across a worker pool and produces labels
// byte-identical to the sequential DBSCAN for any worker count.
//
// The point set is partitioned into fixed-size index blocks handed out by an
// atomic cursor. Three passes, each fully parallel over blocks:
//
//  1. core detection — a point is core when its ε-neighbourhood (self
//     included) holds at least MinPoints members; coreness is independent of
//     visit order, so blocks need no coordination.
//  2. cluster structure — every core-core pair within ε lies in one cluster.
//     Workers union such pairs (cross-partition edges included) into a
//     lock-free disjoint-set whose roots converge to the minimum core index
//     of each component regardless of interleaving.
//  3. relabel + borders — components are numbered in ascending
//     first-core-index order, which is exactly the order the sequential scan
//     starts clusters; each non-core point takes the smallest cluster number
//     among its core neighbours (the sequential loop expands clusters fully,
//     one at a time, so the lowest-numbered adjacent cluster always claims a
//     border point first) or Noise when it has none.
//
// workers <= 0 uses GOMAXPROCS.
func DBSCANParallel(pts []geo.Point, p Params, workers int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	workers = capWorkers(workers)
	idx := spatial.NewGrid(pts, p.EpsMeters)
	if workers == 1 || len(pts) < parallelMinPoints {
		return run(pts, p, idx), nil
	}
	return runParallel(pts, p, idx, workers), nil
}

// DBSCANParallelWithIndex is DBSCANParallel over a caller-supplied
// neighbour index (built over exactly pts). The index must be safe for
// concurrent reads; the grid, R-tree and linear indexes all are.
func DBSCANParallelWithIndex(pts []geo.Point, p Params, idx spatial.Index, workers int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if idx.Len() != len(pts) {
		return Result{}, errIndexMismatch(idx.Len(), len(pts))
	}
	workers = capWorkers(workers)
	if workers == 1 || len(pts) < parallelMinPoints {
		return run(pts, p, idx), nil
	}
	return runParallel(pts, p, idx, workers), nil
}

// parallelBlockSize is the unit of work handed to workers: large enough to
// amortize the atomic cursor, small enough to balance skewed density.
const parallelBlockSize = 256

// parallelBlocks runs fn over [0, n) in fixed-size half-open ranges drawn
// from an atomic cursor by a pool of workers. Each worker owns one reusable
// neighbour scratch buffer threaded through its fn calls.
func parallelBlocks(n, workers int, fn func(lo, hi int, scratch []int) []int) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []int
			for {
				lo := int(cursor.Add(parallelBlockSize)) - parallelBlockSize
				if lo >= n {
					return
				}
				scratch = fn(lo, min(lo+parallelBlockSize, n), scratch)
			}
		}()
	}
	wg.Wait()
}

// runParallel is the partition/merge DBSCAN described on DBSCANParallel.
func runParallel(pts []geo.Point, p Params, idx spatial.Index, workers int) Result {
	n := len(pts)
	isCore := make([]bool, n)

	// Pass 1: core detection. Writes are confined to each worker's block.
	parallelBlocks(n, workers, func(lo, hi int, buf []int) []int {
		for i := lo; i < hi; i++ {
			buf = idx.Within(pts[i], p.EpsMeters, buf[:0])
			isCore[i] = len(buf) >= p.MinPoints
		}
		return buf
	})

	// Pass 2: union core-core ε-edges. Each undirected edge is applied once,
	// from its lower endpoint, whichever partition holds the upper one.
	uf := newUnionFind(n)
	parallelBlocks(n, workers, func(lo, hi int, buf []int) []int {
		for i := lo; i < hi; i++ {
			if !isCore[i] {
				continue
			}
			buf = idx.Within(pts[i], p.EpsMeters, buf[:0])
			for _, j := range buf {
				if j > i && isCore[j] {
					uf.union(int32(i), int32(j))
				}
			}
		}
		return buf
	})

	// Number components by ascending first core index — the sequential
	// cluster order — and label core points.
	labels := make([]int, n)
	rootLabel := make([]int32, n)
	for i := range rootLabel {
		rootLabel[i] = -1
	}
	next := 0
	for i := 0; i < n; i++ {
		if !isCore[i] {
			continue
		}
		r := uf.find(int32(i))
		if rootLabel[r] < 0 {
			rootLabel[r] = int32(next)
			next++
		}
		labels[i] = int(rootLabel[r])
	}

	// Pass 3: borders and noise. A non-core point joins the lowest-numbered
	// cluster owning a core point within ε, or stays Noise.
	parallelBlocks(n, workers, func(lo, hi int, buf []int) []int {
		for i := lo; i < hi; i++ {
			if isCore[i] {
				continue
			}
			buf = idx.Within(pts[i], p.EpsMeters, buf[:0])
			best := int32(-1)
			for _, j := range buf {
				if !isCore[j] {
					continue
				}
				if l := rootLabel[uf.find(int32(j))]; best < 0 || l < best {
					best = l
				}
			}
			if best < 0 {
				labels[i] = Noise
			} else {
				labels[i] = int(best)
			}
		}
		return buf
	})

	return Result{Labels: labels, NumClusters: next}
}

// unionFind is a lock-free disjoint-set over point indexes. union attaches
// the larger root beneath the smaller, so each component's final root is its
// minimum member regardless of operation interleaving; find uses CAS path
// halving and is safe to call concurrently with unions.
type unionFind struct {
	parent []int32
}

func newUnionFind(n int) *unionFind {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	return &unionFind{parent: parent}
}

func (u *unionFind) find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&u.parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&u.parent[p])
		if gp == p {
			return p
		}
		atomic.CompareAndSwapInt32(&u.parent[x], p, gp)
		x = gp
	}
}

func (u *unionFind) union(a, b int32) {
	for {
		ra, rb := u.find(a), u.find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		if atomic.CompareAndSwapInt32(&u.parent[rb], rb, ra) {
			return
		}
	}
}
