package history

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout. History lives in generation files hist-<gen>.hb:
//
//	magic   "TQHIST1\n" (8 bytes)
//	stamp   uvarint slots, uvarint slotLen ns, uvarint nspots,
//	        grid start UnixNano (8 bytes LE), Factor + IntervalFactor
//	        (float64 LE each) — a store may only recover files written
//	        under its exact configuration
//	base    uvarint baseCount
//	frames  4-byte LE payload length, 4-byte LE CRC32 (IEEE), payload
//
// store.FS exposes no append-open, so a restart continues into a *new*
// generation whose baseCount says how many logical blocks the earlier
// generations already carry. A generation opened to continue has
// baseCount = that durable count; a generation written to escape a write
// error (rotateLocked) has baseCount = 0 and re-frames every block, after
// which the older generations are removed. Recovery walks generations
// ascending, resets the block list to each file's baseCount, and appends
// its frames; the first damaged frame (bad length, CRC or decode) cuts
// the tail — the file is truncated at the last clean frame, later
// generations are removed, and the cut is counted. Because a rewrite
// generation frames blocks in logical order, a crash mid-rewrite leaves a
// clean prefix that is also a logical clean prefix.
const (
	histMagic    = "TQHIST1\n"
	maxFrameSize = 1 << 30
	// maxHeaderSize bounds the variable-length file header: magic (8) +
	// three uvarints (≤10 each) + three fixed 8-byte stamps + the
	// baseCount uvarint (≤10) = 72; rounded up.
	maxHeaderSize = 96
)

func genFileName(gen int) string { return fmt.Sprintf("hist-%d.hb", gen) }

// genOf parses hist-<gen>.hb; ok is false for anything else.
func genOf(name string) (int, bool) {
	if !strings.HasPrefix(name, "hist-") || !strings.HasSuffix(name, ".hb") {
		return 0, false
	}
	n, err := strconv.Atoi(name[len("hist-") : len(name)-len(".hb")])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// headerBytes renders magic + config stamp + baseCount.
func (s *Store) headerBytes(baseCount int) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, histMagic...)
	buf = binary.AppendUvarint(buf, uint64(s.cfg.Grid.Slots))
	buf = binary.AppendUvarint(buf, uint64(s.cfg.Grid.SlotLen))
	buf = binary.AppendUvarint(buf, uint64(len(s.cfg.Spots)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.cfg.Grid.Start.UnixNano()))
	buf = appendF64(buf, s.cfg.Amplify.Factor)
	buf = appendF64(buf, s.cfg.Amplify.IntervalFactor)
	buf = binary.AppendUvarint(buf, uint64(baseCount))
	return buf
}

func frameBytes(payload []byte) []byte {
	buf := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// failLocked poisons the current generation after a write/sync error: the
// file's tail is untrustworthy, so it is abandoned and the next seal
// rewrites everything into a fresh generation.
func (s *Store) failLocked(err error) {
	_ = err
	s.met.writeErrs.Inc()
	if s.file != nil {
		_ = s.file.Close()
		s.file = nil
	}
	s.needRewrite = true
}

// createGenLocked opens the next generation file and writes its header.
func (s *Store) createGenLocked(baseCount int) bool {
	gen := s.gen
	s.gen++
	name := filepath.Join(s.cfg.Dir, genFileName(gen))
	f, err := s.cfg.FS.Create(name)
	if err != nil {
		s.failLocked(err)
		return false
	}
	s.file = f
	s.genFiles = append(s.genFiles, name)
	hdr := s.headerBytes(baseCount)
	if _, err := f.Write(hdr); err != nil {
		s.failLocked(err)
		return false
	}
	s.bytes += int64(len(hdr))
	s.met.bytes.Set(s.bytes)
	return true
}

// appendFrameLocked frames, writes and syncs one block payload.
func (s *Store) appendFrameLocked(payload []byte) bool {
	frame := frameBytes(payload)
	if _, err := s.file.Write(frame); err != nil {
		s.failLocked(err)
		return false
	}
	if err := s.file.Sync(); err != nil {
		s.failLocked(err)
		return false
	}
	s.bytes += int64(len(frame))
	s.met.bytes.Set(s.bytes)
	return true
}

// persistLocked makes the block just appended to s.blocks durable.
func (s *Store) persistLocked(b *block) {
	if s.needRewrite {
		s.rotateLocked()
		return // the rotate covered b (or failed and stays poisoned)
	}
	if s.file == nil {
		if !s.createGenLocked(s.durable) {
			return
		}
	}
	if !s.appendFrameLocked(b.payload) {
		return
	}
	s.durable++
}

// blockPayloadLocked fetches one block's encoded payload for a rewrite:
// from memory for runtime-sealed blocks, from disk (via files, a
// per-rotate handle cache) for lazily-recovered ones.
func (s *Store) blockPayloadLocked(b *block, files map[string]*os.File) ([]byte, error) {
	if b.payload != nil {
		return b.payload, nil
	}
	ref := b.ref.Load()
	if ref == nil {
		return nil, errBadBlock
	}
	f := files[ref.name]
	if f == nil {
		var err error
		f, err = os.Open(ref.name)
		if err != nil {
			return nil, err
		}
		files[ref.name] = f
	}
	return ref.read(f)
}

// rotateLocked escapes a poisoned generation: every sealed block is
// re-framed into a fresh generation with baseCount 0, and on success the
// older generations are removed (best effort — a leftover older
// generation is harmless, the newer one's baseCount supersedes it).
// Disk-resident blocks have their payloads copied from the old
// generations and their refs re-pointed at the new one before the old
// files go away; refs only move once the whole rewrite is synced, so a
// failed rotate leaves every ref on the still-present old generations.
func (s *Store) rotateLocked() {
	if s.file != nil {
		_ = s.file.Close()
		s.file = nil
	}
	gen := s.gen
	s.gen++
	name := filepath.Join(s.cfg.Dir, genFileName(gen))
	f, err := s.cfg.FS.Create(name)
	if err != nil {
		s.failLocked(err)
		return
	}
	s.file = f
	s.genFiles = append(s.genFiles, name)
	bytes := int64(0)
	hdr := s.headerBytes(0)
	if _, err := f.Write(hdr); err != nil {
		s.failLocked(err)
		return
	}
	bytes += int64(len(hdr))
	oldFiles := make(map[string]*os.File)
	defer func() {
		for _, of := range oldFiles {
			_ = of.Close()
		}
	}()
	newRefs := make(map[*block]*fileRef)
	for _, b := range s.blocks {
		payload, err := s.blockPayloadLocked(b, oldFiles)
		if err != nil {
			s.failLocked(err)
			return
		}
		frame := frameBytes(payload)
		if _, err := f.Write(frame); err != nil {
			s.failLocked(err)
			return
		}
		if b.payload == nil {
			newRefs[b] = &fileRef{
				name: name, off: bytes + 8, size: len(payload),
				crc: crc32.ChecksumIEEE(payload),
			}
		}
		bytes += int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		s.failLocked(err)
		return
	}
	for b, ref := range newRefs {
		b.ref.Store(ref)
	}
	s.needRewrite = false
	s.durable = len(s.blocks)
	s.bytes = bytes
	s.met.bytes.Set(bytes)
	keep := s.genFiles[:0]
	for _, old := range s.genFiles {
		if old == name {
			keep = append(keep, old)
			continue
		}
		if err := s.cfg.FS.Remove(old); err != nil {
			keep = append(keep, old)
		}
	}
	s.genFiles = keep
}

// syncLocked is the Flush durability barrier: it completes any owed
// rewrite and syncs the open generation.
func (s *Store) syncLocked() {
	if s.needRewrite {
		s.rotateLocked()
		return
	}
	if s.file == nil {
		return
	}
	if err := s.file.Sync(); err != nil {
		s.failLocked(err)
	}
}

// recover loads the generation files under cfg.Dir, keeping the longest
// clean prefix of blocks. Damage (a torn header, an impossible baseCount,
// a frame with a bad length/CRC or an unparsable summary) truncates the
// damaged file at its last clean frame, removes all later generations,
// and counts one truncation; a complete header written under a different
// configuration is a hard error. Reads and repairs use the real
// filesystem — only the write path goes through the (fault-injectable)
// cfg.FS, mirroring the WAL.
//
// Recovery is lazy: every frame is streamed through a reused buffer and
// CRC-checked exactly as before, but only the summary prefix is decoded —
// the columns stay on disk behind a fileRef and materialize on first use
// (see lazy.go). Open-time memory is therefore proportional to the block
// count, not the record count.
func (s *Store) recover() error {
	ents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("history: recover: %w", err)
	}
	gens := make([]int, 0, len(ents))
	for _, e := range ents {
		if g, ok := genOf(e.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Ints(gens)
	if len(gens) > 0 {
		s.gen = gens[len(gens)-1] + 1
	}
	damaged := false
	for _, g := range gens {
		name := filepath.Join(s.cfg.Dir, genFileName(g))
		if damaged {
			_ = os.Remove(name)
			continue
		}
		kept, size, blocks, hardErr := s.recoverGen(name)
		if hardErr != nil {
			return hardErr
		}
		if blocks == nil {
			// Unusable header: drop the file entirely.
			_ = os.Remove(name)
			damaged = true
			s.met.truncations.Inc()
			continue
		}
		base := blocks.baseCount
		if base > len(s.blocks) {
			// Claims a longer durable prefix than exists — the earlier
			// generations were cut below what this one assumed.
			_ = os.Remove(name)
			damaged = true
			s.met.truncations.Inc()
			continue
		}
		// A rewrite generation supersedes everything beyond its base.
		s.blocks = append(s.blocks[:base], blocks.frames...)
		if kept < size {
			if err := os.Truncate(name, kept); err != nil {
				return fmt.Errorf("history: truncate %s: %w", name, err)
			}
			damaged = true
			s.met.truncations.Inc()
		}
		s.genFiles = append(s.genFiles, name)
	}
	// Byte accounting: sum the surviving generation file sizes.
	s.bytes = 0
	for _, name := range s.genFiles {
		if fi, err := os.Stat(name); err == nil {
			s.bytes += fi.Size()
		}
	}
	return nil
}

// recoveredGen is one generation file's parse result.
type recoveredGen struct {
	baseCount int
	frames    []*block
}

// recoverGen streams one generation file: header check, then per frame a
// CRC check and a summary-prefix parse into a lazy block. Returns the
// clean byte length, the file size, the parsed content (nil when the
// header itself is unusable), and a hard error only for a complete header
// stamped with a different configuration (or an unreadable file).
func (s *Store) recoverGen(name string) (int64, int64, *recoveredGen, error) {
	f, err := os.Open(name)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("history: recover %s: %w", name, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, nil, fmt.Errorf("history: recover %s: %w", name, err)
	}
	size := fi.Size()
	br := bufio.NewReaderSize(f, 64<<10)
	hdr, _ := br.Peek(maxHeaderSize) // short near EOF; the parse bounds-checks
	if len(hdr) < len(histMagic) {
		return 0, size, nil, nil // torn creation
	}
	if string(hdr[:len(histMagic)]) != histMagic {
		return 0, size, nil, fmt.Errorf("history: %s: not a history file", name)
	}
	r := &byteReader{buf: hdr, off: len(histMagic)}
	slots := r.uvarint()
	slotLen := r.uvarint()
	nspots := r.uvarint()
	start := r.f64bits()
	factor := r.f64()
	ifactor := r.f64()
	base := r.uvarint()
	if r.err != nil {
		return 0, size, nil, nil // torn header
	}
	if int(slots) != s.cfg.Grid.Slots ||
		int64(slotLen) != int64(s.cfg.Grid.SlotLen) ||
		int(nspots) != len(s.cfg.Spots) ||
		int64(start) != s.cfg.Grid.Start.UnixNano() ||
		!sameBits(factor, s.cfg.Amplify.Factor) ||
		!sameBits(ifactor, s.cfg.Amplify.IntervalFactor) {
		return 0, size, nil, fmt.Errorf("history: %s: config mismatch (written under a different grid/spots/amplification)", name)
	}
	if base > uint64(maxFrameSize) {
		return 0, size, nil, nil
	}
	if _, err := br.Discard(r.off); err != nil {
		return 0, size, nil, nil
	}
	out := &recoveredGen{baseCount: int(base)}
	off := int64(r.off)
	clean := off
	var fhdr [8]byte
	var scratch []byte
	for {
		if _, err := io.ReadFull(br, fhdr[:]); err != nil {
			break // clean EOF or torn frame header — either way the tail ends here
		}
		plen := binary.LittleEndian.Uint32(fhdr[0:])
		crc := binary.LittleEndian.Uint32(fhdr[4:])
		if plen > maxFrameSize {
			break
		}
		if int(plen) > cap(scratch) {
			scratch = make([]byte, plen)
		}
		payload := scratch[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		b, err := parseSummaryBlock(payload)
		if err != nil {
			break
		}
		b.ref.Store(&fileRef{name: name, off: off + 8, size: int(plen), crc: crc})
		out.frames = append(out.frames, b)
		off += 8 + int64(plen)
		clean = off
	}
	return clean, size, out, nil
}

// f64bits reads 8 LE bytes as a uint64 (for the grid-start stamp, which
// is an int64, not a float).
func (r *byteReader) f64bits() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.err = errBadBlock
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}
