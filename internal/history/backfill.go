package history

import (
	"fmt"

	"taxiqueue/internal/core"
)

// BackfillResult records every closed slot of one batch analysis pass as
// day's history — the daily batch path into the store, complementing the
// live AppendSlots hook. The result must cover the same spot set the
// store was opened with (same count and order); the per-day watermark
// makes a re-backfill of an already-recorded day a no-op, so batch and
// live feeding the same day cannot double-append. Flushes before
// returning so the day is durable.
func (s *Store) BackfillResult(day int, res *core.Result) error {
	if len(res.Spots) != len(s.cfg.Spots) {
		return fmt.Errorf("history: backfill day %d: result has %d spots, store has %d",
			day, len(res.Spots), len(s.cfg.Spots))
	}
	if err := s.AppendSlots(day, 0, s.cfg.Grid.Slots, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
		return res.Cell(spot, slot)
	}); err != nil {
		return err
	}
	return s.Flush()
}
