package history

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"taxiqueue/internal/core"
)

// Block payload layout (all integers unsigned varints unless noted):
//
//	header:   day, coveredBelow, count
//	summary:  minSlot, maxSlot, labels[0..4],            (only if count > 0)
//	          waitSum, arrSum, qlenSum, depSum           (float64 LE each)
//	columns:  flags      count × 1 byte
//	          slot       count × uvarint, delta from minSlot
//	          spot       count × uvarint
//	          twait      count × uvarint (ns)
//	          tdep       count × uvarint (ns)
//	          waitN      count × uvarint (0 when NArr is explicit)
//	          depN       count × uvarint (0 when NDep is explicit)
//	          street     count × uvarint
//	extras:   per record, in record order:
//	          NArr float64 LE     if flagNArrExplicit
//	          NDep float64 LE     if flagNDepExplicit
//	          QLen float64 LE     if qlen mode == qlenExplicit
//	          booking uvarint     if flagBookingExplicit
//
// Records are sorted by (slot, spot) so the slot column delta-packs and a
// range scan reads them in order. The flag bits record which float
// features survived the bit-exact derivation check at encode time:
// N_arr = waitN·Factor and N_dep = depN·Factor reproduce the §6.2.1
// amplified counts from the raw ones, and L̄ is recomputed from t̄wait and
// N_arr with the exact expression shape the producer used — the stream
// engine evaluates (t̄wait·N_arr)/len where the batch engine evaluates
// t̄wait·(N_arr/len), and float multiplication is not associative, so the
// mode bit replays whichever order round-trips. Anything that fails the
// check is stored as explicit bits; decode is lossless either way.
//
// Signed quantities (durations, counts) are stored as uvarint over the
// two's-complement uint64 — never expected negative, but lossless if so.
const (
	flagLabelMask       = 0b0000_0111
	flagQLenShift       = 3
	flagQLenMask        = 0b0001_1000
	flagNArrExplicit    = 0b0010_0000
	flagNDepExplicit    = 0b0100_0000
	flagBookingExplicit = 0b1000_0000

	qlenStream   = 0 // QLen == TWait.Seconds() * NArr / slotSec
	qlenBatch    = 1 // QLen == TWait.Seconds() * (NArr / slotSec)
	qlenExplicit = 2 // QLen stored as raw float64 bits
)

var errBadBlock = errors.New("history: bad block")

// blockSummary is decodable from a block's fixed-size prefix: enough to
// skip the block in a range scan (Day via block, MinSlot/MaxSlot) or
// aggregate it without touching the columns.
type blockSummary struct {
	Count   int
	MinSlot int
	MaxSlot int
	Labels  [int(core.C4) + 1]int
	WaitSum float64 // Σ TWait seconds
	ArrSum  float64 // Σ NArr
	QLenSum float64 // Σ QLen
	DepSum  float64 // Σ NDep
}

// block is one sealed run of records of a single day. Blocks sealed at
// runtime keep the encoded payload (what the generation file frames
// carry) and the records in memory; blocks recovered at Open are
// disk-resident — only the summary lives in memory, ref locates the
// payload, and the records materialize on demand through the store's
// decoded-block cache. A block with Count == 0 is a bare watermark
// carrier: it records that the day is fully empty below coveredBelow.
type block struct {
	day          int
	coveredBelow int
	sum          blockSummary
	payload      []byte
	recs         []Record
	// ref locates the payload on disk for lazily-recovered blocks (nil
	// for runtime-sealed blocks, whose payload is in memory). A rotate
	// re-points it at the fresh generation, so it is read atomically.
	ref atomic.Pointer[fileRef]
}

// overlaps reports whether the block holds any record in [loSlot, hiSlot).
func (b *block) overlaps(loSlot, hiSlot int) bool {
	return b.sum.Count > 0 && b.sum.MinSlot < hiSlot && b.sum.MaxSlot >= loSlot
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// deriveCount inverts v = count·factor; ok only when the raw count
// reproduces v to the bit.
func deriveCount(v, factor float64) (uint64, bool) {
	n := math.Round(v / factor)
	if n < 0 || n > 1e15 || !sameBits(float64(n)*factor, v) {
		return 0, false
	}
	return uint64(n), true
}

// encodeBlock seals recs (all of one day) into a block. recs are copied
// and the copy sorted by (slot, spot); the caller's slice is untouched.
func encodeBlock(day int, recs []Record, coveredBelow int, amp core.Amplification, slotSec float64) *block {
	sorted := append([]Record(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Slot != sorted[j].Slot {
			return sorted[i].Slot < sorted[j].Slot
		}
		return sorted[i].Spot < sorted[j].Spot
	})

	b := &block{day: day, coveredBelow: coveredBelow, recs: sorted}
	b.sum.Count = len(sorted)
	for i, r := range sorted {
		if i == 0 || r.Slot < b.sum.MinSlot {
			b.sum.MinSlot = r.Slot
		}
		if r.Slot > b.sum.MaxSlot {
			b.sum.MaxSlot = r.Slot
		}
		if int(r.Label) < len(b.sum.Labels) {
			b.sum.Labels[r.Label]++
		}
		b.sum.WaitSum += r.Feats.TWait.Seconds()
		b.sum.ArrSum += r.Feats.NArr
		b.sum.QLenSum += r.Feats.QLen
		b.sum.DepSum += r.Feats.NDep
	}

	buf := make([]byte, 0, 32+12*len(sorted))
	buf = binary.AppendUvarint(buf, uint64(day))
	buf = binary.AppendUvarint(buf, uint64(coveredBelow))
	buf = binary.AppendUvarint(buf, uint64(len(sorted)))
	if len(sorted) > 0 {
		buf = binary.AppendUvarint(buf, uint64(b.sum.MinSlot))
		buf = binary.AppendUvarint(buf, uint64(b.sum.MaxSlot))
		for _, n := range b.sum.Labels {
			buf = binary.AppendUvarint(buf, uint64(n))
		}
		buf = appendF64(buf, b.sum.WaitSum)
		buf = appendF64(buf, b.sum.ArrSum)
		buf = appendF64(buf, b.sum.QLenSum)
		buf = appendF64(buf, b.sum.DepSum)
	}

	flags := make([]byte, len(sorted))
	waitN := make([]uint64, len(sorted))
	depN := make([]uint64, len(sorted))
	for i, r := range sorted {
		fl := byte(r.Label) & flagLabelMask

		n, ok := deriveCount(r.Feats.NArr, amp.Factor)
		if ok {
			waitN[i] = n
		} else {
			fl |= flagNArrExplicit
		}
		d, ok := deriveCount(r.Feats.NDep, amp.Factor)
		if ok {
			depN[i] = d
		} else {
			fl |= flagNDepExplicit
		}
		// Booking departures fall out of the raw departure count when NDep
		// derived: street + booking = depN.
		if fl&flagNDepExplicit != 0 || int(d)-r.Feats.StreetDepartures != r.Feats.BookingDepartures {
			fl |= flagBookingExplicit
		}

		tw := r.Feats.TWait.Seconds()
		switch {
		case sameBits(tw*r.Feats.NArr/slotSec, r.Feats.QLen):
			fl |= qlenStream << flagQLenShift
		case sameBits(tw*(r.Feats.NArr/slotSec), r.Feats.QLen):
			fl |= qlenBatch << flagQLenShift
		default:
			fl |= qlenExplicit << flagQLenShift
		}
		flags[i] = fl
	}

	buf = append(buf, flags...)
	for _, r := range sorted {
		buf = binary.AppendUvarint(buf, uint64(r.Slot-b.sum.MinSlot))
	}
	for _, r := range sorted {
		buf = binary.AppendUvarint(buf, uint64(r.Spot))
	}
	for _, r := range sorted {
		buf = binary.AppendUvarint(buf, uint64(int64(r.Feats.TWait)))
	}
	for _, r := range sorted {
		buf = binary.AppendUvarint(buf, uint64(int64(r.Feats.TDep)))
	}
	for _, n := range waitN {
		buf = binary.AppendUvarint(buf, n)
	}
	for _, n := range depN {
		buf = binary.AppendUvarint(buf, n)
	}
	for _, r := range sorted {
		buf = binary.AppendUvarint(buf, uint64(int64(r.Feats.StreetDepartures)))
	}
	for i, r := range sorted {
		if flags[i]&flagNArrExplicit != 0 {
			buf = appendF64(buf, r.Feats.NArr)
		}
		if flags[i]&flagNDepExplicit != 0 {
			buf = appendF64(buf, r.Feats.NDep)
		}
		if (flags[i]&flagQLenMask)>>flagQLenShift == qlenExplicit {
			buf = appendF64(buf, r.Feats.QLen)
		}
		if flags[i]&flagBookingExplicit != 0 {
			buf = binary.AppendUvarint(buf, uint64(int64(r.Feats.BookingDepartures)))
		}
	}
	b.payload = buf
	return b
}

// parseSummaryBlock decodes only a payload's summary prefix — day,
// coveredBelow, count and, when count > 0, the slot range, per-label
// counts and feature sums — leaving the columns on disk. The label total
// must reconcile with the record count (the same property full decode
// enforces record by record), so a frame this accepts carries a summary
// decodeBlock would have produced. The caller wires a fileRef so the
// records can be materialized on demand.
func parseSummaryBlock(payload []byte) (*block, error) {
	r := &byteReader{buf: payload}
	day := r.uvarint()
	covered := r.uvarint()
	count := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if count > uint64(len(payload)) { // each record takes ≥1 flag byte
		return nil, errBadBlock
	}
	b := &block{day: int(day), coveredBelow: int(covered)}
	b.sum.Count = int(count)
	if count == 0 {
		if r.off != len(payload) {
			return nil, errBadBlock
		}
		return b, nil
	}
	b.sum.MinSlot = int(r.uvarint())
	b.sum.MaxSlot = int(r.uvarint())
	labelTotal := 0
	for i := range b.sum.Labels {
		b.sum.Labels[i] = int(r.uvarint())
		labelTotal += b.sum.Labels[i]
	}
	b.sum.WaitSum = r.f64()
	b.sum.ArrSum = r.f64()
	b.sum.QLenSum = r.f64()
	b.sum.DepSum = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	if b.sum.MinSlot > b.sum.MaxSlot || labelTotal != b.sum.Count {
		return nil, errBadBlock
	}
	return b, nil
}

// byteReader walks a payload with explicit bounds errors (a torn or
// corrupt frame must decode to an error, never a panic or a short block).
type byteReader struct {
	buf []byte
	off int
	err error
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = errBadBlock
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.err = errBadBlock
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *byteReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.err = errBadBlock
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// decodeBlock fully decodes and validates payload. It reconstructs every
// record, so a block that decodes successfully is guaranteed servable —
// recovery relies on this to never admit a partially-decodable block.
func decodeBlock(payload []byte, amp core.Amplification, slotSec float64) (*block, error) {
	r := &byteReader{buf: payload}
	day := r.uvarint()
	covered := r.uvarint()
	count := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if count > uint64(len(payload)) { // each record takes ≥1 flag byte
		return nil, errBadBlock
	}
	b := &block{day: int(day), coveredBelow: int(covered)}
	b.sum.Count = int(count)
	if count == 0 {
		if r.off != len(payload) {
			return nil, errBadBlock
		}
		b.payload = payload
		return b, nil
	}
	b.sum.MinSlot = int(r.uvarint())
	b.sum.MaxSlot = int(r.uvarint())
	for i := range b.sum.Labels {
		b.sum.Labels[i] = int(r.uvarint())
	}
	b.sum.WaitSum = r.f64()
	b.sum.ArrSum = r.f64()
	b.sum.QLenSum = r.f64()
	b.sum.DepSum = r.f64()

	n := int(count)
	flags := make([]byte, n)
	for i := range flags {
		flags[i] = r.byte()
	}
	recs := make([]Record, n)
	for i := range recs {
		recs[i].Day = b.day
		recs[i].Slot = b.sum.MinSlot + int(r.uvarint())
		recs[i].Label = core.QueueType(flags[i] & flagLabelMask)
	}
	for i := range recs {
		recs[i].Spot = int(r.uvarint())
	}
	for i := range recs {
		recs[i].Feats.TWait = time.Duration(int64(r.uvarint()))
	}
	for i := range recs {
		recs[i].Feats.TDep = time.Duration(int64(r.uvarint()))
	}
	waitN := make([]uint64, n)
	for i := range waitN {
		waitN[i] = r.uvarint()
	}
	depN := make([]uint64, n)
	for i := range depN {
		depN[i] = r.uvarint()
	}
	for i := range recs {
		recs[i].Feats.StreetDepartures = int(int64(r.uvarint()))
	}
	for i := range recs {
		f := &recs[i].Feats
		if flags[i]&flagNArrExplicit != 0 {
			f.NArr = r.f64()
		} else {
			f.NArr = float64(waitN[i]) * amp.Factor
		}
		if flags[i]&flagNDepExplicit != 0 {
			f.NDep = r.f64()
		} else {
			f.NDep = float64(depN[i]) * amp.Factor
		}
		switch (flags[i] & flagQLenMask) >> flagQLenShift {
		case qlenStream:
			f.QLen = f.TWait.Seconds() * f.NArr / slotSec
		case qlenBatch:
			f.QLen = f.TWait.Seconds() * (f.NArr / slotSec)
		case qlenExplicit:
			f.QLen = r.f64()
		default:
			return nil, fmt.Errorf("%w: qlen mode 3", errBadBlock)
		}
		if flags[i]&flagBookingExplicit != 0 {
			f.BookingDepartures = int(int64(r.uvarint()))
		} else {
			f.BookingDepartures = int(depN[i]) - f.StreetDepartures
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, errBadBlock
	}
	for _, rec := range recs {
		if rec.Slot < b.sum.MinSlot || rec.Slot > b.sum.MaxSlot {
			return nil, errBadBlock
		}
		if rec.Label > core.C4 {
			return nil, errBadBlock
		}
	}
	b.recs = recs
	b.payload = payload
	return b, nil
}
