package history

import (
	"time"

	"taxiqueue/internal/core"
)

// RangeSummary is the city-wide aggregate over a time range: how many
// final cells the range covers, how many recorded activity, the label
// distribution over the stored cells, and the feature sums. Empty cells
// (final slots a spot recorded nothing for) count in Cells and Empty but
// not in Labels — their synthesized label is a per-spot constant the
// caller can derive, and keeping them out is what lets a fully-covered
// block be served from its summary alone.
type RangeSummary struct {
	From time.Time `json:"from"` // effective (clamped) range start
	To   time.Time `json:"to"`   // effective range end (exclusive)

	Days   int `json:"days"`   // recorded days the range touched
	Slots  int `json:"slots"`  // final slots aggregated (summed across days)
	Cells  int `json:"cells"`  // Slots × spot count
	Stored int `json:"stored"` // cells with recorded activity
	Empty  int `json:"empty"`  // Cells − Stored

	Labels  [int(core.C4) + 1]int `json:"labels"`   // stored cells per context
	WaitSum float64               `json:"wait_sum"` // Σ t̄wait seconds
	ArrSum  float64               `json:"arr_sum"`  // Σ N_arr
	QLenSum float64               `json:"qlen_sum"` // Σ L̄
	DepSum  float64               `json:"dep_sum"`  // Σ N_dep
}

// rangePartial is one block's (or the pending tail's) contribution,
// accumulated record by record in storage order and folded into the total
// with a single add per field. The aggregate is *defined* as this fold of
// per-block partials in block order: encodeBlock computes each stored
// summary by the same in-order adds over the same records, so a
// fully-covered block's stored sums equal its recomputed partial to the
// bit, and the summary-served total is bit-identical to the decode-served
// one (the property test asserts exactly this).
type rangePartial struct {
	stored int
	labels [int(core.C4) + 1]int
	wait   float64
	arr    float64
	qlen   float64
	dep    float64
}

func (p *rangePartial) add(r Record) {
	p.stored++
	if int(r.Label) < len(p.labels) {
		p.labels[r.Label]++
	}
	p.wait += r.Feats.TWait.Seconds()
	p.arr += r.Feats.NArr
	p.qlen += r.Feats.QLen
	p.dep += r.Feats.NDep
}

func (p *rangePartial) foldInto(out *RangeSummary) {
	out.Stored += p.stored
	for i := range out.Labels {
		out.Labels[i] += p.labels[i]
	}
	out.WaitSum += p.wait
	out.ArrSum += p.arr
	out.QLenSum += p.qlen
	out.DepSum += p.dep
}

// foldSummary adds a stored block summary as one partial (the fast path's
// counterpart of foldInto).
func foldSummary(out *RangeSummary, sum *blockSummary) {
	out.Stored += sum.Count
	for i := range out.Labels {
		out.Labels[i] += sum.Labels[i]
	}
	out.WaitSum += sum.WaitSum
	out.ArrSum += sum.ArrSum
	out.QLenSum += sum.QLenSum
	out.DepSum += sum.DepSum
}

// RangeSummary aggregates every final cell in [from, to) without decoding
// blocks the range fully covers: their stored summaries fold straight into
// the total, and only blocks partially overlapping a day's span decode
// (through the block cache). ok is false for a degenerate range (inverted,
// or entirely before the grid). Like Series, the scan clamps to the newest
// recorded day so cost is O(data), not O(requested range).
func (s *Store) RangeSummary(from, to time.Time) (RangeSummary, bool) {
	t0 := time.Now()
	defer s.met.qRange.Since(t0)
	return s.rangeSummary(from, to, false)
}

// rangeSummary is RangeSummary with the fast path switchable: decodeAll
// forces every overlapping block through decode — the baseline the
// bit-identity property test and BenchmarkHistoryHeatmapRangeDecode
// compare against.
func (s *Store) rangeSummary(from, to time.Time, decodeAll bool) (RangeSummary, bool) {
	if !to.After(from) {
		return RangeSummary{}, false
	}
	if from.Before(s.cfg.Grid.Start) {
		from = s.cfg.Grid.Start
	}
	if !to.After(from) {
		return RangeSummary{}, false
	}
	ix := s.pub.Load()
	fromDay, fromSlot, ok := s.Locate(from)
	if !ok {
		return RangeSummary{}, false
	}
	toDay, toSlot, ok := s.Locate(to.Add(-time.Nanosecond))
	if !ok {
		return RangeSummary{}, false
	}
	out := RangeSummary{From: from, To: to}
	days := ix.days()
	if len(days) == 0 {
		return out, true
	}
	if last := days[len(days)-1]; toDay > last {
		toDay, toSlot = last, s.cfg.Grid.Slots-1
	}

	for day := fromDay; day <= toDay; day++ {
		lo, hi := 0, s.cfg.Grid.Slots
		if day == fromDay {
			lo = fromSlot
		}
		if day == toDay {
			hi = toSlot + 1
		}
		if w := ix.wm[day]; hi > w {
			hi = w
		}
		if lo >= hi {
			continue
		}
		out.Days++
		out.Slots += hi - lo
		out.Cells += (hi - lo) * len(s.cfg.Spots)
		for _, b := range ix.blocks {
			if b.day != day || !b.overlaps(lo, hi) {
				continue
			}
			if !decodeAll && b.sum.MinSlot >= lo && b.sum.MaxSlot < hi {
				// Fully inside the day's span: the stored summary IS the
				// block's contribution.
				s.met.summaryHits.Inc()
				foldSummary(&out, &b.sum)
				continue
			}
			s.met.summaryMisses.Inc()
			var p rangePartial
			for _, r := range s.blockRecs(b) {
				if r.Slot >= lo && r.Slot < hi {
					p.add(r)
				}
			}
			p.foldInto(&out)
		}
		var p rangePartial
		for _, r := range ix.pending {
			if r.Day == day && r.Slot >= lo && r.Slot < hi {
				p.add(r)
			}
		}
		p.foldInto(&out)
	}
	out.Empty = out.Cells - out.Stored
	return out, true
}
