package history

import (
	"testing"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/sim"
)

// analyzedDay runs the full batch pipeline (sim → clean → Analyze) once
// and caches the result for this package's tests.
var analyzedDayCache *core.Result

func analyzedDay(t testing.TB) *core.Result {
	t.Helper()
	if analyzedDayCache != nil {
		return analyzedDayCache
	}
	out := sim.Run(sim.Config{Seed: 777, City: citymap.Generate(777, 0.1), InjectFaults: true})
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	ecfg := core.DefaultEngineConfig()
	ecfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 25}
	eng, err := core.NewEngine(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Analyze(cleaned)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spots) == 0 {
		t.Fatal("batch pipeline detected no spots")
	}
	analyzedDayCache = res
	return res
}

// storeFor opens a history store matching a batch result's grid/spots.
func storeFor(t testing.TB, res *core.Result, dir string) *Store {
	t.Helper()
	spots := make([]core.QueueSpot, len(res.Spots))
	ths := make([]core.Thresholds, len(res.Spots))
	for i := range res.Spots {
		spots[i] = res.Spots[i].Spot
		ths[i] = res.Spots[i].Thresholds
	}
	s, err := Open(Config{
		Grid:       res.Config.Grid,
		Spots:      spots,
		Thresholds: ths,
		Amplify:    res.Config.Amplify,
		Dir:        dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBackfillMatchesBatchResult drives a full simulated day through the
// batch engine, backfills it, and asserts every decoded (spot, slot) cell
// is byte-for-field identical to core.Analyze's output — including the
// synthesized empty cells, which must carry the spot's own empty-slot
// classification.
func TestBackfillMatchesBatchResult(t *testing.T) {
	res := analyzedDay(t)
	s := storeFor(t, res, t.TempDir())
	defer s.Close()
	if err := s.BackfillResult(0, res); err != nil {
		t.Fatal(err)
	}
	grid := s.Grid()
	if w := s.Watermark(0); w != grid.Slots {
		t.Fatalf("backfill left watermark at %d", w)
	}
	for spot := range res.Spots {
		pts := s.Series(spot, grid.Start, grid.Start.Add(s.DayLen()))
		if len(pts) != grid.Slots {
			t.Fatalf("spot %d: %d points", spot, len(pts))
		}
		for j, p := range pts {
			wantF, wantL := res.Cell(spot, j)
			if p.Feats != wantF || p.Label != wantL {
				t.Fatalf("spot %d slot %d: history (%v, %+v) != batch (%v, %+v)",
					spot, j, p.Label, p.Feats, wantL, wantF)
			}
		}
	}

	// The headline compactness criterion: the durable encoding of the full
	// day must fit in 16 bytes per (slot, spot) grid cell.
	cells := grid.Slots * len(res.Spots)
	perCell := float64(s.Stats().Bytes) / float64(cells)
	t.Logf("day encoded in %d bytes; %d spots × %d slots = %.2f bytes/slot/spot",
		s.Stats().Bytes, len(res.Spots), grid.Slots, perCell)
	if perCell > 16 {
		t.Fatalf("%.2f bytes/slot/spot exceeds the 16-byte budget", perCell)
	}

	// Backfilling the same result again is a no-op.
	before := s.Stats().Records
	if err := s.BackfillResult(0, res); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().Records; after != before {
		t.Fatalf("re-backfill recorded %d new cells", after-before)
	}
}

// TestBackfillSpotMismatch rejects a result whose spot set doesn't match
// the store's.
func TestBackfillSpotMismatch(t *testing.T) {
	res := analyzedDay(t)
	s := storeFor(t, res, "")
	trimmed := *res
	trimmed.Spots = res.Spots[:len(res.Spots)-1]
	if err := s.BackfillResult(0, &trimmed); err == nil {
		t.Fatal("spot-count mismatch accepted")
	}
}
