package history

import (
	"os"
	"path/filepath"
	"testing"

	"taxiqueue/internal/chaos"
	"taxiqueue/internal/core"
)

// durableConfig is testConfig plus a tmpdir and small blocks so a single
// simulated day spans several frames.
func durableConfig(t *testing.T, nspots int) Config {
	cfg := testConfig(nspots)
	cfg.Dir = t.TempDir()
	cfg.BlockRecords = 24
	return cfg
}

// replayDay blind-re-appends a full recorded day (what a WAL restart
// does) and flushes; the store's watermark makes it idempotent.
func replayDay(t *testing.T, s *Store, day int, cells map[[2]int]Record) {
	t.Helper()
	err := s.AppendSlots(day, 0, s.Grid().Slots, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
		if r, ok := cells[[2]int{spot, slot}]; ok {
			return r.Feats, r.Label
		}
		return core.SlotFeatures{}, core.Unidentified
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// verifyPrefix asserts every slot below each day-watermark decodes to
// exactly the fault-free cell — a recovered store may know less than the
// reference, but must never serve a partially-decoded block.
func verifyPrefix(t *testing.T, s *Store, day int, cells map[[2]int]Record) {
	t.Helper()
	wm := s.Watermark(day)
	if wm == 0 {
		return
	}
	for spot := 0; spot < s.Spots(); spot++ {
		pts := s.Series(spot, s.TimeOf(day, 0), s.TimeOf(day, wm))
		if len(pts) != wm {
			t.Fatalf("spot %d: %d points below watermark %d", spot, len(pts), wm)
		}
		for _, p := range pts {
			want, active := cells[[2]int{spot, p.Slot}]
			if active != !p.Empty {
				t.Fatalf("spot %d slot %d: empty=%v, reference active=%v", spot, p.Slot, p.Empty, active)
			}
			if active && (p.Label != want.Label || p.Feats != want.Feats) {
				t.Fatalf("spot %d slot %d decoded %v %+v, reference %v %+v",
					spot, p.Slot, p.Label, p.Feats, want.Label, want.Feats)
			}
		}
	}
}

// TestChaosWriteFaultsRotateAndHeal hammers the persist path with short
// writes and fsync errors: every fault must be counted, reads must stay
// correct throughout, and once the disk behaves again one Flush leaves a
// clean durable image that reopens without loss.
func TestChaosWriteFaultsRotateAndHeal(t *testing.T) {
	faults := chaos.New(chaos.Config{Seed: 42, ShortWriteProb: 0.3, SyncErrProb: 0.2})
	cfg := durableConfig(t, 8)
	cfg.FS = faults.FS(nil)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := fillDay(t, s, 0, 1)
	_ = s.Flush() // may still be poisoned mid-fault; reads must not care
	verifyDay(t, s, 0, cells)
	if s.Stats().WriteErrors == 0 {
		t.Fatal("no write errors counted under 30% short-write probability")
	}

	faults.SetEnabled(false)
	if err := s.Flush(); err != nil { // heals: owed rewrite completes
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Truncations != 0 {
		t.Fatalf("healed image reopened with %d truncations", st.Truncations)
	}
	if w := r.Watermark(0); w != r.Grid().Slots {
		t.Fatalf("healed image watermark %d", w)
	}
	verifyDay(t, r, 0, cells)
}

// TestChaosSilentTornTail lets the disk lie (short write reported as
// success), closes, and reopens: recovery must cut back to the longest
// clean frame prefix, count the cut, serve only exact fault-free cells,
// and accept an idempotent replay that restores the full day.
func TestChaosSilentTornTail(t *testing.T) {
	faults := chaos.New(chaos.Config{Seed: 7, SilentTornProb: 0.15})
	cfg := durableConfig(t, 8)
	cfg.FS = faults.FS(nil)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := fillDay(t, s, 0, 2)
	if err := s.Close(); err != nil { // believes everything landed
		t.Fatal(err)
	}

	faults.SetEnabled(false)
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if faults.Count("fs_silent_torn") > 0 {
		if st.Truncations == 0 {
			t.Fatal("torn tail on disk but no truncation counted")
		}
		if w := r.Watermark(0); w >= r.Grid().Slots {
			t.Fatalf("watermark %d survived a torn tail", w)
		}
	}
	verifyPrefix(t, r, 0, cells)

	replayDay(t, r, 0, cells)
	verifyDay(t, r, 0, cells)
}

// TestChaosTearTailSweep plants deterministic torn tails of many sizes —
// mid-frame, at frame boundaries, inside the header — and reopens each:
// the survivor must be an exact clean prefix, and a replay must restore
// the full fault-free day.
func TestChaosTearTailSweep(t *testing.T) {
	cfg := durableConfig(t, 6)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := fillDay(t, s, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	genName := genFileName(0)
	image, err := os.ReadFile(filepath.Join(cfg.Dir, genName))
	if err != nil {
		t.Fatal(err)
	}
	size := len(image)

	cuts := []int{1, 3, 9, 31, 100, size / 3, size / 2, size - 40, size - len(histMagic) - 2, size - 3}
	for _, n := range cuts {
		if n <= 0 || n > size {
			continue
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, genName), image, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := chaos.TearTail(filepath.Join(dir, genName), n); err != nil {
			t.Fatal(err)
		}
		torn := cfg
		torn.Dir = dir
		r, err := Open(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", n, err)
		}
		if st := r.Stats(); st.Truncations != 1 {
			t.Fatalf("cut %d: %d truncations, want 1", n, st.Truncations)
		}
		if w := r.Watermark(0); w >= r.Grid().Slots {
			t.Fatalf("cut %d: watermark %d survived the cut", n, w)
		}
		verifyPrefix(t, r, 0, cells)

		replayDay(t, r, 0, cells)
		verifyDay(t, r, 0, cells)

		// And the repaired image must now reopen clean.
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := Open(torn)
		if err != nil {
			t.Fatalf("cut %d reopen: %v", n, err)
		}
		if st := r2.Stats(); st.Truncations != 0 {
			t.Fatalf("cut %d: repaired image reopened with %d truncations", n, st.Truncations)
		}
		verifyDay(t, r2, 0, cells)
		r2.Close()
	}
}

// TestChaosConfigMismatch: a complete file written under a different
// grid must be a hard error, not a silent truncation.
func TestChaosConfigMismatch(t *testing.T) {
	cfg := durableConfig(t, 4)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillDay(t, s, 0, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Spots = cfg.Spots[:3]
	other.Thresholds = cfg.Thresholds[:3]
	if _, err := Open(other); err == nil {
		t.Fatal("config mismatch opened without error")
	}
}
