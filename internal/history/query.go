package history

import (
	"math"
	"sort"
	"time"

	"taxiqueue/internal/core"
)

// Point is one slot of a spot's decoded series. Empty marks a slot that
// was final but recorded no activity: its features are the zero 5-tuple
// and its label the spot's synthesized empty context.
type Point struct {
	Time  time.Time         `json:"t"`
	Day   int               `json:"day"`
	Slot  int               `json:"slot"`
	Label core.QueueType    `json:"label"`
	Feats core.SlotFeatures `json:"-"`
	Empty bool              `json:"empty,omitempty"`
}

// Series decodes spot's per-slot history over [from, to): one Point per
// final slot in the range, in time order, with unstored (empty) slots
// synthesized. Only slots below their day's watermark appear. Lock-free:
// one atomic index load, block summaries skip non-overlapping blocks.
func (s *Store) Series(spot int, from, to time.Time) []Point {
	t0 := time.Now()
	defer s.met.qSeries.Since(t0)
	if spot < 0 || spot >= len(s.cfg.Spots) || !to.After(from) {
		return nil
	}
	ix := s.pub.Load()

	if from.Before(s.cfg.Grid.Start) {
		from = s.cfg.Grid.Start
	}
	fromDay, fromSlot, ok := s.Locate(from)
	if !ok {
		return nil
	}
	// The slot containing to-1ns is included iff to extends past its start.
	toDay, toSlot, ok := s.Locate(to.Add(-time.Nanosecond))
	if !ok {
		return nil
	}
	// Clamp the scan to the newest recorded day: beyond it every slot is
	// above its (zero) watermark anyway, and an unclamped far-future `to`
	// would iterate hundreds of millions of empty days. Cost must be
	// O(data), not O(requested range).
	days := ix.days()
	if len(days) == 0 {
		return nil
	}
	if last := days[len(days)-1]; toDay > last {
		toDay, toSlot = last, s.cfg.Grid.Slots-1
	}

	var out []Point
	for day := fromDay; day <= toDay; day++ {
		lo, hi := 0, s.cfg.Grid.Slots
		if day == fromDay {
			lo = fromSlot
		}
		if day == toDay {
			hi = toSlot + 1
		}
		if w := ix.wm[day]; hi > w {
			hi = w
		}
		if lo >= hi {
			continue
		}
		// Collect stored cells for (day, spot, [lo, hi)) from blocks the
		// summaries admit, then the open tail.
		stored := make(map[int]Record, hi-lo)
		for _, b := range ix.blocks {
			if b.day != day || !b.overlaps(lo, hi) {
				continue
			}
			for _, r := range s.blockRecs(b) {
				if r.Spot == spot && r.Slot >= lo && r.Slot < hi {
					stored[r.Slot] = r
				}
			}
		}
		for _, r := range ix.pending {
			if r.Day == day && r.Spot == spot && r.Slot >= lo && r.Slot < hi {
				stored[r.Slot] = r
			}
		}
		for slot := lo; slot < hi; slot++ {
			p := Point{Time: s.TimeOf(day, slot), Day: day, Slot: slot}
			if r, ok := stored[slot]; ok {
				p.Label, p.Feats = r.Label, r.Feats
			} else {
				p.Feats, p.Label = s.emptyContext(spot)
				p.Empty = true
			}
			out = append(out, p)
		}
	}
	return out
}

// Tile is one heatmap cell: all spots whose position falls in the same
// TileMeters × TileMeters grid square, aggregated at one slot.
type Tile struct {
	Lat    float64               `json:"lat"` // tile center
	Lon    float64               `json:"lon"`
	Spots  int                   `json:"spots"`
	Labels [int(core.C4) + 1]int `json:"labels"` // spot count per context
	QLen   float64               `json:"qlen"`   // Σ L̄ over the tile's spots
	NArr   float64               `json:"narr"`
	NDep   float64               `json:"ndep"`
}

// Heatmap is the city-wide intensity grid at one recorded slot.
type Heatmap struct {
	Day        int       `json:"day"`
	Slot       int       `json:"slot"`
	Time       time.Time `json:"t"`
	TileMeters float64   `json:"tile_m"`
	Tiles      []Tile    `json:"tiles"`
}

// metersPerDegLat is the WGS-84 mean; longitude degrees shrink by
// cos(lat), applied at the dataset's mean latitude.
const metersPerDegLat = 111320.0

// Heatmap buckets every spot's context at the slot containing at into
// TileMeters-edge tiles; ok is false when that slot is not yet final (or
// precedes the grid). Empty spots count toward the tile's Spots and the
// empty context's label bucket but contribute zero intensity.
func (s *Store) Heatmap(at time.Time) (Heatmap, bool) {
	t0 := time.Now()
	defer s.met.qHeatmap.Since(t0)
	day, slot, ok := s.Locate(at)
	if !ok {
		return Heatmap{}, false
	}
	ix := s.pub.Load()
	if slot >= ix.wm[day] {
		return Heatmap{}, false
	}

	// Per-spot context at (day, slot): stored or synthesized-empty.
	labels := make([]core.QueueType, len(s.cfg.Spots))
	feats := make([]core.SlotFeatures, len(s.cfg.Spots))
	seen := make([]bool, len(s.cfg.Spots))
	for _, b := range ix.blocks {
		if b.day != day || !b.overlaps(slot, slot+1) {
			continue
		}
		for _, r := range s.blockRecs(b) {
			if r.Slot == slot {
				labels[r.Spot], feats[r.Spot], seen[r.Spot] = r.Label, r.Feats, true
			}
		}
	}
	for _, r := range ix.pending {
		if r.Day == day && r.Slot == slot {
			labels[r.Spot], feats[r.Spot], seen[r.Spot] = r.Label, r.Feats, true
		}
	}

	meanLat := 0.0
	for _, sp := range s.cfg.Spots {
		meanLat += sp.Pos.Lat
	}
	if len(s.cfg.Spots) > 0 {
		meanLat /= float64(len(s.cfg.Spots))
	}
	lonScale := metersPerDegLat * math.Cos(meanLat*math.Pi/180)

	type key struct{ y, x int }
	tiles := make(map[key]*Tile)
	for i, sp := range s.cfg.Spots {
		if !seen[i] {
			feats[i], labels[i] = s.emptyContext(i)
		}
		k := key{
			y: int(math.Floor(sp.Pos.Lat * metersPerDegLat / s.cfg.TileMeters)),
			x: int(math.Floor(sp.Pos.Lon * lonScale / s.cfg.TileMeters)),
		}
		t := tiles[k]
		if t == nil {
			t = &Tile{
				Lat: (float64(k.y) + 0.5) * s.cfg.TileMeters / metersPerDegLat,
				Lon: (float64(k.x) + 0.5) * s.cfg.TileMeters / lonScale,
			}
			tiles[k] = t
		}
		t.Spots++
		if int(labels[i]) < len(t.Labels) {
			t.Labels[labels[i]]++
		}
		t.QLen += feats[i].QLen
		t.NArr += feats[i].NArr
		t.NDep += feats[i].NDep
	}

	hm := Heatmap{Day: day, Slot: slot, Time: s.TimeOf(day, slot), TileMeters: s.cfg.TileMeters}
	hm.Tiles = make([]Tile, 0, len(tiles))
	for _, t := range tiles {
		hm.Tiles = append(hm.Tiles, *t)
	}
	sort.Slice(hm.Tiles, func(i, j int) bool {
		if hm.Tiles[i].Lat != hm.Tiles[j].Lat {
			return hm.Tiles[i].Lat < hm.Tiles[j].Lat
		}
		return hm.Tiles[i].Lon < hm.Tiles[j].Lon
	})
	return hm, true
}

// EmptyHeatmap returns a schema-complete zero heatmap for an instant the
// store cannot serve (outside the grid, or a slot no final data reached):
// Tiles is empty but non-nil so clients always receive an array, and
// Day/Slot carry the located indexes when the instant is inside the grid,
// -1 when it isn't. The serve layer uses this to answer out-of-range
// /heatmap?t queries with a valid body instead of an error.
func (s *Store) EmptyHeatmap(at time.Time) Heatmap {
	hm := Heatmap{Day: -1, Slot: -1, Time: at, TileMeters: s.cfg.TileMeters, Tiles: []Tile{}}
	if day, slot, ok := s.Locate(at); ok {
		hm.Day, hm.Slot = day, slot
		hm.Time = s.TimeOf(day, slot)
	}
	return hm
}

// TransitionMatrix counts how a spot's context label at slot j of one day
// maps to its label at the same slot the next day, over every recorded
// consecutive-day pair — the day-over-day stability view ("this spot is a
// taxi queue at 18:30 four days out of five").
type TransitionMatrix struct {
	Spot   int                                     `json:"spot"`
	Pairs  int                                     `json:"pairs"` // (slot, day→day+1) samples counted
	Counts [int(core.C4) + 1][int(core.C4) + 1]int `json:"counts"`
}

// Transitions builds spot's day-over-day label transition matrix from
// every pair of consecutive recorded days, over slots final in both.
func (s *Store) Transitions(spot int) TransitionMatrix {
	t0 := time.Now()
	defer s.met.qTransitions.Since(t0)
	m := TransitionMatrix{Spot: spot}
	if spot < 0 || spot >= len(s.cfg.Spots) {
		return m
	}
	ix := s.pub.Load()
	days := ix.days()
	if len(days) < 2 {
		return m
	}

	// labelsFor decodes one day's label-per-slot vector for the spot.
	_, emptyLabel := s.emptyContext(spot)
	labelsFor := func(day, below int) []core.QueueType {
		out := make([]core.QueueType, below)
		for i := range out {
			out[i] = emptyLabel
		}
		for _, b := range ix.blocks {
			if b.day != day || !b.overlaps(0, below) {
				continue
			}
			for _, r := range s.blockRecs(b) {
				if r.Spot == spot && r.Slot < below {
					out[r.Slot] = r.Label
				}
			}
		}
		for _, r := range ix.pending {
			if r.Day == day && r.Spot == spot && r.Slot < below {
				out[r.Slot] = r.Label
			}
		}
		return out
	}

	for i := 0; i+1 < len(days); i++ {
		d0, d1 := days[i], days[i+1]
		if d1 != d0+1 {
			continue
		}
		below := ix.wm[d0]
		if w := ix.wm[d1]; w < below {
			below = w
		}
		if below <= 0 {
			continue
		}
		l0 := labelsFor(d0, below)
		l1 := labelsFor(d1, below)
		for j := 0; j < below; j++ {
			m.Counts[l0[j]][l1[j]]++
			m.Pairs++
		}
	}
	return m
}

// Latest returns the newest final (day, slot); ok is false while nothing
// is recorded. The heatmap endpoint defaults to it.
func (s *Store) Latest() (day, slot int, ok bool) {
	ix := s.pub.Load()
	found := false
	for d, w := range ix.wm {
		if w <= 0 {
			continue
		}
		if !found || d > day {
			day, slot, found = d, w-1, true
		}
	}
	return day, slot, found
}
