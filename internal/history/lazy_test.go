package history

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"taxiqueue/internal/chaos"
	"taxiqueue/internal/core"
)

// sameRange compares two RangeSummary values bit-exactly: integer fields
// with ==, float sums by their IEEE-754 bits (so a +0/−0 or rounding
// discrepancy between the summary and decode paths cannot hide).
func sameRange(a, b RangeSummary) bool {
	return a.From.Equal(b.From) && a.To.Equal(b.To) &&
		a.Days == b.Days && a.Slots == b.Slots && a.Cells == b.Cells &&
		a.Stored == b.Stored && a.Empty == b.Empty && a.Labels == b.Labels &&
		math.Float64bits(a.WaitSum) == math.Float64bits(b.WaitSum) &&
		math.Float64bits(a.ArrSum) == math.Float64bits(b.ArrSum) &&
		math.Float64bits(a.QLenSum) == math.Float64bits(b.QLenSum) &&
		math.Float64bits(a.DepSum) == math.Float64bits(b.DepSum)
}

// assertRangeIdentity throws randomized ranges at one store and asserts
// the summary-served aggregate is bit-identical to the decode-everything
// baseline — including inverted ranges, sub-slot offsets, ranges starting
// before the grid and ranges reaching far past the newest record.
func assertRangeIdentity(t *testing.T, s *Store, seed int64, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	span := int64(6 * 24 * time.Hour)
	for i := 0; i < trials; i++ {
		from := s.Grid().Start.Add(time.Duration(rng.Int63n(2*span) - span/2))
		to := s.Grid().Start.Add(time.Duration(rng.Int63n(2*span) - span/2))
		if rng.Intn(8) == 0 {
			to = from.Add(time.Duration(rng.Int63n(int64(3 * time.Hour))))
		}
		fast, okF := s.rangeSummary(from, to, false)
		slow, okS := s.rangeSummary(from, to, true)
		if okF != okS {
			t.Fatalf("trial %d [%v, %v): fast ok=%v, decode ok=%v", i, from, to, okF, okS)
		}
		if !sameRange(fast, slow) {
			t.Fatalf("trial %d [%v, %v):\n  fast   %+v\n  decode %+v", i, from, to, fast, slow)
		}
	}
}

// TestRangeSummaryMatchesDecode is the bit-identity property test for the
// summary fast path: randomized ranges over a store holding partial
// blocks, bare watermark-only (all-empty) blocks, pending unflushed
// records, and — after a reopen — lazily materialized blocks.
func TestRangeSummaryMatchesDecode(t *testing.T) {
	cfg := testConfig(6)
	cfg.Dir = t.TempDir()
	cfg.BlockRecords = 24 // many blocks per day → plenty of partial overlaps
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	days := make([]map[[2]int]Record, 3)
	for d := range days {
		days[d] = fillDay(t, s, d, int64(500+d))
	}
	// Day 3: watermark-only (every appended slot empty).
	if err := s.AppendSlots(3, 0, 20, func(int, int) (core.SlotFeatures, core.QueueType) {
		return core.SlotFeatures{}, core.Unidentified
	}); err != nil {
		t.Fatal(err)
	}
	assertRangeIdentity(t, s, 1, 300)

	// Deterministic spot check: a full-day range must account for exactly
	// the cells fillDay planted.
	got, ok := s.RangeSummary(s.TimeOf(1, 0), s.TimeOf(2, 0))
	if !ok || got.Stored != len(days[1]) {
		t.Fatalf("day-1 range stored %d cells (ok=%v), want %d", got.Stored, ok, len(days[1]))
	}
	if got.Cells != s.Grid().Slots*s.Spots() || got.Empty != got.Cells-got.Stored {
		t.Fatalf("day-1 range cell accounting: %+v", got)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Unflushed pending records on top of the lazy blocks.
	fresh := 0
	if err := r.AppendSlots(4, 0, 10, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
		if (spot+slot)%3 != 0 {
			return core.SlotFeatures{}, core.Unidentified
		}
		fresh++
		return core.SlotFeatures{TWait: time.Minute, NArr: 2, QLen: 1.5, NDep: 1}, core.C1
	}); err != nil {
		t.Fatal(err)
	}
	if fresh == 0 {
		t.Fatal("no pending records planted")
	}
	assertRangeIdentity(t, r, 2, 300)

	st := r.Stats()
	if st.SummaryHits == 0 || st.SummaryMisses == 0 {
		t.Fatalf("property test did not exercise both paths: %+v", st)
	}
}

// TestLazyOpenMatchesEager opens the same durable directory lazily and
// eagerly and asserts every query answers identically — and that the lazy
// store really is disk-resident at open (summaries in memory, records
// behind file refs).
func TestLazyOpenMatchesEager(t *testing.T) {
	cfg := testConfig(5)
	cfg.Dir = t.TempDir()
	cfg.BlockRecords = 32
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		fillDay(t, s, d, int64(900+d))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	lazy, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()
	eagerCfg := cfg
	eagerCfg.EagerOpen = true
	eager, err := Open(eagerCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eager.Close()

	resident := 0
	for _, b := range lazy.pub.Load().blocks {
		if b.recs != nil {
			resident++
		} else if b.sum.Count > 0 && b.ref.Load() == nil {
			t.Fatal("disk-resident block with no file ref")
		}
	}
	if resident != 0 {
		t.Fatalf("lazy open left %d blocks resident", resident)
	}
	for _, b := range eager.pub.Load().blocks {
		if b.sum.Count > 0 && b.recs == nil {
			t.Fatal("eager open left a block unmaterialized")
		}
	}

	from, to := cfg.Grid.Start, cfg.Grid.Start.Add(4*24*time.Hour)
	for spot := 0; spot < lazy.Spots(); spot++ {
		lp, ep := lazy.Series(spot, from, to), eager.Series(spot, from, to)
		if len(lp) != len(ep) {
			t.Fatalf("spot %d: lazy %d points, eager %d", spot, len(lp), len(ep))
		}
		for i := range lp {
			if lp[i] != ep[i] {
				t.Fatalf("spot %d point %d: lazy %+v, eager %+v", spot, i, lp[i], ep[i])
			}
		}
		lm, em := lazy.Transitions(spot), eager.Transitions(spot)
		if lm != em {
			t.Fatalf("spot %d transitions: lazy %+v, eager %+v", spot, lm, em)
		}
	}
	for _, at := range []time.Time{lazy.TimeOf(0, 5), lazy.TimeOf(1, 30), lazy.TimeOf(2, 47)} {
		lh, lok := lazy.Heatmap(at)
		eh, eok := eager.Heatmap(at)
		if lok != eok || len(lh.Tiles) != len(eh.Tiles) {
			t.Fatalf("heatmap at %v: lazy ok=%v %d tiles, eager ok=%v %d tiles",
				at, lok, len(lh.Tiles), eok, len(eh.Tiles))
		}
		for i := range lh.Tiles {
			if lh.Tiles[i] != eh.Tiles[i] {
				t.Fatalf("heatmap tile %d: lazy %+v, eager %+v", i, lh.Tiles[i], eh.Tiles[i])
			}
		}
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		f := cfg.Grid.Start.Add(time.Duration(rng.Int63n(int64(4 * 24 * time.Hour))))
		u := f.Add(time.Duration(rng.Int63n(int64(48 * time.Hour))))
		ls, lok := lazy.RangeSummary(f, u)
		es, eok := eager.RangeSummary(f, u)
		if lok != eok || !sameRange(ls, es) {
			t.Fatalf("range [%v, %v): lazy %+v (ok=%v), eager %+v (ok=%v)", f, u, ls, lok, es, eok)
		}
	}
}

// TestBlockCacheEviction pins the decoded-block LRU at one block and
// scans across many: evictions must occur, repeated hits on one block
// must be served from cache, and answers stay correct throughout.
func TestBlockCacheEviction(t *testing.T) {
	cfg := testConfig(5)
	cfg.Dir = t.TempDir()
	cfg.BlockRecords = 24
	cfg.BlockCacheBlocks = 1
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := fillDay(t, s, 0, 77)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	verifyDay(t, r, 0, cells) // full scan across every block, cap 1
	if st := r.Stats(); st.BlockCacheEvictions == 0 {
		t.Fatalf("no evictions with a 1-block cache over %d blocks", st.Blocks)
	}
	// Hammer one narrow window: after the first materialization the single
	// cached block must serve the rest.
	before := r.Stats().BlockCacheHits
	for i := 0; i < 5; i++ {
		r.Series(0, r.TimeOf(0, 0), r.TimeOf(0, 1))
	}
	if after := r.Stats().BlockCacheHits; after == before {
		t.Fatal("repeated narrow scans never hit the block cache")
	}
	verifyDay(t, r, 0, cells)
}

// TestRotateWithLazyBlocks forces a generation rotate on a reopened store:
// the rewrite must fetch the disk-resident payloads it never decoded,
// re-point their refs at the fresh generation, and keep every read exact
// before, during and after — including across one more reopen.
func TestRotateWithLazyBlocks(t *testing.T) {
	faults := chaos.New(chaos.Config{Seed: 13, SyncErrProb: 1})
	faults.SetEnabled(false)
	cfg := testConfig(6)
	cfg.Dir = t.TempDir()
	cfg.BlockRecords = 24
	cfg.FS = faults.FS(nil)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day0 := fillDay(t, s, 0, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg) // day 0 now lazy
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	faults.SetEnabled(true) // every sync fails → the store owes a rewrite
	day1 := fillDay(t, r, 1, 5)
	_ = r.Flush()
	if r.Stats().WriteErrors == 0 {
		t.Fatal("no write errors under a 100% sync-fault disk")
	}
	faults.SetEnabled(false)
	if err := r.Flush(); err != nil { // heals: rotate rewrites every block
		t.Fatal(err)
	}
	verifyDay(t, r, 0, day0) // refs now point at the fresh generation
	verifyDay(t, r, 1, day1)

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if st := r2.Stats(); st.Truncations != 0 {
		t.Fatalf("rotated image reopened with %d truncations", st.Truncations)
	}
	verifyDay(t, r2, 0, day0)
	verifyDay(t, r2, 1, day1)
}
