package history

import "taxiqueue/internal/obs"

// metrics are the store's registry collectors. Stats() reads these same
// collectors, so /metrics and the JSON stats view cannot disagree.
type metrics struct {
	appends     *obs.Counter
	records     *obs.Counter
	blocks      *obs.Counter
	bytes       *obs.Gauge
	truncations *obs.Counter
	writeErrs   *obs.Counter

	qSeries      *obs.Histogram
	qHeatmap     *obs.Histogram
	qTransitions *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	q := func(kind string) *obs.Histogram {
		return reg.Histogram("history_query_seconds",
			"History query latency by query kind.",
			obs.DefBuckets, obs.Label{Name: "query", Value: kind})
	}
	return &metrics{
		appends: reg.Counter("history_appends_total",
			"Append batches applied to the history store."),
		records: reg.Counter("history_records_total",
			"Non-empty (spot, slot) cells recorded into history."),
		blocks: reg.Counter("history_blocks_total",
			"Columnar blocks sealed (encoded) by the history store."),
		bytes: reg.Gauge("history_bytes",
			"Encoded history bytes on disk (file headers + CRC-framed blocks)."),
		truncations: reg.Counter("history_truncations_total",
			"Recoveries that truncated a damaged history file tail."),
		writeErrs: reg.Counter("history_write_errors_total",
			"Failed history frame writes or syncs (generation rotated)."),
		qSeries:      q("series"),
		qHeatmap:     q("heatmap"),
		qTransitions: q("transitions"),
	}
}
