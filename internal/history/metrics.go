package history

import "taxiqueue/internal/obs"

// metrics are the store's registry collectors. Stats() reads these same
// collectors, so /metrics and the JSON stats view cannot disagree.
type metrics struct {
	appends     *obs.Counter
	records     *obs.Counter
	blocks      *obs.Counter
	bytes       *obs.Gauge
	truncations *obs.Counter
	writeErrs   *obs.Counter

	// Summary fast path: range aggregations served straight from block
	// summaries vs blocks that had to decode (partial range overlap).
	summaryHits   *obs.Counter
	summaryMisses *obs.Counter
	// Decoded-block LRU in front of the disk-resident blocks lazy Open
	// leaves behind.
	cacheHits      *obs.Counter
	cacheEvictions *obs.Counter

	qSeries      *obs.Histogram
	qHeatmap     *obs.Histogram
	qRange       *obs.Histogram
	qTransitions *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	q := func(kind string) *obs.Histogram {
		return reg.Histogram("history_query_seconds",
			"History query latency by query kind.",
			obs.DefBuckets, obs.Label{Name: "query", Value: kind})
	}
	return &metrics{
		appends: reg.Counter("history_appends_total",
			"Append batches applied to the history store."),
		records: reg.Counter("history_records_total",
			"Non-empty (spot, slot) cells recorded into history."),
		blocks: reg.Counter("history_blocks_total",
			"Columnar blocks sealed (encoded) by the history store."),
		bytes: reg.Gauge("history_bytes",
			"Encoded history bytes on disk (file headers + CRC-framed blocks)."),
		truncations: reg.Counter("history_truncations_total",
			"Recoveries that truncated a damaged history file tail."),
		writeErrs: reg.Counter("history_write_errors_total",
			"Failed history frame writes or syncs (generation rotated)."),
		summaryHits: reg.Counter("history_summary_hits_total",
			"Range-aggregation blocks served from their summary without decoding."),
		summaryMisses: reg.Counter("history_summary_misses_total",
			"Range-aggregation blocks that partially overlapped the range and decoded."),
		cacheHits: reg.Counter("history_block_cache_hits_total",
			"Disk-resident block reads served from the decoded-block cache."),
		cacheEvictions: reg.Counter("history_block_cache_evictions_total",
			"Decoded blocks evicted from the cold end of the block cache."),
		qSeries:      q("series"),
		qHeatmap:     q("heatmap"),
		qRange:       q("range"),
		qTransitions: q("transitions"),
	}
}
