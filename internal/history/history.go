// Package history is the embedded columnar time-series store for closed
// slot contexts — the analytics backend behind queued's /history, /heatmap
// and /transitions endpoints. The paper labels only the *current* slot;
// once a slot's finality watermark passes, its context existed nowhere but
// a soon-to-be-replaced snapshot. This package makes that context
// permanent and cheap to scan: every final (spot, slot) cell — the §5.2
// 5-tuple features plus the classified queue context — appends in slot
// order into fixed-size columnar blocks, each carrying a summary (slot
// range, per-label counts, feature aggregates) so range queries and
// heatmaps skip blocks without decoding their contents.
//
// Layout. A record is one (day, slot, spot) cell. Cells whose features are
// the zero 5-tuple are never stored: an empty slot's context is a pure
// function of the spot's thresholds, so the read side synthesizes it on
// demand and the encoded size tracks *activity*, not grid area (a few
// bytes per active cell, fractions of a byte amortized per grid cell).
// Within a block the payload is columnar — one delta/varint-packed column
// per field — and float features that are exactly derivable from raw
// counts (N_arr = waitN·Factor, N_dep = depN·Factor, L̄ from t̄wait and
// N_arr) are stored as the counts plus a derivation flag, falling back to
// explicit float64 bits only when the bit-exact reproduction check fails
// at encode time. Decoding is therefore lossless to the bit, which the
// equivalence tests assert field by field against both the live snapshot
// and the batch engine.
//
// Reads are lock-free, matching the repo's RCU serving style: every
// append publishes an immutable index (sealed blocks + the open tail +
// per-day watermarks) behind an atomic pointer; queries load the pointer
// once and walk plain memory. Writers serialize on an internal mutex that
// readers never touch.
//
// Durability rides the same store.FS seam as the ingest WAL, so the chaos
// harness's disk faults (short writes, fsync errors, silently torn tails)
// apply unchanged. Sealed blocks append to a generation file as
// CRC-framed records; recovery keeps the longest clean block prefix,
// truncates the rest, and counts the cut — a partially written block is
// never served. The ingest WAL replays the live day through the exact
// live path on restart, and the store's per-day watermark makes
// re-appends idempotent, so a recovered prefix plus a replay converges to
// the fault-free history.
package history

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/obs"
	"taxiqueue/internal/store"
)

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("history: store closed")

// Record is one decoded (day, slot, spot) cell: the classified context and
// the §5.2 feature 5-tuple behind it.
type Record struct {
	Day   int
	Slot  int
	Spot  int
	Label core.QueueType
	Feats core.SlotFeatures
}

// Config parameterizes a Store.
type Config struct {
	// Grid is the slot partition a day of history is laid out over.
	// Required. Day d, slot j covers the interval starting at
	// Grid.Start + d·(Slots·SlotLen) + j·SlotLen.
	Grid core.SlotGrid
	// Spots are the queue spots cells are recorded for (positions feed the
	// heatmap tiles). Required.
	Spots []core.QueueSpot
	// Thresholds are the per-spot QCD thresholds, indexed like Spots;
	// needed to synthesize the context of empty (unstored) cells exactly.
	Thresholds []core.Thresholds
	// Amplify is the §6.2.1 coverage correction the recorded features were
	// computed under; the count-derivation codec reproduces floats from it.
	Amplify core.Amplification
	// Dir enables durability: sealed blocks append to generation files
	// under it. Empty keeps the store memory-only.
	Dir string
	// FS is the filesystem writes go through; store.OS when nil. The
	// chaos harness injects disk faults here. Reads and truncation use the
	// real filesystem, like the WAL.
	FS store.FS
	// BlockRecords seals the open tail into an encoded block once it holds
	// this many records; 512 when 0.
	BlockRecords int
	// BlockCacheBlocks bounds the decoded-block LRU that fronts
	// disk-resident blocks after a lazy Open; 64 when 0.
	BlockCacheBlocks int
	// EagerOpen decodes every recovered block at Open, restoring the
	// pre-lazy resident behavior (every CRC check still runs either way).
	// Identity tests and the open-cost benchmarks compare against it.
	EagerOpen bool
	// TileMeters is the heatmap tile edge length; 400 m when 0.
	TileMeters float64
	// Metrics is the registry the store's collectors live in; a private
	// registry when nil.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.BlockRecords == 0 {
		c.BlockRecords = 512
	}
	if c.TileMeters == 0 {
		c.TileMeters = 400
	}
	if c.Amplify.Factor == 0 {
		c.Amplify = core.NoAmplification
	}
	if c.BlockCacheBlocks == 0 {
		c.BlockCacheBlocks = 64
	}
	if c.FS == nil {
		c.FS = store.OS
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// index is one immutable published read view: sealed blocks, the open
// (not yet sealed) tail, and the per-day appended-below watermarks.
// Queries load it with a single atomic pointer read and never see a
// half-applied append.
type index struct {
	blocks  []*block
	pending []Record
	// wm[day] is the appended-below slot watermark: every slot of the day
	// strictly below it is fully recorded (stored or provably empty).
	wm map[int]int
}

// days returns the recorded day indexes in ascending order.
func (ix *index) days() []int {
	out := make([]int, 0, len(ix.wm))
	for d := range ix.wm {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// emptyCell is one spot's synthesized no-activity context, computed once.
type emptyCell struct {
	once  sync.Once
	label core.QueueType
}

// Store is the embedded history store. Appends are safe for concurrent
// use (serialized internally); reads are lock-free against the published
// index.
type Store struct {
	cfg     Config
	slotSec float64
	dayLen  time.Duration
	met     *metrics

	pub atomic.Pointer[index]

	// cache fronts disk-resident (lazily recovered) blocks with decoded
	// records; see lazy.go.
	cache *blockCache

	empty []emptyCell

	mu      sync.Mutex
	blocks  []*block
	pending []Record
	wm      map[int]int
	// persistedWM mirrors wm but only advances when a block carrying the
	// watermark is sealed, so Flush knows whether a day still owes a bare
	// watermark block (an empty tail of slots that produced no records).
	persistedWM map[int]int
	closed      bool

	// Durability state; untouched when cfg.Dir is empty.
	file store.File
	gen  int // next generation number to create
	// durable counts the leading blocks persisted (and synced) on disk;
	// only meaningful while needRewrite is false.
	durable  int
	genFiles []string
	bytes    int64
	// needRewrite is set after a failed frame write or sync: the current
	// generation file has an untrustworthy tail, so the next seal rewrites
	// every block into a fresh generation (see rotateLocked).
	needRewrite bool
}

// Open builds a store from cfg, recovering any generation files under
// cfg.Dir (tolerantly: a torn or corrupt tail keeps the longest clean
// block prefix and counts the truncation).
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Grid.Slots == 0 {
		return nil, errors.New("history: Grid must be set")
	}
	if len(cfg.Thresholds) != len(cfg.Spots) {
		return nil, fmt.Errorf("history: %d spots but %d thresholds", len(cfg.Spots), len(cfg.Thresholds))
	}
	s := &Store{
		cfg:         cfg,
		slotSec:     cfg.Grid.SlotLen.Seconds(),
		dayLen:      time.Duration(cfg.Grid.Slots) * cfg.Grid.SlotLen,
		met:         newMetrics(cfg.Metrics),
		empty:       make([]emptyCell, len(cfg.Spots)),
		wm:          make(map[int]int),
		persistedWM: make(map[int]int),
	}
	s.cache = newBlockCache(cfg.BlockCacheBlocks, s.met)
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("history: dir: %w", err)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
		if cfg.EagerOpen {
			// Decode every recovered block up front and pin the records in
			// the block itself, bypassing the cache.
			for _, b := range s.blocks {
				if b.sum.Count > 0 && b.recs == nil {
					b.recs = s.materialize(b)
				}
			}
		}
	}
	for _, b := range s.blocks {
		s.met.blocks.Inc()
		s.met.records.Add(int64(b.sum.Count))
		if b.coveredBelow > s.wm[b.day] {
			s.wm[b.day] = b.coveredBelow
		}
	}
	for d, w := range s.wm {
		s.persistedWM[d] = w
	}
	s.durable = len(s.blocks)
	s.met.bytes.Set(s.bytes)
	s.publishLocked()
	return s, nil
}

// emptyContext returns spot's synthesized no-activity cell: the zero
// feature 5-tuple and the label Classify assigns it under the spot's
// thresholds — identical to what the batch engine and the live aggregator
// produce for a slot nobody fed.
func (s *Store) emptyContext(spot int) (core.SlotFeatures, core.QueueType) {
	e := &s.empty[spot]
	e.once.Do(func() {
		e.label = core.Classify([]core.SlotFeatures{{}}, s.cfg.Thresholds[spot])[0]
	})
	return core.SlotFeatures{}, e.label
}

// Grid returns the store's slot grid.
func (s *Store) Grid() core.SlotGrid { return s.cfg.Grid }

// Spots returns how many queue spots the store records.
func (s *Store) Spots() int { return len(s.cfg.Spots) }

// DayLen is the span one day index covers (Slots · SlotLen).
func (s *Store) DayLen() time.Duration { return s.dayLen }

// TimeOf returns the start instant of (day, slot).
func (s *Store) TimeOf(day, slot int) time.Time {
	return s.cfg.Grid.Start.Add(time.Duration(day)*s.dayLen + time.Duration(slot)*s.cfg.Grid.SlotLen)
}

// Locate maps an instant onto (day, slot); ok is false before the grid
// start.
func (s *Store) Locate(t time.Time) (day, slot int, ok bool) {
	d := t.Sub(s.cfg.Grid.Start)
	if d < 0 {
		return 0, 0, false
	}
	return int(d / s.dayLen), int((d % s.dayLen) / s.cfg.Grid.SlotLen), true
}

// Watermark returns day's appended-below slot: every slot strictly below
// it is recorded (0 when the day is absent).
func (s *Store) Watermark(day int) int { return s.pub.Load().wm[day] }

// Days returns the recorded day indexes in ascending order.
func (s *Store) Days() []int { return s.pub.Load().days() }

// AppendSlots records every cell of slots [lo, hi) of one day, reading
// each (spot, slot) context from at. Slots already appended (below the
// day's watermark) are skipped, so racing appenders and WAL replays are
// exactly idempotent; cells whose features are the zero 5-tuple are
// elided (the read side synthesizes them). The new cells join the open
// tail, which seals into encoded blocks at Config.BlockRecords and
// appends them durably when the store has a directory.
func (s *Store) AppendSlots(day, lo, hi int, at func(spot, slot int) (core.SlotFeatures, core.QueueType)) error {
	if hi > s.cfg.Grid.Slots {
		hi = s.cfg.Grid.Slots
	}
	if lo < 0 {
		lo = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if w := s.wm[day]; w > lo {
		lo = w
	}
	if lo >= hi {
		return nil
	}
	appended := 0
	for slot := lo; slot < hi; slot++ {
		for spot := range s.cfg.Spots {
			f, l := at(spot, slot)
			if f == (core.SlotFeatures{}) {
				continue // synthesized at read time; see emptyContext
			}
			s.pending = append(s.pending, Record{Day: day, Slot: slot, Spot: spot, Label: l, Feats: f})
			appended++
		}
	}
	s.wm[day] = hi
	s.met.appends.Inc()
	s.met.records.Add(int64(appended))
	s.sealFullLocked()
	s.publishLocked()
	return nil
}

// Append records pre-built cells (the tooling and test entry point; the
// live path uses AppendSlots). Records at slots already below their day's
// watermark are dropped (idempotence); each surviving record advances the
// watermark to just past its slot.
func (s *Store) Append(recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	kept := 0
	for _, r := range recs {
		if r.Slot < 0 || r.Slot >= s.cfg.Grid.Slots || r.Spot < 0 || r.Spot >= len(s.cfg.Spots) {
			continue
		}
		if r.Slot < s.wm[r.Day] {
			continue
		}
		if r.Feats != (core.SlotFeatures{}) {
			s.pending = append(s.pending, r)
			kept++
		}
		s.wm[r.Day] = r.Slot + 1
	}
	s.met.appends.Inc()
	s.met.records.Add(int64(kept))
	s.sealFullLocked()
	s.publishLocked()
	return nil
}

// pendingRunLocked returns how many leading pending records share the
// first record's day — the largest run a single block may take, since a
// block never spans days.
func (s *Store) pendingRunLocked() int {
	day := s.pending[0].Day
	for i := range s.pending {
		if s.pending[i].Day != day {
			return i
		}
	}
	return len(s.pending)
}

// coveredLocked computes the coveredBelow claim for sealing
// s.pending[:cut] of day: the first later pending record of the same day
// bounds it (that slot is not yet fully sealed); otherwise the day's
// watermark is exact.
func (s *Store) coveredLocked(day, cut int) int {
	for _, r := range s.pending[cut:] {
		if r.Day == day {
			return r.Slot
		}
	}
	return s.wm[day]
}

// sealFullLocked cuts BlockRecords-sized blocks off the open tail.
func (s *Store) sealFullLocked() {
	for len(s.pending) > 0 {
		run := s.pendingRunLocked()
		if run < s.cfg.BlockRecords {
			return
		}
		cut := s.cfg.BlockRecords
		day := s.pending[0].Day
		s.sealLocked(day, s.pending[:cut], s.coveredLocked(day, cut))
		s.pending = append(s.pending[:0:0], s.pending[cut:]...)
	}
}

// sealLocked encodes one block (possibly empty: a bare watermark carrier)
// and appends it to the store and, when durable, to the generation file.
func (s *Store) sealLocked(day int, recs []Record, coveredBelow int) {
	b := encodeBlock(day, recs, coveredBelow, s.cfg.Amplify, s.slotSec)
	s.blocks = append(s.blocks, b)
	s.met.blocks.Inc()
	if coveredBelow > s.persistedWM[day] {
		s.persistedWM[day] = coveredBelow
	}
	if s.cfg.Dir != "" {
		s.persistLocked(b)
	}
}

// Flush seals the open tail (whatever its size), persists any watermark
// advance that produced no records as a bare watermark block, and syncs
// the generation file — the durability barrier the ingest service invokes
// at end of feed. Callers without a Dir get the seal (and the published
// blocks) only.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.flushLocked()
	s.publishLocked()
	return nil
}

// flushLocked seals everything pending plus owed watermark blocks.
func (s *Store) flushLocked() {
	for len(s.pending) > 0 {
		run := s.pendingRunLocked()
		day := s.pending[0].Day
		s.sealLocked(day, s.pending[:run], s.coveredLocked(day, run))
		s.pending = append(s.pending[:0:0], s.pending[run:]...)
	}
	// A day whose newest appended slots were all empty produced no
	// records; a bare watermark block makes the "fully recorded below"
	// claim durable so a restart serves those slots as final empties.
	days := make([]int, 0, len(s.wm))
	for day := range s.wm {
		days = append(days, day)
	}
	sort.Ints(days)
	for _, day := range days {
		if w := s.wm[day]; w > s.persistedWM[day] {
			s.sealLocked(day, nil, w)
		}
	}
	if s.cfg.Dir != "" {
		s.syncLocked()
	}
}

// publishLocked swaps in a fresh immutable index.
func (s *Store) publishLocked() {
	wm := make(map[int]int, len(s.wm))
	for d, w := range s.wm {
		wm[d] = w
	}
	s.pub.Store(&index{
		blocks:  s.blocks[:len(s.blocks):len(s.blocks)],
		pending: append([]Record(nil), s.pending...),
		wm:      wm,
	})
}

// Close flushes and closes the generation file. Further appends return
// ErrClosed; reads keep serving the final published index.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.flushLocked()
	s.publishLocked()
	s.closed = true
	if s.file != nil {
		err := s.file.Close()
		s.file = nil
		return err
	}
	return nil
}

// Stats is the store's counter snapshot; every field reads the same
// registry collector /metrics renders, so the two views cannot disagree.
type Stats struct {
	Appends     int64 `json:"appends"`      // AppendSlots/Append calls applied
	Records     int64 `json:"records"`      // non-empty cells recorded
	Blocks      int64 `json:"blocks"`       // sealed encoded blocks
	Bytes       int64 `json:"bytes"`        // encoded bytes on disk (header + frames)
	Truncations int64 `json:"truncations"`  // recoveries that cut a damaged tail
	WriteErrors int64 `json:"write_errors"` // failed frame writes/syncs (rotated away)

	SummaryHits         int64 `json:"summary_hits"`          // range blocks served summary-only
	SummaryMisses       int64 `json:"summary_misses"`        // range blocks that had to decode
	BlockCacheHits      int64 `json:"block_cache_hits"`      // decoded-block cache hits
	BlockCacheEvictions int64 `json:"block_cache_evictions"` // decoded-block cache evictions
}

// Stats snapshots the collectors.
func (s *Store) Stats() Stats {
	return Stats{
		Appends:             s.met.appends.Value(),
		Records:             s.met.records.Value(),
		Blocks:              s.met.blocks.Value(),
		Bytes:               s.met.bytes.Value(),
		Truncations:         s.met.truncations.Value(),
		WriteErrors:         s.met.writeErrs.Value(),
		SummaryHits:         s.met.summaryHits.Value(),
		SummaryMisses:       s.met.summaryMisses.Value(),
		BlockCacheHits:      s.met.cacheHits.Value(),
		BlockCacheEvictions: s.met.cacheEvictions.Value(),
	}
}
