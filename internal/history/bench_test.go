package history

import (
	"math/rand"
	"testing"
	"time"

	"taxiqueue/internal/core"
)

// benchDay pre-generates one day of pipeline-shaped cells for nspots
// spots at the given density.
func benchDay(nspots int, density float64, seed int64) (Config, map[[2]int]Record) {
	cfg := testConfig(nspots)
	rng := rand.New(rand.NewSource(seed))
	slotSec := cfg.Grid.SlotLen.Seconds()
	cells := make(map[[2]int]Record)
	for slot := 0; slot < cfg.Grid.Slots; slot++ {
		for spot := 0; spot < nspots; spot++ {
			if rng.Float64() < density {
				f, l := randFeats(rng, core.PaperAmplification, slotSec)
				cells[[2]int{spot, slot}] = Record{Slot: slot, Spot: spot, Label: l, Feats: f}
			}
		}
	}
	return cfg, cells
}

// BenchmarkHistoryAppend measures the live-path ingestion seam: one
// AppendSlots watermark advance of a full day across 50 spots, encode and
// seal included (no disk).
func BenchmarkHistoryAppend(b *testing.B) {
	cfg, cells := benchDay(50, 0.4, 1)
	at := func(spot, slot int) (core.SlotFeatures, core.QueueType) {
		if r, ok := cells[[2]int{spot, slot}]; ok {
			return r.Feats, r.Label
		}
		return core.SlotFeatures{}, core.Unidentified
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.AppendSlots(0, 0, cfg.Grid.Slots, at); err != nil {
			b.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cells)), "cells/op")
}

// benchStore loads days full days into a store for the read benchmarks.
func benchStore(b *testing.B, nspots, days int) *Store {
	b.Helper()
	cfg, cells := benchDay(nspots, 0.4, 2)
	s, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for d := 0; d < days; d++ {
		day := d
		err := s.AppendSlots(day, 0, cfg.Grid.Slots, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
			if r, ok := cells[[2]int{spot, slot}]; ok {
				return r.Feats, r.Label
			}
			return core.SlotFeatures{}, core.Unidentified
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkHistoryRange measures one /history-shaped scan: a random
// 12-hour window of one spot's series out of a week of 50 spots.
func BenchmarkHistoryRange(b *testing.B) {
	s := benchStore(b, 50, 7)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spot := rng.Intn(s.Spots())
		day := rng.Intn(7)
		lo := rng.Intn(24)
		from := s.TimeOf(day, lo)
		pts := s.Series(spot, from, from.Add(12*time.Hour))
		if len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkHistoryHeatmap measures one /heatmap-shaped aggregation: all
// 50 spots tiled at a random recorded slot.
func BenchmarkHistoryHeatmap(b *testing.B) {
	s := benchStore(b, 50, 7)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := s.TimeOf(rng.Intn(7), rng.Intn(s.Grid().Slots))
		if _, ok := s.Heatmap(at); !ok {
			b.Fatal("heatmap miss on a recorded slot")
		}
	}
}
