package history

import (
	"math/rand"
	"testing"
	"time"

	"taxiqueue/internal/core"
)

// benchDay pre-generates one day of pipeline-shaped cells for nspots
// spots at the given density.
func benchDay(nspots int, density float64, seed int64) (Config, map[[2]int]Record) {
	cfg := testConfig(nspots)
	rng := rand.New(rand.NewSource(seed))
	slotSec := cfg.Grid.SlotLen.Seconds()
	cells := make(map[[2]int]Record)
	for slot := 0; slot < cfg.Grid.Slots; slot++ {
		for spot := 0; spot < nspots; spot++ {
			if rng.Float64() < density {
				f, l := randFeats(rng, core.PaperAmplification, slotSec)
				cells[[2]int{spot, slot}] = Record{Slot: slot, Spot: spot, Label: l, Feats: f}
			}
		}
	}
	return cfg, cells
}

// BenchmarkHistoryAppend measures the live-path ingestion seam: one
// AppendSlots watermark advance of a full day across 50 spots, encode and
// seal included (no disk).
func BenchmarkHistoryAppend(b *testing.B) {
	cfg, cells := benchDay(50, 0.4, 1)
	at := func(spot, slot int) (core.SlotFeatures, core.QueueType) {
		if r, ok := cells[[2]int{spot, slot}]; ok {
			return r.Feats, r.Label
		}
		return core.SlotFeatures{}, core.Unidentified
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.AppendSlots(0, 0, cfg.Grid.Slots, at); err != nil {
			b.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cells)), "cells/op")
}

// benchStore loads days full days into a store for the read benchmarks.
func benchStore(b *testing.B, nspots, days int) *Store {
	b.Helper()
	cfg, cells := benchDay(nspots, 0.4, 2)
	s, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for d := 0; d < days; d++ {
		day := d
		err := s.AppendSlots(day, 0, cfg.Grid.Slots, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
			if r, ok := cells[[2]int{spot, slot}]; ok {
				return r.Feats, r.Label
			}
			return core.SlotFeatures{}, core.Unidentified
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkHistoryRange measures one /history-shaped scan: a random
// 12-hour window of one spot's series out of a week of 50 spots.
func BenchmarkHistoryRange(b *testing.B) {
	s := benchStore(b, 50, 7)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spot := rng.Intn(s.Spots())
		day := rng.Intn(7)
		lo := rng.Intn(24)
		from := s.TimeOf(day, lo)
		pts := s.Series(spot, from, from.Add(12*time.Hour))
		if len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkHistoryHeatmap measures one /heatmap-shaped aggregation: all
// 50 spots tiled at a random recorded slot.
func BenchmarkHistoryHeatmap(b *testing.B) {
	s := benchStore(b, 50, 7)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := s.TimeOf(rng.Intn(7), rng.Intn(s.Grid().Slots))
		if _, ok := s.Heatmap(at); !ok {
			b.Fatal("heatmap miss on a recorded slot")
		}
	}
}

// benchDir writes gens generation files of days full days each and
// returns the config to reopen them — the dashboard-shaped fixture for
// the range and cold-open benchmarks.
func benchDir(b *testing.B, nspots, days, gens int) Config {
	b.Helper()
	cfg, cells := benchDay(nspots, 0.4, 2)
	cfg.Dir = b.TempDir()
	at := func(spot, slot int) (core.SlotFeatures, core.QueueType) {
		if r, ok := cells[[2]int{spot, slot}]; ok {
			return r.Feats, r.Label
		}
		return core.SlotFeatures{}, core.Unidentified
	}
	for g := 0; g < gens; g++ {
		s, err := Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for d := g * days; d < (g+1)*days; d++ {
			if err := s.AppendSlots(d, 0, cfg.Grid.Slots, at); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	return cfg
}

// benchReopen opens the fixture directory (lazily unless cfg says
// otherwise) for the range benchmarks.
func benchReopen(b *testing.B, cfg Config) *Store {
	b.Helper()
	s, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkHistoryHeatmapRange measures the /heatmap?from&to fast path:
// a random dashboard-shaped week ("day d through d+7") aggregated
// city-wide over a month of 50 spots, served from block summaries without
// materializing a single disk-resident block.
func BenchmarkHistoryHeatmapRange(b *testing.B) {
	s := benchReopen(b, benchDir(b, 50, 6, 5))
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := s.TimeOf(rng.Intn(20), 0)
		if _, ok := s.RangeSummary(from, from.Add(7*24*time.Hour)); !ok {
			b.Fatal("range miss")
		}
	}
}

// BenchmarkHistoryHeatmapRangeDecode is the decode-everything baseline
// BenchmarkHistoryHeatmapRange is judged against: the identical aggregate
// with the summary fast path disabled, so every overlapping block
// materializes and folds record by record.
func BenchmarkHistoryHeatmapRangeDecode(b *testing.B) {
	s := benchReopen(b, benchDir(b, 50, 6, 5))
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := s.TimeOf(rng.Intn(20), 0)
		if _, ok := s.rangeSummary(from, from.Add(7*24*time.Hour), true); !ok {
			b.Fatal("range miss")
		}
	}
}

// BenchmarkHistorySeriesWide measures a wide /history span: one spot's
// full month of slots decoded through the block cache.
func BenchmarkHistorySeriesWide(b *testing.B) {
	s := benchReopen(b, benchDir(b, 50, 6, 5))
	from := s.Grid().Start
	to := from.Add(30 * 24 * time.Hour)
	rng := rand.New(rand.NewSource(6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := s.Series(rng.Intn(s.Spots()), from, to); len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkHistoryOpenCold measures a cold lazy Open over a
// multi-generation month: every frame CRC-checked, only summaries
// decoded.
func BenchmarkHistoryOpenCold(b *testing.B) {
	cfg := benchDir(b, 50, 6, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistoryOpenColdEager is the pre-lazy baseline: the same open
// with every block decoded to records up front.
func BenchmarkHistoryOpenColdEager(b *testing.B) {
	cfg := benchDir(b, 50, 6, 5)
	cfg.EagerOpen = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
