package history

import (
	"math"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/obs"
)

// testConfig builds a small store config: a 48-slot grid, nspots spots
// scattered around the island, paper amplification.
func testConfig(nspots int) Config {
	start := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	spots := make([]core.QueueSpot, nspots)
	ths := make([]core.Thresholds, nspots)
	for i := range spots {
		spots[i] = core.QueueSpot{
			Pos:  geo.Point{Lat: 1.28 + 0.01*float64(i%7), Lon: 103.8 + 0.008*float64(i/7)},
			Zone: citymap.Central,
		}
		ths[i] = core.Thresholds{
			EtaWait: 5 * time.Minute, EtaDep: time.Minute,
			TauArr: 6, TauDep: 30, EtaDur: 27 * time.Minute, TauRatio: 0.5,
		}
	}
	return Config{
		Grid:       core.DaySlots(start),
		Spots:      spots,
		Thresholds: ths,
		Amplify:    core.PaperAmplification,
	}
}

// randFeats draws one plausible non-zero cell. Most draws exercise the
// count-derivation + formula-replay fast paths (stream- or batch-shaped
// QLen from derivable counts); a minority are adversarial floats that
// must fall back to explicit encoding.
func randFeats(rng *rand.Rand, amp core.Amplification, slotSec float64) (core.SlotFeatures, core.QueueType) {
	var f core.SlotFeatures
	switch rng.Intn(10) {
	case 0: // adversarial: nothing derivable
		f.TWait = time.Duration(rng.Int63n(int64(20 * time.Minute)))
		f.NArr = rng.Float64() * 50
		f.NDep = rng.Float64() * 80
		f.QLen = rng.Float64() * 10
		f.TDep = time.Duration(rng.Int63n(int64(3 * time.Minute)))
		f.StreetDepartures = rng.Intn(40)
		f.BookingDepartures = rng.Intn(40)
	default: // shaped like the live/batch pipelines produce
		waitN := 1 + rng.Intn(60)
		depN := rng.Intn(90)
		street := 0
		if depN > 0 {
			street = rng.Intn(depN + 1)
		}
		f.TWait = time.Duration(rng.Int63n(int64(20*time.Minute)) + 1)
		f.NArr = float64(waitN) * amp.Factor
		f.NDep = float64(depN) * amp.Factor
		if rng.Intn(2) == 0 {
			f.QLen = f.TWait.Seconds() * f.NArr / slotSec // stream shape
		} else {
			lambda := f.NArr / slotSec
			f.QLen = f.TWait.Seconds() * lambda // batch shape
		}
		if depN > 0 {
			f.TDep = time.Duration(float64(rng.Int63n(int64(2*time.Minute))+1) * amp.IntervalFactor)
		}
		f.StreetDepartures = street
		f.BookingDepartures = depN - street
	}
	return f, core.QueueType(rng.Intn(int(core.C4) + 1))
}

// fillDay appends a full day of randomized cells (sparse: ~40% of cells
// active) through AppendSlots, mimicking watermark-advance batches.
func fillDay(t *testing.T, s *Store, day int, seed int64) map[[2]int]Record {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	grid := s.Grid()
	cells := make(map[[2]int]Record)
	at := func(spot, slot int) (core.SlotFeatures, core.QueueType) {
		r, ok := cells[[2]int{spot, slot}]
		if !ok {
			return core.SlotFeatures{}, core.Unidentified
		}
		return r.Feats, r.Label
	}
	for slot := 0; slot < grid.Slots; slot++ {
		for spot := 0; spot < s.Spots(); spot++ {
			if rng.Float64() < 0.4 {
				f, l := randFeats(rng, s.cfg.Amplify, grid.SlotLen.Seconds())
				cells[[2]int{spot, slot}] = Record{Day: day, Slot: slot, Spot: spot, Label: l, Feats: f}
			}
		}
	}
	// Deliver in uneven watermark advances, with overlapping re-appends to
	// prove idempotence.
	lo := 0
	for lo < grid.Slots {
		hi := lo + 1 + rng.Intn(7)
		if hi > grid.Slots {
			hi = grid.Slots
		}
		if err := s.AppendSlots(day, 0, hi, at); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendSlots(day, lo, hi, at); err != nil { // duplicate
			t.Fatal(err)
		}
		lo = hi
	}
	return cells
}

// verifyDay asserts the decoded series matches cells byte-for-field.
func verifyDay(t *testing.T, s *Store, day int, cells map[[2]int]Record) {
	t.Helper()
	grid := s.Grid()
	from := s.TimeOf(day, 0)
	to := from.Add(s.DayLen())
	for spot := 0; spot < s.Spots(); spot++ {
		pts := s.Series(spot, from, to)
		if len(pts) != grid.Slots {
			t.Fatalf("spot %d: %d points, want %d", spot, len(pts), grid.Slots)
		}
		for j, p := range pts {
			if p.Slot != j || p.Day != day {
				t.Fatalf("spot %d point %d at (day %d, slot %d)", spot, j, p.Day, p.Slot)
			}
			want, active := cells[[2]int{spot, j}]
			if active {
				if p.Empty {
					t.Fatalf("spot %d slot %d served empty, want stored cell", spot, j)
				}
				if p.Label != want.Label || p.Feats != want.Feats {
					t.Fatalf("spot %d slot %d decoded\n  %v %+v\nwant\n  %v %+v",
						spot, j, p.Label, p.Feats, want.Label, want.Feats)
				}
			} else {
				if !p.Empty {
					t.Fatalf("spot %d slot %d served a cell, want empty", spot, j)
				}
				ef, el := s.emptyContext(spot)
				if p.Feats != ef || p.Label != el {
					t.Fatalf("spot %d slot %d empty context %v %+v, want %v %+v",
						spot, j, p.Label, p.Feats, el, ef)
				}
			}
		}
	}
}

// TestSeriesFarFutureClamp is the regression test for the unbounded day
// scan: Series used to iterate every day in [from, to] even when `to`
// lay centuries past the newest record, walking ~350M empty days per
// request. The scan must clamp at the newest recorded day — O(data),
// not O(requested range) — and still return exactly the stored points.
func TestSeriesFarFutureClamp(t *testing.T) {
	s, err := Open(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	cells := fillDay(t, s, 0, 17)
	grid := s.Grid()
	far := time.Date(2999, 1, 1, 0, 0, 0, 0, time.UTC)

	// An unclamped scan walks every empty day up to `far` (capped only by
	// Duration saturation at ~106K days) on EVERY query — ~1 ms each vs
	// microseconds clamped. 1000 queries separate the two by ~60×.
	start := time.Now()
	var pts []Point
	for i := 0; i < 1000; i++ {
		pts = s.Series(1, grid.Start, far)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("1000 far-future Series calls took %v — day scan is not clamped", elapsed)
	}
	if len(pts) != grid.Slots {
		t.Fatalf("%d points, want the recorded day's %d", len(pts), grid.Slots)
	}
	for j, p := range pts {
		if p.Day != 0 || p.Slot != j {
			t.Fatalf("point %d at (day %d, slot %d)", j, p.Day, p.Slot)
		}
		if want, active := cells[[2]int{1, j}]; active && (p.Label != want.Label || p.Feats != want.Feats) {
			t.Fatalf("slot %d decoded %v %+v, want %v %+v", j, p.Label, p.Feats, want.Label, want.Feats)
		}
	}

	// An empty store short-circuits entirely.
	empty, err := Open(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if pts := empty.Series(0, grid.Start, far); pts != nil {
		t.Fatalf("empty store returned %d points", len(pts))
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("empty-store far-future Series took %v", elapsed)
	}
}

// TestEncodeRoundtrip seals randomized blocks and asserts decodeBlock
// reproduces every record and summary field exactly.
func TestEncodeRoundtrip(t *testing.T) {
	cfg := testConfig(5).withDefaults()
	slotSec := cfg.Grid.SlotLen.Seconds()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(600)
		recs := make([]Record, n)
		for i := range recs {
			f, l := randFeats(rng, cfg.Amplify, slotSec)
			recs[i] = Record{
				Day: rng.Intn(3), Slot: rng.Intn(cfg.Grid.Slots),
				Spot: rng.Intn(len(cfg.Spots)), Label: l, Feats: f,
			}
			recs[i].Day = 1 // blocks never span days
		}
		b := encodeBlock(1, recs, 48, cfg.Amplify, slotSec)
		got, err := decodeBlock(b.payload, cfg.Amplify, slotSec)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if got.day != 1 || got.coveredBelow != 48 || got.sum != b.sum {
			t.Fatalf("trial %d: header/summary mismatch: %+v vs %+v", trial, got.sum, b.sum)
		}
		if len(got.recs) != len(b.recs) {
			t.Fatalf("trial %d: %d records, want %d", trial, len(got.recs), len(b.recs))
		}
		for i := range got.recs {
			if got.recs[i] != b.recs[i] {
				t.Fatalf("trial %d record %d:\n  %+v\nwant\n  %+v", trial, i, got.recs[i], b.recs[i])
			}
		}
	}
}

// TestEncodeSize asserts the headline compactness claim on
// pipeline-shaped data: ≤ 16 bytes per (slot, spot) grid cell for a
// realistic sparse day, counting empty cells as stored-for-free.
func TestEncodeSize(t *testing.T) {
	s, err := Open(testConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	fillDay(t, s, 0, 7)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range s.pub.Load().blocks {
		total += len(frameBytes(b.payload))
	}
	cells := s.Grid().Slots * s.Spots()
	perCell := float64(total) / float64(cells)
	t.Logf("encoded %d bytes for %d grid cells = %.2f bytes/slot/spot", total, cells, perCell)
	if perCell > 16 {
		t.Fatalf("%.2f bytes/slot/spot exceeds the 16-byte budget", perCell)
	}
}

// TestAppendIdempotent re-appends every batch and a full-day replay; the
// store must record each cell exactly once.
func TestAppendIdempotent(t *testing.T) {
	s, err := Open(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	cells := fillDay(t, s, 0, 21)
	// Blind full-day replay (what a WAL restart does).
	at := func(spot, slot int) (core.SlotFeatures, core.QueueType) {
		if r, ok := cells[[2]int{spot, slot}]; ok {
			return r.Feats, r.Label
		}
		return core.SlotFeatures{}, core.Unidentified
	}
	if err := s.AppendSlots(0, 0, s.Grid().Slots, at); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := int(s.Stats().Records), len(cells); got != want {
		t.Fatalf("recorded %d cells, want %d", got, want)
	}
	verifyDay(t, s, 0, cells)
}

// TestReopenIdentity writes a multi-day durable store, reopens it, and
// asserts the recovered series and watermarks are identical.
func TestReopenIdentity(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(6)
	cfg.Dir = dir
	cfg.BlockRecords = 64 // force several blocks + a partial tail
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	days := make([]map[[2]int]Record, 3)
	for d := range days {
		days[d] = fillDay(t, s, d, int64(100+d))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Truncations != 0 {
		t.Fatalf("clean reopen counted %d truncations", st.Truncations)
	}
	for d := range days {
		if w := r.Watermark(d); w != r.Grid().Slots {
			t.Fatalf("day %d watermark %d after reopen", d, w)
		}
		verifyDay(t, r, d, days[d])
	}
	// Replaying a recorded day into the reopened store is a no-op.
	before := r.Stats().Records
	if err := r.AppendSlots(1, 0, r.Grid().Slots, func(spot, slot int) (core.SlotFeatures, core.QueueType) {
		t.Fatalf("append callback ran for an already-recorded slot (%d, %d)", spot, slot)
		return core.SlotFeatures{}, core.Unidentified
	}); err != nil {
		t.Fatal(err)
	}
	if after := r.Stats().Records; after != before {
		t.Fatalf("replay recorded %d new cells", after-before)
	}
}

// TestBareWatermarkDurable flushes a day whose appended slots were all
// empty; a reopen must still know those slots are final (served as empty,
// not missing).
func TestBareWatermarkDurable(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(3)
	cfg.Dir = dir
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	empty := func(int, int) (core.SlotFeatures, core.QueueType) {
		return core.SlotFeatures{}, core.Unidentified
	}
	if err := s.AppendSlots(0, 0, 10, empty); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if w := r.Watermark(0); w != 10 {
		t.Fatalf("watermark %d after reopen, want 10", w)
	}
	pts := r.Series(0, r.TimeOf(0, 0), r.TimeOf(0, 10))
	if len(pts) != 10 {
		t.Fatalf("%d points, want 10", len(pts))
	}
	for _, p := range pts {
		if !p.Empty {
			t.Fatalf("slot %d not served as empty", p.Slot)
		}
	}
}

// TestHeatmap checks tiling: spots in the same 400 m square aggregate
// into one tile, label counts and sums add up, tiles come out sorted.
func TestHeatmap(t *testing.T) {
	cfg := testConfig(8)
	// Cluster spots 0..3 at one location, 4..7 spread out.
	for i := 0; i < 4; i++ {
		cfg.Spots[i].Pos = geo.Point{Lat: 1.3001, Lon: 103.8001}
	}
	for i := 4; i < 8; i++ {
		cfg.Spots[i].Pos = geo.Point{Lat: 1.35 + 0.02*float64(i), Lon: 103.9}
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := fillDay(t, s, 0, 5)
	hm, ok := s.Heatmap(s.TimeOf(0, 17))
	if !ok {
		t.Fatal("heatmap not served for a final slot")
	}
	if hm.Day != 0 || hm.Slot != 17 {
		t.Fatalf("heatmap at (day %d, slot %d)", hm.Day, hm.Slot)
	}
	totalSpots, qlen := 0, 0.0
	for i, tile := range hm.Tiles {
		totalSpots += tile.Spots
		qlen += tile.QLen
		if i > 0 {
			prev := hm.Tiles[i-1]
			if tile.Lat < prev.Lat || (tile.Lat == prev.Lat && tile.Lon <= prev.Lon) {
				t.Fatalf("tiles not sorted: %v after %v", tile, prev)
			}
		}
	}
	if totalSpots != s.Spots() {
		t.Fatalf("tiles cover %d spots, want %d", totalSpots, s.Spots())
	}
	wantQ := 0.0
	for spot := 0; spot < s.Spots(); spot++ {
		if r, ok := cells[[2]int{spot, 17}]; ok {
			wantQ += r.Feats.QLen
		}
	}
	if math.Abs(qlen-wantQ) > 1e-9 {
		t.Fatalf("tile QLen sum %.6f, want %.6f", qlen, wantQ)
	}
	if _, ok := s.Heatmap(s.TimeOf(1, 0)); ok {
		t.Fatal("heatmap served for an unrecorded slot")
	}
	// The clustered spots share one tile.
	for _, tile := range hm.Tiles {
		if tile.Spots >= 4 {
			return
		}
	}
	t.Fatal("no tile aggregates the 4 co-located spots")
}

// TestTransitions builds two days with a known label flip and checks the
// matrix counts it.
func TestTransitions(t *testing.T) {
	s, err := Open(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	slotSec := s.Grid().SlotLen.Seconds()
	amp := s.cfg.Amplify
	mk := func(label core.QueueType) (core.SlotFeatures, core.QueueType) {
		var f core.SlotFeatures
		f.TWait = 4 * time.Minute
		f.NArr = 10 * amp.Factor
		f.QLen = f.TWait.Seconds() * f.NArr / slotSec
		return f, label
	}
	// Day 0: C1 everywhere. Day 1: C2 in slot 0, empty elsewhere.
	if err := s.AppendSlots(0, 0, 48, func(int, int) (core.SlotFeatures, core.QueueType) {
		return mk(core.C1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSlots(1, 0, 48, func(_, slot int) (core.SlotFeatures, core.QueueType) {
		if slot == 0 {
			return mk(core.C2)
		}
		return core.SlotFeatures{}, core.Unidentified
	}); err != nil {
		t.Fatal(err)
	}
	m := s.Transitions(0)
	if m.Pairs != 48 {
		t.Fatalf("%d pairs, want 48", m.Pairs)
	}
	if m.Counts[core.C1][core.C2] != 1 {
		t.Fatalf("C1→C2 = %d, want 1", m.Counts[core.C1][core.C2])
	}
	_, emptyLabel := s.emptyContext(0)
	if m.Counts[core.C1][emptyLabel] != 47 {
		t.Fatalf("C1→empty = %d, want 47", m.Counts[core.C1][emptyLabel])
	}
}

// TestMetricsConsistency asserts Stats() and the rendered /metrics text
// agree (they read the same collectors) and the history_* series are all
// registered.
func TestMetricsConsistency(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(4)
	cfg.Dir = t.TempDir()
	cfg.Metrics = reg
	cfg.BlockRecords = 24 // several blocks, so one range query hits AND misses
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillDay(t, s, 0, 31)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Series(0, s.TimeOf(0, 0), s.TimeOf(0, 48))
	s.Heatmap(s.TimeOf(0, 3))
	s.Transitions(0)
	// Starts mid-block: the first block decodes (miss), the rest fold from
	// their summaries (hits).
	s.RangeSummary(s.TimeOf(0, 1), s.TimeOf(0, 48))

	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	st := s.Stats()
	for name, want := range map[string]int64{
		"history_appends_total":      st.Appends,
		"history_records_total":      st.Records,
		"history_blocks_total":       st.Blocks,
		"history_bytes":              st.Bytes,
		"history_truncations_total":  st.Truncations,
		"history_write_errors_total": st.WriteErrors,

		"history_summary_hits_total":          st.SummaryHits,
		"history_summary_misses_total":        st.SummaryMisses,
		"history_block_cache_hits_total":      st.BlockCacheHits,
		"history_block_cache_evictions_total": st.BlockCacheEvictions,
	} {
		line := name + " " + strconv.FormatInt(want, 10)
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
	for _, q := range []string{"series", "heatmap", "transitions", "range"} {
		if !strings.Contains(body, `history_query_seconds_count{query="`+q+`"} 1`) {
			t.Errorf("/metrics missing query histogram for %s", q)
		}
	}
	if st.Blocks == 0 || st.Records == 0 || st.Bytes == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.SummaryHits == 0 || st.SummaryMisses == 0 {
		t.Fatalf("range query exercised only one aggregation path: %+v", st)
	}
}
