package history

import (
	"container/list"
	"hash/crc32"
	"os"
	"sync"

	"taxiqueue/internal/obs"
)

// Lazy block materialization. Open no longer decodes recovered blocks:
// recovery CRC-checks every frame and parses only the summary prefix,
// leaving each payload on disk behind a fileRef. The first query that
// needs a disk-resident block's records reads and decodes the payload on
// demand, and a small LRU of decoded blocks absorbs the scan locality of
// range queries. Runtime-sealed blocks are untouched — their records are
// already in memory, and they never enter the cache.
//
// Reads stay lock-free on the published index; only the cache itself
// takes a short internal mutex. Two readers racing a cold block may both
// decode it (the second insert wins), which is benign: decode is a pure
// function of the immutable on-disk frame.

// fileRef locates one block's encoded payload inside a generation file.
// The CRC is re-checked at every load, so a read can never serve bytes
// that differ from what recovery admitted.
type fileRef struct {
	name string
	off  int64
	size int
	crc  uint32
}

// read fetches and CRC-checks the payload from f (an open handle on
// ref.name).
func (ref *fileRef) read(f *os.File) ([]byte, error) {
	buf := make([]byte, ref.size)
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(buf) != ref.crc {
		return nil, errBadBlock
	}
	return buf, nil
}

// blockCache is the decoded-block LRU: block identity → decoded records.
type blockCache struct {
	mu    sync.Mutex
	cap   int
	items map[*block]*list.Element
	lru   *list.List // front = most recently used; values are *cacheEntry

	hits      *obs.Counter
	evictions *obs.Counter
}

type cacheEntry struct {
	b    *block
	recs []Record
}

func newBlockCache(capBlocks int, met *metrics) *blockCache {
	return &blockCache{
		cap:       capBlocks,
		items:     make(map[*block]*list.Element),
		lru:       list.New(),
		hits:      met.cacheHits,
		evictions: met.cacheEvictions,
	}
}

// get returns b's cached records, refreshing its recency.
func (c *blockCache) get(b *block) ([]Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[b]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).recs, true
}

// put installs b's decoded records, evicting from the cold end past cap.
func (c *blockCache) put(b *block, recs []Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[b]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).recs = recs
		return
	}
	c.items[b] = c.lru.PushFront(&cacheEntry{b: b, recs: recs})
	for c.lru.Len() > c.cap {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).b)
		c.evictions.Inc()
	}
}

// blockRecs returns b's records, materializing disk-resident blocks
// through the decoded-block cache. Queries call this instead of touching
// b.recs directly.
func (s *Store) blockRecs(b *block) []Record {
	if b.sum.Count == 0 {
		return nil
	}
	if b.recs != nil {
		return b.recs
	}
	if recs, ok := s.cache.get(b); ok {
		return recs
	}
	recs := s.materialize(b)
	if recs != nil {
		s.cache.put(b, recs)
	}
	return recs
}

// materialize reads and decodes one disk-resident block. A rotate can
// re-point the ref at a fresh generation and then remove the old file, so
// a failed load retries against a ref that changed mid-read; a failure
// with a stable ref is final (and should be impossible short of the disk
// vanishing — the frame was CRC-clean at recovery).
func (s *Store) materialize(b *block) []Record {
	for attempt := 0; attempt < 4; attempt++ {
		ref := b.ref.Load()
		if ref == nil {
			return nil
		}
		payload, err := readRef(ref)
		if err != nil {
			if b.ref.Load() != ref {
				continue
			}
			return nil
		}
		dec, err := decodeBlock(payload, s.cfg.Amplify, s.slotSec)
		if err != nil {
			if b.ref.Load() != ref {
				continue
			}
			return nil
		}
		return dec.recs
	}
	return nil
}

// readRef opens, reads and CRC-checks one payload. Reads use the real
// filesystem — like recovery and the WAL, only writes go through the
// fault-injectable cfg.FS.
func readRef(ref *fileRef) ([]byte, error) {
	f, err := os.Open(ref.name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ref.read(f)
}
