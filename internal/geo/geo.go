// Package geo provides the geographic primitives used throughout the queue
// detection system: WGS-84 points, great-circle and fast equirectangular
// distances, bearings, destination points, bounding boxes and polygons.
//
// All distances are in meters, all angles in degrees unless stated
// otherwise. Latitudes are positive north, longitudes positive east.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used for all spherical
// computations. The value matches the IUGG mean radius.
const EarthRadiusMeters = 6371008.8

// Point is a WGS-84 coordinate.
type Point struct {
	Lat float64 // degrees, [-90, 90]
	Lon float64 // degrees, [-180, 180]
}

// String implements fmt.Stringer using 6 decimal places (~0.1 m resolution).
func (p Point) String() string {
	return fmt.Sprintf("(%.6f,%.6f)", p.Lat, p.Lon)
}

// Valid reports whether p lies within the legal WGS-84 coordinate ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Haversine returns the great-circle distance between a and b in meters.
func Haversine(a, b Point) float64 {
	lat1, lon1 := radians(a.Lat), radians(a.Lon)
	lat2, lon2 := radians(b.Lat), radians(b.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Equirect returns the equirectangular-approximation distance between a and
// b in meters. It is accurate to well under 0.1% at city scale and several
// times faster than Haversine; DBSCAN and the spatial indexes use it.
func Equirect(a, b Point) float64 {
	x := radians(b.Lon-a.Lon) * math.Cos(radians((a.Lat+b.Lat)/2))
	y := radians(b.Lat - a.Lat)
	return EarthRadiusMeters * math.Hypot(x, y)
}

// Bearing returns the initial great-circle bearing from a to b in degrees
// clockwise from north, in [0, 360).
func Bearing(a, b Point) float64 {
	lat1, lat2 := radians(a.Lat), radians(b.Lat)
	dLon := radians(b.Lon - a.Lon)
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	return math.Mod(degrees(math.Atan2(y, x))+360, 360)
}

// Destination returns the point reached by travelling distanceMeters from p
// along the given initial bearing (degrees clockwise from north).
func Destination(p Point, bearingDeg, distanceMeters float64) Point {
	lat1 := radians(p.Lat)
	lon1 := radians(p.Lon)
	brng := radians(bearingDeg)
	d := distanceMeters / EarthRadiusMeters
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brng))
	lon2 := lon1 + math.Atan2(math.Sin(brng)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2))
	return Point{Lat: degrees(lat2), Lon: math.Mod(degrees(lon2)+540, 360) - 180}
}

// Offset returns p displaced by the given east and north distances in
// meters, using the local tangent-plane approximation. It is the inverse
// convenience of LocalXY and is exact enough for city-scale work.
func Offset(p Point, eastMeters, northMeters float64) Point {
	dLat := degrees(northMeters / EarthRadiusMeters)
	dLon := degrees(eastMeters / (EarthRadiusMeters * math.Cos(radians(p.Lat))))
	return Point{Lat: p.Lat + dLat, Lon: p.Lon + dLon}
}

// LocalXY projects p into a local tangent plane centered at origin and
// returns (east, north) in meters. Distances between projected points match
// Equirect distances.
func LocalXY(origin, p Point) (x, y float64) {
	x = radians(p.Lon-origin.Lon) * math.Cos(radians(origin.Lat)) * EarthRadiusMeters
	y = radians(p.Lat-origin.Lat) * EarthRadiusMeters
	return x, y
}

// Centroid returns the arithmetic-mean coordinate of pts. For city-scale
// clusters the arithmetic mean of lat/lon is the estimator the paper uses
// when it "computes a central GPS location by averaging" (§4.3).
// It returns the zero Point when pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var lat, lon float64
	for _, p := range pts {
		lat += p.Lat
		lon += p.Lon
	}
	n := float64(len(pts))
	return Point{Lat: lat / n, Lon: lon / n}
}

// Rect is a latitude/longitude axis-aligned bounding box.
// MinLat <= MaxLat and MinLon <= MaxLon; rectangles never cross the
// antimeridian (Singapore-scale deployments do not need that).
type Rect struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// NewRect returns the rectangle spanned by two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinLat: math.Min(a.Lat, b.Lat),
		MinLon: math.Min(a.Lon, b.Lon),
		MaxLat: math.Max(a.Lat, b.Lat),
		MaxLon: math.Max(a.Lon, b.Lon),
	}
}

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// Intersects reports whether r and o overlap (sharing an edge counts).
func (r Rect) Intersects(o Rect) bool {
	return r.MinLat <= o.MaxLat && r.MaxLat >= o.MinLat &&
		r.MinLon <= o.MaxLon && r.MaxLon >= o.MinLon
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// Expand grows r by the given number of meters on every side.
func (r Rect) Expand(meters float64) Rect {
	dLat := degrees(meters / EarthRadiusMeters)
	// Use the latitude farthest from the equator for a conservative
	// longitude expansion so the expanded rect always covers the radius.
	lat := math.Max(math.Abs(r.MinLat), math.Abs(r.MaxLat))
	dLon := degrees(meters / (EarthRadiusMeters * math.Cos(radians(lat))))
	return Rect{
		MinLat: r.MinLat - dLat, MinLon: r.MinLon - dLon,
		MaxLat: r.MaxLat + dLat, MaxLon: r.MaxLon + dLon,
	}
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinLat: math.Min(r.MinLat, o.MinLat),
		MinLon: math.Min(r.MinLon, o.MinLon),
		MaxLat: math.Max(r.MaxLat, o.MaxLat),
		MaxLon: math.Max(r.MaxLon, o.MaxLon),
	}
}

// BoundingRect returns the smallest Rect containing every point in pts.
// It returns the zero Rect when pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{MinLat: pts[0].Lat, MaxLat: pts[0].Lat, MinLon: pts[0].Lon, MaxLon: pts[0].Lon}
	for _, p := range pts[1:] {
		r.MinLat = math.Min(r.MinLat, p.Lat)
		r.MaxLat = math.Max(r.MaxLat, p.Lat)
		r.MinLon = math.Min(r.MinLon, p.Lon)
		r.MaxLon = math.Max(r.MaxLon, p.Lon)
	}
	return r
}

// RectAround returns a bounding box guaranteed to contain the circle of the
// given radius (meters) around p. Used to pre-filter radius queries.
func RectAround(p Point, radiusMeters float64) Rect {
	return Rect{MinLat: p.Lat, MaxLat: p.Lat, MinLon: p.Lon, MaxLon: p.Lon}.Expand(radiusMeters)
}

// Polygon is a simple (non-self-intersecting) polygon given as a ring of
// vertices. The ring may be open (first != last); Contains treats it as
// implicitly closed.
type Polygon []Point

// Contains reports whether p lies strictly inside or on the boundary of the
// polygon, using the even-odd ray-casting rule in lat/lon space. City-scale
// polygons (taxi-stand areas, zones) are small enough that planar
// ray-casting is exact for practical purposes.
func (poly Polygon) Contains(p Point) bool {
	n := len(poly)
	if n < 3 {
		return false
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		pi, pj := poly[i], poly[j]
		if (pi.Lat > p.Lat) != (pj.Lat > p.Lat) {
			cross := (pj.Lon-pi.Lon)*(p.Lat-pi.Lat)/(pj.Lat-pi.Lat) + pi.Lon
			if p.Lon < cross {
				inside = !inside
			} else if p.Lon == cross {
				return true // on an edge
			}
		}
		j = i
	}
	return inside
}

// Bounds returns the bounding rectangle of the polygon.
func (poly Polygon) Bounds() Rect { return BoundingRect(poly) }

// CirclePolygon approximates the circle of the given radius around center
// with a regular n-gon (n >= 3). Useful for defining monitor areas.
func CirclePolygon(center Point, radiusMeters float64, n int) Polygon {
	if n < 3 {
		n = 3
	}
	poly := make(Polygon, n)
	for i := 0; i < n; i++ {
		poly[i] = Destination(center, float64(i)*360/float64(n), radiusMeters)
	}
	return poly
}
