package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Singapore-ish reference points.
var (
	rafflesPlace = Point{Lat: 1.28392, Lon: 103.85134}
	changi       = Point{Lat: 1.35735, Lon: 103.98800}
	orchard      = Point{Lat: 1.30397, Lon: 103.83220}
)

func TestHaversineKnownDistance(t *testing.T) {
	// Raffles Place to Changi Airport is roughly 17 km.
	d := Haversine(rafflesPlace, changi)
	if d < 16000 || d > 19000 {
		t.Fatalf("Haversine(rafflesPlace, changi) = %.0f m, want ~17 km", d)
	}
}

func TestHaversineZero(t *testing.T) {
	if d := Haversine(orchard, orchard); d != 0 {
		t.Fatalf("distance to self = %g, want 0", d)
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 90) }
func clampLon(v float64) float64 { return math.Mod(math.Abs(v), 180) }

func TestEquirectMatchesHaversineAtCityScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Point{Lat: 1.2 + rng.Float64()*0.3, Lon: 103.6 + rng.Float64()*0.4}
		b := Point{Lat: 1.2 + rng.Float64()*0.3, Lon: 103.6 + rng.Float64()*0.4}
		h, e := Haversine(a, b), Equirect(a, b)
		if h == 0 {
			continue
		}
		if rel := math.Abs(h-e) / h; rel > 1e-3 {
			t.Fatalf("Equirect relative error %.2e for %v-%v (h=%f e=%f)", rel, a, b, h, e)
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	p := Point{Lat: 1.3, Lon: 103.8}
	cases := []struct {
		name string
		to   Point
		want float64
	}{
		{"north", Point{Lat: 1.4, Lon: 103.8}, 0},
		{"east", Point{Lat: 1.3, Lon: 103.9}, 90},
		{"south", Point{Lat: 1.2, Lon: 103.8}, 180},
		{"west", Point{Lat: 1.3, Lon: 103.7}, 270},
	}
	for _, c := range cases {
		got := Bearing(p, c.to)
		if diff := math.Abs(got - c.want); diff > 0.2 && diff < 359.8 {
			t.Errorf("Bearing %s = %.2f, want %.2f", c.name, got, c.want)
		}
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		p := Point{Lat: 1.2 + rng.Float64()*0.3, Lon: 103.6 + rng.Float64()*0.4}
		brng := rng.Float64() * 360
		dist := rng.Float64() * 30000
		q := Destination(p, brng, dist)
		if got := Haversine(p, q); math.Abs(got-dist) > 0.01+dist*1e-9 {
			t.Fatalf("Destination distance %.4f, want %.4f", got, dist)
		}
		if dist > 1 {
			if gb := Bearing(p, q); angleDiff(gb, brng) > 0.5 {
				t.Fatalf("Destination bearing %.3f, want %.3f", gb, brng)
			}
		}
	}
}

func angleDiff(a, b float64) float64 {
	d := math.Abs(math.Mod(a-b+540, 360) - 180)
	return d
}

func TestOffsetDistance(t *testing.T) {
	p := orchard
	q := Offset(p, 300, 400) // 3-4-5 triangle: 500 m
	if d := Haversine(p, q); math.Abs(d-500) > 1 {
		t.Fatalf("Offset distance = %.2f, want 500", d)
	}
}

func TestLocalXYMatchesEquirect(t *testing.T) {
	origin := rafflesPlace
	p := Offset(origin, 1234, -567)
	x, y := LocalXY(origin, p)
	want := Equirect(origin, p)
	if got := math.Hypot(x, y); math.Abs(got-want) > 0.5 {
		t.Fatalf("LocalXY norm %.3f, want %.3f", got, want)
	}
	if math.Abs(x-1234) > 2 || math.Abs(y-(-567)) > 2 {
		t.Fatalf("LocalXY = (%.1f, %.1f), want (1234, -567)", x, y)
	}
}

func TestCentroid(t *testing.T) {
	if c := Centroid(nil); c != (Point{}) {
		t.Fatalf("Centroid(nil) = %v, want zero", c)
	}
	pts := []Point{{1, 103}, {2, 104}, {3, 105}}
	c := Centroid(pts)
	if c.Lat != 2 || c.Lon != 104 {
		t.Fatalf("Centroid = %v, want (2, 104)", c)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{1.2, 103.6}, Point{1.5, 104.0})
	if !r.Contains(Point{1.3, 103.8}) {
		t.Error("interior point not contained")
	}
	if !r.Contains(Point{1.2, 103.6}) {
		t.Error("corner not contained (edges inclusive)")
	}
	if r.Contains(Point{1.6, 103.8}) {
		t.Error("outside point contained")
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Point{1.0, 103.0}, Point{1.2, 103.2})
	b := NewRect(Point{1.1, 103.1}, Point{1.3, 103.3})
	c := NewRect(Point{1.5, 103.5}, Point{1.6, 103.6})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects do not intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects intersect")
	}
	// Touching at an edge counts.
	d := NewRect(Point{1.2, 103.0}, Point{1.4, 103.2})
	if !a.Intersects(d) {
		t.Error("edge-touching rects do not intersect")
	}
}

func TestRectExpandCoversRadius(t *testing.T) {
	p := changi
	r := RectAround(p, 1000)
	// Sample points on the circle: all must be inside the rect.
	for deg := 0.0; deg < 360; deg += 15 {
		q := Destination(p, deg, 999)
		if !r.Contains(q) {
			t.Fatalf("RectAround misses circle point at bearing %.0f", deg)
		}
	}
}

func TestRectUnionAndBounding(t *testing.T) {
	a := NewRect(Point{1.0, 103.0}, Point{1.1, 103.1})
	b := NewRect(Point{1.2, 103.2}, Point{1.3, 103.3})
	u := a.Union(b)
	if !u.Contains(Point{1.05, 103.05}) || !u.Contains(Point{1.25, 103.25}) {
		t.Error("union does not contain both inputs")
	}
	pts := []Point{{1.0, 103.0}, {1.3, 103.3}, {1.1, 103.2}}
	br := BoundingRect(pts)
	for _, p := range pts {
		if !br.Contains(p) {
			t.Errorf("BoundingRect misses %v", p)
		}
	}
	if br != (Rect{MinLat: 1.0, MinLon: 103.0, MaxLat: 1.3, MaxLon: 103.3}) {
		t.Errorf("BoundingRect = %+v", br)
	}
}

func TestPolygonContains(t *testing.T) {
	square := Polygon{{1.0, 103.0}, {1.0, 103.1}, {1.1, 103.1}, {1.1, 103.0}}
	if !square.Contains(Point{1.05, 103.05}) {
		t.Error("center of square not contained")
	}
	if square.Contains(Point{1.2, 103.05}) {
		t.Error("point north of square contained")
	}
	if square.Contains(Point{1.05, 103.2}) {
		t.Error("point east of square contained")
	}
	var empty Polygon
	if empty.Contains(Point{1, 103}) {
		t.Error("empty polygon contains a point")
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// A "U" shape: the notch must be outside.
	u := Polygon{
		{0, 0}, {0, 3}, {3, 3}, {3, 2}, {1, 2}, {1, 1}, {3, 1}, {3, 0},
	}
	if !u.Contains(Point{0.5, 1.5}) {
		t.Error("bottom of U not contained")
	}
	if u.Contains(Point{2, 1.5}) {
		t.Error("notch of U contained")
	}
}

func TestCirclePolygonContainsCenter(t *testing.T) {
	poly := CirclePolygon(orchard, 200, 16)
	if len(poly) != 16 {
		t.Fatalf("CirclePolygon len = %d, want 16", len(poly))
	}
	if !poly.Contains(orchard) {
		t.Error("circle polygon does not contain its center")
	}
	inside := Destination(orchard, 45, 150)
	if !poly.Contains(inside) {
		t.Error("point at 150 m not inside 200 m circle polygon")
	}
	outside := Destination(orchard, 45, 260)
	if poly.Contains(outside) {
		t.Error("point at 260 m inside 200 m circle polygon")
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {90, 180}, {-90, -180}, {1.3, 103.8}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v reported invalid", p)
		}
	}
	invalid := []Point{{91, 0}, {0, 181}, {-91, 0}, {0, -181}, {math.NaN(), 0}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v reported valid", p)
		}
	}
}

func TestPropertyOffsetLocalXYInverse(t *testing.T) {
	f := func(dx, dy float64) bool {
		dx = math.Mod(dx, 20000)
		dy = math.Mod(dy, 20000)
		p := Offset(rafflesPlace, dx, dy)
		x, y := LocalXY(rafflesPlace, p)
		return math.Abs(x-dx) < 1.5 && math.Abs(y-dy) < 1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHaversine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Haversine(rafflesPlace, changi)
	}
}

func BenchmarkEquirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Equirect(rafflesPlace, changi)
	}
}
