package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// cityPoint draws a point in the Singapore-scale frame where the library is
// used.
func cityPoint(rng *rand.Rand) Point {
	return Point{Lat: 1.22 + rng.Float64()*0.24, Lon: 103.6 + rng.Float64()*0.44}
}

// TestHaversineTriangleInequality on city-scale triples.
func TestHaversineTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := cityPoint(rng), cityPoint(rng), cityPoint(rng)
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBearingDestinationConsistency: destination at distance d along any
// bearing is d away, and the reverse bearing points back (±180°).
func TestBearingDestinationConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := cityPoint(rng)
		brng := rng.Float64() * 360
		d := 10 + rng.Float64()*20000
		q := Destination(p, brng, d)
		if math.Abs(Haversine(p, q)-d) > 0.05 {
			return false
		}
		back := Bearing(q, p)
		// back should equal brng+180 up to a tiny meridian-convergence
		// correction at city scale.
		diff := math.Abs(math.Mod(back-(brng+180)+540, 360) - 180)
		return diff < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRectContainsItsOwnCenterAndCorners for random rects.
func TestRectContainsItsOwnCenterAndCorners(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRect(cityPoint(rng), cityPoint(rng))
		return r.Contains(r.Center()) &&
			r.Contains(Point{r.MinLat, r.MinLon}) &&
			r.Contains(Point{r.MaxLat, r.MaxLon})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCirclePolygonRadius: every vertex of the polygon sits on the circle.
func TestCirclePolygonRadius(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := cityPoint(rng)
		radius := 10 + rng.Float64()*1000
		for _, v := range CirclePolygon(c, radius, 3+rng.Intn(20)) {
			if math.Abs(Haversine(c, v)-radius) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundingRectIsMinimal: shrinking any side excludes a point.
func TestBoundingRectIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		pts := make([]Point, 3+rng.Intn(40))
		for i := range pts {
			pts[i] = cityPoint(rng)
		}
		r := BoundingRect(pts)
		onMin, onMax := false, false
		for _, p := range pts {
			if p.Lat == r.MinLat || p.Lon == r.MinLon {
				onMin = true
			}
			if p.Lat == r.MaxLat || p.Lon == r.MaxLon {
				onMax = true
			}
		}
		if !onMin || !onMax {
			t.Fatal("bounding rect has slack on some side")
		}
	}
}
