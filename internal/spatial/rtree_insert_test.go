package spatial

import (
	"math/rand"
	"testing"

	"taxiqueue/internal/geo"
)

func TestInsertIntoEmptyTree(t *testing.T) {
	tr := NewRTree(nil, 4)
	p := geo.Point{Lat: 1.3, Lon: 103.8}
	id := tr.Insert(p)
	if id != 0 || tr.Len() != 1 {
		t.Fatalf("id=%d len=%d", id, tr.Len())
	}
	got := tr.Within(p, 1, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Within after insert = %v", got)
	}
}

func TestInsertMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := NewRTree(nil, 6)
	var pts []geo.Point
	for i := 0; i < 3000; i++ {
		p := geo.Point{Lat: 1.22 + rng.Float64()*0.25, Lon: 103.6 + rng.Float64()*0.42}
		if id := tr.Insert(p); id != i {
			t.Fatalf("insert %d returned id %d", i, id)
		}
		pts = append(pts, p)
	}
	ref := NewLinear(pts)
	for q := 0; q < 60; q++ {
		center := pts[rng.Intn(len(pts))]
		radius := 5 + rng.Float64()*800
		want := sortedIDs(ref.Within(center, radius, nil))
		got := sortedIDs(tr.Within(center, radius, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d ids, want %d", q, len(got), len(want))
		}
		rect := geo.RectAround(center, radius)
		wantR := sortedIDs(ref.Range(rect, nil))
		gotR := sortedIDs(tr.Range(rect, nil))
		if !equalIDs(gotR, wantR) {
			t.Fatalf("range query %d mismatch", q)
		}
	}
}

func TestInsertAfterBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	initial := randomPoints(500, 3)
	tr := NewRTree(initial, 8)
	pts := append([]geo.Point(nil), initial...)
	for i := 0; i < 500; i++ {
		p := geo.Point{Lat: 1.22 + rng.Float64()*0.25, Lon: 103.6 + rng.Float64()*0.42}
		tr.Insert(p)
		pts = append(pts, p)
	}
	ref := NewLinear(pts)
	for q := 0; q < 40; q++ {
		center := pts[rng.Intn(len(pts))]
		want := sortedIDs(ref.Within(center, 300, nil))
		got := sortedIDs(tr.Within(center, 300, nil))
		if !equalIDs(got, want) {
			t.Fatalf("mixed bulk/insert query %d mismatch: %d vs %d ids", q, len(got), len(want))
		}
	}
}

func TestInsertDuplicatePoints(t *testing.T) {
	tr := NewRTree(nil, 3)
	p := geo.Point{Lat: 1.3, Lon: 103.8}
	for i := 0; i < 50; i++ {
		tr.Insert(p)
	}
	got := tr.Within(p, 1, nil)
	if len(got) != 50 {
		t.Fatalf("Within returned %d of 50 duplicates", len(got))
	}
}

func TestInsertInvariantBoundsContainPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := NewRTree(nil, 5)
	for i := 0; i < 1000; i++ {
		tr.Insert(geo.Point{Lat: 1.22 + rng.Float64()*0.25, Lon: 103.6 + rng.Float64()*0.42})
	}
	// Every point must be inside its leaf's bounds and every node's bounds
	// inside its parent's.
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if n.ids != nil {
			for _, id := range n.ids {
				if !n.bounds.Contains(tr.pts[id]) {
					t.Fatal("leaf bounds exclude a member point")
				}
			}
			if len(n.ids) > tr.m {
				t.Fatalf("leaf overfull: %d > %d", len(n.ids), tr.m)
			}
			return
		}
		for _, c := range n.children {
			u := n.bounds.Union(c.bounds)
			if u != n.bounds {
				t.Fatal("child bounds escape parent")
			}
			walk(c)
		}
		if len(n.children) > tr.m {
			t.Fatalf("internal node overfull: %d > %d", len(n.children), tr.m)
		}
	}
	walk(tr.root)
}

func BenchmarkRTreeInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := NewRTree(nil, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(geo.Point{Lat: 1.22 + rng.Float64()*0.25, Lon: 103.6 + rng.Float64()*0.42})
	}
}
