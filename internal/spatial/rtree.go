package spatial

import (
	"sort"

	"taxiqueue/internal/geo"
)

// RTree is a static R-tree over a fixed point set, bulk-loaded with the
// Sort-Tile-Recursive (STR) algorithm. STR packing yields near-optimal node
// occupancy and, for the read-only workloads in this system (cluster the
// day's pickup events, then query), beats incremental insertion.
type RTree struct {
	pts  []geo.Point
	root *rnode
	m    int // max entries per node
}

type rnode struct {
	bounds   geo.Rect
	children []*rnode // nil for leaves
	ids      []int32  // point IDs; non-nil only for leaves
}

// DefaultRTreeFanout is the node capacity used when NewRTree is given a
// non-positive fanout.
const DefaultRTreeFanout = 16

// NewRTree bulk-loads an STR-packed R-tree over pts. The point slice is
// retained (not copied) and must not be mutated while the index is in use.
func NewRTree(pts []geo.Point, fanout int) *RTree {
	if fanout <= 1 {
		fanout = DefaultRTreeFanout
	}
	t := &RTree{pts: pts, m: fanout}
	if len(pts) == 0 {
		return t
	}
	ids := make([]int32, len(pts))
	for i := range ids {
		ids[i] = int32(i)
	}
	t.root = t.strPack(ids)
	return t
}

// strPack builds a subtree over ids using Sort-Tile-Recursive packing.
func (t *RTree) strPack(ids []int32) *rnode {
	// Leaf level: sort into vertical slices by longitude, then within each
	// slice by latitude, and cut into runs of at most m.
	leaves := t.packLeaves(ids)
	for len(leaves) > 1 {
		leaves = t.packNodes(leaves)
	}
	return leaves[0]
}

func (t *RTree) packLeaves(ids []int32) []*rnode {
	n := len(ids)
	nLeaves := (n + t.m - 1) / t.m
	nSlices := isqrtCeil(nLeaves)
	sliceCap := nSlices * t.m

	sorted := make([]int32, n)
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool {
		return t.pts[sorted[i]].Lon < t.pts[sorted[j]].Lon
	})

	var leaves []*rnode
	for start := 0; start < n; start += sliceCap {
		end := min(start+sliceCap, n)
		slice := sorted[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return t.pts[slice[i]].Lat < t.pts[slice[j]].Lat
		})
		for ls := 0; ls < len(slice); ls += t.m {
			le := min(ls+t.m, len(slice))
			leaf := &rnode{ids: append([]int32(nil), slice[ls:le]...)}
			leaf.bounds = t.idsBounds(leaf.ids)
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func (t *RTree) packNodes(nodes []*rnode) []*rnode {
	n := len(nodes)
	nParents := (n + t.m - 1) / t.m
	nSlices := isqrtCeil(nParents)
	sliceCap := nSlices * t.m

	sorted := make([]*rnode, n)
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].bounds.Center().Lon < sorted[j].bounds.Center().Lon
	})

	var parents []*rnode
	for start := 0; start < n; start += sliceCap {
		end := min(start+sliceCap, n)
		slice := sorted[start:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].bounds.Center().Lat < slice[j].bounds.Center().Lat
		})
		for ls := 0; ls < len(slice); ls += t.m {
			le := min(ls+t.m, len(slice))
			p := &rnode{children: append([]*rnode(nil), slice[ls:le]...)}
			p.bounds = p.children[0].bounds
			for _, c := range p.children[1:] {
				p.bounds = p.bounds.Union(c.bounds)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

func (t *RTree) idsBounds(ids []int32) geo.Rect {
	r := geo.Rect{
		MinLat: t.pts[ids[0]].Lat, MaxLat: t.pts[ids[0]].Lat,
		MinLon: t.pts[ids[0]].Lon, MaxLon: t.pts[ids[0]].Lon,
	}
	for _, id := range ids[1:] {
		p := t.pts[id]
		if p.Lat < r.MinLat {
			r.MinLat = p.Lat
		}
		if p.Lat > r.MaxLat {
			r.MaxLat = p.Lat
		}
		if p.Lon < r.MinLon {
			r.MinLon = p.Lon
		}
		if p.Lon > r.MaxLon {
			r.MaxLon = p.Lon
		}
	}
	return r
}

func isqrtCeil(n int) int {
	if n <= 1 {
		return 1
	}
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// Len implements Index.
func (t *RTree) Len() int { return len(t.pts) }

// Range implements Index.
func (t *RTree) Range(rect geo.Rect, dst []int) []int {
	if t.root == nil {
		return dst
	}
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if !n.bounds.Intersects(rect) {
			return
		}
		if n.ids != nil {
			for _, id := range n.ids {
				if rect.Contains(t.pts[id]) {
					dst = append(dst, int(id))
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return dst
}

// Within implements Index.
func (t *RTree) Within(center geo.Point, radiusMeters float64, dst []int) []int {
	if t.root == nil {
		return dst
	}
	rect := geo.RectAround(center, radiusMeters)
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if !n.bounds.Intersects(rect) {
			return
		}
		if n.ids != nil {
			for _, id := range n.ids {
				if geo.Equirect(center, t.pts[id]) <= radiusMeters {
					dst = append(dst, int(id))
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return dst
}

// Depth returns the height of the tree (leaves are depth 1); 0 when empty.
// Exposed for tests and diagnostics.
func (t *RTree) Depth() int {
	d := 0
	for n := t.root; n != nil; {
		d++
		if n.ids != nil {
			break
		}
		n = n.children[0]
	}
	return d
}
