package spatial

import "taxiqueue/internal/geo"

// Insert adds one point to the tree dynamically (classic R-tree insertion
// with quadratic node splits). The point is appended to the tree's point
// slice; its ID is returned. Mixing bulk loading and insertion is fine:
// STR builds the initial tree, Insert grows it.
func (t *RTree) Insert(p geo.Point) int {
	id := int32(len(t.pts))
	t.pts = append(t.pts, p)
	pr := pointRect(p)
	if t.root == nil {
		t.root = &rnode{bounds: pr, ids: []int32{id}}
		return int(id)
	}
	if split := t.insert(t.root, id, pr); split != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &rnode{
			bounds:   old.bounds.Union(split.bounds),
			children: []*rnode{old, split},
		}
	}
	return int(id)
}

func pointRect(p geo.Point) geo.Rect {
	return geo.Rect{MinLat: p.Lat, MaxLat: p.Lat, MinLon: p.Lon, MaxLon: p.Lon}
}

// insert descends to a leaf, adds the entry, and propagates splits upward.
// It returns the new sibling when n was split, else nil.
func (t *RTree) insert(n *rnode, id int32, pr geo.Rect) *rnode {
	n.bounds = n.bounds.Union(pr)
	if n.ids != nil { // leaf
		n.ids = append(n.ids, id)
		if len(n.ids) <= t.m {
			return nil
		}
		return t.splitLeaf(n)
	}
	child := chooseSubtree(n.children, pr)
	if split := t.insert(child, id, pr); split != nil {
		n.children = append(n.children, split)
		if len(n.children) <= t.m {
			return nil
		}
		return t.splitInternal(n)
	}
	return nil
}

// chooseSubtree picks the child whose bounds need the least enlargement
// (ties: smallest area).
func chooseSubtree(children []*rnode, pr geo.Rect) *rnode {
	best := children[0]
	bestEnl, bestArea := enlargement(best.bounds, pr), area(best.bounds)
	for _, c := range children[1:] {
		enl := enlargement(c.bounds, pr)
		a := area(c.bounds)
		if enl < bestEnl || (enl == bestEnl && a < bestArea) {
			best, bestEnl, bestArea = c, enl, a
		}
	}
	return best
}

func area(r geo.Rect) float64 {
	return (r.MaxLat - r.MinLat) * (r.MaxLon - r.MinLon)
}

func enlargement(r, add geo.Rect) float64 {
	return area(r.Union(add)) - area(r)
}

// splitLeaf splits an over-full leaf with the quadratic method and returns
// the new sibling.
func (t *RTree) splitLeaf(n *rnode) *rnode {
	rects := make([]geo.Rect, len(n.ids))
	for i, id := range n.ids {
		rects[i] = pointRect(t.pts[id])
	}
	groupA, groupB := quadraticSplit(rects)
	idsA := make([]int32, 0, len(groupA))
	idsB := make([]int32, 0, len(groupB))
	for _, i := range groupA {
		idsA = append(idsA, n.ids[i])
	}
	for _, i := range groupB {
		idsB = append(idsB, n.ids[i])
	}
	sib := &rnode{ids: idsB, bounds: boundsOf(rects, groupB)}
	n.ids = idsA
	n.bounds = boundsOf(rects, groupA)
	return sib
}

// splitInternal splits an over-full internal node.
func (t *RTree) splitInternal(n *rnode) *rnode {
	rects := make([]geo.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.bounds
	}
	groupA, groupB := quadraticSplit(rects)
	chA := make([]*rnode, 0, len(groupA))
	chB := make([]*rnode, 0, len(groupB))
	for _, i := range groupA {
		chA = append(chA, n.children[i])
	}
	for _, i := range groupB {
		chB = append(chB, n.children[i])
	}
	sib := &rnode{children: chB, bounds: boundsOf(rects, groupB)}
	n.children = chA
	n.bounds = boundsOf(rects, groupA)
	return sib
}

func boundsOf(rects []geo.Rect, idx []int) geo.Rect {
	b := rects[idx[0]]
	for _, i := range idx[1:] {
		b = b.Union(rects[i])
	}
	return b
}

// quadraticSplit is Guttman's quadratic split: seed the two groups with the
// most wasteful pair, then assign each remaining entry to the group whose
// bounds grow least (balancing so neither group can end up under-filled).
func quadraticSplit(rects []geo.Rect) (groupA, groupB []int) {
	n := len(rects)
	// Pick seeds: the pair wasting the most area if grouped together.
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := area(rects[i].Union(rects[j])) - area(rects[i]) - area(rects[j])
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	groupA = []int{seedA}
	groupB = []int{seedB}
	bA, bB := rects[seedA], rects[seedB]
	minFill := n / 3 // keep both groups reasonably filled
	remaining := n - 2
	for i := 0; i < n; i++ {
		if i == seedA || i == seedB {
			continue
		}
		// Force-assign when a group must take all the rest to reach
		// minimum fill.
		if len(groupA)+remaining <= minFill {
			groupA = append(groupA, i)
			bA = bA.Union(rects[i])
			remaining--
			continue
		}
		if len(groupB)+remaining <= minFill {
			groupB = append(groupB, i)
			bB = bB.Union(rects[i])
			remaining--
			continue
		}
		if enlargement(bA, rects[i]) <= enlargement(bB, rects[i]) {
			groupA = append(groupA, i)
			bA = bA.Union(rects[i])
		} else {
			groupB = append(groupB, i)
			bB = bB.Union(rects[i])
		}
		remaining--
	}
	return groupA, groupB
}
