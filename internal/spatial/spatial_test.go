package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"taxiqueue/internal/geo"
)

func randomPoints(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{
			Lat: 1.22 + rng.Float64()*0.25,
			Lon: 103.60 + rng.Float64()*0.42,
		}
	}
	return pts
}

// clusteredPoints mimics the pickup-event distribution: dense blobs plus
// background noise, which stresses grid cells unevenly.
func clusteredPoints(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := randomPoints(20, seed+1)
	pts := make([]geo.Point, n)
	for i := range pts {
		if rng.Float64() < 0.8 {
			c := centers[rng.Intn(len(centers))]
			pts[i] = geo.Offset(c, rng.NormFloat64()*20, rng.NormFloat64()*20)
		} else {
			pts[i] = geo.Point{
				Lat: 1.22 + rng.Float64()*0.25,
				Lon: 103.60 + rng.Float64()*0.42,
			}
		}
	}
	return pts
}

func sortedIDs(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func indexesUnderTest(pts []geo.Point) map[string]Index {
	return map[string]Index{
		"grid15":  NewGrid(pts, 15),
		"grid100": NewGrid(pts, 100),
		"rtree":   NewRTree(pts, 0),
		"rtree4":  NewRTree(pts, 4),
	}
}

func TestIndexesMatchLinearWithin(t *testing.T) {
	pts := clusteredPoints(3000, 11)
	ref := NewLinear(pts)
	rng := rand.New(rand.NewSource(12))
	for name, idx := range indexesUnderTest(pts) {
		if idx.Len() != len(pts) {
			t.Fatalf("%s: Len = %d, want %d", name, idx.Len(), len(pts))
		}
		for q := 0; q < 50; q++ {
			center := pts[rng.Intn(len(pts))]
			radius := 5 + rng.Float64()*500
			want := sortedIDs(ref.Within(center, radius, nil))
			got := sortedIDs(idx.Within(center, radius, nil))
			if !equalIDs(got, want) {
				t.Fatalf("%s: Within(%v, %.1f) mismatch: got %d ids, want %d",
					name, center, radius, len(got), len(want))
			}
		}
	}
}

func TestIndexesMatchLinearRange(t *testing.T) {
	pts := clusteredPoints(3000, 21)
	ref := NewLinear(pts)
	rng := rand.New(rand.NewSource(22))
	for name, idx := range indexesUnderTest(pts) {
		for q := 0; q < 50; q++ {
			a := pts[rng.Intn(len(pts))]
			rect := geo.RectAround(a, 20+rng.Float64()*2000)
			want := sortedIDs(ref.Range(rect, nil))
			got := sortedIDs(idx.Range(rect, nil))
			if !equalIDs(got, want) {
				t.Fatalf("%s: Range mismatch: got %d ids, want %d", name, len(got), len(want))
			}
		}
	}
}

func TestWithinIncludesCenterPoint(t *testing.T) {
	pts := randomPoints(500, 31)
	for name, idx := range indexesUnderTest(pts) {
		for i := 0; i < 20; i++ {
			got := idx.Within(pts[i], 0.5, nil)
			found := false
			for _, id := range got {
				if id == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: Within around point %d does not include itself", name, i)
			}
		}
	}
}

func TestEmptyIndexes(t *testing.T) {
	for name, idx := range indexesUnderTest(nil) {
		if idx.Len() != 0 {
			t.Errorf("%s: empty Len = %d", name, idx.Len())
		}
		if got := idx.Within(geo.Point{Lat: 1.3, Lon: 103.8}, 100, nil); len(got) != 0 {
			t.Errorf("%s: empty Within returned %v", name, got)
		}
		if got := idx.Range(geo.RectAround(geo.Point{Lat: 1.3, Lon: 103.8}, 100), nil); len(got) != 0 {
			t.Errorf("%s: empty Range returned %v", name, got)
		}
	}
}

func TestSinglePoint(t *testing.T) {
	pts := []geo.Point{{Lat: 1.3, Lon: 103.8}}
	for name, idx := range indexesUnderTest(pts) {
		got := idx.Within(pts[0], 1, nil)
		if len(got) != 1 || got[0] != 0 {
			t.Errorf("%s: single-point Within = %v", name, got)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	p := geo.Point{Lat: 1.3, Lon: 103.8}
	pts := []geo.Point{p, p, p, p, p}
	for name, idx := range indexesUnderTest(pts) {
		got := idx.Within(p, 1, nil)
		if len(got) != 5 {
			t.Errorf("%s: duplicate-point Within returned %d ids, want 5", name, len(got))
		}
	}
}

func TestWithinAppendsToDst(t *testing.T) {
	pts := randomPoints(100, 41)
	idx := NewGrid(pts, 50)
	dst := []int{-1}
	got := idx.Within(pts[0], 100, dst)
	if len(got) < 1 || got[0] != -1 {
		t.Fatal("Within did not append to dst")
	}
}

func TestRTreeDepthGrows(t *testing.T) {
	small := NewRTree(randomPoints(10, 51), 16)
	big := NewRTree(randomPoints(5000, 52), 16)
	if small.Depth() < 1 {
		t.Errorf("small tree depth %d", small.Depth())
	}
	if big.Depth() <= small.Depth() {
		t.Errorf("big tree depth %d not greater than small %d", big.Depth(), small.Depth())
	}
	if empty := NewRTree(nil, 16); empty.Depth() != 0 {
		t.Errorf("empty tree depth %d, want 0", empty.Depth())
	}
}

func TestGridDefaultCellSize(t *testing.T) {
	// Non-positive cell size must not panic and must still be correct.
	pts := randomPoints(200, 61)
	idx := NewGrid(pts, 0)
	ref := NewLinear(pts)
	want := sortedIDs(ref.Within(pts[0], 200, nil))
	got := sortedIDs(idx.Within(pts[0], 200, nil))
	if !equalIDs(got, want) {
		t.Fatal("grid with default cell size returns wrong results")
	}
}

func benchIndexes(b *testing.B, n int) map[string]Index {
	pts := clusteredPoints(n, 99)
	return map[string]Index{
		"linear": NewLinear(pts),
		"grid":   NewGrid(pts, 15),
		"rtree":  NewRTree(pts, 0),
	}
}

func BenchmarkWithin10k(b *testing.B) {
	idxs := benchIndexes(b, 10000)
	center := geo.Point{Lat: 1.3, Lon: 103.8}
	for _, name := range []string{"linear", "grid", "rtree"} {
		idx := idxs[name]
		b.Run(name, func(b *testing.B) {
			var dst []int
			for i := 0; i < b.N; i++ {
				dst = idx.Within(center, 15, dst[:0])
			}
		})
	}
}
