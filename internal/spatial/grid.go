// Package spatial provides the 2-D point indexes the system uses to tame the
// O(n²) neighbour searches inside DBSCAN and the dispatch circle queries:
// a uniform grid index and an R-tree (§4.3 of the paper suggests "the R-Tree
// based or grid based spatial index").
//
// Both indexes answer the same two queries over a fixed point set:
//
//   - Range(rect):   all point IDs inside a bounding rectangle
//   - Within(p, r):  all point IDs within r meters of p
//
// Point IDs are the indexes into the point slice supplied at construction,
// so callers can carry arbitrary payloads in parallel slices.
package spatial

import (
	"math"

	"taxiqueue/internal/geo"
)

// Index is the query interface shared by the grid and R-tree indexes and by
// the brute-force reference implementation used in tests.
type Index interface {
	// Range appends to dst the IDs of all points inside rect and returns
	// the extended slice.
	Range(rect geo.Rect, dst []int) []int
	// Within appends to dst the IDs of all points within radiusMeters of
	// center (inclusive) and returns the extended slice.
	Within(center geo.Point, radiusMeters float64, dst []int) []int
	// Len returns the number of indexed points.
	Len() int
}

// Grid is a uniform-cell spatial hash over a fixed point set. Cell size is
// chosen by the caller; for DBSCAN the natural choice is the eps radius.
// After construction the grid is read-only and safe for concurrent queries.
type Grid struct {
	pts      []geo.Point
	origin   geo.Point
	cellDeg  float64          // cell size in degrees latitude
	cellDegX float64          // cell size in degrees longitude at the origin latitude
	cellID   map[uint64]int32 // cell key → index into spans
	spans    []gridSpan       // per-cell [lo, hi) range into ids
	ids      []int32          // all point IDs, grouped by cell
	counts   []int32          // build scratch, kept for Reset reuse
}

type gridSpan struct{ lo, hi int32 }

// NewGrid builds a grid index over pts with the given cell size in meters.
// The point slice is retained (not copied); it must not be mutated while
// the index is in use. Construction is two-pass: a counting pass sizes each
// cell, then IDs are placed into one backing array carved into per-cell
// spans — no per-cell append growth.
func NewGrid(pts []geo.Point, cellMeters float64) *Grid {
	g := new(Grid)
	g.Reset(pts, cellMeters)
	return g
}

// Reset rebuilds the index over pts in place, reusing the cell map and
// every backing array of the previous build that is large enough — the
// parameter-sweep path rebuilds the same point set once per eps value, and
// without reuse each rebuild re-allocates the whole index. Reset must not
// run concurrently with queries; the zero Grid is a valid receiver.
func (g *Grid) Reset(pts []geo.Point, cellMeters float64) {
	if cellMeters <= 0 {
		cellMeters = 15
	}
	g.pts = pts
	if g.cellID == nil {
		g.cellID = make(map[uint64]int32, len(pts)/2+1)
	} else {
		clear(g.cellID)
	}
	g.origin = geo.Point{}
	if len(pts) > 0 {
		g.origin = geo.BoundingRect(pts).Center()
	}
	metersPerDegLat := 2 * math.Pi * geo.EarthRadiusMeters / 360
	g.cellDeg = cellMeters / metersPerDegLat
	g.cellDegX = cellMeters / (metersPerDegLat * math.Cos(g.origin.Lat*math.Pi/180))
	counts := g.counts[:0]
	for _, p := range pts {
		key := g.cellKey(p)
		if id, ok := g.cellID[key]; ok {
			counts[id]++
		} else {
			g.cellID[key] = int32(len(counts))
			counts = append(counts, 1)
		}
	}
	g.counts = counts
	if cap(g.spans) < len(counts) {
		g.spans = make([]gridSpan, len(counts))
	} else {
		g.spans = g.spans[:len(counts)]
	}
	off := int32(0)
	for i, c := range counts {
		g.spans[i] = gridSpan{lo: off, hi: off} // hi advances during placement
		off += c
	}
	if cap(g.ids) < len(pts) {
		g.ids = make([]int32, len(pts))
	} else {
		g.ids = g.ids[:len(pts)]
	}
	for i, p := range pts {
		sp := &g.spans[g.cellID[g.cellKey(p)]]
		g.ids[sp.hi] = int32(i)
		sp.hi++
	}
}

// cellIDs returns the point IDs of one cell, or nil when the cell is empty.
func (g *Grid) cellIDs(key uint64) []int32 {
	id, ok := g.cellID[key]
	if !ok {
		return nil
	}
	sp := g.spans[id]
	return g.ids[sp.lo:sp.hi]
}

func (g *Grid) cellCoords(p geo.Point) (int32, int32) {
	cy := int32(math.Floor((p.Lat - g.origin.Lat) / g.cellDeg))
	cx := int32(math.Floor((p.Lon - g.origin.Lon) / g.cellDegX))
	return cx, cy
}

func (g *Grid) cellKey(p geo.Point) uint64 {
	cx, cy := g.cellCoords(p)
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// Len implements Index.
func (g *Grid) Len() int { return len(g.pts) }

// Range implements Index.
func (g *Grid) Range(rect geo.Rect, dst []int) []int {
	loX, loY := g.cellCoords(geo.Point{Lat: rect.MinLat, Lon: rect.MinLon})
	hiX, hiY := g.cellCoords(geo.Point{Lat: rect.MaxLat, Lon: rect.MaxLon})
	for cx := loX; cx <= hiX; cx++ {
		for cy := loY; cy <= hiY; cy++ {
			key := uint64(uint32(cx))<<32 | uint64(uint32(cy))
			for _, id := range g.cellIDs(key) {
				if rect.Contains(g.pts[id]) {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

// Within implements Index.
func (g *Grid) Within(center geo.Point, radiusMeters float64, dst []int) []int {
	rect := geo.RectAround(center, radiusMeters)
	loX, loY := g.cellCoords(geo.Point{Lat: rect.MinLat, Lon: rect.MinLon})
	hiX, hiY := g.cellCoords(geo.Point{Lat: rect.MaxLat, Lon: rect.MaxLon})
	for cx := loX; cx <= hiX; cx++ {
		for cy := loY; cy <= hiY; cy++ {
			key := uint64(uint32(cx))<<32 | uint64(uint32(cy))
			for _, id := range g.cellIDs(key) {
				if geo.Equirect(center, g.pts[id]) <= radiusMeters {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}

// Linear is the brute-force reference Index used to validate the grid and
// R-tree in tests and as the baseline in ablation benches.
type Linear struct{ pts []geo.Point }

// NewLinear wraps pts in a brute-force index.
func NewLinear(pts []geo.Point) *Linear { return &Linear{pts: pts} }

// Len implements Index.
func (l *Linear) Len() int { return len(l.pts) }

// Range implements Index.
func (l *Linear) Range(rect geo.Rect, dst []int) []int {
	for i, p := range l.pts {
		if rect.Contains(p) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Within implements Index.
func (l *Linear) Within(center geo.Point, radiusMeters float64, dst []int) []int {
	for i, p := range l.pts {
		if geo.Equirect(center, p) <= radiusMeters {
			dst = append(dst, i)
		}
	}
	return dst
}
