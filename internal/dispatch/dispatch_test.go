package dispatch

import (
	"testing"
	"time"

	"taxiqueue/internal/geo"
)

var (
	spotA = geo.Point{Lat: 1.30, Lon: 103.83}
	spotB = geo.Point{Lat: 1.36, Lon: 103.99}
	t0    = time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC)
)

func TestRequestOutcome(t *testing.T) {
	var d Dispatcher
	if !d.Request(t0, "A", spotA, 3) {
		t.Error("request with 3 taxis available failed")
	}
	if d.Request(t0.Add(time.Minute), "A", spotA, 0) {
		t.Error("request with 0 taxis available succeeded")
	}
	total, failed := d.Totals()
	if total != 2 || failed != 1 {
		t.Fatalf("Totals = (%d, %d), want (2, 1)", total, failed)
	}
}

func TestDefaultRadius(t *testing.T) {
	var d Dispatcher
	if d.Radius() != DefaultRadiusMeters {
		t.Fatalf("default radius = %g", d.Radius())
	}
	d.RadiusMeters = 500
	if d.Radius() != 500 {
		t.Fatalf("custom radius = %g", d.Radius())
	}
}

func TestFailedCountWindow(t *testing.T) {
	var d Dispatcher
	for i := 0; i < 10; i++ {
		d.Request(t0.Add(time.Duration(i)*time.Minute), "A", spotA, i%2) // odd i succeed
	}
	// Failures at minutes 0,2,4,6,8. Window [2m, 7m) covers 2,4,6.
	got := d.FailedCount("A", t0.Add(2*time.Minute), t0.Add(7*time.Minute))
	if got != 3 {
		t.Fatalf("FailedCount = %d, want 3", got)
	}
	if d.FailedCount("B", t0, t0.Add(time.Hour)) != 0 {
		t.Error("FailedCount matched wrong key")
	}
}

func TestFailedNear(t *testing.T) {
	var d Dispatcher
	d.Request(t0, "A", spotA, 0)
	d.Request(t0, "B", spotB, 0)
	near := d.FailedNear(spotA, 200, t0.Add(-time.Minute), t0.Add(time.Minute))
	if near != 1 {
		t.Fatalf("FailedNear(spotA) = %d, want 1", near)
	}
	// spotA and spotB are ~18 km apart; a 1 km circle sees only one.
	all := d.FailedNear(spotA, 50000, t0.Add(-time.Minute), t0.Add(time.Minute))
	if all != 2 {
		t.Fatalf("FailedNear(island) = %d, want 2", all)
	}
}

func TestLedgerCopyIsolated(t *testing.T) {
	var d Dispatcher
	d.Request(t0, "A", spotA, 1)
	l := d.Ledger()
	l[0].SpotKey = "mutated"
	if d.Ledger()[0].SpotKey != "A" {
		t.Fatal("Ledger exposes internal state")
	}
}

func TestFailureRateByHour(t *testing.T) {
	var d Dispatcher
	// Hour 8: 1 success, 1 failure. Hour 9: all success.
	d.Request(t0, "A", spotA, 1)
	d.Request(t0.Add(time.Minute), "A", spotA, 0)
	d.Request(t0.Add(time.Hour), "A", spotA, 1)
	rates := d.FailureRateByHour()
	if rates[8] != 0.5 {
		t.Errorf("hour 8 rate = %g, want 0.5", rates[8])
	}
	if rates[9] != 0 {
		t.Errorf("hour 9 rate = %g, want 0", rates[9])
	}
	if rates[3] != 0 {
		t.Errorf("empty hour rate = %g, want 0", rates[3])
	}
}

func TestSorted(t *testing.T) {
	var d Dispatcher
	d.Request(t0, "A", spotA, 1)
	d.Request(t0.Add(time.Second), "A", spotA, 1)
	if !d.Sorted() {
		t.Fatal("chronological ledger reported unsorted")
	}
	d.Request(t0.Add(-time.Hour), "A", spotA, 1)
	if d.Sorted() {
		t.Fatal("out-of-order ledger reported sorted")
	}
}

func TestConcurrentRequests(t *testing.T) {
	var d Dispatcher
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				d.Request(t0.Add(time.Duration(i)*time.Second), "A", spotA, i%3)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	total, failed := d.Totals()
	if total != 800 {
		t.Fatalf("total = %d, want 800", total)
	}
	// i%3==0 fails: 34 of 100 per goroutine.
	if failed != 8*34 {
		t.Fatalf("failed = %d, want %d", failed, 8*34)
	}
}
