// Package dispatch models the taxi operator's booking backend described in
// §2.2 and §6.2.2: booking requests are dispatched to FREE/STC taxis inside
// a dispatching circle (radius 1 km in the paper) centered at the pickup
// location; a booking with no available taxi inside the circle is recorded
// as a failed booking. The failed-booking ledger is the validation data
// source behind Table 8.
package dispatch

import (
	"sort"
	"sync"
	"time"

	"taxiqueue/internal/geo"
)

// DefaultRadiusMeters is the paper's dispatching-circle radius (§6.2.2).
const DefaultRadiusMeters = 1000

// Booking is one booking request processed by the dispatcher.
type Booking struct {
	Time    time.Time
	Pickup  geo.Point
	SpotKey string // opaque caller key (e.g. the queue-spot name); may be ""
	Failed  bool
}

// Dispatcher decides booking outcomes and keeps the ledger. It is safe for
// concurrent use.
type Dispatcher struct {
	// RadiusMeters is the dispatching-circle radius; DefaultRadiusMeters
	// when zero.
	RadiusMeters float64

	mu     sync.Mutex
	ledger []Booking
}

// Radius returns the effective dispatching radius.
func (d *Dispatcher) Radius() float64 {
	if d.RadiusMeters <= 0 {
		return DefaultRadiusMeters
	}
	return d.RadiusMeters
}

// Request records a booking attempt at the given pickup location.
// availableInCircle is the number of FREE/STC taxis the caller found inside
// the dispatching circle; the booking succeeds iff it is positive. Request
// returns true on success.
func (d *Dispatcher) Request(now time.Time, spotKey string, pickup geo.Point, availableInCircle int) bool {
	b := Booking{Time: now, Pickup: pickup, SpotKey: spotKey, Failed: availableInCircle <= 0}
	d.mu.Lock()
	d.ledger = append(d.ledger, b)
	d.mu.Unlock()
	return !b.Failed
}

// Ledger returns a copy of all bookings in arrival order.
func (d *Dispatcher) Ledger() []Booking {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Booking(nil), d.ledger...)
}

// FailedCount returns the number of failed bookings with SpotKey key and
// time in [from, to).
func (d *Dispatcher) FailedCount(key string, from, to time.Time) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, b := range d.ledger {
		if b.Failed && b.SpotKey == key && !b.Time.Before(from) && b.Time.Before(to) {
			n++
		}
	}
	return n
}

// FailedNear returns the number of failed bookings within radiusMeters of
// pos with time in [from, to). This is how the engine joins failed bookings
// to detected queue spots, which have no SpotKey.
func (d *Dispatcher) FailedNear(pos geo.Point, radiusMeters float64, from, to time.Time) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, b := range d.ledger {
		if b.Failed && !b.Time.Before(from) && b.Time.Before(to) &&
			geo.Equirect(pos, b.Pickup) <= radiusMeters {
			n++
		}
	}
	return n
}

// Totals returns the total and failed booking counts.
func (d *Dispatcher) Totals() (total, failed int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, b := range d.ledger {
		if b.Failed {
			failed++
		}
	}
	return len(d.ledger), failed
}

// FailureRateByHour returns the 24-element failure-rate histogram
// (failed/total per hour of day); hours with no bookings report 0.
func (d *Dispatcher) FailureRateByHour() [24]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var failed, total [24]int
	for _, b := range d.ledger {
		h := b.Time.Hour()
		total[h]++
		if b.Failed {
			failed[h]++
		}
	}
	var out [24]float64
	for h := range out {
		if total[h] > 0 {
			out[h] = float64(failed[h]) / float64(total[h])
		}
	}
	return out
}

// Sorted reports whether the ledger is in non-decreasing time order
// (it always is when callers request in simulation order; exposed for
// invariant tests).
func (d *Dispatcher) Sorted() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return sort.SliceIsSorted(d.ledger, func(i, j int) bool {
		return d.ledger[i].Time.Before(d.ledger[j].Time)
	})
}
