package experiments

import (
	"fmt"
	"strings"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/report"
)

// AccuracyResult is the per-slot confusion between the engine's labels and
// the simulator's ground-truth contexts — an evaluation the paper could
// only approximate with external data sources (Table 8), but that the
// simulated substrate makes exact.
type AccuracyResult struct {
	// Confusion[truth][predicted] counts slots; indexes are QueueType.
	Confusion [5][5]int
	// Labeled is the number of compared slots with a non-Unidentified
	// engine label.
	Labeled int
	// Agreement is the share of labeled slots where the engine's label
	// matches the ground truth exactly.
	Agreement float64
	// QueueAgreement scores the two binary sub-questions separately: did
	// the engine get "is there a taxi queue?" / "is there a passenger
	// queue?" right.
	TaxiQueueAgreement float64
	PaxQueueAgreement  float64
}

// truthLabel derives the ground-truth context of one slot from the
// simulator's queue-length logs: a side "queues" when its time-averaged
// length is at least 1 (the paper's own L̄ >= 1 convention).
func truthLabel(avgTaxi, avgPax float64) core.QueueType {
	taxiQ := avgTaxi >= 1
	paxQ := avgPax >= 1
	switch {
	case taxiQ && paxQ:
		return core.C1
	case paxQ:
		return core.C2
	case taxiQ:
		return core.C3
	default:
		return core.C4
	}
}

// Accuracy compares Monday's engine labels against ground truth over the
// context spots.
func (s *Suite) Accuracy() (AccuracyResult, string, error) {
	d, err := s.Day(time.Monday)
	if err != nil {
		return AccuracyResult{}, "", err
	}
	var r AccuracyResult
	sel := s.contextSpotSelection(d.Result, s.Cfg.ContextSpots)
	hasTaxiQ := func(q core.QueueType) bool { return q == core.C1 || q == core.C3 }
	hasPaxQ := func(q core.QueueType) bool { return q == core.C1 || q == core.C2 }
	var taxiRight, paxRight int
	for _, i := range sel {
		sa := d.Result.Spots[i]
		truth := s.truthFor(d, sa.Spot.Pos)
		if truth == nil {
			continue
		}
		for j, lbl := range sa.Labels {
			from, to := d.Grid.Bounds(j)
			tl := truthLabel(truth.AvgTaxiQueueLen(from, to), truth.AvgPaxQueueLen(from, to))
			r.Confusion[tl][lbl]++
			if lbl == core.Unidentified {
				continue
			}
			r.Labeled++
			if lbl == tl {
				r.Agreement++
			}
			if hasTaxiQ(lbl) == hasTaxiQ(tl) {
				taxiRight++
			}
			if hasPaxQ(lbl) == hasPaxQ(tl) {
				paxRight++
			}
		}
	}
	if r.Labeled > 0 {
		r.Agreement /= float64(r.Labeled)
		r.TaxiQueueAgreement = float64(taxiRight) / float64(r.Labeled)
		r.PaxQueueAgreement = float64(paxRight) / float64(r.Labeled)
	}

	var b strings.Builder
	b.WriteString("Label accuracy vs simulator ground truth (labeled slots only)\n")
	b.WriteString("(the paper validates indirectly via Table 8; the simulator allows an exact check)\n\n")
	t := report.NewTable("Confusion matrix: rows = truth, columns = engine label",
		"truth \\ engine", "C1", "C2", "C3", "C4", "Unid")
	for _, tq := range queueTypeOrder[:4] {
		row := []string{tq.String()}
		for _, pq := range queueTypeOrder {
			row = append(row, fmt.Sprint(r.Confusion[tq][pq]))
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nexact agreement:            %s over %d labeled slots\n",
		report.Pct(r.Agreement), r.Labeled)
	fmt.Fprintf(&b, "taxi-queue side agreement:  %s\n", report.Pct(r.TaxiQueueAgreement))
	fmt.Fprintf(&b, "passenger-queue agreement:  %s\n", report.Pct(r.PaxQueueAgreement))
	return r, b.String(), nil
}
