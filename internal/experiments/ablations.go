package experiments

import (
	"fmt"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/report"
	"taxiqueue/internal/sim"
)

// AblationSpeedThreshold sweeps PEA's η_sp (the paper fixes 10 km/h):
// extracted pickup events and detected spots per threshold. Too low a
// threshold misses crawling pickups; too high admits moving traffic and
// blurs the clusters. Runs on its own compact day so the suite's cached
// days stay untouched.
func (s *Suite) AblationSpeedThreshold() (map[float64][2]int, string, error) {
	scale := s.Cfg.CityScale
	if scale > 0.25 {
		scale = 0.25 // ablation detail does not need the full city
	}
	out := sim.Run(sim.Config{Seed: s.Cfg.Seed + 5555,
		City: citymap.Generate(s.Cfg.Seed+5555, scale), InjectFaults: true})
	records, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	byTaxi := mdt.SplitByTaxi(records)

	res := map[float64][2]int{}
	t := report.NewTable("Ablation: PEA speed threshold η_sp (paper: 10 km/h)",
		"η_sp", "Pickup events", "Detected spots")
	for _, eta := range []float64{5, 10, 15, 20} {
		pickups := core.ExtractAllParallel(byTaxi, eta, 0)
		cfg := DefaultDetector(s)
		spots, err := core.DetectSpots(pickups, cfg)
		if err != nil {
			return nil, "", err
		}
		res[eta] = [2]int{len(pickups), len(spots)}
		t.AddRow(fmt.Sprintf("%.0f km/h", eta), fmt.Sprint(len(pickups)), fmt.Sprint(len(spots)))
	}
	return res, t.String(), nil
}

// DefaultDetector builds the suite's detector config.
func DefaultDetector(s *Suite) core.DetectorConfig {
	cfg := core.DefaultDetectorConfig()
	cfg.Cluster.EpsMeters = s.Cfg.Eps
	cfg.Cluster.MinPoints = s.Cfg.MinPts
	return cfg
}

// AblationAmplification re-classifies Monday's spots with and without the
// §6.2.1 coverage amplification. Without it, the saturation bars τ_arr and
// τ_dep are unreachable from a 60% feed and C1 effectively disappears — the
// reason the paper's correction matters.
func (s *Suite) AblationAmplification() (map[string]map[core.QueueType]float64, string, error) {
	d, err := s.Day(time.Monday)
	if err != nil {
		return nil, "", err
	}
	sel := s.contextSpotSelection(d.Result, s.Cfg.ContextSpots)
	classifyWith := func(amp core.Amplification) map[core.QueueType]float64 {
		var sets [][]core.QueueType
		for _, i := range sel {
			sa := d.Result.Spots[i]
			feats := core.ComputeFeatures(sa.Waits, d.Grid, amp)
			sets = append(sets, core.Classify(feats, sa.Thresholds))
		}
		return core.Proportions(sets...)
	}
	withAmp := classifyWith(core.PaperAmplification)
	without := classifyWith(core.NoAmplification)
	res := map[string]map[core.QueueType]float64{"amplified": withAmp, "raw": without}

	t := report.NewTable("Ablation: §6.2.1 coverage amplification (60% feed)",
		"Queue type", "With amplification", "Without")
	for _, q := range queueTypeOrder {
		t.AddRow(q.String(), report.Pct(withAmp[q]), report.Pct(without[q]))
	}
	return res, t.String(), nil
}

// AblationZoning compares spot detection with the Fig. 5 four-zone
// partition against island-wide clustering: results should agree almost
// everywhere (the partition exists for DBSCAN's O(n²) cost, not quality).
func (s *Suite) AblationZoning() (map[string]int, string, error) {
	d, err := s.Day(time.Monday)
	if err != nil {
		return nil, "", err
	}
	cfgZoned := DefaultDetector(s)
	cfgZoned.ByZone = true
	cfgFlat := DefaultDetector(s)
	cfgFlat.ByZone = false
	zoned, err := core.DetectSpots(d.Result.Pickups, cfgZoned)
	if err != nil {
		return nil, "", err
	}
	flat, err := core.DetectSpots(d.Result.Pickups, cfgFlat)
	if err != nil {
		return nil, "", err
	}
	// Match spots across the two runs within 20 m.
	matched := 0
	for _, a := range zoned {
		for _, b := range flat {
			if geo.Equirect(a.Pos, b.Pos) < 20 {
				matched++
				break
			}
		}
	}
	res := map[string]int{"zoned": len(zoned), "flat": len(flat), "matched": matched}
	t := report.NewTable("Ablation: four-zone partition vs island-wide DBSCAN",
		"Variant", "Spots")
	t.AddRow("four zones (paper)", fmt.Sprint(len(zoned)))
	t.AddRow("island-wide", fmt.Sprint(len(flat)))
	t.AddRow("matched within 20 m", fmt.Sprint(matched))
	return res, t.String(), nil
}
