package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/hausdorff"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/monitor"
	"taxiqueue/internal/report"
	"taxiqueue/internal/sim"
)

// Cleaning reproduces the §6.1.1 preprocessing statistics (paper: ~2.8% of
// records removed across three error classes).
func (s *Suite) Cleaning() (clean.Stats, string, error) {
	d, err := s.Day(time.Monday)
	if err != nil {
		return clean.Stats{}, "", err
	}
	t := report.NewTable("§6.1.1 Data cleaning (paper: ~2.8% erroneous records)",
		"Metric", "Value")
	st := d.CleanStats
	t.AddRow("input records", fmt.Sprint(st.Input))
	t.AddRow("duplicates removed", fmt.Sprint(st.Duplicates))
	t.AddRow("improper states removed", fmt.Sprint(st.ImproperStates))
	t.AddRow("GPS outliers removed", fmt.Sprint(st.GPSOutliers))
	t.AddRow("total removed", fmt.Sprintf("%d (%s)", st.Removed(), report.Pct(st.Rate())))
	return st, t.String(), nil
}

// Fig6 reproduces the DBSCAN parameter sweep (detected queue-spot count vs
// ε ∈ {5,10,15,20} m × minPts ∈ {25,50,100,150}).
func (s *Suite) Fig6() ([]cluster.SweepCell, string, error) {
	d, err := s.Day(time.Monday)
	if err != nil {
		return nil, "", err
	}
	pts := make([]geo.Point, len(d.Result.Pickups))
	for i, p := range d.Result.Pickups {
		pts[i] = p.Centroid
	}
	epsVals := []float64{5, 10, 15, 20}
	minPts := []int{25, 50, 100, 150}
	cells, err := cluster.SweepParallel(pts, epsVals, minPts, 0)
	if err != nil {
		return nil, "", err
	}
	t := report.NewTable(
		fmt.Sprintf("Fig. 6 Detected queue spots vs DBSCAN parameters (%d pickup events)", len(pts)),
		"eps \\ minPts", "25", "50", "100", "150")
	for i, eps := range epsVals {
		row := []string{fmt.Sprintf("%.0f m", eps)}
		for j := range minPts {
			row = append(row, fmt.Sprint(cells[i*len(minPts)+j].NumClusters))
		}
		t.AddRow(row...)
	}
	return cells, t.String(), nil
}

// Fig7Result summarizes island-wide spot detection and the §6.1.3 LTA
// taxi-stand comparison.
type Fig7Result struct {
	TotalSpots        int
	ByZone            [citymap.NumZones]int
	CBDStands         int     // central-zone official stands (paper: 31)
	StandsDetected    int     // detected within the match radius (paper: 30)
	MeanLocationError float64 // meters (paper: 7.6 m)
	BusyNonStandSpots int     // detected non-stand spots busier than the median stand
}

// Fig7 reproduces the island-wide queue-spot map summary and the taxi-stand
// accuracy check.
func (s *Suite) Fig7() (Fig7Result, string, error) {
	d, err := s.Day(time.Monday)
	if err != nil {
		return Fig7Result{}, "", err
	}
	res := d.Result
	var r Fig7Result
	r.TotalSpots = len(res.Spots)
	r.ByZone = res.SpotCountByZone()

	// Detected spots are compared against the stands' *registered*
	// coordinates: the few-meter survey/GPS mismatch between the registry
	// point and the actual queue area is what the paper's 7.6 m mean
	// location error measures.
	const matchRadius = 30.0
	var standPickups []int
	var errSum float64
	for _, lm := range s.City.TaxiStands() {
		if lm.Zone != citymap.Central {
			continue
		}
		r.CBDStands++
		best := -1.0
		bestPickups := 0
		for _, sa := range res.Spots {
			if dd := geo.Equirect(sa.Spot.Pos, lm.RegisteredPos); dd <= matchRadius && (best < 0 || dd < best) {
				best = dd
				bestPickups = sa.Spot.PickupCount
			}
		}
		if best >= 0 {
			r.StandsDetected++
			errSum += best
			standPickups = append(standPickups, bestPickups)
		}
	}
	if r.StandsDetected > 0 {
		r.MeanLocationError = errSum / float64(r.StandsDetected)
	}
	// Busy non-stand spots in the CBD (paper: "more than 15 queue spots in
	// this area, not labeled by LTA, have more daily pickups than many
	// taxi stands" — i.e. more than the quieter quartile of stands).
	quartileStand := 0
	if len(standPickups) > 0 {
		sort.Ints(standPickups)
		quartileStand = standPickups[len(standPickups)/4]
	}
	for _, sa := range res.Spots {
		if sa.Spot.Zone != citymap.Central || sa.Spot.PickupCount <= quartileStand {
			continue
		}
		nearStand := false
		for _, lm := range s.City.TaxiStands() {
			if geo.Equirect(sa.Spot.Pos, lm.Pos) <= matchRadius {
				nearStand = true
				break
			}
		}
		if !nearStand {
			r.BusyNonStandSpots++
		}
	}

	t := report.NewTable("Fig. 7 / §6.1.3 Detected queue spots", "Metric", "Value")
	t.AddRow("total spots detected", fmt.Sprint(r.TotalSpots))
	for z := 0; z < citymap.NumZones; z++ {
		t.AddRow("  "+citymap.Zone(z).String()+" zone", fmt.Sprint(r.ByZone[z]))
	}
	t.AddRow("CBD official taxi stands", fmt.Sprint(r.CBDStands))
	t.AddRow("stands detected", fmt.Sprintf("%d (paper: 30 of 31)", r.StandsDetected))
	t.AddRow("mean location error", fmt.Sprintf("%s (paper: 7.6 m)", report.Meters(r.MeanLocationError)))
	t.AddRow("busy unlabeled CBD spots", fmt.Sprintf("%d (paper: >15)", r.BusyNonStandSpots))
	return r, t.String(), nil
}

// Table4 reproduces the landmark-category shares near detected spots.
func (s *Suite) Table4() (map[citymap.Category]float64, string, error) {
	d, err := s.Day(time.Monday)
	if err != nil {
		return nil, "", err
	}
	const proximity = 50.0
	counts := map[citymap.Category]int{}
	unidentified := 0
	for _, sa := range d.Result.Spots {
		lm, dist, ok := s.City.NearestLandmark(sa.Spot.Pos)
		if ok && dist <= proximity {
			counts[lm.Category]++
		} else {
			unidentified++
		}
	}
	total := float64(len(d.Result.Spots))
	out := map[citymap.Category]float64{}
	t := report.NewTable("Table 4 Landmark nearby the detected queue spots",
		"Nearby facility or landmark", "Share", "Paper")
	paperShares := []string{"48.3%", "11.8%", "9.6%", "8.4%", "6.2%", "5.6%", "4.5%"}
	for c := citymap.Category(0); int(c) < citymap.NumCategories; c++ {
		frac := float64(counts[c]) / total
		out[c] = frac
		t.AddRow(c.String(), report.Pct(frac), paperShares[c])
	}
	t.AddRow("Unidentified", report.Pct(float64(unidentified)/total), "5.6%")
	return out, t.String(), nil
}

// Fig8 reproduces the per-zone, per-day-of-week detected spot counts.
func (s *Suite) Fig8() ([7][citymap.NumZones]int, string, error) {
	var counts [7][citymap.NumZones]int
	t := report.NewTable("Fig. 8 Queue spot number in different zones and days",
		"Day", "Central", "North", "West", "East", "Total")
	for i, wd := range Weekdays {
		d, err := s.Day(wd)
		if err != nil {
			return counts, "", err
		}
		byZone := d.Result.SpotCountByZone()
		counts[i] = byZone
		total := 0
		for _, n := range byZone {
			total += n
		}
		t.AddRow(DayNames[i],
			fmt.Sprint(byZone[citymap.Central]), fmt.Sprint(byZone[citymap.North]),
			fmt.Sprint(byZone[citymap.West]), fmt.Sprint(byZone[citymap.East]),
			fmt.Sprint(total))
	}
	return counts, t.String(), nil
}

// Table5 reproduces the modified-Hausdorff-distance matrix between the
// seven day-of-week spot sets.
func (s *Suite) Table5() ([][]float64, string, error) {
	sets := make([][]geo.Point, len(Weekdays))
	for i, wd := range Weekdays {
		d, err := s.Day(wd)
		if err != nil {
			return nil, "", err
		}
		pts := make([]geo.Point, len(d.Result.Spots))
		for j := range d.Result.Spots {
			pts[j] = d.Result.Spots[j].Spot.Pos
		}
		sets[i] = pts
	}
	m := hausdorff.Matrix(sets)
	t := report.NewTable("Table 5 Modified Hausdorff distance between day-of-week spot sets (meters)",
		append([]string{""}, DayNames...)...)
	for i := range m {
		row := []string{DayNames[i]}
		for j := range m[i] {
			row = append(row, fmt.Sprintf("%.1f", m[i][j]))
		}
		t.AddRow(row...)
	}
	return m, t.String(), nil
}

// Table6Result holds average extracted pickup counts per spot.
type Table6Result struct {
	Weekday [citymap.NumZones]float64
	Weekend [citymap.NumZones]float64
}

// Table6 reproduces the average daily pickup-event (sub-trajectory) count
// per queue spot by zone, weekday vs weekend.
func (s *Suite) Table6() (Table6Result, string, error) {
	var r Table6Result
	avgFor := func(wd time.Weekday) ([citymap.NumZones]float64, error) {
		var sums [citymap.NumZones]float64
		var counts [citymap.NumZones]int
		d, err := s.Day(wd)
		if err != nil {
			return sums, err
		}
		for _, sa := range d.Result.Spots {
			sums[sa.Spot.Zone] += float64(len(sa.Waits))
			counts[sa.Spot.Zone]++
		}
		for z := range sums {
			if counts[z] > 0 {
				sums[z] /= float64(counts[z])
			}
		}
		return sums, nil
	}
	var err error
	if r.Weekday, err = avgFor(time.Wednesday); err != nil {
		return r, "", err
	}
	if r.Weekend, err = avgFor(time.Sunday); err != nil {
		return r, "", err
	}
	t := report.NewTable("Table 6 Average pickup-event number per queue spot",
		"Day type", "Central", "North", "West", "East")
	t.AddRow("Working day", report.F(r.Weekday[0]), report.F(r.Weekday[1]),
		report.F(r.Weekday[2]), report.F(r.Weekday[3]))
	t.AddRow("Weekend day", report.F(r.Weekend[0]), report.F(r.Weekend[1]),
		report.F(r.Weekend[2]), report.F(r.Weekend[3]))
	return r, t.String(), nil
}

// queueTypeOrder is the row order used by the context tables.
var queueTypeOrder = []core.QueueType{core.C1, core.C2, core.C3, core.C4, core.Unidentified}

// Table7 reproduces the queue-type share table over the selected context
// spots on a working day.
func (s *Suite) Table7() (map[core.QueueType]float64, string, error) {
	d, err := s.Day(time.Monday)
	if err != nil {
		return nil, "", err
	}
	sel := s.contextSpotSelection(d.Result, s.Cfg.ContextSpots)
	var sets [][]core.QueueType
	for _, i := range sel {
		sets = append(sets, d.Result.Spots[i].Labels)
	}
	p := core.Proportions(sets...)
	paper := map[core.QueueType]string{
		core.C1: "30.1%", core.C2: "11.7%", core.C3: "8.6%",
		core.C4: "33.1%", core.Unidentified: "16.5%",
	}
	t := report.NewTable(
		fmt.Sprintf("Table 7 Proportion of queue types (%d spots, %s)", len(sel), "Monday"),
		"Queue type", "Share", "Paper")
	for _, q := range queueTypeOrder {
		t.AddRow(q.String(), report.Pct(p[q]), paper[q])
	}
	return p, t.String(), nil
}

// Fig9 reproduces the queue-type shares per day of week.
func (s *Suite) Fig9() ([7]map[core.QueueType]float64, string, error) {
	var out [7]map[core.QueueType]float64
	t := report.NewTable("Fig. 9 Proportion of queue type in different days of week",
		"Day", "C1", "C2", "C3", "C4", "Unid")
	for i, wd := range Weekdays {
		d, err := s.Day(wd)
		if err != nil {
			return out, "", err
		}
		sel := s.contextSpotSelection(d.Result, s.Cfg.ContextSpots)
		var sets [][]core.QueueType
		for _, j := range sel {
			sets = append(sets, d.Result.Spots[j].Labels)
		}
		p := core.Proportions(sets...)
		out[i] = p
		t.AddRow(DayNames[i], report.Pct(p[core.C1]), report.Pct(p[core.C2]),
			report.Pct(p[core.C3]), report.Pct(p[core.C4]), report.Pct(p[core.Unidentified]))
	}
	return out, t.String(), nil
}

// Table8Result aggregates the two independent validation signals per label.
type Table8Result struct {
	AvgTaxis    map[core.QueueType]float64 // vehicle-monitor average count
	AvgFailures map[core.QueueType]float64 // failed bookings per slot
}

// Table8 validates the labels against the vehicle monitor (average taxi
// count inside the stand polygon) and the failed-booking ledger.
func (s *Suite) Table8() (Table8Result, string, error) {
	d, err := s.Day(time.Monday)
	if err != nil {
		return Table8Result{}, "", err
	}
	sel := s.contextSpotSelection(d.Result, s.Cfg.ContextSpots)
	taxiSum := map[core.QueueType]float64{}
	failSum := map[core.QueueType]float64{}
	n := map[core.QueueType]int{}
	for _, i := range sel {
		sa := d.Result.Spots[i]
		truth := s.truthFor(d, sa.Spot.Pos)
		if truth == nil {
			continue
		}
		// Exercise the real monitor component: replay the ground-truth
		// change log into an AreaCounter, exactly what the camera system
		// would have produced.
		counter := monitor.NewAreaCounter(truth.Landmark.Name,
			geo.CirclePolygon(truth.Landmark.Pos, 40, 12))
		for _, sample := range truth.TaxiQueueLog {
			if err := counter.Observe(sample.Time, sample.Len); err != nil {
				return Table8Result{}, "", err
			}
		}
		for j, lbl := range sa.Labels {
			from, to := d.Grid.Bounds(j)
			taxiSum[lbl] += counter.Average(from, to)
			failSum[lbl] += float64(d.Dispatcher.FailedNear(sa.Spot.Pos, 150, from, to))
			n[lbl]++
		}
	}
	r := Table8Result{
		AvgTaxis:    map[core.QueueType]float64{},
		AvgFailures: map[core.QueueType]float64{},
	}
	t := report.NewTable("Table 8 Average number of taxis (monitor) and failed bookings per slot",
		"Queue type", "Avg taxis", "Paper", "Avg failed bookings", "Paper")
	paperTaxis := map[core.QueueType]string{
		core.C1: "6.13", core.C2: "1.35", core.C3: "3.26", core.C4: "0.32", core.Unidentified: "1.56"}
	paperFail := map[core.QueueType]string{
		core.C1: "0.35", core.C2: "4.29", core.C3: "0.13", core.C4: "0.73", core.Unidentified: "0.24"}
	for _, q := range queueTypeOrder {
		if n[q] > 0 {
			r.AvgTaxis[q] = taxiSum[q] / float64(n[q])
			r.AvgFailures[q] = failSum[q] / float64(n[q])
		}
		t.AddRow(q.String(), report.F2(r.AvgTaxis[q]), paperTaxis[q],
			report.F2(r.AvgFailures[q]), paperFail[q])
	}
	return r, t.String(), nil
}

// truthFor matches a detected spot back to its landmark's ground truth.
func (s *Suite) truthFor(d *Day, pos geo.Point) *sim.SpotTruth {
	for i := range s.City.Landmarks {
		if geo.Equirect(pos, s.City.Landmarks[i].Pos) < 30 {
			return d.Truth.Spots[i]
		}
	}
	return nil
}

// SlotRange is a run of consecutive slots with the same label (Table 9).
type SlotRange struct {
	From, To time.Time // [From, To)
	Label    core.QueueType
}

// Table9 reproduces the Lucky Plaza Sunday case study: the day's queue-type
// timeline at one mall spot.
func (s *Suite) Table9() ([]SlotRange, string, error) {
	d, err := s.Day(time.Sunday)
	if err != nil {
		return nil, "", err
	}
	lp, ok := s.City.Find("Lucky Plaza")
	if !ok {
		return nil, "", fmt.Errorf("experiments: Lucky Plaza missing from city")
	}
	var spot *core.SpotAnalysis
	for i := range d.Result.Spots {
		if geo.Equirect(d.Result.Spots[i].Spot.Pos, lp.Pos) < 30 {
			spot = &d.Result.Spots[i]
			break
		}
	}
	if spot == nil {
		return nil, "", fmt.Errorf("experiments: Lucky Plaza spot not detected on Sunday")
	}
	var ranges []SlotRange
	for j, lbl := range spot.Labels {
		from, to := d.Grid.Bounds(j)
		if len(ranges) > 0 && ranges[len(ranges)-1].Label == lbl {
			ranges[len(ranges)-1].To = to
			continue
		}
		ranges = append(ranges, SlotRange{From: from, To: to, Label: lbl})
	}
	var b strings.Builder
	b.WriteString("Table 9 Lucky Plaza queue-type timeline (Sunday)\n")
	b.WriteString("Paper: C1/C3 around midnight, C4 01:30-08:30, C1<->C2 during 11:00-20:00 shopping hours, C4 late evening\n")
	byLabel := map[core.QueueType][]string{}
	for _, r := range ranges {
		byLabel[r.Label] = append(byLabel[r.Label],
			fmt.Sprintf("%s-%s", r.From.Format("15:04"), r.To.Format("15:04")))
	}
	for _, q := range queueTypeOrder {
		if len(byLabel[q]) > 0 {
			fmt.Fprintf(&b, "%-13s %s\n", q.String(), strings.Join(byLabel[q], ", "))
		}
	}
	return ranges, b.String(), nil
}

// DriverBehavior reports the §7.2 finding: taxis entering queue spots with
// a BUSY state and quickly leaving with POB (cherry-picking favorite
// passengers) concentrate in the passenger-queue contexts (C1/C2).
func (s *Suite) DriverBehavior() (map[core.QueueType]int, string, error) {
	d, err := s.Day(time.Monday)
	if err != nil {
		return nil, "", err
	}
	res := d.Result
	spots := make([]core.QueueSpot, len(res.Spots))
	for i := range res.Spots {
		spots[i] = res.Spots[i].Spot
	}
	assigned := core.AssignPickups(res.Pickups, spots, 30)
	counts := map[core.QueueType]int{}
	for i := range res.Spots {
		sa := &res.Spots[i]
		for _, p := range assigned[i] {
			// A BUSY-state pickup: the run contains BUSY and ends POB;
			// WTE extracts no wait from it, so it is invisible to QCD —
			// we join it to the slot label by its POB time.
			hasBusy := false
			for _, rec := range p.Sub {
				if rec.State == mdt.Busy {
					hasBusy = true
					break
				}
			}
			if !hasBusy || p.Sub[len(p.Sub)-1].State != mdt.POB {
				continue
			}
			counts[sa.LabelAt(d.Grid, p.Sub[len(p.Sub)-1].Time)]++
		}
	}
	t := report.NewTable("§7.2 BUSY-state cherry-picking pickups by queue context",
		"Queue type", "BUSY pickups")
	for _, q := range queueTypeOrder {
		t.AddRow(q.String(), fmt.Sprint(counts[q]))
	}
	return counts, t.String(), nil
}
