// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) against the simulated substrate. Each experiment returns
// structured data plus a rendered report; cmd/experiments prints them and
// the root bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"math/rand"
	"sort"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/dispatch"
	"taxiqueue/internal/sim"
)

// Config sizes the experiment suite.
type Config struct {
	// Seed drives the synthetic city and every simulated day.
	Seed int64
	// CityScale scales the landmark count; 1.0 reproduces the paper's
	// ~180-spot Singapore, smaller values keep benchmarks fast.
	CityScale float64
	// Eps/MinPts are the production DBSCAN parameters (paper: 15 m / 50).
	Eps    float64
	MinPts int
	// ContextSpots is how many randomly selected queue spots feed the
	// context experiments (paper: 25).
	ContextSpots int
}

// DefaultConfig returns the paper-scale settings.
func DefaultConfig() Config {
	return Config{Seed: 2015, CityScale: 1.0, Eps: 15, MinPts: 50, ContextSpots: 25}
}

func (c Config) withDefaults() Config {
	if c.CityScale == 0 {
		c.CityScale = 1.0
	}
	if c.Eps == 0 {
		c.Eps = 15
	}
	if c.MinPts == 0 {
		c.MinPts = 50
	}
	if c.ContextSpots == 0 {
		c.ContextSpots = 25
	}
	return c
}

// Day is one simulated-and-analyzed day.
type Day struct {
	Weekday    time.Weekday
	Start      time.Time
	Grid       core.SlotGrid
	CleanStats clean.Stats
	Result     *core.Result
	Truth      *sim.Truth
	SimStats   sim.Stats
	Dispatcher *dispatch.Dispatcher
}

// Suite owns the synthetic city and lazily simulates one day per weekday.
// All experiments share the same suite so a full run simulates exactly 7
// days.
type Suite struct {
	Cfg  Config
	City *citymap.Map
	days [7]*Day // indexed by time.Weekday (0 = Sunday)
}

// NewSuite builds the city for cfg.
func NewSuite(cfg Config) *Suite {
	cfg = cfg.withDefaults()
	return &Suite{Cfg: cfg, City: citymap.Generate(cfg.Seed, cfg.CityScale)}
}

// monday is the base date: day d of the suite is monday + (d-Monday) days.
var monday = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

// startFor returns the midnight whose weekday is wd, within the base week.
func startFor(wd time.Weekday) time.Time {
	offset := (int(wd) - int(time.Monday) + 7) % 7
	return monday.AddDate(0, 0, offset)
}

// Day simulates (once) and returns the given weekday.
func (s *Suite) Day(wd time.Weekday) (*Day, error) {
	if d := s.days[wd]; d != nil {
		return d, nil
	}
	start := startFor(wd)
	out := sim.Run(sim.Config{
		Seed:         s.Cfg.Seed + int64(wd)*1000,
		Start:        start,
		City:         s.City,
		InjectFaults: true,
	})
	cleaned, cleanStats := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	ecfg := core.DefaultEngineConfig()
	ecfg.Detector.Cluster = cluster.Params{EpsMeters: s.Cfg.Eps, MinPoints: s.Cfg.MinPts}
	ecfg.Grid = core.DaySlots(start)
	engine, err := core.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	res, err := engine.Analyze(cleaned)
	if err != nil {
		return nil, err
	}
	d := &Day{
		Weekday:    wd,
		Start:      start,
		Grid:       ecfg.Grid,
		CleanStats: cleanStats,
		Result:     res,
		Truth:      out.Truth,
		SimStats:   out.Stats,
		Dispatcher: out.Dispatcher,
	}
	s.days[wd] = d
	return d, nil
}

// Weekdays lists Monday..Sunday in the paper's column order.
var Weekdays = []time.Weekday{
	time.Monday, time.Tuesday, time.Wednesday, time.Thursday,
	time.Friday, time.Saturday, time.Sunday,
}

// DayNames are the short column labels used in Tables 5/Fig 8/Fig 9.
var DayNames = []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}

// contextSpotSelection picks the Table 7 spot subset for a day the way the
// paper did — "25 randomly selected queue spots" — deterministically: the
// busiest spot of each zone first (so every zone is covered), then a
// seeded random sample of the rest.
func (s *Suite) contextSpotSelection(res *core.Result, n int) []int {
	if n >= len(res.Spots) {
		idx := make([]int, len(res.Spots))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	picked := make([]bool, len(res.Spots))
	var out []int
	for z := 0; z < citymap.NumZones; z++ {
		for i, sa := range res.Spots { // spots are sorted by pickup count
			if !picked[i] && sa.Spot.Zone == citymap.Zone(z) {
				picked[i] = true
				out = append(out, i)
				break
			}
		}
	}
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 424242))
	var rest []int
	for i := range res.Spots {
		if !picked[i] {
			rest = append(rest, i)
		}
	}
	rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
	for _, i := range rest {
		if len(out) >= n {
			break
		}
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
