package experiments

import (
	"fmt"
	"strings"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/report"
	"taxiqueue/internal/transition"
)

// Transitions builds the §7.1 long-term queue-type transition report: the
// week's slot-to-slot transition matrix pooled over the context spots, each
// context's persistence, and the busiest spot's typical day.
func (s *Suite) Transitions() (*transition.Report, string, error) {
	// Pool the week's label sequences; track the busiest spot of the week
	// by matching spots across days through their positions.
	first, err := s.Day(Weekdays[0])
	if err != nil {
		return nil, "", err
	}
	if len(first.Result.Spots) == 0 {
		return nil, "", fmt.Errorf("experiments: no spots detected")
	}
	busiestPos := first.Result.Spots[0].Spot.Pos

	pooled := transition.NewReport(first.Grid.Slots)
	busiest := transition.NewReport(first.Grid.Slots)
	for _, wd := range Weekdays {
		d, err := s.Day(wd)
		if err != nil {
			return nil, "", err
		}
		sel := s.contextSpotSelection(d.Result, s.Cfg.ContextSpots)
		for _, i := range sel {
			pooled.AddDay(d.Result.Spots[i].Labels)
		}
		for i := range d.Result.Spots {
			if geo.Equirect(d.Result.Spots[i].Spot.Pos, busiestPos) < 30 {
				busiest.AddDay(d.Result.Spots[i].Labels)
				break
			}
		}
	}

	var b strings.Builder
	b.WriteString("§7.1 Long-term queue-type transition report (7 days)\n\n")
	b.WriteString("Slot-to-slot transition probabilities (pooled over context spots):\n")
	b.WriteString(pooled.Transitions.Normalize().String())

	pers := pooled.Persistence()
	t := report.NewTable("\nContext persistence (P[next slot keeps the context])",
		"Queue type", "Persistence")
	for _, q := range queueTypeOrder {
		t.AddRow(q.String(), report.F2(pers[q]))
	}
	b.WriteString(t.String())

	b.WriteString("\nBusiest spot's typical day (modal context per slot over the week):\n")
	b.WriteString(busiest.TypicalDay(int(first.Grid.SlotLen.Minutes())))
	return pooled, b.String(), nil
}

// Registry builds the §7.1 weekday/weekend spot registries from the week's
// detections and reports the stable/sporadic split — including the §7.2
// sporadic weekend-only leisure park.
func (s *Suite) Registry() (map[citymap.DayKind][]core.RegistrySpot, string, error) {
	daySets := map[time.Weekday][]core.QueueSpot{}
	for _, wd := range Weekdays {
		d, err := s.Day(wd)
		if err != nil {
			return nil, "", err
		}
		spots := make([]core.QueueSpot, len(d.Result.Spots))
		for i := range d.Result.Spots {
			spots[i] = d.Result.Spots[i].Spot
		}
		daySets[wd] = spots
	}
	regs := core.BuildDayTypeRegistries(daySets, core.RegistryConfig{})

	t := report.NewTable("§7.1 Multi-day queue-spot registries",
		"Registry", "Stable spots", "Sporadic spots")
	for _, k := range []citymap.DayKind{citymap.Weekday, citymap.Weekend} {
		name := "weekday (5 days)"
		if k == citymap.Weekend {
			name = "weekend (2 days)"
		}
		t.AddRow(name,
			fmt.Sprint(len(core.Stable(regs[k]))),
			fmt.Sprint(len(core.Sporadics(regs[k]))))
	}
	var b strings.Builder
	b.WriteString(t.String())
	// The §7.2 sporadic example: the weekend-only leisure park.
	if park, ok := s.City.Find("West Leisure Park"); ok {
		inWeekday, inWeekend := registryHas(regs[citymap.Weekday], park.Pos), registryHas(regs[citymap.Weekend], park.Pos)
		fmt.Fprintf(&b, "\nWest Leisure Park (weekend-only, §7.2): weekday registry=%v, weekend registry=%v\n",
			inWeekday, inWeekend)
	}
	return regs, b.String(), nil
}

func registryHas(reg []core.RegistrySpot, pos geo.Point) bool {
	for _, s := range reg {
		if geo.Equirect(s.Pos, pos) < 30 {
			return true
		}
	}
	return false
}
