package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
)

// testSuite is shared across tests: a fifth-scale city keeps the full
// 7-day × all-experiments sweep inside a sensible test budget. MinPts
// scales with nothing (per-spot volumes are city-scale-invariant), so the
// paper's DBSCAN parameters stay as-is.
var testSuite = NewSuite(Config{Seed: 77, CityScale: 0.2})

func TestCleaningExperiment(t *testing.T) {
	st, rendered, err := testSuite.Cleaning()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rate() < 0.01 || st.Rate() > 0.05 {
		t.Errorf("cleaning rate %.3f outside the paper's ballpark (~0.028)", st.Rate())
	}
	if !strings.Contains(rendered, "GPS outliers") {
		t.Error("rendered cleaning table incomplete")
	}
}

func TestFig6Experiment(t *testing.T) {
	cells, rendered, err := testSuite.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 16 {
		t.Fatalf("sweep has %d cells, want 16", len(cells))
	}
	// Fig. 6 shape: tiny eps (5 m) or huge minPts (150) find fewer spots
	// than the production pair (15 m, 50).
	get := func(eps float64, mp int) int {
		for _, c := range cells {
			if c.Params.EpsMeters == eps && c.Params.MinPoints == mp {
				return c.NumClusters
			}
		}
		t.Fatalf("cell (%g, %d) missing", eps, mp)
		return 0
	}
	prod := get(15, 50)
	if prod == 0 {
		t.Fatal("production parameters found no spots")
	}
	if get(5, 50) >= prod {
		t.Errorf("eps=5 found %d spots, not below production %d", get(5, 50), prod)
	}
	if get(15, 150) >= prod {
		t.Errorf("minPts=150 found %d spots, not below production %d", get(15, 150), prod)
	}
	if !strings.Contains(rendered, "eps") {
		t.Error("rendered Fig. 6 incomplete")
	}
}

func TestFig7Experiment(t *testing.T) {
	r, rendered, err := testSuite.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSpots == 0 {
		t.Fatal("no spots detected")
	}
	if r.CBDStands == 0 {
		t.Fatal("no CBD stands in city")
	}
	// Detection rate of official stands should be near-perfect (paper:
	// 30/31) and location error GPS-noise scale (paper: 7.6 m).
	rate := float64(r.StandsDetected) / float64(r.CBDStands)
	if rate < 0.8 {
		t.Errorf("stand detection rate %.2f, want >= 0.8", rate)
	}
	if r.MeanLocationError <= 0 || r.MeanLocationError > 12 {
		t.Errorf("mean location error %.1f m, want (0, 12]", r.MeanLocationError)
	}
	if !strings.Contains(rendered, "stands detected") {
		t.Error("rendered Fig. 7 incomplete")
	}
}

func TestTable4Experiment(t *testing.T) {
	shares, rendered, err := testSuite.Table4()
	if err != nil {
		t.Fatal(err)
	}
	// MRT & Bus must dominate (paper: 48.3%).
	mrt := shares[citymap.MRTBus]
	for c, v := range shares {
		if c != citymap.MRTBus && v > mrt {
			t.Errorf("category %v share %.2f exceeds MRT&Bus %.2f", c, v, mrt)
		}
	}
	sum := 0.0
	for _, v := range shares {
		sum += v
	}
	if sum > 1.0001 {
		t.Errorf("category shares sum to %.3f > 1", sum)
	}
	if !strings.Contains(rendered, "MRT") {
		t.Error("rendered Table 4 incomplete")
	}
}

func TestFig8Experiment(t *testing.T) {
	counts, rendered, err := testSuite.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Central has the most spots every day (paper Fig. 8).
	for i := range counts {
		for z := 1; z < citymap.NumZones; z++ {
			if counts[i][z] > counts[i][citymap.Central] {
				t.Errorf("%s: zone %v (%d) beats Central (%d)",
					DayNames[i], citymap.Zone(z), counts[i][z], counts[i][citymap.Central])
			}
		}
	}
	if !strings.Contains(rendered, "Central") {
		t.Error("rendered Fig. 8 incomplete")
	}
}

func TestTable5Experiment(t *testing.T) {
	m, rendered, err := testSuite.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 7 {
		t.Fatalf("matrix has %d rows", len(m))
	}
	// Diagonal zero; weekday-weekday distances smaller than the largest
	// weekday-Sunday distance (Table 5 pattern).
	var wdMax, crossMax float64
	for i := 0; i < 7; i++ {
		if m[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %g", i, i, m[i][i])
		}
		for j := 0; j < 7; j++ {
			if i == j {
				continue
			}
			if m[i][j] <= 0 {
				t.Errorf("off-diagonal [%d][%d] = %g, want > 0", i, j, m[i][j])
			}
			if i < 5 && j < 5 && m[i][j] > wdMax {
				wdMax = m[i][j]
			}
			if (i == 6) != (j == 6) && m[i][j] > crossMax {
				crossMax = m[i][j]
			}
		}
	}
	// Spot sets must be stable: tens of meters, not kilometers.
	if wdMax > 500 {
		t.Errorf("weekday-to-weekday MHD %.0f m: spot sets unstable", wdMax)
	}
	if !strings.Contains(rendered, "Mon") {
		t.Error("rendered Table 5 incomplete")
	}
}

func TestTable6Experiment(t *testing.T) {
	r, rendered, err := testSuite.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < citymap.NumZones; z++ {
		if r.Weekday[z] <= 0 {
			t.Errorf("zone %v weekday average is zero", citymap.Zone(z))
		}
	}
	// East (airport) has the highest weekday average (Table 6 pattern).
	for z := 0; z < citymap.NumZones-1; z++ {
		if r.Weekday[z] > r.Weekday[citymap.East] {
			t.Errorf("zone %v weekday avg %.0f beats East %.0f",
				citymap.Zone(z), r.Weekday[z], r.Weekday[citymap.East])
		}
	}
	if !strings.Contains(rendered, "Working day") {
		t.Error("rendered Table 6 incomplete")
	}
}

func TestTable7Experiment(t *testing.T) {
	p, rendered, err := testSuite.Table7()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("proportions sum to %g", sum)
	}
	for _, q := range []core.QueueType{core.C1, core.C2, core.C3, core.C4} {
		if p[q] == 0 {
			t.Errorf("queue type %v never identified", q)
		}
	}
	if !strings.Contains(rendered, "C1") {
		t.Error("rendered Table 7 incomplete")
	}
}

func TestFig9Experiment(t *testing.T) {
	days, rendered, err := testSuite.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9 pattern: C4 share rises on Sunday vs the weekday average.
	wdC4 := 0.0
	for i := 0; i < 5; i++ {
		wdC4 += days[i][core.C4]
	}
	wdC4 /= 5
	if days[6][core.C4] <= wdC4 {
		t.Errorf("Sunday C4 share %.3f not above weekday average %.3f",
			days[6][core.C4], wdC4)
	}
	if !strings.Contains(rendered, "Sun") {
		t.Error("rendered Fig. 9 incomplete")
	}
}

func TestTable8Experiment(t *testing.T) {
	r, rendered, err := testSuite.Table8()
	if err != nil {
		t.Fatal(err)
	}
	// Taxi-queue contexts see more monitored taxis than non-queue ones.
	if r.AvgTaxis[core.C1] <= r.AvgTaxis[core.C4] {
		t.Errorf("monitor avg taxis: C1 %.2f not above C4 %.2f",
			r.AvgTaxis[core.C1], r.AvgTaxis[core.C4])
	}
	if r.AvgTaxis[core.C3] <= r.AvgTaxis[core.C4] {
		t.Errorf("monitor avg taxis: C3 %.2f not above C4 %.2f",
			r.AvgTaxis[core.C3], r.AvgTaxis[core.C4])
	}
	// Failed bookings concentrate in C2 (paper: 4.29 vs <1 elsewhere).
	for _, q := range []core.QueueType{core.C1, core.C3} {
		if r.AvgFailures[core.C2] <= r.AvgFailures[q] {
			t.Errorf("failed bookings: C2 %.2f not above %v %.2f",
				r.AvgFailures[core.C2], q, r.AvgFailures[q])
		}
	}
	if !strings.Contains(rendered, "Avg taxis") {
		t.Error("rendered Table 8 incomplete")
	}
}

func TestTable9Experiment(t *testing.T) {
	ranges, rendered, err := testSuite.Table9()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) < 3 {
		t.Fatalf("timeline has only %d ranges", len(ranges))
	}
	// Ranges must tile the day.
	if !ranges[0].From.Equal(startFor(time.Sunday)) {
		t.Errorf("timeline starts at %v", ranges[0].From)
	}
	for i := 1; i < len(ranges); i++ {
		if !ranges[i].From.Equal(ranges[i-1].To) {
			t.Errorf("gap between ranges %d and %d", i-1, i)
		}
		if ranges[i].Label == ranges[i-1].Label {
			t.Errorf("adjacent ranges %d and %d share label %v", i-1, i, ranges[i].Label)
		}
	}
	if !strings.Contains(rendered, "Lucky Plaza") {
		t.Error("rendered Table 9 incomplete")
	}
}

func TestDriverBehaviorExperiment(t *testing.T) {
	counts, rendered, err := testSuite.DriverBehavior()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		t.Fatal("no BUSY-state pickups found at spots")
	}
	// The §7.2 finding: cherry-picking happens when passengers queue.
	paxQueue := counts[core.C1] + counts[core.C2]
	noPaxQueue := counts[core.C3] + counts[core.C4]
	if paxQueue <= noPaxQueue {
		t.Errorf("BUSY pickups: C1+C2 %d not above C3+C4 %d", paxQueue, noPaxQueue)
	}
	if !strings.Contains(rendered, "BUSY") {
		t.Error("rendered driver-behavior table incomplete")
	}
}

func TestTransitionsExperiment(t *testing.T) {
	rep, rendered, err := testSuite.Transitions()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Days == 0 {
		t.Fatal("no days aggregated")
	}
	pers := rep.Persistence()
	// Contexts are sticky: every observed context should persist with
	// probability well above a uniform 0.2.
	for _, q := range []core.QueueType{core.C4} {
		if pers[q] < 0.3 {
			t.Errorf("%v persistence = %.2f, suspiciously low", q, pers[q])
		}
	}
	if !strings.Contains(rendered, "typical day") {
		t.Error("rendered transitions report incomplete")
	}
}

func TestAblationSpeedThreshold(t *testing.T) {
	res, rendered, err := testSuite.AblationSpeedThreshold()
	if err != nil {
		t.Fatal(err)
	}
	// Pickup counts grow monotonically with the threshold (a superset of
	// records qualifies).
	if res[5][0] >= res[10][0] || res[10][0] >= res[20][0] {
		t.Errorf("pickup counts not increasing with η_sp: %v", res)
	}
	if res[10][1] == 0 {
		t.Error("production threshold found no spots")
	}
	if !strings.Contains(rendered, "km/h") {
		t.Error("rendered speed-threshold ablation incomplete")
	}
}

func TestAblationAmplification(t *testing.T) {
	res, rendered, err := testSuite.AblationAmplification()
	if err != nil {
		t.Fatal(err)
	}
	// Without amplification the saturation-gated contexts collapse: C1
	// must shrink dramatically.
	if res["raw"][core.C1] >= res["amplified"][core.C1]/2 {
		t.Errorf("C1 without amplification (%.3f) not far below amplified (%.3f)",
			res["raw"][core.C1], res["amplified"][core.C1])
	}
	if !strings.Contains(rendered, "amplification") {
		t.Error("rendered amplification ablation incomplete")
	}
}

func TestAblationZoning(t *testing.T) {
	res, rendered, err := testSuite.AblationZoning()
	if err != nil {
		t.Fatal(err)
	}
	if res["zoned"] == 0 || res["flat"] == 0 {
		t.Fatalf("no spots: %v", res)
	}
	// The partition is a performance device: results agree almost
	// everywhere (spots straddling a zone border may differ).
	minSpots := res["zoned"]
	if res["flat"] < minSpots {
		minSpots = res["flat"]
	}
	if res["matched"] < minSpots*9/10 {
		t.Errorf("only %d of %d spots matched between zoned and flat clustering",
			res["matched"], minSpots)
	}
	if !strings.Contains(rendered, "island-wide") {
		t.Error("rendered zoning ablation incomplete")
	}
}

func TestRegistryExperiment(t *testing.T) {
	regs, rendered, err := testSuite.Registry()
	if err != nil {
		t.Fatal(err)
	}
	wk := regs[citymap.Weekday]
	we := regs[citymap.Weekend]
	if len(core.Stable(wk)) == 0 || len(core.Stable(we)) == 0 {
		t.Fatal("empty stable registries")
	}
	// The weekend-only leisure park: in the weekend registry, absent from
	// the weekday registry.
	park, ok := testSuite.City.Find("West Leisure Park")
	if !ok {
		t.Fatal("park missing from city")
	}
	inRegistry := func(reg []core.RegistrySpot) bool {
		for _, s := range reg {
			if geo.Equirect(s.Pos, park.Pos) < 30 {
				return true
			}
		}
		return false
	}
	if inRegistry(wk) {
		t.Error("weekend-only park present in the weekday registry")
	}
	if !inRegistry(we) {
		t.Error("weekend-only park missing from the weekend registry")
	}
	if !strings.Contains(rendered, "West Leisure Park") {
		t.Error("rendered registry report incomplete")
	}
}

func TestAccuracyExperiment(t *testing.T) {
	r, rendered, err := testSuite.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if r.Labeled < 100 {
		t.Fatalf("only %d labeled slots compared", r.Labeled)
	}
	// The binary sub-questions must be answered much better than chance.
	if r.TaxiQueueAgreement < 0.6 {
		t.Errorf("taxi-queue agreement %.2f below 0.6", r.TaxiQueueAgreement)
	}
	if r.PaxQueueAgreement < 0.6 {
		t.Errorf("passenger-queue agreement %.2f below 0.6", r.PaxQueueAgreement)
	}
	if r.Agreement < 0.4 {
		t.Errorf("exact agreement %.2f below 0.4", r.Agreement)
	}
	if !strings.Contains(rendered, "Confusion") {
		t.Error("rendered accuracy report incomplete")
	}
}

func TestSuiteDayCaching(t *testing.T) {
	d1, err := testSuite.Day(time.Monday)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := testSuite.Day(time.Monday)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("Day did not cache")
	}
}

func TestStartFor(t *testing.T) {
	for _, wd := range Weekdays {
		if got := startFor(wd).Weekday(); got != wd {
			t.Errorf("startFor(%v).Weekday() = %v", wd, got)
		}
	}
}
