package queueing

import (
	"math/rand"
	"testing"
	"time"
)

// modelQueue is a trivially-correct reference FIFO used for model-based
// testing of the production implementation.
type modelQueue struct {
	items []struct {
		id string
		at time.Time
	}
}

func (m *modelQueue) arrive(id string, at time.Time) {
	m.items = append(m.items, struct {
		id string
		at time.Time
	}{id, at})
}

func (m *modelQueue) depart() (string, bool) {
	if len(m.items) == 0 {
		return "", false
	}
	id := m.items[0].id
	m.items = m.items[1:]
	return id, true
}

// TestFIFOAgainstModel drives the production FIFO and the reference model
// with the same random operation sequence and checks observable agreement
// at every step.
func TestFIFOAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q FIFO
		var m modelQueue
		now := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
		for op := 0; op < 2000; op++ {
			now = now.Add(time.Duration(rng.Intn(60)) * time.Second)
			if rng.Float64() < 0.55 {
				id := string(rune('a' + rng.Intn(26)))
				q.Arrive(id, now)
				m.arrive(id, now)
			} else {
				gotID, _, gotOK := q.Depart(now)
				wantID, wantOK := m.depart()
				if gotOK != wantOK || gotID != wantID {
					t.Fatalf("seed %d op %d: Depart = (%q,%v), model (%q,%v)",
						seed, op, gotID, gotOK, wantID, wantOK)
				}
			}
			if q.Len() != len(m.items) {
				t.Fatalf("seed %d op %d: Len = %d, model %d", seed, op, q.Len(), len(m.items))
			}
			if id, ok := q.Peek(); ok != (len(m.items) > 0) || (ok && id != m.items[0].id) {
				t.Fatalf("seed %d op %d: Peek mismatch", seed, op)
			}
		}
		// Stats sanity at the end.
		s := q.StatsAt(now)
		if s.Arrivals < s.Departures || s.Current != q.Len() {
			t.Fatalf("seed %d: inconsistent stats %+v", seed, s)
		}
		if s.AvgLen < 0 || s.AvgWait < 0 {
			t.Fatalf("seed %d: negative averages %+v", seed, s)
		}
	}
}
