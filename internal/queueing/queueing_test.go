package queueing

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestLittleBasics(t *testing.T) {
	// λ = 2/s, W = 3 s  =>  L = 6.
	if l := Little(2, 3*time.Second); l != 6 {
		t.Fatalf("Little = %g, want 6", l)
	}
	if l := Little(0, time.Hour); l != 0 {
		t.Fatalf("Little with zero arrivals = %g", l)
	}
}

func TestLittleOnDeterministicTrace(t *testing.T) {
	// D/D/1: arrivals every 10 s, service exactly 5 s => each entity waits
	// 5 s in system, L = λW = 0.1 * 5 = 0.5. Verify against the FIFO's
	// ground-truth time-averaged length.
	var q FIFO
	t0 := time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)
	n := 1000
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Second)
		q.Arrive("e", at)
		q.Depart(at.Add(5 * time.Second))
	}
	end := t0.Add(time.Duration(n) * 10 * time.Second)
	s := q.StatsAt(end)
	lambda := float64(s.Arrivals) / end.Sub(t0).Seconds()
	little := Little(lambda, s.AvgWait)
	if math.Abs(little-s.AvgLen) > 0.01 {
		t.Fatalf("Little estimate %.4f vs ground truth %.4f", little, s.AvgLen)
	}
	if math.Abs(little-0.5) > 0.01 {
		t.Fatalf("Little = %.4f, want 0.5", little)
	}
}

func TestLittleOnRandomTrace(t *testing.T) {
	// M/M/1-ish random trace: Little's law must hold on the realized
	// averages regardless of distribution (it is distribution-free).
	rng := rand.New(rand.NewSource(1))
	var q FIFO
	t0 := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	now := t0
	serverFreeAt := t0
	n := 20000
	var lastArrival time.Time
	for i := 0; i < n; i++ {
		now = now.Add(time.Duration(rng.ExpFloat64() * float64(8*time.Second)))
		q.Arrive("e", now)
		lastArrival = now
		// Serve: departure happens at max(arrival, serverFree) + service.
		svc := time.Duration(rng.ExpFloat64() * float64(5*time.Second))
		startSvc := now
		if serverFreeAt.After(now) {
			startSvc = serverFreeAt
		}
		dep := startSvc.Add(svc)
		serverFreeAt = dep
		_ = dep
	}
	// Process departures in order after arrivals were queued: re-simulate
	// properly with a second pass.
	q = FIFO{}
	now = t0
	serverFreeAt = t0
	rng = rand.New(rand.NewSource(1))
	type ev struct {
		at  time.Time
		arr bool
	}
	var evs []ev
	for i := 0; i < n; i++ {
		now = now.Add(time.Duration(rng.ExpFloat64() * float64(8*time.Second)))
		svc := time.Duration(rng.ExpFloat64() * float64(5*time.Second))
		startSvc := now
		if serverFreeAt.After(now) {
			startSvc = serverFreeAt
		}
		dep := startSvc.Add(svc)
		serverFreeAt = dep
		evs = append(evs, ev{now, true}, ev{dep, false})
	}
	// Merge: events must be applied in time order, arrivals first at ties.
	sort.Slice(evs, func(i, j int) bool {
		if !evs[i].at.Equal(evs[j].at) {
			return evs[i].at.Before(evs[j].at)
		}
		return evs[i].arr && !evs[j].arr
	})
	for _, e := range evs {
		if e.arr {
			q.Arrive("e", e.at)
		} else {
			q.Depart(e.at)
		}
	}
	end := lastArrival
	s := q.StatsAt(end)
	lambda := float64(s.Arrivals) / end.Sub(t0).Seconds()
	little := Little(lambda, s.AvgWait)
	if rel := math.Abs(little-s.AvgLen) / s.AvgLen; rel > 0.05 {
		t.Fatalf("Little estimate %.3f vs ground truth %.3f (rel %.3f)", little, s.AvgLen, rel)
	}
}

func TestMM1Formulas(t *testing.T) {
	q := MM1{Lambda: 1, Mu: 2} // rho = 0.5
	if !q.Stable() {
		t.Fatal("rho=0.5 queue reported unstable")
	}
	l, err := q.L()
	if err != nil || math.Abs(l-1) > 1e-12 {
		t.Fatalf("L = %g (%v), want 1", l, err)
	}
	w, err := q.W()
	if err != nil || w != time.Second {
		t.Fatalf("W = %v (%v), want 1s", w, err)
	}
	// Little consistency: L = λW.
	if got := Little(q.Lambda, w); math.Abs(got-l) > 1e-9 {
		t.Fatalf("L=%g but λW=%g", l, got)
	}
}

func TestMM1Unstable(t *testing.T) {
	q := MM1{Lambda: 3, Mu: 2}
	if q.Stable() {
		t.Fatal("overloaded queue reported stable")
	}
	if _, err := q.L(); err == nil {
		t.Fatal("L of unstable queue did not error")
	}
	if _, err := q.W(); err == nil {
		t.Fatal("W of unstable queue did not error")
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	m1 := MM1{Lambda: 0.8, Mu: 1}
	mc := MMc{Lambda: 0.8, Mu: 1, Servers: 1}
	lqWant := 0.8 * 0.8 / (1 - 0.8) // rho^2/(1-rho) for M/M/1
	lq, err := mc.Lq()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lq-lqWant) > 1e-9 {
		t.Fatalf("M/M/1-as-M/M/c Lq = %g, want %g", lq, lqWant)
	}
	_ = m1
}

func TestMMcErlangC(t *testing.T) {
	// Known value: c=2, a=λ/μ=1 (rho=0.5) => ErlangC = 1/3.
	q := MMc{Lambda: 1, Mu: 1, Servers: 2}
	p, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/3) > 1e-9 {
		t.Fatalf("ErlangC = %g, want 1/3", p)
	}
	// More servers => lower wait probability.
	q3 := MMc{Lambda: 1, Mu: 1, Servers: 3}
	p3, _ := q3.ErlangC()
	if p3 >= p {
		t.Fatalf("ErlangC did not fall with more servers: %g -> %g", p, p3)
	}
}

func TestMMcUnstable(t *testing.T) {
	q := MMc{Lambda: 5, Mu: 1, Servers: 3}
	if q.Stable() {
		t.Fatal("overloaded M/M/c reported stable")
	}
	if _, err := q.Lq(); err == nil {
		t.Fatal("Lq of unstable queue did not error")
	}
	if _, err := q.Wq(); err == nil {
		t.Fatal("Wq of unstable queue did not error")
	}
	if _, err := q.L(); err == nil {
		t.Fatal("L of unstable queue did not error")
	}
	if _, err := q.W(); err == nil {
		t.Fatal("W of unstable queue did not error")
	}
}

// TestMMcSystemQuantities checks the number-in-system and time-in-system
// helpers: L = Lq + λ/μ, W = Wq + 1/μ, and Little's Law L = λW ties the
// four together.
func TestMMcSystemQuantities(t *testing.T) {
	q := MMc{Lambda: 1, Mu: 1, Servers: 2}
	lq, err := q.Lq()
	if err != nil {
		t.Fatal(err)
	}
	l, err := q.L()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-(lq+1)) > 1e-9 { // λ/μ = 1
		t.Fatalf("L = %g, want Lq + λ/μ = %g", l, lq+1)
	}
	wq, err := q.Wq()
	if err != nil {
		t.Fatal(err)
	}
	w, err := q.W()
	if err != nil {
		t.Fatal(err)
	}
	if d := w - wq - time.Second; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("W = %v, want Wq + 1/μ = %v", w, wq+time.Second)
	}
	// Little's Law across the system: L = λW.
	if got := q.Lambda * w.Seconds(); math.Abs(l-got) > 1e-6 {
		t.Fatalf("Little's Law: L = %g but λW = %g", l, got)
	}
}

func TestFIFOOrdering(t *testing.T) {
	var q FIFO
	t0 := time.Now()
	q.Arrive("a", t0)
	q.Arrive("b", t0.Add(time.Second))
	q.Arrive("c", t0.Add(2*time.Second))
	if id, _ := q.Peek(); id != "a" {
		t.Fatalf("Peek = %s, want a", id)
	}
	id, w, ok := q.Depart(t0.Add(10 * time.Second))
	if !ok || id != "a" || w != 10*time.Second {
		t.Fatalf("Depart = %s %v %v", id, w, ok)
	}
	id, _, _ = q.Depart(t0.Add(11 * time.Second))
	if id != "b" {
		t.Fatalf("second Depart = %s, want b", id)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestFIFOEmptyDepart(t *testing.T) {
	var q FIFO
	if _, _, ok := q.Depart(time.Now()); ok {
		t.Fatal("Depart on empty queue succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue succeeded")
	}
	s := q.StatsAt(time.Now())
	if s.Arrivals != 0 || s.AvgLen != 0 || s.AvgWait != 0 {
		t.Fatalf("empty queue stats %+v", s)
	}
}

func TestFIFOCompaction(t *testing.T) {
	// Interleave many arrivals/departures to force head compaction and
	// verify the head entity is always the oldest.
	var q FIFO
	t0 := time.Now()
	next := 0
	expectHead := 0
	for i := 0; i < 1000; i++ {
		q.Arrive(string(rune('A'+next%26)), t0.Add(time.Duration(i)*time.Second))
		next++
		if i%2 == 1 {
			id, _, ok := q.Depart(t0.Add(time.Duration(i) * time.Second))
			if !ok || id != string(rune('A'+expectHead%26)) {
				t.Fatalf("iteration %d: Depart = %q, want %q", i, id, string(rune('A'+expectHead%26)))
			}
			expectHead++
		}
	}
	if q.Len() != next-expectHead {
		t.Fatalf("Len = %d, want %d", q.Len(), next-expectHead)
	}
}

func TestFIFOStatsAvgLen(t *testing.T) {
	// One entity present for 10 s out of 20 s observed => AvgLen 0.5.
	var q FIFO
	t0 := time.Now()
	q.Arrive("x", t0)
	q.Depart(t0.Add(10 * time.Second))
	s := q.StatsAt(t0.Add(20 * time.Second))
	if math.Abs(s.AvgLen-0.5) > 1e-9 {
		t.Fatalf("AvgLen = %g, want 0.5", s.AvgLen)
	}
	if s.AvgWait != 10*time.Second {
		t.Fatalf("AvgWait = %v, want 10s", s.AvgWait)
	}
}

func BenchmarkFIFO(b *testing.B) {
	var q FIFO
	t0 := time.Now()
	for i := 0; i < b.N; i++ {
		at := t0.Add(time.Duration(i) * time.Millisecond)
		q.Arrive("x", at)
		if i%2 == 1 {
			q.Depart(at)
		}
	}
}
