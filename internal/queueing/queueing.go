// Package queueing provides the queueing-theory primitives the analytics
// engine and the simulator share: Little's Law (§5.2 derives the FREE-taxi
// queue length from it), the standard M/M/1 and M/M/c formulas used to
// sanity-check the simulator, and a discrete-event FIFO queue that the
// simulator uses for taxi-stand dynamics.
package queueing

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Little returns the average number in system L = λW given an average
// arrival rate λ (entities/second) and an average wait W.
// This is the estimator behind the paper's L̄(r)^j = t̄wait(r)^j * λ̄(r)^j.
func Little(arrivalRatePerSec float64, avgWait time.Duration) float64 {
	return arrivalRatePerSec * avgWait.Seconds()
}

// MM1 summarizes a single-server Markovian queue.
type MM1 struct {
	Lambda float64 // arrival rate (1/s)
	Mu     float64 // service rate (1/s)
}

// Rho returns the utilization λ/μ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// Stable reports whether the queue has a stationary distribution (ρ < 1).
func (q MM1) Stable() bool { return q.Lambda > 0 && q.Mu > 0 && q.Rho() < 1 }

// L returns the stationary mean number in system ρ/(1-ρ).
func (q MM1) L() (float64, error) {
	if !q.Stable() {
		return 0, fmt.Errorf("queueing: M/M/1 unstable (rho=%.3f)", q.Rho())
	}
	rho := q.Rho()
	return rho / (1 - rho), nil
}

// W returns the stationary mean time in system 1/(μ-λ) as a duration.
func (q MM1) W() (time.Duration, error) {
	if !q.Stable() {
		return 0, fmt.Errorf("queueing: M/M/1 unstable (rho=%.3f)", q.Rho())
	}
	return time.Duration(float64(time.Second) / (q.Mu - q.Lambda)), nil
}

// MMc summarizes a c-server Markovian queue (one waiting line, c servers);
// a taxi stand with several loading bays behaves this way.
type MMc struct {
	Lambda  float64 // arrival rate (1/s)
	Mu      float64 // per-server service rate (1/s)
	Servers int
}

// Rho returns the per-server utilization λ/(cμ).
func (q MMc) Rho() float64 { return q.Lambda / (float64(q.Servers) * q.Mu) }

// Stable reports whether the queue has a stationary distribution.
func (q MMc) Stable() bool {
	return q.Lambda > 0 && q.Mu > 0 && q.Servers >= 1 && q.Rho() < 1
}

// ErlangC returns the probability an arriving customer must wait
// (the Erlang-C formula).
func (q MMc) ErlangC() (float64, error) {
	if !q.Stable() {
		return 0, errors.New("queueing: M/M/c unstable")
	}
	c := q.Servers
	a := q.Lambda / q.Mu // offered load in Erlangs
	// Compute iteratively to avoid factorial overflow.
	sum := 0.0
	term := 1.0 // a^k / k!
	for k := 0; k < c; k++ {
		sum += term
		term *= a / float64(k+1)
	}
	// term is now a^c / c!
	last := term / (1 - q.Rho())
	return last / (sum + last), nil
}

// Lq returns the stationary mean queue length (waiting, excluding in
// service).
func (q MMc) Lq() (float64, error) {
	pWait, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	rho := q.Rho()
	return pWait * rho / (1 - rho), nil
}

// Wq returns the stationary mean waiting time (excluding service).
func (q MMc) Wq() (time.Duration, error) {
	lq, err := q.Lq()
	if err != nil {
		return 0, err
	}
	return time.Duration(lq / q.Lambda * float64(time.Second)), nil
}

// L returns the stationary mean number in system: the waiting line plus
// the offered load in service, Lq + λ/μ. This is what the forecaster
// compares against the §5.2 Little's-Law queue length L̄.
func (q MMc) L() (float64, error) {
	lq, err := q.Lq()
	if err != nil {
		return 0, err
	}
	return lq + q.Lambda/q.Mu, nil
}

// W returns the stationary mean time in system (waiting plus service).
func (q MMc) W() (time.Duration, error) {
	wq, err := q.Wq()
	if err != nil {
		return 0, err
	}
	return wq + time.Duration(float64(time.Second)/q.Mu), nil
}

// FIFO is a timestamped first-in-first-out queue of string-identified
// entities (taxis at a stand, passengers at a curb). It tracks the running
// statistics needed to verify Little's Law against simulated ground truth.
// FIFO is not safe for concurrent use.
type FIFO struct {
	entries []fifoEntry
	head    int

	arrivals   int
	departures int
	totalWait  time.Duration
	// time-weighted queue-length integral for ground-truth L.
	lastChange time.Time
	lenSeconds float64
	started    bool
	start      time.Time
}

type fifoEntry struct {
	id string
	at time.Time
}

// Arrive enqueues id at time t. Times must be non-decreasing across all
// Arrive/Depart calls.
func (q *FIFO) Arrive(id string, t time.Time) {
	q.account(t)
	q.entries = append(q.entries, fifoEntry{id: id, at: t})
	q.arrivals++
}

// Depart dequeues the head entity at time t and returns its id and the time
// it waited. ok is false when the queue is empty.
func (q *FIFO) Depart(t time.Time) (id string, waited time.Duration, ok bool) {
	if q.Len() == 0 {
		return "", 0, false
	}
	q.account(t)
	e := q.entries[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.entries) {
		q.entries = append(q.entries[:0], q.entries[q.head:]...)
		q.head = 0
	}
	q.departures++
	w := t.Sub(e.at)
	q.totalWait += w
	return e.id, w, true
}

// Peek returns the id at the head without removing it.
func (q *FIFO) Peek() (string, bool) {
	if q.Len() == 0 {
		return "", false
	}
	return q.entries[q.head].id, true
}

// Len returns the current queue length.
func (q *FIFO) Len() int { return len(q.entries) - q.head }

// account advances the time-weighted length integral to t.
func (q *FIFO) account(t time.Time) {
	if !q.started {
		q.started = true
		q.start = t
		q.lastChange = t
		return
	}
	if t.After(q.lastChange) {
		q.lenSeconds += float64(q.Len()) * t.Sub(q.lastChange).Seconds()
		q.lastChange = t
	}
}

// Stats summarizes the queue's history up to time now.
type Stats struct {
	Arrivals   int
	Departures int
	AvgWait    time.Duration // mean wait of departed entities
	AvgLen     float64       // time-averaged queue length
	Current    int
}

// StatsAt returns the running statistics with the length integral advanced
// to now.
func (q *FIFO) StatsAt(now time.Time) Stats {
	lenSeconds := q.lenSeconds
	if q.started && now.After(q.lastChange) {
		lenSeconds += float64(q.Len()) * now.Sub(q.lastChange).Seconds()
	}
	s := Stats{Arrivals: q.arrivals, Departures: q.departures, Current: q.Len()}
	if q.departures > 0 {
		s.AvgWait = q.totalWait / time.Duration(q.departures)
	}
	if q.started {
		if total := now.Sub(q.start).Seconds(); total > 0 {
			s.AvgLen = lenSeconds / total
		}
	}
	if math.IsNaN(s.AvgLen) {
		s.AvgLen = 0
	}
	return s
}
