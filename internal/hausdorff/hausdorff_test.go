package hausdorff

import (
	"math"
	"math/rand"
	"testing"

	"taxiqueue/internal/geo"
)

func randomSet(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{Lat: 1.22 + rng.Float64()*0.25, Lon: 103.6 + rng.Float64()*0.42}
	}
	return pts
}

func TestIdenticalSetsZero(t *testing.T) {
	a := randomSet(150, 1)
	for name, f := range map[string]func(a, b []geo.Point) float64{
		"Distance": Distance, "Modified": Modified,
	} {
		if d := f(a, a); d != 0 {
			t.Errorf("%s(A,A) = %g, want 0", name, d)
		}
	}
}

func TestSymmetry(t *testing.T) {
	a, b := randomSet(120, 2), randomSet(80, 3)
	if d1, d2 := Distance(a, b), Distance(b, a); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("Distance not symmetric: %g vs %g", d1, d2)
	}
	if d1, d2 := Modified(a, b), Modified(b, a); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("Modified not symmetric: %g vs %g", d1, d2)
	}
}

func TestKnownTwoPointDistance(t *testing.T) {
	p := geo.Point{Lat: 1.3, Lon: 103.8}
	q := geo.Destination(p, 90, 500)
	a := []geo.Point{p}
	b := []geo.Point{q}
	for name, f := range map[string]func(a, b []geo.Point) float64{
		"Distance": Distance, "Modified": Modified, "Directed": Directed, "DirectedModified": DirectedModified,
	} {
		if d := f(a, b); math.Abs(d-500) > 1 {
			t.Errorf("%s = %.2f, want ~500", name, d)
		}
	}
}

func TestDirectedAsymmetricExample(t *testing.T) {
	// A = {p}; B = {p, far}: h(A,B)=0 but h(B,A)=dist(far,p).
	p := geo.Point{Lat: 1.3, Lon: 103.8}
	far := geo.Destination(p, 0, 2000)
	a := []geo.Point{p}
	b := []geo.Point{p, far}
	if d := Directed(a, b); d > 1 {
		t.Errorf("h(A,B) = %.2f, want ~0", d)
	}
	if d := Directed(b, a); math.Abs(d-2000) > 2 {
		t.Errorf("h(B,A) = %.2f, want ~2000", d)
	}
}

func TestModifiedRobustToSingleOutlier(t *testing.T) {
	// The modified distance averages, so a single far outlier in a
	// 100-point set moves MHD by ~dist/100 while classical H jumps to dist.
	// Use a compact base set so the outlier is genuinely far from all of it.
	rng := rand.New(rand.NewSource(4))
	center := geo.Point{Lat: 1.3, Lon: 103.8}
	base := make([]geo.Point, 99)
	for i := range base {
		base[i] = geo.Offset(center, rng.NormFloat64()*200, rng.NormFloat64()*200)
	}
	outlier := geo.Destination(center, 45, 10000)
	a := append(append([]geo.Point(nil), base...), base[0])
	b := append(append([]geo.Point(nil), base...), outlier)
	h := Distance(a, b)
	mhd := Modified(a, b)
	if h < 9000 {
		t.Errorf("classical Hausdorff = %.0f, want ~10000 (outlier-dominated)", h)
	}
	if mhd > 1000 {
		t.Errorf("modified Hausdorff = %.0f, want small (outlier-robust)", mhd)
	}
}

func TestPerturbationScale(t *testing.T) {
	// Shifting every point by ~50 m should give MHD ~50 m, mirroring the
	// weekday-to-weekday stability numbers in Table 5.
	rng := rand.New(rand.NewSource(5))
	a := randomSet(180, 6)
	b := make([]geo.Point, len(a))
	for i, p := range a {
		b[i] = geo.Destination(p, rng.Float64()*360, 50)
	}
	mhd := Modified(a, b)
	if mhd < 20 || mhd > 80 {
		t.Errorf("MHD under 50 m jitter = %.1f, want within [20, 80]", mhd)
	}
}

func TestEmptySets(t *testing.T) {
	a := randomSet(10, 7)
	if d := Directed(nil, a); d != 0 {
		t.Errorf("Directed(empty, A) = %g, want 0", d)
	}
	if d := Directed(a, nil); !math.IsInf(d, 1) {
		t.Errorf("Directed(A, empty) = %g, want +Inf", d)
	}
	if d := Distance(nil, nil); d != 0 {
		t.Errorf("Distance(empty, empty) = %g, want 0", d)
	}
}

func TestMatrixShape(t *testing.T) {
	sets := [][]geo.Point{randomSet(40, 8), randomSet(40, 9), randomSet(40, 10)}
	m := Matrix(sets)
	if len(m) != 3 {
		t.Fatalf("matrix has %d rows", len(m))
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %g", i, i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("matrix not symmetric at (%d,%d)", i, j)
			}
			got := Modified(sets[i], sets[j])
			if math.Abs(m[i][j]-got) > 1e-9 {
				t.Errorf("matrix[%d][%d] = %g, direct = %g", i, j, m[i][j], got)
			}
		}
	}
}

func TestTranslationMonotonicity(t *testing.T) {
	// Larger rigid translation => larger (or equal) MHD.
	a := randomSet(100, 11)
	prev := 0.0
	for _, shift := range []float64{10, 50, 200, 1000} {
		b := make([]geo.Point, len(a))
		for i, p := range a {
			b[i] = geo.Destination(p, 90, shift)
		}
		d := Modified(a, b)
		if d < prev-1 {
			t.Errorf("MHD decreased as translation grew: %.1f -> %.1f at shift %.0f", prev, d, shift)
		}
		prev = d
	}
}

func BenchmarkModified200x200(b *testing.B) {
	x, y := randomSet(200, 12), randomSet(200, 13)
	for i := 0; i < b.N; i++ {
		Modified(x, y)
	}
}
