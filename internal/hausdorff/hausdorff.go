// Package hausdorff implements the point-set distances used in §6.1.3 to
// measure day-to-day stability of the detected queue-spot sets: the
// classical (Pompeiu-)Hausdorff distance and the modified Hausdorff
// distance of Dubuisson & Jain (ICPR 1994), which the paper adopts.
//
// All distances are great-circle meters.
package hausdorff

import (
	"math"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/spatial"
)

// nearest returns the distance from p to the closest point indexed by idx,
// expanding a search radius geometrically so typical queries touch only a
// few grid cells.
func nearest(idx *spatial.Grid, pts []geo.Point, p geo.Point) float64 {
	if len(pts) == 0 {
		return math.Inf(1)
	}
	radius := 100.0 // meters; queue-spot sets are ~50 m apart on average
	var buf []int
	for {
		buf = idx.Within(p, radius, buf[:0])
		if len(buf) > 0 {
			best := math.Inf(1)
			for _, id := range buf {
				if d := geo.Equirect(p, pts[id]); d < best {
					best = d
				}
			}
			return best
		}
		radius *= 4
		if radius > 1e8 { // exceeded Earth scale: fall back to linear scan
			best := math.Inf(1)
			for _, q := range pts {
				if d := geo.Equirect(p, q); d < best {
					best = d
				}
			}
			return best
		}
	}
}

// Directed returns the classical directed Hausdorff distance
// h(A,B) = max_{a∈A} min_{b∈B} d(a,b). It is +Inf when B is empty and A is
// not, and 0 when A is empty.
func Directed(a, b []geo.Point) float64 {
	if len(a) == 0 {
		return 0
	}
	idx := spatial.NewGrid(b, 200)
	worst := 0.0
	for _, p := range a {
		if d := nearest(idx, b, p); d > worst {
			worst = d
		}
	}
	return worst
}

// Distance returns the classical symmetric Hausdorff distance
// H(A,B) = max(h(A,B), h(B,A)).
func Distance(a, b []geo.Point) float64 {
	return math.Max(Directed(a, b), Directed(b, a))
}

// DirectedModified returns the Dubuisson-Jain directed modified Hausdorff
// distance h_mod(A,B) = (1/|A|) Σ_{a∈A} min_{b∈B} d(a,b): the mean rather
// than the max of the nearest-neighbour distances, which is robust to
// outlier points (a single sporadic queue spot does not dominate).
func DirectedModified(a, b []geo.Point) float64 {
	if len(a) == 0 {
		return 0
	}
	idx := spatial.NewGrid(b, 200)
	sum := 0.0
	for _, p := range a {
		sum += nearest(idx, b, p)
	}
	return sum / float64(len(a))
}

// Modified returns the symmetric modified Hausdorff distance
// MHD(A,B) = max(h_mod(A,B), h_mod(B,A)), the measure behind Table 5.
func Modified(a, b []geo.Point) float64 {
	return math.Max(DirectedModified(a, b), DirectedModified(b, a))
}

// Matrix computes the symmetric MHD between every pair of the given point
// sets; Matrix(sets)[i][j] == Modified(sets[i], sets[j]). This is the shape
// of Table 5 (7 day-of-week spot sets).
func Matrix(sets [][]geo.Point) [][]float64 {
	n := len(sets)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := Modified(sets[i], sets[j])
			m[i][j], m[j][i] = d, d
		}
	}
	return m
}
