package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	if got := g.Add(-3); got != 4 {
		t.Fatalf("gauge Add returned %d, want 4", got)
	}
	if g.Value() != 4 {
		t.Fatalf("gauge %d, want 4", g.Value())
	}
}

// TestIdempotentRegistration: the same (name, labels) returns the same
// collector; different labels return distinct series under one family.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", Label{"shard", "0"})
	b := r.Counter("x_total", "x", Label{"shard", "0"})
	if a != b {
		t.Fatal("same (name, labels) gave two collectors")
	}
	c := r.Counter("x_total", "x", Label{"shard", "1"})
	if a == c {
		t.Fatal("different labels shared a collector")
	}
	// Label order must not matter.
	d := r.Gauge("y", "y", Label{"a", "1"}, Label{"b", "2"})
	e := r.Gauge("y", "y", Label{"b", "2"}, Label{"a", "1"})
	if d != e {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "z")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("z_total", "z")
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Fatalf("sum %g, want 5.605", h.Sum())
	}
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "the a counter", Label{"shard", "0"}).Add(3)
	r.Gauge("b", "the b gauge").Set(-2)
	r.GaugeFunc("c", "computed", func() float64 { return 1.5 })
	r.Counter("esc_total", "esc", Label{"v", "q\"\\\nx"}).Inc()
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# HELP a_total the a counter\n# TYPE a_total counter\n" + `a_total{shard="0"} 3`,
		"# TYPE b gauge\nb -2",
		"# TYPE c gauge\nc 1.5",
		`esc_total{v="q\"\\\nx"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	w := httptest.NewRecorder()
	r.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(w.Body.String(), "h_total 1") {
		t.Fatalf("body: %s", w.Body.String())
	}
	w = httptest.NewRecorder()
	r.ServeHTTP(w, httptest.NewRequest("POST", "/metrics", nil))
	if w.Code != 405 {
		t.Fatalf("POST status %d, want 405", w.Code)
	}
}

// TestConcurrentUse hammers one registry from many goroutines — the -race
// gate in scripts/check.sh verifies the lock discipline.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("cc_total", "cc", Label{"g", string(rune('0' + g%4))})
			h := r.Histogram("ch_seconds", "ch", DefBuckets)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
				r.Gauge("cg", "cg").Set(int64(i))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			var out strings.Builder
			if err := r.WritePrometheus(&out); err != nil {
				t.Error(err)
			}
		}
		close(done)
	}()
	wg.Wait()
	<-done
	var total int64
	for g := 0; g < 4; g++ {
		total += r.Counter("cc_total", "cc", Label{"g", string(rune('0' + g))}).Value()
	}
	if total != 8000 {
		t.Fatalf("counters lost increments: %d, want 8000", total)
	}
	if got := r.Histogram("ch_seconds", "ch", DefBuckets).Count(); got != 8000 {
		t.Fatalf("histogram count %d, want 8000", got)
	}
}
