package obs

import (
	"bufio"
	"io"
	"log"
	"net/http"
	"strconv"
)

// textContentType is the Prometheus text exposition content type.
const textContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the text exposition
// format, families in registration order, series in registration order
// within a family. Values are snapshotted per series; a scrape is not a
// consistent cut across series (no metrics system promises that).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.fams[name]
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, ls := range f.order {
			s := f.series[ls]
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", ls, float64(s.c.Value()))
			case kindGauge:
				writeSample(bw, f.name, "", ls, float64(s.g.Value()))
			case kindGaugeFunc:
				if s.fn != nil {
					writeSample(bw, f.name, "", ls, s.fn())
				}
			case kindHistogram:
				writeHistogram(bw, f.name, ls, s.h)
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name[suffix]{labels} value` line.
func writeSample(w *bufio.Writer, name, suffix, labels string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	w.WriteByte('\n')
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
func writeHistogram(w *bufio.Writer, name, labels string, h *Histogram) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name, "_bucket", mergeLabels(labels, "le", strconv.FormatFloat(b, 'g', -1, 64)), float64(cum))
	}
	count := h.Count()
	writeSample(w, name, "_bucket", mergeLabels(labels, "le", "+Inf"), float64(count))
	writeSample(w, name, "_sum", labels, h.Sum())
	writeSample(w, name, "_count", labels, float64(count))
}

// mergeLabels appends one pair to an already-rendered label string.
func mergeLabels(labels, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// ServeHTTP makes a Registry a /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", textContentType)
	if err := r.WritePrometheus(w); err != nil {
		log.Printf("obs: write metrics: %v", err)
	}
}
