// Package obs is a dependency-free operational metrics layer: atomic
// counters, gauges and fixed-bucket latency histograms behind a registry
// that serves the Prometheus text exposition format. The deployed system of
// §7.1 runs continuously against a live ~15k-taxi feed, so the live tier
// must be observable without attaching a debugger — queue depths, per-stage
// latencies, drop and rejection rates all surface here and are scraped from
// queued's /metrics endpoint.
//
// Design constraints, in order:
//
//   - zero external dependencies (the repo builds with the stock toolchain);
//   - hot-path writes are a single atomic op (Counter.Inc, Gauge.Set) or a
//     bucket search plus two atomics (Histogram.Observe) — cheap enough to
//     run per record at full ingest rate;
//   - registration is idempotent: asking for the same (name, labels) series
//     twice returns the same collector, so a service can be restarted
//     against a shared registry (e.g. the package-level Default) without
//     duplicate-registration errors, and the source of truth for any
//     counter is a single object — /ingest/stats and /metrics read the same
//     atomics and can never disagree.
//
// The exposition side holds the registry lock only long enough to snapshot
// values; collectors themselves are lock-free.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is usable,
// but counters normally come from Registry.Counter so they are exported.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must not be negative (counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative allowed) and returns the new value,
// so a caller can both publish and act on a running total with one atomic
// op (e.g. the WAL-pending trigger for automatic checkpoints).
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are latency histogram bounds (seconds) spanning 10µs to 10s —
// wide enough for both per-record hot paths and whole-batch stages.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3,
	1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10,
}

// Histogram is a fixed-bucket histogram. Buckets are cumulative at
// exposition time (Prometheus `le` convention); internally each bucket
// counts only its own range so Observe touches exactly one bucket.
type Histogram struct {
	bounds []float64      // sorted upper bounds; implicit +Inf after
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS loop
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Since observes the elapsed seconds from t0 — the standard way to time a
// stage: t0 := time.Now(); ...; h.Since(t0).
func (h *Histogram) Since(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Label is one name="value" pair attached to a series.
type Label struct {
	Name, Value string
}

// kind discriminates what a series holds.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGaugeFunc:
		return "gauge"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) time series.
type series struct {
	labels string // rendered {a="b",...} or ""
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups every series of one metric name (one HELP/TYPE block).
type family struct {
	name, help string
	kind       kind
	order      []string // label strings in registration order
	series     map[string]*series
}

// Registry holds metric families and renders them in the Prometheus text
// format. All methods are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Default is the process-wide registry: long-lived singletons (the batch
// pipeline stage timers, queued's service) register here; tests that need
// isolation use NewRegistry.
var Default = NewRegistry()

// lookup finds or creates the (name, labels) series, enforcing that a name
// keeps one kind and one help string for its lifetime.
func (r *Registry) lookup(k kind, name, help string, labels []Label) *series {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, name)
	} else if f.kind != k {
		panic("obs: metric " + name + " registered as " + f.kind.String() + " and " + k.String())
	}
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			// bounds filled by caller
		}
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(kindCounter, name, help, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(kindGauge, name, help, labels).g
}

// GaugeFunc registers (or replaces) a computed gauge: fn is called at
// scrape time. Use for values owned elsewhere, like a channel's depth or a
// map's size under its own lock; fn must be safe to call from the scrape
// goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(kindGaugeFunc, name, help, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram for (name, labels), creating it with the
// given bucket bounds (sorted ascending, +Inf implicit) on first use.
// Later calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(kindHistogram, name, help, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		s.h = h
	}
	return s.h
}

// renderLabels builds the canonical `{a="b",c="d"}` form, sorted by label
// name so the same set always maps to the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the text-format label escapes: backslash, quote,
// newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
