package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// The wire formats: /ingest accepts either newline-delimited JSON objects
// (RecordJSON, one per line; forgiving — a malformed line is counted and
// skipped) or a stream of the compact binary frames the store uses
// (mdt.AppendBinary; strict — a bad frame rejects the whole batch, since
// frame boundaries are lost).

// ContentTypeBinary selects the binary framing on /ingest.
const ContentTypeBinary = "application/octet-stream"

// ContentTypeJSONLines selects (and is the default) JSON-lines framing.
const ContentTypeJSONLines = "application/x-ndjson"

// maxBody bounds one /ingest request body (64 MiB ≈ 1.4M binary frames).
const maxBody = 64 << 20

// RecordJSON is the JSON-lines wire shape of one MDT record.
type RecordJSON struct {
	Time  string  `json:"time"` // RFC3339
	Taxi  string  `json:"taxi"`
	Lat   float64 `json:"lat"`
	Lon   float64 `json:"lon"`
	Speed float64 `json:"speed"`
	State string  `json:"state"` // Table 2 mnemonic, e.g. "POB"
}

// ToJSON converts a record to its wire shape.
func ToJSON(r mdt.Record) RecordJSON {
	return RecordJSON{
		Time: r.Time.UTC().Format(time.RFC3339), Taxi: r.TaxiID,
		Lat: r.Pos.Lat, Lon: r.Pos.Lon, Speed: r.Speed, State: r.State.String(),
	}
}

// Record converts the wire shape back.
func (j RecordJSON) Record() (mdt.Record, error) {
	ts, err := time.Parse(time.RFC3339, j.Time)
	if err != nil {
		return mdt.Record{}, fmt.Errorf("ingest: bad time: %w", err)
	}
	state, err := mdt.ParseState(j.State)
	if err != nil {
		return mdt.Record{}, err
	}
	return mdt.Record{
		Time: ts.UTC(), TaxiID: j.Taxi,
		Pos: geo.Point{Lat: j.Lat, Lon: j.Lon}, Speed: j.Speed, State: state,
	}, nil
}

// EncodeJSONLines writes recs as newline-delimited RecordJSON (the JSON
// /ingest body format).
func EncodeJSONLines(w io.Writer, recs []mdt.Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(ToJSON(r)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeBinary appends recs as binary frames (the binary /ingest body
// format) and returns the extended buffer.
func EncodeBinary(buf []byte, recs []mdt.Record) []byte {
	for _, r := range recs {
		buf = r.AppendBinary(buf)
	}
	return buf
}

// decodeBufs is the pooled scratch space of one /ingest request: the
// decoded record slice, the JSON line index and the raw binary body buffer.
// Accept copies records into per-shard slabs, so everything here is free
// for reuse the moment the handler responds.
type decodeBufs struct {
	recs   []mdt.Record
	lineOf []int
	raw    []byte
}

var decodePool = sync.Pool{New: func() any { return new(decodeBufs) }}

// readAll reads r to EOF into buf (reusing its capacity), like io.ReadAll
// without the fresh allocation per call.
func readAll(r io.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// decodeBinary parses a whole binary body, appending to recs; any bad
// frame fails the batch.
func decodeBinary(body []byte, recs []mdt.Record) ([]mdt.Record, error) {
	for len(body) > 0 {
		r, n, err := mdt.DecodeBinary(body)
		if err != nil {
			return recs, fmt.Errorf("ingest: bad frame after %d records: %w", len(recs), err)
		}
		recs = append(recs, r)
		body = body[n:]
	}
	return recs, nil
}

// maxLine bounds one JSON line (a record is ~120 bytes; 1 MiB is garbage).
const maxLine = 1 << 20

// decodeJSONLines parses newline-delimited RecordJSON, skipping (and
// counting) malformed lines — including over-long ones, which used to fail
// the whole batch through the scanner's ErrTooLong and cost every good
// record around them. Records append to recs and line indexes to lineOf
// (both may carry reused capacity): lineOf[i] is the zero-based line index
// record i came from and lines the total consumed, so the handler can
// report a cursor in the client's own line space even when bad lines were
// skipped.
func decodeJSONLines(r io.Reader, recs []mdt.Record, lineOf []int) (_ []mdt.Record, _ []int, lines int, bad int64, err error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var buf []byte
	for {
		chunk, e := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if e == bufio.ErrBufferFull {
			if len(buf) > maxLine {
				if e := discardLine(br); e != nil && e != io.EOF {
					return recs, lineOf, lines, bad, e
				}
				lines++
				bad++
				buf = buf[:0]
			}
			continue
		}
		if e != nil && e != io.EOF {
			return recs, lineOf, lines, bad, e
		}
		if len(buf) == 0 && e == io.EOF {
			return recs, lineOf, lines, bad, nil
		}
		if line := bytes.TrimRight(buf, "\r\n"); len(line) > 0 {
			var j RecordJSON
			rec, decErr := mdt.Record{}, json.Unmarshal(line, &j)
			if decErr == nil {
				rec, decErr = j.Record()
			}
			if decErr != nil {
				bad++
			} else {
				recs = append(recs, rec)
				lineOf = append(lineOf, lines)
			}
		}
		lines++
		buf = buf[:0]
		if e == io.EOF {
			return recs, lineOf, lines, bad, nil
		}
	}
}

// discardLine consumes the rest of an over-long line.
func discardLine(br *bufio.Reader) error {
	for {
		if _, err := br.ReadSlice('\n'); err != bufio.ErrBufferFull {
			return err
		}
	}
}

// ingestResponse is the /ingest reply body. Processed is the client's
// retry cursor: how many units of its batch — lines for JSON bodies,
// records for binary ones — the service consumed, counting skipped bad
// lines. On 429 the client must resend its batch from Processed; equating
// the cursor with Accepted (decoded records) instead re-sends or skips
// records whenever a bad line was dropped during decode.
type ingestResponse struct {
	Accepted  int    `json:"accepted"`
	Processed int    `json:"processed"`
	Bad       int64  `json:"bad,omitempty"`
	Error     string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ingest: encode response: %v", err)
	}
}

// respond writes the JSON reply and feeds the per-code request counter.
func (s *Service) respond(w http.ResponseWriter, status int, v any) {
	s.met.countHTTP(status)
	writeJSON(w, status, v)
}

// HandleIngest is the POST /ingest handler: decode, route, apply
// backpressure. Under Block a deadline miss answers 429 with the accepted
// prefix count so the client can retry the rest.
func (s *Service) HandleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.met.countHTTP(http.StatusMethodNotAllowed)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBody)
	db := decodePool.Get().(*decodeBufs)
	defer func() {
		db.recs = db.recs[:0]
		db.lineOf = db.lineOf[:0]
		db.raw = db.raw[:0]
		decodePool.Put(db)
	}()
	var (
		recs   []mdt.Record
		lineOf []int
		lines  int
		bad    int64
		err    error
	)
	t0 := time.Now()
	binary := r.Header.Get("Content-Type") == ContentTypeBinary
	if binary {
		if db.raw, err = readAll(body, db.raw); err == nil {
			recs, err = decodeBinary(db.raw, db.recs[:0])
			db.recs = recs
		}
		if err != nil {
			if tooLarge(err) {
				// The body hit maxBody: a client bug or misconfiguration,
				// not a bad record — don't poison the data-quality counter.
				s.respond(w, http.StatusRequestEntityTooLarge, ingestResponse{Error: err.Error()})
				return
			}
			s.met.badRecords.Add(1)
			s.respond(w, http.StatusBadRequest, ingestResponse{Error: err.Error()})
			return
		}
	} else {
		recs, lineOf, lines, bad, err = decodeJSONLines(body, db.recs[:0], db.lineOf[:0])
		db.recs, db.lineOf = recs, lineOf
		if err != nil {
			if tooLarge(err) {
				s.respond(w, http.StatusRequestEntityTooLarge, ingestResponse{Error: err.Error()})
				return
			}
			s.respond(w, http.StatusBadRequest, ingestResponse{Bad: bad, Error: err.Error()})
			return
		}
		s.met.badRecords.Add(bad)
	}
	s.met.decode.Since(t0)
	n, err := s.Accept(recs)
	// The retry cursor: binary frames map 1:1 to records, JSON records map
	// to the line they came from (past any skipped bad lines).
	processed := n
	if !binary {
		if n == len(recs) {
			processed = lines
		} else {
			processed = lineOf[n]
		}
	}
	switch {
	case errors.Is(err, ErrClosed):
		s.respond(w, http.StatusServiceUnavailable, ingestResponse{Error: "ingest closed"})
	case errors.Is(err, ErrBackpressure):
		s.respond(w, http.StatusTooManyRequests, ingestResponse{Accepted: n, Processed: processed, Bad: bad, Error: "backpressure: retry remaining records"})
	default:
		s.respond(w, http.StatusOK, ingestResponse{Accepted: n, Processed: processed, Bad: bad})
	}
}

// tooLarge reports whether err is http.MaxBytesReader tripping.
func tooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// HandleStats is the GET /ingest/stats handler.
func (s *Service) HandleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// HandleFlush is the POST /ingest/flush handler: the end-of-feed switch
// that finalizes every slot (see Service.Flush). After Close/Abort it
// answers 503 immediately — it used to post to exited workers and hang the
// request forever.
func (s *Service) HandleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if err := s.Flush(); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, ingestResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"flushed": true, "final_below": s.minClosed()})
}
