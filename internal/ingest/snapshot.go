package ingest

import (
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/stream"
)

// CellContext is one (spot, slot) cell of a published snapshot: the merged
// §5.2 features and the classified queue context.
type CellContext struct {
	Features core.SlotFeatures
	Label    core.QueueType
}

// Snapshot is an immutable, mutually consistent view of everything the
// read path serves: the cross-shard finality watermark and the context of
// every final (spot, slot) cell. The service republishes a fresh Snapshot
// via an atomic pointer swap each time the watermark advances (RCU style),
// so query handlers do zero locking — they load the current pointer once
// and read plain memory that can never change underneath them.
//
// Consistency contract: every cell with slot < FinalBelow is filled and
// final (no shard can still contribute to it); Epoch increases by exactly
// one per publish; two reads that observe the same Snapshot pointer
// observe byte-identical state. Staleness is bounded by the stream
// engine's one-slot close lag plus the publish itself (same-goroutine with
// the closing shard), so a snapshot is never older than one slot-close.
type Snapshot struct {
	// Epoch is the publish sequence number, strictly increasing.
	Epoch uint64
	// FinalBelow is the cross-shard finality watermark: every slot with
	// index < FinalBelow is final in every shard.
	FinalBelow int
	// At is the wall-clock publish instant (snapshot age = now - At).
	At time.Time
	// Spots and Slots give the grid dimensions the ctx array is laid
	// out over.
	Spots, Slots int

	// ctx holds the final cells, row-major [spot*FinalBelow + slot];
	// only slots < FinalBelow are present.
	ctx []CellContext

	// live holds the online-discovered queue spots (with lifecycle state)
	// as of this publish — nil when live discovery is disabled. The slice
	// is immutable once published, like everything else here.
	live []core.LiveSpot
}

// Live returns the online-discovered queue spots current at this snapshot,
// sorted by window support (desc, ties by position). The returned slice is
// shared and must not be mutated. Empty when live discovery is off.
func (s *Snapshot) Live() []core.LiveSpot { return s.live }

// Context returns the merged features and label for (spot, slot); ok is
// false while any shard could still contribute to the slot or the indexes
// are out of range — exactly the gating the locked read path applied.
func (s *Snapshot) Context(spot, slot int) (core.SlotFeatures, core.QueueType, bool) {
	if spot < 0 || spot >= s.Spots || slot < 0 || slot >= s.Slots || slot >= s.FinalBelow {
		return core.SlotFeatures{}, core.Unidentified, false
	}
	c := &s.ctx[spot*s.FinalBelow+slot]
	return c.Features, c.Label, true
}

// Label is Context without the features.
func (s *Snapshot) Label(spot, slot int) (core.QueueType, bool) {
	_, l, ok := s.Context(spot, slot)
	return l, ok
}

// publish rebuilds the immutable view and swaps it in. Callers must hold
// a.mu; finalBelow must already be clamped to [0, grid.Slots]. Contexts of
// newly final cells are computed here (amortized: a cell is classified
// once, then copied by reference-free value into each later snapshot), so
// the read path never computes anything.
func (a *aggregator) publish(finalBelow int) {
	var lastEpoch uint64
	if old := a.pub.Load(); old != nil {
		lastEpoch = old.Epoch
	}
	now := time.Now()
	snap := &Snapshot{
		Epoch:      lastEpoch + 1,
		FinalBelow: finalBelow,
		At:         now,
		Spots:      len(a.ths),
		Slots:      a.grid.Slots,
		ctx:        make([]CellContext, len(a.ths)*finalBelow),
		live:       a.live,
	}
	for spot := 0; spot < snap.Spots; spot++ {
		row := snap.ctx[spot*finalBelow : (spot+1)*finalBelow]
		for slot := 0; slot < finalBelow; slot++ {
			row[slot] = a.contextLocked(spot, slot, now)
		}
	}
	a.pub.Store(snap)
	if a.met != nil {
		a.met.snapshotEpochs.Inc()
		a.met.snapshotFinal.Set(int64(finalBelow))
	}
}

// contextLocked returns (computing and caching on first need) the context
// of one final cell. Callers must hold a.mu.
func (a *aggregator) contextLocked(spot, slot int, now time.Time) CellContext {
	c := a.cells[cellKey{spot, slot}]
	if c == nil {
		e := &a.empty[spot]
		if !e.done {
			var zero stream.SlotStats
			e.feats = zero.Features(a.grid.SlotLen, a.amp)
			e.label = core.Classify([]core.SlotFeatures{e.feats}, a.ths[spot])[0]
			e.done = true
		}
		return CellContext{Features: e.feats, Label: e.label}
	}
	if !c.done {
		c.feats = c.stats.Features(a.grid.SlotLen, a.amp)
		c.label = core.Classify([]core.SlotFeatures{c.feats}, a.ths[spot])[0]
		c.stats = stream.SlotStats{} // raw stats are spent
		c.done = true
		if a.met != nil && !c.closedAt.IsZero() {
			// With eager publication the serve lag is close-to-publish, not
			// close-to-first-read: the cell is ready to serve from here on.
			a.met.serveLag.Observe(now.Sub(c.closedAt).Seconds())
		}
	}
	return CellContext{Features: c.feats, Label: c.label}
}
