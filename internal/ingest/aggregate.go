package ingest

import (
	"sync"
	"sync/atomic"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/stream"
)

// cellKey addresses one (spot, slot) cell.
type cellKey struct{ spot, slot int }

// cell is one merged (spot, slot): raw statistics while shards are still
// closing, then the computed context once first published.
type cell struct {
	stats    stream.SlotStats
	label    core.QueueType
	feats    core.SlotFeatures
	closedAt time.Time // when the first shard closing arrived
	done     bool
}

// aggregator merges per-shard slot closings into served contexts. Because
// stream.SlotStats merging is exact (sums and concatenations, with
// departure ends re-sorted at feature time), the merged context equals what
// one engine over the whole fleet would have produced.
//
// Writers (shard workers delivering SlotClosed events and watermark
// advances) coordinate through mu; readers never touch it. Each time the
// cross-shard finality watermark advances, the writer that moved it
// rebuilds an immutable Snapshot of every final cell and swaps it into pub
// — the RCU publish. The query path is Service.Context/Label, which load
// pub once and read plain memory; the mutex-guarded path survives as
// Service.ContextLocked, the reference implementation the equivalence
// tests and serve benchmarks compare against.
//
// Cells exist only for (spot, slot) pairs a shard actually fed: a read of a
// never-fed pair is served from the per-spot empty context without
// allocating, so a scraper walking the whole grid cannot grow the map. The
// live cell count is exported as the ingest_aggregator_cells gauge.
type aggregator struct {
	grid core.SlotGrid
	ths  []core.Thresholds
	amp  core.Amplification
	met  *metrics

	// pub is the RCU-published immutable view; never nil after init().
	pub atomic.Pointer[Snapshot]

	mu    sync.Mutex
	cells map[cellKey]*cell
	// Per-spot context of a slot with no activity, computed on first need;
	// identical for every empty slot of a spot, so one cached copy serves
	// arbitrarily many reads.
	empty []emptyCtx
	// live is the latest online-discovered spot list, carried verbatim into
	// every snapshot publish (nil when live discovery is off).
	live []core.LiveSpot
}

// emptyCtx is one spot's lazily computed no-activity context.
type emptyCtx struct {
	feats core.SlotFeatures
	label core.QueueType
	done  bool
}

// init publishes the epoch-1 snapshot covering finalBelow slots (0 for a
// fresh service; the replayed watermark after WAL recovery).
func (a *aggregator) init(finalBelow int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.publish(finalBelow)
}

// add merges every SlotClosed event's raw statistics.
func (a *aggregator) add(events []stream.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range events {
		ev := &events[i]
		if ev.Kind != stream.SlotClosed {
			continue
		}
		k := cellKey{ev.Spot, ev.Slot}
		c := a.cells[k]
		if c == nil {
			c = &cell{closedAt: time.Now()}
			a.cells[k] = c
		}
		c.stats.Merge(&ev.Stats)
	}
}

// advance republishes if the cross-shard watermark moved past the current
// snapshot. Called by a shard worker after it raised its own watermark;
// minClosed is the service-wide minimum at that instant. The re-check
// under mu makes concurrent advances from racing shards safe: each publish
// covers at least its own observation, epochs stay strictly increasing,
// and a conservative (older) minClosed just publishes nothing.
func (a *aggregator) advance(minClosed int) {
	if minClosed > a.grid.Slots {
		minClosed = a.grid.Slots
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if minClosed <= a.pub.Load().FinalBelow {
		return
	}
	a.publish(minClosed)
}

// publishLive swaps in a new live-discovered spot list and republishes at
// the current finality watermark. advance() refuses to republish when the
// watermark hasn't moved, so live-spot churn needs its own entry point —
// the epoch still bumps, which is what invalidates serve-side render
// caches keyed on the snapshot pointer.
func (a *aggregator) publishLive(spots []core.LiveSpot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.live = spots
	a.publish(a.pub.Load().FinalBelow)
}

// context returns the merged features and label for a final (spot, slot),
// computing and caching them on first read — the pre-snapshot locked read
// path, retained as the reference implementation.
func (a *aggregator) context(spot, slot int) (core.SlotFeatures, core.QueueType) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.contextLocked(spot, slot, time.Now())
	return c.Features, c.Label
}

// cellCount is the ingest_aggregator_cells gauge read.
func (a *aggregator) cellCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.cells)
}
