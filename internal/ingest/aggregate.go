package ingest

import (
	"sync"

	"taxiqueue/internal/core"
	"taxiqueue/internal/stream"
)

// cellKey addresses one (spot, slot) cell.
type cellKey struct{ spot, slot int }

// cell is one merged (spot, slot): raw statistics while shards are still
// closing, then the computed context once first served.
type cell struct {
	stats stream.SlotStats
	label core.QueueType
	feats core.SlotFeatures
	done  bool
}

// aggregator merges per-shard slot closings into served contexts. Because
// stream.SlotStats merging is exact (sums and concatenations, with
// departure ends re-sorted at feature time), the merged context equals what
// one engine over the whole fleet would have produced; the Service gates
// reads on the cross-shard watermark so a cell is only evaluated once no
// shard can still contribute.
type aggregator struct {
	grid core.SlotGrid
	ths  []core.Thresholds
	amp  core.Amplification

	mu    sync.Mutex
	cells map[cellKey]*cell
}

// add merges every SlotClosed event's raw statistics.
func (a *aggregator) add(events []stream.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range events {
		ev := &events[i]
		if ev.Kind != stream.SlotClosed {
			continue
		}
		k := cellKey{ev.Spot, ev.Slot}
		c := a.cells[k]
		if c == nil {
			c = &cell{}
			a.cells[k] = c
		}
		c.stats.Merge(&ev.Stats)
	}
}

// context returns the merged features and label for a final (spot, slot),
// computing and caching them on first read. A cell with no activity
// classifies exactly like an empty batch slot.
func (a *aggregator) context(spot, slot int) (core.SlotFeatures, core.QueueType) {
	k := cellKey{spot, slot}
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.cells[k]
	if c == nil {
		c = &cell{}
		a.cells[k] = c
	}
	if !c.done {
		c.feats = c.stats.Features(a.grid.SlotLen, a.amp)
		c.label = core.Classify([]core.SlotFeatures{c.feats}, a.ths[spot])[0]
		c.stats = stream.SlotStats{} // raw stats are spent
		c.done = true
	}
	return c.feats, c.label
}
