package ingest

import (
	"sync"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/stream"
)

// cellKey addresses one (spot, slot) cell.
type cellKey struct{ spot, slot int }

// cell is one merged (spot, slot): raw statistics while shards are still
// closing, then the computed context once first served.
type cell struct {
	stats    stream.SlotStats
	label    core.QueueType
	feats    core.SlotFeatures
	closedAt time.Time // when the first shard closing arrived
	done     bool
}

// aggregator merges per-shard slot closings into served contexts. Because
// stream.SlotStats merging is exact (sums and concatenations, with
// departure ends re-sorted at feature time), the merged context equals what
// one engine over the whole fleet would have produced; the Service gates
// reads on the cross-shard watermark so a cell is only evaluated once no
// shard can still contribute.
//
// Cells exist only for (spot, slot) pairs a shard actually fed: a read of a
// never-fed pair is served from the per-spot empty context without
// allocating, so a scraper walking the whole grid cannot grow the map. The
// live cell count is exported as the ingest_aggregator_cells gauge.
type aggregator struct {
	grid core.SlotGrid
	ths  []core.Thresholds
	amp  core.Amplification
	met  *metrics

	mu    sync.Mutex
	cells map[cellKey]*cell
	// Per-spot context of a slot with no activity, computed on first need;
	// identical for every empty slot of a spot, so one cached copy serves
	// arbitrarily many reads.
	empty []emptyCtx
}

// emptyCtx is one spot's lazily computed no-activity context.
type emptyCtx struct {
	feats core.SlotFeatures
	label core.QueueType
	done  bool
}

// add merges every SlotClosed event's raw statistics.
func (a *aggregator) add(events []stream.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range events {
		ev := &events[i]
		if ev.Kind != stream.SlotClosed {
			continue
		}
		k := cellKey{ev.Spot, ev.Slot}
		c := a.cells[k]
		if c == nil {
			c = &cell{closedAt: time.Now()}
			a.cells[k] = c
		}
		c.stats.Merge(&ev.Stats)
	}
}

// context returns the merged features and label for a final (spot, slot),
// computing and caching them on first read. A cell with no activity
// classifies exactly like an empty batch slot — and is served without
// retaining any per-slot state.
func (a *aggregator) context(spot, slot int) (core.SlotFeatures, core.QueueType) {
	k := cellKey{spot, slot}
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.cells[k]
	if c == nil {
		e := &a.empty[spot]
		if !e.done {
			var zero stream.SlotStats
			e.feats = zero.Features(a.grid.SlotLen, a.amp)
			e.label = core.Classify([]core.SlotFeatures{e.feats}, a.ths[spot])[0]
			e.done = true
		}
		return e.feats, e.label
	}
	if !c.done {
		c.feats = c.stats.Features(a.grid.SlotLen, a.amp)
		c.label = core.Classify([]core.SlotFeatures{c.feats}, a.ths[spot])[0]
		c.stats = stream.SlotStats{} // raw stats are spent
		c.done = true
		if a.met != nil && !c.closedAt.IsZero() {
			a.met.serveLag.Since(c.closedAt)
		}
	}
	return c.feats, c.label
}

// cellCount is the ingest_aggregator_cells gauge read.
func (a *aggregator) cellCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.cells)
}
