package ingest

import (
	"path/filepath"
	"testing"
	"time"

	"taxiqueue/internal/chaos"
	"taxiqueue/internal/core"
	"taxiqueue/internal/history"
)

// historyStore opens a history store matching the fixture day's grid and
// spot set, with small blocks so a half-day feed already seals durable
// frames.
func historyStore(t testing.TB, d *day, dir string) *history.Store {
	t.Helper()
	s, err := history.Open(history.Config{
		Grid:         d.grid,
		Spots:        d.scfg.Spots,
		Thresholds:   d.scfg.Thresholds,
		Amplify:      d.scfg.Amplify,
		Dir:          dir,
		BlockRecords: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// historyContexts reads every (spot, slot) cell of day 0 back out of the
// store in snapshot() shape.
func historyContexts(t testing.TB, s *history.Store, d *day) ([][]core.QueueType, [][]core.SlotFeatures) {
	t.Helper()
	labels := make([][]core.QueueType, len(d.scfg.Spots))
	feats := make([][]core.SlotFeatures, len(d.scfg.Spots))
	from := d.grid.Start
	to := from.Add(s.DayLen())
	for i := range labels {
		labels[i] = make([]core.QueueType, d.grid.Slots)
		feats[i] = make([]core.SlotFeatures, d.grid.Slots)
		pts := s.Series(i, from, to)
		if len(pts) != d.grid.Slots {
			t.Fatalf("spot %d: %d history points, want %d", i, len(pts), d.grid.Slots)
		}
		for j, p := range pts {
			labels[i][j] = p.Label
			feats[i][j] = p.Feats
		}
	}
	return labels, feats
}

// TestHistoryMatchesLiveContexts is the live-path equality property: a
// full simulated day fed through the sharded service with a history store
// attached must leave the store holding exactly the snapshot's final
// contexts — every feature byte-for-field, including the synthesized
// empty cells.
func TestHistoryMatchesLiveContexts(t *testing.T) {
	d := getDay(t)
	hist := historyStore(t, d, t.TempDir())
	defer hist.Close()
	cfg := d.serviceConfig()
	cfg.Shards = 4
	cfg.History = hist
	svc := runService(t, cfg, d.raw)
	defer svc.Close()

	wantL, wantF := snapshot(t, svc, d)
	if wm := hist.Watermark(0); wm != d.grid.Slots {
		t.Fatalf("history watermark %d after Flush, want %d", wm, d.grid.Slots)
	}
	gotL, gotF := historyContexts(t, hist, d)
	sameContexts(t, "history vs live snapshot", gotL, gotF, wantL, wantF)

	if st := hist.Stats(); st.Records == 0 || st.Blocks == 0 || st.Bytes == 0 {
		t.Fatalf("degenerate history stats after a full day: %+v", st)
	}
}

// TestHistoryCrashRestartRecovers is the kill-and-restart acceptance
// scenario: feed half the day with WAL + history durability on, abort
// without flushing, tear the history file's tail, and restart. Recovery
// must keep only clean blocks (all matching the fault-free run), WAL
// replay must idempotently re-fill the gap, and finishing the feed must
// leave the history identical to an uninterrupted run.
func TestHistoryCrashRestartRecovers(t *testing.T) {
	d := getDay(t)
	base := d.serviceConfig()
	base.Shards = 4
	base.CheckpointEvery = 1 << 30 // checkpoints under test control

	// Fault-free reference.
	refHist := historyStore(t, d, t.TempDir())
	defer refHist.Close()
	refCfg := base
	refCfg.WALDir = t.TempDir()
	refCfg.History = refHist
	ref := runService(t, refCfg, d.raw)
	wantL, wantF := snapshot(t, ref, d)
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Crashed run: half the feed, checkpoint, kill without flushing.
	histDir := t.TempDir()
	crashHist := historyStore(t, d, histDir)
	crashCfg := base
	crashCfg.WALDir = t.TempDir()
	crashCfg.History = crashHist
	svc, err := NewService(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	k := len(d.raw) / 2
	feed(t, svc, d.raw[:k])
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if crashHist.Stats().Blocks == 0 {
		t.Fatal("half a day sealed no history blocks; the tear below would be vacuous")
	}
	svc.Abort() // no Flush: pending history appends die with the process

	// The crash also tears the history file's tail.
	gens, err := filepath.Glob(filepath.Join(histDir, "hist-*.hb"))
	if err != nil || len(gens) == 0 {
		t.Fatalf("no history generation files (%v)", err)
	}
	if err := chaos.TearTail(gens[len(gens)-1], 37); err != nil {
		t.Fatal(err)
	}

	// Restart: history recovery keeps the clean prefix...
	recHist := historyStore(t, d, histDir)
	defer recHist.Close()
	if st := recHist.Stats(); st.Truncations == 0 {
		t.Fatalf("torn tail recovered without counting a truncation: %+v", st)
	}
	wm := recHist.Watermark(0)
	if wm >= d.grid.Slots {
		t.Fatalf("watermark %d survived the crash + tear", wm)
	}
	// ...and every cell it still serves matches the fault-free run.
	until := d.grid.Start.Add(time.Duration(wm) * d.grid.SlotLen)
	for i := range d.scfg.Spots {
		pts := recHist.Series(i, d.grid.Start, until)
		if len(pts) != wm {
			t.Fatalf("spot %d: %d recovered points below watermark %d", i, len(pts), wm)
		}
		for _, p := range pts {
			if p.Label != wantL[i][p.Slot] || p.Feats != wantF[i][p.Slot] {
				t.Fatalf("recovered block content diverges at spot %d slot %d: (%v, %+v) vs (%v, %+v)",
					i, p.Slot, p.Label, p.Feats, wantL[i][p.Slot], wantF[i][p.Slot])
			}
		}
	}

	// WAL replay re-derives the torn-off slots (history appends are
	// idempotent, so the replayed prefix cannot double-record), and the
	// rest of the feed completes the day.
	crashCfg.History = recHist
	svc2, err := NewService(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	feed(t, svc2, d.raw[k:])
	if err := svc2.Flush(); err != nil {
		t.Fatal(err)
	}
	gotL, gotF := snapshot(t, svc2, d)
	sameContexts(t, "recovered service", gotL, gotF, wantL, wantF)
	if wm := recHist.Watermark(0); wm != d.grid.Slots {
		t.Fatalf("history watermark %d after recovery + full feed", wm)
	}
	hL, hF := historyContexts(t, recHist, d)
	sameContexts(t, "recovered history vs fault-free", hL, hF, wantL, wantF)
	if got, want := recHist.Stats().Records, refHist.Stats().Records; got < want {
		t.Fatalf("recovered history holds %d records, fault-free run holds %d", got, want)
	}
}
