package ingest

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, svc *Service, body *bytes.Buffer) (int, ingestResponse) {
	t.Helper()
	req := httptest.NewRequest("POST", "/ingest", body)
	req.Header.Set("Content-Type", ContentTypeJSONLines)
	w := httptest.NewRecorder()
	svc.HandleIngest(w, req)
	var resp ingestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("status %d, body %q: %v", w.Code, w.Body.String(), err)
	}
	return w.Code, resp
}

// TestLongLineSkippedNotFatal: a single over-long JSON line used to fail
// the whole batch through the scanner's ErrTooLong — every good record
// around it was bounced with a 400. It must now be counted and skipped
// like any other bad line.
func TestLongLineSkippedNotFatal(t *testing.T) {
	stall := make(chan struct{})
	close(stall)
	svc, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var body bytes.Buffer
	if err := EncodeJSONLines(&body, burst(5)); err != nil {
		t.Fatal(err)
	}
	body.WriteString(`{"taxi":"` + strings.Repeat("x", 3<<20) + "\"}\n") // ~3 MiB line
	if err := EncodeJSONLines(&body, burst(5)); err != nil {
		t.Fatal(err)
	}
	code, resp := postJSON(t, svc, &body)
	if code != 200 {
		t.Fatalf("status %d, want 200", code)
	}
	if resp.Accepted != 10 || resp.Bad != 1 {
		t.Fatalf("accepted %d bad %d, want 10 accepted, 1 bad", resp.Accepted, resp.Bad)
	}
	if resp.Processed != 11 {
		t.Fatalf("processed %d, want all 11 lines consumed", resp.Processed)
	}
}

// TestOversizedBodyAnswers413: a body past maxBody is a client bug, not
// bad data — it must answer 413 (counted per-code) and leave the
// bad-records data-quality counter untouched. Both wire formats.
func TestOversizedBodyAnswers413(t *testing.T) {
	huge := make([]byte, maxBody+16)
	for _, ct := range []string{ContentTypeBinary, ContentTypeJSONLines} {
		t.Run(ct, func(t *testing.T) {
			stall := make(chan struct{})
			close(stall)
			svc, err := NewService(tinyConfig(stall, Block))
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			req := httptest.NewRequest("POST", "/ingest", bytes.NewReader(huge))
			req.Header.Set("Content-Type", ct)
			w := httptest.NewRecorder()
			svc.HandleIngest(w, req)
			if w.Code != http.StatusRequestEntityTooLarge {
				t.Fatalf("status %d, want 413", w.Code)
			}
			if n := svc.Stats().BadRecords; n != 0 {
				t.Fatalf("oversized body counted as %d bad records", n)
			}
			if n := svc.met.httpReqs[http.StatusRequestEntityTooLarge].Value(); n != 1 {
				t.Fatalf("requests_total{code=413} = %d, want 1", n)
			}
		})
	}
}

// TestProcessedCursorAlignsPoisonedBatch is the 429-accounting regression:
// the accepted-prefix count indexes *decoded records*, so a client that
// advanced its line cursor by it after a poisoned batch (a bad line amid
// good ones) re-sent an already-accepted record forever. Processed counts
// consumed lines — past the skipped bad line — so the cursor lands exactly
// on the first unaccepted record.
func TestProcessedCursorAlignsPoisonedBatch(t *testing.T) {
	stall := make(chan struct{})
	cfg := tinyConfig(stall, Block) // queue depth 8, worker wedged
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := burst(100)
	var body bytes.Buffer
	if err := EncodeJSONLines(&body, recs[:3]); err != nil {
		t.Fatal(err)
	}
	body.WriteString("{poisoned line}\n")
	if err := EncodeJSONLines(&body, recs[3:]); err != nil {
		t.Fatal(err)
	}
	code, resp := postJSON(t, svc, &body)
	if code != 429 {
		t.Fatalf("status %d, want 429 from the wedged shard", code)
	}
	if resp.Accepted != cfg.QueueDepth || resp.Bad != 1 {
		t.Fatalf("accepted %d bad %d, want %d/1", resp.Accepted, resp.Bad, cfg.QueueDepth)
	}
	// Records 0-7 occupy lines 0-2 and 4-8 (line 3 is poison): the first
	// unaccepted record, #8, sits at line 9 — one past the naive cursor.
	if resp.Processed != resp.Accepted+1 {
		t.Fatalf("processed %d, want %d (accepted prefix plus the skipped line)", resp.Processed, resp.Accepted+1)
	}
	// A client resuming at line Processed re-sends exactly records 8+.
	var rest bytes.Buffer
	if err := EncodeJSONLines(&rest, recs[resp.Processed-1:]); err != nil {
		t.Fatal(err)
	}
	close(stall) // un-wedge
	code, resp = postJSON(t, svc, &rest)
	if code != 200 || resp.Accepted != 92 {
		t.Fatalf("retry: status %d accepted %d, want 200/92", code, resp.Accepted)
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	// No record lost, none double-fed: the single-taxi burst is strictly
	// ordered, so any re-sent overlap would be rejected and show here.
	st := svc.Stats()
	if st.Accepted != 100 || st.Rejected != 0 {
		t.Fatalf("accepted %d rejected %d after aligned retry, want 100/0", st.Accepted, st.Rejected)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}
