package ingest

import (
	"net/http"
	"strconv"

	"taxiqueue/internal/obs"
)

// metrics is the service's observability surface: every counter the
// /ingest/stats JSON reports is one of these registry-backed collectors, so
// the JSON view and the Prometheus /metrics scrape read the same atomics
// and can never disagree. Histograms cover each stage of the live path:
// HTTP decode → shard queue wait → per-record processing (clean + engine)
// → WAL checkpoint → slot-close-to-serve lag.
type metrics struct {
	reg *obs.Registry

	decode    *obs.Histogram // ingest_http_decode_seconds
	queueWait *obs.Histogram // ingest_queue_wait_seconds
	process   *obs.Histogram // ingest_process_seconds
	batchRecs *obs.Histogram // ingest_batch_records
	ckpt      *obs.Histogram // ingest_wal_checkpoint_seconds
	walSync   *obs.Histogram // ingest_wal_sync_seconds
	serveLag  *obs.Histogram // ingest_slot_serve_lag_seconds

	httpReqs   map[int]*obs.Counter // ingest_http_requests_total{code}
	badRecords *obs.Counter         // ingest_bad_records_total

	// Snapshot (RCU read path) series: epoch churn and the published
	// finality watermark. Snapshot age is a GaugeFunc in NewService.
	snapshotEpochs *obs.Counter // ingest_snapshot_epochs_total
	snapshotFinal  *obs.Gauge   // ingest_snapshot_final_below

	// Live spot discovery lifecycle transitions (cumulative; exported as
	// deltas from core.LiveStats at each tracker refresh).
	spotEmerging  *obs.Counter // spot_live_emerging_total
	spotConfirmed *obs.Counter // spot_live_confirmed_total
	spotDecayed   *obs.Counter // spot_live_decayed_total
	spotDropped   *obs.Counter // spot_live_dropped_total

	// removed{reason} breaks rejections down by cause across all shards.
	removedGPS      *obs.Counter
	removedDup      *obs.Counter
	removedImproper *obs.Counter
	removedOOO      *obs.Counter

	shards []shardMetrics
}

// shardMetrics is one shard's per-series collectors (label shard="i").
type shardMetrics struct {
	accepted       *obs.Counter
	rejected       *obs.Counter
	dropped        *obs.Counter
	replayed       *obs.Counter
	deduped        *obs.Counter
	checkpoints    *obs.Counter
	ckptErrors     *obs.Counter
	walTruncations *obs.Counter
	walSyncs       *obs.Counter
	walCompactions *obs.Counter
	walPending     *obs.Gauge
	walSegments    *obs.Gauge
	watermark      *obs.Gauge
	openSlots      *obs.Gauge
	taxis          *obs.Gauge
}

// newMetrics registers every ingest series in reg. Registration is
// idempotent, so pointing two services at one registry shares the series —
// fine for the single queued process, and tests use private registries.
func newMetrics(reg *obs.Registry, shards int) *metrics {
	m := &metrics{
		reg:       reg,
		decode:    reg.Histogram("ingest_http_decode_seconds", "Time to read and decode one /ingest body.", obs.DefBuckets),
		queueWait: reg.Histogram("ingest_queue_wait_seconds", "Time one record spent in its shard queue before processing.", obs.DefBuckets),
		process:   reg.Histogram("ingest_process_seconds", "Per-batch shard processing time (ordering checks, WAL appends, clean, engine ingest, group commit).", obs.DefBuckets),
		batchRecs: reg.Histogram("ingest_batch_records", "Records per queued batch the shard worker processed.", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
		ckpt:      reg.Histogram("ingest_wal_checkpoint_seconds", "Duration of one WAL checkpoint (commit + segment seal).", obs.DefBuckets),
		walSync:   reg.Histogram("ingest_wal_sync_seconds", "Duration of one WAL group commit (buffered write + fsync).", obs.DefBuckets),
		serveLag:  reg.Histogram("ingest_slot_serve_lag_seconds", "Lag from a (spot, slot) cell first closing in a shard to its first read.", obs.DefBuckets),

		badRecords: reg.Counter("ingest_bad_records_total", "Wire payloads or lines that failed to decode."),

		snapshotEpochs: reg.Counter("ingest_snapshot_epochs_total", "Read-snapshot publications (RCU pointer swaps)."),
		snapshotFinal:  reg.Gauge("ingest_snapshot_final_below", "Finality watermark of the published read snapshot."),

		spotEmerging:  reg.Counter("spot_live_emerging_total", "Live-discovered spots that started tracking (emerging)."),
		spotConfirmed: reg.Counter("spot_live_confirmed_total", "Live spot transitions into confirmed (incl. re-confirmations)."),
		spotDecayed:   reg.Counter("spot_live_decayed_total", "Confirmed live spots whose window support decayed."),
		spotDropped:   reg.Counter("spot_live_dropped_total", "Live spots dropped (dissolved while emerging, or decayed out)."),

		removedGPS:      reg.Counter("ingest_removed_total", "Records removed before the engine, by reason.", obs.Label{Name: "reason", Value: "gps_outlier"}),
		removedDup:      reg.Counter("ingest_removed_total", "Records removed before the engine, by reason.", obs.Label{Name: "reason", Value: "duplicate"}),
		removedImproper: reg.Counter("ingest_removed_total", "Records removed before the engine, by reason.", obs.Label{Name: "reason", Value: "improper_state"}),
		removedOOO:      reg.Counter("ingest_removed_total", "Records removed before the engine, by reason.", obs.Label{Name: "reason", Value: "out_of_order"}),

		httpReqs: make(map[int]*obs.Counter),
	}
	for _, code := range []int{http.StatusOK, http.StatusBadRequest, http.StatusMethodNotAllowed,
		http.StatusRequestEntityTooLarge, http.StatusTooManyRequests,
		http.StatusServiceUnavailable, http.StatusInternalServerError} {
		m.httpReqs[code] = reg.Counter("ingest_http_requests_total",
			"/ingest requests by response code.", obs.Label{Name: "code", Value: strconv.Itoa(code)})
	}
	m.shards = make([]shardMetrics, shards)
	for i := range m.shards {
		l := obs.Label{Name: "shard", Value: strconv.Itoa(i)}
		m.shards[i] = shardMetrics{
			accepted:       reg.Counter("ingest_accepted_total", "Records that survived cleaning and entered the engine.", l),
			rejected:       reg.Counter("ingest_rejected_total", "Records removed by validation, cleaning or the ordering rule.", l),
			dropped:        reg.Counter("ingest_dropped_total", "Records discarded by DropOldest backpressure.", l),
			replayed:       reg.Counter("ingest_replayed_total", "Raw WAL records replayed at startup.", l),
			deduped:        reg.Counter("ingest_resend_dedup_total", "Re-sent records dropped by the pre-WAL dedup window.", l),
			checkpoints:    reg.Counter("ingest_checkpoints_total", "Completed atomic WAL checkpoints.", l),
			ckptErrors:     reg.Counter("ingest_checkpoint_errors_total", "WAL checkpoint or group-commit attempts that failed (retried on the next trigger).", l),
			walTruncations: reg.Counter("ingest_wal_truncations_total", "Startups that truncated a torn WAL tail instead of replaying it.", l),
			walSyncs:       reg.Counter("ingest_wal_syncs_total", "WAL group commits: one fsync covering every record since the last.", l),
			walCompactions: reg.Counter("ingest_wal_compactions_total", "Background merges folding small sealed WAL segments.", l),
			walPending:     reg.Gauge("ingest_wal_pending", "Records appended since the last fsync (what a crash would lose).", l),
			walSegments:    reg.Gauge("ingest_wal_segments", "Sealed WAL segment files on disk.", l),
			watermark:      reg.Gauge("ingest_watermark_slot", "Shard finality watermark: slots below are final here.", l),
			openSlots:      reg.Gauge("ingest_engine_open_slots", "Engine accumulator cells still open in this shard.", l),
			taxis:          reg.Gauge("ingest_engine_taxis", "Distinct taxis this shard's engine is tracking.", l),
		}
	}
	return m
}

// countHTTP bumps the per-code request counter (codes outside the
// pre-registered set register lazily).
func (m *metrics) countHTTP(code int) {
	c := m.httpReqs[code]
	if c == nil {
		c = m.reg.Counter("ingest_http_requests_total",
			"/ingest requests by response code.", obs.Label{Name: "code", Value: strconv.Itoa(code)})
	}
	c.Inc()
}
