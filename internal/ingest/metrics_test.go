package ingest

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsMatchStats: an /ingest POST must advance the registry-backed
// counters, and the /ingest/stats JSON must agree with the Prometheus
// render — both read the same collectors, so any divergence is a bug.
func TestMetricsMatchStats(t *testing.T) {
	stall := make(chan struct{})
	close(stall)
	svc, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var body bytes.Buffer
	if err := EncodeJSONLines(&body, burst(100)); err != nil {
		t.Fatal(err)
	}
	body.WriteString("{not json}\n")
	req := httptest.NewRequest("POST", "/ingest", &body)
	w := httptest.NewRecorder()
	svc.HandleIngest(w, req)
	if w.Code != 200 {
		t.Fatalf("ingest status %d: %s", w.Code, w.Body.String())
	}
	// Settle: Flush only returns once the queue has drained and the
	// cleaner released its held records.
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	if st.BadRecords != 1 {
		t.Fatalf("bad_records %d, want the 1 malformed line", st.BadRecords)
	}

	// The JSON totals must equal the registry collectors exactly.
	m := svc.met
	var regAccepted, regRejected, regDropped int64
	for i := range m.shards {
		regAccepted += m.shards[i].accepted.Value()
		regRejected += m.shards[i].rejected.Value()
		regDropped += m.shards[i].dropped.Value()
	}
	if st.Accepted != regAccepted || st.Rejected != regRejected || st.Dropped != regDropped {
		t.Fatalf("stats JSON (acc=%d rej=%d drop=%d) != registry (acc=%d rej=%d drop=%d)",
			st.Accepted, st.Rejected, st.Dropped, regAccepted, regRejected, regDropped)
	}
	if got := m.badRecords.Value(); st.BadRecords != got {
		t.Fatalf("stats bad_records %d != registry %d", st.BadRecords, got)
	}

	// Every live-path stage histogram saw at least one observation.
	for name, c := range map[string]int64{
		"ingest_http_decode_seconds": m.decode.Count(),
		"ingest_queue_wait_seconds":  m.queueWait.Count(),
		"ingest_process_seconds":     m.process.Count(),
	} {
		if c == 0 {
			t.Errorf("%s never observed", name)
		}
	}
	if m.httpReqs[200].Value() != 1 {
		t.Fatalf("http 200 counter %d, want 1", m.httpReqs[200].Value())
	}

	// The Prometheus scrape renders those same values.
	var buf bytes.Buffer
	if err := svc.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		fmt.Sprintf(`ingest_accepted_total{shard="0"} %d`, st.Accepted),
		fmt.Sprintf(`ingest_http_requests_total{code="200"} %d`, 1),
		"ingest_bad_records_total 1",
		"ingest_queue_wait_seconds_count",
		`ingest_queue_depth{shard="0"} 0`,
		"ingest_aggregator_cells",
		`ingest_watermark_slot{shard="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestMetricsHandlerServesScrape: the registry doubles as the /metrics
// http.Handler with the Prometheus text content type.
func TestMetricsHandlerServesScrape(t *testing.T) {
	stall := make(chan struct{})
	close(stall)
	svc, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	w := httptest.NewRecorder()
	svc.Registry().ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("scrape status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(w.Body.String(), "# TYPE ingest_accepted_total counter") {
		t.Fatal("scrape missing ingest series")
	}
}
