package ingest

import (
	"sync"
	"time"

	"taxiqueue/internal/core"
	"taxiqueue/internal/stream"
)

// LiveSpotsConfig enables online queue-spot discovery on the ingest path.
// When on, every pickup the stream engines detect *outside* the batch spot
// list (stream.Event.Spot == -1) feeds a sliding-window incremental DBSCAN
// (core.LiveDetector), so brand-new queues — a pop-up rank at an event, a
// closed road diverting taxis — surface with a lifecycle state hours before
// the next batch pass would see them. Discovered spots ride the regular
// read snapshot (Snapshot.Live) and are served by /spots?live=1.
//
// Only unmatched pickups feed discovery: pickups at known spots are already
// accounted for, so the live list complements the batch list instead of
// re-deriving it.
type LiveSpotsConfig struct {
	// Enabled turns the tracker on.
	Enabled bool
	// Detector parameterizes the window clustering and the
	// emerging → confirmed → decaying hysteresis; zero fields take
	// core.DefaultLiveDetectorConfig-style defaults.
	Detector core.LiveDetectorConfig
	// RefreshEvery is how many observed pickups may accumulate before the
	// tracker reconciles clusters and republishes (64 when 0). Watermark
	// advances and flush barriers also trigger a refresh, so a quiet feed
	// still decays and drops stale spots on time.
	RefreshEvery int
}

// liveTracker serializes one core.LiveDetector behind a mutex and bridges
// it to the ingest machinery: shard workers feed pickup events in, and
// every refresh that changes the discovered set republishes the read
// snapshot through aggregator.publishLive. The tracker mutex is taken
// before the aggregator mutex, never the other way around.
type liveTracker struct {
	agg   *aggregator
	met   *metrics
	every int

	mu        sync.Mutex
	det       *core.LiveDetector
	since     int             // pickups observed since the last refresh
	published []core.LiveSpot // last list handed to publishLive
	prev      core.LiveStats  // counter values already exported
}

func newLiveTracker(cfg LiveSpotsConfig, agg *aggregator, met *metrics) (*liveTracker, error) {
	det, err := core.NewLiveDetector(cfg.Detector)
	if err != nil {
		return nil, err
	}
	every := cfg.RefreshEvery
	if every <= 0 {
		every = 64
	}
	return &liveTracker{agg: agg, met: met, every: every, det: det}, nil
}

// observe feeds the unmatched pickups of one shard's event batch into the
// detector, refreshing once RefreshEvery have accumulated.
func (t *liveTracker) observe(events []stream.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range events {
		ev := &events[i]
		if ev.Kind != stream.PickupDetected || ev.Spot >= 0 {
			continue
		}
		sub := ev.Pickup.Sub
		t.det.Observe(ev.Pickup.Centroid, sub[len(sub)-1].Time)
		t.since++
	}
	if t.since >= t.every {
		t.refreshLocked()
	}
}

// advance moves the detector clock to the feed time and refreshes — called
// on watermark advances and flush barriers so windows keep draining (and
// decaying spots keep aging out) even when no pickups arrive.
func (t *liveTracker) advance(at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.det.Advance(at)
	t.refreshLocked()
}

// refreshLocked reconciles the window clusters, exports lifecycle counter
// deltas, and republishes the snapshot iff the discovered set changed in a
// way readers can see. Callers hold t.mu.
func (t *liveTracker) refreshLocked() {
	t.since = 0
	spots := t.det.Refresh()
	st := t.det.Stats()
	if t.met != nil {
		t.met.spotEmerging.Add(int64(st.EmergingTotal - t.prev.EmergingTotal))
		t.met.spotConfirmed.Add(int64(st.ConfirmedTotal - t.prev.ConfirmedTotal))
		t.met.spotDecayed.Add(int64(st.DecayedTotal - t.prev.DecayedTotal))
		t.met.spotDropped.Add(int64(st.DroppedTotal - t.prev.DroppedTotal))
	}
	t.prev = st
	if liveChanged(t.published, spots) {
		t.published = spots
		t.agg.publishLive(spots)
	}
}

// stats returns the detector's lifecycle counters and population (the
// GaugeFunc feed).
func (t *liveTracker) stats() core.LiveStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.det.Stats()
}

// liveChanged reports whether two discovered-spot lists differ in anything
// a reader can observe: position, support, zone or lifecycle state. The
// Seen timestamps are bookkeeping for DropAfter and don't gate a republish.
func liveChanged(a, b []core.LiveSpot) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i].Spot != b[i].Spot || a[i].State != b[i].State {
			return true
		}
	}
	return false
}
