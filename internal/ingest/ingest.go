// Package ingest is the network-facing MDT ingestion service: the missing
// spine between the simulator (or a real operator feed), the embedded
// store, the online stream engine and the queued API server. The deployed
// system of §7.1 is fed by a continuous stream from ~15k taxis into a
// PostgreSQL store that the engine reads; this package reproduces that
// shape as a sharded in-process service:
//
//	POST /ingest        JSON lines or binary record frames
//	        │
//	   validate/clean (streaming §6.1.1 rules, per shard)
//	        │  route by taxi-ID hash
//	   ┌────┴────┬─────────┐
//	 shard 0   shard 1 … shard N-1     bounded queues + backpressure
//	   │ WAL      │ WAL      │ WAL     per-shard store.Store, atomic
//	   │ engine   │ engine   │ engine  per-shard stream.Live
//	   └────┬────┴─────────┘
//	     aggregator                    exact cross-shard SlotStats merge
//	        │
//	  GET /spots (queued)  GET /ingest/stats  GET /metrics
//
// Sharding is by taxi ID, so each taxi's trajectory — the unit over which
// PEA, cleaning and the store's time-order invariant all operate — lives
// entirely inside one shard. Per-shard slot closings carry their raw
// accumulators (stream.SlotStats) and the aggregator merges them, so the
// served labels are byte-identical to a single engine that saw every
// record.
//
// Durability is a segmented append-only WAL (format TQST3): each shard
// streams every arriving record raw (pre-clean) into its active segment
// and fsyncs in batches — group commit: one write and one sync cover up to
// SyncEvery records under load, and the log syncs immediately when the
// queue goes idle. A checkpoint seals the active segment with an O(1)
// rename; a background compactor folds small sealed segments so restart
// replay cost stays proportional to the data. On startup the service
// replays each shard's segments in order through a fresh cleaner and
// engine — the exact live code path — so the recovered state is
// byte-identical to the pre-crash state at the last commit, including
// records the cleaner held undecided. A crash loses at most the records
// of the current commit window (bounded by SyncEvery).
//
// Observability: every counter, queue depth, stage latency and drop rate
// is a collector in an obs.Registry (Config.Metrics; private by default).
// The /ingest/stats JSON reads the same collectors the Prometheus /metrics
// scrape renders, so the two views cannot disagree.
package ingest

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"taxiqueue/internal/clean"
	"taxiqueue/internal/core"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/obs"
	"taxiqueue/internal/store"
	"taxiqueue/internal/stream"
)

var (
	// ErrBackpressure is returned by Accept under the Block policy when a
	// shard queue stays full past the deadline.
	ErrBackpressure = errors.New("ingest: shard queue full past deadline")
	// ErrClosed is returned by Accept and the control-plane ops (Flush,
	// FlushUntil, Checkpoint) after Close or Abort.
	ErrClosed = errors.New("ingest: service closed")
)

// Backpressure picks what happens when a shard's bounded queue is full.
type Backpressure uint8

const (
	// Block makes Accept wait for queue space, up to Config.BlockTimeout;
	// past the deadline Accept stops and reports ErrBackpressure (HTTP
	// 429). No accepted record is ever discarded.
	Block Backpressure = iota
	// DropOldest makes Accept never block: the oldest queued record of the
	// full shard is discarded (counted in stats) to admit the new one.
	// Freshness over completeness — the right policy for live dashboards.
	DropOldest
)

// String implements fmt.Stringer.
func (b Backpressure) String() string {
	if b == DropOldest {
		return "drop-oldest"
	}
	return "block"
}

// Config parameterizes the service.
type Config struct {
	// Stream configures the per-shard online engines: spots, thresholds
	// and slot grid from the most recent batch run (§7.1). Required, and
	// Stream.Grid must be set.
	Stream stream.Config
	// Clean holds the §6.1.1 validation rules applied to every arriving
	// record before it is accepted. Required (ValidFrame must be set).
	Clean clean.Config
	// Shards is the worker count; records route by taxi-ID hash. 4 when 0.
	Shards int
	// QueueDepth bounds each shard's record queue; 1024 when 0.
	QueueDepth int
	// Policy is the full-queue behavior; Block by default.
	Policy Backpressure
	// BlockTimeout bounds how long one Accept call may wait under Block
	// before reporting backpressure; 2s when 0.
	BlockTimeout time.Duration
	// WALDir, when non-empty, enables durability: shard i appends the raw
	// records it accepted to segment files under WALDir/shard-NNN/ and
	// replays them on startup. A legacy WALDir/shard-NNN.tqs single-file
	// checkpoint is migrated into the segmented format at startup.
	WALDir string
	// CheckpointEvery is the number of logged records between automatic
	// WAL checkpoints (sealing the active segment); 4096 when 0.
	CheckpointEvery int
	// SyncEvery is the group-commit interval: how many logged records may
	// accumulate before the WAL fsyncs (it also syncs whenever a shard's
	// queue goes idle, so a trickle feed is durable almost immediately).
	// The crash-loss window, in records. 256 when 0.
	SyncEvery int
	// SegmentBytes rotates a shard's active WAL segment when it reaches
	// this size; 4 MiB when 0.
	SegmentBytes int64
	// FS is the filesystem the WAL checkpoints go through; the real
	// filesystem when nil. The chaos harness injects disk faults here.
	FS store.FS
	// Metrics is the registry the service's collectors live in; a private
	// registry when nil. Hand it obs.Default (as queued does) to surface
	// the series on a process-wide /metrics endpoint.
	Metrics *obs.Registry

	// History, when set, receives every newly-final (spot, slot) context:
	// each cross-shard watermark advance appends the snapshot's new final
	// slots as HistoryDay's cells, and Flush/FlushUntil/Close double as
	// history durability barriers. Appends are idempotent on the history
	// side, so WAL replay and racing shards cannot double-record a slot.
	History HistoryAppender
	// HistoryDay is the day index the live feed's slots are recorded
	// under (0 for a single-day feed).
	HistoryDay int

	// LiveSpots, when enabled, runs online queue-spot discovery over the
	// pickups that land outside every batch spot: a sliding-window
	// incremental DBSCAN whose confirmed/emerging/decaying spots ride the
	// read snapshot (Snapshot.Live) and /spots?live=1.
	LiveSpots LiveSpotsConfig

	// testStall, when set, runs at the top of every shard worker
	// iteration; tests use it to wedge a shard and exercise backpressure.
	// A stalled worker cannot handle control ops either, so tests must
	// release the stall before Flush/Close/Abort.
	testStall func(shard int)
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.BlockTimeout == 0 {
		c.BlockTimeout = 2 * time.Second
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 4096
	}
	if c.SyncEvery == 0 {
		c.SyncEvery = 256
	}
	if c.Stream.Amplify.Factor == 0 {
		c.Stream.Amplify = core.NoAmplification
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.FS == nil {
		c.FS = store.OS
	}
	return c
}

// HistoryAppender is the sink for finalized slot contexts (implemented by
// history.Store; an interface here so ingest does not depend on the
// storage layout). AppendSlots must be idempotent per (day, slot) and
// safe for concurrent use; Flush is the durability barrier.
type HistoryAppender interface {
	AppendSlots(day, lo, hi int, at func(spot, slot int) (core.SlotFeatures, core.QueueType)) error
	Flush() error
}

// TeeHistory fans every append and flush out to several sinks — the way
// the history store and the forecast learner both hang off one Config
// seam. Nil sinks are skipped; the first error wins but every sink still
// sees every call (a failing history disk must not starve the forecaster,
// and vice versa). Nil or all-nil input returns nil, usable directly as
// Config.History.
func TeeHistory(sinks ...HistoryAppender) HistoryAppender {
	kept := make([]HistoryAppender, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return teeHistory(kept)
}

type teeHistory []HistoryAppender

func (t teeHistory) AppendSlots(day, lo, hi int, at func(spot, slot int) (core.SlotFeatures, core.QueueType)) error {
	var first error
	for _, s := range t {
		if err := s.AppendSlots(day, lo, hi, at); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (t teeHistory) Flush() error {
	var first error
	for _, s := range t {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Service is the sharded ingestion service. All methods are safe for
// concurrent use.
type Service struct {
	cfg    Config
	grid   core.SlotGrid
	shards []*shard
	agg    *aggregator
	met    *metrics
	live   *liveTracker // nil unless Config.LiveSpots.Enabled

	// estVersion counts provisional (current-slot) publications across all
	// shards; the serve-side estimate cache keys on it.
	estVersion atomic.Uint64

	// closed gates Accept (lock-free fast path); ctlMu + stopped gate the
	// control plane: a control op holds the read side while its workers
	// are guaranteed alive, Close/Abort take the write side to stop them.
	// Without this gate, a Flush racing (or following) Close would post to
	// workers that already exited and block forever on the reply.
	closed  atomic.Bool
	ctlMu   sync.RWMutex
	stopped bool
}

// NewService validates cfg, replays any existing WAL files, and starts the
// shard workers.
func NewService(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.Stream.Grid.Slots == 0 {
		return nil, errors.New("ingest: Stream.Grid must be set")
	}
	if len(cfg.Stream.Spots) != len(cfg.Stream.Thresholds) {
		return nil, fmt.Errorf("ingest: %d spots but %d thresholds",
			len(cfg.Stream.Spots), len(cfg.Stream.Thresholds))
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("ingest: bad shard count %d", cfg.Shards)
	}
	met := newMetrics(cfg.Metrics, cfg.Shards)
	s := &Service{
		cfg:  cfg,
		grid: cfg.Stream.Grid,
		met:  met,
		agg: &aggregator{
			grid:  cfg.Stream.Grid,
			ths:   cfg.Stream.Thresholds,
			amp:   cfg.Stream.Amplify,
			met:   met,
			cells: make(map[cellKey]*cell),
			empty: make([]emptyCtx, len(cfg.Stream.Spots)),
		},
	}
	if cfg.LiveSpots.Enabled {
		// Built before the shards: WAL replay streams through the same
		// emit hook as the live feed, so replayed pickups re-seed the
		// discovery window too.
		lt, err := newLiveTracker(cfg.LiveSpots, s.agg, met)
		if err != nil {
			return nil, fmt.Errorf("ingest: live spots: %w", err)
		}
		s.live = lt
	}
	if cfg.WALDir != "" {
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("ingest: wal dir: %w", err)
		}
		// A crash between a checkpoint's temp-write and its rename leaves a
		// stale temp file; the committed copies are unaffected. Sweep them
		// so they never accumulate or get mistaken for checkpoints.
		if removed, err := store.RemoveTemps(cfg.WALDir); err != nil {
			return nil, fmt.Errorf("ingest: wal temp sweep: %w", err)
		} else if len(removed) > 0 {
			log.Printf("ingest: swept %d stale checkpoint temp file(s) from %s", len(removed), cfg.WALDir)
		}
	}
	// Publish the epoch-1 snapshot before the shards exist so a replayed
	// WAL (whose ingest path republishes on watermark advances) never sees
	// a nil pointer; the replay then advances it to cover every slot it
	// finalized.
	s.agg.init(0)
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh, err := newShard(s, i)
		if err != nil {
			return nil, err
		}
		s.shards[i] = sh
	}
	s.agg.advance(s.minClosed())
	// A replayed WAL finalized slots with only some shards alive (each
	// shard replays before the next is built), so the per-shard emit hook
	// saw minClosed == 0 throughout; record the post-replay watermark now.
	s.appendHistory()
	cfg.Metrics.GaugeFunc("ingest_aggregator_cells",
		"Live (spot, slot) cells retained by the aggregator.",
		func() float64 { return float64(s.agg.cellCount()) })
	cfg.Metrics.GaugeFunc("ingest_snapshot_age_seconds",
		"Seconds since the current read snapshot was published.",
		func() float64 { return time.Since(s.Snapshot().At).Seconds() })
	if s.live != nil {
		cfg.Metrics.GaugeFunc("spot_live_tracked",
			"Live-discovered spots currently tracked (any lifecycle state).",
			func() float64 { return float64(s.live.stats().Tracked) })
		cfg.Metrics.GaugeFunc("spot_live_window_points",
			"Pickups alive in the live discovery window.",
			func() float64 { return float64(s.live.stats().WindowPoints) })
	}
	for i, sh := range s.shards {
		q := &sh.qLen
		cfg.Metrics.GaugeFunc("ingest_queue_depth", "Records waiting in the shard queue.",
			func() float64 { return float64(q.Load()) },
			obs.Label{Name: "shard", Value: fmt.Sprint(i)})
	}
	for _, sh := range s.shards {
		go sh.run()
	}
	return s, nil
}

// Registry returns the registry holding the service's collectors (the one
// from Config.Metrics, or the private default). Mount it as /metrics.
func (s *Service) Registry() *obs.Registry { return s.cfg.Metrics }

// shardIndex routes a taxi ID to its shard (FNV-1a; allocation free).
func shardIndex(id string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// Accept routes records to their shard queues under the configured
// backpressure policy and reports how many entered a queue. The fan-out is
// batched: one pass groups the request's records into per-shard slabs
// (copied, so the caller may reuse recs) and each slab travels as a single
// channel send — one clock read and one queue-wait observation cover the
// whole request instead of every record. Records must be time-ordered per
// taxi.
//
// Under Block a deadline miss stops the batch early with ErrBackpressure
// and n is the smallest index not yet handed to a shard: the records of
// recs[:n] are all delivered, and a record past n that slipped into an
// earlier slab is absorbed by the per-taxi dedup window when the client
// re-sends from n — so retry-from-n is exact, not just safe. With one
// shard (or one taxi per request) n is exactly the delivered prefix.
func (s *Service) Accept(recs []mdt.Record) (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if len(recs) == 0 {
		return 0, nil
	}
	at := time.Now()
	nsh := len(s.shards)
	chunk := s.cfg.QueueDepth
	if chunk > slabMax {
		chunk = slabMax
	}
	var deadline *time.Timer
	if s.cfg.Policy == Block {
		deadline = time.NewTimer(s.cfg.BlockTimeout)
		defer deadline.Stop()
	}
	cur := make([]*recSlab, nsh)  // open (unsent) slab per shard
	first := make([]int, nsh)     // recs index of cur's first record
	flush := func(si int) error { // send shard si's open slab
		b := recBatch{slab: cur[si], at: at}
		if s.cfg.Policy == DropOldest {
			s.shards[si].deliverDrop(b)
		} else if err := s.shards[si].deliverBlock(b, deadline); err != nil {
			return err
		}
		cur[si] = nil
		return nil
	}
	fail := func(next int) (int, error) { // smallest undelivered index
		n := next
		for si, slab := range cur {
			if slab != nil {
				if first[si] < n {
					n = first[si]
				}
				putSlab(slab)
			}
		}
		return n, ErrBackpressure
	}
	for i := range recs {
		si := shardIndex(recs[i].TaxiID, nsh)
		if cur[si] == nil {
			cur[si] = getSlab()
			first[si] = i
		}
		cur[si].recs = append(cur[si].recs, recs[i])
		if len(cur[si].recs) >= chunk {
			if err := flush(si); err != nil {
				return fail(i + 1)
			}
		}
	}
	for si := range cur {
		if cur[si] != nil {
			if err := flush(si); err != nil {
				return fail(len(recs))
			}
		}
	}
	return len(recs), nil
}

// control broadcasts an op to every live shard and waits for all replies;
// the first shard error wins. The read lock pins the workers alive for the
// whole exchange: after Close or Abort it reports ErrClosed instead of
// posting to exited workers (which used to fill the ctl buffer and hang
// forever — exposed over HTTP as a stuck /ingest/flush).
func (s *Service) control(op ctlOp, at time.Time) error {
	s.ctlMu.RLock()
	defer s.ctlMu.RUnlock()
	if s.stopped {
		return ErrClosed
	}
	return s.broadcast(op, at)
}

// broadcast fans op to every shard and collects the replies. Callers must
// hold ctlMu (either side) with stopped false, or be the op that is
// setting stopped.
func (s *Service) broadcast(op ctlOp, at time.Time) error {
	replies := make([]chan error, len(s.shards))
	for i, sh := range s.shards {
		replies[i] = make(chan error, 1)
		sh.ctl <- ctlMsg{op: op, at: at, reply: replies[i]}
	}
	var first error
	for _, ch := range replies {
		if err := <-ch; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush drains every shard, releases the cleaners' held records, closes
// every open slot, and checkpoints — the whole grid becomes final. Late
// records are still counted afterwards but can no longer change a label.
// For a paused feed the op runs after the backlog drains (the "end of day"
// switch, and what graceful Close uses); under sustained load it runs
// after at most one queue depth of records. Returns ErrClosed after
// Close/Abort.
func (s *Service) Flush() error {
	if err := s.control(opFlush, time.Time{}); err != nil {
		return err
	}
	if s.live != nil {
		// The feed is over: push the discovery clock to the grid's end so
		// window points expire and decaying spots age out.
		s.live.advance(s.grid.Start.Add(time.Duration(s.grid.Slots) * s.grid.SlotLen))
	}
	return s.flushHistory()
}

// FlushUntil finalizes every slot the feed can no longer touch given its
// clock reached now, without closing the current slot — the timer-driven
// variant for feeds that pause mid-slot. Returns ErrClosed after
// Close/Abort.
func (s *Service) FlushUntil(now time.Time) error {
	if err := s.control(opFlushUntil, now); err != nil {
		return err
	}
	if s.live != nil {
		s.live.advance(now)
	}
	return s.flushHistory()
}

// drainUntil is FlushUntil minus the durability barrier: the same slot
// finalization and queue round-trip, but no synchronous WAL commit.
// Benchmarks use it to settle the shards between timed feed chunks without
// charging the per-record numbers a per-flush fsync at a rate no real
// deployment would see (a production flush is end-of-feed, not per-11k
// records). Everything durable-cost-related that is per-record — encode,
// buffered write, pipelined group commit — still runs on the clock.
func (s *Service) drainUntil(now time.Time) error { return s.control(opDrainUntil, now) }

// Checkpoint forces an immediate WAL checkpoint on every shard: commit
// everything logged and seal the active segment (an O(1) rename). Returns
// ErrClosed after Close/Abort.
func (s *Service) Checkpoint() error { return s.control(opCheckpoint, time.Time{}) }

// Close gracefully shuts down: stops accepting, drains the queues, flushes
// cleaners and engines, takes a final checkpoint and stops the workers.
// Close is idempotent; concurrent control ops either finish first (the
// write lock waits for them) or observe ErrClosed.
func (s *Service) Close() error {
	s.closed.Store(true)
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if s.stopped {
		return nil
	}
	s.stopped = true
	err := s.broadcast(opStop, time.Time{})
	if herr := s.flushHistory(); err == nil {
		err = herr
	}
	return err
}

// Abort stops the workers without flushing, draining or checkpointing —
// the crash-test switch: on-disk state stays at the last checkpoint.
func (s *Service) Abort() {
	s.closed.Store(true)
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	_ = s.broadcast(opAbort, time.Time{})
}

// Health reports whether the service can still do its job: nil while the
// workers are alive and, with durability on, the WAL directory is
// writable. It is the live half of queued's /healthz readiness check.
func (s *Service) Health() error {
	s.ctlMu.RLock()
	stopped := s.stopped
	s.ctlMu.RUnlock()
	if stopped || s.closed.Load() {
		return ErrClosed
	}
	if s.cfg.WALDir != "" {
		f, err := os.CreateTemp(s.cfg.WALDir, ".healthz-*")
		if err != nil {
			return fmt.Errorf("ingest: wal dir not writable: %w", err)
		}
		name := f.Name()
		f.Close()
		os.Remove(name)
	}
	return nil
}

// appendHistory records the current snapshot's final slots into the
// configured history sink. Called on every cross-shard watermark advance
// (from shard emit paths, possibly concurrently) and after WAL replay;
// the history side's per-day watermark makes overlapping calls no-ops, so
// ordering between racing shards does not matter. Append errors are
// logged, not propagated — a failing history disk must not stall ingest
// (the sink rotates/recovers on its own and the flush barrier surfaces
// persistent failure).
func (s *Service) appendHistory() {
	h := s.cfg.History
	if h == nil {
		return
	}
	snap := s.Snapshot()
	if snap.FinalBelow == 0 {
		return
	}
	err := h.AppendSlots(s.cfg.HistoryDay, 0, snap.FinalBelow,
		func(spot, slot int) (core.SlotFeatures, core.QueueType) {
			f, l, _ := snap.Context(spot, slot)
			return f, l
		})
	if err != nil {
		log.Printf("ingest: history append: %v", err)
	}
}

// flushHistory is the history half of the Flush durability barrier.
func (s *Service) flushHistory() error {
	if s.cfg.History == nil {
		return nil
	}
	s.appendHistory()
	return s.cfg.History.Flush()
}

// minClosed returns the cross-shard finality watermark: every slot below it
// is final in every shard, so its merged context can never change.
func (s *Service) minClosed() int {
	min := int(s.met.shards[0].watermark.Value())
	for i := range s.met.shards[1:] {
		if w := int(s.met.shards[i+1].watermark.Value()); w < min {
			min = w
		}
	}
	return min
}

// Snapshot returns the current RCU-published read view: one atomic pointer
// load, never nil, immutable. Handlers that make several related reads
// (every spot of one slot, say) should load it once and read through it so
// all answers come from one consistent epoch.
func (s *Service) Snapshot() *Snapshot { return s.agg.pub.Load() }

// LiveSpots returns the online-discovered queue spots current at the
// published snapshot (nil when live discovery is disabled). Lock-free; the
// slice is immutable.
func (s *Service) LiveSpots() []core.LiveSpot { return s.Snapshot().Live() }

// Context returns the merged features and label for (spot, slot); ok is
// false while any shard could still contribute to the slot (or the indexes
// are out of range). A final slot with no activity classifies like an
// empty batch slot. Lock-free: one snapshot pointer load plus an array
// read.
func (s *Service) Context(spot, slot int) (core.SlotFeatures, core.QueueType, bool) {
	return s.Snapshot().Context(spot, slot)
}

// Label is Context without the features.
func (s *Service) Label(spot, slot int) (core.QueueType, bool) {
	_, l, ok := s.Context(spot, slot)
	return l, ok
}

// ContextLocked is the pre-snapshot read path — watermark gate plus a
// mutex-guarded lazy cell evaluation — retained as the reference
// implementation the equivalence tests and the BenchmarkServe* baselines
// compare the lock-free path against. Not for production handlers.
func (s *Service) ContextLocked(spot, slot int) (core.SlotFeatures, core.QueueType, bool) {
	if spot < 0 || spot >= len(s.cfg.Stream.Spots) || slot < 0 || slot >= s.grid.Slots {
		return core.SlotFeatures{}, core.Unidentified, false
	}
	if slot >= s.minClosed() {
		return core.SlotFeatures{}, core.Unidentified, false
	}
	f, l := s.agg.context(spot, slot)
	return f, l, true
}

// Estimate is the zero-delay provisional view of the slot the feed's clock
// is currently inside, merged exactly across the per-shard provisional
// snapshots (SlotStats merging is commutative and exact). Version is the
// publication counter the serve-side cache keys on; Slot is -1 when no
// shard has a clock inside the grid. Labels[i] is spot i's extrapolated
// context and OK[i] reports whether there was enough signal (≥20% of the
// slot elapsed and any activity). Lock-free: per-shard atomic pointer
// loads, merge work proportional to the active spots of one slot.
type Estimate struct {
	Version uint64
	AsOf    time.Time
	Slot    int
	Labels  []core.QueueType
	OK      []bool
}

// Estimate builds the current provisional estimate. The version is read
// before the shard snapshots, so a publication racing the build at worst
// causes the next request to rebuild — never a stale cache past its epoch.
func (s *Service) Estimate() Estimate {
	est := Estimate{
		Version: s.estVersion.Load(),
		Slot:    -1,
		Labels:  make([]core.QueueType, len(s.cfg.Stream.Spots)),
		OK:      make([]bool, len(s.cfg.Stream.Spots)),
	}
	for i := range est.Labels {
		est.Labels[i] = core.Unidentified
	}
	provs := make([]*stream.Provisional, 0, len(s.shards))
	for _, sh := range s.shards {
		if p := sh.prov.Load(); p != nil {
			provs = append(provs, p)
			if p.Clock.After(est.AsOf) {
				est.AsOf = p.Clock
				est.Slot = p.Slot
			}
		}
	}
	if est.Slot < 0 {
		return est
	}
	for spot := range est.Labels {
		var merged stream.SlotStats
		for _, p := range provs {
			if p.Slot == est.Slot && p.Stats != nil && p.Stats[spot] != nil {
				merged.Merge(p.Stats[spot])
			}
		}
		est.Labels[spot], est.OK[spot] = stream.EstimateFromStats(
			&merged, s.grid, est.Slot, est.AsOf, s.cfg.Stream.Amplify, s.cfg.Stream.Thresholds[spot])
	}
	return est
}

// EstimateVersion returns the provisional publication counter without
// building an estimate — the cache's cheap freshness probe.
func (s *Service) EstimateVersion() uint64 { return s.estVersion.Load() }

// ShardStats is one shard's counters.
type ShardStats struct {
	Shard       int   `json:"shard"`
	Accepted    int64 `json:"accepted"`       // survived cleaning, in the engine
	Rejected    int64 `json:"rejected"`       // removed by validation/cleaning/ordering
	Dropped     int64 `json:"dropped"`        // discarded by DropOldest backpressure
	Replayed    int64 `json:"replayed"`       // raw WAL records replayed at startup
	Deduped     int64 `json:"resend_deduped"` // re-sent records dropped pre-WAL
	QueueDepth  int   `json:"queue_depth"`    // records waiting right now
	ClosedBelow int   `json:"closed_below"`   // this shard's slot finality watermark
	WALPending  int64 `json:"wal_pending"`    // records appended since the last fsync (what a crash would lose)
	WALSyncs    int64 `json:"wal_syncs"`      // group commits (one fsync covering a batch)
	WALSegments int64 `json:"wal_segments"`   // sealed segment files on disk
	Compactions int64 `json:"wal_compactions"`
	Checkpoints int64 `json:"checkpoints"`
	CkptErrors  int64 `json:"checkpoint_errors"` // checkpoint/commit attempts that failed
	Truncations int64 `json:"wal_truncations"`   // startups that cut a torn WAL tail
}

// Stats is the /ingest/stats payload.
type Stats struct {
	Policy     string       `json:"policy"`
	Shards     []ShardStats `json:"shards"`
	Accepted   int64        `json:"accepted"`
	Rejected   int64        `json:"rejected"`
	Dropped    int64        `json:"dropped"`
	Replayed   int64        `json:"replayed"`
	BadRecords int64        `json:"bad_records"` // wire payloads that failed to decode
	FinalBelow int          `json:"final_below"` // min shard watermark: slots below are served final
}

// Stats snapshots every counter — the same registry collectors /metrics
// renders, so the JSON and Prometheus views always agree.
func (s *Service) Stats() Stats {
	out := Stats{
		Policy:     s.cfg.Policy.String(),
		Shards:     make([]ShardStats, len(s.shards)),
		BadRecords: s.met.badRecords.Value(),
		FinalBelow: s.minClosed(),
	}
	for i, sh := range s.shards {
		sm := &s.met.shards[i]
		st := ShardStats{
			Shard:       i,
			Accepted:    sm.accepted.Value(),
			Rejected:    sm.rejected.Value(),
			Dropped:     sm.dropped.Value(),
			Replayed:    sm.replayed.Value(),
			Deduped:     sm.deduped.Value(),
			QueueDepth:  int(sh.qLen.Load()),
			ClosedBelow: int(sm.watermark.Value()),
			WALPending:  sm.walPending.Value(),
			WALSyncs:    sm.walSyncs.Value(),
			WALSegments: sm.walSegments.Value(),
			Compactions: sm.walCompactions.Value(),
			Checkpoints: sm.checkpoints.Value(),
			CkptErrors:  sm.ckptErrors.Value(),
			Truncations: sm.walTruncations.Value(),
		}
		out.Shards[i] = st
		out.Accepted += st.Accepted
		out.Rejected += st.Rejected
		out.Dropped += st.Dropped
		out.Replayed += st.Replayed
	}
	return out
}

// WALPath names shard i's active WAL segment under dir — exported so tools
// and the chaos harness can aim at the one file a crash may legitimately
// tear. Sealed segments live next to it as seg-<lo>-<hi>.seg files.
func WALPath(dir string, i int) string {
	return filepath.Join(shardWALDir(dir, i), "active.seg")
}
