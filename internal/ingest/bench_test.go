package ingest

import (
	"fmt"
	"testing"
)

// benchFeed pushes b.N records through svc, feeding the fixture day and —
// because the feed must stay time-ordered — swapping in a fresh service
// (off the clock) whenever the day wraps. One op is one record, so
// records/sec = b.N/elapsed.
func benchFeed(b *testing.B, d *day, cfg Config) {
	svc, err := NewService(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := len(d.cleaned)
		if n > b.N-done {
			n = b.N - done
		}
		feed(b, svc, d.cleaned[:n])
		done += n
		// Barrier: drain the queues so the timer covers processing,
		// not just enqueueing (FlushUntil at grid start closes nothing).
		if err := svc.FlushUntil(d.grid.Start); err != nil {
			b.Fatal(err)
		}
		if done < b.N {
			b.StopTimer()
			if err := svc.Close(); err != nil {
				b.Fatal(err)
			}
			if cfg.WALDir != "" {
				cfg.WALDir = b.TempDir() // don't replay the previous day
			}
			if svc, err = NewService(cfg); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	if err := svc.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIngest measures end-to-end throughput of the full accept →
// clean → engine path (durability off) at several shard counts.
func BenchmarkIngest(b *testing.B) {
	d := getDay(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := d.serviceConfig()
			cfg.Shards = shards
			cfg.QueueDepth = 4096
			benchFeed(b, d, cfg)
		})
	}
}

// BenchmarkIngestDurable is the same path with the WAL enabled, isolating
// the durability overhead.
func BenchmarkIngestDurable(b *testing.B) {
	d := getDay(b)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := d.serviceConfig()
			cfg.Shards = shards
			cfg.QueueDepth = 4096
			cfg.WALDir = b.TempDir()
			benchFeed(b, d, cfg)
		})
	}
}
