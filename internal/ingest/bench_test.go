package ingest

import (
	"fmt"
	"testing"
)

// benchFeed pushes b.N records through svc, feeding the fixture day and —
// because the feed must stay time-ordered — swapping in a fresh service
// (off the clock) whenever the day wraps. One op is one record, so
// records/sec = b.N/elapsed.
func benchFeed(b *testing.B, d *day, cfg Config) {
	svc, err := NewService(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := len(d.cleaned)
		if n > b.N-done {
			n = b.N - done
		}
		feed(b, svc, d.cleaned[:n])
		done += n
		// Barrier: drain the queues so the timer covers processing, not
		// just enqueueing (a flush at grid start closes nothing). The
		// non-committing drain keeps the public FlushUntil's per-flush
		// fsync off the per-record clock — see drainUntil.
		if err := svc.drainUntil(d.grid.Start); err != nil {
			b.Fatal(err)
		}
		if done < b.N {
			b.StopTimer()
			if err := svc.Close(); err != nil {
				b.Fatal(err)
			}
			if cfg.WALDir != "" {
				cfg.WALDir = b.TempDir() // don't replay the previous day
			}
			if svc, err = NewService(cfg); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	if err := svc.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIngest measures end-to-end throughput of the full accept →
// clean → engine path (durability off) at several shard counts.
func BenchmarkIngest(b *testing.B) {
	d := getDay(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := d.serviceConfig()
			cfg.Shards = shards
			cfg.QueueDepth = 4096
			benchFeed(b, d, cfg)
		})
	}
}

// BenchmarkIngestDurable is the same path with the WAL enabled, isolating
// the durability overhead.
func BenchmarkIngestDurable(b *testing.B) {
	d := getDay(b)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := d.serviceConfig()
			cfg.Shards = shards
			cfg.QueueDepth = 4096
			cfg.WALDir = b.TempDir()
			benchFeed(b, d, cfg)
		})
	}
}

// BenchmarkIngestDurableSync sweeps the group-commit batch size: SyncEvery
// is the crash-loss window in records, so this chart is the price of each
// durability setting. sync=1 is fsync-per-record — the old per-checkpoint
// behavior's worst case — and the default (256) should sit within a few
// percent of the non-durable path.
func BenchmarkIngestDurableSync(b *testing.B) {
	d := getDay(b)
	for _, sync := range []int{1, 16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("sync=%d", sync), func(b *testing.B) {
			cfg := d.serviceConfig()
			cfg.Shards = 1
			cfg.QueueDepth = 4096
			cfg.WALDir = b.TempDir()
			cfg.SyncEvery = sync
			benchFeed(b, d, cfg)
		})
	}
}
