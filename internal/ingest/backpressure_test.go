package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/stream"
)

// tinyConfig is a minimal single-shard service with a controllable stall.
func tinyConfig(stall chan struct{}, policy Backpressure) Config {
	grid := core.DaySlots(time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC))
	return Config{
		Stream: stream.Config{
			Spots:      []core.QueueSpot{{Pos: geo.Point{Lat: 1.3, Lon: 103.8}}},
			Thresholds: []core.Thresholds{{}},
			Grid:       grid,
		},
		Clean:        clean.Config{ValidFrame: citymap.Island},
		Shards:       1,
		QueueDepth:   8,
		Policy:       policy,
		BlockTimeout: 150 * time.Millisecond,
		testStall:    func(int) { <-stall },
	}
}

func burst(n int) []mdt.Record {
	base := time.Date(2026, 1, 5, 6, 0, 0, 0, time.UTC)
	recs := make([]mdt.Record, n)
	for i := range recs {
		recs[i] = mdt.Record{
			Time: base.Add(time.Duration(i) * time.Second), TaxiID: "SH0001A",
			Pos: geo.Point{Lat: 1.3, Lon: 103.8}, Speed: 30, State: mdt.Free,
		}
	}
	return recs
}

// TestDropOldestNeverBlocks: with the worker wedged and the queue full,
// Accept must return immediately, recording the overflow as drops.
func TestDropOldestNeverBlocks(t *testing.T) {
	stall := make(chan struct{})
	svc, err := NewService(tinyConfig(stall, DropOldest))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	n, err := svc.Accept(burst(500))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("accepted %d of 500", n)
	}
	if elapsed > time.Second {
		t.Fatalf("DropOldest accept took %v", elapsed)
	}
	st := svc.Stats()
	if st.Dropped < 490 {
		t.Fatalf("dropped %d, want ~492 (500 - queue depth)", st.Dropped)
	}
	close(stall)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// The survivors (and only they) were processed.
	st = svc.Stats()
	if st.Accepted+st.Dropped != 500 {
		t.Fatalf("accepted %d + dropped %d != 500", st.Accepted, st.Dropped)
	}
}

// TestBlockReturns429: with the worker wedged, the HTTP handler must answer
// 429 once the deadline passes, reporting the accepted prefix so the
// client can retry the rest.
func TestBlockReturns429(t *testing.T) {
	stall := make(chan struct{})
	cfg := tinyConfig(stall, Block)
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := EncodeJSONLines(&body, burst(100)); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/ingest", &body)
	req.Header.Set("Content-Type", ContentTypeJSONLines)
	w := httptest.NewRecorder()
	start := time.Now()
	svc.HandleIngest(w, req)
	if w.Code != 429 {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if e := time.Since(start); e < cfg.BlockTimeout {
		t.Fatalf("429 before the %v deadline (%v)", cfg.BlockTimeout, e)
	}
	var resp struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted >= 100 || resp.Error == "" {
		t.Fatalf("response %+v", resp)
	}
	if st := svc.Stats(); st.Dropped != 0 {
		t.Fatalf("Block policy dropped %d records", st.Dropped)
	}
	close(stall)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryFrames: the binary framing round-trips through the handler,
// and a torn frame rejects the batch with 400.
func TestBinaryFrames(t *testing.T) {
	stall := make(chan struct{})
	close(stall) // no stall
	svc, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	frames := EncodeBinary(nil, burst(50))
	req := httptest.NewRequest("POST", "/ingest", bytes.NewReader(frames))
	req.Header.Set("Content-Type", ContentTypeBinary)
	w := httptest.NewRecorder()
	svc.HandleIngest(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp ingestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 50 {
		t.Fatalf("accepted %d of 50", resp.Accepted)
	}

	torn := frames[:len(frames)-3]
	req = httptest.NewRequest("POST", "/ingest", bytes.NewReader(torn))
	req.Header.Set("Content-Type", ContentTypeBinary)
	w = httptest.NewRecorder()
	svc.HandleIngest(w, req)
	if w.Code != 400 {
		t.Fatalf("torn frame: status %d, want 400", w.Code)
	}
	if st := svc.Stats(); st.BadRecords == 0 {
		t.Fatal("torn frame not counted")
	}
}

// TestConcurrentAcceptRacingClose: Accept calls racing a concurrent Close
// or Abort must return promptly with nil, ErrClosed or ErrBackpressure —
// never hang, never panic, under either backpressure policy.
func TestConcurrentAcceptRacingClose(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy Backpressure
		abort  bool
	}{
		{"block-close", Block, false},
		{"block-abort", Block, true},
		{"drop-close", DropOldest, false},
		{"drop-abort", DropOldest, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stall := make(chan struct{})
			close(stall)
			svc, err := NewService(tinyConfig(stall, tc.policy))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			start := make(chan struct{})
			fail := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					for i := 0; i < 30; i++ {
						_, err := svc.Accept(burst(20))
						if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrBackpressure) {
							fail <- err
						}
					}
				}()
			}
			close(start)
			time.Sleep(time.Millisecond)
			if tc.abort {
				svc.Abort()
			} else if err := svc.Close(); err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(20 * time.Second):
				t.Fatal("Accept goroutines hung racing shutdown")
			}
			close(fail)
			for err := range fail {
				t.Fatalf("unexpected Accept error: %v", err)
			}
		})
	}
}

// TestStatsConsistentUnderLoad: Stats() snapshots taken while a producer
// is feeding must be monotone (counters never go backwards), and once the
// feed stops and flushes, every fed record is accounted for as accepted or
// rejected.
func TestStatsConsistentUnderLoad(t *testing.T) {
	stall := make(chan struct{})
	close(stall)
	svc, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var fed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := time.Date(2026, 1, 5, 6, 0, 0, 0, time.UTC)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			recs := burst(20)
			for j := range recs {
				recs[j].Time = base.Add(time.Duration(i*20+j) * time.Second)
			}
			n, err := svc.Accept(recs)
			fed.Add(int64(n))
			if err != nil {
				return
			}
		}
	}()
	var last Stats
	for k := 0; k < 300; k++ {
		st := svc.Stats()
		if st.Accepted < last.Accepted || st.Rejected < last.Rejected ||
			st.Dropped < last.Dropped || st.BadRecords < last.BadRecords {
			t.Fatalf("stats went backwards: %+v after %+v", st, last)
		}
		last = st
	}
	close(stop)
	wg.Wait()
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if got := st.Accepted + st.Rejected; got != fed.Load() {
		t.Fatalf("accepted %d + rejected %d = %d, fed %d records",
			st.Accepted, st.Rejected, got, fed.Load())
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJSONLinesSkipsBadLines: malformed JSON lines are counted and
// skipped; the good records still flow.
func TestJSONLinesSkipsBadLines(t *testing.T) {
	stall := make(chan struct{})
	close(stall)
	svc, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var body bytes.Buffer
	if err := EncodeJSONLines(&body, burst(10)); err != nil {
		t.Fatal(err)
	}
	body.WriteString("{not json}\n")
	body.WriteString(`{"time":"bogus","taxi":"X","lat":1,"lon":103,"speed":1,"state":"FREE"}` + "\n")
	req := httptest.NewRequest("POST", "/ingest", &body)
	w := httptest.NewRecorder()
	svc.HandleIngest(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var resp ingestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 10 || resp.Bad != 2 {
		t.Fatalf("accepted %d bad %d, want 10/2", resp.Accepted, resp.Bad)
	}
}
