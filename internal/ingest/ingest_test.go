package ingest

import (
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/clean"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/sim"
	"taxiqueue/internal/stream"
)

// day is the shared fixture: one small simulated day, batch-analyzed for
// spots and thresholds exactly like the deployed system's nightly run.
type day struct {
	raw     []mdt.Record // pre-clean, as a live feed would arrive
	cleaned []mdt.Record
	result  *core.Result
	grid    core.SlotGrid
	scfg    stream.Config
}

var cachedDay *day

func getDay(t testing.TB) *day {
	t.Helper()
	if cachedDay != nil {
		return cachedDay
	}
	out := sim.Run(sim.Config{Seed: 777, City: citymap.Generate(777, 0.1), InjectFaults: true})
	cleaned, _ := clean.Clean(out.Records, clean.Config{ValidFrame: citymap.Island})
	cfg := core.DefaultEngineConfig()
	cfg.Detector.Cluster = cluster.Params{EpsMeters: 15, MinPoints: 25}
	cfg.Grid = core.DaySlots(out.Config.Start)
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Analyze(cleaned)
	if err != nil {
		t.Fatal(err)
	}
	spots := make([]core.QueueSpot, len(res.Spots))
	ths := make([]core.Thresholds, len(res.Spots))
	for i := range res.Spots {
		spots[i] = res.Spots[i].Spot
		ths[i] = res.Spots[i].Thresholds
	}
	cachedDay = &day{
		raw: out.Records, cleaned: cleaned, result: res, grid: cfg.Grid,
		scfg: stream.Config{
			Spots: spots, Thresholds: ths, Grid: cfg.Grid,
			Amplify: core.PaperAmplification,
		},
	}
	return cachedDay
}

func (d *day) serviceConfig() Config {
	return Config{
		Stream: d.scfg,
		Clean:  clean.Config{ValidFrame: citymap.Island},
	}
}

// snapshot pulls every final (spot, slot) context out of a service.
func snapshot(t testing.TB, svc *Service, d *day) ([][]core.QueueType, [][]core.SlotFeatures) {
	t.Helper()
	labels := make([][]core.QueueType, len(d.scfg.Spots))
	feats := make([][]core.SlotFeatures, len(d.scfg.Spots))
	for i := range labels {
		labels[i] = make([]core.QueueType, d.grid.Slots)
		feats[i] = make([]core.SlotFeatures, d.grid.Slots)
		for j := 0; j < d.grid.Slots; j++ {
			f, l, ok := svc.Context(i, j)
			if !ok {
				t.Fatalf("spot %d slot %d not final", i, j)
			}
			labels[i][j] = l
			feats[i][j] = f
		}
	}
	return labels, feats
}

// singleEngineContexts runs one stream.Live over the feed via a 1-shard
// service pipeline-free path: cleaner + engine + the same empty-slot
// classification the aggregator applies.
func singleEngineContexts(d *day) ([][]core.QueueType, [][]core.SlotFeatures) {
	cl := clean.NewStreamer(clean.Config{ValidFrame: citymap.Island})
	eng := stream.NewLive(d.scfg)
	stats := make(map[cellKey]*stream.SlotStats)
	collect := func(events []stream.Event) {
		for i := range events {
			ev := &events[i]
			if ev.Kind != stream.SlotClosed {
				continue
			}
			k := cellKey{ev.Spot, ev.Slot}
			if stats[k] == nil {
				stats[k] = &stream.SlotStats{}
			}
			stats[k].Merge(&ev.Stats)
		}
	}
	for _, r := range d.raw {
		for _, surv := range cl.Push(r) {
			collect(eng.Ingest(surv))
		}
	}
	for _, surv := range cl.Flush() {
		collect(eng.Ingest(surv))
	}
	collect(eng.Flush())
	labels := make([][]core.QueueType, len(d.scfg.Spots))
	feats := make([][]core.SlotFeatures, len(d.scfg.Spots))
	for i := range labels {
		labels[i] = make([]core.QueueType, d.grid.Slots)
		feats[i] = make([]core.SlotFeatures, d.grid.Slots)
		for j := 0; j < d.grid.Slots; j++ {
			var s stream.SlotStats
			if p := stats[cellKey{i, j}]; p != nil {
				s = *p
			}
			f := s.Features(d.grid.SlotLen, d.scfg.Amplify)
			feats[i][j] = f
			labels[i][j] = core.Classify([]core.SlotFeatures{f}, d.scfg.Thresholds[i])[0]
		}
	}
	return labels, feats
}

// feed pushes records through Accept in mdtgen-sized batches.
func feed(t testing.TB, svc *Service, recs []mdt.Record) {
	t.Helper()
	for len(recs) > 0 {
		n := 500
		if n > len(recs) {
			n = len(recs)
		}
		if _, err := svc.Accept(recs[:n]); err != nil {
			t.Fatal(err)
		}
		recs = recs[n:]
	}
}

func runService(t testing.TB, cfg Config, recs []mdt.Record) *Service {
	t.Helper()
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, svc, recs)
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	return svc
}

func sameContexts(t *testing.T, what string,
	la [][]core.QueueType, fa [][]core.SlotFeatures,
	lb [][]core.QueueType, fb [][]core.SlotFeatures) {
	t.Helper()
	for i := range la {
		for j := range la[i] {
			if la[i][j] != lb[i][j] {
				t.Errorf("%s: spot %d slot %d label %v vs %v", what, i, j, la[i][j], lb[i][j])
			}
			if fa[i][j] != fb[i][j] {
				t.Errorf("%s: spot %d slot %d features differ:\n  %+v\n  %+v", what, i, j, fa[i][j], fb[i][j])
			}
		}
	}
}

// TestShardedMatchesSingleEngine: the sharded service (any shard count)
// must serve contexts byte-identical to one stream engine that saw every
// record — the SlotStats merge is exact.
func TestShardedMatchesSingleEngine(t *testing.T) {
	d := getDay(t)
	wantL, wantF := singleEngineContexts(d)
	for _, shards := range []int{1, 3, 8} {
		cfg := d.serviceConfig()
		cfg.Shards = shards
		svc := runService(t, cfg, d.raw)
		gotL, gotF := snapshot(t, svc, d)
		sameContexts(t, sprint("shards=", shards), gotL, gotF, wantL, wantF)
		st := svc.Stats()
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
		if st.Dropped != 0 {
			t.Fatalf("shards=%d: dropped %d under Block policy", shards, st.Dropped)
		}
		if st.Accepted != int64(len(d.cleaned)) {
			t.Fatalf("shards=%d: accepted %d, cleaned %d", shards, st.Accepted, len(d.cleaned))
		}
	}
}

func sprint(a string, b int) string { return a + string(rune('0'+b)) }

// TestShardedLabelsNearBatch: the live sharded view must agree with the
// batch engine on the vast majority of active slots (the same ≤10% bound
// the single-engine stream test uses: the live path attributes cross-slot
// waits slightly differently).
func TestShardedLabelsNearBatch(t *testing.T) {
	d := getDay(t)
	cfg := d.serviceConfig()
	cfg.Shards = 4
	svc := runService(t, cfg, d.raw)
	defer svc.Close()
	gotL, _ := snapshot(t, svc, d)
	checked, mismatches := 0, 0
	for i := range d.result.Spots {
		for j, batchLabel := range d.result.Spots[i].Labels {
			if batchLabel == core.Unidentified && gotL[i][j] == core.Unidentified {
				continue
			}
			checked++
			if gotL[i][j] != batchLabel {
				mismatches++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d active slots compared", checked)
	}
	if rate := float64(mismatches) / float64(checked); rate > 0.10 {
		t.Fatalf("live/batch mismatch rate %.3f over %d slots", rate, checked)
	}
}

// TestCleanFeedZeroRejected: a pre-cleaned feed sails through with nothing
// rejected or dropped.
func TestCleanFeedZeroRejected(t *testing.T) {
	d := getDay(t)
	cfg := d.serviceConfig()
	cfg.Shards = 4
	svc := runService(t, cfg, d.cleaned)
	defer svc.Close()
	st := svc.Stats()
	if st.Rejected != 0 || st.Dropped != 0 || st.BadRecords != 0 {
		t.Fatalf("clean feed: rejected=%d dropped=%d bad=%d", st.Rejected, st.Dropped, st.BadRecords)
	}
	if st.Accepted != int64(len(d.cleaned)) {
		t.Fatalf("accepted %d of %d", st.Accepted, len(d.cleaned))
	}
	if st.FinalBelow != d.grid.Slots {
		t.Fatalf("final below %d, want %d", st.FinalBelow, d.grid.Slots)
	}
}

// TestFaultyFeedRejectsExactlyCleanRemovals: the streaming validation must
// reject exactly what the batch cleaner would remove.
func TestFaultyFeedRejectsExactlyCleanRemovals(t *testing.T) {
	d := getDay(t)
	cfg := d.serviceConfig()
	cfg.Shards = 4
	svc := runService(t, cfg, d.raw)
	defer svc.Close()
	st := svc.Stats()
	wantRejected := int64(len(d.raw) - len(d.cleaned))
	if st.Rejected != wantRejected {
		t.Fatalf("rejected %d, batch clean removed %d", st.Rejected, wantRejected)
	}
}

// TestContextGating: before any feed reaches a slot's finality horizon the
// service refuses to serve it; FlushUntil advances the horizon without a
// record.
func TestContextGating(t *testing.T) {
	d := getDay(t)
	cfg := d.serviceConfig()
	cfg.Shards = 2
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, _, ok := svc.Context(0, 0); ok {
		t.Fatal("slot 0 served before any record")
	}
	if _, _, ok := svc.Context(-1, 0); ok {
		t.Fatal("negative spot served")
	}
	noon := d.grid.Start.Add(12 * time.Hour)
	if err := svc.FlushUntil(noon); err != nil {
		t.Fatal(err)
	}
	j := d.grid.Index(noon)
	if _, _, ok := svc.Context(0, j-2); !ok {
		t.Fatalf("slot %d not final after FlushUntil(noon)", j-2)
	}
	if _, _, ok := svc.Context(0, j); ok {
		t.Fatal("current slot served as final")
	}
}
