package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taxiqueue/internal/mdt"
)

// preWALRejected counts the records a service refused before its WAL saw
// them: out-of-order arrivals plus re-send dedup-window hits. Everything
// else the service was fed is in the log.
func preWALRejected(svc *Service) int64 {
	n := svc.met.removedOOO.Value()
	for _, sh := range svc.Stats().Shards {
		n += sh.Deduped
	}
	return n
}

// TestCrashRecoveryByteIdentical: checkpoint, kill after K records,
// restart (WAL replay), finish the feed — every final slot context must be
// byte-identical to an uninterrupted run. Because the WAL logs raw records
// pre-clean and replay re-runs the live cleaner+engine path, this holds at
// an arbitrary cut point, even mid-hold in the cleaner.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	d := getDay(t)
	k := len(d.raw) / 2

	base := d.serviceConfig()
	base.Shards = 4
	base.CheckpointEvery = 1 << 30 // checkpoints under test control

	// Reference: one uninterrupted run (durability on, same config).
	refCfg := base
	refCfg.WALDir = t.TempDir()
	ref := runService(t, refCfg, d.raw)
	wantL, wantF := snapshot(t, ref, d)
	wantAccepted := ref.Stats().Accepted
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Crashed run: feed K records, checkpoint, kill without flushing.
	crashCfg := base
	crashCfg.WALDir = t.TempDir()
	svc, err := NewService(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, svc, d.raw[:k])
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	logged := int64(k) - preWALRejected(svc) // what the WAL holds
	svc.Abort()

	// Restart: recovery must replay every checkpointed raw record.
	svc2, err := NewService(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().Replayed; got != logged {
		t.Fatalf("replayed %d, checkpointed %d raw records", got, logged)
	}
	feed(t, svc2, d.raw[k:])
	if err := svc2.Flush(); err != nil {
		t.Fatal(err)
	}
	gotL, gotF := snapshot(t, svc2, d)
	sameContexts(t, "recovered", gotL, gotF, wantL, wantF)
	if got := svc2.Stats().Accepted; got != wantAccepted {
		t.Fatalf("accepted %d after recovery, uninterrupted run accepted %d", got, wantAccepted)
	}
}

// TestGroupCommitClosesTheDurabilityGap: records appended after the last
// checkpoint used to be lost in a crash. With group commit the shard
// worker fsyncs whenever its queue goes idle, so once a drain barrier has
// passed every logged record is durable — wal_pending reads zero, and a
// kill -9 right then loses nothing, checkpoint or no checkpoint.
func TestGroupCommitClosesTheDurabilityGap(t *testing.T) {
	d := getDay(t)
	k := len(d.raw) / 3
	cfg := d.serviceConfig()
	cfg.Shards = 2
	cfg.CheckpointEvery = 1 << 30
	cfg.WALDir = t.TempDir()

	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, svc, d.raw[:k])
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Keep feeding past the checkpoint, then crash.
	feed(t, svc, d.raw[k:k+2000])
	// Barrier: a FlushUntil at the grid start closes nothing but only
	// returns once every queue has drained — and a drained queue means the
	// worker's idle-triggered group commit has already fsynced everything.
	if err := svc.FlushUntil(d.grid.Start); err != nil {
		t.Fatal(err)
	}
	var pending int64
	for _, sh := range svc.Stats().Shards {
		pending += sh.WALPending
	}
	if pending != 0 {
		t.Fatalf("wal_pending %d after a drain barrier, want 0 (idle group commit)", pending)
	}
	logged := int64(k+2000) - preWALRejected(svc) // every ordering-accepted record
	svc.Abort()

	svc2, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().Replayed; got != logged {
		t.Fatalf("replayed %d, want all %d logged records (including the %d past the checkpoint)",
			got, logged, 2000)
	}
}

// perturbOutOfOrder returns a copy of recs with per-taxi time-order
// violations injected: for a sample of taxis, a later record is swapped
// ahead of an earlier one (at whole-second distance, so the ordering rule
// must fire in both durability modes).
func perturbOutOfOrder(t *testing.T, recs []mdt.Record) []mdt.Record {
	t.Helper()
	out := append([]mdt.Record(nil), recs...)
	occ := make(map[string][]int)
	for i, r := range out {
		occ[r.TaxiID] = append(occ[r.TaxiID], i)
	}
	swapped := 0
	for _, idx := range occ {
		for k := 0; k+3 < len(idx); k += 16 {
			i, j := idx[k], idx[k+3]
			if out[j].Time.Unix() > out[i].Time.Unix() {
				out[i], out[j] = out[j], out[i]
				swapped++
			}
		}
	}
	if swapped == 0 {
		t.Fatal("fixture too small to perturb")
	}
	return out
}

// TestDurabilityModesAgreeOnOutOfOrderFeed: one ordering rule for both
// durability modes. An out-of-order record used to be rejected by the WAL
// append (pre-cleaner) with durability on but reach the cleaner with
// durability off — so the two modes rejected different records and served
// different labels from the same input. Now WAL-on, WAL-off and a
// recovered WAL-on service must all agree exactly.
func TestDurabilityModesAgreeOnOutOfOrderFeed(t *testing.T) {
	d := getDay(t)
	ooo := perturbOutOfOrder(t, d.raw)
	cfg := d.serviceConfig()
	cfg.Shards = 3

	plain := runService(t, cfg, ooo) // durability off
	defer plain.Close()
	pL, pF := snapshot(t, plain, d)
	pst := plain.Stats()
	if n := plain.met.removedOOO.Value(); n == 0 {
		t.Fatal("perturbed feed triggered no out-of-order rejections")
	}

	durCfg := cfg
	durCfg.WALDir = t.TempDir()
	dur := runService(t, durCfg, ooo) // durability on
	dL, dF := snapshot(t, dur, d)
	dst := dur.Stats()
	sameContexts(t, "wal-on vs wal-off", dL, dF, pL, pF)
	if dst.Accepted != pst.Accepted || dst.Rejected != pst.Rejected {
		t.Fatalf("durable accepted/rejected %d/%d, non-durable %d/%d",
			dst.Accepted, dst.Rejected, pst.Accepted, pst.Rejected)
	}
	logged := int64(len(ooo)) - preWALRejected(dur)
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	// The ordering rule runs before the WAL, so the log only ever holds
	// per-taxi time-ordered records: a restart over the out-of-order feed's
	// WAL must succeed and replay every ordering-accepted record. (Replayed
	// contexts are not compared here — store replay is time-sorted, and
	// slot-close timing is arrival-order sensitive by design.)
	dur2, err := NewService(durCfg)
	if err != nil {
		t.Fatalf("restart over out-of-order feed's WAL: %v", err)
	}
	defer dur2.Close()
	if got := dur2.Stats().Replayed; got != logged {
		t.Fatalf("replayed %d, logged %d ordering-accepted records", got, logged)
	}
}

// newestSegment returns the lexicographically last sealed segment file in
// shard i's WAL directory — the zero-padded seal-sequence names make that
// the newest one, the only segment recovery is allowed to truncate.
func newestSegment(t *testing.T, dir string, shard int) string {
	t.Helper()
	ents, err := os.ReadDir(shardWALDir(dir, shard))
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range ents {
		if name := e.Name(); strings.HasPrefix(name, "seg-") && name > last {
			last = name
		}
	}
	if last == "" {
		t.Fatal("no sealed segment to damage")
	}
	return filepath.Join(shardWALDir(dir, shard), last)
}

// TestRecoveryTruncatesTornWAL: a WAL whose newest segment has a torn tail
// (a crash mid-write, or a lying disk) no longer fails startup — the
// service resumes from the longest clean prefix, counts and reports the
// truncation, and immediately rewrites the segment clean so the damage is
// not rediscovered forever.
func TestRecoveryTruncatesTornWAL(t *testing.T) {
	d := getDay(t)
	dir := t.TempDir()
	cfg := d.serviceConfig()
	cfg.Shards = 2
	cfg.WALDir = dir
	svc := runService(t, cfg, d.raw[:5000])
	logged := int64(5000) - preWALRejected(svc)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear shard 0's newest segment mid-payload. (Close sealed the active
	// segment, so the newest sealed file carries the tail of the log.)
	path := newestSegment(t, dir, 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	svc2, err := NewService(cfg)
	if err != nil {
		t.Fatalf("restart over torn WAL: %v", err)
	}
	st := svc2.Stats()
	var truncs int64
	for _, sh := range st.Shards {
		truncs += sh.Truncations
	}
	if truncs != 1 {
		t.Fatalf("wal_truncations %d, want 1", truncs)
	}
	if st.Replayed <= 0 || st.Replayed >= logged {
		t.Fatalf("replayed %d records over a half-truncated WAL, logged %d", st.Replayed, logged)
	}
	replayed := st.Replayed
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
	// The damaged segment was rewritten clean at startup: a second restart
	// replays the same prefix with no further truncation.
	svc3, err := NewService(cfg)
	if err != nil {
		t.Fatalf("restart over rewritten WAL: %v", err)
	}
	defer svc3.Close()
	st3 := svc3.Stats()
	for _, sh := range st3.Shards {
		if sh.Truncations != 0 {
			t.Fatalf("shard %d re-truncated an already-rewritten WAL", sh.Shard)
		}
	}
	if st3.Replayed != replayed {
		t.Fatalf("second restart replayed %d, first replayed %d", st3.Replayed, replayed)
	}
}

// TestRecoveryRejectsHopelessWAL: tolerance has a floor — a segment that
// carries a full-size header with the wrong magic was never written by
// this WAL, so startup fails loudly instead of silently truncating away
// data that may exist under a different format.
func TestRecoveryRejectsHopelessWAL(t *testing.T) {
	d := getDay(t)
	dir := t.TempDir()
	cfg := d.serviceConfig()
	cfg.Shards = 2
	cfg.WALDir = dir
	svc := runService(t, cfg, d.raw[:2000])
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// An active segment with a wrong-magic header (≥ 8 bytes, so it cannot
	// be a torn creation) must fail the open, not be swept aside.
	if err := os.WriteFile(WALPath(dir, 0), []byte("not a wal segment!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewService(cfg); err == nil {
		t.Fatal("service started over a WAL with a foreign header")
	}
}

// TestResendIdempotent: a resilient client that cannot know whether a
// failed request was applied re-sends it. Re-feeding an already-absorbed
// window must change nothing: the ordering rule rejects records behind the
// per-taxi tail second and the dedup window absorbs byte-identical records
// at it, so the served contexts stay byte-identical to a single clean run.
func TestResendIdempotent(t *testing.T) {
	d := getDay(t)
	cfg := d.serviceConfig()
	cfg.Shards = 4

	ref := runService(t, cfg, d.raw)
	defer ref.Close()
	wantL, wantF := snapshot(t, ref, d)
	wantAccepted := ref.Stats().Accepted

	k := 2 * len(d.raw) / 3
	j := k - 5000 // the window the client "lost the ack for"
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	feed(t, svc, d.raw[:k])
	feed(t, svc, d.raw[j:k]) // duplicate re-send of the last window
	feed(t, svc, d.raw[k:])
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	gotL, gotF := snapshot(t, svc, d)
	sameContexts(t, "after re-send", gotL, gotF, wantL, wantF)
	st := svc.Stats()
	if st.Accepted != wantAccepted {
		t.Fatalf("accepted %d after re-send, clean run accepted %d", st.Accepted, wantAccepted)
	}
	var deduped int64
	for _, sh := range st.Shards {
		deduped += sh.Deduped
	}
	if deduped == 0 {
		t.Fatal("re-sent window hit the dedup window zero times")
	}
}

// TestCrashRestartResendByteIdentical is the full client-facing recovery
// contract: checkpoint, keep feeding, crash (losing the post-checkpoint
// records), restart, and have the client re-send everything from the start
// of its day — the recovered service absorbs the overlap, regains the lost
// records, finishes the feed and serves contexts byte-identical to an
// uninterrupted run.
func TestCrashRestartResendByteIdentical(t *testing.T) {
	d := getDay(t)
	base := d.serviceConfig()
	base.Shards = 4
	base.CheckpointEvery = 1 << 30

	refCfg := base
	refCfg.WALDir = t.TempDir()
	ref := runService(t, refCfg, d.raw)
	wantL, wantF := snapshot(t, ref, d)
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	k1 := len(d.raw) / 3 // checkpointed
	k2 := len(d.raw) / 2 // fed but lost in the crash
	cfg := base
	cfg.WALDir = t.TempDir()
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, svc, d.raw[:k1])
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	feed(t, svc, d.raw[k1:k2])
	svc.Abort() // records k1:k2 are gone

	svc2, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	feed(t, svc2, d.raw[:k2]) // client re-sends its whole day so far
	feed(t, svc2, d.raw[k2:])
	if err := svc2.Flush(); err != nil {
		t.Fatal(err)
	}
	gotL, gotF := snapshot(t, svc2, d)
	sameContexts(t, "crash+restart+re-send", gotL, gotF, wantL, wantF)
}
