package ingest

import (
	"os"
	"testing"

	"taxiqueue/internal/mdt"
)

// TestCrashRecoveryByteIdentical: checkpoint, kill after K records,
// restart (WAL replay), finish the feed — every final slot context must be
// byte-identical to an uninterrupted run. Because the WAL logs raw records
// pre-clean and replay re-runs the live cleaner+engine path, this holds at
// an arbitrary cut point, even mid-hold in the cleaner.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	d := getDay(t)
	k := len(d.raw) / 2

	base := d.serviceConfig()
	base.Shards = 4
	base.CheckpointEvery = 1 << 30 // checkpoints under test control

	// Reference: one uninterrupted run (durability on, same config).
	refCfg := base
	refCfg.WALDir = t.TempDir()
	ref := runService(t, refCfg, d.raw)
	wantL, wantF := snapshot(t, ref, d)
	wantAccepted := ref.Stats().Accepted
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Crashed run: feed K records, checkpoint, kill without flushing.
	crashCfg := base
	crashCfg.WALDir = t.TempDir()
	svc, err := NewService(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, svc, d.raw[:k])
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	svc.Abort()

	// Restart: recovery must replay every checkpointed raw record.
	svc2, err := NewService(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().Replayed; got != int64(k) {
		t.Fatalf("replayed %d, checkpointed %d raw records", got, k)
	}
	feed(t, svc2, d.raw[k:])
	if err := svc2.Flush(); err != nil {
		t.Fatal(err)
	}
	gotL, gotF := snapshot(t, svc2, d)
	sameContexts(t, "recovered", gotL, gotF, wantL, wantF)
	if got := svc2.Stats().Accepted; got != wantAccepted {
		t.Fatalf("accepted %d after recovery, uninterrupted run accepted %d", got, wantAccepted)
	}
}

// TestRecoveryLosesOnlyPostCheckpointRecords: records logged after the
// last checkpoint are gone after a crash — and the stats advertise exactly
// that exposure beforehand via wal_pending.
func TestRecoveryLosesOnlyPostCheckpointRecords(t *testing.T) {
	d := getDay(t)
	k := len(d.raw) / 3
	cfg := d.serviceConfig()
	cfg.Shards = 2
	cfg.CheckpointEvery = 1 << 30
	cfg.WALDir = t.TempDir()

	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, svc, d.raw[:k])
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Keep feeding past the checkpoint, then crash.
	feed(t, svc, d.raw[k:k+2000])
	// Barrier: a FlushUntil at the grid start closes nothing but only
	// returns once every queue has drained, so the counters are settled.
	if err := svc.FlushUntil(d.grid.Start); err != nil {
		t.Fatal(err)
	}
	var pending int64
	for _, sh := range svc.Stats().Shards {
		pending += sh.WALPending
	}
	if pending != 2000 {
		t.Fatalf("wal_pending %d, want the 2000 records logged since checkpoint", pending)
	}
	svc.Abort()

	svc2, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().Replayed; got != int64(k) {
		t.Fatalf("replayed %d, want the %d checkpointed records", got, k)
	}
}

// perturbOutOfOrder returns a copy of recs with per-taxi time-order
// violations injected: for a sample of taxis, a later record is swapped
// ahead of an earlier one (at whole-second distance, so the ordering rule
// must fire in both durability modes).
func perturbOutOfOrder(t *testing.T, recs []mdt.Record) []mdt.Record {
	t.Helper()
	out := append([]mdt.Record(nil), recs...)
	occ := make(map[string][]int)
	for i, r := range out {
		occ[r.TaxiID] = append(occ[r.TaxiID], i)
	}
	swapped := 0
	for _, idx := range occ {
		for k := 0; k+3 < len(idx); k += 16 {
			i, j := idx[k], idx[k+3]
			if out[j].Time.Unix() > out[i].Time.Unix() {
				out[i], out[j] = out[j], out[i]
				swapped++
			}
		}
	}
	if swapped == 0 {
		t.Fatal("fixture too small to perturb")
	}
	return out
}

// TestDurabilityModesAgreeOnOutOfOrderFeed: one ordering rule for both
// durability modes. An out-of-order record used to be rejected by the WAL
// append (pre-cleaner) with durability on but reach the cleaner with
// durability off — so the two modes rejected different records and served
// different labels from the same input. Now WAL-on, WAL-off and a
// recovered WAL-on service must all agree exactly.
func TestDurabilityModesAgreeOnOutOfOrderFeed(t *testing.T) {
	d := getDay(t)
	ooo := perturbOutOfOrder(t, d.raw)
	cfg := d.serviceConfig()
	cfg.Shards = 3

	plain := runService(t, cfg, ooo) // durability off
	defer plain.Close()
	pL, pF := snapshot(t, plain, d)
	pst := plain.Stats()
	if n := plain.met.removedOOO.Value(); n == 0 {
		t.Fatal("perturbed feed triggered no out-of-order rejections")
	}

	durCfg := cfg
	durCfg.WALDir = t.TempDir()
	dur := runService(t, durCfg, ooo) // durability on
	dL, dF := snapshot(t, dur, d)
	dst := dur.Stats()
	sameContexts(t, "wal-on vs wal-off", dL, dF, pL, pF)
	if dst.Accepted != pst.Accepted || dst.Rejected != pst.Rejected {
		t.Fatalf("durable accepted/rejected %d/%d, non-durable %d/%d",
			dst.Accepted, dst.Rejected, pst.Accepted, pst.Rejected)
	}
	logged := int64(len(ooo)) - dur.met.removedOOO.Value()
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	// The ordering rule runs before the WAL, so the log only ever holds
	// per-taxi time-ordered records: a restart over the out-of-order feed's
	// WAL must succeed and replay every ordering-accepted record. (Replayed
	// contexts are not compared here — store replay is time-sorted, and
	// slot-close timing is arrival-order sensitive by design.)
	dur2, err := NewService(durCfg)
	if err != nil {
		t.Fatalf("restart over out-of-order feed's WAL: %v", err)
	}
	defer dur2.Close()
	if got := dur2.Stats().Replayed; got != logged {
		t.Fatalf("replayed %d, logged %d ordering-accepted records", got, logged)
	}
}

// TestRecoveryRejectsCorruptWAL: a torn WAL file fails startup loudly
// (naming the file) instead of serving from silently bad state.
func TestRecoveryRejectsCorruptWAL(t *testing.T) {
	d := getDay(t)
	dir := t.TempDir()
	cfg := d.serviceConfig()
	cfg.Shards = 2
	cfg.WALDir = dir
	svc := runService(t, cfg, d.raw[:5000])
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate shard 0's file mid-payload.
	path := walPath(dir, 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewService(cfg); err == nil {
		t.Fatal("service started over a corrupt WAL")
	}
}
