package ingest

import (
	"os"
	"testing"
)

// TestCrashRecoveryByteIdentical: checkpoint, kill after K records,
// restart (WAL replay), finish the feed — every final slot context must be
// byte-identical to an uninterrupted run. Because the WAL logs raw records
// pre-clean and replay re-runs the live cleaner+engine path, this holds at
// an arbitrary cut point, even mid-hold in the cleaner.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	d := getDay(t)
	k := len(d.raw) / 2

	base := d.serviceConfig()
	base.Shards = 4
	base.CheckpointEvery = 1 << 30 // checkpoints under test control

	// Reference: one uninterrupted run (durability on, same config).
	refCfg := base
	refCfg.WALDir = t.TempDir()
	ref := runService(t, refCfg, d.raw)
	wantL, wantF := snapshot(t, ref, d)
	wantAccepted := ref.Stats().Accepted
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Crashed run: feed K records, checkpoint, kill without flushing.
	crashCfg := base
	crashCfg.WALDir = t.TempDir()
	svc, err := NewService(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, svc, d.raw[:k])
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	svc.Abort()

	// Restart: recovery must replay every checkpointed raw record.
	svc2, err := NewService(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().Replayed; got != int64(k) {
		t.Fatalf("replayed %d, checkpointed %d raw records", got, k)
	}
	feed(t, svc2, d.raw[k:])
	if err := svc2.Flush(); err != nil {
		t.Fatal(err)
	}
	gotL, gotF := snapshot(t, svc2, d)
	sameContexts(t, "recovered", gotL, gotF, wantL, wantF)
	if got := svc2.Stats().Accepted; got != wantAccepted {
		t.Fatalf("accepted %d after recovery, uninterrupted run accepted %d", got, wantAccepted)
	}
}

// TestRecoveryLosesOnlyPostCheckpointRecords: records logged after the
// last checkpoint are gone after a crash — and the stats advertise exactly
// that exposure beforehand via wal_pending.
func TestRecoveryLosesOnlyPostCheckpointRecords(t *testing.T) {
	d := getDay(t)
	k := len(d.raw) / 3
	cfg := d.serviceConfig()
	cfg.Shards = 2
	cfg.CheckpointEvery = 1 << 30
	cfg.WALDir = t.TempDir()

	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, svc, d.raw[:k])
	if err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Keep feeding past the checkpoint, then crash.
	feed(t, svc, d.raw[k:k+2000])
	// Barrier: a FlushUntil at the grid start closes nothing but only
	// returns once every queue has drained, so the counters are settled.
	if err := svc.FlushUntil(d.grid.Start); err != nil {
		t.Fatal(err)
	}
	var pending int64
	for _, sh := range svc.Stats().Shards {
		pending += sh.WALPending
	}
	if pending != 2000 {
		t.Fatalf("wal_pending %d, want the 2000 records logged since checkpoint", pending)
	}
	svc.Abort()

	svc2, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().Replayed; got != int64(k) {
		t.Fatalf("replayed %d, want the %d checkpointed records", got, k)
	}
}

// TestRecoveryRejectsCorruptWAL: a torn WAL file fails startup loudly
// (naming the file) instead of serving from silently bad state.
func TestRecoveryRejectsCorruptWAL(t *testing.T) {
	d := getDay(t)
	dir := t.TempDir()
	cfg := d.serviceConfig()
	cfg.Shards = 2
	cfg.WALDir = dir
	svc := runService(t, cfg, d.raw[:5000])
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate shard 0's file mid-payload.
	path := walPath(dir, 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewService(cfg); err == nil {
		t.Fatal("service started over a corrupt WAL")
	}
}
