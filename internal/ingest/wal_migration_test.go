package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"taxiqueue/internal/mdt"
	"taxiqueue/internal/store"
)

// copySegDir clones one shard's WAL segment directory so a test can damage
// the copy without touching the original.
func copySegDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSegmentedRecoveryMatchesLegacyAnyCut is the cross-format recovery
// property: for an arbitrary crash cut in the active segment, a service
// recovered from the torn segmented log must serve contexts byte-identical
// to a service bootstrapped from the same surviving records written in the
// legacy TQST2 single-file format — which also exercises the migration
// path end to end (legacy file replayed, re-logged segmented, removed).
func TestSegmentedRecoveryMatchesLegacyAnyCut(t *testing.T) {
	d := getDay(t)
	cfg := d.serviceConfig()
	cfg.Shards = 1
	cfg.CheckpointEvery = 1500 // several sealed segments plus an active tail
	dir := t.TempDir()
	cfg.WALDir = dir

	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, svc, d.raw[:6000])
	// Drain barrier: the idle group commit makes every logged byte durable,
	// so the Abort below leaves a fully written active segment to cut into.
	if err := svc.FlushUntil(d.grid.Start); err != nil {
		t.Fatal(err)
	}
	if n := svc.Stats().Shards[0].Checkpoints; n < 3 {
		t.Fatalf("fixture sealed %d segments, want several for a meaningful cut", n)
	}
	svc.Abort()
	src := shardWALDir(dir, 0)
	active, err := os.Stat(filepath.Join(src, "active.seg"))
	if err != nil {
		t.Fatal(err)
	}

	for _, frac := range []float64{0.15, 0.5, 0.97} {
		cut := int64(float64(active.Size()) * frac)

		// Service A: recover the segmented log with its active segment torn
		// at the cut.
		dirA := t.TempDir()
		copySegDir(t, src, shardWALDir(dirA, 0))
		if err := os.Truncate(filepath.Join(shardWALDir(dirA, 0), "active.seg"), cut); err != nil {
			t.Fatal(err)
		}
		cfgA := cfg
		cfgA.WALDir = dirA
		svcA, err := NewService(cfgA)
		if err != nil {
			t.Fatalf("cut %d: segmented recovery: %v", cut, err)
		}
		replayed := svcA.Stats().Replayed
		if replayed <= 0 || replayed >= 6000 {
			t.Fatalf("cut %d: replayed %d, want a proper prefix of the feed", cut, replayed)
		}
		if err := svcA.Flush(); err != nil {
			t.Fatal(err)
		}
		aL, aF := snapshot(t, svcA, d)
		if err := svcA.Close(); err != nil {
			t.Fatal(err)
		}

		// Collect the surviving records from a scratch copy of the same torn
		// log — the exact set service A replayed.
		scratch := filepath.Join(t.TempDir(), "scratch")
		copySegDir(t, src, scratch)
		if err := os.Truncate(filepath.Join(scratch, "active.seg"), cut); err != nil {
			t.Fatal(err)
		}
		var recs []mdt.Record
		w, _, err := store.OpenWAL(scratch, store.WALConfig{}, func(r mdt.Record) {
			recs = append(recs, r)
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Abort()
		if int64(len(recs)) != replayed {
			t.Fatalf("cut %d: scratch replay %d records, service replayed %d", cut, len(recs), replayed)
		}

		// Service B: the same records as a legacy TQST2 single-file WAL;
		// startup must migrate it into the segmented format and agree.
		dirB := t.TempDir()
		st := store.New()
		if err := st.AppendAll(recs); err != nil {
			t.Fatal(err)
		}
		if err := st.SaveFile(legacyWALPath(dirB, 0)); err != nil {
			t.Fatal(err)
		}
		cfgB := cfg
		cfgB.WALDir = dirB
		svcB, err := NewService(cfgB)
		if err != nil {
			t.Fatalf("cut %d: legacy migration: %v", cut, err)
		}
		if got := svcB.Stats().Replayed; got != replayed {
			t.Fatalf("cut %d: migrated %d records, segmented replayed %d", cut, got, replayed)
		}
		if _, err := os.Stat(legacyWALPath(dirB, 0)); !os.IsNotExist(err) {
			t.Fatalf("cut %d: legacy WAL file still present after migration", cut)
		}
		if err := svcB.Flush(); err != nil {
			t.Fatal(err)
		}
		bL, bF := snapshot(t, svcB, d)
		if err := svcB.Close(); err != nil {
			t.Fatal(err)
		}
		sameContexts(t, "segmented vs migrated-legacy", aL, aF, bL, bF)

		// The migrated service keeps working durably: a restart over its
		// now-segmented log replays the same records.
		svcB2, err := NewService(cfgB)
		if err != nil {
			t.Fatal(err)
		}
		if got := svcB2.Stats().Replayed; got != replayed {
			t.Fatalf("cut %d: post-migration restart replayed %d, want %d", cut, got, replayed)
		}
		if err := svcB2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactionBoundsSegmentCount: a day of aggressive checkpointing must
// not leave a segment per checkpoint behind — the background compactor
// folds runs of small segments, so replay cost stays proportional to the
// data instead of the checkpoint count.
func TestCompactionBoundsSegmentCount(t *testing.T) {
	d := getDay(t)
	cfg := d.serviceConfig()
	cfg.Shards = 1
	cfg.CheckpointEvery = 400
	dir := t.TempDir()
	cfg.WALDir = dir
	svc := runService(t, cfg, d.raw)
	logged := int64(len(d.raw)) - preWALRejected(svc)
	if err := svc.Close(); err != nil { // waits out the compactor
		t.Fatal(err)
	}
	st := svc.Stats().Shards[0]
	if st.Checkpoints < 20 {
		t.Fatalf("only %d checkpoints, fixture too small to exercise compaction", st.Checkpoints)
	}
	if st.Compactions == 0 {
		t.Fatal("no compactions over a day of 400-record checkpoints")
	}
	ents, err := os.ReadDir(shardWALDir(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range ents {
		if name := e.Name(); filepath.Ext(name) == ".seg" && name != "active.seg" {
			segs++
		}
	}
	if bound := int(st.Checkpoints) / 2; segs >= bound {
		t.Fatalf("%d sealed segments survive %d checkpoints, want compaction to fold them below %d",
			segs, st.Checkpoints, bound)
	}

	// The compacted log still replays every record.
	svc2, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Stats().Replayed; got != logged {
		t.Fatalf("replayed %d over the compacted log, logged %d", got, logged)
	}
}
