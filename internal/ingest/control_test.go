package ingest

import (
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// withDeadline fails the test if fn has not returned after d — the guard
// that turns a control-plane deadlock into a fast failure instead of a
// hung test binary.
func withDeadline(t *testing.T, d time.Duration, what string, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("%s did not return within %v (control-plane deadlock)", what, d)
		return nil
	}
}

// TestControlAfterCloseReturnsErrClosed: Flush, FlushUntil and Checkpoint
// after Close must fail fast with ErrClosed. They used to post control ops
// to workers that had already exited and block forever on the reply.
func TestControlAfterCloseReturnsErrClosed(t *testing.T) {
	stall := make(chan struct{})
	close(stall)
	svc, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	ops := map[string]func() error{
		"Flush":      svc.Flush,
		"FlushUntil": func() error { return svc.FlushUntil(time.Now()) },
		"Checkpoint": svc.Checkpoint,
	}
	for name, op := range ops {
		// Repeat: the old bug only wedged once the dead shard's ctl buffer
		// (cap 4) filled, so a single call could appear to succeed.
		for i := 0; i < 10; i++ {
			if err := withDeadline(t, 5*time.Second, name, op); !errors.Is(err, ErrClosed) {
				t.Fatalf("%s after Close: err %v, want ErrClosed", name, err)
			}
		}
	}
	if err := withDeadline(t, 5*time.Second, "second Close", svc.Close); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestControlAfterAbortReturnsErrClosed: the crash-test shutdown must gate
// the control plane the same way the graceful one does.
func TestControlAfterAbortReturnsErrClosed(t *testing.T) {
	stall := make(chan struct{})
	close(stall)
	svc, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	svc.Abort()
	if err := withDeadline(t, 5*time.Second, "Flush", svc.Flush); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Abort: err %v, want ErrClosed", err)
	}
	if _, err := svc.Accept(burst(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept after Abort: err %v, want ErrClosed", err)
	}
}

// TestFlushHandlerAfterClose: the HTTP face of the same bug — POST
// /ingest/flush on a closed service must answer 503 promptly, not hang the
// request forever.
func TestFlushHandlerAfterClose(t *testing.T) {
	stall := make(chan struct{})
	close(stall)
	svc, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	err = withDeadline(t, 5*time.Second, "HandleFlush", func() error {
		w := httptest.NewRecorder()
		svc.HandleFlush(w, httptest.NewRequest("POST", "/ingest/flush", nil))
		if w.Code != 503 {
			t.Errorf("flush after close: status %d, want 503", w.Code)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestControlRacingClose: control ops racing Close from many goroutines
// must all return promptly — either success (they won the race) or
// ErrClosed — never hang on a reply from an exited worker.
func TestControlRacingClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		stall := make(chan struct{})
		close(stall)
		svc, err := NewService(tinyConfig(stall, Block))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		fail := make(chan error, 16)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 5; i++ {
					if err := svc.Flush(); err != nil && !errors.Is(err, ErrClosed) {
						fail <- err
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := svc.Close(); err != nil {
				fail <- err
			}
		}()
		close(start)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatal("Flush racing Close deadlocked")
		}
		close(fail)
		for err := range fail {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestFlushUnderSustainedLoad: a producer that keeps every queue full must
// not starve the control plane. The worker loop used to give records
// absolute priority, so Flush waited for a quiescent queue that never
// came; the fair select bounds the wait at roughly one queue depth.
func TestFlushUnderSustainedLoad(t *testing.T) {
	stall := make(chan struct{})
	close(stall)
	cfg := tinyConfig(stall, DropOldest)
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := time.Date(2026, 1, 5, 6, 0, 0, 0, time.UTC)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			recs := burst(64)
			for j := range recs {
				recs[j].Time = base.Add(time.Duration(i*64+j) * time.Second)
			}
			if _, err := svc.Accept(recs); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if err := withDeadline(t, 10*time.Second, "Flush under load", svc.Flush); err != nil {
			t.Fatalf("flush %d under sustained load: %v", i, err)
		}
		if err := withDeadline(t, 10*time.Second, "Checkpoint under load", svc.Checkpoint); err != nil {
			t.Fatalf("checkpoint %d under sustained load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAggregatorReadsDontGrow: scraping contexts for slots no shard ever
// fed must not allocate cells — the read path used to cache a cell per
// queried (spot, slot), so a dashboard walking the grid grew the map
// without bound.
func TestAggregatorReadsDontGrow(t *testing.T) {
	stall := make(chan struct{})
	close(stall)
	svc, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// Finalize the whole (empty) grid, then read every slot — twice, so
	// cached empty contexts are exercised too.
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < svc.grid.Slots; j++ {
			if _, _, ok := svc.Context(0, j); !ok {
				t.Fatalf("slot %d not final after Flush", j)
			}
		}
	}
	if n := svc.agg.cellCount(); n != 0 {
		t.Fatalf("aggregator retained %d cells after a read-only sweep of an empty grid", n)
	}

	// A fresh service fed real queue activity (a slow Free phase ending in
	// a POB pickup at the spot) still caches only the active cells.
	svc2, err := NewService(tinyConfig(stall, Block))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	base := time.Date(2026, 1, 5, 6, 0, 0, 0, time.UTC)
	pos := geo.Point{Lat: 1.3, Lon: 103.8}
	var act []mdt.Record
	for i := 0; i < 10; i++ {
		act = append(act, mdt.Record{
			Time: base.Add(time.Duration(i) * 30 * time.Second), TaxiID: "SH0001A",
			Pos: pos, Speed: 2, State: mdt.Free,
		})
	}
	// The pickup itself: POB while still slow (the state change must land
	// inside the low-speed run), then speeding away commits the run.
	act = append(act,
		mdt.Record{Time: base.Add(5 * time.Minute), TaxiID: "SH0001A",
			Pos: pos, Speed: 2, State: mdt.POB},
		mdt.Record{Time: base.Add(6 * time.Minute), TaxiID: "SH0001A",
			Pos: pos, Speed: 30, State: mdt.POB},
	)
	if _, err := svc2.Accept(act); err != nil {
		t.Fatal(err)
	}
	if err := svc2.Flush(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < svc2.grid.Slots; j++ {
		svc2.Context(0, j)
	}
	n := svc2.agg.cellCount()
	if n == 0 {
		t.Fatal("no cells retained for a fed slot")
	}
	if n >= svc2.grid.Slots {
		t.Fatalf("%d cells retained for a one-slot feed over a %d-slot grid", n, svc2.grid.Slots)
	}
}
