package ingest

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"taxiqueue/internal/citymap"
	"taxiqueue/internal/cluster"
	"taxiqueue/internal/core"
	"taxiqueue/internal/geo"
	"taxiqueue/internal/mdt"
)

// popupSite picks a location inside the valid frame at least 200 m from
// every batch spot — somewhere the nightly run has no queue.
func popupSite(t *testing.T, d *day) geo.Point {
	t.Helper()
	base := d.scfg.Spots[0].Pos
	for east := 250.0; east < 5000; east += 97 {
		for north := -400.0; north <= 400; north += 83 {
			p := geo.Offset(base, north, east)
			if !citymap.Island.Contains(p) {
				continue
			}
			clear := true
			for _, sp := range d.scfg.Spots {
				if geo.Equirect(sp.Pos, p) < 200 {
					clear = false
					break
				}
			}
			if clear {
				return p
			}
		}
	}
	t.Fatal("no popup site clear of every batch spot")
	return geo.Point{}
}

// popupRecords fabricates n taxis each making one street pickup scattered
// a few meters around site, one per minute starting at t0: slow-rolling
// FREE, a crawl, then occupied and gone — the §4 pickup signature.
func popupRecords(site geo.Point, n int, t0 time.Time) []mdt.Record {
	rng := rand.New(rand.NewSource(5))
	var recs []mdt.Record
	for i := 0; i < n; i++ {
		base := t0.Add(time.Duration(i) * time.Minute)
		id := fmt.Sprintf("POPUP%03d", i)
		pos := geo.Offset(site, rng.NormFloat64()*4, rng.NormFloat64()*4)
		recs = append(recs,
			mdt.Record{Time: base, TaxiID: id, Pos: pos, Speed: 30, State: mdt.Free},
			mdt.Record{Time: base.Add(20 * time.Second), TaxiID: id, Pos: pos, Speed: 3, State: mdt.Free},
			mdt.Record{Time: base.Add(40 * time.Second), TaxiID: id, Pos: pos, Speed: 2, State: mdt.POB},
			mdt.Record{Time: base.Add(60 * time.Second), TaxiID: id, Pos: pos, Speed: 35, State: mdt.POB},
		)
	}
	return recs
}

// TestLiveSpotDiscoveryPopup is the ingest-level acceptance test: a pop-up
// queue that the batch spot list knows nothing about must surface in
// Snapshot.Live as a confirmed spot while the feed is still running — and
// the snapshot epoch must have advanced so render caches see it.
func TestLiveSpotDiscoveryPopup(t *testing.T) {
	d := getDay(t)
	cfg := d.serviceConfig()
	cfg.Shards = 4
	cfg.LiveSpots = LiveSpotsConfig{
		Enabled: true,
		Detector: core.LiveDetectorConfig{
			Cluster: cluster.Params{EpsMeters: 15, MinPoints: 10},
			Window:  3 * time.Hour,
			ByZone:  true,
		},
		RefreshEvery: 8,
	}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	site := popupSite(t, d)
	noon := d.grid.Start.Add(12 * time.Hour)

	// Morning feed: only the organic scatter reaches discovery, so nothing
	// may have confirmed at the (deliberately remote) popup site.
	var morning []mdt.Record
	for _, r := range d.raw {
		if r.Time.Before(noon) {
			morning = append(morning, r)
		}
	}
	feed(t, svc, morning)
	if err := svc.FlushUntil(noon); err != nil {
		t.Fatal(err)
	}
	for _, ls := range svc.LiveSpots() {
		if geo.Equirect(ls.Spot.Pos, site) < 60 {
			t.Fatalf("live spot at the popup site before the popup: %+v", ls)
		}
	}
	epochBefore := svc.Snapshot().Epoch

	// The popup: 30 pickups in half an hour at a spot no batch pass has
	// seen. 30 ≥ ConfirmPoints (2×10), so one refresh later it's confirmed.
	feed(t, svc, popupRecords(site, 30, noon))
	if err := svc.FlushUntil(noon.Add(45 * time.Minute)); err != nil {
		t.Fatal(err)
	}

	var got *core.LiveSpot
	for i, ls := range svc.LiveSpots() {
		if geo.Equirect(ls.Spot.Pos, site) < 60 {
			got = &svc.LiveSpots()[i]
			break
		}
	}
	if got == nil {
		t.Fatalf("popup site never discovered; %d live spots tracked", len(svc.LiveSpots()))
	}
	if got.State != core.SpotConfirmed {
		t.Fatalf("popup spot state %v, want confirmed (%+v)", got.State, got)
	}
	if got.Spot.PickupCount < 20 {
		t.Fatalf("popup spot window support %d, want ≥ 20", got.Spot.PickupCount)
	}
	if wantZone := citymap.ZoneOf(site); got.Spot.Zone != wantZone {
		t.Fatalf("popup spot zone %v, want %v", got.Spot.Zone, wantZone)
	}
	if epoch := svc.Snapshot().Epoch; epoch <= epochBefore {
		t.Fatalf("snapshot epoch %d did not advance past %d on live-spot publish", epoch, epochBefore)
	}
	// Lifecycle counters made it to the metrics registry.
	if n := svc.met.spotConfirmed.Value(); n < 1 {
		t.Fatalf("spot_live_confirmed_total = %d, want ≥ 1", n)
	}
	if n := svc.live.stats().WindowPoints; n == 0 {
		t.Fatal("live window empty right after the popup")
	}
}

// TestLiveSpotsDisabledByDefault: with discovery off the snapshot carries
// no live spots and the accessor answers nil — the pre-PR read surface is
// unchanged.
func TestLiveSpotsDisabledByDefault(t *testing.T) {
	d := getDay(t)
	svc := runService(t, d.serviceConfig(), d.raw[:2000])
	defer svc.Close()
	if live := svc.LiveSpots(); live != nil {
		t.Fatalf("live spots with discovery disabled: %+v", live)
	}
}
