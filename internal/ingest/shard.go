package ingest

import (
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"taxiqueue/internal/clean"
	"taxiqueue/internal/mdt"
	"taxiqueue/internal/store"
	"taxiqueue/internal/stream"
)

// ctlOp is a shard control operation. An op is handled after the backlog
// that was queued when the worker picked it up — so a quiescent feed gets
// the old drain-everything semantics, while a sustained producer can delay
// an op by at most one queue depth instead of starving it forever.
type ctlOp uint8

const (
	opFlush      ctlOp = iota // cleaner flush + close every slot + checkpoint
	opFlushUntil              // close slots final as of msg.at
	opCheckpoint              // atomic WAL save
	opStop                    // graceful: opFlush then exit
	opAbort                   // crash-test: exit immediately, no drain
)

type ctlMsg struct {
	op    ctlOp
	at    time.Time
	reply chan error
}

// queuedRec is one queue element: the record plus its enqueue instant, so
// the worker can report how long records sit in the shard queue.
type queuedRec struct {
	rec mdt.Record
	at  time.Time
}

// engineGaugeEvery is how many processed records pass between refreshes of
// the engine-introspection gauges (open slots, tracked taxis) — they are
// O(spots) to read, too hot for every record and plenty fresh at this rate.
const engineGaugeEvery = 256

// shard owns one partition of the fleet: a bounded record queue, a
// streaming cleaner, a write-ahead store and an online engine. Only the
// shard's worker goroutine touches the cleaner/engine/WAL; everything the
// rest of the service reads is an atomic registry collector.
type shard struct {
	id  int
	svc *Service
	ch  chan queuedRec
	ctl chan ctlMsg

	cleaner *clean.Streamer
	engine  *stream.Live
	wal     *store.Store // nil when durability is off
	walPath string

	// tails enforces the per-taxi time-order rule uniformly: it applies
	// before the WAL *and* when durability is off, so both modes reject the
	// same records and serve identical labels from identical input. The
	// granularity is whole seconds — exactly the store's Append invariant,
	// so sub-second jitter (e.g. the RFC3339 JSON wire truncation) passes.
	//
	// Each tail also keeps every ordering-accepted record of the taxi's
	// newest second — the dedup window that makes re-sent feeds exactly
	// idempotent. A resilient client that cannot know whether a failed
	// request was applied re-sends it; records strictly before the tail
	// second are rejected as out-of-order, and records *at* the tail second
	// that byte-match an already-accepted one are rejected as duplicates
	// (whole-second ordering alone would re-accept a re-sent record that
	// shares its second with, but differs from, the newest survivor). The
	// one exception: while the cleaner holds this taxi's records pending,
	// an exact duplicate PAYMENT is a §6.1.1 state signal (it resolves a
	// PAYMENT-FREE tail as the improper-state pattern) and must pass
	// through to the cleaner, which deduplicates it itself after acting on
	// it.
	tails map[string]*taxiTail

	met       *metrics
	sm        *shardMetrics
	sinceStat int // records since the engine gauges were refreshed
	lastWM    int // engine watermark at the last emit (publish trigger)

	// prov is this shard's published provisional (current-slot) snapshot;
	// the worker stores, Service.Estimate loads.
	prov atomic.Pointer[stream.Provisional]

	nextCkpt int64 // wal_pending level that triggers the next auto checkpoint

	done chan struct{}
}

// taxiTail is one taxi's ordering state: its newest accepted Unix second
// and every record accepted at that second (the re-send dedup window).
type taxiTail struct {
	sec  int64
	recs []mdt.Record
}

// contains reports whether an identical record was already accepted in the
// tail second. The window holds one record per report interval in the
// common case, so the linear scan is effectively free.
func (t *taxiTail) contains(r mdt.Record) bool {
	for i := range t.recs {
		if t.recs[i].Equal(r) {
			return true
		}
	}
	return false
}

// newShard builds shard i, replaying its WAL file if one exists. A damaged
// WAL — a torn tail from a crash mid-write, or a lying disk — recovers the
// longest clean prefix instead of failing startup: the service resumes from
// the last durable byte, the truncation is counted and logged, and the file
// is immediately rewritten clean.
func newShard(s *Service, i int) (*shard, error) {
	sh := &shard{
		id:       i,
		svc:      s,
		ch:       make(chan queuedRec, s.cfg.QueueDepth),
		ctl:      make(chan ctlMsg, 4),
		cleaner:  clean.NewStreamer(s.cfg.Clean),
		engine:   stream.NewLive(s.cfg.Stream),
		tails:    make(map[string]*taxiTail),
		met:      s.met,
		sm:       &s.met.shards[i],
		nextCkpt: int64(s.cfg.CheckpointEvery),
		done:     make(chan struct{}),
	}
	if s.cfg.WALDir == "" {
		return sh, nil
	}
	sh.walPath = WALPath(s.cfg.WALDir, i)
	if _, err := os.Stat(sh.walPath); err == nil {
		st, rec, err := store.RecoverFile(sh.walPath)
		if err != nil {
			return nil, fmt.Errorf("ingest: shard %d recovery: %w", i, err)
		}
		sh.wal = st
		sh.replay(st)
		if rec.Truncated() {
			sh.sm.walTruncations.Inc()
			log.Printf("ingest: shard %d WAL %s damaged (%v): recovered %d records, rewriting clean",
				i, sh.walPath, rec.Err, rec.Records)
			if err := sh.checkpoint(); err != nil {
				// Keep serving from memory; the next checkpoint retries.
				log.Printf("ingest: shard %d clean rewrite failed: %v", i, err)
			}
		}
	} else if os.IsNotExist(err) {
		sh.wal = store.New()
	} else {
		return nil, fmt.Errorf("ingest: shard %d wal: %w", i, err)
	}
	return sh, nil
}

// replay rebuilds engine and cleaner state from the checkpointed WAL. The
// WAL holds raw records exactly as accepted (pre-clean), so replaying them
// through the fresh cleaner and engine re-runs live processing verbatim —
// including any records the cleaner was still holding at the crash. The
// recovered state is therefore byte-identical to the pre-checkpoint state
// at any cut point, not just quiescent ones — and because the per-taxi
// tail windows are rebuilt too, a client that re-sends records the crash
// already absorbed is deduplicated exactly.
func (sh *shard) replay(st *store.Store) {
	var n int64
	st.Scan(time.Time{}, time.Unix(1<<40, 0), func(r mdt.Record) bool {
		sh.trackTail(r)
		sh.pushClean(r)
		n++
		return true
	})
	sh.sm.replayed.Add(n)
}

// trackTail folds one ordering-accepted record into its taxi's tail
// window. Callers must already have applied the ordering rule.
func (sh *shard) trackTail(r mdt.Record) {
	t := r.Time.Unix()
	tail := sh.tails[r.TaxiID]
	if tail == nil {
		sh.tails[r.TaxiID] = &taxiTail{sec: t, recs: []mdt.Record{r}}
		return
	}
	if t > tail.sec {
		tail.sec = t
		tail.recs = append(tail.recs[:0], r)
		return
	}
	tail.recs = append(tail.recs, r)
}

// offer enqueues under DropOldest: it never blocks, discarding queued
// records (oldest first) to make room.
func (sh *shard) offer(r queuedRec) {
	for {
		select {
		case sh.ch <- r:
			return
		default:
		}
		select {
		case <-sh.ch:
			sh.sm.dropped.Inc()
		default:
		}
	}
}

// run is the worker loop. The select is fair between records and control
// ops, so a sustained producer can no longer starve Flush/Checkpoint; the
// drain inside handle keeps op-after-backlog ordering for records already
// queued when the op is picked up.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		if hook := sh.svc.cfg.testStall; hook != nil {
			hook(sh.id)
		}
		select {
		case rec := <-sh.ch:
			sh.process(rec)
		case msg := <-sh.ctl:
			if sh.handle(msg) {
				return
			}
		}
	}
}

// handle runs one control op; true means exit the worker. Every op except
// Abort first drains the backlog present at pickup time: for a paused feed
// that is the whole queue (the historical "ops run once the queue is
// empty" contract), and under sustained load it bounds the op's delay at
// one queue depth.
func (sh *shard) handle(msg ctlMsg) bool {
	if msg.op != opAbort {
		for n := len(sh.ch); n > 0; n-- {
			sh.process(<-sh.ch)
		}
	}
	var err error
	exit := false
	switch msg.op {
	case opFlush:
		sh.flushAll()
		err = sh.checkpoint()
	case opFlushUntil:
		sh.emit(sh.engine.FlushUntil(msg.at))
	case opCheckpoint:
		err = sh.checkpoint()
	case opStop:
		sh.flushAll()
		err = sh.checkpoint()
		exit = true
	case opAbort:
		exit = true
	}
	sh.refreshEngineGauges()
	msg.reply <- err
	return exit
}

// flushAll releases the cleaner's held records into the engine (they are
// already in the WAL, which logs pre-clean), then closes every slot.
func (sh *shard) flushAll() {
	for _, r := range sh.cleaner.Flush() {
		sh.ingest(r)
	}
	sh.emit(sh.engine.Flush())
}

// process applies the ordering rule and the re-send dedup window, logs one
// arriving record to the WAL, cleans it and ingests the survivors. The
// record hits the WAL before the cleaner sees it so that a checkpoint
// always captures the cleaner's held records too.
func (sh *shard) process(q queuedRec) {
	now := time.Now()
	sh.met.queueWait.Observe(now.Sub(q.at).Seconds())
	rec := q.rec
	// One ordering rule for both durability modes: per-taxi time order
	// (client bug otherwise). Checking here — not via store.Append — means
	// WAL-on and WAL-off reject the same records, the cleaner never sees a
	// time-travelling record, and replay can never fail.
	t := rec.Time.Unix()
	tail := sh.tails[rec.TaxiID]
	if tail != nil && t < tail.sec {
		sh.sm.rejected.Inc()
		sh.met.removedOOO.Inc()
		return
	}
	// Same-second arrivals: drop a byte-identical re-send (or GPRS
	// retransmission) before it reaches WAL and cleaner — unless it is a
	// PAYMENT while the cleaner holds this taxi's records pending, in
	// which case the duplicate is a state signal it must see (see the
	// tails field doc). A duplicate FREE or occupied record is never a
	// signal: passing one through would re-extend or re-release a pending
	// hold the WAL already captured, so it is dropped here.
	if tail != nil && t == tail.sec && tail.contains(rec) &&
		(rec.State != mdt.Payment || sh.cleaner.PendingFor(rec.TaxiID) == 0) {
		sh.sm.rejected.Inc()
		sh.sm.deduped.Inc()
		sh.met.removedDup.Inc()
		return
	}
	sh.trackTail(rec)
	if sh.wal != nil {
		if err := sh.wal.Append(rec); err != nil {
			// Unreachable while the ordering rule above is at least as
			// strict as the store's; kept so a future invariant change
			// degrades to a rejection rather than a poisoned WAL.
			sh.sm.rejected.Inc()
			sh.met.removedOOO.Inc()
			return
		}
		if sh.sm.walPending.Add(1) >= sh.nextCkpt {
			if err := sh.checkpoint(); err != nil {
				// A full checkpoint attempt per record would hammer a sick
				// disk; back off by one interval and keep serving — the
				// records are safe in memory and re-covered by the next
				// successful save.
				sh.nextCkpt += int64(sh.svc.cfg.CheckpointEvery)
			}
		}
	}
	sh.pushClean(rec)
	sh.met.process.Since(now)
	if sh.sinceStat++; sh.sinceStat >= engineGaugeEvery {
		sh.refreshEngineGauges()
	}
}

// pushClean feeds one raw record to the streaming cleaner, ingests the
// survivors and attributes any removals to their §6.1.1 class.
func (sh *shard) pushClean(rec mdt.Record) {
	before := sh.cleaner.Stats()
	for _, r := range sh.cleaner.Push(rec) {
		sh.ingest(r)
	}
	after := sh.cleaner.Stats()
	if d := int64(after.GPSOutliers - before.GPSOutliers); d > 0 {
		sh.sm.rejected.Add(d)
		sh.met.removedGPS.Add(d)
	}
	if d := int64(after.Duplicates - before.Duplicates); d > 0 {
		sh.sm.rejected.Add(d)
		sh.met.removedDup.Add(d)
	}
	if d := int64(after.ImproperStates - before.ImproperStates); d > 0 {
		sh.sm.rejected.Add(d)
		sh.met.removedImproper.Add(d)
	}
}

// ingest feeds one cleaned survivor to the engine.
func (sh *shard) ingest(r mdt.Record) {
	sh.sm.accepted.Inc()
	sh.emit(sh.engine.Ingest(r))
}

// emit forwards slot closings to the aggregator, refreshes the shard's
// finality watermark, and — when this shard's watermark actually moved —
// asks the aggregator to republish the read snapshot. The order matters:
// cells are merged before the watermark rises, and every shard's own
// watermark is set before it reads the cross-shard minimum, so the publish
// that observes the final minimum always sees every contributing cell.
func (sh *shard) emit(events []stream.Event) {
	if len(events) > 0 {
		sh.svc.agg.add(events)
	}
	wm := sh.engine.Closed()
	sh.sm.watermark.Set(int64(wm))
	if wm != sh.lastWM {
		sh.lastWM = wm
		sh.svc.agg.advance(sh.svc.minClosed())
	}
}

// refreshEngineGauges publishes the engine-introspection gauges and this
// shard's provisional current-slot snapshot; O(spots), so it runs every
// engineGaugeEvery records and after each control op.
func (sh *shard) refreshEngineGauges() {
	sh.sinceStat = 0
	sh.sm.openSlots.Set(int64(sh.engine.OpenSlots()))
	sh.sm.taxis.Set(int64(sh.engine.TrackedTaxis()))
	sh.prov.Store(sh.engine.ExportProvisional())
	sh.svc.estVersion.Add(1)
}

// checkpoint atomically rewrites the shard's WAL file through the
// configured filesystem. A failed save leaves the previous on-disk copy
// intact and the pending counter untouched (nothing became durable), is
// counted, and is retried by the next checkpoint trigger.
func (sh *shard) checkpoint() error {
	if sh.wal == nil {
		return nil
	}
	t0 := time.Now()
	if err := sh.wal.SaveFileFS(sh.svc.cfg.FS, sh.walPath); err != nil {
		sh.sm.ckptErrors.Inc()
		log.Printf("ingest: shard %d checkpoint: %v", sh.id, err)
		return err
	}
	sh.met.ckpt.Since(t0)
	sh.sm.walPending.Set(0)
	sh.nextCkpt = int64(sh.svc.cfg.CheckpointEvery)
	sh.sm.checkpoints.Inc()
	return nil
}
